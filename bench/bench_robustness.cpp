// Robustness under chaos — recall vs a fault-free oracle while the system
// absorbs bursty link loss and a crash/recover wave, with and without the
// self-healing data path (acked MBR publication + soft-state refresh).
//
// Scenario (absolute sim times; warmup starts at 0):
//   - Gilbert-Elliott bursty link loss, ~10% stationary loss rate, active
//     for the whole run (bursts can swallow an entire range multicast);
//   - at warmup+10s a crash wave takes down 20% of the data centers; they
//     recover 20s later with empty soft state, after which the injector
//     runs Chord maintenance so the ring heals around them.
//
// Five runs per seed, identical workload (query patterns are drawn even
// when a client is dead, so every run poses the same queries):
//   fault-free      — no faults, no healing: the recall ceiling;
//   chaos           — faults on, healing off: measured degradation;
//   chaos+heal      — faults on, acked MBRs + MBR/query refresh: the
//                     paper's soft-state argument, measured;
//   chaos+repl      — faults on, healing off, successor-list replication
//                     (r=2) + anti-entropy: state outlives its node, so
//                     recall holes close in O(stabilization) without any
//                     source-driven refresh;
//   chaos+heal+repl — both layers: the production configuration.
//
// Acceptance shape: chaos+heal recall >= 0.95 within two refresh periods of
// the faults clearing; chaos (no healing) demonstrably below that;
// chaos+heal+repl at or above chaos+heal with a lower heal-latency p90
// (replicas answer before the retry ladder climbs). All numbers are pure
// functions of the seed (byte-identical BENCH output).
#include <string>

#include "bench/bench_common.hpp"
#include "core/report_render.hpp"

namespace {

using namespace sdsi;

struct Scenario {
  const char* name;
  bool faults;
  bool healing;
  bool replication;
};

core::ExperimentConfig chaos_config(const Scenario& scenario,
                                    std::uint64_t seed, bool smoke) {
  core::ExperimentConfig config;
  config.num_nodes = 50;
  config.seed = seed;
  config.warmup = sim::Duration::seconds(smoke ? 30 : 60);
  config.measure = sim::Duration::seconds(smoke ? 30 : 60);
  config.oracle_sample_period = sim::Duration::millis(500);

  if (scenario.faults) {
    // ~10% stationary loss: p_bad = p_g2b / (p_g2b + p_b2g) = 0.1 with
    // mean burst length 1 / p_b2g = 4 transmissions.
    fault::GilbertElliottParams burst;
    burst.p_good_to_bad = 0.25 * 0.1 / 0.9;
    burst.p_bad_to_good = 0.25;
    config.faults.burst_loss = burst;

    fault::CrashWave wave;
    wave.at = sim::SimTime::zero() + config.warmup + sim::Duration::seconds(10);
    wave.fraction = 0.2;
    wave.down_for = sim::Duration::seconds(20);
    config.faults.crash_waves.push_back(wave);
  }
  if (scenario.healing) {
    config.mbr_acks = true;
    config.response_acks = true;
    config.mbr_refresh_period = sim::Duration::millis(1500);
    // Subscriptions must re-register faster than MBRs expire (BSPAN 5s),
    // or a query fragment lost to a burst misses whole batches.
    config.query_refresh_period = sim::Duration::millis(2500);
  }
  if (scenario.replication) {
    config.replication_factor = 2;
    config.anti_entropy_period = sim::Duration::millis(2000);
  }
  // Same settling time for every run (fair comparison): two refresh
  // periods. Healing must reach the recall floor inside this window; the
  // no-healing run gets the same wall clock and still cannot.
  config.drain = sim::Duration::millis(3000);
  return config;
}

std::string scenario_label(const Scenario& scenario, std::uint64_t seed) {
  std::string label = "chord N=50 seed=" + std::to_string(seed);
  label += scenario.faults ? " burst~10% wave=20%/20s" : " fault-free";
  label += scenario.healing ? " acks+refresh=1500ms" : " healing=off";
  label += scenario.replication ? " repl=2 anti-entropy=2000ms" : "";
  return label;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::consume_json_flag(argc, argv);
  const std::string obs_dir = bench::consume_value_flag(argc, argv, "--obs-dir");
  const bool smoke = bench::consume_flag(argc, argv, "--smoke");

  std::printf(
      "=== Robustness: recall under bursty loss + crash wave, healing "
      "on/off ===\n");

  const Scenario scenarios[] = {
      {"fault-free", false, false, false},
      {"chaos", true, false, false},
      {"chaos+heal", true, true, false},
      {"chaos+repl", true, false, true},
      {"chaos+heal+repl", true, true, true},
  };
  constexpr std::uint64_t kSeed = 42;

  std::vector<core::ExperimentConfig> configs;
  for (const Scenario& scenario : scenarios) {
    core::ExperimentConfig config = chaos_config(scenario, kSeed, smoke);
    if (!obs_dir.empty()) {
      // One run directory per scenario; the chaos runs then carry their
      // heal-latency histogram and drop/load series over time.
      config.obs.dir = obs_dir + "/" + scenario.name;
    }
    configs.push_back(std::move(config));
  }
  bench::print_workload_banner(configs.front().workload);
  const auto experiments = bench::run_sweep(configs);

  bench::JsonBenchReporter reporter("robustness");
  common::TextTable table({"Scenario", "Recall", "Oracle pairs", "Delivered",
                           "Dup rate", "MBR retries", "Refreshes", "Heals",
                           "Heal ms (mean)", "Heal ms (p90)",
                           "Crash/Recover"});
  common::TextTable repl_table(
      {"Scenario", "Replica puts", "Repairs", "Handoff entries",
       "Handoff bytes", "Failovers", "Failover ms (p90)", "Detours",
       "Oracle fallbacks"});
  // Columns derive from drop_cause_name, so new causes appear automatically.
  common::TextTable drops(core::drop_cause_columns("Scenario"));
  for (std::size_t i = 0; i < experiments.size(); ++i) {
    const Scenario& scenario = scenarios[i];
    const auto& experiment = experiments[i];
    const core::RobustnessReport report = experiment->robustness_report();
    const double simulated_ms = (experiment->config().measure +
                                 experiment->config().drain).as_millis();
    const std::string config_label = scenario_label(scenario, kSeed);

    table.begin_row()
        .add_cell(scenario.name)
        .add_num(report.recall, 4)
        .add_int(static_cast<long long>(report.oracle_pairs))
        .add_int(static_cast<long long>(report.delivered_pairs))
        .add_num(report.duplicate_delivery_rate, 4)
        .add_int(static_cast<long long>(report.mbr_retries))
        .add_int(static_cast<long long>(report.mbr_refreshes))
        .add_int(static_cast<long long>(report.heals))
        .add_num(report.mean_heal_latency_ms, 2)
        .add_num(report.p90_heal_latency_ms, 2)
        .add_cell(std::to_string(report.crashes) + "/" +
                  std::to_string(report.recoveries));

    std::uint64_t total_drops = 0;
    drops.begin_row().add_cell(scenario.name);
    for (const std::uint64_t count : report.drops_by_cause) {
      drops.add_int(static_cast<long long>(count));
      total_drops += count;
    }
    drops.add_int(static_cast<long long>(total_drops));

    reporter.add({std::string("recall/") + scenario.name, config_label,
                  report.recall, simulated_ms});
    reporter.add({std::string("duplicate_delivery_rate/") + scenario.name,
                  config_label, report.duplicate_delivery_rate, simulated_ms});
    reporter.add({std::string("drops_total/") + scenario.name, config_label,
                  static_cast<double>(total_drops), simulated_ms});
    if (scenario.healing) {
      reporter.add({std::string("mbr_retries/") + scenario.name, config_label,
                    static_cast<double>(report.mbr_retries), simulated_ms});
      reporter.add({std::string("mbr_refreshes/") + scenario.name,
                    config_label, static_cast<double>(report.mbr_refreshes),
                    simulated_ms});
      reporter.add({std::string("heals/") + scenario.name, config_label,
                    static_cast<double>(report.heals), simulated_ms});
      reporter.add({std::string("mean_heal_latency_ms/") + scenario.name,
                    config_label, report.mean_heal_latency_ms, simulated_ms});
      reporter.add({std::string("p90_heal_latency_ms/") + scenario.name,
                    config_label, report.p90_heal_latency_ms, simulated_ms});
    }
    if (scenario.replication) {
      repl_table.begin_row()
          .add_cell(scenario.name)
          .add_int(static_cast<long long>(report.replica_puts))
          .add_int(static_cast<long long>(report.replica_repairs))
          .add_int(static_cast<long long>(report.handoff_entries))
          .add_int(static_cast<long long>(report.handoff_bytes))
          .add_int(static_cast<long long>(report.aggregator_failovers))
          .add_num(report.p90_failover_latency_ms, 2)
          .add_int(static_cast<long long>(report.report_detours))
          .add_int(static_cast<long long>(report.oracle_fallbacks));
      reporter.add({std::string("replica_puts/") + scenario.name, config_label,
                    static_cast<double>(report.replica_puts), simulated_ms});
      reporter.add({std::string("replica_repairs/") + scenario.name,
                    config_label, static_cast<double>(report.replica_repairs),
                    simulated_ms});
      reporter.add({std::string("handoff_entries/") + scenario.name,
                    config_label, static_cast<double>(report.handoff_entries),
                    simulated_ms});
      reporter.add({std::string("aggregator_failovers/") + scenario.name,
                    config_label,
                    static_cast<double>(report.aggregator_failovers),
                    simulated_ms});
      reporter.add({std::string("report_detours/") + scenario.name,
                    config_label, static_cast<double>(report.report_detours),
                    simulated_ms});
      reporter.add({std::string("p90_failover_latency_ms/") + scenario.name,
                    config_label, report.p90_failover_latency_ms,
                    simulated_ms});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nReplication & failover layer:\n%s",
              repl_table.render().c_str());
  std::printf("\nDrops by cause (measurement window):\n%s",
              drops.render().c_str());

  const double ceiling = experiments[0]->robustness_report().recall;
  const double degraded = experiments[1]->robustness_report().recall;
  const double healed = experiments[2]->robustness_report().recall;
  const double replicated = experiments[3]->robustness_report().recall;
  const double both = experiments[4]->robustness_report().recall;
  std::printf(
      "\nShape check: fault-free recall %.4f is the ceiling; chaos without\n"
      "healing degrades to %.4f; acked publication + soft-state refresh\n"
      "recovers to %.4f within two refresh periods of the faults clearing.\n"
      "Successor-list replication alone (no refresh) reaches %.4f because\n"
      "promoted replicas already hold the crashed owners' state; with both\n"
      "layers on, recall is %.4f and the heal-latency p90 drops from\n"
      "%.0f ms to %.0f ms (replicas answer before the retry ladder climbs).\n",
      ceiling, degraded, healed, replicated, both,
      experiments[2]->robustness_report().p90_heal_latency_ms,
      experiments[4]->robustness_report().p90_heal_latency_ms);

  if (!json_path.empty() && !reporter.write(json_path)) {
    return 1;
  }
  return 0;
}
