// Ablation A1 (Sec IV-C vs VI-B): sequential successor-walk vs bidirectional
// middle-node range multicast.
//
// Same message count, different propagation delay: the sequential walk is
// O(range) serial hops; fanning out from the middle halves the worst case.
// The paper flags exactly this as the fix for wide ranges on large rings.
#include "bench/bench_common.hpp"

int main() {
  using namespace sdsi;
  std::printf("=== Ablation: sequential vs bidirectional range multicast ===\n");

  common::TextTable table({"Nodes", "Radius", "Strategy", "Query copies/query",
                           "Range walk mean (ms)", "Range walk max (ms)",
                           "First response (ms)"});
  for (const std::size_t n : {std::size_t{100}, std::size_t{300}}) {
    for (const double radius : {0.1, 0.3}) {
      std::vector<core::ExperimentConfig> configs;
      for (const auto strategy : {routing::MulticastStrategy::kSequential,
                                  routing::MulticastStrategy::kBidirectional}) {
        configs.push_back(bench::paper_experiment(n));
        configs.back().workload.query_radius = radius;
        configs.back().multicast = strategy;
      }
      const auto experiments = bench::run_sweep(configs);
      for (std::size_t i = 0; i < experiments.size(); ++i) {
        const auto& experiment = experiments[i];
        table.begin_row()
            .add_int(static_cast<long long>(n))
            .add_num(radius, 1)
            .add_cell(i == 0 ? "sequential" : "bidirectional")
            .add_num(experiment->overhead_report().query_internal, 2)
            .add_num(experiment->metrics().query().range_latency_ms.mean(), 0)
            .add_num(experiment->metrics().query().range_latency_ms.max(), 0)
            .add_num(experiment->quality_report().mean_first_response_ms, 0);
      }
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nShape check: identical copy counts; bidirectional roughly halves\n"
      "the worst-case query propagation latency, and the gap widens with\n"
      "N and radius (more nodes under the range).\n");
  return 0;
}
