// Ablation A6 + Figure 1 companion: Chord lookup hop scaling.
//
// Checks the classical O(log N) property our Fig 6(a)/Fig 8 transit shapes
// rest on: mean lookup path length ~ (1/2) log2 N, independent of where the
// lookup starts.
#include <cmath>
#include <cstdio>

#include "chord/network.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "routing/static_ring.hpp"

int main() {
  using namespace sdsi;
  std::printf("=== Chord lookup scaling (substrate validation) ===\n");

  common::TextTable table({"Nodes", "mean hops", "p50", "p95", "max",
                           "0.5*log2(N)"});
  for (const std::size_t n :
       {16u, 32u, 50u, 100u, 200u, 300u, 500u, 1000u, 2000u}) {
    sim::Simulator sim;
    chord::ChordConfig config;
    config.id_bits = 32;
    chord::ChordNetwork net(sim, config);
    net.bootstrap(routing::hash_node_ids(n, common::IdSpace(32), 7));
    common::Pcg32 rng(static_cast<std::uint64_t>(n), 1);
    common::OnlineStats hops;
    common::Percentiles percentiles;
    for (int i = 0; i < 2000; ++i) {
      const auto from = static_cast<NodeIndex>(
          rng.bounded(static_cast<std::uint32_t>(n)));
      const auto trace = net.trace_lookup(from, net.id_space().wrap(rng.next64()));
      hops.add(trace.hops);
      percentiles.add(trace.hops);
    }
    table.begin_row()
        .add_int(static_cast<long long>(n))
        .add_num(hops.mean(), 2)
        .add_num(percentiles.quantile(0.5), 0)
        .add_num(percentiles.quantile(0.95), 0)
        .add_num(hops.max(), 0)
        .add_num(0.5 * std::log2(static_cast<double>(n)), 2);
  }
  std::printf("%s", table.render().c_str());

  // Reproduce the Figure 1(b) narrative for the record.
  {
    sim::Simulator sim;
    chord::ChordConfig config;
    config.id_bits = 5;
    chord::ChordNetwork net(sim, config);
    const std::vector<Key> ids{1, 8, 11, 14, 20, 23};
    net.bootstrap(ids);
    NodeIndex n8 = kInvalidNode;
    for (NodeIndex i = 0; i < net.num_nodes(); ++i) {
      if (net.node_id(i) == 8) {
        n8 = i;
      }
    }
    const auto trace = net.trace_lookup(n8, 25);
    std::printf("\nFigure 1(b): lookup(25) from N8 visits ");
    for (const NodeIndex node : trace.path) {
      std::printf("N%llu ", static_cast<unsigned long long>(net.node_id(node)));
    }
    std::printf("-> key 25 lives at N%llu (%d hops)\n",
                static_cast<unsigned long long>(net.node_id(trace.result)),
                trace.hops);
  }
  return 0;
}
