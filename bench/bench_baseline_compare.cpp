// Ablation A3 (Sec IV-A): the distributed index vs the two naive designs —
// a centralized data center and local-storage-plus-query-flooding — under
// the same Table I workload on the same Chord substrate.
//
// Paper argument to quantify: the centralized design concentrates the whole
// system's traffic on one node (hotspot, single point of failure); flooding
// makes every query cost O(N); the content-routed index keeps per-node load
// flat and bounded.
#include <algorithm>
#include <memory>

#include "baseline/centralized.hpp"
#include "baseline/flooding.hpp"
#include "bench/bench_common.hpp"

namespace {

using namespace sdsi;

struct RunResult {
  double mean_load = 0.0;
  double max_load = 0.0;
  double query_cost = 0.0;  // delivered query copies per posed query
  std::uint64_t matches = 0;
};

/// Drives `system` with the Experiment's workload shape: one random-walk
/// stream per node, Poisson similarity queries at 2 q/s from random nodes.
template <typename System>
RunResult drive(sim::Simulator& sim, routing::RoutingSystem& /*routing*/,
                System& system, std::size_t nodes, std::uint64_t seed,
                const core::WorkloadConfig& workload,
                const dsp::FeatureConfig& features) {
  common::RngFactory rng_factory(seed);
  std::vector<std::unique_ptr<streams::RandomWalkGenerator>> generators;
  common::Pcg32 period_rng = rng_factory.make("periods");
  for (NodeIndex node = 0; node < nodes; ++node) {
    const StreamId sid = 1000 + node;
    system.register_stream(node, sid);
    generators.push_back(std::make_unique<streams::RandomWalkGenerator>(
        rng_factory.make("walk", node)));
    const auto period = sim::Duration::micros(
        period_rng.uniform_int(workload.stream_period_min.count_micros(),
                               workload.stream_period_max.count_micros()));
    auto* generator = generators.back().get();
    sim.schedule_periodic(sim.now() + period, period,
                          [&system, node, sid, generator] {
                            system.post_stream_value(node, sid,
                                                     generator->next());
                          });
  }
  auto query_rng =
      std::make_shared<common::Pcg32>(rng_factory.make("queries"));
  auto walk_rng = std::make_shared<common::Pcg32>(rng_factory.make("qwalk"));
  auto queries_posed = std::make_shared<std::uint64_t>(0);
  auto arrival = std::make_shared<std::function<void()>>();
  *arrival = [&, arrival, query_rng, walk_rng, queries_posed] {
    std::vector<Sample> window(features.window_size);
    Sample value = walk_rng->uniform(-10.0, 10.0);
    for (Sample& x : window) {
      value += walk_rng->uniform(-1.0, 1.0);
      x = value;
    }
    const auto client = static_cast<NodeIndex>(
        query_rng->bounded(static_cast<std::uint32_t>(nodes)));
    const auto lifespan = sim::Duration::micros(
        query_rng->uniform_int(workload.query_lifespan_min.count_micros(),
                               workload.query_lifespan_max.count_micros()));
    (void)system.subscribe_similarity(
        client, dsp::extract_features(window, features),
        workload.query_radius, lifespan);
    ++*queries_posed;
    sim.schedule_after(
        sim::Duration::seconds(
            query_rng->exponential(workload.query_rate_per_sec)),
        [arrival] { (*arrival)(); });
  };
  sim.schedule_after(sim::Duration::seconds(0.1), [arrival] { (*arrival)(); });

  system.start();
  const sim::Duration warmup = sim::Duration::seconds(60);
  const sim::Duration measure = sim::Duration::seconds(60);
  system.metrics().set_enabled(false);
  sim.run_until(sim::SimTime::zero() + warmup);
  system.metrics().reset();
  system.metrics().set_enabled(true);
  const std::uint64_t queries_before = *queries_posed;
  sim.run_until(sim::SimTime::zero() + warmup + measure);
  system.metrics().set_enabled(false);

  RunResult result;
  const double seconds = measure.as_seconds();
  for (NodeIndex node = 0; node < nodes; ++node) {
    const double rate =
        static_cast<double>(system.metrics().node_load_total(node)) / seconds;
    result.mean_load += rate / static_cast<double>(nodes);
    result.max_load = std::max(result.max_load, rate);
  }
  const std::uint64_t posed = *queries_posed - queries_before;
  result.query_cost =
      posed == 0 ? 0.0
                 : static_cast<double>(system.metrics().query().delivered) /
                       static_cast<double>(posed);
  for (const auto& [id, record] : system.client_records()) {
    result.matches += record.matched_streams.size();
  }
  return result;
}

core::MiddlewareConfig middleware_config() {
  core::MiddlewareConfig config;
  config.features = core::experiment_feature_config();
  return config;
}

RunResult run_middleware(std::size_t nodes) {
  core::ExperimentConfig config = bench::paper_experiment(nodes);
  core::Experiment experiment(config);
  experiment.run();
  RunResult result;
  const core::LoadReport load = experiment.load_report();
  result.mean_load = load.total;
  for (const double rate : load.per_node_total) {
    result.max_load = std::max(result.max_load, rate);
  }
  const auto& query = experiment.metrics().query();
  result.query_cost =
      query.originated == 0
          ? 0.0
          : static_cast<double>(query.delivered) /
                static_cast<double>(query.originated);
  result.matches = experiment.quality_report().matches_reported;
  return result;
}

template <typename System>
RunResult run_baseline(std::size_t nodes, std::uint64_t seed) {
  sim::Simulator sim;
  chord::ChordConfig chord_config;
  chord::ChordNetwork net(sim, chord_config);
  net.bootstrap(routing::hash_node_ids(nodes, common::IdSpace(32), seed));
  System system(net, middleware_config());
  core::WorkloadConfig workload;
  return drive(sim, net, system, nodes, seed, workload,
               core::experiment_feature_config());
}

}  // namespace

int main() {
  std::printf("=== Baseline comparison: distributed index vs centralized vs flooding ===\n");
  common::TextTable table({"Nodes", "System", "Mean load/node/s",
                           "Max load/node/s", "Max/Mean", "Query copies",
                           "Matches"});
  for (const std::size_t n : {std::size_t{50}, std::size_t{100}}) {
    struct Row {
      const char* name;
      RunResult result;
    };
    const Row rows[] = {
        {"sdsi (this paper)", run_middleware(n)},
        {"centralized", run_baseline<baseline::CentralizedSystem>(n, 42)},
        {"flooding", run_baseline<baseline::FloodingSystem>(n, 42)},
    };
    for (const Row& row : rows) {
      table.begin_row()
          .add_int(static_cast<long long>(n))
          .add_cell(row.name)
          .add_num(row.result.mean_load, 2)
          .add_num(row.result.max_load, 2)
          .add_num(row.result.max_load / std::max(row.result.mean_load, 1e-9),
                   1)
          .add_num(row.result.query_cost, 1)
          .add_int(static_cast<long long>(row.result.matches));
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nShape check: the centralized max/mean ratio explodes with N (the\n"
      "hotspot absorbs everything); flooding's query cost is ~N copies per\n"
      "query; the distributed index keeps both flat.\n");
  return 0;
}
