// Micro-benchmarks (google-benchmark) for the stream-processing substrate —
// ablation A5: the paper's Sec III-C claim that incremental coefficient
// maintenance (Eq. 5) beats recomputing the transform per arriving item,
// plus the batched push_span ingestion path.
//
// Usage: bench_dsp [--smoke] [--json <path>] [google-benchmark flags]
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/index_store.hpp"
#include "core/worker_pool.hpp"
#include "dsp/dft.hpp"
#include "dsp/features.hpp"
#include "dsp/mbr.hpp"
#include "dsp/normalize.hpp"
#include "dsp/sliding_dft.hpp"
#include "streams/summarizer.hpp"

namespace {

using namespace sdsi;

std::vector<Sample> random_signal(std::size_t n) {
  common::Pcg32 rng(n, 9);
  std::vector<Sample> signal(n);
  for (Sample& x : signal) {
    x = rng.uniform(-1.0, 1.0);
  }
  return signal;
}

void BM_NaiveDftPerItem(benchmark::State& state) {
  // Recompute the full O(N^2) transform on every arrival (the strawman).
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto signal = random_signal(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::naive_dft(signal));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NaiveDftPerItem)->Arg(32)->Arg(128)->Arg(512);

void BM_FftPerItem(benchmark::State& state) {
  // Recompute an O(N log N) FFT on every arrival.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto signal = random_signal(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::fft(signal));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FftPerItem)->Arg(32)->Arg(128)->Arg(512);

void BM_SlidingDftPerItem(benchmark::State& state) {
  // Eq. 5: O(k) per arrival.
  const auto n = static_cast<std::size_t>(state.range(0));
  dsp::SlidingDft dft(n, 3);
  common::Pcg32 rng(n, 10);
  for (auto _ : state) {
    dft.push(rng.uniform(-1.0, 1.0));
    benchmark::DoNotOptimize(dft.coefficients());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SlidingDftPerItem)->Arg(32)->Arg(128)->Arg(512);

void BM_SlidingDftPushSpan(benchmark::State& state) {
  // Batched Eq. 5 maintenance: identical coefficients, amortized overhead.
  const auto n = static_cast<std::size_t>(state.range(0));
  dsp::SlidingDft dft(n, 3);
  const auto batch = random_signal(1024);
  for (auto _ : state) {
    dft.push_span(batch);
    benchmark::DoNotOptimize(dft.coefficients());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_SlidingDftPushSpan)->Arg(32)->Arg(128)->Arg(512);

void BM_SummarizerPerItem(benchmark::State& state) {
  // Full production path: raw sample -> normalized k-coefficient features.
  dsp::FeatureConfig config;
  config.window_size = static_cast<std::size_t>(state.range(0));
  config.num_coefficients = 2;
  streams::StreamSummarizer summarizer(config);
  common::Pcg32 rng(7, 7);
  Sample value = 0.0;
  for (auto _ : state) {
    value += rng.uniform(-1.0, 1.0);
    summarizer.push(value);
    benchmark::DoNotOptimize(summarizer.features());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SummarizerPerItem)->Arg(32)->Arg(128)->Arg(512);

void BM_SummarizerPushSpan(benchmark::State& state) {
  // Batched production path: push_span through the sliding DFT plus the
  // running normalization sums.
  dsp::FeatureConfig config;
  config.window_size = static_cast<std::size_t>(state.range(0));
  config.num_coefficients = 2;
  streams::StreamSummarizer summarizer(config);
  const auto batch = random_signal(1024);
  for (auto _ : state) {
    summarizer.push_span(batch);
    benchmark::DoNotOptimize(summarizer.features());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_SummarizerPushSpan)->Arg(32)->Arg(128)->Arg(512);

void BM_BurstIngestParallel(benchmark::State& state) {
  // The ingest-burst shape MiddlewareSystem::post_stream_burst parallelizes:
  // many independent (node, stream) summarizers each absorbing a long span.
  // Arg = WorkerPool lane count; lanes=1 exercises the inline (no thread
  // spawned) degradation path, so its row doubles as the overhead guard
  // against BM_SummarizerPushSpan.
  const auto threads = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kStreams = 64;
  dsp::FeatureConfig config;
  config.window_size = 128;
  config.num_coefficients = 2;
  const auto batch = random_signal(1024);
  core::WorkerPool pool(threads);
  std::vector<streams::StreamSummarizer> summarizers;
  summarizers.reserve(kStreams);
  for (std::size_t i = 0; i < kStreams; ++i) {
    summarizers.emplace_back(config);
  }
  for (auto _ : state) {
    pool.parallel_for(summarizers.size(), [&](std::size_t i) {
      summarizers[i].push_span(batch);
    });
    benchmark::DoNotOptimize(summarizers.front().features());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kStreams) *
                          static_cast<std::int64_t>(batch.size()));
  state.counters["threads"] = static_cast<double>(pool.thread_count());
  state.SetLabel("streams=64 span=1024 n=128");
}
BENCHMARK(BM_BurstIngestParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_ExtractFeaturesBatch(benchmark::State& state) {
  // One-shot extraction (query path).
  dsp::FeatureConfig config;
  config.window_size = static_cast<std::size_t>(state.range(0));
  config.num_coefficients = 2;
  const auto window = random_signal(config.window_size);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::extract_features(window, config));
  }
}
BENCHMARK(BM_ExtractFeaturesBatch)->Arg(32)->Arg(128)->Arg(512);

void BM_MbrMatch(benchmark::State& state) {
  // Index-side candidate test: MBR vs query ball.
  common::Pcg32 rng(1, 1);
  std::vector<dsp::Mbr> boxes;
  for (int i = 0; i < 256; ++i) {
    const double lo = rng.uniform(-1.0, 0.9);
    boxes.emplace_back(std::vector<double>{lo, lo},
                       std::vector<double>{lo + 0.05, lo + 0.05});
  }
  const dsp::FeatureVector query({dsp::Complex{0.2, 0.1}});
  for (auto _ : state) {
    int hits = 0;
    for (const dsp::Mbr& box : boxes) {
      hits += box.intersects_ball(query, 0.1) ? 1 : 0;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_MbrMatch);

void BM_IndexStoreMatch(benchmark::State& state) {
  // Per-tick matching cost at one node: `subs` live subscriptions against
  // `mbrs` stored boxes through the key-interval pruned engine (see
  // bench_matching for the pruned-vs-brute comparison). Match sets are
  // consumed by the dedup logic, so rebuild the store each iteration, but
  // time only match().
  const auto mbrs = static_cast<std::size_t>(state.range(0));
  const auto subs = static_cast<std::size_t>(state.range(1));
  common::Pcg32 rng(9, 9);
  const auto expires =
      sim::SimTime::zero() + sim::Duration::seconds(3600);
  for (auto _ : state) {
    state.PauseTiming();
    core::IndexStore store;
    for (std::size_t i = 0; i < mbrs; ++i) {
      const double lo = rng.uniform(-1.0, 0.9);
      core::IndexStore::StoredMbr entry;
      entry.stream = i;
      entry.mbr = dsp::Mbr({lo, lo}, {lo + 0.05, lo + 0.05});
      entry.expires = expires;
      store.add_mbr(std::move(entry));
    }
    for (std::size_t q = 0; q < subs; ++q) {
      core::SimilarityQuery query;
      query.id = q;
      query.features =
          dsp::FeatureVector({dsp::Complex{rng.uniform(-1.0, 1.0),
                                           rng.uniform(-1.0, 1.0)}});
      query.radius = 0.1;
      store.add_subscription(
          std::make_shared<const core::SimilarityQuery>(std::move(query)), 0,
          expires);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(store.match(sim::SimTime::zero()));
  }
}
BENCHMARK(BM_IndexStoreMatch)
    ->Args({20, 10})
    ->Args({100, 50})
    ->Args({500, 200});

void BM_Reconstruct(benchmark::State& state) {
  // Eq. 7 inverse reconstruction (inner-product answering path).
  dsp::FeatureConfig config;
  config.window_size = static_cast<std::size_t>(state.range(0));
  config.num_coefficients = 2;
  const auto features =
      dsp::extract_features(random_signal(config.window_size), config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::reconstruct(features, config));
  }
}
BENCHMARK(BM_Reconstruct)->Arg(32)->Arg(128);

void BM_ZNormalize(benchmark::State& state) {
  const auto window = random_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::z_normalize(window));
  }
}
BENCHMARK(BM_ZNormalize)->Arg(128);

// Captures every finished run for the BENCH_dsp.json emission layer while
// still printing the normal console table.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(sdsi::bench::JsonBenchReporter* sink)
      : sink_(sink) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) {
        continue;
      }
      sdsi::bench::BenchResult result;
      const std::string full = run.benchmark_name();
      const std::size_t slash = full.find('/');
      result.name = full.substr(0, slash);
      result.config =
          slash == std::string::npos ? "" : "n=" + full.substr(slash + 1);
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        result.ops_per_sec = items->second;
      } else if (run.real_accumulated_time > 0.0) {
        result.ops_per_sec = static_cast<double>(run.iterations) /
                             run.real_accumulated_time;
      }
      result.wall_ms = run.real_accumulated_time * 1e3;
      const auto threads = run.counters.find("threads");
      if (threads != run.counters.end()) {
        result.threads = static_cast<std::size_t>(threads->second);
      }
      if (!run.report_label.empty()) {
        result.config = run.report_label;
      }
      sink_->add(std::move(result));
    }
  }

 private:
  sdsi::bench::JsonBenchReporter* sink_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = sdsi::bench::consume_json_flag(argc, argv);
  const bool smoke = sdsi::bench::consume_flag(argc, argv, "--smoke");

  // Rebuild argv so --smoke maps onto a short google-benchmark min time.
  std::vector<char*> args(argv, argv + argc);
  std::string min_time = "--benchmark_min_time=0.02";
  if (smoke) {
    args.push_back(min_time.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());

  sdsi::bench::JsonBenchReporter reporter("dsp");
  JsonCaptureReporter console(&reporter);
  benchmark::RunSpecifiedBenchmarks(&console);
  benchmark::Shutdown();
  if (!json_path.empty() && !reporter.write(json_path)) {
    return 1;
  }
  return 0;
}
