// Micro-benchmarks (google-benchmark) for the stream-processing substrate —
// ablation A5: the paper's Sec III-C claim that incremental coefficient
// maintenance (Eq. 5) beats recomputing the transform per arriving item.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "core/index_store.hpp"
#include "dsp/dft.hpp"
#include "dsp/features.hpp"
#include "dsp/mbr.hpp"
#include "dsp/normalize.hpp"
#include "dsp/sliding_dft.hpp"
#include "streams/summarizer.hpp"

namespace {

using namespace sdsi;

std::vector<Sample> random_signal(std::size_t n) {
  common::Pcg32 rng(n, 9);
  std::vector<Sample> signal(n);
  for (Sample& x : signal) {
    x = rng.uniform(-1.0, 1.0);
  }
  return signal;
}

void BM_NaiveDftPerItem(benchmark::State& state) {
  // Recompute the full O(N^2) transform on every arrival (the strawman).
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto signal = random_signal(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::naive_dft(signal));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NaiveDftPerItem)->Arg(32)->Arg(128)->Arg(512);

void BM_FftPerItem(benchmark::State& state) {
  // Recompute an O(N log N) FFT on every arrival.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto signal = random_signal(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::fft(signal));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FftPerItem)->Arg(32)->Arg(128)->Arg(512);

void BM_SlidingDftPerItem(benchmark::State& state) {
  // Eq. 5: O(k) per arrival.
  const auto n = static_cast<std::size_t>(state.range(0));
  dsp::SlidingDft dft(n, 3);
  common::Pcg32 rng(n, 10);
  for (auto _ : state) {
    dft.push(rng.uniform(-1.0, 1.0));
    benchmark::DoNotOptimize(dft.coefficients());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SlidingDftPerItem)->Arg(32)->Arg(128)->Arg(512);

void BM_SummarizerPerItem(benchmark::State& state) {
  // Full production path: raw sample -> normalized k-coefficient features.
  dsp::FeatureConfig config;
  config.window_size = static_cast<std::size_t>(state.range(0));
  config.num_coefficients = 2;
  streams::StreamSummarizer summarizer(config);
  common::Pcg32 rng(7, 7);
  Sample value = 0.0;
  for (auto _ : state) {
    value += rng.uniform(-1.0, 1.0);
    summarizer.push(value);
    benchmark::DoNotOptimize(summarizer.features());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SummarizerPerItem)->Arg(32)->Arg(128)->Arg(512);

void BM_ExtractFeaturesBatch(benchmark::State& state) {
  // One-shot extraction (query path).
  dsp::FeatureConfig config;
  config.window_size = static_cast<std::size_t>(state.range(0));
  config.num_coefficients = 2;
  const auto window = random_signal(config.window_size);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::extract_features(window, config));
  }
}
BENCHMARK(BM_ExtractFeaturesBatch)->Arg(32)->Arg(128)->Arg(512);

void BM_MbrMatch(benchmark::State& state) {
  // Index-side candidate test: MBR vs query ball.
  common::Pcg32 rng(1, 1);
  std::vector<dsp::Mbr> boxes;
  for (int i = 0; i < 256; ++i) {
    const double lo = rng.uniform(-1.0, 0.9);
    boxes.emplace_back(std::vector<double>{lo, lo},
                       std::vector<double>{lo + 0.05, lo + 0.05});
  }
  const dsp::FeatureVector query({dsp::Complex{0.2, 0.1}});
  for (auto _ : state) {
    int hits = 0;
    for (const dsp::Mbr& box : boxes) {
      hits += box.intersects_ball(query, 0.1) ? 1 : 0;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_MbrMatch);

void BM_IndexStoreMatch(benchmark::State& state) {
  // Per-tick matching cost at one node: `subs` live subscriptions scanned
  // against `mbrs` stored boxes (the intentionally simple linear pass;
  // Table I workloads put both in the tens). Match sets are consumed by the
  // dedup logic, so rebuild the store each iteration, but time only match().
  const auto mbrs = static_cast<std::size_t>(state.range(0));
  const auto subs = static_cast<std::size_t>(state.range(1));
  common::Pcg32 rng(9, 9);
  const auto expires =
      sim::SimTime::zero() + sim::Duration::seconds(3600);
  for (auto _ : state) {
    state.PauseTiming();
    core::IndexStore store;
    for (std::size_t i = 0; i < mbrs; ++i) {
      const double lo = rng.uniform(-1.0, 0.9);
      core::IndexStore::StoredMbr entry;
      entry.stream = i;
      entry.mbr = dsp::Mbr({lo, lo}, {lo + 0.05, lo + 0.05});
      entry.expires = expires;
      store.add_mbr(std::move(entry));
    }
    for (std::size_t q = 0; q < subs; ++q) {
      core::SimilarityQuery query;
      query.id = q;
      query.features =
          dsp::FeatureVector({dsp::Complex{rng.uniform(-1.0, 1.0),
                                           rng.uniform(-1.0, 1.0)}});
      query.radius = 0.1;
      store.add_subscription(
          std::make_shared<const core::SimilarityQuery>(std::move(query)), 0,
          expires);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(store.match(sim::SimTime::zero()));
  }
}
BENCHMARK(BM_IndexStoreMatch)
    ->Args({20, 10})
    ->Args({100, 50})
    ->Args({500, 200});

void BM_Reconstruct(benchmark::State& state) {
  // Eq. 7 inverse reconstruction (inner-product answering path).
  dsp::FeatureConfig config;
  config.window_size = static_cast<std::size_t>(state.range(0));
  config.num_coefficients = 2;
  const auto features =
      dsp::extract_features(random_signal(config.window_size), config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::reconstruct(features, config));
  }
}
BENCHMARK(BM_Reconstruct)->Arg(32)->Arg(128);

void BM_ZNormalize(benchmark::State& state) {
  const auto window = random_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::z_normalize(window));
  }
}
BENCHMARK(BM_ZNormalize)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
