// Kernel scale bench (BENCH_scale.json): how far the simulation kernel
// carries the system as the ring grows, and how much of that is the
// scheduler itself.
//
// Two measurements per node count in the sweep (default 1000, 5000, 10000,
// 50000):
//
//  1. Kernel hold-model (PHOLD-style): the event population is shaped like
//     the real system at N nodes — N periodic stream ticks at the Table I
//     cadence plus N/4 self-perpetuating one-shot "message" chains with
//     1–101 ms holds — but event bodies do constant work, so events/sec
//     measures the scheduler, not the middleware. Run on both backends:
//     the calendar queue and the pre-change binary-heap kernel
//     (ExperimentConfig::queue_backend = kLegacyHeap, the
//     SDSI_SIM_HEAP_QUEUE escape hatch). The chain closures mirror
//     routing::RoutingSystem::schedule_msg: pooled (reference-carrying,
//     inline in EventFn) on the calendar backend, message-by-value
//     (heap-allocated closure) on the legacy backend — the same shapes the
//     real message path produces on each.
//  2. Full-system run (PrefixRing substrate, Table I workload): end-to-end
//     events/sec, peak RSS, and per-node load (messages/s/node — the
//     paper's boundedness claim, carried two orders of magnitude past
//     Section V).
//
// At the reference size (10000 nodes; 2000 under --smoke) both
// measurements also run as heap-vs-calendar pairs. The release acceptance
// bar is >= 3x on the kernel hold-model at 10000 nodes (scheduler_speedup
// row); the full-system ratio (end_to_end_speedup row) is reported
// alongside and is smaller by Amdahl's law — the shared middleware body
// (DFT update, feature extraction, MBR batching, store upkeep) dominates
// once per-event scheduling cost stops mattering. tools/scale_smoke
// enforces floors on the smoke variant in CI. All rows land in the JSON so
// successive PRs are measured against recorded numbers, not prose.
//
// Flags: --smoke (truncated 2000-node sweep), --nodes LIST (comma-separated
// override), --json PATH (BENCH_scale.json location).
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"

namespace {

// ---------------------------------------------------------------------------
// Kernel hold-model.

/// Stand-in for a routing::Message payload: big enough (72 bytes) that a
/// by-value capture overflows every small-buffer tier, as the real Message
/// does.
struct FakeMsg {
  std::uint64_t words[9] = {};
};

/// N/4 self-perpetuating one-shot chains. Each hop draws its next hold from
/// a per-chain LCG (identical on both backends, so event order matches
/// bit-for-bit) and reschedules itself, carrying the message the way the
/// real message path would on the active backend.
class HoldChains {
 public:
  HoldChains(sdsi::sim::Simulator& sim, std::size_t count)
      : sim_(sim), rng_(count), msgs_(count) {
    for (std::size_t c = 0; c < count; ++c) {
      rng_[c] = 0x9e3779b97f4a7c15ull * (c + 1);
      msgs_[c].words[0] = rng_[c];
      hop(c);
    }
  }

  std::uint64_t sink() const noexcept { return sink_; }

 private:
  void hop(std::size_t c) {
    std::uint64_t& r = rng_[c];
    r = r * 6364136223846793005ull + 1442695040888963407ull;
    // Holds of 1..101 ms, the ballpark of substrate hop + processing delays.
    const sdsi::sim::Duration delay = sdsi::sim::Duration::micros(
        1000 + static_cast<std::int64_t>((r >> 33) % 100000));
    if (sim_.pooled_events()) {
      // Pooled shape: the closure carries only a reference (fits inline in
      // EventFn), like the PoolPtr-backed schedule_msg path.
      sim_.schedule_after(delay, [this, c] {
        consume(msgs_[c]);
        hop(c);
      });
    } else {
      // Pre-change shape: the message rides in the closure by value, like
      // the copy-captured routing::Message in a heap-allocated closure.
      const FakeMsg m = msgs_[c];
      sim_.schedule_after(delay, [this, c, m] {
        consume(m);
        hop(c);
      });
    }
  }

  void consume(const FakeMsg& m) noexcept { sink_ ^= m.words[0]; }

  sdsi::sim::Simulator& sim_;
  std::vector<std::uint64_t> rng_;
  std::vector<FakeMsg> msgs_;
  std::uint64_t sink_ = 0;
};

struct KernelRow {
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  double wall_ms = 0.0;
};

KernelRow run_kernel_point(std::size_t nodes, sdsi::sim::QueueBackend backend,
                           sdsi::sim::Duration horizon) {
  using namespace sdsi;
  sim::Simulator sim(backend);

  // N periodic "stream ticks" at the Table I cadence (200 ms), phases
  // spread across the period; bodies touch one per-task counter.
  std::vector<std::uint64_t> task_state(nodes, 0);
  const sim::Duration period = sim::Duration::millis(200);
  for (std::size_t i = 0; i < nodes; ++i) {
    const sim::Duration phase = sim::Duration::micros(
        static_cast<std::int64_t>((i * 200000ull) / nodes));
    sim.schedule_periodic(sim::SimTime::zero() + phase + period, period,
                          [&task_state, i] { task_state[i] += i | 1; });
  }
  HoldChains chains(sim, nodes / 4);

  const auto start = std::chrono::steady_clock::now();
  sim.run_until(sim::SimTime::zero() + horizon);
  const auto stop = std::chrono::steady_clock::now();
  const double wall_s = std::chrono::duration<double>(stop - start).count();

  KernelRow row;
  row.events = sim.executed_events();
  row.wall_ms = wall_s * 1e3;
  row.events_per_sec =
      wall_s > 0.0 ? static_cast<double>(row.events) / wall_s : 0.0;
  // Keep the body state observable so the work cannot be optimized out.
  if (chains.sink() == 0xdeadbeef && task_state[0] == 1) {
    std::fprintf(stderr, "unreachable\n");
  }
  return row;
}

// ---------------------------------------------------------------------------
// Full-system sweep.

struct ScaleRow {
  std::size_t nodes = 0;
  double events_per_sec = 0.0;
  double wall_ms = 0.0;
  double per_node_load = 0.0;
  std::uint64_t events = 0;
  std::size_t peak_rss_kb = 0;
};

ScaleRow run_system_point(std::size_t nodes, sdsi::sim::QueueBackend backend,
                          sdsi::sim::Duration warmup,
                          sdsi::sim::Duration measure) {
  using namespace sdsi;
  core::ExperimentConfig config;
  config.num_nodes = nodes;
  config.substrate = core::SubstrateKind::kPrefixRing;
  config.warmup = warmup;
  config.measure = measure;
  config.queue_backend = backend;
  core::Experiment experiment(config);

  // Bootstrap (substrate build + workload scheduling) happens outside the
  // timed window: events/sec measures the kernel executing events, not the
  // one-time ring construction both backends share.
  experiment.prepare();
  const auto start = std::chrono::steady_clock::now();
  experiment.run();
  const auto stop = std::chrono::steady_clock::now();
  const double wall_s =
      std::chrono::duration<double>(stop - start).count();

  ScaleRow row;
  row.nodes = nodes;
  row.events = experiment.simulator().executed_events();
  row.wall_ms = wall_s * 1e3;
  row.events_per_sec =
      wall_s > 0.0 ? static_cast<double>(row.events) / wall_s : 0.0;
  row.per_node_load = experiment.load_report().total;
  row.peak_rss_kb = bench::current_peak_rss_kb();
  return row;
}

std::vector<std::size_t> parse_nodes_list(const std::string& list) {
  std::vector<std::size_t> nodes;
  std::size_t begin = 0;
  while (begin < list.size()) {
    std::size_t end = list.find(',', begin);
    if (end == std::string::npos) {
      end = list.size();
    }
    nodes.push_back(
        static_cast<std::size_t>(std::stoull(list.substr(begin, end - begin))));
    begin = end + 1;
  }
  return nodes;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sdsi;
  const bool smoke = bench::consume_flag(argc, argv, "--smoke");
  const std::string json_path = bench::consume_json_flag(argc, argv);
  const std::string nodes_flag =
      bench::consume_value_flag(argc, argv, "--nodes");

  // Short steady-state windows: long enough that periodic stream/notify
  // machinery dominates, short enough that the 50k point stays a bench,
  // not a soak test.
  const sim::Duration warmup =
      smoke ? sim::Duration::seconds(1) : sim::Duration::seconds(2);
  const sim::Duration measure =
      smoke ? sim::Duration::seconds(3) : sim::Duration::seconds(6);
  const sim::Duration kernel_horizon =
      smoke ? sim::Duration::seconds(4) : sim::Duration::seconds(8);

  std::vector<std::size_t> sweep =
      smoke ? std::vector<std::size_t>{2000}
            : std::vector<std::size_t>{1000, 5000, 10000, 50000};
  if (!nodes_flag.empty()) {
    sweep = parse_nodes_list(nodes_flag);
  }
  const std::size_t reference_nodes = smoke ? 2000 : 10000;

  std::printf("=== Kernel scale sweep (%s) ===\n", smoke ? "smoke" : "full");
  bench::JsonBenchReporter reporter("scale");
  common::TextTable table({"Nodes", "Kernel cal ev/s", "Kernel heap ev/s",
                           "Kern x", "System ev/s", "Load/node/s",
                           "Peak RSS MB"});

  double reference_kernel_speedup = 0.0;
  for (const std::size_t nodes : sweep) {
    // Scheduler-only rows: both backends execute the identical event
    // stream, so the ratio isolates per-event scheduling cost. Trials are
    // interleaved and the best of each side is kept: on a shared runner,
    // co-tenant interference only ever slows a run down, so the fastest
    // sample is the least-contaminated measurement of either backend.
    KernelRow kernel_heap;
    KernelRow kernel_cal;
    const int trials = smoke ? 2 : 5;
    for (int trial = 0; trial < trials; ++trial) {
      const KernelRow h = run_kernel_point(
          nodes, sim::QueueBackend::kLegacyHeap, kernel_horizon);
      const KernelRow c = run_kernel_point(
          nodes, sim::QueueBackend::kCalendar, kernel_horizon);
      if (h.events_per_sec > kernel_heap.events_per_sec) {
        kernel_heap = h;
      }
      if (c.events_per_sec > kernel_cal.events_per_sec) {
        kernel_cal = c;
      }
    }
    if (kernel_heap.events != kernel_cal.events) {
      std::fprintf(
          stderr, "kernel event-count mismatch @%zu: heap=%llu calendar=%llu\n",
          nodes, static_cast<unsigned long long>(kernel_heap.events),
          static_cast<unsigned long long>(kernel_cal.events));
      return 1;
    }
    // Gated speedup = best-of-trials calendar over best-of-trials heap.
    // On a shared runner co-tenant interference only ever slows a run, so
    // each backend's fastest sample is its least-contaminated measurement;
    // per-pair ratios are NOT used because the two sides of a pair run for
    // very different wall times (the calendar clears the same event count
    // ~3x faster) and so do not share an interference phase.
    const double kernel_speedup =
        kernel_heap.events_per_sec > 0.0
            ? kernel_cal.events_per_sec / kernel_heap.events_per_sec
            : 0.0;
    if (nodes == reference_nodes) {
      reference_kernel_speedup = kernel_speedup;
    }

    const ScaleRow row = run_system_point(
        nodes, sim::QueueBackend::kCalendar, warmup, measure);

    table.begin_row().add_int(static_cast<long long>(nodes));
    table.add_num(kernel_cal.events_per_sec, 0);
    table.add_num(kernel_heap.events_per_sec, 0);
    table.add_num(kernel_speedup, 2);
    table.add_num(row.events_per_sec, 0);
    table.add_num(row.per_node_load, 3);
    table.add_num(static_cast<double>(row.peak_rss_kb) / 1024.0, 1);

    const std::string nodes_cfg = "nodes=" + std::to_string(nodes);
    reporter.add(bench::BenchResult{"sim_kernel_events",
                                    nodes_cfg + " backend=calendar",
                                    kernel_cal.events_per_sec,
                                    kernel_cal.wall_ms});
    reporter.add(bench::BenchResult{"sim_kernel_events",
                                    nodes_cfg + " backend=heap",
                                    kernel_heap.events_per_sec,
                                    kernel_heap.wall_ms});
    bench::BenchResult events_row{
        "system_events", nodes_cfg + " substrate=prefix backend=calendar",
        row.events_per_sec, row.wall_ms};
    events_row.peak_rss_kb = row.peak_rss_kb;
    reporter.add(events_row);
    reporter.add(bench::BenchResult{"per_node_load",
                                    nodes_cfg + " substrate=prefix",
                                    row.per_node_load, row.wall_ms});
  }
  std::printf("%s", table.render().c_str());

  // End-to-end backend comparison at the reference size: identical
  // configuration and event order, different scheduler internals, full
  // middleware bodies. Heap first so the pooled run's RSS sample is not
  // inflated by the baseline's queue.
  std::printf("\n=== Full-system backends @ %zu nodes ===\n", reference_nodes);
  const ScaleRow heap = run_system_point(reference_nodes,
                                         sim::QueueBackend::kLegacyHeap,
                                         warmup, measure);
  const ScaleRow calendar = run_system_point(reference_nodes,
                                             sim::QueueBackend::kCalendar,
                                             warmup, measure);
  const double end_to_end = heap.events_per_sec > 0.0
                                ? calendar.events_per_sec / heap.events_per_sec
                                : 0.0;
  std::printf("heap:     %12.0f events/s (%.1f ms)\n", heap.events_per_sec,
              heap.wall_ms);
  std::printf("calendar: %12.0f events/s (%.1f ms)\n", calendar.events_per_sec,
              calendar.wall_ms);
  std::printf("end-to-end speedup: %.2fx (middleware body included)\n",
              end_to_end);
  std::printf("kernel speedup:     %.2fx (acceptance bar: >= 3x at 10000)\n",
              reference_kernel_speedup);
  if (heap.events != calendar.events) {
    std::fprintf(stderr,
                 "backend event-count mismatch: heap=%llu calendar=%llu\n",
                 static_cast<unsigned long long>(heap.events),
                 static_cast<unsigned long long>(calendar.events));
    return 1;
  }

  const std::string ref_config = "nodes=" + std::to_string(reference_nodes);
  bench::BenchResult heap_row{"system_events",
                              ref_config + " substrate=prefix backend=heap",
                              heap.events_per_sec, heap.wall_ms};
  heap_row.peak_rss_kb = heap.peak_rss_kb;
  reporter.add(heap_row);
  reporter.add(bench::BenchResult{"scheduler_speedup",
                                  ref_config + " kernel hold-model",
                                  reference_kernel_speedup, 0.0});
  reporter.add(bench::BenchResult{"end_to_end_speedup",
                                  ref_config + " substrate=prefix", end_to_end,
                                  heap.wall_ms + calendar.wall_ms});

  if (!json_path.empty() && !reporter.write(json_path)) {
    return 1;
  }
  return 0;
}
