// Cross-strategy comparison bench (BENCH_strategies.json): every built-in
// indexing strategy (core/strategy.hpp: dft, ecm, lsh) runs the identical
// Table I workload on the same seeds, and the bench reduces each run into
// the four axes the strategies actually trade against each other:
//
//   recall                    — delivered / oracle-predicted (query, stream)
//                               pairs, fault-free (the cost of lossy
//                               summaries or routing)
//   message_p99_over_median   — per-node delivered-message imbalance (how
//                               evenly the content-to-key map spreads load)
//   hops_mbr / hops_query /   — overlay hops per message class (routing
//   hops_response               locality of the key map)
//   msgs_per_query            — total delivered messages over the
//                               measurement window per posed query (the
//                               multi-probe overhead axis: lsh pays extra
//                               multicasts for its neighbor buckets)
//
// Geometry: the sweep uses a 64-sample window so a full run fits CI; the
// tradeoffs are driven by the key maps and summaries, not the window
// length. docs/STRATEGIES.md renders the resulting table and discusses it;
// tools/make_figures --strategies regenerates that table from this JSON.
//
// Flags: --smoke (one seed, smaller ring), --json PATH.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/strategy.hpp"

namespace {

using namespace sdsi;

struct StrategyPoint {
  double recall = 0.0;
  double message_ratio = 0.0;  // per-node delivered-message p99 / median
  double hops_mbr = 0.0;
  double hops_query = 0.0;
  double hops_response = 0.0;
  double msgs_per_query = 0.0;
  double wall_ms = 0.0;
  std::uint64_t oracle_pairs = 0;
};

core::ExperimentConfig scenario(core::StrategyKind kind, std::size_t nodes,
                                std::uint64_t seed) {
  core::ExperimentConfig config;
  config.num_nodes = nodes;
  config.id_bits = 16;
  config.seed = seed;
  config.strategy.kind = kind;
  config.features.window_size = 64;
  config.features.num_coefficients = 2;
  config.warmup = sim::Duration::seconds(20);
  config.measure = sim::Duration::seconds(30);
  config.oracle_sample_period = sim::Duration::seconds(1);
  // Publications from the last window instants need their notify tick
  // before the reports are read, or every strategy reads ~0.94 recall.
  config.drain = sim::Duration::seconds(5);
  return config;
}

StrategyPoint run_point(const core::ExperimentConfig& config) {
  const auto start = std::chrono::steady_clock::now();
  core::Experiment experiment(config);
  experiment.run();
  const auto stop = std::chrono::steady_clock::now();

  StrategyPoint point;
  const core::RobustnessReport robustness = experiment.robustness_report();
  point.recall = robustness.recall;
  point.oracle_pairs = robustness.oracle_pairs;
  point.message_ratio = robustness.message_load_p99_over_median;
  const core::HopsReport hops = experiment.hops_report();
  point.hops_mbr = hops.mbr;
  point.hops_query = hops.query;
  point.hops_response = hops.response;
  const core::LoadReport load = experiment.load_report();
  const core::QualityReport quality = experiment.quality_report();
  // load.total is delivered msgs/node/s over the measurement window.
  const double total_msgs = load.total *
                            static_cast<double>(config.num_nodes) *
                            experiment.measured_seconds();
  point.msgs_per_query =
      quality.queries_posed == 0
          ? 0.0
          : total_msgs / static_cast<double>(quality.queries_posed);
  point.wall_ms = std::chrono::duration<double>(stop - start).count() * 1e3;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::consume_flag(argc, argv, "--smoke");
  const std::string json_path = bench::consume_json_flag(argc, argv);

  const std::size_t nodes = smoke ? 16 : 32;
  const std::vector<std::uint64_t> seeds =
      smoke ? std::vector<std::uint64_t>{42}
            : std::vector<std::uint64_t>{42, 43, 44};
  const std::vector<core::StrategyKind> strategies = {
      core::StrategyKind::kDft, core::StrategyKind::kEcm,
      core::StrategyKind::kLsh};

  std::printf("=== Indexing-strategy comparison (%s) ===\n",
              smoke ? "smoke" : "full");
  std::printf("%zu nodes, window 64, seeds:", nodes);
  for (const std::uint64_t seed : seeds) {
    std::printf(" %llu", static_cast<unsigned long long>(seed));
  }
  std::printf("\n\n");

  bench::JsonBenchReporter reporter("strategies");
  bool ok = true;

  common::TextTable table({"Strategy", "Seed", "Recall", "Msg p99/med",
                           "MBR hops", "Query hops", "Msgs/query"});
  for (const core::StrategyKind kind : strategies) {
    for (const std::uint64_t seed : seeds) {
      const core::ExperimentConfig config = scenario(kind, nodes, seed);
      const StrategyPoint point = run_point(config);
      if (point.oracle_pairs == 0) {
        std::fprintf(stderr, "%s seed %llu: oracle saw no pairs\n",
                     core::strategy_name(kind),
                     static_cast<unsigned long long>(seed));
        ok = false;
      }

      table.begin_row().add_cell(core::strategy_name(kind));
      table.add_int(static_cast<long long>(seed));
      table.add_num(point.recall, 4);
      table.add_num(point.message_ratio, 2);
      table.add_num(point.hops_mbr, 2);
      table.add_num(point.hops_query, 2);
      table.add_num(point.msgs_per_query, 1);

      const std::string cfg = std::string("strategy=") +
                              core::strategy_name(kind) +
                              " nodes=" + std::to_string(nodes) +
                              " window=64 seed=" + std::to_string(seed);
      reporter.add(
          bench::BenchResult{"recall", cfg, point.recall, point.wall_ms});
      reporter.add(bench::BenchResult{"message_p99_over_median", cfg,
                                      point.message_ratio, point.wall_ms});
      reporter.add(
          bench::BenchResult{"hops_mbr", cfg, point.hops_mbr, point.wall_ms});
      reporter.add(bench::BenchResult{"hops_query", cfg, point.hops_query,
                                      point.wall_ms});
      reporter.add(bench::BenchResult{"hops_response", cfg,
                                      point.hops_response, point.wall_ms});
      reporter.add(bench::BenchResult{"msgs_per_query", cfg,
                                      point.msgs_per_query, point.wall_ms});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\naxes: recall = delivered/oracle pairs (fault-free); msg p99/med = "
      "per-node\ndelivered-message imbalance; hops = overlay hops per "
      "message class;\nmsgs/query = delivered messages per posed query "
      "(multi-probe overhead).\n");

  if (!json_path.empty() && !reporter.write(json_path)) {
    return 1;
  }
  return ok ? 0 : 1;
}
