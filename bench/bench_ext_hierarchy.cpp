// Ablation A4 (Sec VI-B): hierarchical cluster-leader feature-space
// partitioning for variable-selectivity queries, vs the flat key-range
// multicast.
//
// The hierarchy clusters *ring-adjacent* data centers. Under content-based
// routing, ring adjacency IS feature adjacency (Eq. 6 is monotone in the
// routing coordinate), so each leaf's stored content occupies a narrow slice
// of feature space and cluster boxes stay tight. A leaf here therefore holds
// the summaries whose keys fall on its arc — the content-routed store — not
// its own stream.
//
// Flat range multicast must contact every node under the query's key range
// (~ N * radius nodes) regardless of what they store; the hierarchy climbs
// O(log N) leaders and descends only into subtrees whose advertised boxes
// intersect the ball, pruning with all 2k feature dimensions instead of the
// single routing coordinate.
#include <algorithm>
#include <cstdio>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/mapper.hpp"
#include "ext/hierarchy.hpp"
#include "routing/static_ring.hpp"
#include "streams/generators.hpp"
#include "streams/summarizer.hpp"

int main() {
  using namespace sdsi;
  std::printf("=== Sec VI-B extension: hierarchical partitioning vs flat range multicast ===\n");

  constexpr std::size_t kNodes = 256;
  constexpr std::size_t kStreams = 256;
  dsp::FeatureConfig features;
  features.window_size = 128;
  features.num_coefficients = 2;

  common::RngFactory rng_factory(7);
  const common::IdSpace space(32);
  const core::SummaryMapper mapper(space);
  std::vector<Key> ring_ids = routing::hash_node_ids(kNodes, space, 3);
  std::sort(ring_ids.begin(), ring_ids.end());

  // successor(key) as a ring position in [0, kNodes).
  auto ring_position_of = [&](Key key) {
    const auto it =
        std::lower_bound(ring_ids.begin(), ring_ids.end(), key);
    return static_cast<NodeIndex>(
        it == ring_ids.end() ? 0 : static_cast<std::size_t>(
                                       it - ring_ids.begin()));
  };

  // Build the hierarchy over ring positions and ingest the content-routed
  // store: every stream's current summaries live at successor(h(X)).
  ext::HierarchyConfig hierarchy_config;
  hierarchy_config.cluster_size = 4;
  hierarchy_config.slack = 0.005;
  ext::HierarchicalIndex hierarchy(kNodes, hierarchy_config);
  std::vector<std::vector<dsp::FeatureVector>> stored(kNodes);
  std::vector<dsp::FeatureVector> all_points;
  for (std::size_t s = 0; s < kStreams; ++s) {
    streams::RandomWalkGenerator walk(rng_factory.make("walk", s));
    streams::StreamSummarizer summarizer(features);
    for (std::size_t i = 0; i < features.window_size; ++i) {
      summarizer.push(walk.next());
    }
    for (int i = 0; i < 10; ++i) {
      summarizer.push(walk.next());
      if (const auto fv = summarizer.features()) {
        const NodeIndex home = ring_position_of(mapper.key_for(*fv));
        hierarchy.update(home, *fv);
        stored[home].push_back(*fv);
        all_points.push_back(*fv);
      }
    }
  }

  // Flat comparison: nodes under the key-range image of [q - r, q + r].
  auto flat_nodes_contacted = [&](const dsp::FeatureVector& q, double r) {
    const auto [lo, hi] = mapper.query_range(q, r);
    std::size_t count = 1;  // successor(lo)
    for (const Key id : ring_ids) {
      count += space.in_closed(id, lo, hi) ? 1u : 0u;
    }
    return count;
  };

  common::Pcg32 query_rng = rng_factory.make("queries");
  auto evaluate = [&](const ext::HierarchicalIndex& index,
                      const std::vector<std::vector<dsp::FeatureVector>>& data,
                      const std::vector<dsp::FeatureVector>& probes,
                      const char* label) {
    std::printf("\n--- workload: %s ---\n", label);
    common::TextTable table({"Radius", "Flat msgs/query", "Hier msgs/query",
                             "Hier candidates", "Nodes with matches",
                             "Savings"});
    for (const double radius : {0.05, 0.1, 0.2, 0.4, 0.8}) {
      common::OnlineStats flat_msgs;
      common::OnlineStats hier_msgs;
      common::OnlineStats hier_candidates;
      common::OnlineStats matching_nodes;
      for (int q = 0; q < 200; ++q) {
        const auto origin = static_cast<NodeIndex>(query_rng.bounded(kNodes));
        const dsp::FeatureVector& probe = probes[query_rng.bounded(
            static_cast<std::uint32_t>(probes.size()))];
        flat_msgs.add(
            static_cast<double>(flat_nodes_contacted(probe, radius)));
        const auto result = index.query(origin, probe, radius);
        hier_msgs.add(static_cast<double>(result.messages));
        hier_candidates.add(
            static_cast<double>(result.candidate_leaves.size()));
        std::size_t with_matches = 0;
        for (NodeIndex node = 0; node < kNodes; ++node) {
          const bool any = std::any_of(
              data[node].begin(), data[node].end(),
              [&](const dsp::FeatureVector& p) {
                return p.distance(probe) <= radius;
              });
          with_matches += any ? 1u : 0u;
        }
        matching_nodes.add(static_cast<double>(with_matches));
      }
      table.begin_row()
          .add_num(radius, 2)
          .add_num(flat_msgs.mean(), 1)
          .add_num(hier_msgs.mean(), 1)
          .add_num(hier_candidates.mean(), 1)
          .add_num(matching_nodes.mean(), 1)
          .add_cell(
              common::format_fixed(flat_msgs.mean() / hier_msgs.mean(), 1) +
              "x");
    }
    std::printf("%s", table.render().c_str());
  };

  evaluate(hierarchy, stored, all_points, "diffuse (random-walk streams)");

  // Clustered workload: streams fall into a few behavioral archetypes (the
  // variable-selectivity scenario Sec VI-B motivates). Feature mass
  // concentrates around the archetype points, so subtree boxes are tight in
  // every dimension and wide queries over sparse regions prune hard.
  ext::HierarchicalIndex clustered_index(kNodes, hierarchy_config);
  std::vector<std::vector<dsp::FeatureVector>> clustered_stored(kNodes);
  std::vector<dsp::FeatureVector> clustered_points;
  common::Pcg32 cluster_rng = rng_factory.make("clusters");
  std::vector<std::array<double, 4>> archetypes;
  for (int c = 0; c < 8; ++c) {
    archetypes.push_back({cluster_rng.uniform(-0.5, 0.5),
                          cluster_rng.uniform(-0.5, 0.5),
                          cluster_rng.uniform(-0.3, 0.3),
                          cluster_rng.uniform(-0.3, 0.3)});
  }
  for (std::size_t s = 0; s < kStreams * 10; ++s) {
    const auto& base = archetypes[s % archetypes.size()];
    const dsp::FeatureVector point(
        {dsp::Complex{base[0] + cluster_rng.uniform(-0.02, 0.02),
                      base[1] + cluster_rng.uniform(-0.02, 0.02)},
         dsp::Complex{base[2] + cluster_rng.uniform(-0.02, 0.02),
                      base[3] + cluster_rng.uniform(-0.02, 0.02)}});
    const NodeIndex home = ring_position_of(mapper.key_for(point));
    clustered_index.update(home, point);
    clustered_stored[home].push_back(point);
    clustered_points.push_back(point);
  }
  evaluate(clustered_index, clustered_stored, clustered_points,
           "clustered (8 behavioral archetypes)");

  std::printf(
      "\nShape check: on diffuse data the hierarchy roughly ties with the\n"
      "flat multicast (only the routing coordinate prunes); on clustered\n"
      "data — Sec VI-B's variable-selectivity scenario — wide queries prune\n"
      "whole subtrees in every feature dimension and win by a growing\n"
      "factor. Update damping (diffuse): %llu updates -> %llu messages.\n",
      static_cast<unsigned long long>(hierarchy.total_updates()),
      static_cast<unsigned long long>(hierarchy.total_update_messages()));
  return 0;
}
