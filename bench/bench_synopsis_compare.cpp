// Synopsis ablation: DFT (the paper's choice) vs Haar wavelets (the SWAT
// family) as the feature transform under the distributed index.
//
// Both are orthonormal, so correctness (no false dismissals) is identical;
// what differs is energy compaction — how much of each window's shape the
// first k coefficients capture — which controls the false-positive rate and
// the tightness of MBRs. DFT wins on smooth/oscillatory data, Haar on
// piecewise-level data (host-load-like plateaus and steps).
#include <algorithm>
#include <cstdio>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "dsp/dft.hpp"
#include "dsp/features.hpp"
#include "dsp/haar.hpp"
#include "streams/generators.hpp"

namespace {

using namespace sdsi;

/// Fraction of a z-normalized window's (unit) energy captured by the first
/// k retained coefficients of each transform.
struct Capture {
  double fourier = 0.0;
  double haar = 0.0;
};

Capture captured_energy(std::span<const Sample> window, std::size_t k) {
  const auto z = dsp::z_normalize(window);
  Capture out;
  const auto spectrum = dsp::naive_dft(z);
  for (std::size_t f = 1; f <= k; ++f) {
    // Conjugate mirror: each retained non-DC frequency carries its twin.
    out.fourier += 2.0 * std::norm(spectrum[f]);
  }
  const auto wavelet = dsp::haar_transform(z);
  // Match the Fourier budget: 2k real numbers = 2k Haar coefficients.
  for (std::size_t i = 1; i <= 2 * k && i < wavelet.size(); ++i) {
    out.haar += wavelet[i] * wavelet[i];
  }
  return out;
}

/// A host-load-like source with sharp plateaus (level shifts) — Haar's
/// native territory.
class PlateauGenerator final : public streams::StreamGenerator {
 public:
  explicit PlateauGenerator(common::Pcg32 rng) : rng_(rng) {}
  Sample next() override {
    if (rng_.uniform01() < 0.03) {
      level_ = rng_.uniform(0.0, 4.0);
    }
    return level_ + 0.02 * rng_.normal();
  }
  std::string name() const override { return "plateau"; }

 private:
  common::Pcg32 rng_;
  double level_ = 1.0;
};

}  // namespace

int main() {
  std::printf("=== Synopsis ablation: DFT vs Haar energy capture (k=2, W=128) ===\n");
  constexpr std::size_t kWindow = 128;
  constexpr std::size_t kCoefficients = 2;

  common::RngFactory rng_factory(17);
  struct Source {
    const char* name;
    std::unique_ptr<streams::StreamGenerator> generator;
  };
  Source sources[] = {
      {"random-walk (diffusive)",
       std::make_unique<streams::RandomWalkGenerator>(
           rng_factory.make("walk"))},
      {"host-load (AR + diurnal)",
       std::make_unique<streams::HostLoadGenerator>(
           rng_factory.make("load"))},
      {"plateau (level shifts)",
       std::make_unique<PlateauGenerator>(rng_factory.make("plateau"))},
  };

  common::TextTable table({"Stream family", "DFT energy captured",
                           "Haar energy captured", "Winner"});
  for (Source& source : sources) {
    std::vector<Sample> window(kWindow);
    for (Sample& x : window) {
      x = source.generator->next();
    }
    common::OnlineStats fourier;
    common::OnlineStats haar;
    for (int step = 0; step < 4000; ++step) {
      window.erase(window.begin());
      window.push_back(source.generator->next());
      if (step % 8 != 0) {
        continue;
      }
      const Capture capture = captured_energy(window, kCoefficients);
      fourier.add(capture.fourier);
      haar.add(capture.haar);
    }
    table.begin_row()
        .add_cell(source.name)
        .add_num(fourier.mean(), 3)
        .add_num(haar.mean(), 3)
        .add_cell(fourier.mean() >= haar.mean() ? "DFT" : "Haar");
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nHigher capture => tighter lower bounds => fewer false-positive\n"
      "candidates shipped to the aggregators. Note the honest result: DFT\n"
      "edges out Haar even on level-shift data, because sliding windows put\n"
      "the steps at arbitrary offsets and Haar only compacts steps aligned\n"
      "to its dyadic grid (the aligned case is covered by unit tests, where\n"
      "Haar captures ~100%%). Both transforms keep the no-false-dismissal\n"
      "guarantee; the middleware switches with one config field\n"
      "(FeatureConfig::synopsis).\n");
  return 0;
}
