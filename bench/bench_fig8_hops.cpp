// Figure 8: average number of hops traversed by each message type before
// being processed.
//
// Paper shapes: point-routed messages (MBRs, responses, the initial query
// copy) take ~(1/2) log2 N hops; range-forwarded "internal" copies take one
// ring hop each, but a query's range walk makes queries the slowest to fully
// propagate.
#include "bench/bench_common.hpp"

int main() {
  using namespace sdsi;
  std::printf("=== Figure 8: average hops traversed by a request ===\n");

  std::vector<core::ExperimentConfig> configs;
  for (const std::size_t n : bench::paper_node_counts()) {
    configs.push_back(bench::paper_experiment(n));
  }
  bench::print_workload_banner(configs.front().workload);
  const auto experiments = bench::run_sweep(configs);

  common::TextTable table({"Nodes", "MBR", "Internal MBR", "Query",
                           "Internal query", "Response", "0.5*log2(N)"});
  for (const auto& experiment : experiments) {
    const core::HopsReport hops = experiment->hops_report();
    const auto n = static_cast<double>(experiment->config().num_nodes);
    table.begin_row()
        .add_int(static_cast<long long>(experiment->config().num_nodes))
        .add_num(hops.mbr, 2)
        .add_num(hops.mbr_internal, 2)
        .add_num(hops.query, 2)
        .add_num(hops.query_internal, 2)
        .add_num(hops.response, 2)
        .add_num(0.5 * std::log2(n), 2);
  }
  std::printf("%s", table.render().c_str());

  // The paper's accompanying observation: end-to-end propagation of a whole
  // query range (and hence of detected similarities flowing back) spans as
  // many ring hops as the range covers nodes.
  common::TextTable latency({"Nodes", "Query range walk max (ms)",
                             "Response mean latency (ms)"});
  for (const auto& experiment : experiments) {
    latency.begin_row()
        .add_int(static_cast<long long>(experiment->config().num_nodes))
        .add_num(experiment->metrics().query().range_latency_ms.max(), 0)
        .add_num(experiment->metrics().response().latency_ms.mean(), 0);
  }
  std::printf("\n%s", latency.render().c_str());
  return 0;
}
