// Figure 6(b): distribution of per-node load for a 200-node system.
//
// Paper claim: "the distribution is not heavy-tailed, which indicates that
// the load is indeed distributed evenly" — validating the uniformity
// assumption behind the Eq. 6 mapping.
#include <algorithm>

#include "bench/bench_common.hpp"
#include "common/stats.hpp"

int main() {
  using namespace sdsi;
  std::printf("=== Figure 6(b): distribution of load across nodes (N=200) ===\n");

  core::ExperimentConfig config = bench::paper_experiment(200);
  bench::print_workload_banner(config.workload);
  core::Experiment experiment(config);
  experiment.run();

  const core::LoadReport load = experiment.load_report();
  double max_rate = 0.0;
  common::OnlineStats stats;
  for (const double rate : load.per_node_total) {
    stats.add(rate);
    max_rate = std::max(max_rate, rate);
  }

  common::Histogram histogram(0.0, max_rate + 1e-9, 14);
  for (const double rate : load.per_node_total) {
    histogram.add(rate);
  }

  common::TextTable table({"Load bucket (msgs/s)", "Nodes", "Bar"});
  for (std::size_t b = 0; b < histogram.bucket_count(); ++b) {
    const std::string range = common::format_fixed(histogram.bucket_low(b), 2) +
                              " - " +
                              common::format_fixed(histogram.bucket_high(b), 2);
    table.begin_row()
        .add_cell(range)
        .add_int(static_cast<long long>(histogram.bucket(b)))
        .add_cell(std::string(histogram.bucket(b), '#'));
  }
  std::printf("%s", table.render().c_str());

  std::printf(
      "\nmean %.3f  stddev %.3f  min %.3f  max %.3f  max/mean %.2f\n"
      "fraction of nodes above 3x mean: %.4f (heavy tail check)\n",
      stats.mean(), stats.stddev(), stats.min(), stats.max(),
      stats.max() / stats.mean(),
      histogram.fraction_above(3.0 * stats.mean()));
  return 0;
}
