// Figure 3(b): "Fourier locality" — feature vectors of consecutive windows
// of a host-load trace cluster tightly, which is what makes MBR batching
// (Sec IV-G) pay off.
//
// The original CMU host-load traces are gone; the synthetic HostLoadGenerator
// reproduces their autocorrelation structure (DESIGN.md §2). We quantify
// locality as the ratio between consecutive-step feature movement and the
// overall spread of the feature cloud, and compare against an i.i.d. noise
// stream, which has no locality.
#include <cmath>
#include <cstdio>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "streams/generators.hpp"
#include "streams/summarizer.hpp"

int main() {
  using namespace sdsi;
  std::printf("=== Figure 3(b): locality of summaries on host-load data ===\n");

  dsp::FeatureConfig features;
  features.window_size = 128;
  features.num_coefficients = 2;

  struct SourceResult {
    std::string name;
    common::OnlineStats step;     // per-step feature movement
    common::OnlineStats spread0;  // coordinate 0 (Re X1) cloud
    common::OnlineStats spread1;  // coordinate 1 (Im X1) cloud
    common::OnlineStats mbr_extent;  // extent of 5-vector batches
  };

  common::RngFactory rng_factory(2026);
  auto measure = [&](const std::string& name,
                     streams::StreamGenerator& generator) {
    SourceResult result;
    result.name = name;
    streams::StreamSummarizer summarizer(features);
    for (std::size_t i = 0; i < features.window_size; ++i) {
      summarizer.push(generator.next());
    }
    std::optional<dsp::FeatureVector> previous;
    double batch_lo = 0.0;
    double batch_hi = 0.0;
    int in_batch = 0;
    for (int i = 0; i < 20000; ++i) {
      summarizer.push(generator.next());
      const auto current = summarizer.features();
      if (!current.has_value()) {
        continue;
      }
      result.spread0.add(current->routing_coordinate());
      result.spread1.add((*current)[0].imag());
      if (previous.has_value()) {
        result.step.add(previous->distance(*current));
      }
      previous = current;
      const double x = current->routing_coordinate();
      if (in_batch == 0) {
        batch_lo = batch_hi = x;
      } else {
        batch_lo = std::min(batch_lo, x);
        batch_hi = std::max(batch_hi, x);
      }
      if (++in_batch == 5) {
        result.mbr_extent.add(batch_hi - batch_lo);
        in_batch = 0;
      }
    }
    return result;
  };

  streams::HostLoadGenerator host_load(rng_factory.make("host-load"));
  streams::RandomWalkGenerator random_walk(rng_factory.make("walk"));

  // An i.i.d. noise stream: the no-locality control.
  class NoiseGenerator final : public streams::StreamGenerator {
   public:
    explicit NoiseGenerator(common::Pcg32 rng) : rng_(rng) {}
    Sample next() override { return rng_.uniform(-1.0, 1.0); }
    std::string name() const override { return "iid-noise"; }

   private:
    common::Pcg32 rng_;
  } noise(rng_factory.make("noise"));

  SourceResult results[] = {measure("host-load (CMU-like)", host_load),
                            measure("random-walk", random_walk),
                            measure("iid-noise (control)", noise)};

  common::TextTable table({"Stream", "step |dF| mean", "cloud stddev",
                           "locality ratio", "5-vector MBR extent",
                           "Re(X1) range", "Im(X1) range"});
  for (const SourceResult& r : results) {
    const double cloud = std::sqrt(r.spread0.variance() + r.spread1.variance());
    table.begin_row()
        .add_cell(r.name)
        .add_num(r.step.mean(), 4)
        .add_num(cloud, 4)
        .add_num(r.step.mean() / cloud, 3)
        .add_num(r.mbr_extent.mean(), 4)
        .add_cell(common::format_fixed(r.spread0.min(), 3) + ".." +
                  common::format_fixed(r.spread0.max(), 3))
        .add_cell(common::format_fixed(r.spread1.min(), 3) + ".." +
                  common::format_fixed(r.spread1.max(), 3));
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nShape check: host-load and random-walk locality ratios sit well\n"
      "below the i.i.d. control's, i.e. consecutive summaries are strongly\n"
      "temporally correlated (the Fig 3b cluster), which is what makes MBR\n"
      "batching effective.\n");
  return 0;
}
