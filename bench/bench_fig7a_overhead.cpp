// Figure 7(a): message overhead — additional messages the system sends per
// input event of each type — with query radius 0.1.
//
// Paper shapes: every component is flat-to-logarithmic in N except internal
// query messages, which grow linearly (denser rings put more nodes under a
// fixed key range).
#include "bench/bench_common.hpp"

int main() {
  using namespace sdsi;
  std::printf("=== Figure 7(a): message overhead, query radius = 0.1 ===\n");

  std::vector<core::ExperimentConfig> configs;
  for (const std::size_t n : bench::paper_node_counts()) {
    configs.push_back(bench::paper_experiment(n));
    configs.back().workload.query_radius = 0.1;
  }
  bench::print_workload_banner(configs.front().workload);
  const auto experiments = bench::run_sweep(configs);

  common::TextTable table({"Nodes", "MBR msgs", "MBR transit", "Query msgs",
                           "Query transit", "Response msgs",
                           "Response transit"});
  for (const auto& experiment : experiments) {
    const core::OverheadReport overhead = experiment->overhead_report();
    table.begin_row()
        .add_int(static_cast<long long>(experiment->config().num_nodes))
        .add_num(overhead.mbr_internal, 3)
        .add_num(overhead.mbr_transit, 3)
        .add_num(overhead.query_internal, 3)
        .add_num(overhead.query_transit, 3)
        .add_num(overhead.neighbor_exchange, 3)
        .add_num(overhead.response_transit, 3);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nShape check: only 'Query msgs' (range-replica copies per query)\n"
      "grows linearly with N; transit columns grow ~log N.\n");
  return 0;
}
