// Figure 6(a): average per-node message load per second, broken into seven
// components, as a function of the number of nodes.
//
// Paper shapes to reproduce: MBR-source and neighbor-exchange components are
// ~constant in N; per-node response load decreases ~1/N (query rate is
// global); transit components grow ~log N; total load stays bounded.
#include "bench/bench_common.hpp"

int main() {
  using namespace sdsi;
  std::printf("=== Figure 6(a): average load of messages on a node (per second) ===\n");

  std::vector<core::ExperimentConfig> configs;
  for (const std::size_t n : bench::paper_node_counts()) {
    configs.push_back(bench::paper_experiment(n));
  }
  bench::print_workload_banner(configs.front().workload);
  const auto experiments = bench::run_sweep(configs);

  common::TextTable table({"Nodes", "MBRs", "MBRs internal", "MBRs transit",
                           "Queries", "Responses", "Resp internal",
                           "Resp transit", "Total"});
  for (const auto& experiment : experiments) {
    const core::LoadReport load = experiment->load_report();
    table.begin_row().add_int(
        static_cast<long long>(experiment->config().num_nodes));
    for (const double component : load.per_component) {
      table.add_num(component, 3);
    }
    table.add_num(load.total, 3);
  }
  std::printf("%s", table.render().c_str());

  std::printf(
      "\nShape checks (paper claims): MBR-source ~constant, responses per\n"
      "node ~1/N, transit components grow slowly (~log N), total bounded.\n");
  return 0;
}
