// Load balancing beyond the paper's 1-stream-per-node setup: what happens
// when stream *sources* are skewed (a few data centers host most streams,
// Zipf-style), as real sensor deployments are?
//
// The paper's balance claim rests on content routing: storage and matching
// load follow the summaries' keys, not the sources. So even with heavily
// skewed ingest, the storage/matching side should stay as balanced as the
// uniform deployment — only the per-source sending cost concentrates.
//
// Scope note: this bench covers the benign half of the skew story — skewed
// *sources* with uniform keys, which content routing absorbs by itself.
// The adversarial half (skewed *keys and subscriptions*, where content
// routing is the problem rather than the cure, plus the hot-arc
// splitting / shedding / backpressure mitigations) lives in bench_skew.cpp
// (BENCH_skew.json).
#include <algorithm>
#include <cmath>

#include "bench/bench_common.hpp"

namespace {

using namespace sdsi;

struct Placement {
  const char* name;
  /// stream index -> hosting node.
  std::vector<NodeIndex> hosts;
};

core::LoadReport run_with_hosts(const Placement& placement,
                                std::size_t nodes) {
  // Mirror the Experiment driver, but with explicit stream placement.
  sim::Simulator sim;
  chord::ChordConfig chord_config;
  chord::ChordNetwork net(sim, chord_config);
  net.bootstrap(routing::hash_node_ids(nodes, common::IdSpace(32), 42));
  core::MiddlewareConfig mw_config;
  mw_config.features = core::experiment_feature_config();
  core::MiddlewareSystem system(net, mw_config);
  core::WorkloadConfig workload;

  common::RngFactory rng_factory(42);
  std::vector<std::unique_ptr<streams::RandomWalkGenerator>> generators;
  common::Pcg32 period_rng = rng_factory.make("periods");
  for (std::size_t s = 0; s < placement.hosts.size(); ++s) {
    const StreamId sid = 1000 + s;
    const NodeIndex host = placement.hosts[s];
    system.register_stream(host, sid);
    generators.push_back(std::make_unique<streams::RandomWalkGenerator>(
        rng_factory.make("walk", s)));
    const auto period = sim::Duration::micros(
        period_rng.uniform_int(workload.stream_period_min.count_micros(),
                               workload.stream_period_max.count_micros()));
    auto* generator = generators.back().get();
    sim.schedule_periodic(sim.now() + period, period,
                          [&system, host, sid, generator] {
                            system.post_stream_value(host, sid,
                                                     generator->next());
                          });
  }
  system.start();
  system.metrics().set_enabled(false);
  sim.run_until(sim::SimTime::zero() + sim::Duration::seconds(80));
  system.metrics().reset();
  system.metrics().set_enabled(true);
  sim.run_until(sim::SimTime::zero() + sim::Duration::seconds(120));

  core::LoadReport report;
  for (NodeIndex node = 0; node < nodes; ++node) {
    report.per_node_total.push_back(
        static_cast<double>(system.metrics().node_load_total(node)) / 40.0);
    report.total += report.per_node_total.back() / static_cast<double>(nodes);
  }
  return report;
}

}  // namespace

int main() {
  std::printf("=== Load balance under skewed stream placement (no queries) ===\n");
  constexpr std::size_t kNodes = 100;
  constexpr std::size_t kStreams = 100;

  common::Pcg32 zipf_rng(9, 9);
  Placement uniform{"uniform (paper: 1 stream/node)", {}};
  Placement skewed{"Zipf-skewed sources", {}};
  for (std::size_t s = 0; s < kStreams; ++s) {
    uniform.hosts.push_back(static_cast<NodeIndex>(s % kNodes));
    // Zipf-ish: stream s hosted by node ~ rank distribution (top nodes get
    // most streams).
    const double u = zipf_rng.uniform01();
    const auto host = static_cast<NodeIndex>(
        std::min<double>(kNodes - 1, std::floor(kNodes * u * u * u)));
    skewed.hosts.push_back(host);
  }

  common::TextTable table({"Placement", "Mean load/node/s", "Max load",
                           "Max/Mean", "p95/p50", "Hosts w/ >1 stream"});
  for (const Placement& placement : {uniform, skewed}) {
    const core::LoadReport report = run_with_hosts(placement, kNodes);
    common::Percentiles percentiles;
    double max_load = 0.0;
    for (const double rate : report.per_node_total) {
      percentiles.add(rate);
      max_load = std::max(max_load, rate);
    }
    std::vector<int> per_host(kNodes, 0);
    for (const NodeIndex host : placement.hosts) {
      ++per_host[host];
    }
    const auto crowded = std::count_if(per_host.begin(), per_host.end(),
                                       [](int n) { return n > 1; });
    table.begin_row()
        .add_cell(placement.name)
        .add_num(report.total, 2)
        .add_num(max_load, 2)
        .add_num(max_load / report.total, 2)
        .add_num(percentiles.quantile(0.95) /
                     std::max(percentiles.quantile(0.5), 1e-9),
                 2)
        .add_int(crowded);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nShape check: content routing decouples storage/matching load from\n"
      "where streams are hosted — the skewed deployment's max/mean stays\n"
      "close to the uniform one's (the residual gap is the hot sources'\n"
      "own sending cost, which no index can redistribute).\n");
  return 0;
}
