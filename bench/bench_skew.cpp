// Adversarial-skew bench (BENCH_skew.json): does the overload-control layer
// actually flatten a flash crowd, and does load shedding degrade recall
// gracefully?
//
// Canonical scenario: the stock-market family with the full adversarial
// stack — Zipf pattern pool, Zipf client placement, and a sector-correlated
// flash crowd 10 s into the measurement window. The crowd marches every
// ticker of one sector onto a narrow ring arc while the query boost piles
// subscriptions onto the same arc, so one node ends up doing orders of
// magnitude more index work than the median.
//
// Two measurements:
//
//  1. Mitigation ladder: the identical scenario at three overload settings —
//     off (no overload config), detect-only (split_ways = 1: the detector
//     runs, nothing moves), and split (split_ways = 3: hot arcs fan their
//     stores and subscriptions across two successor delegates). Per rung we
//     record per-node message load and index work p99/median from the
//     robustness report. The headline row is work_imbalance_improvement =
//     ratio(off) / ratio(split); the acceptance bar (enforced by
//     tools/skew_smoke in CI) is >= 3x.
//
//  2. Recall-vs-shed curve: the same scenario with the recall oracle on and
//     forced_shed_rate swept over {0, 0.25, 0.5, 0.75, 0.9} (smoke: three
//     points). Recall must degrade monotonically (tolerance 0.02 — nearby
//     rates can tie) and every shed/backpressure event must surface in the
//     unified drops table: shed_mbrs == drops[shed_overload] and
//     backpressure_drops == drops[backpressure], with no other cause
//     charged. A violation is a wiring bug and fails the bench.
//
// Flags: --smoke (smaller ring, shorter windows), --json PATH
// (BENCH_skew.json location).
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"

namespace {

using namespace sdsi;

core::ExperimentConfig skew_scenario(std::size_t nodes, sim::Duration warmup,
                                     sim::Duration measure) {
  core::ExperimentConfig config;
  config.num_nodes = nodes;
  config.seed = 42;
  config.stream_family = core::StreamFamily::kStockMarket;
  config.warmup = warmup;
  config.measure = measure;
  // Matches diverted to a split delegate ride one extra hop plus one extra
  // notify tick; without a drain their reports fall off the end of the
  // measurement and read as (phantom) recall loss.
  config.drain = sim::Duration::seconds(20);

  streams::AdversarialSpec adv;
  adv.pattern_pool = 8;
  adv.zipf_exponent = 1.1;
  adv.zipf_clients = true;
  adv.placement_skew = 2.0;
  streams::FlashCrowd crowd;
  crowd.at_seconds = warmup.as_seconds() + 10.0;
  adv.flash_crowd = crowd;
  config.adversarial = adv;
  return config;
}

core::OverloadOptions mitigation(std::size_t split_ways) {
  core::OverloadOptions overload;
  overload.split_ways = split_ways;
  return overload;
}

struct SkewPoint {
  double message_ratio = 0.0;  // per-node message load p99 / median
  double work_ratio = 0.0;     // per-node index work p99 / median
  double recall = 0.0;
  std::uint64_t splits = 0;
  std::uint64_t diverted = 0;
  std::uint64_t shed = 0;
  std::uint64_t backpressure_drops = 0;
  double wall_ms = 0.0;
  bool drops_accounted = true;
};

SkewPoint run_point(const core::ExperimentConfig& config) {
  const auto start = std::chrono::steady_clock::now();
  core::Experiment experiment(config);
  experiment.run();
  const auto stop = std::chrono::steady_clock::now();

  const core::RobustnessReport r = experiment.robustness_report();
  SkewPoint point;
  point.message_ratio = r.message_load_p99_over_median;
  point.work_ratio = r.work_p99_over_median;
  point.recall = r.recall;
  point.splits = r.hot_arc_splits;
  point.diverted = r.split_diverted_stores;
  point.shed = r.shed_mbrs;
  point.backpressure_drops = r.backpressure_drops;
  point.wall_ms =
      std::chrono::duration<double>(stop - start).count() * 1e3;

  // Zero unaccounted drops: overload sheds must land in the unified drops
  // table under their own cause, and nothing else may be charged (the
  // scenario configures no link loss, crashes, or partitions).
  std::uint64_t other = 0;
  for (std::size_t c = 0; c < r.drops_by_cause.size(); ++c) {
    const auto cause = static_cast<fault::DropCause>(c);
    if (cause != fault::DropCause::kShedOverload &&
        cause != fault::DropCause::kBackpressure) {
      other += r.drops_by_cause[c];
    }
  }
  const std::uint64_t shed_cause =
      r.drops_by_cause[static_cast<std::size_t>(
          fault::DropCause::kShedOverload)];
  const std::uint64_t bp_cause =
      r.drops_by_cause[static_cast<std::size_t>(
          fault::DropCause::kBackpressure)];
  point.drops_accounted =
      other == 0 && shed_cause == point.shed &&
      bp_cause == point.backpressure_drops;
  if (!point.drops_accounted) {
    std::fprintf(stderr,
                 "unaccounted drops: shed %llu vs cause %llu, "
                 "backpressure %llu vs cause %llu, other causes %llu\n",
                 static_cast<unsigned long long>(point.shed),
                 static_cast<unsigned long long>(shed_cause),
                 static_cast<unsigned long long>(point.backpressure_drops),
                 static_cast<unsigned long long>(bp_cause),
                 static_cast<unsigned long long>(other));
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::consume_flag(argc, argv, "--smoke");
  const std::string json_path = bench::consume_json_flag(argc, argv);

  // The DFT window (256 samples at ~200 ms) takes ~50 s of simulated time to
  // fill, so even the smoke variant needs full-length windows; it saves time
  // through the smaller ring and the shorter shed sweep instead.
  const std::size_t nodes = smoke ? 40 : 60;
  const sim::Duration warmup = sim::Duration::seconds(30);
  const sim::Duration measure = sim::Duration::seconds(60);

  std::printf("=== Adversarial skew bench (%s) ===\n",
              smoke ? "smoke" : "full");
  const core::ExperimentConfig base = skew_scenario(nodes, warmup, measure);
  bench::print_workload_banner(base.workload);
  std::printf(
      "scenario: %zu nodes, stock family, Zipf pattern pool + clients, "
      "placement skew 2.0,\n          flash crowd at %.0f s\n",
      nodes, base.adversarial->flash_crowd->at_seconds);

  bench::JsonBenchReporter reporter("skew");
  bool ok = true;

  // --- Mitigation ladder ----------------------------------------------------
  struct Rung {
    const char* label;
    std::optional<core::OverloadOptions> overload;
  };
  const std::vector<Rung> ladder = {
      {"off", std::nullopt},
      {"detect_only", mitigation(1)},
      {"split", mitigation(3)},
  };

  common::TextTable table(
      {"Mitigation", "Msg p99/med", "Work p99/med", "Splits", "Diverted"});
  double off_work_ratio = 0.0;
  double split_work_ratio = 0.0;
  for (const Rung& rung : ladder) {
    core::ExperimentConfig config = base;
    config.overload = rung.overload;
    const SkewPoint point = run_point(config);
    ok = ok && point.drops_accounted;
    if (std::string(rung.label) == "off") {
      off_work_ratio = point.work_ratio;
    } else if (std::string(rung.label) == "split") {
      split_work_ratio = point.work_ratio;
    }
    table.begin_row().add_cell(rung.label);
    table.add_num(point.message_ratio, 2);
    table.add_num(point.work_ratio, 2);
    table.add_int(static_cast<long long>(point.splits));
    table.add_int(static_cast<long long>(point.diverted));

    const std::string cfg =
        "nodes=" + std::to_string(nodes) + " mitigation=" + rung.label;
    reporter.add(bench::BenchResult{"work_p99_over_median", cfg,
                                    point.work_ratio, point.wall_ms});
    reporter.add(bench::BenchResult{"message_p99_over_median", cfg,
                                    point.message_ratio, point.wall_ms});
    reporter.add(bench::BenchResult{"hot_arc_splits", cfg,
                                    static_cast<double>(point.splits),
                                    point.wall_ms});
  }
  std::printf("%s", table.render().c_str());

  const double improvement =
      split_work_ratio > 0.0 ? off_work_ratio / split_work_ratio : 0.0;
  std::printf(
      "\nwork imbalance p99/median: off %.2f -> split %.2f "
      "(improvement %.2fx, acceptance bar: >= 3x)\n",
      off_work_ratio, split_work_ratio, improvement);
  reporter.add(bench::BenchResult{
      "work_imbalance_improvement",
      "nodes=" + std::to_string(nodes) + " off/split", improvement, 0.0});

  // --- Recall vs forced shed rate -------------------------------------------
  const std::vector<double> rates =
      smoke ? std::vector<double>{0.0, 0.5, 0.9}
            : std::vector<double>{0.0, 0.25, 0.5, 0.75, 0.9};
  std::printf("\n=== Recall vs forced shed rate ===\n");
  common::TextTable curve({"Shed rate", "Recall", "Shed MBRs"});
  double previous_recall = 1.0;
  // Recall is a ratio of thousands of (query, stream) pairs; 0.02 absorbs
  // the resolution of a single query flipping while still rejecting any
  // real non-monotonicity.
  const double tolerance = 0.02;
  for (const double rate : rates) {
    core::ExperimentConfig config = base;
    config.overload = mitigation(3);
    config.overload->forced_shed_rate = rate;
    config.oracle_sample_period = sim::Duration::seconds(5);
    const SkewPoint point = run_point(config);
    ok = ok && point.drops_accounted;
    if (rate > 0.0 && point.shed == 0) {
      std::fprintf(stderr, "forced shed rate %.2f shed nothing\n", rate);
      ok = false;
    }
    if (point.recall > previous_recall + tolerance) {
      std::fprintf(stderr,
                   "recall not monotone: %.4f at rate %.2f exceeds prior "
                   "%.4f beyond tolerance\n",
                   point.recall, rate, previous_recall);
      ok = false;
    }
    previous_recall = point.recall;

    curve.begin_row().add_num(rate, 2);
    curve.add_num(point.recall, 4);
    curve.add_int(static_cast<long long>(point.shed));
    const std::string cfg = "nodes=" + std::to_string(nodes) +
                            " shed_rate=" + std::to_string(rate);
    reporter.add(
        bench::BenchResult{"recall_vs_shed", cfg, point.recall,
                           point.wall_ms});
    reporter.add(bench::BenchResult{"shed_mbrs", cfg,
                                    static_cast<double>(point.shed),
                                    point.wall_ms});
  }
  std::printf("%s", curve.render().c_str());
  std::printf("drop accounting: %s\n",
              ok ? "every drop attributed" : "FAILED");

  if (!json_path.empty() && !reporter.write(json_path)) {
    return 1;
  }
  return ok ? 0 : 1;
}
