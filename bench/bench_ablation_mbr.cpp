// Ablation A2 (Sec IV-G / VI-A): MBR batching policy.
//
// Sweeps the fixed batch size beta and the adaptive max-extent knob, and
// reports the tradeoff the paper describes: larger batches cut the update
// rate but produce wider boxes (more range replicas and more false-positive
// candidates); the adaptive policy bounds box width by construction.
#include "bench/bench_common.hpp"

int main() {
  using namespace sdsi;
  std::printf("=== Ablation: MBR batching (fixed beta vs adaptive extent) ===\n");

  constexpr std::size_t kNodes = 100;
  struct Variant {
    std::string label;
    core::MbrBatcher::Options options;
  };
  std::vector<Variant> variants;
  for (const std::size_t beta : {1u, 2u, 5u, 10u, 20u}) {
    Variant v;
    v.label = "fixed beta=" + std::to_string(beta);
    v.options.mode = core::MbrBatcher::Mode::kFixedCount;
    v.options.batch_size = beta;
    variants.push_back(v);
  }
  for (const double extent : {0.01, 0.03, 0.08}) {
    Variant v;
    v.label = "adaptive extent=" + common::format_fixed(extent, 2);
    v.options.mode = core::MbrBatcher::Mode::kAdaptive;
    v.options.max_extent = extent;
    variants.push_back(v);
  }

  std::vector<core::ExperimentConfig> configs;
  for (const Variant& variant : variants) {
    configs.push_back(bench::paper_experiment(kNodes));
    configs.back().batching = variant.options;
  }
  // Sec VI-A closed loop: the controller retunes each stream's extent to a
  // target emission rate instead of a fixed knob.
  for (const double target : {0.5, 1.0}) {
    Variant v;
    v.label = "closed-loop target=" + common::format_fixed(target, 1) + "/win";
    variants.push_back(v);
    configs.push_back(bench::paper_experiment(kNodes));
    core::AdaptivePrecisionController::Options controller;
    controller.target_rate = target;
    configs.back().adaptive_precision = controller;
  }
  bench::print_workload_banner(configs.front().workload);
  const auto experiments = bench::run_sweep(configs);

  common::TextTable table({"Policy", "MBRs/node/s", "Replicas/MBR",
                           "Total MBR load/node/s", "Matches reported",
                           "Resp mean latency (ms)"});
  for (std::size_t i = 0; i < experiments.size(); ++i) {
    const auto& experiment = experiments[i];
    const core::LoadReport load = experiment->load_report();
    const core::OverheadReport overhead = experiment->overhead_report();
    const auto mbr_components =
        load.per_component[static_cast<std::size_t>(
            core::LoadComponent::kMbrSource)] +
        load.per_component[static_cast<std::size_t>(
            core::LoadComponent::kMbrInternal)] +
        load.per_component[static_cast<std::size_t>(
            core::LoadComponent::kMbrTransit)];
    table.begin_row()
        .add_cell(variants[i].label)
        .add_num(load.per_component[static_cast<std::size_t>(
                     core::LoadComponent::kMbrSource)] /
                     2.0,  // send+deliver counted per message
                 3)
        .add_num(overhead.mbr_internal, 2)
        .add_num(mbr_components, 3)
        .add_int(static_cast<long long>(
            experiment->quality_report().matches_reported))
        .add_num(experiment->metrics().response().latency_ms.mean(), 0);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nShape check: raising beta cuts MBRs/s but widens boxes (replicas\n"
      "per MBR grow); the adaptive policy caps replicas/MBR regardless of\n"
      "stream speed, trading update rate automatically (Sec VI-A).\n");
  return 0;
}
