// Shared plumbing for the figure-reproduction benches: Table I banner,
// parallel parameter sweeps, and uniform table output.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/table.hpp"
#include "core/experiment.hpp"

namespace sdsi::bench {

/// The node counts of Section V ("the number of nodes varied from 50 to
/// 500").
inline std::vector<std::size_t> paper_node_counts() {
  return {50, 100, 200, 300, 500};
}

inline core::ExperimentConfig paper_experiment(std::size_t nodes,
                                               std::uint64_t seed = 42) {
  core::ExperimentConfig config;
  config.num_nodes = nodes;
  config.seed = seed;
  config.warmup = sim::Duration::seconds(80);
  config.measure = sim::Duration::seconds(60);
  return config;
}

/// Prints the Table I banner so every bench states its workload.
inline void print_workload_banner(const core::WorkloadConfig& workload) {
  std::printf(
      "Table I workload: PMIN %.0fms PMAX %.0fms BSPAN %.0fms QRATE %.1fq/s "
      "QMIN %.0fs QMAX %.0fs NPER %.0fms radius %.2f\n",
      workload.stream_period_min.as_millis(),
      workload.stream_period_max.as_millis(),
      workload.mbr_lifespan.as_millis(), workload.query_rate_per_sec,
      workload.query_lifespan_min.as_seconds(),
      workload.query_lifespan_max.as_seconds(),
      workload.notify_period.as_millis(), workload.query_radius);
}

/// Runs one experiment per config, in parallel (each simulation is
/// self-contained and deterministic). Results keep input order.
inline std::vector<std::unique_ptr<core::Experiment>> run_sweep(
    const std::vector<core::ExperimentConfig>& configs) {
  std::vector<std::unique_ptr<core::Experiment>> experiments;
  experiments.reserve(configs.size());
  for (const core::ExperimentConfig& config : configs) {
    experiments.push_back(std::make_unique<core::Experiment>(config));
  }
  {
    std::vector<std::jthread> workers;
    workers.reserve(experiments.size());
    for (auto& experiment : experiments) {
      workers.emplace_back([&experiment] { experiment->run(); });
    }
  }
  return experiments;
}

}  // namespace sdsi::bench
