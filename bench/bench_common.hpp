// Shared plumbing for the figure-reproduction benches: Table I banner,
// parallel parameter sweeps, uniform table output, and the machine-readable
// BENCH_*.json emission layer every perf bench reports through.
#pragma once

#include <cstdio>
#include <fstream>
#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/table.hpp"
#include "core/experiment.hpp"

namespace sdsi::bench {

// --- Machine-readable results (BENCH_*.json) --------------------------------
//
// Every perf bench can emit its results as JSON so successive PRs are
// measured against a recorded baseline instead of prose. Schema (v1):
//
//   {
//     "schema_version": 1,
//     "suite": "<bench family>",
//     "benchmarks": [
//       {"name": "...", "config": "...", "threads": 1,
//        "ops_per_sec": 1.0, "wall_ms": 1.0},
//       ...
//     ]
//   }
//
// `name` identifies the code path, `config` the workload point (sizes,
// radii, window lengths), `threads` the worker-lane count the row was
// measured at (1 = serial; additive key, schema stays v1), `ops_per_sec`
// the headline throughput, and `wall_ms` the total measured wall time
// backing it. Rows that track memory additionally carry `peak_rss_kb`
// (process high-water resident set, additive trailing key — absent when a
// bench does not measure it, so existing documents keep their shape).

struct BenchResult {
  std::string name;
  std::string config;
  double ops_per_sec = 0.0;
  double wall_ms = 0.0;
  std::size_t threads = 1;  // last so positional {name, config, ops, wall}
                            // initializers keep their serial default
  std::size_t peak_rss_kb = 0;  // 0 = not measured; emitted only when set
};

/// Process high-water resident set size in KiB (getrusage), or 0 where the
/// platform offers no cheap reading. The counter is process-wide and
/// monotone: in a sweep, sample it after each run and run ascending sizes
/// so every sample is dominated by its own run.
inline std::size_t current_peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
  // ru_maxrss is KiB on Linux, bytes on macOS.
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss / 1024);
#else
  return static_cast<std::size_t>(usage.ru_maxrss);
#endif
#else
  return 0;
#endif
}

inline std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Collects BenchResult rows and writes the schema-v1 JSON document.
class JsonBenchReporter {
 public:
  explicit JsonBenchReporter(std::string suite) : suite_(std::move(suite)) {}

  void add(BenchResult result) { results_.push_back(std::move(result)); }

  bool empty() const noexcept { return results_.empty(); }

  /// Writes the document; returns false (and prints to stderr) on I/O error.
  bool write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return false;
    }
    out << "{\n  \"schema_version\": 1,\n  \"suite\": \""
        << json_escape(suite_) << "\",\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < results_.size(); ++i) {
      const BenchResult& r = results_[i];
      char numbers[200];
      if (r.peak_rss_kb > 0) {
        std::snprintf(numbers, sizeof(numbers),
                      "\"threads\": %zu, \"ops_per_sec\": %.6g, "
                      "\"wall_ms\": %.6g, \"peak_rss_kb\": %zu",
                      r.threads, r.ops_per_sec, r.wall_ms, r.peak_rss_kb);
      } else {
        std::snprintf(numbers, sizeof(numbers),
                      "\"threads\": %zu, \"ops_per_sec\": %.6g, "
                      "\"wall_ms\": %.6g",
                      r.threads, r.ops_per_sec, r.wall_ms);
      }
      out << "    {\"name\": \"" << json_escape(r.name) << "\", \"config\": \""
          << json_escape(r.config) << "\", " << numbers << "}"
          << (i + 1 < results_.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    return static_cast<bool>(out);
  }

 private:
  std::string suite_;
  std::vector<BenchResult> results_;
};

/// Extracts `<flag> <value>` from argv (removing both tokens); returns the
/// value or "" when the flag is absent. Leaves every other argument intact
/// so harness-specific flags (google-benchmark's, a bench's own) still
/// parse.
inline std::string consume_value_flag(int& argc, char** argv,
                                      const std::string& flag) {
  std::string value;
  int write_at = 1;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i] && i + 1 < argc) {
      value = argv[++i];
      continue;
    }
    argv[write_at++] = argv[i];
  }
  argc = write_at;
  return value;
}

/// Extracts `--json <path>`: the BENCH_*.json output location.
inline std::string consume_json_flag(int& argc, char** argv) {
  return consume_value_flag(argc, argv, "--json");
}

/// Extracts a boolean flag such as `--smoke` from argv; true if present.
inline bool consume_flag(int& argc, char** argv, const std::string& flag) {
  bool found = false;
  int write_at = 1;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) {
      found = true;
      continue;
    }
    argv[write_at++] = argv[i];
  }
  argc = write_at;
  return found;
}

/// The node counts of Section V ("the number of nodes varied from 50 to
/// 500").
inline std::vector<std::size_t> paper_node_counts() {
  return {50, 100, 200, 300, 500};
}

inline core::ExperimentConfig paper_experiment(std::size_t nodes,
                                               std::uint64_t seed = 42) {
  core::ExperimentConfig config;
  config.num_nodes = nodes;
  config.seed = seed;
  config.warmup = sim::Duration::seconds(80);
  config.measure = sim::Duration::seconds(60);
  return config;
}

/// Prints the Table I banner so every bench states its workload.
inline void print_workload_banner(const core::WorkloadConfig& workload) {
  std::printf(
      "Table I workload: PMIN %.0fms PMAX %.0fms BSPAN %.0fms QRATE %.1fq/s "
      "QMIN %.0fs QMAX %.0fs NPER %.0fms radius %.2f\n",
      workload.stream_period_min.as_millis(),
      workload.stream_period_max.as_millis(),
      workload.mbr_lifespan.as_millis(), workload.query_rate_per_sec,
      workload.query_lifespan_min.as_seconds(),
      workload.query_lifespan_max.as_seconds(),
      workload.notify_period.as_millis(), workload.query_radius);
}

/// Runs one experiment per config, in parallel (each simulation is
/// self-contained and deterministic). Results keep input order.
inline std::vector<std::unique_ptr<core::Experiment>> run_sweep(
    const std::vector<core::ExperimentConfig>& configs) {
  std::vector<std::unique_ptr<core::Experiment>> experiments;
  experiments.reserve(configs.size());
  for (const core::ExperimentConfig& config : configs) {
    experiments.push_back(std::make_unique<core::Experiment>(config));
  }
  {
    std::vector<std::jthread> workers;
    workers.reserve(experiments.size());
    for (auto& experiment : experiments) {
      workers.emplace_back([&experiment] { experiment->run(); });
    }
  }
  return experiments;
}

}  // namespace sdsi::bench
