// Figure 7(b): message overhead with query radius 0.2 — the selectivity
// ablation. "A twice bigger query radius spans twice as many nodes", so the
// internal query component roughly doubles vs Figure 7(a); everything else
// is unchanged.
#include "bench/bench_common.hpp"

int main() {
  using namespace sdsi;
  std::printf("=== Figure 7(b): message overhead, query radius = 0.2 ===\n");

  // The paper plots N in {50, 100, 200, 300} for this figure.
  std::vector<core::ExperimentConfig> configs;
  for (const std::size_t n : {std::size_t{50}, std::size_t{100},
                              std::size_t{200}, std::size_t{300}}) {
    configs.push_back(bench::paper_experiment(n));
    configs.back().workload.query_radius = 0.2;
  }
  bench::print_workload_banner(configs.front().workload);
  const auto experiments = bench::run_sweep(configs);

  common::TextTable table({"Nodes", "MBR msgs", "MBR transit", "Query msgs",
                           "Query transit", "Response msgs",
                           "Response transit"});
  for (const auto& experiment : experiments) {
    const core::OverheadReport overhead = experiment->overhead_report();
    table.begin_row()
        .add_int(static_cast<long long>(experiment->config().num_nodes))
        .add_num(overhead.mbr_internal, 3)
        .add_num(overhead.mbr_transit, 3)
        .add_num(overhead.query_internal, 3)
        .add_num(overhead.query_transit, 3)
        .add_num(overhead.neighbor_exchange, 3)
        .add_num(overhead.response_transit, 3);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nShape check vs Fig 7(a): 'Query msgs' roughly doubles at every N;\n"
      "the other components are essentially unchanged.\n");
  return 0;
}
