// Matching-engine microbench: the key-interval pruned IndexStore::match
// against the brute-force O(subscriptions x MBRs) reference, at and beyond
// the paper's Table-I operating points (query radius 0.1 / 0.2).
//
// Usage: bench_matching [--smoke] [--json <path>]
//   --smoke   one quick configuration (CI smoke label)
//   --json    also emit BENCH_matching.json-style results (schema v1,
//             see bench_common.hpp)
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/index_store.hpp"

namespace {

using namespace sdsi;

struct MatchConfig {
  std::size_t mbrs = 0;
  std::size_t subs = 0;
  double radius = 0.1;
  int repetitions = 5;
};

std::string describe(const MatchConfig& config) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "mbrs=%zu subs=%zu radius=%.2f",
                config.mbrs, config.subs, config.radius);
  return buf;
}

/// Populates one store with Table-I-like content: 4-real-dimensional MBRs
/// (two retained complex coefficients) whose routing intervals are narrow —
/// batches of consecutive windows are strongly correlated (Fig 3b) — and
/// subscriptions whose balls use the paper's radii.
core::IndexStore build_store(const MatchConfig& config, std::uint64_t seed) {
  common::Pcg32 rng(seed, 17);
  core::IndexStore store;
  const auto expires = sim::SimTime::zero() + sim::Duration::seconds(3600);
  for (std::size_t i = 0; i < config.mbrs; ++i) {
    std::vector<double> low(4);
    std::vector<double> high(4);
    for (std::size_t d = 0; d < low.size(); ++d) {
      low[d] = rng.uniform(-1.0, 0.92);
      high[d] = low[d] + rng.uniform(0.01, 0.06);
    }
    core::IndexStore::StoredMbr entry;
    entry.stream = i;
    entry.mbr = dsp::Mbr(std::move(low), std::move(high));
    entry.expires = expires;
    store.add_mbr(std::move(entry));
  }
  for (std::size_t q = 0; q < config.subs; ++q) {
    core::SimilarityQuery query;
    query.id = q;
    query.features = dsp::FeatureVector(
        {dsp::Complex{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)},
         dsp::Complex{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)}});
    query.radius = config.radius;
    store.add_subscription(
        std::make_shared<const core::SimilarityQuery>(std::move(query)), 0,
        expires);
  }
  return store;
}

struct EngineTiming {
  double wall_ms = 0.0;
  double pairs_per_sec = 0.0;
  std::size_t matches = 0;
};

EngineTiming time_engine(const MatchConfig& config, bool pruned) {
  using Clock = std::chrono::steady_clock;
  EngineTiming timing;
  double total_seconds = 0.0;
  for (int rep = 0; rep < config.repetitions; ++rep) {
    core::IndexStore store =
        build_store(config, static_cast<std::uint64_t>(rep) + 1);
    const auto start = Clock::now();
    const auto matches = pruned ? store.match(sim::SimTime::zero())
                                : store.match_brute_force(sim::SimTime::zero());
    const auto stop = Clock::now();
    total_seconds += std::chrono::duration<double>(stop - start).count();
    timing.matches += matches.size();
  }
  timing.wall_ms = total_seconds * 1e3;
  const double pairs = static_cast<double>(config.mbrs) *
                       static_cast<double>(config.subs) *
                       static_cast<double>(config.repetitions);
  timing.pairs_per_sec = total_seconds > 0.0 ? pairs / total_seconds : 0.0;
  return timing;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = sdsi::bench::consume_json_flag(argc, argv);
  const bool smoke = sdsi::bench::consume_flag(argc, argv, "--smoke");

  std::vector<MatchConfig> configs;
  if (smoke) {
    configs.push_back(MatchConfig{500, 50, 0.1, 3});
  } else {
    configs.push_back(MatchConfig{100, 20, 0.1, 40});
    configs.push_back(MatchConfig{1000, 100, 0.1, 10});
    configs.push_back(MatchConfig{5000, 500, 0.1, 5});
    configs.push_back(MatchConfig{5000, 500, 0.2, 5});
  }

  sdsi::bench::JsonBenchReporter reporter("matching");
  std::printf("%-38s %14s %12s %10s\n", "configuration", "pairs/s", "wall ms",
              "matches");
  for (const MatchConfig& config : configs) {
    const EngineTiming brute = time_engine(config, /*pruned=*/false);
    const EngineTiming pruned = time_engine(config, /*pruned=*/true);
    if (brute.matches != pruned.matches) {
      std::fprintf(stderr,
                   "FATAL: engines disagree (%zu vs %zu matches) at %s\n",
                   brute.matches, pruned.matches,
                   describe(config).c_str());
      return 1;
    }
    const std::string label = describe(config);
    std::printf("%-38s %14.3g %12.3f %10zu  brute\n", label.c_str(),
                brute.pairs_per_sec, brute.wall_ms, brute.matches);
    std::printf("%-38s %14.3g %12.3f %10zu  pruned (%.1fx)\n", label.c_str(),
                pruned.pairs_per_sec, pruned.wall_ms, pruned.matches,
                pruned.wall_ms > 0.0 ? brute.wall_ms / pruned.wall_ms : 0.0);
    reporter.add(sdsi::bench::BenchResult{"match_brute_force", label,
                                          brute.pairs_per_sec,
                                          brute.wall_ms});
    reporter.add(sdsi::bench::BenchResult{"match_pruned", label,
                                          pruned.pairs_per_sec,
                                          pruned.wall_ms});
  }
  if (!json_path.empty() && !reporter.write(json_path)) {
    return 1;
  }
  return 0;
}
