// Matching-engine microbench: the key-interval pruned IndexStore::match
// against the brute-force O(subscriptions x MBRs) reference, at and beyond
// the paper's Table-I operating points (query radius 0.1 / 0.2), plus the
// WorkerPool thread-scaling axis of the sharded match pass (Sec IV-C: the
// matching load of a key range spreads across the nodes covering it; here
// one node's pass spreads across worker lanes the same way).
//
// Usage: bench_matching [--smoke] [--json <path>] [--threads LIST]
//   --smoke    one quick configuration (CI smoke label)
//   --json     also emit BENCH_matching.json-style results (schema v1 with
//              the additive `threads` key, see bench_common.hpp)
//   --threads  comma-separated lane counts for the scaling axis
//              (default 1,2,4,8)
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/index_store.hpp"
#include "core/worker_pool.hpp"

namespace {

using namespace sdsi;

struct MatchConfig {
  std::size_t mbrs = 0;
  std::size_t subs = 0;
  double radius = 0.1;
  int repetitions = 5;
};

std::string describe(const MatchConfig& config) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "mbrs=%zu subs=%zu radius=%.2f",
                config.mbrs, config.subs, config.radius);
  return buf;
}

/// Populates one store with Table-I-like content: 4-real-dimensional MBRs
/// (two retained complex coefficients) whose routing intervals are narrow —
/// batches of consecutive windows are strongly correlated (Fig 3b) — and
/// subscriptions whose balls use the paper's radii.
core::IndexStore build_store(const MatchConfig& config, std::uint64_t seed) {
  common::Pcg32 rng(seed, 17);
  core::IndexStore store;
  const auto expires = sim::SimTime::zero() + sim::Duration::seconds(3600);
  for (std::size_t i = 0; i < config.mbrs; ++i) {
    std::vector<double> low(4);
    std::vector<double> high(4);
    for (std::size_t d = 0; d < low.size(); ++d) {
      low[d] = rng.uniform(-1.0, 0.92);
      high[d] = low[d] + rng.uniform(0.01, 0.06);
    }
    core::IndexStore::StoredMbr entry;
    entry.stream = i;
    entry.mbr = dsp::Mbr(std::move(low), std::move(high));
    entry.expires = expires;
    store.add_mbr(std::move(entry));
  }
  for (std::size_t q = 0; q < config.subs; ++q) {
    core::SimilarityQuery query;
    query.id = q;
    query.features = dsp::FeatureVector(
        {dsp::Complex{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)},
         dsp::Complex{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)}});
    query.radius = config.radius;
    store.add_subscription(
        std::make_shared<const core::SimilarityQuery>(std::move(query)), 0,
        expires);
  }
  return store;
}

struct EngineTiming {
  double wall_ms = 0.0;
  double pairs_per_sec = 0.0;
  std::size_t matches = 0;
};

/// pool == nullptr -> serial pruned pass; otherwise the sharded pass.
EngineTiming time_engine(const MatchConfig& config, bool pruned,
                         core::WorkerPool* pool = nullptr) {
  using Clock = std::chrono::steady_clock;
  EngineTiming timing;
  double total_seconds = 0.0;
  for (int rep = 0; rep < config.repetitions; ++rep) {
    core::IndexStore store =
        build_store(config, static_cast<std::uint64_t>(rep) + 1);
    const auto start = Clock::now();
    const auto matches = pruned ? store.match(sim::SimTime::zero(), pool)
                                : store.match_brute_force(sim::SimTime::zero());
    const auto stop = Clock::now();
    total_seconds += std::chrono::duration<double>(stop - start).count();
    timing.matches += matches.size();
  }
  timing.wall_ms = total_seconds * 1e3;
  const double pairs = static_cast<double>(config.mbrs) *
                       static_cast<double>(config.subs) *
                       static_cast<double>(config.repetitions);
  timing.pairs_per_sec = total_seconds > 0.0 ? pairs / total_seconds : 0.0;
  return timing;
}

/// Hard equivalence guard for the sharded pass: same store seed, serial vs
/// `threads` lanes, exact match-VECTOR equality (order included). Returns
/// false (and prints) on any divergence.
bool verify_parallel_equivalence(const MatchConfig& config,
                                 std::size_t threads) {
  core::IndexStore serial_store = build_store(config, 1);
  core::IndexStore pooled_store = build_store(config, 1);
  core::WorkerPool pool(threads);
  const auto serial = serial_store.match(sim::SimTime::zero());
  const auto pooled = pooled_store.match(sim::SimTime::zero(), &pool);
  if (serial.size() != pooled.size()) {
    std::fprintf(stderr, "FATAL: %zu-lane pass found %zu matches, serial %zu\n",
                 threads, pooled.size(), serial.size());
    return false;
  }
  for (std::size_t i = 0; i < serial.size(); ++i) {
    if (serial[i].query != pooled[i].query ||
        serial[i].stream != pooled[i].stream ||
        serial[i].bound_distance != pooled[i].bound_distance) {
      std::fprintf(stderr,
                   "FATAL: %zu-lane pass diverges from serial at entry %zu\n",
                   threads, i);
      return false;
    }
  }
  return true;
}

std::vector<std::size_t> parse_thread_list(const std::string& text) {
  std::vector<std::size_t> threads;
  const char* cursor = text.c_str();
  while (*cursor != '\0') {
    char* end = nullptr;
    const unsigned long value = std::strtoul(cursor, &end, 10);
    if (end == cursor || value == 0) {
      return {};
    }
    threads.push_back(static_cast<std::size_t>(value));
    cursor = *end == ',' ? end + 1 : end;
  }
  return threads;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = sdsi::bench::consume_json_flag(argc, argv);
  const std::string thread_list =
      sdsi::bench::consume_value_flag(argc, argv, "--threads");
  const bool smoke = sdsi::bench::consume_flag(argc, argv, "--smoke");

  std::vector<MatchConfig> configs;
  if (smoke) {
    configs.push_back(MatchConfig{500, 50, 0.1, 3});
  } else {
    configs.push_back(MatchConfig{100, 20, 0.1, 40});
    configs.push_back(MatchConfig{1000, 100, 0.1, 10});
    configs.push_back(MatchConfig{5000, 500, 0.1, 5});
    configs.push_back(MatchConfig{5000, 500, 0.2, 5});
  }
  std::vector<std::size_t> thread_axis =
      parse_thread_list(thread_list.empty() ? "1,2,4,8" : thread_list);
  if (thread_axis.empty()) {
    std::fprintf(stderr, "bad --threads list: %s\n", thread_list.c_str());
    return 2;
  }
  if (smoke) {
    thread_axis = {1, 2};
  }

  sdsi::bench::JsonBenchReporter reporter("matching");
  std::printf("%-38s %14s %12s %10s\n", "configuration", "pairs/s", "wall ms",
              "matches");
  for (const MatchConfig& config : configs) {
    const EngineTiming brute = time_engine(config, /*pruned=*/false);
    const EngineTiming pruned = time_engine(config, /*pruned=*/true);
    if (brute.matches != pruned.matches) {
      std::fprintf(stderr,
                   "FATAL: engines disagree (%zu vs %zu matches) at %s\n",
                   brute.matches, pruned.matches,
                   describe(config).c_str());
      return 1;
    }
    const std::string label = describe(config);
    std::printf("%-38s %14.3g %12.3f %10zu  brute\n", label.c_str(),
                brute.pairs_per_sec, brute.wall_ms, brute.matches);
    std::printf("%-38s %14.3g %12.3f %10zu  pruned (%.1fx)\n", label.c_str(),
                pruned.pairs_per_sec, pruned.wall_ms, pruned.matches,
                pruned.wall_ms > 0.0 ? brute.wall_ms / pruned.wall_ms : 0.0);
    reporter.add(sdsi::bench::BenchResult{"match_brute_force", label,
                                          brute.pairs_per_sec,
                                          brute.wall_ms});
    reporter.add(sdsi::bench::BenchResult{"match_pruned", label,
                                          pruned.pairs_per_sec,
                                          pruned.wall_ms, 1});
  }

  // Thread-scaling axis: the sharded pass on the heaviest configuration.
  // The 1-lane row doubles as the inline-degradation guard — WorkerPool(1)
  // spawns no thread and must stay within noise of the serial pass above.
  // 5000x500 r=0.1 in the full run (the PR 1 headline config).
  const MatchConfig scaling = smoke ? configs.front() : configs[2];
  std::printf("\nthread scaling (%s), sharded match pass:\n",
              describe(scaling).c_str());
  const EngineTiming serial_ref = time_engine(scaling, /*pruned=*/true);
  for (const std::size_t threads : thread_axis) {
    if (!verify_parallel_equivalence(scaling, threads)) {
      return 1;
    }
    sdsi::core::WorkerPool pool(threads);
    if (threads == 1 && !pool.inline_mode()) {
      std::fprintf(stderr, "FATAL: WorkerPool(1) spawned a thread\n");
      return 1;
    }
    const EngineTiming timing = time_engine(scaling, /*pruned=*/true, &pool);
    if (timing.matches != serial_ref.matches) {
      std::fprintf(stderr, "FATAL: %zu-lane match count diverged\n", threads);
      return 1;
    }
    std::printf("  threads=%zu %14.3g pairs/s %12.3f ms  (%.2fx vs serial)\n",
                threads, timing.pairs_per_sec, timing.wall_ms,
                timing.wall_ms > 0.0 ? serial_ref.wall_ms / timing.wall_ms
                                     : 0.0);
    reporter.add(sdsi::bench::BenchResult{"match_pruned_parallel",
                                          describe(scaling),
                                          timing.pairs_per_sec,
                                          timing.wall_ms, threads});
  }
  if (!json_path.empty() && !reporter.write(json_path)) {
    return 1;
  }
  return 0;
}
