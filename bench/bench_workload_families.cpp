// Workload-family sweep: the paper evaluates on synthetic random-walk
// streams AND real datasets (S&P500 closes, CMU host-load traces — here the
// synthetic equivalents of DESIGN.md §2). The scalability story must not be
// an artifact of one stream family.
#include "bench/bench_common.hpp"

int main() {
  using namespace sdsi;
  std::printf("=== Workload families: random walk vs stock closes vs host load ===\n");

  constexpr std::size_t kNodes = 100;
  struct Family {
    const char* name;
    core::StreamFamily family;
  };
  const Family families[] = {
      {"random-walk (paper synthetic)", core::StreamFamily::kRandomWalk},
      {"stock closes (S&P500-like)", core::StreamFamily::kStockMarket},
      {"host load (CMU-like)", core::StreamFamily::kHostLoad},
  };

  std::vector<core::ExperimentConfig> configs;
  for (const Family& family : families) {
    configs.push_back(bench::paper_experiment(kNodes));
    configs.back().stream_family = family.family;
  }
  bench::print_workload_banner(configs.front().workload);
  const auto experiments = bench::run_sweep(configs);

  common::TextTable table({"Family", "MBRs/node/s", "Replicas/MBR",
                           "Total load/node/s", "Max/Mean", "Queries",
                           "Matches", "Responses"});
  for (std::size_t i = 0; i < experiments.size(); ++i) {
    const auto& experiment = experiments[i];
    const core::LoadReport load = experiment->load_report();
    double max_load = 0.0;
    for (const double rate : load.per_node_total) {
      max_load = std::max(max_load, rate);
    }
    const core::QualityReport quality = experiment->quality_report();
    table.begin_row()
        .add_cell(families[i].name)
        .add_num(load.per_component[static_cast<std::size_t>(
                     core::LoadComponent::kMbrSource)] /
                     2.0,
                 3)
        .add_num(experiment->overhead_report().mbr_internal, 2)
        .add_num(load.total, 2)
        .add_num(max_load / load.total, 2)
        .add_int(static_cast<long long>(quality.queries_posed))
        .add_int(static_cast<long long>(quality.matches_reported))
        .add_int(static_cast<long long>(quality.responses_received));
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nShape check: per-node load, replica counts, and balance stay in the\n"
      "same regime across all three stream families — the scalability\n"
      "results are not an artifact of the random-walk model. Stock closes\n"
      "co-move by sector, so their features cluster: slightly more matches\n"
      "from slightly tighter boxes, concentrated on fewer aggregators.\n");
  return 0;
}
