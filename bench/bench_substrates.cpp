// Portability ablation (Sec II-B / VII): the identical middleware and
// Table I workload over three routing substrates — Chord (the paper's
// testbed), Pastry-style prefix routing, and an idealized one-hop DHT.
//
// "The proposed middleware relies on the standard distributed hashing table
// interface ... it can be used on top of any existing content-based routing
// implementation." Functional results (matches found) must agree; what
// changes is the transit cost and hop structure of the overlay.
#include "bench/bench_common.hpp"

int main() {
  using namespace sdsi;
  std::printf("=== Substrate portability: Chord vs prefix routing vs ideal DHT ===\n");

  common::TextTable table({"Nodes", "Substrate", "MBR hops", "Resp hops",
                           "MBR transit/MBR", "Total load/node/s",
                           "Matches", "Responses"});
  for (const std::size_t n : {std::size_t{100}, std::size_t{300}}) {
    std::vector<core::ExperimentConfig> configs;
    for (const auto substrate :
         {core::SubstrateKind::kChord, core::SubstrateKind::kChord,
          core::SubstrateKind::kPrefixRing,
          core::SubstrateKind::kStaticRing}) {
      configs.push_back(bench::paper_experiment(n));
      configs.back().substrate = substrate;
    }
    configs[1].chord_lookup = chord::LookupStyle::kIterative;
    const auto experiments = bench::run_sweep(configs);
    const char* names[] = {"Chord (recursive)", "Chord (iterative)",
                           "prefix (Pastry-like)", "ideal one-hop"};
    for (std::size_t i = 0; i < experiments.size(); ++i) {
      const auto& experiment = experiments[i];
      const core::HopsReport hops = experiment->hops_report();
      const core::OverheadReport overhead = experiment->overhead_report();
      const core::QualityReport quality = experiment->quality_report();
      table.begin_row()
          .add_int(static_cast<long long>(n))
          .add_cell(names[i])
          .add_num(hops.mbr, 2)
          .add_num(hops.response, 2)
          .add_num(overhead.mbr_transit, 2)
          .add_num(experiment->load_report().total, 2)
          .add_int(static_cast<long long>(quality.matches_reported))
          .add_int(static_cast<long long>(quality.responses_received));
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nShape check: matches/responses are substrate-independent (the\n"
      "middleware is unchanged); hop counts drop from Chord's ~0.5*log2(N)\n"
      "to ~log16(N) for prefix routing to 1 for the ideal DHT, and transit\n"
      "load shrinks with them.\n");
  return 0;
}
