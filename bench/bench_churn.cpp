// Churn under load — measuring the claim the paper makes but never
// quantifies: "the underlying communication stratum accommodates dynamic
// changes such as data center failures ... without the need to temporarily
// block the normal system operation" (Sec VII).
//
// A 100-node system runs the Table I workload with background stabilization.
// Mid-run, 10% of the data centers crash simultaneously; 20 seconds later 10
// fresh ones join. We track, in 10-second windows: response throughput to
// clients, new matches delivered, and messages lost in flight — before,
// during, and after the churn.
#include <algorithm>
#include <memory>

#include "bench/bench_common.hpp"

namespace {

using namespace sdsi;

struct Window {
  double start_s = 0.0;
  std::uint64_t responses = 0;
  std::uint64_t matches = 0;
  std::uint64_t lost = 0;
  std::size_t alive = 0;
};

}  // namespace

int main() {
  std::printf("=== Churn under load: 10%% of data centers crash mid-run ===\n");

  constexpr std::size_t kNodes = 100;
  constexpr double kChurnAt = 120.0;   // seconds
  constexpr double kEnd = 220.0;

  sim::Simulator sim;
  chord::ChordConfig chord_config;
  chord_config.successor_list_length = 6;
  chord::ChordNetwork net(sim, chord_config);
  net.bootstrap(routing::hash_node_ids(kNodes, common::IdSpace(32), 42));

  core::MiddlewareConfig mw_config;
  mw_config.features = core::experiment_feature_config();
  // Soft-state refresh keeps subscriptions alive across holder crashes.
  mw_config.query_refresh_period = sim::Duration::seconds(10);
  core::MiddlewareSystem system(net, mw_config);
  core::WorkloadConfig workload;
  bench::print_workload_banner(workload);

  // Background ring maintenance, as a real deployment would run.
  sim.schedule_periodic(sim.now() + sim::Duration::millis(500),
                        sim::Duration::millis(500),
                        [&net] { net.run_maintenance_rounds(1); });

  // Streams: one random walk per original node; sources stop if their data
  // center dies (the sensor's uplink is gone).
  common::RngFactory rng_factory(42);
  std::vector<std::unique_ptr<streams::RandomWalkGenerator>> generators;
  common::Pcg32 period_rng = rng_factory.make("periods");
  for (NodeIndex node = 0; node < kNodes; ++node) {
    const StreamId sid = 1000 + node;
    system.register_stream(node, sid);
    generators.push_back(std::make_unique<streams::RandomWalkGenerator>(
        rng_factory.make("walk", node)));
    const auto period = sim::Duration::micros(
        period_rng.uniform_int(workload.stream_period_min.count_micros(),
                               workload.stream_period_max.count_micros()));
    auto* generator = generators.back().get();
    sim.schedule_periodic(sim.now() + period, period,
                          [&system, &net, node, sid, generator] {
                            if (net.is_alive(node)) {
                              system.post_stream_value(node, sid,
                                                       generator->next());
                            }
                          });
  }

  // Queries: Poisson arrivals from random ALIVE nodes.
  auto query_rng = std::make_shared<common::Pcg32>(rng_factory.make("q"));
  auto walk_rng = std::make_shared<common::Pcg32>(rng_factory.make("qw"));
  auto arrival = std::make_shared<std::function<void()>>();
  *arrival = [&, arrival, query_rng, walk_rng] {
    NodeIndex client;
    do {
      client = static_cast<NodeIndex>(
          query_rng->bounded(static_cast<std::uint32_t>(net.num_nodes())));
    } while (!net.is_alive(client));
    std::vector<Sample> window(mw_config.features.window_size);
    Sample value = walk_rng->uniform(-10.0, 10.0);
    for (Sample& x : window) {
      value += walk_rng->uniform(-1.0, 1.0);
      x = value;
    }
    const auto lifespan = sim::Duration::micros(
        query_rng->uniform_int(workload.query_lifespan_min.count_micros(),
                               workload.query_lifespan_max.count_micros()));
    (void)system.subscribe_similarity_window(client, window,
                                             workload.query_radius, lifespan);
    sim.schedule_after(
        sim::Duration::seconds(
            query_rng->exponential(workload.query_rate_per_sec)),
        [arrival] { (*arrival)(); });
  };
  sim.schedule_after(sim::Duration::seconds(0.3), [arrival] { (*arrival)(); });

  system.start();

  // The churn event, phase 1: 10 simultaneous crashes.
  sim.schedule_at(
      sim::SimTime::zero() + sim::Duration::seconds(kChurnAt), [&] {
        common::Pcg32 churn_rng(7, 7);
        int crashed = 0;
        while (crashed < 10) {
          const auto victim = static_cast<NodeIndex>(churn_rng.bounded(kNodes));
          if (net.is_alive(victim)) {
            net.crash(victim);
            ++crashed;
          }
        }
      });

  // Phase 2, twenty seconds later: 10 fresh data centers join.
  sim.schedule_at(
      sim::SimTime::zero() + sim::Duration::seconds(kChurnAt + 20.0), [&] {
        common::Pcg32 churn_rng(8, 8);
        for (int j = 0; j < 10; ++j) {
          // Fresh ring id (collisions in 2^32 are ~impossible; checked
          // anyway for determinism's sake).
          Key id;
          bool unique;
          do {
            id = net.id_space().wrap(churn_rng.next64());
            unique = true;
            for (NodeIndex k = 0; k < net.num_nodes(); ++k) {
              unique = unique && net.node_id(k) != id;
            }
          } while (!unique);
          NodeIndex via = 0;
          while (!net.is_alive(via)) {
            ++via;
          }
          const NodeIndex newcomer = net.join(id, via);
          system.attach_node(newcomer);
          const StreamId sid = 2000 + static_cast<StreamId>(j);
          system.register_stream(newcomer, sid);
          generators.push_back(std::make_unique<streams::RandomWalkGenerator>(
              rng_factory.make("walk-new", static_cast<std::uint64_t>(j))));
          auto* generator = generators.back().get();
          sim.schedule_periodic(sim.now() + sim::Duration::millis(200),
                                sim::Duration::millis(200),
                                [&system, &net, newcomer, sid, generator] {
                                  if (net.is_alive(newcomer)) {
                                    system.post_stream_value(
                                        newcomer, sid, generator->next());
                                  }
                                });
        }
      });

  // Sample windowed stats every 10 s.
  std::vector<Window> windows;
  std::uint64_t last_responses = 0;
  std::uint64_t last_matches = 0;
  std::uint64_t last_lost = 0;
  sim.schedule_periodic(
      sim.now() + sim::Duration::seconds(10), sim::Duration::seconds(10),
      [&] {
        std::uint64_t responses = 0;
        std::uint64_t matches = 0;
        for (const auto& [id, record] : system.client_records()) {
          responses += record.responses_received;
          matches += record.match_events;
        }
        const std::uint64_t lost = net.lost_messages();
        windows.push_back(Window{sim.now().as_seconds() - 10.0,
                                 responses - last_responses,
                                 matches - last_matches, lost - last_lost,
                                 net.alive_count()});
        last_responses = responses;
        last_matches = matches;
        last_lost = lost;
      });

  sim.run_until(sim::SimTime::zero() + sim::Duration::seconds(kEnd));

  common::TextTable table({"Window (s)", "Alive DCs", "Responses delivered",
                           "New matches", "Messages lost", "Phase"});
  for (const Window& window : windows) {
    const bool pre = window.start_s + 10.0 <= kChurnAt;
    const bool during = !pre && window.start_s < kChurnAt + 20.0;
    table.begin_row()
        .add_cell(common::format_fixed(window.start_s, 0) + "-" +
                  common::format_fixed(window.start_s + 10.0, 0))
        .add_int(static_cast<long long>(window.alive))
        .add_int(static_cast<long long>(window.responses))
        .add_int(static_cast<long long>(window.matches))
        .add_int(static_cast<long long>(window.lost))
        .add_cell(pre ? "steady" : (during ? "CHURN +/- repair" : "recovered"));
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nShape check: message losses concentrate in the churn window (the\n"
      "in-flight traffic of the 10 crashed data centers); response and\n"
      "match throughput dip briefly and recover to the steady-state rate\n"
      "without any restart — the Sec VII adaptivity claim, measured. The\n"
      "10 joined data centers host new streams that queries pick up via\n"
      "soft-state subscription refresh.\n");
  return 0;
}
