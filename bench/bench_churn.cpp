// Churn under load — measuring the claim the paper makes but never
// quantifies: "the underlying communication stratum accommodates dynamic
// changes such as data center failures ... without the need to temporarily
// block the normal system operation" (Sec VII).
//
// Part 1, churn under load: a 100-node system runs the Table I workload
// with background stabilization and successor-list replication (r = 2 +
// anti-entropy). Mid-run, 10% of the data centers crash simultaneously;
// 20 seconds later 10 fresh ones join (with ownership handoff). We track,
// in 10-second windows: response throughput to clients, new matches
// delivered, and messages lost in flight — before, during, and after.
//
// Part 2, middle-node failover drill: a deterministic fault-free run and
// an identical run that crashes the query's aggregation middle node are
// compared match-for-match. With replication on, the replica set promotes
// a new aggregator and the client-visible match set must be IDENTICAL —
// zero lost matches from a middle-node crash. The drill exits nonzero on
// any divergence, so `ctest -L churn-smoke` gates the failover invariant.
//
// --obs-dir additionally runs the canonical Experiment churn scenario
// (crash wave + replication) with the observability layer on, producing a
// metrics.json/trace.jsonl pair that tools/make_figures schema-validates.
#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "dsp/features.hpp"

namespace {

using namespace sdsi;

struct Window {
  double start_s = 0.0;
  std::uint64_t responses = 0;
  std::uint64_t matches = 0;
  std::uint64_t lost = 0;
  std::size_t alive = 0;
};

// ---------------------------------------------------------------------------
// Part 2: the middle-node failover drill.
//
// Both runs are byte-identical up to the crash instant: same ring, same
// streams (placed on every node EXCEPT the aggregator-to-be, so the crash
// removes only aggregation state, not source data), same single query. The
// query window is fixed first so the aggregation middle key — and thus the
// victim — is known before any workload is wired.
// ---------------------------------------------------------------------------

struct DrillOutcome {
  std::set<StreamId> matched;
  std::uint64_t responses = 0;
  std::uint64_t failovers = 0;
  std::uint64_t detours = 0;
  NodeIndex aggregator = 0;
};

DrillOutcome run_drill(bool crash_middle) {
  constexpr std::size_t kDrillNodes = 30;
  constexpr std::uint64_t kDrillSeed = 99;

  sim::Simulator sim;
  chord::ChordConfig chord_config;
  chord_config.successor_list_length = 6;
  chord::ChordNetwork net(sim, chord_config);
  net.bootstrap(
      routing::hash_node_ids(kDrillNodes, common::IdSpace(32), kDrillSeed));

  core::MiddlewareConfig mw;
  mw.features = core::experiment_feature_config();
  mw.features.window_size = 16;  // MBRs flow within seconds
  // Every batch published during the run is still live at the final check.
  mw.mbr_lifespan = sim::Duration::seconds(60);
  mw.notify_period = sim::Duration::millis(1000);
  mw.mbr_ack.enabled = true;
  mw.replication_factor = 2;
  mw.anti_entropy_period = sim::Duration::millis(500);
  core::MiddlewareSystem system(net, mw);

  // Fix the query window, then locate its aggregation middle node exactly
  // the way subscribe_similarity_window will.
  common::RngFactory rng_factory(kDrillSeed);
  common::Pcg32 query_rng = rng_factory.make("drill-query");
  std::vector<Sample> query_window(mw.features.window_size);
  Sample value = 0.0;
  for (Sample& x : query_window) {
    value += query_rng.uniform(-1.0, 1.0);
    x = value;
  }
  const auto features = dsp::extract_features(query_window, mw.features);
  const double radius = 0.3;
  const auto [lo, hi] = system.mapper().query_range(features, radius);
  const Key middle = net.id_space().midpoint(lo, hi);
  const NodeIndex aggregator = net.find_successor_oracle(middle);
  const NodeIndex client = aggregator == 0 ? 1 : 0;

  sim.schedule_periodic(sim.now() + sim::Duration::millis(250),
                        sim::Duration::millis(250),
                        [&net] { net.run_maintenance_rounds(1); });

  // Streams everywhere except the aggregator-to-be (identical workload in
  // both runs; the crash must not silence any source).
  std::vector<std::unique_ptr<streams::RandomWalkGenerator>> generators;
  common::Pcg32 period_rng = rng_factory.make("periods");
  for (NodeIndex node = 0; node < kDrillNodes; ++node) {
    if (node == aggregator) {
      continue;
    }
    const StreamId sid = 1000 + node;
    system.register_stream(node, sid);
    generators.push_back(std::make_unique<streams::RandomWalkGenerator>(
        rng_factory.make("walk", node)));
    auto* generator = generators.back().get();
    const auto period =
        sim::Duration::micros(period_rng.uniform_int(150'000, 250'000));
    sim.schedule_periodic(sim.now() + period, period,
                          [&system, &net, node, sid, generator] {
                            if (net.is_alive(node)) {
                              system.post_stream_value(node, sid,
                                                       generator->next());
                            }
                          });
  }

  auto query_id = std::make_shared<core::QueryId>(0);
  sim.schedule_at(
      sim::SimTime::zero() + sim::Duration::seconds(1),
      [&system, query_id, query_window, client, radius] {
        *query_id = system.subscribe_similarity_window(
            client, query_window, radius, sim::Duration::seconds(60));
      });

  system.start();

  if (crash_middle) {
    sim.schedule_at(sim::SimTime::zero() + sim::Duration::seconds(20),
                    [&net, aggregator] { net.crash(aggregator); });
  }

  sim.run_until(sim::SimTime::zero() + sim::Duration::seconds(40));

  DrillOutcome outcome;
  outcome.aggregator = aggregator;
  if (const core::ClientQueryRecord* record = system.client_record(*query_id);
      record != nullptr) {
    outcome.matched.insert(record->matched_streams.begin(),
                           record->matched_streams.end());
    outcome.responses = record->responses_received;
  }
  outcome.failovers = system.metrics().robustness().aggregator_failovers;
  outcome.detours = system.metrics().robustness().report_detours;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::consume_json_flag(argc, argv);
  const std::string obs_dir = bench::consume_value_flag(argc, argv, "--obs-dir");
  const bool smoke = bench::consume_flag(argc, argv, "--smoke");

  bench::JsonBenchReporter reporter("churn");

  std::printf("=== Churn under load: 10%% of data centers crash mid-run ===\n");

  // Smoke shrinks the ring and the sliding window so the whole bench (and
  // the churn-smoke ctest gate) finishes in seconds; the full run keeps the
  // historical 100-node / 256-sample shape.
  const std::size_t kNodes = smoke ? 40 : 100;
  const double kChurnAt = smoke ? 40.0 : 120.0;
  const double kEnd = smoke ? 90.0 : 220.0;
  const std::size_t kChurnCount = kNodes / 10;

  sim::Simulator sim;
  chord::ChordConfig chord_config;
  chord_config.successor_list_length = 6;
  chord::ChordNetwork net(sim, chord_config);
  net.bootstrap(routing::hash_node_ids(kNodes, common::IdSpace(32), 42));

  core::MiddlewareConfig mw_config;
  mw_config.features = core::experiment_feature_config();
  if (smoke) {
    mw_config.features.window_size = 32;  // fills before the churn window
  }
  // Soft-state refresh keeps subscriptions alive across holder crashes;
  // successor-list replication keeps the stored state itself alive, so
  // matching resumes in O(stabilization) instead of O(refresh period).
  mw_config.query_refresh_period = sim::Duration::seconds(10);
  mw_config.replication_factor = 2;
  mw_config.anti_entropy_period = sim::Duration::seconds(2);
  core::MiddlewareSystem system(net, mw_config);
  core::WorkloadConfig workload;
  bench::print_workload_banner(workload);

  // Background ring maintenance, as a real deployment would run.
  sim.schedule_periodic(sim.now() + sim::Duration::millis(500),
                        sim::Duration::millis(500),
                        [&net] { net.run_maintenance_rounds(1); });

  // Streams: one random walk per original node; sources stop if their data
  // center dies (the sensor's uplink is gone).
  common::RngFactory rng_factory(42);
  std::vector<std::unique_ptr<streams::RandomWalkGenerator>> generators;
  common::Pcg32 period_rng = rng_factory.make("periods");
  for (NodeIndex node = 0; node < kNodes; ++node) {
    const StreamId sid = 1000 + node;
    system.register_stream(node, sid);
    generators.push_back(std::make_unique<streams::RandomWalkGenerator>(
        rng_factory.make("walk", node)));
    const auto period = sim::Duration::micros(
        period_rng.uniform_int(workload.stream_period_min.count_micros(),
                               workload.stream_period_max.count_micros()));
    auto* generator = generators.back().get();
    sim.schedule_periodic(sim.now() + period, period,
                          [&system, &net, node, sid, generator] {
                            if (net.is_alive(node)) {
                              system.post_stream_value(node, sid,
                                                       generator->next());
                            }
                          });
  }

  // Queries: Poisson arrivals from random ALIVE nodes.
  auto query_rng = std::make_shared<common::Pcg32>(rng_factory.make("q"));
  auto walk_rng = std::make_shared<common::Pcg32>(rng_factory.make("qw"));
  auto arrival = std::make_shared<std::function<void()>>();
  *arrival = [&, arrival, query_rng, walk_rng] {
    NodeIndex client;
    do {
      client = static_cast<NodeIndex>(
          query_rng->bounded(static_cast<std::uint32_t>(net.num_nodes())));
    } while (!net.is_alive(client));
    std::vector<Sample> window(mw_config.features.window_size);
    Sample value = walk_rng->uniform(-10.0, 10.0);
    for (Sample& x : window) {
      value += walk_rng->uniform(-1.0, 1.0);
      x = value;
    }
    const auto lifespan = sim::Duration::micros(
        query_rng->uniform_int(workload.query_lifespan_min.count_micros(),
                               workload.query_lifespan_max.count_micros()));
    (void)system.subscribe_similarity_window(client, window,
                                             workload.query_radius, lifespan);
    sim.schedule_after(
        sim::Duration::seconds(
            query_rng->exponential(workload.query_rate_per_sec)),
        [arrival] { (*arrival)(); });
  };
  sim.schedule_after(sim::Duration::seconds(0.3), [arrival] { (*arrival)(); });

  system.start();

  // The churn event, phase 1: simultaneous crashes (10% of the ring).
  sim.schedule_at(
      sim::SimTime::zero() + sim::Duration::seconds(kChurnAt), [&] {
        common::Pcg32 churn_rng(7, 7);
        std::size_t crashed = 0;
        while (crashed < kChurnCount) {
          const auto victim = static_cast<NodeIndex>(
              churn_rng.bounded(static_cast<std::uint32_t>(kNodes)));
          if (net.is_alive(victim)) {
            net.crash(victim);
            ++crashed;
          }
        }
      });

  // Phase 2, twenty seconds later: the same number of fresh data centers
  // join; ownership handoff pulls each newcomer's key-range slice from its
  // successor so it serves its arc immediately.
  sim.schedule_at(
      sim::SimTime::zero() + sim::Duration::seconds(kChurnAt + 20.0), [&] {
        common::Pcg32 churn_rng(8, 8);
        for (std::size_t j = 0; j < kChurnCount; ++j) {
          // Fresh ring id (collisions in 2^32 are ~impossible; checked
          // anyway for determinism's sake).
          Key id;
          bool unique;
          do {
            id = net.id_space().wrap(churn_rng.next64());
            unique = true;
            for (NodeIndex k = 0; k < net.num_nodes(); ++k) {
              unique = unique && net.node_id(k) != id;
            }
          } while (!unique);
          NodeIndex via = 0;
          while (!net.is_alive(via)) {
            ++via;
          }
          const NodeIndex newcomer = net.join(id, via);
          system.attach_node(newcomer);
          system.handle_node_join(newcomer);
          const StreamId sid = 2000 + static_cast<StreamId>(j);
          system.register_stream(newcomer, sid);
          generators.push_back(std::make_unique<streams::RandomWalkGenerator>(
              rng_factory.make("walk-new", static_cast<std::uint64_t>(j))));
          auto* generator = generators.back().get();
          sim.schedule_periodic(sim.now() + sim::Duration::millis(200),
                                sim::Duration::millis(200),
                                [&system, &net, newcomer, sid, generator] {
                                  if (net.is_alive(newcomer)) {
                                    system.post_stream_value(
                                        newcomer, sid, generator->next());
                                  }
                                });
        }
      });

  // Sample windowed stats every 10 s.
  std::vector<Window> windows;
  std::uint64_t last_responses = 0;
  std::uint64_t last_matches = 0;
  std::uint64_t last_lost = 0;
  sim.schedule_periodic(
      sim.now() + sim::Duration::seconds(10), sim::Duration::seconds(10),
      [&] {
        std::uint64_t responses = 0;
        std::uint64_t matches = 0;
        for (const auto& [id, record] : system.client_records()) {
          responses += record.responses_received;
          matches += record.match_events;
        }
        const std::uint64_t lost = net.lost_messages();
        windows.push_back(Window{sim.now().as_seconds() - 10.0,
                                 responses - last_responses,
                                 matches - last_matches, lost - last_lost,
                                 net.alive_count()});
        last_responses = responses;
        last_matches = matches;
        last_lost = lost;
      });

  sim.run_until(sim::SimTime::zero() + sim::Duration::seconds(kEnd));
  // The arrival closure holds its own shared_ptr (self-rescheduling); break
  // the cycle so the run is leak-clean under the asan preset.
  *arrival = std::function<void()>();

  common::TextTable table({"Window (s)", "Alive DCs", "Responses delivered",
                           "New matches", "Messages lost", "Phase"});
  double steady_responses = 0.0, churn_responses = 0.0, recov_responses = 0.0;
  std::size_t steady_n = 0, churn_n = 0, recov_n = 0;
  std::uint64_t lost_total = 0;
  for (const Window& window : windows) {
    const bool pre = window.start_s + 10.0 <= kChurnAt;
    const bool during = !pre && window.start_s < kChurnAt + 20.0;
    if (pre) {
      steady_responses += static_cast<double>(window.responses);
      ++steady_n;
    } else if (during) {
      churn_responses += static_cast<double>(window.responses);
      ++churn_n;
    } else {
      recov_responses += static_cast<double>(window.responses);
      ++recov_n;
    }
    lost_total += window.lost;
    table.begin_row()
        .add_cell(common::format_fixed(window.start_s, 0) + "-" +
                  common::format_fixed(window.start_s + 10.0, 0))
        .add_int(static_cast<long long>(window.alive))
        .add_int(static_cast<long long>(window.responses))
        .add_int(static_cast<long long>(window.matches))
        .add_int(static_cast<long long>(window.lost))
        .add_cell(pre ? "steady" : (during ? "CHURN +/- repair" : "recovered"));
  }
  std::printf("%s", table.render().c_str());

  const auto& robustness = system.metrics().robustness();
  std::printf(
      "\nReplication layer during the churn run: %llu replica puts, %llu\n"
      "anti-entropy repairs, %llu handoff entries (%llu bytes) pulled by the\n"
      "%zu joining data centers.\n",
      static_cast<unsigned long long>(robustness.replica_puts),
      static_cast<unsigned long long>(robustness.replica_repairs),
      static_cast<unsigned long long>(robustness.handoff_entries),
      static_cast<unsigned long long>(robustness.handoff_bytes),
      kChurnCount);
  std::printf(
      "\nShape check: what few messages are lost at all are lost in the churn\n"
      "window — with dead-hop detours on, traffic addressed to a crashed\n"
      "data center reroutes through its successor list instead of dying in\n"
      "flight. Response and match throughput dip briefly and recover to the\n"
      "steady-state rate without any restart — the Sec VII adaptivity claim,\n"
      "measured. Joined data centers host new streams that queries pick up\n"
      "via soft-state refresh, and pull their key-range slice through\n"
      "ownership handoff.\n");

  const std::string churn_label =
      "chord N=" + std::to_string(kNodes) + " crash=" +
      std::to_string(kChurnCount) + " join=" + std::to_string(kChurnCount) +
      " repl=2 anti-entropy=2000ms";
  const double churn_sim_ms = kEnd * 1000.0;
  reporter.add({"responses_per_10s/steady", churn_label,
                steady_n > 0 ? steady_responses / static_cast<double>(steady_n)
                             : 0.0,
                churn_sim_ms});
  reporter.add({"responses_per_10s/churn", churn_label,
                churn_n > 0 ? churn_responses / static_cast<double>(churn_n)
                            : 0.0,
                churn_sim_ms});
  reporter.add({"responses_per_10s/recovered", churn_label,
                recov_n > 0 ? recov_responses / static_cast<double>(recov_n)
                            : 0.0,
                churn_sim_ms});
  reporter.add({"lost_messages_total", churn_label,
                static_cast<double>(lost_total), churn_sim_ms});
  reporter.add({"replica_puts", churn_label,
                static_cast<double>(robustness.replica_puts), churn_sim_ms});
  reporter.add({"handoff_entries", churn_label,
                static_cast<double>(robustness.handoff_entries),
                churn_sim_ms});

  // -------------------------------------------------------------------------
  // Part 2: the middle-node failover drill (always runs; it is fast).
  // -------------------------------------------------------------------------
  std::printf(
      "\n=== Failover drill: crash the query's aggregation middle node ===\n");
  const DrillOutcome baseline = run_drill(/*crash_middle=*/false);
  const DrillOutcome crashed = run_drill(/*crash_middle=*/true);

  std::vector<StreamId> lost_matches;
  std::set_difference(baseline.matched.begin(), baseline.matched.end(),
                      crashed.matched.begin(), crashed.matched.end(),
                      std::back_inserter(lost_matches));
  std::vector<StreamId> spurious_matches;
  std::set_difference(crashed.matched.begin(), crashed.matched.end(),
                      baseline.matched.begin(), baseline.matched.end(),
                      std::back_inserter(spurious_matches));

  std::printf(
      "Aggregator node %zu crashed at t=20s (replication r=2, anti-entropy\n"
      "500ms, no link faults). Baseline matched %zu streams; crashed run\n"
      "matched %zu. Lost: %zu, spurious: %zu. Failovers: %llu, report\n"
      "detours: %llu.\n",
      static_cast<std::size_t>(crashed.aggregator), baseline.matched.size(),
      crashed.matched.size(), lost_matches.size(), spurious_matches.size(),
      static_cast<unsigned long long>(crashed.failovers),
      static_cast<unsigned long long>(crashed.detours));

  const std::string drill_label =
      "chord N=30 repl=2 anti-entropy=500ms crash-middle@20s";
  reporter.add({"drill/baseline_matches", drill_label,
                static_cast<double>(baseline.matched.size()), 40000.0});
  reporter.add({"drill/crashed_matches", drill_label,
                static_cast<double>(crashed.matched.size()), 40000.0});
  reporter.add({"drill/lost_matches", drill_label,
                static_cast<double>(lost_matches.size()), 40000.0});
  reporter.add({"drill/spurious_matches", drill_label,
                static_cast<double>(spurious_matches.size()), 40000.0});
  reporter.add({"drill/aggregator_failovers", drill_label,
                static_cast<double>(crashed.failovers), 40000.0});

  bool drill_ok = true;
  if (baseline.matched.empty()) {
    std::printf("FAIL: drill baseline matched no streams (vacuous drill)\n");
    drill_ok = false;
  }
  if (!lost_matches.empty() || !spurious_matches.empty()) {
    std::printf(
        "FAIL: middle-node crash changed the client-visible match set\n");
    drill_ok = false;
  }
  if (crashed.failovers == 0) {
    std::printf("FAIL: no aggregator failover recorded in the crashed run\n");
    drill_ok = false;
  }
  if (drill_ok) {
    std::printf(
        "OK: a middle-node crash with live replicas loses zero client-\n"
        "visible matches; a promoted replica aggregator carried the query.\n");
  }

  // -------------------------------------------------------------------------
  // --obs-dir: canonical Experiment churn scenario through the observability
  // layer, so make_figures can schema-validate a replication-era run.
  // -------------------------------------------------------------------------
  if (!obs_dir.empty()) {
    core::ExperimentConfig config;
    config.num_nodes = smoke ? 20 : 50;
    config.seed = 42;
    config.features.window_size = 16;
    config.warmup = sim::Duration::seconds(smoke ? 6 : 30);
    config.measure = sim::Duration::seconds(smoke ? 8 : 30);
    config.drain = sim::Duration::millis(2000);
    config.mbr_acks = true;
    config.mbr_refresh_period = sim::Duration::millis(2000);
    config.replication_factor = 2;
    config.anti_entropy_period = sim::Duration::millis(1000);
    fault::CrashWave wave;
    wave.at = sim::SimTime::zero() + config.warmup + sim::Duration::seconds(2);
    wave.fraction = 0.2;
    wave.down_for = sim::Duration::seconds(3);
    config.faults.crash_waves.push_back(wave);
    config.obs.dir = obs_dir + "/churn";
    config.obs.trace = true;
    config.obs.window = sim::Duration::millis(500);
    core::Experiment experiment(config);
    experiment.run();
    std::printf("\nObservability export: %s/churn/metrics.json (+trace)\n",
                obs_dir.c_str());
  }

  if (!json_path.empty() && !reporter.write(json_path)) {
    return 1;
  }
  return drill_ok ? 0 : 1;
}
