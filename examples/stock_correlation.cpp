// Stock-ticker correlation monitoring — the paper's flagship use case:
// "Find all pairs of companies whose closing prices over the last month
// correlate within a threshold!"
//
// 60 synthetic S&P500-like tickers (10 per sector, correlated through
// market and sector factors) stream their daily closes into 20 data
// centers. For a probe ticker we pose a continuous similarity query over
// z-normalized windows — which is exactly correlation search, since
// ||ẑa - ẑb||² = 2(1 - corr(a, b)) — and compare the distributed index's
// answer against directly computed correlations.
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>

#include "chord/network.hpp"
#include "core/system.hpp"
#include "dsp/normalize.hpp"
#include "routing/static_ring.hpp"
#include "streams/generators.hpp"

using namespace sdsi;

int main() {
  std::printf("=== stock correlation monitor ===\n\n");

  constexpr std::size_t kDataCenters = 20;
  constexpr std::size_t kTickers = 60;
  constexpr std::size_t kWindow = 64;  // "the last month" of ticks

  sim::Simulator sim;
  chord::ChordConfig chord_config;
  chord::ChordNetwork network(sim, chord_config);
  network.bootstrap(
      routing::hash_node_ids(kDataCenters, common::IdSpace(32), 11));

  core::MiddlewareConfig config;
  config.features.window_size = kWindow;
  config.features.num_coefficients = 3;
  config.features.normalization = dsp::Normalization::kZNormalize;
  config.batching.batch_size = 4;
  config.mbr_lifespan = sim::Duration::seconds(60);
  config.notify_period = sim::Duration::millis(1000);
  core::MiddlewareSystem middleware(network, config);
  middleware.start();

  // One shared market model; ticker i reports to data center i % 20.
  common::RngFactory rng_factory(2005);
  streams::StockMarketModel::Params market_params;
  market_params.num_tickers = kTickers;
  market_params.num_sectors = 6;
  streams::StockMarketModel market(rng_factory.make("market"), market_params);

  std::vector<std::vector<Sample>> history(kTickers);
  for (std::size_t t = 0; t < kTickers; ++t) {
    middleware.register_stream(static_cast<NodeIndex>(t % kDataCenters),
                               1000 + t);
  }
  for (int day = 0; day < 160; ++day) {
    market.step();
    for (std::size_t t = 0; t < kTickers; ++t) {
      const double close = market.close(t);
      history[t].push_back(close);
      middleware.post_stream_value(static_cast<NodeIndex>(t % kDataCenters),
                                   1000 + t, close);
    }
  }
  sim.run_until(sim.now() + sim::Duration::seconds(2));

  // Probe: ticker 0's last window. Which tickers correlate with it?
  const std::size_t probe = 0;
  std::vector<Sample> probe_window(history[probe].end() -
                                       static_cast<std::ptrdiff_t>(kWindow),
                                   history[probe].end());
  const double radius = 0.45;  // corr >= 1 - r^2/2 ~ 0.90
  const core::QueryId query = middleware.subscribe_similarity_window(
      /*client=*/3, probe_window, radius, sim::Duration::seconds(60));
  sim.run_until(sim.now() + sim::Duration::seconds(8));

  // Ground truth, computed directly from the price histories.
  struct TickerCorr {
    std::size_t ticker;
    double correlation;
  };
  std::vector<TickerCorr> truth;
  for (std::size_t t = 0; t < kTickers; ++t) {
    std::vector<Sample> window(history[t].end() -
                                   static_cast<std::ptrdiff_t>(kWindow),
                               history[t].end());
    truth.push_back({t, dsp::pearson_correlation(probe_window, window)});
  }
  std::sort(truth.begin(), truth.end(),
            [](const TickerCorr& a, const TickerCorr& b) {
              return a.correlation > b.correlation;
            });

  const core::ClientQueryRecord* record = middleware.client_record(query);
  std::printf("index reported %zu candidate ticker(s) for corr >= ~%.2f "
              "(radius %.2f):\n",
              record->matched_streams.size(), 1.0 - radius * radius / 2.0,
              radius);
  std::printf("\n%-8s %-10s %-8s %s\n", "ticker", "corr", "sector",
              "reported by index");
  int false_dismissals = 0;
  for (const TickerCorr& entry : truth) {
    const bool reported = record->matched_streams.contains(1000 + entry.ticker);
    const bool should_match =
        entry.correlation >= 1.0 - radius * radius / 2.0;
    if (should_match && !reported) {
      ++false_dismissals;
    }
    if (entry.correlation > 0.6 || reported) {
      std::printf("%-8s %-10.3f %-8zu %s%s\n",
                  market.ticker_symbol(entry.ticker).c_str(),
                  entry.correlation, market.sector_of(entry.ticker),
                  reported ? "yes" : "no",
                  should_match && !reported ? "  <-- FALSE DISMISSAL" : "");
    }
  }
  std::printf(
      "\nfalse dismissals: %d (the lower-bounding property guarantees 0;\n"
      "extra candidates are expected — the synopsis is a conservative "
      "filter)\n",
      false_dismissals);
  std::printf(
      "note: sector mates of %s dominate the matches — the factor structure\n"
      "of the market is exactly what correlation queries surface.\n",
      market.ticker_symbol(probe).c_str());
  return 0;
}
