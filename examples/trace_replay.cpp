// Trace capture and replay: record a live workload to a CSV trace, reload
// it, and drive the distributed index from the file — the workflow for
// indexing recorded real-world datasets (the paper's S&P500 / host-load
// files) instead of live generators.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "chord/network.hpp"
#include "core/system.hpp"
#include "routing/static_ring.hpp"
#include "streams/generators.hpp"
#include "streams/trace.hpp"

using namespace sdsi;

int main() {
  std::printf("=== trace capture & replay ===\n\n");

  // 1. Capture: record three host-load sensors into one trace file.
  common::RngFactory rng_factory(123);
  std::vector<streams::TraceRecord> records;
  for (StreamId stream = 1; stream <= 3; ++stream) {
    streams::HostLoadGenerator sensor(rng_factory.make("sensor", stream));
    const auto captured =
        streams::record_generator(sensor, stream, 300, /*period=*/0.1);
    records.insert(records.end(), captured.begin(), captured.end());
  }
  const char* path = "/tmp/sdsi_example_trace.csv";
  {
    std::ofstream out(path);
    streams::write_trace(out, records);
  }
  std::printf("captured %zu records from 3 sensors -> %s\n", records.size(),
              path);

  // 2. Reload and replay through the index.
  std::ifstream in(path);
  const auto loaded = streams::read_trace(in);
  std::printf("reloaded %zu records\n\n", loaded.size());

  sim::Simulator sim;
  chord::ChordConfig chord_config;
  chord::ChordNetwork network(sim, chord_config);
  network.bootstrap(routing::hash_node_ids(8, common::IdSpace(32), 5));

  core::MiddlewareConfig config;
  config.features.window_size = 64;
  config.features.num_coefficients = 3;
  config.batching.batch_size = 4;
  config.notify_period = sim::Duration::millis(1000);
  core::MiddlewareSystem middleware(network, config);
  middleware.start();

  std::vector<streams::TraceReplayGenerator> replays;
  for (StreamId stream = 1; stream <= 3; ++stream) {
    replays.emplace_back(loaded, stream);
    middleware.register_stream(static_cast<NodeIndex>(stream), stream);
  }
  // Drive the trace at its recorded 100 ms cadence.
  while (!replays[0].exhausted()) {
    for (StreamId stream = 1; stream <= 3; ++stream) {
      middleware.post_stream_value(static_cast<NodeIndex>(stream), stream,
                                   replays[stream - 1].next());
    }
    sim.run_until(sim.now() + sim::Duration::millis(100));
  }

  // 3. Query the replayed data: which sensors currently behave like
  //    sensor 1's recorded tail?
  std::vector<Sample> pattern;
  for (std::size_t i = records.size() / 3 - 64; i < records.size() / 3; ++i) {
    pattern.push_back(records[i].value);  // sensor 1's last 64 readings
  }
  const core::QueryId id = middleware.subscribe_similarity_window(
      /*client=*/6, pattern, /*radius=*/0.35, sim::Duration::seconds(20));
  sim.run_until(sim.now() + sim::Duration::seconds(5));

  const core::ClientQueryRecord* record = middleware.client_record(id);
  std::printf("similarity query on the replayed trace matched %zu sensor(s):",
              record->matched_streams.size());
  for (const StreamId stream : record->matched_streams) {
    std::printf(" #%llu", static_cast<unsigned long long>(stream));
  }
  std::printf("\n(sensor #1 must match itself; whether #2/#3 match depends"
              "\n on how correlated their recorded load shapes are)\n");
  std::remove(path);
  return 0;
}
