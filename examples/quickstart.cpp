// Quickstart: the whole system in one file.
//
// Builds a 16-data-center Chord ring, attaches the stream-indexing
// middleware, feeds a handful of streams, and poses both query types the
// paper supports — a continuous similarity query and a continuous
// inner-product query — then prints what came back and what it cost.
//
// This walks the exact machinery of Figures 2-4: incremental DFT summaries,
// Eq. 6 content keys, MBR batching, range replication, middle-node
// aggregation, and the h2 location service.
#include <cmath>
#include <cstdio>
#include <numbers>

#include "chord/network.hpp"
#include "core/system.hpp"
#include "routing/static_ring.hpp"

using namespace sdsi;

int main() {
  std::printf("=== sdsi quickstart ===\n\n");

  // 1. A simulated network of 16 data centers on a Chord ring.
  sim::Simulator sim;
  chord::ChordConfig chord_config;       // 32-bit ids, 50 ms per hop
  chord::ChordNetwork network(sim, chord_config);
  network.bootstrap(routing::hash_node_ids(16, common::IdSpace(32), 1));
  std::printf("built a Chord ring with %zu data centers\n",
              network.alive_count());

  // 2. The middleware: W=64 sliding windows, first k=2 DFT coefficients,
  //    z-normalized (correlation semantics), MBR batches of 4.
  core::MiddlewareConfig config;
  config.features.window_size = 64;
  config.features.num_coefficients = 2;
  config.batching.batch_size = 4;
  config.notify_period = sim::Duration::millis(1000);
  core::MiddlewareSystem middleware(network, config);
  middleware.start();

  // 3. Three streams at three different data centers. Streams 1 and 2 are
  //    phase-aligned sinusoids (strongly correlated); stream 3 oscillates
  //    at a different (but still synopsis-representable) frequency.
  middleware.register_stream(/*node=*/2, /*stream=*/101);
  middleware.register_stream(/*node=*/7, /*stream=*/102);
  middleware.register_stream(/*node=*/12, /*stream=*/103);
  auto wave = [](int t, double harmonics, double level) {
    return level +
           3.0 * std::cos(2.0 * std::numbers::pi * harmonics * t / 64.0);
  };
  for (int t = 0; t < 200; ++t) {
    middleware.post_stream_value(2, 101, wave(t, 1.0, 20.0));
    middleware.post_stream_value(7, 102, wave(t, 1.0, 55.0));  // same shape
    middleware.post_stream_value(12, 103, wave(t, 2.0, 20.0));
  }
  sim.run_until(sim.now() + sim::Duration::seconds(2));
  std::printf("fed 200 samples into 3 streams; %llu MBRs content-routed\n\n",
              static_cast<unsigned long long>(middleware.mbrs_routed()));

  // 4. A similarity query: "which streams currently move like stream 101?"
  //    posed at yet another data center (node 5). z-normalization makes the
  //    differing offsets (20 vs 55) irrelevant — this is correlation search.
  std::vector<Sample> pattern(64);
  for (int t = 136; t < 200; ++t) {
    pattern[static_cast<std::size_t>(t - 136)] = wave(t, 1.0, 0.0);
  }
  const core::QueryId similar = middleware.subscribe_similarity_window(
      /*client=*/5, pattern, /*radius=*/0.1,
      /*lifespan=*/sim::Duration::seconds(30));

  // 5. An inner-product query: "weighted average of the last 4 readings of
  //    stream 103", resolved through the h2 location service.
  const core::QueryId product = middleware.subscribe_inner_product(
      /*client=*/9, /*stream=*/103, /*index=*/{1.0, 1.0, 1.0, 1.0},
      /*weights=*/{0.25, 0.25, 0.25, 0.25},
      /*lifespan=*/sim::Duration::seconds(30));

  sim.run_until(sim.now() + sim::Duration::seconds(5));

  // 6. Results.
  const core::ClientQueryRecord* similarity_record =
      middleware.client_record(similar);
  std::printf("similarity query (radius 0.1) matched %zu stream(s):",
              similarity_record->matched_streams.size());
  for (const StreamId stream : similarity_record->matched_streams) {
    std::printf(" %llu", static_cast<unsigned long long>(stream));
  }
  std::printf("\n  -> 101 and 102 correlate (same shape, different offset); "
              "103 does not.\n");

  const core::ClientQueryRecord* product_record =
      middleware.client_record(product);
  std::printf(
      "inner-product query on stream 103: %.3f (true window average %.3f)\n",
      product_record->last_inner_value,
      (wave(196, 2.0, 20.0) + wave(197, 2.0, 20.0) + wave(198, 2.0, 20.0) +
       wave(199, 2.0, 20.0)) /
          4.0);

  // 7. What it cost, per the paper's instrumentation.
  const auto& metrics = middleware.metrics();
  std::printf(
      "\nmessage accounting: %llu MBR updates (%llu range replicas, "
      "%llu overlay relays), %llu query messages, %llu responses\n",
      static_cast<unsigned long long>(metrics.mbr().originated),
      static_cast<unsigned long long>(metrics.mbr().range_internal),
      static_cast<unsigned long long>(metrics.mbr().transit),
      static_cast<unsigned long long>(metrics.query().originated +
                                      metrics.query().range_internal),
      static_cast<unsigned long long>(metrics.response().originated));
  std::printf("mean MBR routing hops: %.2f (O(log 16) as Chord promises)\n",
              metrics.mbr().hops_routed.mean());
  return 0;
}
