// Sensor-fleet monitoring — the paper's sensornet scenario:
//  "Which temperature sensors currently ... exhibit some behavior pattern?"
//  "Notify when the weighted average of the last 20 measurements of a
//   patient exceeds a threshold!"
//
// A fleet of host-load-like sensors reports into 12 data centers. Most
// sensors idle around a flat baseline; a few develop a periodic oscillation
// (the "pattern"). A continuous subsequence query (unit-normalized windows,
// Eq. 2) finds the oscillating sensors; inner-product subscriptions watch
// weighted averages for threshold alerts.
#include <cmath>
#include <cstdio>
#include <memory>
#include <numbers>

#include "chord/network.hpp"
#include "core/system.hpp"
#include "routing/static_ring.hpp"
#include "streams/generators.hpp"

using namespace sdsi;

int main() {
  std::printf("=== sensor fleet monitor ===\n\n");

  constexpr std::size_t kDataCenters = 12;
  constexpr std::size_t kSensors = 24;
  constexpr std::size_t kWindow = 32;

  sim::Simulator sim;
  chord::ChordConfig chord_config;
  chord::ChordNetwork network(sim, chord_config);
  network.bootstrap(
      routing::hash_node_ids(kDataCenters, common::IdSpace(32), 21));

  core::MiddlewareConfig config;
  config.features.window_size = kWindow;
  config.features.num_coefficients = 3;
  // Subsequence / pattern semantics: Eq. 2 unit normalization.
  config.features.normalization = dsp::Normalization::kUnitNormalize;
  config.batching.batch_size = 4;
  config.mbr_lifespan = sim::Duration::seconds(30);
  config.notify_period = sim::Duration::millis(1000);
  core::MiddlewareSystem middleware(network, config);
  middleware.start();

  // Sensors 0..19 are healthy (slow AR noise around 1.0); sensors 20..23
  // oscillate (a failing fan, a flapping link, a fever...).
  common::RngFactory rng_factory(99);
  std::vector<std::unique_ptr<streams::HostLoadGenerator>> background;
  for (std::size_t s = 0; s < kSensors; ++s) {
    middleware.register_stream(static_cast<NodeIndex>(s % kDataCenters),
                               500 + s);
    streams::HostLoadGenerator::Params params;
    params.burst_probability = 0.0;
    params.noise_std = 0.01;
    background.push_back(std::make_unique<streams::HostLoadGenerator>(
        rng_factory.make("sensor", s), params));
  }
  auto oscillation = [](int t) {
    return 0.6 * std::sin(2.0 * std::numbers::pi * 2.0 * t / kWindow);
  };
  for (int t = 0; t < 120; ++t) {
    for (std::size_t s = 0; s < kSensors; ++s) {
      double value = background[s]->next();
      if (s >= 20) {
        value += oscillation(t);
      }
      middleware.post_stream_value(static_cast<NodeIndex>(s % kDataCenters),
                                   500 + s, value);
    }
  }
  sim.run_until(sim.now() + sim::Duration::seconds(2));

  // Pattern query: a pure template of the oscillation shape on top of a
  // unit baseline, posed at data center 4.
  std::vector<Sample> pattern(kWindow);
  for (std::size_t j = 0; j < kWindow; ++j) {
    pattern[j] = 1.0 + oscillation(static_cast<int>(120 - kWindow + j));
  }
  const core::QueryId pattern_query = middleware.subscribe_similarity_window(
      /*client=*/4, pattern, /*radius=*/0.12, sim::Duration::seconds(30));

  // Threshold watch: weighted average of the last 20 readings of sensor 22.
  std::vector<double> index(20, 1.0);
  std::vector<double> weights(20, 1.0 / 20.0);
  const core::QueryId watch = middleware.subscribe_inner_product(
      /*client=*/7, /*stream=*/522, index, weights,
      sim::Duration::seconds(30));

  sim.run_until(sim.now() + sim::Duration::seconds(6));

  const core::ClientQueryRecord* pattern_record =
      middleware.client_record(pattern_query);
  std::printf("pattern query matched %zu sensor(s):",
              pattern_record->matched_streams.size());
  for (const StreamId stream : pattern_record->matched_streams) {
    std::printf(" #%llu", static_cast<unsigned long long>(stream - 500));
  }
  std::printf("\n  -> expected: exactly the oscillating sensors 20-23.\n");
  int missed = 0;
  for (StreamId s = 520; s <= 523; ++s) {
    missed += pattern_record->matched_streams.contains(s) ? 0 : 1;
  }
  std::printf("  false dismissals among 20-23: %d\n\n", missed);

  const core::ClientQueryRecord* watch_record =
      middleware.client_record(watch);
  const double alert_threshold = 1.05;
  std::printf("weighted-average watch on sensor #22: %.3f -> %s\n",
              watch_record->last_inner_value,
              watch_record->last_inner_value > alert_threshold
                  ? "ALERT (threshold exceeded)"
                  : "nominal");
  std::printf("  (%llu periodic updates pushed to the client)\n",
              static_cast<unsigned long long>(watch_record->inner_updates));
  return 0;
}
