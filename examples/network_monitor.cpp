// Network monitoring with data-center churn — the paper's adaptivity claim:
// "the underlying communication stratum accommodates dynamic changes such as
// data center failures ... without the need to temporarily block the normal
// system operation."
//
// Routers stream packet-rate measurements into data centers; a continuous
// similarity query hunts for links "experiencing significant fluctuations"
// (the paper's network-monitoring example). Mid-run we crash two data
// centers and join a fresh one; Chord's stabilization repairs the ring and
// the query keeps producing answers.
#include <cmath>
#include <cstdio>
#include <memory>
#include <numbers>

#include "chord/network.hpp"
#include "common/sha1.hpp"
#include "core/system.hpp"
#include "routing/static_ring.hpp"
#include "streams/generators.hpp"

using namespace sdsi;

int main() {
  std::printf("=== network monitor under churn ===\n\n");

  constexpr std::size_t kDataCenters = 16;
  constexpr std::size_t kLinks = 16;
  constexpr std::size_t kWindow = 32;

  sim::Simulator sim;
  chord::ChordConfig chord_config;
  chord_config.successor_list_length = 4;
  chord::ChordNetwork network(sim, chord_config);
  network.bootstrap(
      routing::hash_node_ids(kDataCenters, common::IdSpace(32), 31));

  core::MiddlewareConfig config;
  config.features.window_size = kWindow;
  // k = 3 retains the flapping links' dominant third harmonic, so the
  // pattern query can discriminate them from steady links.
  config.features.num_coefficients = 3;
  config.batching.batch_size = 4;
  config.mbr_lifespan = sim::Duration::seconds(20);
  config.notify_period = sim::Duration::millis(1000);
  core::MiddlewareSystem middleware(network, config);
  middleware.start();

  // Periodic maintenance keeps the ring stabilizing in the background, as
  // real Chord deployments do.
  sim.schedule_periodic(sim.now() + sim::Duration::millis(500),
                        sim::Duration::millis(500),
                        [&network] { network.run_maintenance_rounds(1); });

  // Link monitors: steady links carry smooth load; "flapping" links 12-15
  // oscillate hard (significant packet-rate fluctuation).
  common::RngFactory rng_factory(7);
  std::vector<std::unique_ptr<streams::HostLoadGenerator>> monitors;
  for (std::size_t link = 0; link < kLinks; ++link) {
    middleware.register_stream(static_cast<NodeIndex>(link), 700 + link);
    streams::HostLoadGenerator::Params params;
    params.base_load = 10.0;
    params.noise_std = 0.05;
    params.burst_probability = 0.0;
    monitors.push_back(std::make_unique<streams::HostLoadGenerator>(
        rng_factory.make("link", link), params));
  }
  int tick = 0;
  auto feed_all = [&](int rounds) {
    for (int r = 0; r < rounds; ++r, ++tick) {
      for (std::size_t link = 0; link < kLinks; ++link) {
        if (!network.is_alive(static_cast<NodeIndex>(link))) {
          continue;  // its data center is down; the sensor buffers locally
        }
        double rate = monitors[link]->next();
        if (link >= 12) {
          rate += 4.0 * std::sin(2.0 * std::numbers::pi * 3.0 * tick / kWindow);
        }
        middleware.post_stream_value(static_cast<NodeIndex>(link), 700 + link,
                                     rate);
      }
      sim.run_until(sim.now() + sim::Duration::millis(100));
    }
  };

  feed_all(60);

  // The fluctuation pattern query, long-lived.
  std::vector<Sample> pattern(kWindow);
  for (std::size_t j = 0; j < kWindow; ++j) {
    pattern[j] =
        10.0 + 4.0 * std::sin(2.0 * std::numbers::pi * 3.0 *
                              (tick - static_cast<int>(kWindow) +
                               static_cast<int>(j)) /
                              kWindow);
  }
  const core::QueryId query = middleware.subscribe_similarity_window(
      /*client=*/5, pattern, /*radius=*/0.25, sim::Duration::seconds(120));

  feed_all(40);
  const core::ClientQueryRecord* record = middleware.client_record(query);
  std::printf("before churn: query matched %zu flapping link(s)\n",
              record->matched_streams.size());

  // Churn: two data centers die, one joins.
  std::printf("\n-- crashing data centers 9 and 10, joining a new one --\n");
  network.crash(9);
  network.crash(10);
  const NodeIndex newcomer =
      network.join(network.id_space().wrap(common::sha1_prefix64("dc:new")),
                   /*via=*/0);
  feed_all(30);
  std::printf("ring repaired: %zu alive data centers, %llu message(s) lost "
              "in flight during the repair window\n",
              network.alive_count(),
              static_cast<unsigned long long>(network.lost_messages()));

  // New streams can land on the newcomer immediately.
  middleware.register_stream(newcomer, 799);
  for (int r = 0; r < 70; ++r, ++tick) {
    middleware.post_stream_value(
        newcomer, 799,
        10.0 + 4.0 * std::sin(2.0 * std::numbers::pi * 3.0 * tick / kWindow));
    sim.run_until(sim.now() + sim::Duration::millis(100));
  }

  std::printf("\nafter churn: query matched %zu link(s):",
              record->matched_streams.size());
  for (const StreamId stream : record->matched_streams) {
    std::printf(" #%llu", static_cast<unsigned long long>(stream - 700));
  }
  std::printf(
      "\n  -> the pre-churn flapping links are still reported, and the\n"
      "     stream hosted on the JOINED data center (#99) was matched by\n"
      "     the same continuous query — no restart, no reconfiguration.\n");
  std::printf("\nresponses delivered to the client so far: %llu\n",
              static_cast<unsigned long long>(record->responses_received));
  return 0;
}
