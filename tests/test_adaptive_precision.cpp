// The Sec VI-A adaptive precision controller: rate targeting, bounds, and
// the closed-loop batcher.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "ext/adaptive_precision.hpp"

namespace sdsi::ext {
namespace {

dsp::FeatureVector fv(double re) {
  return dsp::FeatureVector({dsp::Complex{re, 0.0}});
}

AdaptivePrecisionController::Options options(double target = 1.0) {
  AdaptivePrecisionController::Options opts;
  opts.target_rate = target;
  opts.window = 8;
  return opts;
}

TEST(AdaptiveController, GrowsWhenEmittingTooOften) {
  AdaptivePrecisionController controller(options(1.0));
  const double before = controller.extent();
  // Every vector closes a batch: way over target.
  for (int i = 0; i < 8; ++i) {
    controller.observe(/*emitted=*/true);
  }
  EXPECT_GT(controller.extent(), before);
  EXPECT_EQ(controller.adaptations(), 1u);
}

TEST(AdaptiveController, ShrinksWhenIdle) {
  AdaptivePrecisionController controller(options(1.0));
  const double before = controller.extent();
  for (int i = 0; i < 8; ++i) {
    controller.observe(/*emitted=*/false);
  }
  EXPECT_LT(controller.extent(), before);
}

TEST(AdaptiveController, HoldsNearTarget) {
  AdaptivePrecisionController controller(options(1.0));
  const double before = controller.extent();
  // Exactly one emission per window: inside the dead band.
  for (int i = 0; i < 8; ++i) {
    controller.observe(i == 3);
  }
  EXPECT_DOUBLE_EQ(controller.extent(), before);
}

TEST(AdaptiveController, RespectsBounds) {
  AdaptivePrecisionController::Options opts = options(1.0);
  opts.min_extent = 0.01;
  opts.max_extent = 0.2;
  AdaptivePrecisionController controller(opts);
  for (int i = 0; i < 800; ++i) {
    controller.observe(true);
  }
  EXPECT_DOUBLE_EQ(controller.extent(), 0.2);
  for (int i = 0; i < 8000; ++i) {
    controller.observe(false);
  }
  EXPECT_DOUBLE_EQ(controller.extent(), 0.01);
}

TEST(AdaptiveController, AdaptsOnlyAtWindowBoundaries) {
  AdaptivePrecisionController controller(options(1.0));
  for (int i = 0; i < 7; ++i) {
    controller.observe(true);
    EXPECT_EQ(controller.adaptations(), 0u);
  }
  controller.observe(true);
  EXPECT_EQ(controller.adaptations(), 1u);
}

TEST(PrecisionAdaptiveBatcher, ConvergesToTargetRateOnFastStream) {
  // A fast-drifting stream: the fixed-extent batcher would emit constantly;
  // the controller widens boxes until the rate lands near target.
  PrecisionAdaptiveBatcher batcher({}, options(1.0));
  common::Pcg32 rng(5, 5);
  double walk = 0.0;
  int emissions_late = 0;
  constexpr int kTotal = 4000;
  constexpr int kTail = 1600;  // measure after convergence
  for (int i = 0; i < kTotal; ++i) {
    walk += rng.uniform(-0.02, 0.02);
    walk = std::clamp(walk, -0.95, 0.95);
    const bool emitted = batcher.push(fv(walk)).has_value();
    if (i >= kTotal - kTail) {
      emissions_late += emitted ? 1 : 0;
    }
  }
  // Target: 1 emission per 8 vectors = 200 over the tail. Allow 2x band.
  EXPECT_GT(emissions_late, 100);
  EXPECT_LT(emissions_late, 420);
}

TEST(PrecisionAdaptiveBatcher, FlatStreamGainsPrecision) {
  PrecisionAdaptiveBatcher batcher({}, options(1.0));
  for (int i = 0; i < 2000; ++i) {
    (void)batcher.push(fv(0.3));  // never moves: never emits
  }
  // Extent shrinks toward the minimum: maximal precision for free.
  EXPECT_LT(batcher.current_extent(),
            AdaptivePrecisionController(options(1.0)).extent());
}

TEST(PrecisionAdaptiveBatcher, EmittedBoxesRespectCurrentBudget) {
  PrecisionAdaptiveBatcher batcher({}, options(1.0));
  common::Pcg32 rng(9, 9);
  double walk = 0.0;
  double max_budget_seen = 0.0;
  for (int i = 0; i < 3000; ++i) {
    walk += rng.uniform(-0.01, 0.01);
    max_budget_seen = std::max(max_budget_seen, batcher.current_extent());
    if (const auto box = batcher.push(fv(walk))) {
      // A closed box never exceeds the largest budget that was in force.
      EXPECT_LE(box->routing_high() - box->routing_low(),
                max_budget_seen + 1e-12);
    }
  }
}

TEST(PrecisionAdaptiveBatcher, FasterStreamsGetWiderBoxes) {
  // The Sec VI-A promise: precision adapts per stream automatically.
  PrecisionAdaptiveBatcher slow({}, options(1.0));
  PrecisionAdaptiveBatcher fast({}, options(1.0));
  common::Pcg32 rng(11, 11);
  double w_slow = 0.0;
  double w_fast = 0.0;
  for (int i = 0; i < 4000; ++i) {
    w_slow += rng.uniform(-0.001, 0.001);
    w_fast += rng.uniform(-0.05, 0.05);
    w_fast = std::clamp(w_fast, -0.95, 0.95);
    (void)slow.push(fv(w_slow));
    (void)fast.push(fv(w_fast));
  }
  EXPECT_GT(fast.current_extent(), 2.0 * slow.current_extent());
}

}  // namespace
}  // namespace sdsi::ext
