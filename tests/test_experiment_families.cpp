// Experiment driver variants: stream families, iterative lookups, message
// loss, and the adaptive-precision flag — everything the CLI exposes must
// run and stay deterministic.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace sdsi::core {
namespace {

ExperimentConfig quick(std::size_t nodes, std::uint64_t seed = 42) {
  ExperimentConfig config;
  config.num_nodes = nodes;
  config.seed = seed;
  config.warmup = sim::Duration::seconds(60);
  config.measure = sim::Duration::seconds(15);
  return config;
}

class FamilyRuns : public ::testing::TestWithParam<StreamFamily> {};

TEST_P(FamilyRuns, ProducesTrafficAndBalancedLoad) {
  ExperimentConfig config = quick(30);
  config.stream_family = GetParam();
  Experiment experiment(config);
  experiment.run();
  const LoadReport load = experiment.load_report();
  EXPECT_GT(load.per_component[static_cast<std::size_t>(
                LoadComponent::kMbrSource)],
            0.5);
  const QualityReport quality = experiment.quality_report();
  EXPECT_GT(quality.queries_posed, 10u);
  EXPECT_GT(quality.responses_received, 0u);
}

TEST_P(FamilyRuns, Deterministic) {
  ExperimentConfig config = quick(15, 9);
  config.stream_family = GetParam();
  Experiment a(config);
  Experiment b(config);
  a.run();
  b.run();
  EXPECT_EQ(a.simulator().executed_events(), b.simulator().executed_events());
  EXPECT_EQ(a.load_report().per_node_total, b.load_report().per_node_total);
}

INSTANTIATE_TEST_SUITE_P(Families, FamilyRuns,
                         ::testing::Values(StreamFamily::kRandomWalk,
                                           StreamFamily::kStockMarket,
                                           StreamFamily::kHostLoad));

TEST(ExperimentVariants, IterativeChordMatchesRecursiveResults) {
  ExperimentConfig recursive = quick(25);
  ExperimentConfig iterative = quick(25);
  iterative.chord_lookup = chord::LookupStyle::kIterative;
  Experiment a(recursive);
  Experiment b(iterative);
  a.run();
  b.run();
  // Functional outcomes agree (timing-shifted expiry may wiggle slightly);
  // transmission counts roughly double.
  const auto qa = a.quality_report();
  const auto qb = b.quality_report();
  EXPECT_NEAR(static_cast<double>(qb.matches_reported),
              static_cast<double>(qa.matches_reported),
              0.15 * static_cast<double>(qa.matches_reported) + 5.0);
  EXPECT_GT(b.hops_report().mbr, 1.5 * a.hops_report().mbr);
}

TEST(ExperimentVariants, MessageLossDegradesGracefully) {
  ExperimentConfig lossy = quick(25);
  lossy.message_loss = 0.05;
  Experiment experiment(lossy);
  experiment.run();
  EXPECT_GT(experiment.routing_system().dropped_messages(), 0u);
  // The system keeps producing answers.
  EXPECT_GT(experiment.quality_report().responses_received, 0u);
}

TEST(ExperimentVariants, AdaptivePrecisionCutsMbrRate) {
  ExperimentConfig fixed = quick(25);
  ExperimentConfig adaptive = quick(25);
  AdaptivePrecisionController::Options controller;
  controller.target_rate = 0.5;
  adaptive.adaptive_precision = controller;
  Experiment a(fixed);
  Experiment b(adaptive);
  a.run();
  b.run();
  const auto rate = [](const Experiment& e) {
    return e.load_report().per_component[static_cast<std::size_t>(
        LoadComponent::kMbrSource)];
  };
  EXPECT_LT(rate(b), 0.7 * rate(a));
}

TEST(ExperimentVariants, HaarSynopsisRunsEndToEnd) {
  ExperimentConfig config = quick(20);
  config.features.synopsis = dsp::Synopsis::kHaar;  // W=256 is a power of 2
  Experiment experiment(config);
  experiment.run();
  EXPECT_GT(experiment.quality_report().responses_received, 0u);
}

TEST(ExperimentVariants, TwoStreamsPerNode) {
  // Beyond the paper's 1-stream-per-node setup: a node can source several.
  ExperimentConfig config = quick(10);
  Experiment experiment(config);
  experiment.run();
  MiddlewareSystem& system = experiment.system();
  // Add a second stream on node 0 post-hoc and drive it.
  system.register_stream(0, 9999);
  for (int i = 0; i < 600; ++i) {
    system.post_stream_value(0, 9999, static_cast<Sample>(i));
  }
  EXPECT_EQ(experiment.system().node(0).streams.size(), 2u);
  EXPECT_GT(experiment.system().node(0).streams.at(9999).batch_seq, 0u);
}

}  // namespace
}  // namespace sdsi::core
