// The Haar wavelet synopsis: transform correctness, orthonormality, the
// lower-bounding property, and end-to-end use as a drop-in replacement for
// the DFT features.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/system.hpp"
#include "dsp/features.hpp"
#include "dsp/haar.hpp"
#include "routing/static_ring.hpp"
#include "streams/summarizer.hpp"

namespace sdsi::dsp {
namespace {

std::vector<Sample> random_window(std::size_t n, std::uint64_t seed) {
  common::Pcg32 rng(seed, 21);
  std::vector<Sample> window(n);
  for (Sample& x : window) {
    x = rng.uniform(-2.0, 2.0);
  }
  return window;
}

FeatureConfig haar_config(std::size_t w, std::size_t k,
                          Normalization norm = Normalization::kZNormalize) {
  FeatureConfig cfg;
  cfg.window_size = w;
  cfg.num_coefficients = k;
  cfg.normalization = norm;
  cfg.synopsis = Synopsis::kHaar;
  return cfg;
}

TEST(Haar, TwoPointTransform) {
  const std::vector<Sample> signal{3.0, 1.0};
  const auto coeffs = haar_transform(signal);
  const double s = std::sqrt(2.0);
  EXPECT_NEAR(coeffs[0], 4.0 / s, 1e-12);  // (a+b)/sqrt(2)
  EXPECT_NEAR(coeffs[1], 2.0 / s, 1e-12);  // (a-b)/sqrt(2)
}

TEST(Haar, ConstantSignalIsPureScaling) {
  const std::vector<Sample> signal(16, 2.5);
  const auto coeffs = haar_transform(signal);
  EXPECT_NEAR(coeffs[0], 2.5 * 4.0, 1e-12);  // mean * sqrt(N)
  for (std::size_t i = 1; i < coeffs.size(); ++i) {
    EXPECT_NEAR(coeffs[i], 0.0, 1e-12) << "i=" << i;
  }
}

TEST(Haar, StepFunctionIsCompact) {
  // A half-window step concentrates all detail energy in the coarsest
  // detail coefficient (index 1) — Haar's sweet spot.
  std::vector<Sample> signal(8, 1.0);
  for (std::size_t i = 4; i < 8; ++i) {
    signal[i] = -1.0;
  }
  const auto coeffs = haar_transform(signal);
  EXPECT_NEAR(coeffs[0], 0.0, 1e-12);
  EXPECT_NEAR(std::abs(coeffs[1]), std::sqrt(8.0), 1e-12);
  for (std::size_t i = 2; i < 8; ++i) {
    EXPECT_NEAR(coeffs[i], 0.0, 1e-12);
  }
}

class HaarSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HaarSizes, EnergyPreserved) {
  const auto signal = random_window(GetParam(), GetParam());
  const auto coeffs = haar_transform(signal);
  double signal_energy = 0.0;
  double coeff_energy = 0.0;
  for (std::size_t i = 0; i < signal.size(); ++i) {
    signal_energy += signal[i] * signal[i];
    coeff_energy += coeffs[i] * coeffs[i];
  }
  EXPECT_NEAR(signal_energy, coeff_energy, 1e-9);
}

TEST_P(HaarSizes, RoundTrips) {
  const auto signal = random_window(GetParam(), GetParam() + 7);
  const auto back = inverse_haar(haar_transform(signal));
  for (std::size_t i = 0; i < signal.size(); ++i) {
    EXPECT_NEAR(back[i], signal[i], 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, HaarSizes,
                         ::testing::Values(2, 4, 8, 16, 64, 256));

TEST(Haar, PrefixReconstructionErrorIsDiscardedEnergy) {
  const auto signal = random_window(32, 9);
  const auto coeffs = haar_transform(signal);
  const auto approx = inverse_haar_prefix(
      std::span<const double>(coeffs).subspan(0, 8), 32);
  double err = 0.0;
  for (std::size_t i = 0; i < 32; ++i) {
    err += (approx[i] - signal[i]) * (approx[i] - signal[i]);
  }
  double discarded = 0.0;
  for (std::size_t i = 8; i < 32; ++i) {
    discarded += coeffs[i] * coeffs[i];
  }
  EXPECT_NEAR(err, discarded, 1e-9);
}

TEST(HaarFeatures, ConfigValidationRequiresPowerOfTwo) {
  FeatureConfig cfg = haar_config(32, 2);
  cfg.validate();  // fine
  cfg.window_size = 48;
  EXPECT_DEATH(cfg.validate(), "");
}

TEST(HaarFeatures, CoordinatesBounded) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto fv =
        extract_features(random_window(32, seed), haar_config(32, 3));
    EXPECT_LE(std::abs(fv.routing_coordinate()), 1.0 + 1e-12);
  }
}

class HaarLowerBound : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HaarLowerBound, FeatureDistanceLowerBoundsWindowDistance) {
  const FeatureConfig cfg = haar_config(32, 4);
  const auto wa = random_window(32, GetParam());
  const auto wb = random_window(32, GetParam() + 900);
  const double true_distance =
      euclidean_distance(z_normalize(wa), z_normalize(wb));
  const auto fa = extract_features(wa, cfg);
  const auto fb = extract_features(wb, cfg);
  EXPECT_LE(fa.distance(fb), true_distance + 1e-9);
  EXPECT_LE(symmetric_lower_bound(fa, fb, cfg), true_distance + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HaarLowerBound,
                         ::testing::Range<std::uint64_t>(0, 20));

TEST(HaarFeatures, ReconstructMatchesPrefixInverse) {
  const auto window = random_window(16, 3);
  const FeatureConfig cfg = haar_config(16, 3);
  const auto fv = extract_features(window, cfg);
  const auto approx = reconstruct(fv, cfg);
  // Compare against the manual pipeline.
  const auto normalized = z_normalize(window);
  auto coeffs = haar_transform(normalized);
  for (std::size_t i = 4; i < coeffs.size(); ++i) {
    coeffs[i] = 0.0;  // first = 1, k = 3 -> keep [1, 4); index 0 is 0 anyway
  }
  const auto expected = inverse_haar(coeffs);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(approx[i], expected[i], 1e-10);
  }
}

TEST(HaarSummarizer, MatchesBatchExtraction) {
  const FeatureConfig cfg = haar_config(32, 3);
  streams::StreamSummarizer summarizer(cfg);
  common::Pcg32 rng(4, 4);
  Sample value = 0.0;
  for (int i = 0; i < 100; ++i) {
    value += rng.uniform(-1.0, 1.0);
    summarizer.push(value);
  }
  const auto incremental = summarizer.features();
  ASSERT_TRUE(incremental.has_value());
  const auto batch = extract_features(summarizer.raw_window(), cfg);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_NEAR(std::abs((*incremental)[i] - batch[i]), 0.0, 1e-9);
  }
}

TEST(HaarSummarizer, UnitNormalizationMode) {
  const FeatureConfig cfg =
      haar_config(16, 2, Normalization::kUnitNormalize);
  streams::StreamSummarizer summarizer(cfg);
  common::Pcg32 rng(5, 5);
  for (int i = 0; i < 40; ++i) {
    summarizer.push(1.0 + rng.uniform(0.0, 1.0));
  }
  const auto incremental = summarizer.features();
  ASSERT_TRUE(incremental.has_value());
  const auto batch = extract_features(summarizer.raw_window(), cfg);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_NEAR(std::abs((*incremental)[i] - batch[i]), 0.0, 1e-9);
  }
}

TEST(HaarEnergyCompaction, LevelShiftsFavorHaarOverFourier) {
  // A piecewise-constant (level-shift) signal: Haar captures nearly all
  // energy in a few coefficients where Fourier smears it — the reason to
  // offer both synopses.
  std::vector<Sample> signal(32);
  for (std::size_t i = 0; i < 32; ++i) {
    signal[i] = i < 16 ? 1.0 : (i < 24 ? 3.0 : -1.0);
  }
  const auto z = z_normalize(signal);
  const auto haar = haar_transform(z);
  const auto fourier = naive_dft(z);
  double haar_energy = 0.0;
  for (std::size_t i = 1; i <= 3; ++i) {
    haar_energy += haar[i] * haar[i];
  }
  double fourier_energy = 0.0;
  for (std::size_t i = 1; i <= 3; ++i) {
    fourier_energy += 2.0 * std::norm(fourier[i]);  // conjugate mirror
  }
  EXPECT_GT(haar_energy, 0.95);          // near-total (window has norm 1)
  EXPECT_GT(haar_energy, fourier_energy);
}

TEST(HaarEndToEnd, MiddlewareRunsOnHaarSynopsis) {
  // The distributed index is synopsis-agnostic: the whole middleware stack
  // works unchanged with Haar features.
  sim::Simulator sim;
  routing::StaticRing ring(
      sim, common::IdSpace(16),
      routing::hash_node_ids(6, common::IdSpace(16), 61));
  core::MiddlewareConfig config;
  config.features = haar_config(16, 3);
  config.batching.batch_size = 3;
  config.notify_period = sim::Duration::millis(500);
  core::MiddlewareSystem middleware(ring, config);
  middleware.start();

  auto feed = [&](NodeIndex node, StreamId stream, double gamma) {
    middleware.register_stream(node, stream);
    double value = 1.0;
    for (int i = 0; i < 50; ++i) {
      value *= gamma;
      middleware.post_stream_value(node, stream, value);
    }
  };
  feed(0, 1, 1.10);
  feed(1, 2, 1.60);
  sim.run_until(sim.now() + sim::Duration::seconds(2));

  std::vector<Sample> probe(16);
  double value = 1.0;
  for (Sample& x : probe) {
    value *= 1.10;
    x = value;
  }
  const core::QueryId id = middleware.subscribe_similarity_window(
      3, probe, 0.10, sim::Duration::seconds(30));
  sim.run_until(sim.now() + sim::Duration::seconds(5));
  const core::ClientQueryRecord* record = middleware.client_record(id);
  EXPECT_TRUE(record->matched_streams.contains(1));
  EXPECT_FALSE(record->matched_streams.contains(2));
}

}  // namespace
}  // namespace sdsi::dsp
