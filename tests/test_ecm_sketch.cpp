// ECM-sketch component invariants (streams/ecm_sketch.hpp): the
// exponential-histogram error bound of Datar et al., the Count-Min
// overestimate bound of the sketch-of-EH composition (Papapetrou et al.,
// arXiv:1207.0139), window expiry, and determinism of the derived feature
// vectors. These pin the guarantees docs/STRATEGIES.md cites for the "ecm"
// strategy.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "dsp/features.hpp"
#include "streams/ecm_sketch.hpp"

namespace sdsi::streams {
namespace {

TEST(ExpHistogram, ExactWhileFewBuckets) {
  // With at most k+1 buckets of size 1, nothing has merged: the estimate is
  // exact for any in-window query.
  ExpHistogram eh(8);
  for (std::uint64_t t = 1; t <= 9; ++t) {
    eh.add(t);
  }
  EXPECT_EQ(eh.estimate(9, 100), 9u);
}

TEST(ExpHistogram, RelativeErrorBoundHolds) {
  // Datar et al.: with k buckets allowed per size, the estimate's error is
  // at most half the oldest bucket, i.e. a relative error <= 1/(2k) against
  // the true in-window count (+1 slack for the half-count rounding).
  const std::size_t k = 8;
  const std::uint64_t window = 512;
  common::Pcg32 rng(123u, 0x5eedu);
  ExpHistogram eh(k);
  std::vector<std::uint64_t> arrivals;
  std::uint64_t now = 0;
  for (int i = 0; i < 5000; ++i) {
    now += 1 + rng.bounded(3);
    eh.add(now);
    arrivals.push_back(now);
    if (i % 97 != 0) {
      continue;
    }
    std::uint64_t exact = 0;
    for (const std::uint64_t t : arrivals) {
      if (t + window > now) {
        exact++;
      }
    }
    const double est = static_cast<double>(eh.estimate(now, window));
    const double bound =
        static_cast<double>(exact) / (2.0 * static_cast<double>(k)) + 1.0;
    EXPECT_NEAR(est, static_cast<double>(exact), bound)
        << "at t=" << now << " exact=" << exact;
  }
}

TEST(ExpHistogram, FullyExpiredWindowEstimatesZero) {
  ExpHistogram eh(4);
  for (std::uint64_t t = 1; t <= 100; ++t) {
    eh.add(t);
  }
  // Query far enough in the future that every bucket has expired.
  EXPECT_EQ(eh.estimate(100 + 1000, 10), 0u);
}

TEST(EcmSketch, NeverUnderestimatesBeyondEhError) {
  // Count-Min never undercounts: collisions only add. The only downward
  // error is the per-cell EH approximation, bounded by half the oldest
  // bucket of that cell.
  EcmSketch::Options opt;
  opt.window = 256;
  opt.width = 32;
  opt.depth = 3;
  opt.eh_k = 8;
  EcmSketch sketch(opt);
  common::Pcg32 rng(7u, 0x5eedu);
  std::vector<std::vector<std::uint64_t>> arrivals(8);
  std::uint64_t now = 0;
  for (int i = 0; i < 4000; ++i) {
    ++now;
    const std::uint64_t level = rng.bounded(8);
    sketch.add(level, now);
    arrivals[level].push_back(now);
  }
  for (std::uint64_t level = 0; level < 8; ++level) {
    std::uint64_t exact = 0;
    for (const std::uint64_t t : arrivals[level]) {
      if (t + opt.window > now) {
        exact++;
      }
    }
    const double est = static_cast<double>(sketch.estimate(level, now));
    // Lower side: EH error only (<= exact/(2k) + 1). Upper side: CM
    // collision mass, at most the whole in-window stream in the worst case;
    // with width 32 >> 8 levels and depth 3 it stays near e/width * W.
    const double eh_slack =
        static_cast<double>(exact) / (2.0 * 8.0) + 1.0;
    EXPECT_GE(est, static_cast<double>(exact) - eh_slack) << level;
    const double cm_slack = (2.71828 / 32.0) * 256.0 + eh_slack + 1.0;
    EXPECT_LE(est, static_cast<double>(exact) + cm_slack) << level;
  }
}

TEST(EcmSketch, DistinctLevelsLandInDistinctCellsMostRows) {
  // Sanity on the salted row hashing: with 8 levels into 32 cells, at least
  // one of the 3 rows must separate any fixed pair of levels (overwhelming
  // probability under the fixed default seed; this is a determinism pin,
  // not a probabilistic claim).
  EcmSketch::Options opt;
  EcmSketch sketch(opt);
  std::uint64_t now = 0;
  for (int i = 0; i < 200; ++i) {
    sketch.add(0, ++now);
  }
  // Level 1 was never added: its estimate must be far below level 0's.
  EXPECT_LT(sketch.estimate(1, now), sketch.estimate(0, now));
}

TEST(EcmStreamSummarizer, ReadyExactlyAtWindowFill) {
  EcmStreamSummarizer::Options opt;
  opt.window = 64;
  EcmStreamSummarizer summ(opt);
  for (int i = 0; i < 63; ++i) {
    summ.push(static_cast<double>(i % 7));
    EXPECT_FALSE(summ.ready());
  }
  EXPECT_EQ(summ.samples_until_ready(), 1u);
  summ.push(3.0);
  EXPECT_TRUE(summ.ready());
  EXPECT_EQ(summ.samples_until_ready(), 0u);
}

TEST(EcmStreamSummarizer, FeaturesAreUnitNormAndDeterministic) {
  EcmStreamSummarizer::Options opt;
  opt.window = 64;
  opt.bins = 8;
  EcmStreamSummarizer a(opt);
  EcmStreamSummarizer b(opt);
  common::Pcg32 rng(99u, 0x5eedu);
  for (int i = 0; i < 300; ++i) {
    const double x = rng.normal();
    a.push(x);
    b.push(x);
  }
  dsp::FeatureVector fa;
  dsp::FeatureVector fb;
  ASSERT_TRUE(a.features_into(fa));
  ASSERT_TRUE(b.features_into(fb));
  EXPECT_TRUE(fa == fb);
  double norm_sq = 0.0;
  for (const auto& c : fa.coefficients()) {
    norm_sq += std::norm(c);
  }
  EXPECT_NEAR(norm_sq, 1.0, 1e-9);
  // Hellinger embedding: every coordinate is a sqrt of a frequency, so all
  // components are non-negative — the [0, 1] corner of the hypersphere.
  for (const auto& c : fa.coefficients()) {
    EXPECT_GE(c.real(), 0.0);
    EXPECT_GE(c.imag(), 0.0);
  }
}

TEST(EcmStreamSummarizer, CopyWindowMatchesPushedTail) {
  EcmStreamSummarizer::Options opt;
  opt.window = 16;
  EcmStreamSummarizer summ(opt);
  for (int i = 0; i < 40; ++i) {
    summ.push(static_cast<double>(i));
  }
  std::vector<double> window;
  summ.copy_window(window);
  ASSERT_EQ(window.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(window[static_cast<std::size_t>(i)],
                     static_cast<double>(24 + i));
  }
}

}  // namespace
}  // namespace sdsi::streams
