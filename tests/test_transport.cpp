// SocketTransport plumbing tests: real localhost TCP between in-process
// endpoints — delivery through the v1 codec, queueing while the peer is
// still unreachable, reconnect-with-backoff after a peer restart, and
// rejection accounting for garbage bytes.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <memory>
#include <vector>

#include "net/socket_transport.hpp"
#include "net/wire.hpp"
#include "wire_samples.hpp"

namespace sdsi::net {
namespace {

using Clock = std::chrono::steady_clock;

/// Drives a set of transports until `done` or the deadline.
bool pump(std::vector<SocketTransport*> transports,
          const std::function<bool()>& done, int deadline_ms = 5000) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
  while (!done()) {
    if (Clock::now() > deadline) {
      return false;
    }
    for (SocketTransport* transport : transports) {
      transport->poll(5);
    }
  }
  return true;
}

TEST(SocketTransport, DeliversFramesBetweenEndpoints) {
  SocketTransport a(0);
  SocketTransport b(0);
  std::vector<routing::Message> at_b;
  b.set_deliver([&](routing::Message&& msg) { at_b.push_back(std::move(msg)); });
  a.set_peer(1, "127.0.0.1", b.listen_port());

  const routing::Message original =
      testing::sample_message(routing::MsgKind::kMbrUpdate);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(a.send(1, original));
  }
  ASSERT_TRUE(pump({&a, &b}, [&] { return at_b.size() == 10; }));

  // What arrived is what was sent, to the byte.
  const std::vector<std::uint8_t> wire = encode_frame(original);
  for (const routing::Message& msg : at_b) {
    EXPECT_EQ(encode_frame(msg), wire);
  }
  EXPECT_GE(a.stats().frames_sent, 10u);
  EXPECT_GE(b.stats().frames_received, 10u);
}

TEST(SocketTransport, UnknownPeerFailsFast) {
  SocketTransport a(0);
  EXPECT_FALSE(
      a.send(9, testing::sample_message(routing::MsgKind::kMbrAck)));
}

TEST(SocketTransport, QueuesWhilePeerIsDownThenFlushesOnReconnect) {
  SocketTransport a(0);
  std::uint16_t port = 0;
  {
    // Reserve a real ephemeral port, then shut the listener down.
    SocketTransport ghost(0);
    port = ghost.listen_port();
  }
  a.set_peer(1, "127.0.0.1", port);

  // Sends while the peer is down queue in the outbox (send() still true).
  const routing::Message msg =
      testing::sample_message(routing::MsgKind::kResponse);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(a.send(1, msg));
  }
  // Let a few connection attempts fail so backoff is actually exercised.
  const auto spin_until = Clock::now() + std::chrono::milliseconds(150);
  while (Clock::now() < spin_until) {
    a.poll(5);
  }
  EXPECT_FALSE(a.connected(1));

  // Peer comes up on the same port: the queued frames must all arrive.
  SocketTransport b(port);
  std::vector<routing::Message> at_b;
  b.set_deliver([&](routing::Message&& m) { at_b.push_back(std::move(m)); });
  ASSERT_TRUE(pump({&a, &b}, [&] { return at_b.size() == 5; }));
  EXPECT_TRUE(a.connected(1));
  EXPECT_GE(a.stats().reconnect_attempts, 1u);
}

TEST(SocketTransport, SurvivesPeerRestartMidStream) {
  SocketTransport a(0);
  std::uint16_t port = 0;
  std::vector<routing::Message> received;
  const auto sink = [&](routing::Message&& m) {
    received.push_back(std::move(m));
  };
  auto b = std::make_unique<SocketTransport>(std::uint16_t{0});
  port = b->listen_port();
  b->set_deliver(sink);
  a.set_peer(1, "127.0.0.1", port);

  const routing::Message msg =
      testing::sample_message(routing::MsgKind::kLocationPut);
  EXPECT_TRUE(a.send(1, msg));
  {
    SocketTransport* b_raw = b.get();
    ASSERT_TRUE(pump({&a, b_raw}, [&] { return received.size() == 1; }));
  }

  // Restart the peer on the same port; the next sends reconnect and land.
  b.reset();
  b = std::make_unique<SocketTransport>(port);
  b->set_deliver(sink);
  SocketTransport* b_raw = b.get();
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (received.size() < 2 && Clock::now() < deadline) {
    // Keep nudging: the first send after the restart may land on the dead
    // connection and only fail once the kernel reports it.
    EXPECT_TRUE(a.send(1, msg));
    a.poll(5);
    b_raw->poll(5);
  }
  EXPECT_GE(received.size(), 2u);
}

TEST(SocketTransport, GarbageBytesDropTheConnectionNotTheProcess) {
  SocketTransport b(0);
  std::vector<routing::Message> at_b;
  b.set_deliver([&](routing::Message&& m) { at_b.push_back(std::move(m)); });

  // A raw TCP client speaking garbage: the receiver must count the reject
  // and close that connection — and keep serving well-formed peers.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(b.listen_port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const char garbage[] = "this is definitely not an SDSI frame, not even "
                         "close; padding padding padding padding padding";
  ASSERT_GT(::write(fd, garbage, sizeof(garbage)), 0);
  pump({&b}, [&] { return b.stats().decode_rejects > 0; });
  EXPECT_GE(b.stats().decode_rejects, 1u);
  ::close(fd);

  // A well-formed peer still gets through afterwards.
  SocketTransport a(0);
  a.set_peer(1, "127.0.0.1", b.listen_port());
  const routing::Message good =
      testing::sample_message(routing::MsgKind::kMbrAck);
  EXPECT_TRUE(a.send(1, good));
  ASSERT_TRUE(pump({&a, &b}, [&] { return at_b.size() == 1; }));
}

}  // namespace
}  // namespace sdsi::net
