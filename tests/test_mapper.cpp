// Eq. 6 content-to-key mapping and the h2 stream-id hash.
#include <gtest/gtest.h>

#include "core/mapper.hpp"

namespace sdsi::core {
namespace {

dsp::FeatureVector fv(double re, double im = 0.0) {
  return dsp::FeatureVector({dsp::Complex{re, im}});
}

TEST(SummaryMapper, PaperAnchorsAtM5) {
  // "X1 = -1, 0 and +1 map to 0, 2^(m-1), and 2^m - 1 respectively."
  const SummaryMapper mapper{common::IdSpace(5)};
  EXPECT_EQ(mapper.key_for_coordinate(-1.0), 0u);
  EXPECT_EQ(mapper.key_for_coordinate(0.0), 16u);
  EXPECT_EQ(mapper.key_for_coordinate(1.0), 31u);
}

TEST(SummaryMapper, PaperWorkedExample) {
  // "The feature vector X = [0.40 0.09] maps to key 22 on the m=5 ring."
  const SummaryMapper mapper{common::IdSpace(5)};
  EXPECT_EQ(mapper.key_for_coordinate(0.40), 22u);
  EXPECT_EQ(mapper.key_for(fv(0.40, 0.09)), 22u);
}

TEST(SummaryMapper, Figure3aQueryRange) {
  // Query X = [-0.08, 0.12], r = 0.29: high boundary 0.21 -> K19, low
  // boundary -0.37 -> K10 (m = 5).
  const SummaryMapper mapper{common::IdSpace(5)};
  const auto [lo, hi] = mapper.query_range(fv(-0.08, 0.12), 0.29);
  EXPECT_EQ(lo, 10u);
  EXPECT_EQ(hi, 19u);
}

TEST(SummaryMapper, Figure4MbrRange) {
  // MBR low (0.09, 0.12), high (0.21, 0.40): keys K19 and K22 wait — in the
  // figure the low corner 0.09 maps to K17 region and high 0.21 to K19; the
  // figure's annotations place the range across N20's arc. We check the
  // mapping is monotone and matches Eq. 6 arithmetic exactly.
  const SummaryMapper mapper{common::IdSpace(5)};
  const dsp::Mbr box({0.09, 0.12}, {0.21, 0.40});
  const auto [lo, hi] = mapper.mbr_range(box);
  EXPECT_EQ(lo, mapper.key_for_coordinate(0.09));
  EXPECT_EQ(hi, mapper.key_for_coordinate(0.21));
  EXPECT_LE(lo, hi);
}

TEST(SummaryMapper, ClampsOutOfRangeCoordinates) {
  const SummaryMapper mapper{common::IdSpace(5)};
  EXPECT_EQ(mapper.key_for_coordinate(-5.0), 0u);
  EXPECT_EQ(mapper.key_for_coordinate(5.0), 31u);
}

class MapperMonotonicity : public ::testing::TestWithParam<unsigned> {};

TEST_P(MapperMonotonicity, Eq6IsMonotoneAndOnto) {
  const SummaryMapper mapper{common::IdSpace(GetParam())};
  Key prev = 0;
  for (int i = 0; i <= 1000; ++i) {
    const double x = -1.0 + 2.0 * i / 1000.0;
    const Key key = mapper.key_for_coordinate(x);
    EXPECT_GE(key, prev) << "x=" << x;
    EXPECT_LE(key, mapper.space().mask());
    prev = key;
  }
  EXPECT_EQ(mapper.key_for_coordinate(-1.0), 0u);
  EXPECT_EQ(mapper.key_for_coordinate(1.0), mapper.space().mask());
}

INSTANTIATE_TEST_SUITE_P(Widths, MapperMonotonicity,
                         ::testing::Values(1, 5, 8, 16, 32, 52));

TEST(SummaryMapper, KeyRangeOrdersEndpoints) {
  const SummaryMapper mapper{common::IdSpace(32)};
  const auto [lo, hi] = mapper.key_range(-0.3, 0.3);
  EXPECT_LT(lo, hi);
  const auto [same_lo, same_hi] = mapper.key_range(0.1, 0.1);
  EXPECT_EQ(same_lo, same_hi);
}

TEST(SummaryMapper, SimilarValuesMapToSameOrNeighborKeys) {
  // The core locality claim of Sec IV-B.
  const SummaryMapper mapper{common::IdSpace(5)};
  const Key a = mapper.key_for(fv(0.40));
  const Key b = mapper.key_for(fv(0.42));
  EXPECT_LE(b - a, 1u);
}

TEST(SummaryMapper, StreamKeyIsDeterministicAndSpread) {
  const SummaryMapper mapper{common::IdSpace(32)};
  EXPECT_EQ(mapper.key_for_stream(42), mapper.key_for_stream(42));
  // Different streams hash apart (location load spreads).
  int collisions = 0;
  for (StreamId s = 0; s < 200; ++s) {
    if (mapper.key_for_stream(s) == mapper.key_for_stream(s + 1)) {
      ++collisions;
    }
  }
  EXPECT_EQ(collisions, 0);
}

TEST(SummaryMapper, QueryRangeClampsAtSphereEdge) {
  const SummaryMapper mapper{common::IdSpace(8)};
  const auto [lo, hi] = mapper.query_range(fv(0.95), 0.2);
  EXPECT_EQ(hi, mapper.space().mask());  // clamped at +1
  EXPECT_LT(lo, hi);
}

}  // namespace
}  // namespace sdsi::core
