// Per-node index storage: lifespans, matching, and per-node deduplication.
#include <gtest/gtest.h>

#include "core/index_store.hpp"

namespace sdsi::core {
namespace {

dsp::FeatureVector fv(double re, double im = 0.0) {
  return dsp::FeatureVector({dsp::Complex{re, im}});
}

sim::SimTime at_ms(std::int64_t ms) {
  return sim::SimTime::zero() + sim::Duration::millis(ms);
}

IndexStore::StoredMbr mbr_entry(StreamId stream, double lo, double hi,
                                std::int64_t expires_ms) {
  IndexStore::StoredMbr entry;
  entry.stream = stream;
  entry.source = 0;
  entry.mbr = dsp::Mbr({lo, 0.0}, {hi, 0.0});
  entry.expires = at_ms(expires_ms);
  return entry;
}

std::shared_ptr<const SimilarityQuery> query(QueryId id, double center,
                                             double radius) {
  SimilarityQuery q;
  q.id = id;
  q.client = 1;
  q.features = fv(center);
  q.radius = radius;
  return std::make_shared<const SimilarityQuery>(std::move(q));
}

TEST(IndexStore, EmptyStoreMatchesNothing) {
  IndexStore store;
  EXPECT_TRUE(store.match(at_ms(0)).empty());
  EXPECT_EQ(store.mbr_count(), 0u);
  EXPECT_EQ(store.subscription_count(), 0u);
}

TEST(IndexStore, MatchWithinRadius) {
  IndexStore store;
  store.add_mbr(mbr_entry(7, 0.30, 0.35, 10000));
  store.add_subscription(query(1, 0.32, 0.1), 0, at_ms(10000));
  const auto matches = store.match(at_ms(100));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].query, 1u);
  EXPECT_EQ(matches[0].stream, 7u);
  EXPECT_DOUBLE_EQ(matches[0].bound_distance, 0.0);  // center inside the box
}

TEST(IndexStore, NoMatchOutsideRadius) {
  IndexStore store;
  store.add_mbr(mbr_entry(7, 0.80, 0.85, 10000));
  store.add_subscription(query(1, 0.32, 0.1), 0, at_ms(10000));
  EXPECT_TRUE(store.match(at_ms(100)).empty());
}

TEST(IndexStore, MatchReportsEachStreamOnce) {
  IndexStore store;
  store.add_subscription(query(1, 0.3, 0.1), 0, at_ms(10000));
  store.add_mbr(mbr_entry(7, 0.29, 0.31, 10000));
  EXPECT_EQ(store.match(at_ms(100)).size(), 1u);
  // A later MBR of the same stream must not re-report.
  store.add_mbr(mbr_entry(7, 0.30, 0.32, 10000));
  EXPECT_TRUE(store.match(at_ms(200)).empty());
  // But a different stream in range does.
  store.add_mbr(mbr_entry(8, 0.30, 0.32, 10000));
  EXPECT_EQ(store.match(at_ms(300)).size(), 1u);
}

TEST(IndexStore, SeparateQueriesTrackSeparateReportedSets) {
  IndexStore store;
  store.add_subscription(query(1, 0.3, 0.1), 0, at_ms(10000));
  store.add_subscription(query(2, 0.3, 0.2), 0, at_ms(10000));
  store.add_mbr(mbr_entry(7, 0.29, 0.31, 10000));
  EXPECT_EQ(store.match(at_ms(100)).size(), 2u);
}

TEST(IndexStore, ExpiredMbrsDropAndStopMatching) {
  IndexStore store;
  store.add_mbr(mbr_entry(7, 0.3, 0.3, 5000));
  store.add_subscription(query(1, 0.3, 0.1), 0, at_ms(100000));
  store.expire(at_ms(5000));  // expiry is inclusive
  EXPECT_EQ(store.mbr_count(), 0u);
  EXPECT_TRUE(store.match(at_ms(6000)).empty());
}

TEST(IndexStore, ExpiredSubscriptionsDrop) {
  IndexStore store;
  store.add_subscription(query(1, 0.3, 0.1), 0, at_ms(2000));
  store.expire(at_ms(1999));
  EXPECT_EQ(store.subscription_count(), 1u);
  store.expire(at_ms(2000));
  EXPECT_EQ(store.subscription_count(), 0u);
}

TEST(IndexStore, MatchSkipsExpiredEvenBeforeSweep) {
  IndexStore store;
  store.add_mbr(mbr_entry(7, 0.3, 0.3, 1000));
  store.add_subscription(query(1, 0.3, 0.1), 0, at_ms(10000));
  // No expire() call; match at t=2000 must still ignore the stale MBR.
  EXPECT_TRUE(store.match(at_ms(2000)).empty());
}

TEST(IndexStore, ResubscribeRefreshesLifespanKeepsReported) {
  IndexStore store;
  auto q = query(1, 0.3, 0.1);
  store.add_subscription(q, 5, at_ms(1000));
  store.add_mbr(mbr_entry(7, 0.3, 0.3, 100000));
  EXPECT_EQ(store.match(at_ms(10)).size(), 1u);
  // Range re-replication of the same query: lifespan refreshes, the
  // reported set survives (stream 7 is not re-announced).
  store.add_subscription(q, 5, at_ms(50000));
  EXPECT_EQ(store.subscription_count(), 1u);
  EXPECT_TRUE(store.match(at_ms(2000)).empty());
  const auto* sub = store.find_subscription(1);
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->expires, at_ms(50000));
}

TEST(IndexStore, FindSubscriptionMissingReturnsNull) {
  IndexStore store;
  EXPECT_EQ(store.find_subscription(99), nullptr);
}

TEST(IndexStore, BoundDistanceIsBoxDistance) {
  IndexStore store;
  store.add_mbr(mbr_entry(7, 0.50, 0.60, 10000));
  store.add_subscription(query(1, 0.45, 0.1), 0, at_ms(10000));
  const auto matches = store.match(at_ms(100));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_NEAR(matches[0].bound_distance, 0.05, 1e-12);
}

TEST(IndexStore, ManyMbrsManyQueries) {
  IndexStore store;
  for (int s = 0; s < 50; ++s) {
    const double x = s * 0.02 - 0.5;  // spread across [-0.5, 0.48]
    store.add_mbr(mbr_entry(static_cast<StreamId>(s), x, x + 0.01, 10000));
  }
  store.add_subscription(query(1, 0.0, 0.05), 0, at_ms(10000));
  const auto matches = store.match(at_ms(100));
  // Streams whose boxes intersect [-0.05, 0.05]: x in [-0.06, 0.05].
  EXPECT_GE(matches.size(), 4u);
  EXPECT_LE(matches.size(), 7u);
  for (const auto& m : matches) {
    EXPECT_LE(m.bound_distance, 0.05);
  }
}

}  // namespace
}  // namespace sdsi::core
