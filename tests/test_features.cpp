// Feature extraction, the lower-bounding property (Eq. 9), reconstruction
// (Eq. 7), and the weighted inner product of Sec IV-D.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "common/rng.hpp"
#include "dsp/features.hpp"

namespace sdsi::dsp {
namespace {

std::vector<Sample> random_window(std::size_t n, std::uint64_t seed) {
  common::Pcg32 rng(seed, 4);
  std::vector<Sample> window(n);
  for (Sample& x : window) {
    x = rng.uniform(-3.0, 3.0);
  }
  return window;
}

std::vector<Sample> random_walk_window(std::size_t n, std::uint64_t seed) {
  common::Pcg32 rng(seed, 5);
  std::vector<Sample> window(n);
  Sample value = 0.0;
  for (Sample& x : window) {
    value += rng.uniform(-1.0, 1.0);
    x = value;
  }
  return window;
}

FeatureConfig config(std::size_t w, std::size_t k,
                     Normalization norm = Normalization::kZNormalize) {
  FeatureConfig cfg;
  cfg.window_size = w;
  cfg.num_coefficients = k;
  cfg.normalization = norm;
  return cfg;
}

TEST(FeatureConfig, FirstCoefficientSkipsDcOnlyForZNorm) {
  EXPECT_EQ(config(32, 2, Normalization::kZNormalize).first_coefficient(), 1u);
  EXPECT_EQ(config(32, 2, Normalization::kUnitNormalize).first_coefficient(),
            0u);
}

TEST(FeatureVector, AsRealsInterleavesReIm) {
  const FeatureVector fv({Complex{1.0, 2.0}, Complex{3.0, 4.0}});
  EXPECT_EQ(fv.as_reals(), (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

TEST(FeatureVector, DistanceIsComplexEuclidean) {
  const FeatureVector a({Complex{0.0, 0.0}, Complex{0.0, 0.0}});
  const FeatureVector b({Complex{3.0, 0.0}, Complex{0.0, 4.0}});
  EXPECT_DOUBLE_EQ(a.distance(b), 5.0);
}

TEST(ExtractFeatures, CoordinatesAreBounded) {
  // Unit-sphere windows + unitary DFT => every coordinate in [-1, 1].
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto fv = extract_features(random_window(32, seed), config(32, 3));
    EXPECT_LE(std::abs(fv.routing_coordinate()), 1.0);
    for (const Complex& c : fv.coefficients()) {
      EXPECT_LE(std::abs(c), 1.0 + 1e-12);
    }
  }
}

TEST(ExtractFeatures, ZNormSkipsZeroDc) {
  const auto window = random_window(16, 3);
  const auto fv = extract_features(window, config(16, 2));
  // Retained coefficients start at F=1; verify against a manual pipeline.
  const auto normalized = z_normalize(window);
  const auto spectrum = naive_dft(normalized);
  EXPECT_NEAR(std::abs(fv[0] - spectrum[1]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(fv[1] - spectrum[2]), 0.0, 1e-12);
}

TEST(SliceFeatures, MatchesExtract) {
  const auto window = random_window(16, 9);
  const FeatureConfig cfg = config(16, 3);
  const auto normalized = z_normalize(window);
  const auto spectrum = naive_dft(normalized);
  const auto sliced = slice_features(spectrum, cfg);
  const auto extracted = extract_features(window, cfg);
  EXPECT_EQ(sliced.size(), extracted.size());
  for (std::size_t i = 0; i < sliced.size(); ++i) {
    EXPECT_NEAR(std::abs(sliced[i] - extracted[i]), 0.0, 1e-12);
  }
}

class LowerBoundProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LowerBoundProperty, FeatureDistanceNeverExceedsWindowDistance) {
  // Eq. 9: the whole index's correctness (no false dismissals) rests on
  // this. Check plain and symmetric bounds on random and random-walk data.
  const FeatureConfig cfg = config(32, 3);
  const auto wa = random_walk_window(32, GetParam());
  const auto wb = random_walk_window(32, GetParam() + 500);
  const auto na = z_normalize(wa);
  const auto nb = z_normalize(wb);
  const double true_distance = euclidean_distance(na, nb);
  const auto fa = extract_features(wa, cfg);
  const auto fb = extract_features(wb, cfg);
  EXPECT_LE(fa.distance(fb), true_distance + 1e-9);
  const double symmetric = symmetric_lower_bound(fa, fb, cfg);
  EXPECT_LE(symmetric, true_distance + 1e-9);
  // The symmetric bound dominates the plain bound.
  EXPECT_GE(symmetric, fa.distance(fb) - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LowerBoundProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(LowerBound, TightWhenAllCoefficientsKept) {
  // Keeping every distinct frequency (k = N/2 - 1 pairs + symmetric factor)
  // makes the bound nearly exact for zero-mean signals.
  const FeatureConfig cfg = config(16, 7);  // F = 1..7 of a 16-window
  const auto wa = random_window(16, 42);
  const auto wb = random_window(16, 43);
  const auto na = z_normalize(wa);
  const auto nb = z_normalize(wb);
  const auto fa = extract_features(wa, cfg);
  const auto fb = extract_features(wb, cfg);
  const double true_distance = euclidean_distance(na, nb);
  const double bound = symmetric_lower_bound(fa, fb, cfg);
  EXPECT_LE(bound, true_distance + 1e-9);
  // Only the Nyquist bin (F=8) is missing; the bound is close.
  EXPECT_GT(bound, 0.80 * true_distance);
}

TEST(Reconstruct, ExactForBandLimitedSignal) {
  // A signal made only of frequencies 1..2 reconstructs exactly from k=2
  // z-normalized coefficients.
  constexpr std::size_t kN = 32;
  std::vector<Sample> window(kN);
  for (std::size_t j = 0; j < kN; ++j) {
    const double t = static_cast<double>(j);
    window[j] = 2.0 * std::cos(2.0 * std::numbers::pi * t / kN) +
                0.7 * std::sin(2.0 * std::numbers::pi * 2.0 * t / kN);
  }
  const FeatureConfig cfg = config(kN, 2);
  const auto fv = extract_features(window, cfg);
  const auto approx = reconstruct(fv, cfg);
  const auto normalized = z_normalize(window);
  for (std::size_t j = 0; j < kN; ++j) {
    EXPECT_NEAR(approx[j], normalized[j], 1e-9) << "j=" << j;
  }
}

TEST(Reconstruct, ErrorEqualsDiscardedEnergy) {
  // Parseval: ||x_norm - reconstruct||^2 = energy in discarded coefficients.
  const auto window = random_walk_window(32, 5);
  const FeatureConfig cfg = config(32, 4);
  const auto fv = extract_features(window, cfg);
  const auto approx = reconstruct(fv, cfg);
  const auto normalized = z_normalize(window);
  const double err = euclidean_distance(approx, normalized);
  const auto spectrum = naive_dft(normalized);
  double discarded = 0.0;
  for (std::size_t f = 5; f <= 32 - 5; ++f) {
    discarded += std::norm(spectrum[f]);
  }
  EXPECT_NEAR(err * err, discarded, 1e-9);
}

TEST(WeightedInnerProduct, AlignsToWindowTail) {
  const std::vector<Sample> signal{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> index{1.0, 1.0};
  const std::vector<double> weights{10.0, 1.0};
  // Aligned to the two most recent samples: 10*4 + 1*5.
  EXPECT_DOUBLE_EQ(weighted_inner_product(signal, index, weights), 45.0);
}

TEST(WeightedInnerProduct, ZeroIndexMasksOut) {
  const std::vector<Sample> signal{1.0, 2.0, 3.0};
  const std::vector<double> index{0.0, 1.0, 0.0};
  const std::vector<double> weights{9.0, 2.0, 9.0};
  EXPECT_DOUBLE_EQ(weighted_inner_product(signal, index, weights), 4.0);
}

}  // namespace
}  // namespace sdsi::dsp
