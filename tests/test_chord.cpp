// The Chord protocol: Figure 1's exact scenario, lookup correctness, hop
// scaling, and message-path routing with the 50 ms per-hop delay.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "chord/network.hpp"
#include "common/rng.hpp"
#include "routing/static_ring.hpp"

namespace sdsi::chord {
namespace {

using routing::Message;

struct Harness {
  sim::Simulator sim;
  ChordNetwork net;
  std::vector<std::pair<NodeIndex, Message>> deliveries;
  std::vector<double> delivery_times_ms;

  explicit Harness(ChordConfig config) : net(sim, config) {
    net.set_deliver([this](NodeIndex at, const Message& msg) {
      deliveries.emplace_back(at, msg);
      delivery_times_ms.push_back(sim.now().as_millis());
    });
  }
};

ChordConfig figure1_config() {
  ChordConfig config;
  config.id_bits = 5;
  return config;
}

std::vector<Key> figure1_ids() { return {1, 8, 11, 14, 20, 23}; }

NodeIndex by_id(const ChordNetwork& net, Key id) {
  for (NodeIndex i = 0; i < net.num_nodes(); ++i) {
    if (net.node_id(i) == id) {
      return i;
    }
  }
  return kInvalidNode;
}

TEST(ChordFigure1, KeyAssignments) {
  Harness h(figure1_config());
  h.net.bootstrap(figure1_ids());
  EXPECT_EQ(h.net.node_id(h.net.find_successor_oracle(13)), 14u);
  EXPECT_EQ(h.net.node_id(h.net.find_successor_oracle(17)), 20u);
  EXPECT_EQ(h.net.node_id(h.net.find_successor_oracle(26)), 1u);
}

TEST(ChordFigure1, FingerTableOfNode8) {
  // Figure 1(a): N8's fingers are N11, N11, N14, N20, N1.
  Harness h(figure1_config());
  h.net.bootstrap(figure1_ids());
  const NodeIndex n8 = by_id(h.net, 8);
  const FingerTable& fingers = h.net.state(n8).fingers;
  EXPECT_EQ(h.net.node_id(fingers.get(0)), 11u);
  EXPECT_EQ(h.net.node_id(fingers.get(1)), 11u);
  EXPECT_EQ(h.net.node_id(fingers.get(2)), 14u);
  EXPECT_EQ(h.net.node_id(fingers.get(3)), 20u);
  EXPECT_EQ(h.net.node_id(fingers.get(4)), 1u);
}

TEST(ChordFigure1, FingerTableOfNode20) {
  // Figure 2: N20's fingers are N23, N23, N1, N1, N8.
  Harness h(figure1_config());
  h.net.bootstrap(figure1_ids());
  const NodeIndex n20 = by_id(h.net, 20);
  const FingerTable& fingers = h.net.state(n20).fingers;
  EXPECT_EQ(h.net.node_id(fingers.get(0)), 23u);
  EXPECT_EQ(h.net.node_id(fingers.get(1)), 23u);
  EXPECT_EQ(h.net.node_id(fingers.get(2)), 1u);
  EXPECT_EQ(h.net.node_id(fingers.get(3)), 1u);
  EXPECT_EQ(h.net.node_id(fingers.get(4)), 8u);
}

TEST(ChordFigure1, Lookup25FromNode8UsesFingers) {
  // Figure 1(b): node 8 looking up key 25 forwards through node 20 (its
  // closest preceding finger) and node 23, which returns successor N1.
  Harness h(figure1_config());
  h.net.bootstrap(figure1_ids());
  const NodeIndex n8 = by_id(h.net, 8);
  const auto trace = h.net.trace_lookup(n8, 25);
  EXPECT_EQ(h.net.node_id(trace.result), 1u);
  ASSERT_GE(trace.path.size(), 3u);
  EXPECT_EQ(h.net.node_id(trace.path[0]), 8u);
  EXPECT_EQ(h.net.node_id(trace.path[1]), 20u);
  EXPECT_EQ(h.net.node_id(trace.path[2]), 23u);
}

TEST(ChordFigure1, LookupTerminatesViaSuccessorRule) {
  // "Node 14 finds that key 17 falls between itself and its successor,
  // node 20; node 20 is returned."
  Harness h(figure1_config());
  h.net.bootstrap(figure1_ids());
  const NodeIndex n14 = by_id(h.net, 14);
  const auto trace = h.net.trace_lookup(n14, 17);
  EXPECT_EQ(h.net.node_id(trace.result), 20u);
  EXPECT_EQ(trace.hops, 1);
}

TEST(ChordFigure1, SelfCoverageResolvesLocally) {
  Harness h(figure1_config());
  h.net.bootstrap(figure1_ids());
  const NodeIndex n14 = by_id(h.net, 14);
  const auto trace = h.net.trace_lookup(n14, 13);  // 13 in (11, 14]
  EXPECT_EQ(trace.result, n14);
  EXPECT_EQ(trace.hops, 0);
}

TEST(ChordLookup, AgreesWithOracleEverywhere) {
  Harness h(figure1_config());
  h.net.bootstrap(figure1_ids());
  for (Key key = 0; key < 32; ++key) {
    for (NodeIndex from = 0; from < h.net.num_nodes(); ++from) {
      const auto trace = h.net.trace_lookup(from, key);
      EXPECT_EQ(trace.result, h.net.find_successor_oracle(key))
          << "from=" << h.net.node_id(from) << " key=" << key;
    }
  }
}

TEST(ChordRouting, MessageArrivesAtSuccessorWithHopDelay) {
  Harness h(figure1_config());
  h.net.bootstrap(figure1_ids());
  const NodeIndex n8 = by_id(h.net, 8);
  Message msg;
  msg.kind = static_cast<routing::MsgKind>(1);
  h.net.send(n8, 25, std::move(msg));
  h.sim.run_all();
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.net.node_id(h.deliveries[0].first), 1u);
  // Path 8 -> 20 -> 23 -> 1: three transmissions at 50 ms each.
  EXPECT_EQ(h.deliveries[0].second.hops, 3);
  EXPECT_DOUBLE_EQ(h.delivery_times_ms[0], 150.0);
}

TEST(ChordRouting, LocalKeyDeliversWithZeroHops) {
  Harness h(figure1_config());
  h.net.bootstrap(figure1_ids());
  const NodeIndex n14 = by_id(h.net, 14);
  Message msg;
  msg.kind = static_cast<routing::MsgKind>(1);
  h.net.send(n14, 12, std::move(msg));
  h.sim.run_all();
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.deliveries[0].first, n14);
  EXPECT_EQ(h.deliveries[0].second.hops, 0);
}

TEST(ChordRouting, RangeMulticastMatchesFigure3a) {
  Harness h(figure1_config());
  h.net.bootstrap(figure1_ids());
  const NodeIndex n1 = by_id(h.net, 1);
  Message msg;
  msg.kind = static_cast<routing::MsgKind>(1);
  h.net.send_range(n1, 10, 19, std::move(msg),
                   routing::MulticastStrategy::kSequential);
  h.sim.run_all();
  std::set<Key> ids;
  for (const auto& [at, m] : h.deliveries) {
    ids.insert(h.net.node_id(at));
  }
  EXPECT_EQ(ids, (std::set<Key>{11, 14, 20}));
}

class ChordHopScaling : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChordHopScaling, AverageHopsAreLogarithmic) {
  const std::size_t n = GetParam();
  ChordConfig config;
  config.id_bits = 24;
  Harness h(config);
  const auto ids = routing::hash_node_ids(n, common::IdSpace(24), 3);
  h.net.bootstrap(ids);
  common::Pcg32 rng(n, 2);
  double total_hops = 0.0;
  constexpr int kLookups = 400;
  for (int i = 0; i < kLookups; ++i) {
    const auto from =
        static_cast<NodeIndex>(rng.bounded(static_cast<std::uint32_t>(n)));
    const Key key = h.net.id_space().wrap(rng.next64());
    const auto trace = h.net.trace_lookup(from, key);
    EXPECT_EQ(trace.result, h.net.find_successor_oracle(key));
    total_hops += trace.hops;
  }
  const double mean_hops = total_hops / kLookups;
  const double log2n = std::log2(static_cast<double>(n));
  // The classical bound: mean ~ 0.5 log2 N; allow generous slack.
  EXPECT_LT(mean_hops, log2n + 1.0);
  EXPECT_GT(mean_hops, 0.25 * log2n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChordHopScaling,
                         ::testing::Values(16, 50, 100, 200, 500));

TEST(ChordBootstrap, SuccessorListsAreNextRClockwise) {
  ChordConfig config;
  config.id_bits = 8;
  config.successor_list_length = 3;
  Harness h(config);
  h.net.bootstrap(std::vector<Key>{10, 20, 30, 40, 50});
  const NodeIndex n30 = by_id(h.net, 30);
  const auto& list = h.net.state(n30).successor_list;
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(h.net.node_id(list[0]), 40u);
  EXPECT_EQ(h.net.node_id(list[1]), 50u);
  EXPECT_EQ(h.net.node_id(list[2]), 10u);
}

TEST(ChordRouting, DeterministicAcrossRuns) {
  auto run = [] {
    ChordConfig config;
    config.id_bits = 16;
    Harness h(config);
    h.net.bootstrap(routing::hash_node_ids(30, common::IdSpace(16), 9));
    for (Key key = 0; key < 20000; key += 997) {
      Message msg;
      msg.kind = static_cast<routing::MsgKind>(1);
      h.net.send(0, key, std::move(msg));
    }
    h.sim.run_all();
    std::vector<int> hops;
    for (const auto& [at, msg] : h.deliveries) {
      hops.push_back(msg.hops);
    }
    return hops;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace sdsi::chord
