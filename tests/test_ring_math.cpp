// Modular interval logic on the identifier circle — the foundation Chord's
// correctness rests on.
#include <gtest/gtest.h>

#include "common/ring_math.hpp"

namespace sdsi::common {
namespace {

TEST(IdSpace, SizeAndMask) {
  EXPECT_EQ(IdSpace(5).size(), 32u);
  EXPECT_EQ(IdSpace(5).mask(), 31u);
  EXPECT_EQ(IdSpace(32).size(), 1ull << 32);
  EXPECT_EQ(IdSpace(64).mask(), ~0ull);
}

TEST(IdSpace, WrapReducesModulo) {
  const IdSpace space(5);
  EXPECT_EQ(space.wrap(32), 0u);
  EXPECT_EQ(space.wrap(33), 1u);
  EXPECT_EQ(space.wrap(31), 31u);
}

TEST(IdSpace, DistanceIsClockwise) {
  const IdSpace space(5);
  EXPECT_EQ(space.distance(3, 10), 7u);
  EXPECT_EQ(space.distance(10, 3), 25u);
  EXPECT_EQ(space.distance(7, 7), 0u);
  EXPECT_EQ(space.distance(31, 0), 1u);
}

TEST(IdSpace, FingerStartMatchesPaperExample) {
  // Figure 1(a): node 8's fingers start at 9, 10, 12, 16, 24.
  const IdSpace space(5);
  EXPECT_EQ(space.finger_start(8, 0), 9u);
  EXPECT_EQ(space.finger_start(8, 1), 10u);
  EXPECT_EQ(space.finger_start(8, 2), 12u);
  EXPECT_EQ(space.finger_start(8, 3), 16u);
  EXPECT_EQ(space.finger_start(8, 4), 24u);
  // Wrap: node 20 + 16 = 36 mod 32 = 4.
  EXPECT_EQ(space.finger_start(20, 4), 4u);
}

TEST(IdSpace, OpenIntervalNonWrapping) {
  const IdSpace space(5);
  EXPECT_TRUE(space.in_open(5, 3, 10));
  EXPECT_FALSE(space.in_open(3, 3, 10));
  EXPECT_FALSE(space.in_open(10, 3, 10));
  EXPECT_FALSE(space.in_open(11, 3, 10));
}

TEST(IdSpace, OpenIntervalWrapping) {
  const IdSpace space(5);
  EXPECT_TRUE(space.in_open(31, 28, 4));
  EXPECT_TRUE(space.in_open(0, 28, 4));
  EXPECT_TRUE(space.in_open(3, 28, 4));
  EXPECT_FALSE(space.in_open(4, 28, 4));
  EXPECT_FALSE(space.in_open(28, 28, 4));
  EXPECT_FALSE(space.in_open(10, 28, 4));
}

TEST(IdSpace, OpenIntervalDegenerate) {
  const IdSpace space(5);
  // (a, a) is empty.
  EXPECT_FALSE(space.in_open(5, 7, 7));
  EXPECT_FALSE(space.in_open(7, 7, 7));
}

TEST(IdSpace, HalfOpenInterval) {
  const IdSpace space(5);
  EXPECT_TRUE(space.in_half_open(10, 3, 10));
  EXPECT_FALSE(space.in_half_open(3, 3, 10));
  EXPECT_TRUE(space.in_half_open(4, 3, 10));
  EXPECT_FALSE(space.in_half_open(11, 3, 10));
}

TEST(IdSpace, HalfOpenFullCircleConvention) {
  // (a, a] is the whole ring: a lone node succeeds every key.
  const IdSpace space(5);
  EXPECT_TRUE(space.in_half_open(0, 7, 7));
  EXPECT_TRUE(space.in_half_open(7, 7, 7));
  EXPECT_TRUE(space.in_half_open(31, 7, 7));
}

TEST(IdSpace, ClosedInterval) {
  const IdSpace space(5);
  EXPECT_TRUE(space.in_closed(3, 3, 10));
  EXPECT_TRUE(space.in_closed(10, 3, 10));
  EXPECT_TRUE(space.in_closed(7, 3, 10));
  EXPECT_FALSE(space.in_closed(11, 3, 10));
  EXPECT_FALSE(space.in_closed(2, 3, 10));
  // Single point when a == b.
  EXPECT_TRUE(space.in_closed(5, 5, 5));
  EXPECT_FALSE(space.in_closed(6, 5, 5));
}

TEST(IdSpace, ClosedIntervalWrapping) {
  const IdSpace space(5);
  EXPECT_TRUE(space.in_closed(30, 28, 2));
  EXPECT_TRUE(space.in_closed(0, 28, 2));
  EXPECT_TRUE(space.in_closed(2, 28, 2));
  EXPECT_FALSE(space.in_closed(3, 28, 2));
  EXPECT_FALSE(space.in_closed(27, 28, 2));
}

TEST(IdSpace, Midpoint) {
  const IdSpace space(5);
  EXPECT_EQ(space.midpoint(0, 10), 5u);
  EXPECT_EQ(space.midpoint(10, 10), 10u);
  // Wrapping range [30, 4]: length 6, midpoint 30 + 3 = 33 mod 32 = 1.
  EXPECT_EQ(space.midpoint(30, 4), 1u);
}

TEST(IdSpace, MidpointIsInsideRange) {
  const IdSpace space(8);
  for (Key a = 0; a < 256; a += 17) {
    for (Key b = 0; b < 256; b += 13) {
      const Key mid = space.midpoint(a, b);
      EXPECT_TRUE(space.in_closed(mid, a, b))
          << "a=" << a << " b=" << b << " mid=" << mid;
    }
  }
}

class IdSpaceWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(IdSpaceWidths, IntervalIdentities) {
  const IdSpace space(GetParam());
  const Key quarter = space.mask() / 4;
  const Key a = quarter;
  const Key b = space.wrap(3 * static_cast<std::uint64_t>(quarter));
  if (a == b) {
    // Degenerate tiny rings: (a, a] is the full circle while [a, a] is a
    // single point by convention, so the identities below do not apply.
    GTEST_SKIP();
  }
  // in_half_open == in_open || key == b.
  for (const Key key :
       {Key{0}, a, space.wrap(a + 1), space.wrap(b - 1), b, space.mask()}) {
    EXPECT_EQ(space.in_half_open(key, a, b),
              space.in_open(key, a, b) || key == b)
        << "bits=" << GetParam() << " key=" << key;
    // in_closed == in_half_open || key == a.
    EXPECT_EQ(space.in_closed(key, a, b),
              space.in_half_open(key, a, b) || key == a)
        << "bits=" << GetParam() << " key=" << key;
  }
}

TEST_P(IdSpaceWidths, DistanceTriangleOnCircle) {
  const IdSpace space(GetParam());
  const Key a = 1;
  const Key b = space.mask() / 3;
  const Key c = space.wrap(2 * static_cast<std::uint64_t>(space.mask() / 3));
  // Going a->b->c clockwise equals going a->c when b is on the way.
  EXPECT_EQ(space.wrap(space.distance(a, b) + space.distance(b, c)),
            space.distance(a, c));
}

INSTANTIATE_TEST_SUITE_P(Widths, IdSpaceWidths,
                         ::testing::Values(1, 2, 5, 8, 16, 32, 52, 63, 64));

}  // namespace
}  // namespace sdsi::common
