// The bench harness runs independent simulations on parallel threads
// (bench_common.hpp run_sweep). Simulations share no mutable globals, so
// parallel results must be bit-identical to serial ones — this test guards
// against anyone introducing hidden global state (a static cache, a shared
// RNG) into the libraries.
#include <gtest/gtest.h>

#include <thread>

#include "core/experiment.hpp"

namespace sdsi::core {
namespace {

ExperimentConfig quick(std::uint64_t seed) {
  ExperimentConfig config;
  config.num_nodes = 20;
  config.seed = seed;
  config.warmup = sim::Duration::seconds(60);
  config.measure = sim::Duration::seconds(10);
  return config;
}

struct Snapshot {
  std::uint64_t events;
  std::vector<double> per_node;
  std::uint64_t responses;

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

Snapshot run_one(std::uint64_t seed) {
  Experiment experiment(quick(seed));
  experiment.run();
  return Snapshot{experiment.simulator().executed_events(),
                  experiment.load_report().per_node_total,
                  experiment.quality_report().responses_received};
}

TEST(ParallelExperiments, ConcurrentRunsMatchSerialRuns) {
  constexpr int kRuns = 4;
  Snapshot serial[kRuns];
  for (int i = 0; i < kRuns; ++i) {
    serial[i] = run_one(100 + static_cast<std::uint64_t>(i));
  }

  Snapshot parallel[kRuns];
  {
    std::vector<std::jthread> workers;
    for (int i = 0; i < kRuns; ++i) {
      workers.emplace_back([i, &parallel] {
        parallel[i] = run_one(100 + static_cast<std::uint64_t>(i));
      });
    }
  }
  for (int i = 0; i < kRuns; ++i) {
    EXPECT_EQ(parallel[i], serial[i]) << "run " << i;
  }
}

TEST(ParallelExperiments, DistinctSeedsStayIndependentUnderConcurrency) {
  Snapshot a;
  Snapshot b;
  {
    std::jthread ta([&a] { a = run_one(1); });
    std::jthread tb([&b] { b = run_one(2); });
  }
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace sdsi::core
