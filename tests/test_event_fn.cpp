// Small-buffer-optimized EventFn: inline storage for common capture shapes,
// move-only captures, and deterministic destruction order.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_fn.hpp"

namespace sdsi::sim {
namespace {

TEST(EventFn, DefaultIsNull) {
  EventFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_TRUE(fn == nullptr);
  EXPECT_FALSE(fn != nullptr);
}

TEST(EventFn, InvokesSmallLambda) {
  int calls = 0;
  EventFn fn = [&calls] { ++calls; };
  EXPECT_TRUE(fn != nullptr);
  fn();
  fn();
  EXPECT_EQ(calls, 2);
}

TEST(EventFn, MoveTransfersOwnershipAndNullsSource) {
  int calls = 0;
  EventFn a = [&calls] { ++calls; };
  EventFn b = std::move(a);
  EXPECT_TRUE(a == nullptr);  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b != nullptr);
  b();
  EXPECT_EQ(calls, 1);
}

TEST(EventFn, MoveOnlyCaptureInline) {
  // unique_ptr captures are the pooled-message shape: move-only, small.
  auto value = std::make_unique<int>(41);
  EventFn fn = [v = std::move(value)]() mutable { ++*v; };
  static_assert(sizeof(std::unique_ptr<int>) <= EventFn::kInlineSize);
  EventFn moved = std::move(fn);
  moved();
}

TEST(EventFn, MoveOnlyCaptureHeapFallback) {
  // Captures beyond kInlineSize must still work (heap fallback).
  struct Big {
    std::unique_ptr<int> v;
    unsigned char pad[EventFn::kInlineSize];
  };
  int out = 0;
  EventFn fn = [big = Big{std::make_unique<int>(7), {}}, &out] {
    out = *big.v;
  };
  EventFn moved = std::move(fn);
  moved();
  EXPECT_EQ(out, 7);
}

TEST(EventFn, DestroysCaptureExactlyOnceInline) {
  auto counter = std::make_shared<int>(0);
  struct Tracker {
    std::shared_ptr<int> count;
    ~Tracker() {
      if (count) {
        ++*count;
      }
    }
    Tracker(std::shared_ptr<int> c) : count(std::move(c)) {}
    Tracker(Tracker&& other) noexcept : count(std::move(other.count)) {}
    Tracker(const Tracker&) = delete;
    void operator()() const {}
  };
  {
    EventFn fn = Tracker(counter);
    EventFn moved = std::move(fn);
    EventFn assigned;
    assigned = std::move(moved);
  }
  // However many times it was relocated, the live capture is destroyed once
  // (moved-from shells carry a null count and don't tick the counter).
  EXPECT_EQ(*counter, 1);
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(EventFn, AssignmentDestroysPreviousTarget) {
  auto a_alive = std::make_shared<int>(1);
  auto b_alive = std::make_shared<int>(2);
  EventFn fn = [keep = a_alive] {};
  EXPECT_EQ(a_alive.use_count(), 2);
  fn = EventFn([keep = b_alive] {});
  EXPECT_EQ(a_alive.use_count(), 1);  // old capture destroyed on assignment
  EXPECT_EQ(b_alive.use_count(), 2);
  fn = nullptr;
  EXPECT_EQ(b_alive.use_count(), 1);
}

TEST(EventFn, DestructionOrderIsDeclarationReverse) {
  // Captures inside one closure are destroyed in reverse member order when
  // the EventFn dies, exactly as for the raw lambda.
  std::vector<int> order;
  struct Witness {
    std::vector<int>* order;
    int id;
    ~Witness() {
      if (order != nullptr) {
        order->push_back(id);
      }
    }
    Witness(std::vector<int>* o, int i) : order(o), id(i) {}
    Witness(Witness&& other) noexcept : order(other.order), id(other.id) {
      other.order = nullptr;
    }
    Witness(const Witness&) = delete;
  };
  {
    EventFn fn = [first = Witness(&order, 1), second = Witness(&order, 2)] {};
  }
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);  // last-declared capture destroyed first
  EXPECT_EQ(order[1], 1);
}

TEST(EventFn, SelfCaptureSizeStaysInline) {
  // The simulator's common closure shapes — a `this` pointer plus a couple
  // of 64-bit ids — must stay inline.
  struct Shape {
    void* self;
    std::uint64_t a;
    std::uint64_t b;
    std::uint64_t c;
  };
  static_assert(sizeof(Shape) <= EventFn::kInlineSize);
}

}  // namespace
}  // namespace sdsi::sim
