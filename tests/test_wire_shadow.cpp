// Wire-shadow equivalence gate: running a full seeded experiment with the
// wire shadow installed — every routed message encoded to v1 bytes, decoded
// back, byte-equality-checked, and the DECODED message delivered — must be
// observationally identical to the plain run: same per-query matched stream
// sets and a byte-identical metrics.json. This is the strongest in-sim
// statement that serialization is lossless for live traffic: the sim's
// entire message stream survives a codec round-trip with zero drift.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "core/experiment.hpp"
#include "net/wire_shadow.hpp"

namespace sdsi::net {
namespace {

core::ExperimentConfig shadow_config(const std::string& obs_dir) {
  core::ExperimentConfig config;
  config.num_nodes = 10;
  config.seed = 4242;
  config.substrate = core::SubstrateKind::kStaticRing;
  config.features.window_size = 32;
  config.features.num_coefficients = 2;
  config.workload.stream_period_min = sim::Duration::millis(40);
  config.workload.stream_period_max = sim::Duration::millis(60);
  config.workload.query_rate_per_sec = 3.0;
  config.workload.notify_period = sim::Duration::millis(500);
  config.warmup = sim::Duration::seconds(3);
  config.measure = sim::Duration::seconds(3);
  config.obs.dir = obs_dir;
  return config;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct RunDigest {
  std::map<core::QueryId, std::set<StreamId>> matched;
  std::string metrics_json;
  std::uint64_t shadow_frames = 0;
};

RunDigest run_once(bool shadow, const std::string& obs_dir) {
  core::Experiment experiment(shadow_config(obs_dir));
  experiment.prepare();
  std::shared_ptr<const WireShadowStats> stats;
  if (shadow) {
    stats = install_wire_shadow(experiment.routing_system());
  }
  experiment.run();

  RunDigest digest;
  for (const auto& [id, record] : experiment.system().client_records()) {
    digest.matched[id] = std::set<StreamId>(record.matched_streams.begin(),
                                            record.matched_streams.end());
  }
  digest.metrics_json = slurp(obs_dir + "/metrics.json");
  digest.shadow_frames = stats ? stats->frames : 0;
  return digest;
}

TEST(WireShadow, CodecRoundTripIsUnobservable) {
  const std::string base = ::testing::TempDir() + "sdsi_wire_shadow";
  const RunDigest plain = run_once(false, base + "_off");
  const RunDigest shadowed = run_once(true, base + "_on");

  // The run must actually route traffic through the codec.
  ASSERT_GT(shadowed.shadow_frames, 100u);
  ASSERT_FALSE(plain.matched.empty());
  ASSERT_FALSE(plain.metrics_json.empty());

  EXPECT_EQ(shadowed.matched, plain.matched);
  EXPECT_EQ(shadowed.metrics_json, plain.metrics_json);
}

}  // namespace
}  // namespace sdsi::net
