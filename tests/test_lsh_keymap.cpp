// LshKeyMap invariants (core/lsh_map.hpp): deterministic seeded planes,
// bucket arcs that exactly partition the identifier circle, membership
// independence of keys (the churn-stability property docs/STRATEGIES.md
// claims for the "lsh" strategy), and the multi-probe range discipline
// (primary first, distinct, capped at max_probes).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "common/ring_math.hpp"
#include "common/rng.hpp"
#include "core/lsh_map.hpp"
#include "dsp/features.hpp"
#include "dsp/mbr.hpp"

namespace sdsi::core {
namespace {

dsp::FeatureVector make_features(std::span<const double> reals) {
  dsp::FeatureVector out;
  auto coeffs = out.overwrite(reals.size() / 2);
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    coeffs[i] = dsp::Complex(reals[2 * i], reals[2 * i + 1]);
  }
  return out;
}

dsp::FeatureVector random_features(common::Pcg32& rng, std::size_t dims) {
  std::vector<double> reals(dims);
  double norm_sq = 0.0;
  for (double& x : reals) {
    x = rng.normal();
    norm_sq += x * x;
  }
  for (double& x : reals) {
    x /= std::sqrt(norm_sq);
  }
  return make_features(reals);
}

LshKeyMap make_map(std::size_t planes = 6, std::size_t max_probes = 8) {
  LshOptions options;
  options.planes = planes;
  options.max_probes = max_probes;
  return LshKeyMap(options, 4, common::IdSpace(16));
}

TEST(LshKeyMap, DeterministicAcrossInstances) {
  const LshKeyMap a = make_map();
  const LshKeyMap b = make_map();
  common::Pcg32 rng(11u, 0x5eedu);
  for (int i = 0; i < 50; ++i) {
    const dsp::FeatureVector f = random_features(rng, 4);
    EXPECT_EQ(a.signature_of(f), b.signature_of(f));
    EXPECT_EQ(a.key_for(f), b.key_for(f));
  }
}

TEST(LshKeyMap, BucketArcsPartitionTheRing) {
  const LshKeyMap map = make_map(4);
  const common::IdSpace space(16);
  std::uint64_t covered = 0;
  Key expected_lo = 0;
  for (std::uint64_t b = 0; b < (1u << 4); ++b) {
    const auto [lo, hi] = map.bucket_arc(b);
    EXPECT_EQ(lo, expected_lo);
    EXPECT_LE(lo, hi);
    covered += hi - lo + 1;
    expected_lo = space.wrap(hi + 1);
  }
  EXPECT_EQ(covered, std::uint64_t{1} << 16);
  EXPECT_EQ(expected_lo, 0u);  // wrapped all the way around
}

TEST(LshKeyMap, KeyLandsInsideItsSignatureArc) {
  const LshKeyMap map = make_map();
  common::Pcg32 rng(17u, 0x5eedu);
  for (int i = 0; i < 50; ++i) {
    const dsp::FeatureVector f = random_features(rng, 4);
    const auto [lo, hi] = map.bucket_arc(map.signature_of(f));
    const Key key = map.key_for(f);
    EXPECT_GE(key, lo);
    EXPECT_LE(key, hi);
  }
}

TEST(LshKeyMap, QueryRangesPrimaryFirstDistinctAndCapped) {
  const std::size_t max_probes = 5;
  const LshKeyMap map = make_map(6, max_probes);
  common::Pcg32 rng(23u, 0x5eedu);
  std::vector<std::pair<Key, Key>> ranges;
  for (int i = 0; i < 50; ++i) {
    const dsp::FeatureVector f = random_features(rng, 4);
    map.query_ranges(f, 0.8, ranges);
    ASSERT_FALSE(ranges.empty());
    EXPECT_LE(ranges.size(), max_probes);
    EXPECT_EQ(ranges.front(), map.query_range(f, 0.8));
    std::set<std::pair<Key, Key>> unique(ranges.begin(), ranges.end());
    EXPECT_EQ(unique.size(), ranges.size());
  }
}

TEST(LshKeyMap, WiderRadiusProbesAtLeastAsManyArcs) {
  const LshKeyMap map = make_map(6, 64);
  common::Pcg32 rng(29u, 0x5eedu);
  std::vector<std::pair<Key, Key>> narrow;
  std::vector<std::pair<Key, Key>> wide;
  for (int i = 0; i < 50; ++i) {
    const dsp::FeatureVector f = random_features(rng, 4);
    map.query_ranges(f, 0.1, narrow);
    map.query_ranges(f, 1.0, wide);
    EXPECT_LE(narrow.size(), wide.size());
  }
}

TEST(LshKeyMap, ZeroRadiusProbesOnlyThePrimary) {
  const LshKeyMap map = make_map();
  common::Pcg32 rng(31u, 0x5eedu);
  std::vector<std::pair<Key, Key>> ranges;
  for (int i = 0; i < 20; ++i) {
    const dsp::FeatureVector f = random_features(rng, 4);
    map.query_ranges(f, 0.0, ranges);
    // Only planes the point lies exactly on (margin 0) can add probes.
    EXPECT_LE(ranges.size(), 2u);
    EXPECT_EQ(ranges.front(), map.query_range(f, 0.0));
  }
}

TEST(LshKeyMap, MbrRangesCoverEveryCornerSignature) {
  // Every corner of the box hashes to some signature; the probed arcs
  // (straddled-plane flips of the box signature) must include each corner's
  // bucket when the probe budget allows it.
  const LshKeyMap map = make_map(4, 64);
  common::Pcg32 rng(37u, 0x5eedu);
  std::vector<std::pair<Key, Key>> ranges;
  for (int i = 0; i < 30; ++i) {
    const dsp::FeatureVector a = random_features(rng, 4);
    const dsp::FeatureVector b = random_features(rng, 4);
    dsp::Mbr box(a);
    box.extend(b);
    map.mbr_ranges(box, ranges);
    const std::set<std::pair<Key, Key>> probed(ranges.begin(), ranges.end());
    for (const dsp::FeatureVector* corner : {&a, &b}) {
      const auto arc = map.bucket_arc(map.signature_of(*corner));
      EXPECT_TRUE(probed.count(arc) == 1)
          << "corner bucket not probed on iteration " << i;
    }
  }
}

TEST(LshKeyMap, KeysIgnoreRingMembership) {
  // The map is constructed from (options, dims, id space) alone: two maps
  // built for rings of different *node* populations — same id space — agree
  // on every key, which is exactly why churn never re-keys content.
  const LshKeyMap sparse_ring = make_map();
  const LshKeyMap dense_ring = make_map();
  common::Pcg32 rng(41u, 0x5eedu);
  for (int i = 0; i < 20; ++i) {
    const dsp::FeatureVector f = random_features(rng, 4);
    EXPECT_EQ(sparse_ring.key_for(f), dense_ring.key_for(f));
  }
}

TEST(LshKeyMap, RejectsDegenerateGeometry) {
  LshOptions options;
  options.planes = 0;
  EXPECT_DEATH(LshKeyMap(options, 4, common::IdSpace(16)), "");
}

}  // namespace
}  // namespace sdsi::core
