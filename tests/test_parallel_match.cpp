// Serial/parallel equivalence of the sharded execution paths, at the unit
// level: IndexStore::match with a WorkerPool attached must return the
// byte-identical match vector of the serial pass (across rounds with
// insertions, expiry, and the per-node reported-dedup state), and
// MiddlewareSystem::post_stream_burst / tick_all_nodes must leave a system
// in exactly the state the serial per-value / per-node loops produce.
//
// Carries the tsan-smoke label: under the tsan preset this doubles as the
// data-race gate over the real (non-synthetic) parallel workloads.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/index_store.hpp"
#include "core/system.hpp"
#include "core/worker_pool.hpp"
#include "routing/static_ring.hpp"

namespace sdsi::core {
namespace {

// --- IndexStore::match -----------------------------------------------------

dsp::Mbr random_mbr(common::Pcg32& rng) {
  std::vector<double> low(4);
  std::vector<double> high(4);
  for (std::size_t d = 0; d < low.size(); ++d) {
    low[d] = rng.uniform(-1.0, 0.9);
    high[d] = low[d] + rng.uniform(0.0, 0.08);
  }
  return dsp::Mbr(std::move(low), std::move(high));
}

std::shared_ptr<const SimilarityQuery> random_query(common::Pcg32& rng,
                                                    QueryId id) {
  SimilarityQuery query;
  query.id = id;
  query.features = dsp::FeatureVector(
      {dsp::Complex{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)},
       dsp::Complex{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)}});
  query.radius = rng.uniform(0.05, 0.3);
  return std::make_shared<const SimilarityQuery>(std::move(query));
}

/// Drives `serial` and `pooled` through the identical randomized sequence of
/// insertions and advancing-time match passes; every pass must return the
/// exact same vector (order included).
void run_equivalence_rounds(std::size_t threads, std::uint64_t seed) {
  WorkerPool pool(threads);
  IndexStore serial;
  IndexStore pooled;
  common::Pcg32 rng(seed, 23);
  sim::SimTime now;
  QueryId next_query = 0;
  StreamId next_stream = 0;
  for (int round = 0; round < 12; ++round) {
    // Mixed-lifespan insertions: some entries expire between rounds, so the
    // passes also agree on expiry and on the reported-dedup carry-over.
    const int new_mbrs = 20 + round * 5;
    const int new_subs = 6 + round * 2;
    for (int i = 0; i < new_mbrs; ++i) {
      IndexStore::StoredMbr entry;
      entry.stream = next_stream++;
      entry.mbr = random_mbr(rng);
      entry.expires =
          now + sim::Duration::millis(500 + 500 * (i % 5));
      IndexStore::StoredMbr copy = entry;
      serial.add_mbr(std::move(entry));
      pooled.add_mbr(std::move(copy));
    }
    for (int i = 0; i < new_subs; ++i) {
      auto query = random_query(rng, next_query++);
      const auto expires =
          now + sim::Duration::millis(800 + 700 * (i % 4));
      serial.add_subscription(query, 0, expires);
      pooled.add_subscription(query, 0, expires);
    }
    const auto a = serial.match(now);
    const auto b = pooled.match(now, &pool);
    ASSERT_EQ(a.size(), b.size()) << "round " << round;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].query, b[i].query) << "round " << round << " #" << i;
      ASSERT_EQ(a[i].stream, b[i].stream) << "round " << round << " #" << i;
      ASSERT_EQ(a[i].bound_distance, b[i].bound_distance)
          << "round " << round << " #" << i;
    }
    ASSERT_EQ(serial.mbr_count(), pooled.mbr_count());
    ASSERT_EQ(serial.subscription_count(), pooled.subscription_count());
    now = now + sim::Duration::millis(400);
  }
}

TEST(ParallelMatch, TwoLanesMatchSerialExactly) {
  run_equivalence_rounds(2, 1);
}

TEST(ParallelMatch, EightLanesMatchSerialExactly) {
  run_equivalence_rounds(8, 2);
}

TEST(ParallelMatch, InlinePoolMatchesSerialExactly) {
  // threads == 1: the pool exists but must take the inline path.
  run_equivalence_rounds(1, 3);
}

// --- MiddlewareSystem: burst ingest and tick_all_nodes ----------------------

constexpr std::size_t kWindow = 16;

MiddlewareConfig middleware_config(std::size_t threads) {
  MiddlewareConfig config;
  config.features.window_size = kWindow;
  config.features.num_coefficients = 2;
  config.batching.batch_size = 3;
  config.mbr_lifespan = sim::Duration::seconds(30);
  config.notify_period = sim::Duration::millis(500);
  config.threads = threads;
  return config;
}

struct Harness {
  sim::Simulator sim;
  routing::StaticRing ring;
  MiddlewareSystem system;

  Harness(std::size_t nodes, std::size_t threads)
      : ring(sim, common::IdSpace(16),
             routing::hash_node_ids(nodes, common::IdSpace(16), 77)),
        system(ring, middleware_config(threads)) {}
};

std::vector<StreamBurst> make_bursts(std::size_t nodes) {
  // One long burst per (node, stream): random walks long enough to close
  // several MBR batches past the window-fill prefix.
  std::vector<StreamBurst> bursts;
  common::Pcg32 rng(99, 5);
  for (NodeIndex node = 0; node < nodes; ++node) {
    StreamBurst burst;
    burst.node = node;
    burst.stream = 500 + node;
    double value = 0.0;
    for (int i = 0; i < 64; ++i) {
      value += rng.uniform(-1.0, 1.0);
      burst.values.push_back(value);
    }
    bursts.push_back(std::move(burst));
  }
  return bursts;
}

/// The observable state two equivalent systems must agree on.
void expect_systems_equal(const MiddlewareSystem& a,
                          const MiddlewareSystem& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.mbrs_routed(), b.mbrs_routed());
  for (NodeIndex i = 0; i < a.num_nodes(); ++i) {
    const auto mbrs_a = a.node(i).store.mbrs();
    const auto mbrs_b = b.node(i).store.mbrs();
    ASSERT_EQ(mbrs_a.size(), mbrs_b.size()) << "node " << i;
    for (std::size_t k = 0; k < mbrs_a.size(); ++k) {
      EXPECT_EQ(mbrs_a[k].stream, mbrs_b[k].stream);
      EXPECT_EQ(mbrs_a[k].batch_seq, mbrs_b[k].batch_seq);
      EXPECT_EQ(mbrs_a[k].source, mbrs_b[k].source);
    }
    EXPECT_EQ(a.node(i).store.subscription_count(),
              b.node(i).store.subscription_count())
        << "node " << i;
  }
  ASSERT_EQ(a.client_records().size(), b.client_records().size());
  for (const auto& [id, record] : a.client_records()) {
    const ClientQueryRecord* other = b.client_record(id);
    ASSERT_NE(other, nullptr) << "query " << id;
    EXPECT_EQ(record.responses_received, other->responses_received);
    EXPECT_EQ(record.match_events, other->match_events);
    EXPECT_EQ(record.matched_streams, other->matched_streams);
  }
}

TEST(ParallelIngest, BurstEqualsPerValueLoop) {
  // Same ring, same data: system A ingests value by value (serial), system B
  // takes the sharded post_stream_burst path at 4 lanes. All downstream
  // state — routed MBRs, stored batches, match deliveries — must be
  // identical.
  constexpr std::size_t kNodes = 6;
  Harness serial(kNodes, 1);
  Harness burst(kNodes, 4);
  ASSERT_NE(burst.system.worker_pool(), nullptr);
  ASSERT_EQ(serial.system.worker_pool(), nullptr);
  serial.system.start();
  burst.system.start();

  const auto bursts = make_bursts(kNodes);
  for (const StreamBurst& b : bursts) {
    serial.system.register_stream(b.node, b.stream);
    burst.system.register_stream(b.node, b.stream);
  }
  // A query in each system so the burst data feeds the full match pipeline.
  const auto probe = bursts.front().values;
  std::vector<Sample> window(probe.end() - static_cast<std::ptrdiff_t>(kWindow),
                             probe.end());
  const QueryId qa = serial.system.subscribe_similarity_window(
      2, window, 0.4, sim::Duration::seconds(60));
  const QueryId qb = burst.system.subscribe_similarity_window(
      2, window, 0.4, sim::Duration::seconds(60));
  ASSERT_EQ(qa, qb);
  serial.sim.run_for(sim::Duration::seconds(2));
  burst.sim.run_for(sim::Duration::seconds(2));

  for (const StreamBurst& b : bursts) {
    for (const Sample value : b.values) {
      serial.system.post_stream_value(b.node, b.stream, value);
    }
  }
  burst.system.post_stream_burst(bursts);

  serial.sim.run_for(sim::Duration::seconds(5));
  burst.sim.run_for(sim::Duration::seconds(5));
  expect_systems_equal(serial.system, burst.system);
  EXPECT_GT(serial.system.mbrs_routed(), 0u);
}

TEST(ParallelTick, TickAllNodesEqualsSerialLoop) {
  // tick_all_nodes with a pool hoists the per-node match passes into a
  // sharded pre-pass; the post-state must equal the serial system's.
  constexpr std::size_t kNodes = 8;
  Harness serial(kNodes, 1);
  Harness pooled(kNodes, 4);

  const auto bursts = make_bursts(kNodes);
  for (const StreamBurst& b : bursts) {
    serial.system.register_stream(b.node, b.stream);
    pooled.system.register_stream(b.node, b.stream);
    for (const Sample value : b.values) {
      serial.system.post_stream_value(b.node, b.stream, value);
      pooled.system.post_stream_value(b.node, b.stream, value);
    }
  }
  const auto probe = bursts.back().values;
  std::vector<Sample> window(probe.end() - static_cast<std::ptrdiff_t>(kWindow),
                             probe.end());
  serial.system.subscribe_similarity_window(1, window, 0.4,
                                            sim::Duration::seconds(60));
  pooled.system.subscribe_similarity_window(1, window, 0.4,
                                            sim::Duration::seconds(60));
  serial.sim.run_for(sim::Duration::seconds(1));
  pooled.sim.run_for(sim::Duration::seconds(1));

  for (int round = 0; round < 4; ++round) {
    serial.system.tick_all_nodes();
    pooled.system.tick_all_nodes();
    serial.sim.run_for(sim::Duration::seconds(1));
    pooled.sim.run_for(sim::Duration::seconds(1));
  }
  expect_systems_equal(serial.system, pooled.system);
}

}  // namespace
}  // namespace sdsi::core
