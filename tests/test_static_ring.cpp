// RoutingSystem mechanics on the idealized ring: key routing, direct sends,
// and — most importantly — range multicast coverage in both strategies.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"
#include "routing/static_ring.hpp"

namespace sdsi::routing {
namespace {

struct Delivery {
  NodeIndex at;
  Message msg;
  sim::SimTime when;
};

struct Harness {
  sim::Simulator sim;
  StaticRing ring;
  std::vector<Delivery> deliveries;

  Harness(common::IdSpace space, std::vector<Key> ids)
      : ring(sim, space, std::move(ids)) {
    ring.set_deliver([this](NodeIndex at, const Message& msg) {
      deliveries.push_back({at, msg, sim.now()});
    });
  }

  std::set<NodeIndex> delivered_nodes() const {
    std::set<NodeIndex> nodes;
    for (const Delivery& d : deliveries) {
      nodes.insert(d.at);
    }
    return nodes;
  }
};

// The Figure 1 ring: m = 5, nodes at 1, 8, 11, 14, 20, 23.
std::vector<Key> figure1_ids() { return {1, 8, 11, 14, 20, 23}; }

TEST(StaticRing, OracleMatchesPaperKeyAssignment) {
  Harness h(common::IdSpace(5), figure1_ids());
  // "Keys with identifiers 13 and 17 are assigned to nodes 14 and 20", and
  // key 26 wraps to node 1.
  EXPECT_EQ(h.ring.node_id(h.ring.find_successor_oracle(13)), 14u);
  EXPECT_EQ(h.ring.node_id(h.ring.find_successor_oracle(17)), 20u);
  EXPECT_EQ(h.ring.node_id(h.ring.find_successor_oracle(26)), 1u);
  // Exact hit: key 8 belongs to node 8.
  EXPECT_EQ(h.ring.node_id(h.ring.find_successor_oracle(8)), 8u);
}

TEST(StaticRing, NeighborsFollowRingOrder) {
  Harness h(common::IdSpace(5), figure1_ids());
  const NodeIndex n8 = h.ring.find_successor_oracle(8);
  const NodeIndex n11 = h.ring.find_successor_oracle(11);
  const NodeIndex n1 = h.ring.find_successor_oracle(1);
  const NodeIndex n23 = h.ring.find_successor_oracle(23);
  EXPECT_EQ(h.ring.successor_index(n8), n11);
  EXPECT_EQ(h.ring.predecessor_index(n8), n1);
  EXPECT_EQ(h.ring.successor_index(n23), n1);  // wrap
  EXPECT_EQ(h.ring.predecessor_index(n1), n23);
}

TEST(StaticRing, SendDeliversAtSuccessorWithOneHop) {
  Harness h(common::IdSpace(5), figure1_ids());
  Message msg;
  msg.kind = static_cast<routing::MsgKind>(1);
  h.ring.send(0, 13, std::move(msg));
  h.sim.run_all();
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.ring.node_id(h.deliveries[0].at), 14u);
  EXPECT_EQ(h.deliveries[0].msg.hops, 1);
  EXPECT_DOUBLE_EQ(h.deliveries[0].when.as_millis(), 50.0);
}

TEST(StaticRing, SelfSendIsLocalAndImmediate) {
  Harness h(common::IdSpace(5), figure1_ids());
  const NodeIndex n14 = h.ring.find_successor_oracle(14);
  Message msg;
  msg.kind = static_cast<routing::MsgKind>(1);
  h.ring.send(n14, 13, std::move(msg));  // node 14 covers key 13
  h.sim.run_all();
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.deliveries[0].at, n14);
  EXPECT_EQ(h.deliveries[0].msg.hops, 0);
  EXPECT_DOUBLE_EQ(h.deliveries[0].when.as_millis(), 0.0);
}

TEST(StaticRing, SendDirectTakesOneHop) {
  Harness h(common::IdSpace(5), figure1_ids());
  Message msg;
  msg.kind = static_cast<routing::MsgKind>(2);
  h.ring.send_direct(0, 3, std::move(msg));
  h.sim.run_all();
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.deliveries[0].at, 3u);
  EXPECT_EQ(h.deliveries[0].msg.hops, 1);
}

TEST(StaticRing, MessageMetadataPropagates) {
  Harness h(common::IdSpace(5), figure1_ids());
  Message msg;
  msg.kind = static_cast<routing::MsgKind>(42);
  msg.payload = std::make_shared<const int>(7);
  h.ring.send(0, 17, std::move(msg));
  h.sim.run_all();
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.deliveries[0].msg.kind, static_cast<routing::MsgKind>(42));
  EXPECT_EQ(h.deliveries[0].msg.origin, 0u);
  EXPECT_EQ(h.deliveries[0].msg.target_key, 17u);
  const auto payload = std::any_cast<std::shared_ptr<const int>>(
      h.deliveries[0].msg.payload);
  EXPECT_EQ(*payload, 7);
}

TEST(StaticRing, RangeMulticastPaperExample) {
  // "A message sent to range [10, 19] needs to be delivered at N11, N14 and
  // N20" (Figure 3a: keys K10 and K19).
  Harness h(common::IdSpace(5), figure1_ids());
  Message msg;
  msg.kind = static_cast<routing::MsgKind>(3);
  h.ring.send_range(0, 10, 19, std::move(msg),
                    MulticastStrategy::kSequential);
  h.sim.run_all();
  std::set<Key> ids;
  for (const Delivery& d : h.deliveries) {
    ids.insert(h.ring.node_id(d.at));
  }
  EXPECT_EQ(ids, (std::set<Key>{11, 14, 20}));
}

TEST(StaticRing, RangeMulticastBidirectionalSameCoverage) {
  Harness h(common::IdSpace(5), figure1_ids());
  Message msg;
  msg.kind = static_cast<routing::MsgKind>(3);
  h.ring.send_range(0, 10, 19, std::move(msg),
                    MulticastStrategy::kBidirectional);
  h.sim.run_all();
  std::set<Key> ids;
  for (const Delivery& d : h.deliveries) {
    ids.insert(h.ring.node_id(d.at));
  }
  EXPECT_EQ(ids, (std::set<Key>{11, 14, 20}));
}

TEST(StaticRing, BidirectionalHalvesPropagationDepth) {
  // 16-node ring, range spanning 9 nodes: sequential walks 8 forward hops
  // after the first delivery; bidirectional fans out ~4 in each direction.
  std::vector<Key> ids;
  for (Key i = 0; i < 16; ++i) {
    ids.push_back(i * 16);  // m=8 ring, evenly spaced
  }
  const auto run = [&](MulticastStrategy strategy) {
    Harness h(common::IdSpace(8), ids);
    Message msg;
    msg.kind = static_cast<routing::MsgKind>(1);
    h.ring.send_range(0, 16, 144, std::move(msg), strategy);
    h.sim.run_all();
    double last = 0.0;
    for (const Delivery& d : h.deliveries) {
      last = std::max(last, d.when.as_millis());
    }
    return std::pair{h.deliveries.size(), last};
  };
  const auto [seq_count, seq_time] = run(MulticastStrategy::kSequential);
  const auto [bi_count, bi_time] = run(MulticastStrategy::kBidirectional);
  EXPECT_EQ(seq_count, 9u);
  EXPECT_EQ(bi_count, 9u);
  EXPECT_LT(bi_time, 0.7 * seq_time);
}

TEST(StaticRing, FullCircleRangeReachesEveryNode) {
  std::vector<Key> ids{5, 50, 100, 150, 200, 250};
  Harness h(common::IdSpace(8), ids);
  Message msg;
  msg.kind = static_cast<routing::MsgKind>(1);
  const Key self = h.ring.node_id(2);
  h.ring.send_range(2, h.ring.id_space().wrap(self + 1), self, std::move(msg),
                    MulticastStrategy::kSequential);
  h.sim.run_all();
  EXPECT_EQ(h.delivered_nodes().size(), ids.size());
}

TEST(StaticRing, SingleNodeRangeNoForwarding) {
  Harness h(common::IdSpace(5), figure1_ids());
  Message msg;
  msg.kind = static_cast<routing::MsgKind>(1);
  h.ring.send_range(0, 12, 13, std::move(msg),
                    MulticastStrategy::kSequential);
  h.sim.run_all();
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.ring.node_id(h.deliveries[0].at), 14u);
  EXPECT_FALSE(h.deliveries[0].msg.range_internal);
}

TEST(StaticRing, RangeInternalFlagSetOnForwardedCopies) {
  Harness h(common::IdSpace(5), figure1_ids());
  Message msg;
  msg.kind = static_cast<routing::MsgKind>(1);
  h.ring.send_range(0, 10, 19, std::move(msg),
                    MulticastStrategy::kSequential);
  h.sim.run_all();
  int internal = 0;
  for (const Delivery& d : h.deliveries) {
    internal += d.msg.range_internal ? 1 : 0;
  }
  EXPECT_EQ(internal, 2);  // N14 and N20 receive forwarded copies
}

class RangeCoverageProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RangeCoverageProperty, MulticastCoversExactlyTheOracleNodeSet) {
  // Random rings and random ranges: the delivered node set must equal
  // { successor(k) : k in [lo, hi] }, for both strategies, with exactly one
  // delivery per node.
  common::Pcg32 rng(GetParam(), 17);
  const common::IdSpace space(16);
  const std::size_t n = 3 + rng.bounded(20);
  std::set<Key> unique_ids;
  while (unique_ids.size() < n) {
    unique_ids.insert(space.wrap(rng.next64()));
  }
  std::vector<Key> ids(unique_ids.begin(), unique_ids.end());
  const Key lo = space.wrap(rng.next64());
  const Key hi = space.wrap(lo + rng.bounded(1 << 14));

  // Oracle: nodes covering keys in [lo, hi] == successor(lo) up to
  // successor(hi) along the ring.
  std::set<NodeIndex> expected;
  {
    Harness probe(space, ids);
    NodeIndex current = probe.ring.find_successor_oracle(lo);
    const NodeIndex last = probe.ring.find_successor_oracle(hi);
    expected.insert(current);
    while (current != last) {
      current = probe.ring.successor_index(current);
      expected.insert(current);
    }
  }

  for (const MulticastStrategy strategy :
       {MulticastStrategy::kSequential, MulticastStrategy::kBidirectional}) {
    Harness h(space, ids);
    Message msg;
    msg.kind = static_cast<routing::MsgKind>(1);
    h.ring.send_range(0, lo, hi, std::move(msg), strategy);
    h.sim.run_all();
    EXPECT_EQ(h.delivered_nodes(), expected)
        << "seed=" << GetParam() << " strategy=" << static_cast<int>(strategy)
        << " lo=" << lo << " hi=" << hi;
    EXPECT_EQ(h.deliveries.size(), expected.size()) << "duplicate deliveries";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeCoverageProperty,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(HashNodeIds, DistinctAndInSpace) {
  const common::IdSpace space(10);
  const auto ids = hash_node_ids(500, space, 1);
  std::set<Key> seen(ids.begin(), ids.end());
  EXPECT_EQ(seen.size(), 500u);
  for (const Key id : ids) {
    EXPECT_EQ(id, space.wrap(id));
  }
}

TEST(HashNodeIds, SaltChangesAssignment) {
  const common::IdSpace space(32);
  EXPECT_NE(hash_node_ids(5, space, 1), hash_node_ids(5, space, 2));
}

}  // namespace
}  // namespace sdsi::routing
