// Scheduler-backend determinism gate: the canonical seeded chaos scenario
// (bursty link loss + a crash wave + the self-healing path, as in
// test_chaos.cpp) must be bit-identical under the old binary-heap kernel
// (the SDSI_SIM_HEAP_QUEUE escape hatch) and the calendar-queue kernel —
// the identical event execution order (when, seq) stream, identical
// per-query matched stream sets, and a byte-equal metrics.json.
//
// Runs under both the chaos-smoke and tsan-smoke labels, mirroring
// test_parallel_equivalence.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "core/experiment.hpp"

namespace sdsi::core {
namespace {

ExperimentConfig chaos_config(sim::QueueBackend backend,
                              const std::string& obs_dir) {
  ExperimentConfig config;
  config.num_nodes = 50;
  config.seed = 42;
  config.warmup = sim::Duration::seconds(60);
  config.measure = sim::Duration::seconds(60);
  config.oracle_sample_period = sim::Duration::millis(500);
  fault::GilbertElliottParams burst;
  burst.p_good_to_bad = 0.25 * 0.1 / 0.9;  // ~10% stationary loss
  burst.p_bad_to_good = 0.25;
  config.faults.burst_loss = burst;
  fault::CrashWave wave;
  wave.at = sim::SimTime::zero() + config.warmup + sim::Duration::seconds(10);
  wave.fraction = 0.2;
  wave.down_for = sim::Duration::seconds(20);
  config.faults.crash_waves.push_back(wave);
  config.mbr_acks = true;
  config.response_acks = true;
  config.mbr_refresh_period = sim::Duration::millis(1500);
  config.query_refresh_period = sim::Duration::millis(2500);
  config.drain = sim::Duration::millis(3000);
  config.queue_backend = backend;
  config.obs.dir = obs_dir;
  return config;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct RunDigest {
  // The executed-event stream, folded: count plus an FNV-1a hash over every
  // (when_us, seq) pair in execution order.
  std::uint64_t events = 0;
  std::uint64_t order_hash = 1469598103934665603ull;
  std::map<QueryId, std::set<StreamId>> matched;
  std::uint64_t matches = 0;
  double recall = 0.0;
  std::uint64_t mbr_retries = 0;
  std::uint64_t heals = 0;
  std::string metrics_json;
};

RunDigest run_once(sim::QueueBackend backend, const std::string& obs_dir) {
  Experiment experiment(chaos_config(backend, obs_dir));
  const bool want_calendar = backend == sim::QueueBackend::kCalendar;
  EXPECT_EQ(experiment.simulator().using_calendar_queue(), want_calendar);
  RunDigest digest;
  experiment.simulator().set_execution_probe(
      [&digest](sim::SimTime when, SeqNo seq) {
        ++digest.events;
        const auto mix = [&digest](std::uint64_t v) {
          for (int i = 0; i < 8; ++i) {
            digest.order_hash ^= (v >> (i * 8)) & 0xff;
            digest.order_hash *= 1099511628211ull;
          }
        };
        mix(static_cast<std::uint64_t>(when.count_micros()));
        mix(seq);
      });
  experiment.run();
  for (const auto& [id, record] : experiment.system().client_records()) {
    digest.matched[id] = std::set<StreamId>(record.matched_streams.begin(),
                                            record.matched_streams.end());
  }
  digest.matches = experiment.quality_report().matches_reported;
  const RobustnessReport robustness = experiment.robustness_report();
  digest.recall = robustness.recall;
  digest.mbr_retries = robustness.mbr_retries;
  digest.heals = robustness.heals;
  digest.metrics_json = slurp(obs_dir + "/metrics.json");
  return digest;
}

TEST(SchedulerEquivalence, HeapAndCalendarReplayIdentically) {
  const std::string base = ::testing::TempDir() + "sdsi_sched_eq";
  const RunDigest heap = run_once(sim::QueueBackend::kLegacyHeap, base + "_h");
  const RunDigest calendar =
      run_once(sim::QueueBackend::kCalendar, base + "_c");

  // The scenario must actually exercise the kernel hard, or equality proves
  // nothing: tens of thousands of events, real matches, faults, healing.
  ASSERT_GT(heap.events, 10000u);
  ASSERT_GT(heap.matches, 0u);
  ASSERT_GT(heap.mbr_retries, 0u);  // the healing path really fired
  ASSERT_FALSE(heap.metrics_json.empty());

  // Identical event execution order, event for event.
  EXPECT_EQ(calendar.events, heap.events);
  EXPECT_EQ(calendar.order_hash, heap.order_hash);
  // Identical client-visible results.
  EXPECT_EQ(calendar.matched, heap.matched);
  EXPECT_EQ(calendar.matches, heap.matches);
  EXPECT_EQ(calendar.recall, heap.recall);
  EXPECT_EQ(calendar.mbr_retries, heap.mbr_retries);
  EXPECT_EQ(calendar.heals, heap.heals);
  // Byte equality of the whole export document: the backend must be as
  // unobservable as the worker-lane count.
  EXPECT_EQ(calendar.metrics_json, heap.metrics_json);
}

}  // namespace
}  // namespace sdsi::core
