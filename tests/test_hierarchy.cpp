// The Sec VI-B hierarchical feature-space partitioning extension.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "ext/hierarchy.hpp"

namespace sdsi::ext {
namespace {

dsp::FeatureVector fv(double re, double im = 0.0) {
  return dsp::FeatureVector({dsp::Complex{re, im}});
}

HierarchyConfig config(std::size_t cluster, double slack) {
  HierarchyConfig cfg;
  cfg.cluster_size = cluster;
  cfg.slack = slack;
  return cfg;
}

TEST(Hierarchy, LevelCountIsLogarithmic) {
  EXPECT_EQ(HierarchicalIndex(4, config(4, 0.0)).num_levels(), 1u);
  EXPECT_EQ(HierarchicalIndex(16, config(4, 0.0)).num_levels(), 2u);
  EXPECT_EQ(HierarchicalIndex(64, config(4, 0.0)).num_levels(), 3u);
  EXPECT_EQ(HierarchicalIndex(17, config(4, 0.0)).num_levels(), 3u);
  EXPECT_EQ(HierarchicalIndex(1, config(4, 0.0)).num_levels(), 1u);
}

TEST(Hierarchy, LeaderOfBottomLevelIsClusterHead) {
  HierarchicalIndex index(16, config(4, 0.0));
  EXPECT_EQ(index.leader_of(0, 0), 0u);
  EXPECT_EQ(index.leader_of(3, 0), 0u);
  EXPECT_EQ(index.leader_of(4, 0), 4u);
  EXPECT_EQ(index.leader_of(15, 0), 12u);
  // Top level: a single leader for everyone.
  EXPECT_EQ(index.leader_of(15, 1), 0u);
  EXPECT_EQ(index.leader_of(2, 1), 0u);
}

TEST(Hierarchy, FirstUpdateClimbsToRoot) {
  HierarchicalIndex index(16, config(4, 0.1));
  // Nothing is advertised yet: the first update must inform every level.
  EXPECT_EQ(index.update(5, fv(0.2)), index.num_levels());
}

TEST(Hierarchy, ContainedUpdatesStopClimbing) {
  HierarchicalIndex index(16, config(4, 0.1));
  (void)index.update(5, fv(0.2));
  // A point inside the slack-inflated advertised box is absorbed at the
  // bottom: exactly one message (leaf -> bottom leader).
  EXPECT_EQ(index.update(5, fv(0.21)), 1u);
  // A far jump escapes every box again.
  EXPECT_EQ(index.update(5, fv(0.9)), index.num_levels());
}

TEST(Hierarchy, SlackDampensUpdatePropagation) {
  // Same drifting workload, two slack settings: larger slack must send
  // fewer upward messages (the Sec VI-A/VI-B precision-vs-rate tradeoff).
  common::Pcg32 rng(3, 3);
  HierarchicalIndex tight(64, config(4, 0.001));
  HierarchicalIndex loose(64, config(4, 0.1));
  double walk = 0.0;
  for (int i = 0; i < 2000; ++i) {
    walk += rng.uniform(-0.01, 0.01);
    walk = std::clamp(walk, -0.9, 0.9);
    (void)tight.update(static_cast<NodeIndex>(i % 64), fv(walk));
    (void)loose.update(static_cast<NodeIndex>(i % 64), fv(walk));
  }
  EXPECT_LT(loose.total_update_messages(), tight.total_update_messages());
}

TEST(Hierarchy, AdvertisedBoxesCoverDescendants) {
  common::Pcg32 rng(4, 4);
  HierarchicalIndex index(16, config(4, 0.02));
  std::vector<dsp::FeatureVector> points;
  for (int i = 0; i < 200; ++i) {
    points.push_back(fv(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)));
    (void)index.update(static_cast<NodeIndex>(i % 16), points.back());
  }
  // Root box contains every ingested point.
  const auto root = index.advertised_box(index.num_levels() - 1, 0);
  ASSERT_TRUE(root.has_value());
  for (const auto& p : points) {
    EXPECT_TRUE(root->contains(p));
  }
}

TEST(HierarchyQuery, FindsExactlyTheMatchingLeaves) {
  // No false dismissals: every leaf whose box intersects the ball must be a
  // candidate. (False positives are allowed in principle but with point
  // boxes there are none.)
  HierarchicalIndex index(16, config(4, 0.0));
  for (NodeIndex leaf = 0; leaf < 16; ++leaf) {
    (void)index.update(leaf, fv(-1.0 + 2.0 * leaf / 15.0));
  }
  const auto result = index.query(0, fv(0.0), 0.15);
  // Leaves at coordinates within 0.15 of 0.0: leaves 7 (-0.066) and 8 (0.066)
  // and 6 (-0.2)? -1 + 12/15 = -0.2 exactly, outside. So {7, 8}.
  EXPECT_EQ(result.candidate_leaves, (std::vector<NodeIndex>{7, 8}));
}

TEST(HierarchyQuery, NoFalseDismissalsUnderRandomWorkload) {
  common::Pcg32 rng(9, 9);
  HierarchicalIndex index(32, config(4, 0.05));
  std::vector<std::vector<dsp::FeatureVector>> per_leaf(32);
  for (int i = 0; i < 500; ++i) {
    const auto leaf = static_cast<NodeIndex>(rng.bounded(32));
    const auto point = fv(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    per_leaf[leaf].push_back(point);
    (void)index.update(leaf, point);
  }
  for (int q = 0; q < 50; ++q) {
    const auto center = fv(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    const double radius = rng.uniform(0.05, 0.5);
    const auto result = index.query(
        static_cast<NodeIndex>(rng.bounded(32)), center, radius);
    const std::set<NodeIndex> candidates(result.candidate_leaves.begin(),
                                         result.candidate_leaves.end());
    for (NodeIndex leaf = 0; leaf < 32; ++leaf) {
      const bool truly_matches =
          std::any_of(per_leaf[leaf].begin(), per_leaf[leaf].end(),
                      [&](const dsp::FeatureVector& p) {
                        return p.distance(center) <= radius;
                      });
      if (truly_matches) {
        EXPECT_TRUE(candidates.contains(leaf))
            << "false dismissal at leaf " << leaf << " query " << q;
      }
    }
  }
}

TEST(HierarchyQuery, WideQueryCheaperThanContactingAllNodes) {
  // The whole point of Sec VI-B: a wide query should not need N messages.
  constexpr std::size_t kNodes = 256;
  HierarchicalIndex index(kNodes, config(4, 0.01));
  common::Pcg32 rng(11, 11);
  // Clustered data: most leaves sit far from the probe.
  for (NodeIndex leaf = 0; leaf < kNodes; ++leaf) {
    const double center = leaf < 16 ? 0.0 : 0.7;
    for (int i = 0; i < 5; ++i) {
      (void)index.update(leaf, fv(center + rng.uniform(-0.02, 0.02),
                                  rng.uniform(-0.02, 0.02)));
    }
  }
  const auto result = index.query(3, fv(0.0), 0.3);
  // All 16 near-zero leaves found...
  EXPECT_GE(result.candidate_leaves.size(), 16u);
  // ...without touching anything near the other 240.
  EXPECT_LT(result.messages, kNodes / 2);
}

TEST(HierarchyQuery, NarrowQueryStaysLow) {
  HierarchicalIndex index(64, config(4, 0.0));
  for (NodeIndex leaf = 0; leaf < 64; ++leaf) {
    (void)index.update(leaf, fv(-1.0 + 2.0 * leaf / 63.0));
  }
  const auto narrow = index.query(0, fv(0.5), 0.01);
  const auto wide = index.query(0, fv(0.5), 0.8);
  EXPECT_LT(narrow.messages, wide.messages);
  EXPECT_LT(narrow.candidate_leaves.size(), wide.candidate_leaves.size());
}

TEST(Hierarchy, SingleNodeDegenerateCase) {
  HierarchicalIndex index(1, config(4, 0.0));
  (void)index.update(0, fv(0.3));
  const auto result = index.query(0, fv(0.3), 0.1);
  EXPECT_EQ(result.candidate_leaves, (std::vector<NodeIndex>{0}));
}

}  // namespace
}  // namespace sdsi::ext
