// Window normalizations (Eqs. 1-2) and the correlation <-> distance
// reduction they enable.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "dsp/normalize.hpp"

namespace sdsi::dsp {
namespace {

std::vector<Sample> random_window(std::size_t n, std::uint64_t seed) {
  common::Pcg32 rng(seed, 3);
  std::vector<Sample> window(n);
  for (Sample& x : window) {
    x = rng.uniform(-10.0, 10.0);
  }
  return window;
}

TEST(Mean, SimpleAverage) {
  const std::vector<Sample> w{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(w), 2.5);
}

TEST(L2Norm, Pythagorean) {
  const std::vector<Sample> w{3.0, 4.0};
  EXPECT_DOUBLE_EQ(l2_norm(w), 5.0);
}

TEST(ZNormalize, ResultHasZeroMeanUnitNorm) {
  const auto w = random_window(32, 1);
  const auto z = z_normalize(w);
  EXPECT_NEAR(mean(z), 0.0, 1e-12);
  EXPECT_NEAR(l2_norm(z), 1.0, 1e-12);
}

TEST(ZNormalize, InvariantToAffineTransform) {
  // z-normalization removes offset and positive scale: that is exactly why
  // correlation queries reduce to distance on z-normalized windows.
  const auto w = random_window(16, 2);
  std::vector<Sample> scaled(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    scaled[i] = 3.5 * w[i] + 42.0;
  }
  const auto za = z_normalize(w);
  const auto zb = z_normalize(scaled);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(za[i], zb[i], 1e-12);
  }
}

TEST(ZNormalize, ConstantWindowMapsToZero) {
  const std::vector<Sample> w(8, 5.0);
  const auto z = z_normalize(w);
  for (const Sample x : z) {
    EXPECT_EQ(x, 0.0);
  }
}

TEST(UnitNormalize, ResultOnUnitSphere) {
  const auto w = random_window(20, 3);
  const auto u = unit_normalize(w);
  EXPECT_NEAR(l2_norm(u), 1.0, 1e-12);
}

TEST(UnitNormalize, PreservesDirection) {
  const std::vector<Sample> w{2.0, 0.0, 0.0};
  const auto u = unit_normalize(w);
  EXPECT_DOUBLE_EQ(u[0], 1.0);
  EXPECT_DOUBLE_EQ(u[1], 0.0);
}

TEST(UnitNormalize, ZeroWindowMapsToZero) {
  const std::vector<Sample> w(5, 0.0);
  const auto u = unit_normalize(w);
  for (const Sample x : u) {
    EXPECT_EQ(x, 0.0);
  }
}

TEST(Normalize, DispatchMatchesDirectCalls) {
  const auto w = random_window(12, 4);
  EXPECT_EQ(normalize(w, Normalization::kZNormalize), z_normalize(w));
  EXPECT_EQ(normalize(w, Normalization::kUnitNormalize), unit_normalize(w));
}

TEST(EuclideanDistance, KnownValue) {
  const std::vector<Sample> a{0.0, 0.0};
  const std::vector<Sample> b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(euclidean_distance(a, b), 5.0);
}

TEST(PearsonCorrelation, PerfectAndAnti) {
  const std::vector<Sample> a{1.0, 2.0, 3.0, 4.0};
  std::vector<Sample> b{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson_correlation(a, b), 1.0, 1e-12);
  for (Sample& x : b) {
    x = -x;
  }
  EXPECT_NEAR(pearson_correlation(a, b), -1.0, 1e-12);
}

class CorrelationDistance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorrelationDistance, IdentityHolds) {
  // StatStream identity: ||za - zb||^2 = 2 (1 - corr(a, b)).
  const auto a = random_window(64, GetParam());
  const auto b = random_window(64, GetParam() + 1000);
  const double corr = pearson_correlation(a, b);
  const double dist = euclidean_distance(z_normalize(a), z_normalize(b));
  EXPECT_NEAR(dist * dist, 2.0 * (1.0 - corr), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorrelationDistance,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace sdsi::dsp
