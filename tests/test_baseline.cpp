// The Sec IV-A strawmen: centralized single data center and query flooding.
// They must (a) be functionally correct, and (b) exhibit exactly the
// pathologies the paper argues against.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baseline/centralized.hpp"
#include "baseline/flooding.hpp"
#include "routing/static_ring.hpp"

namespace sdsi::baseline {
namespace {

constexpr std::size_t kWindow = 16;

core::MiddlewareConfig small_config() {
  core::MiddlewareConfig config;
  config.features.window_size = kWindow;
  config.features.num_coefficients = 2;
  config.batching.batch_size = 3;
  config.mbr_lifespan = sim::Duration::seconds(30);
  config.notify_period = sim::Duration::millis(500);
  return config;
}

template <typename System>
struct Harness {
  sim::Simulator sim;
  routing::StaticRing ring;
  System system;

  explicit Harness(std::size_t nodes)
      : ring(sim, common::IdSpace(16),
             routing::hash_node_ids(nodes, common::IdSpace(16), 55)),
        system(ring, small_config()) {
    system.start();
  }

  void run_for(double seconds) {
    sim.run_until(sim.now() + sim::Duration::seconds(seconds));
  }

  void feed_exponential(NodeIndex node, StreamId stream, double gamma,
                        int samples) {
    double value = 1.0;
    for (int i = 0; i < samples; ++i) {
      value *= gamma;
      system.post_stream_value(node, stream, value);
    }
  }

  dsp::FeatureVector exponential_features(double gamma) const {
    std::vector<Sample> window(kWindow);
    double value = 1.0;
    for (Sample& x : window) {
      value *= gamma;
      x = value;
    }
    dsp::FeatureConfig cfg = small_config().features;
    return dsp::extract_features(window, cfg);
  }
};

TEST(Centralized, AnswersSimilarityQueriesCorrectly) {
  Harness<CentralizedSystem> h(8);
  const double gammas[4] = {1.02, 1.10, 1.11, 1.30};
  for (NodeIndex i = 0; i < 4; ++i) {
    h.system.register_stream(i + 1, 100 + i);
    h.feed_exponential(i + 1, 100 + i, gammas[i], 60);
  }
  h.run_for(2.0);
  const core::QueryId id = h.system.subscribe_similarity(
      5, h.exponential_features(1.105), 0.05, sim::Duration::seconds(60));
  h.run_for(5.0);
  const auto* record = h.system.client_record(id);
  ASSERT_NE(record, nullptr);
  // Streams 101 (1.10) and 102 (1.11) sit within the ball; 100 and 103 far.
  EXPECT_TRUE(record->matched_streams.contains(101));
  EXPECT_TRUE(record->matched_streams.contains(102));
  EXPECT_FALSE(record->matched_streams.contains(103));
}

TEST(Centralized, CenterIsTheHotspot) {
  Harness<CentralizedSystem> h(12);
  for (NodeIndex i = 0; i < 12; ++i) {
    h.system.register_stream(i, 200 + i);
  }
  for (int round = 0; round < 80; ++round) {
    for (NodeIndex i = 0; i < 12; ++i) {
      h.feed_exponential(i, 200 + i, 1.05 + 0.01 * i, 1);
    }
  }
  h.run_for(5.0);
  const auto load = h.system.per_node_load(5.0);
  const NodeIndex center = h.system.center();
  const double center_load = load[center];
  double other_max = 0.0;
  double total = 0.0;
  for (NodeIndex i = 0; i < load.size(); ++i) {
    total += load[i];
    if (i != center) {
      other_max = std::max(other_max, load[i]);
    }
  }
  // The paper's core argument: the center absorbs a dominant share.
  EXPECT_GT(center_load, other_max);
  EXPECT_GT(center_load, 0.3 * total);
}

TEST(Centralized, QueriesRouteToTheCenterOnly) {
  Harness<CentralizedSystem> h(8);
  h.system.register_stream(1, 300);
  h.feed_exponential(1, 300, 1.1, 40);
  (void)h.system.subscribe_similarity(6, h.exponential_features(1.1), 0.1,
                                      sim::Duration::seconds(10));
  h.run_for(2.0);
  EXPECT_EQ(h.system.metrics().query().range_internal, 0u);
}

TEST(Flooding, AnswersSimilarityQueriesCorrectly) {
  Harness<FloodingSystem> h(8);
  const double gammas[4] = {1.02, 1.10, 1.11, 1.30};
  for (NodeIndex i = 0; i < 4; ++i) {
    h.system.register_stream(i + 1, 100 + i);
    h.feed_exponential(i + 1, 100 + i, gammas[i], 60);
  }
  h.run_for(2.0);
  const core::QueryId id = h.system.subscribe_similarity(
      5, h.exponential_features(1.105), 0.05, sim::Duration::seconds(60));
  h.run_for(5.0);
  const auto* record = h.system.client_record(id);
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(record->matched_streams.contains(101));
  EXPECT_TRUE(record->matched_streams.contains(102));
  EXPECT_FALSE(record->matched_streams.contains(100));
}

TEST(Flooding, SummariesCostZeroMessages) {
  Harness<FloodingSystem> h(8);
  h.system.register_stream(0, 400);
  h.feed_exponential(0, 400, 1.1, 100);
  h.run_for(2.0);
  EXPECT_EQ(h.system.metrics().mbr().originated, 0u);
  EXPECT_EQ(h.system.metrics().mbr().range_internal, 0u);
}

TEST(Flooding, EveryQueryTouchesAllNodes) {
  constexpr std::size_t kNodes = 10;
  Harness<FloodingSystem> h(kNodes);
  (void)h.system.subscribe_similarity(3, h.exponential_features(1.1), 0.05,
                                      sim::Duration::seconds(10));
  h.run_for(5.0);
  const auto& query = h.system.metrics().query();
  // One original copy + N-1 flooded copies.
  EXPECT_EQ(query.originated, 1u);
  EXPECT_EQ(query.range_internal, kNodes - 1);
  EXPECT_EQ(query.delivered, kNodes);
}

TEST(Flooding, QueryCostScalesLinearlyWithN) {
  auto flood_cost = [](std::size_t nodes) {
    Harness<FloodingSystem> h(nodes);
    (void)h.system.subscribe_similarity(0, h.exponential_features(1.1), 0.05,
                                        sim::Duration::seconds(5));
    h.run_for(static_cast<double>(nodes) * 0.06 + 2.0);  // sequential walk needs time
    return h.system.metrics().query().delivered;
  };
  EXPECT_EQ(flood_cost(8), 8u);
  EXPECT_EQ(flood_cost(24), 24u);
}

}  // namespace
}  // namespace sdsi::baseline
