// metrics.json export: the Json value model round-trips, the emitted
// document carries the sdsi.metrics v2 shape, and the on-disk file written
// by an --obs-dir run parses back to the in-memory document.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/obs_export.hpp"

namespace sdsi::core {
namespace {

ExperimentConfig tiny_obs_config(const std::string& obs_dir) {
  ExperimentConfig config;
  config.num_nodes = 10;
  config.seed = 11;
  config.warmup = sim::Duration::seconds(20);
  config.measure = sim::Duration::seconds(15);
  config.obs.dir = obs_dir;
  config.obs.window = sim::Duration::millis(500);
  return config;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Json, ScalarsAndContainersRoundTrip) {
  obs::Json doc = obs::Json::object();
  doc["int"] = 42;
  doc["neg"] = std::int64_t{-7};
  doc["frac"] = 0.1;
  doc["text"] = "with \"quotes\" and \\slashes\\ and\nnewlines";
  doc["flag"] = true;
  doc["nothing"] = obs::Json();
  obs::Json list = obs::Json::array();
  list.push_back(1);
  list.push_back(2.5);
  list.push_back("three");
  doc["list"] = std::move(list);

  std::string error;
  const auto parsed = obs::Json::parse(doc.dump(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->dump(), doc.dump());
  // Pretty-printing is a formatting choice, not a semantic one.
  const auto pretty = obs::Json::parse(doc.dump(2), &error);
  ASSERT_TRUE(pretty.has_value()) << error;
  EXPECT_EQ(pretty->dump(), doc.dump());
  // Values and insertion order both survive.
  EXPECT_EQ(parsed->find("int")->as_int(), 42);
  EXPECT_DOUBLE_EQ(parsed->find("frac")->as_number(), 0.1);
  EXPECT_EQ(parsed->find("text")->as_string(),
            "with \"quotes\" and \\slashes\\ and\nnewlines");
  EXPECT_EQ(parsed->members().front().first, "int");
  EXPECT_EQ((*parsed->find("list"))[2].as_string(), "three");
}

TEST(Json, MalformedInputIsRejectedWithAnError) {
  for (const char* bad : {"{", "[1,", "{\"a\": }", "tru", "\"unterminated",
                          "{\"a\":1} trailing", "01", "nan"}) {
    std::string error;
    EXPECT_FALSE(obs::Json::parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(MetricsExport, DocumentCarriesTheV4Shape) {
  const std::string dir =
      ::testing::TempDir() + "sdsi_metrics_export_shape";
  Experiment exp(tiny_obs_config(dir));
  exp.run();

  const obs::Json doc = metrics_to_json(exp);
  EXPECT_EQ(doc.find("schema_version")->as_int(), 4);
  EXPECT_EQ(doc.find("kind")->as_string(), "sdsi.metrics");
  // v4: the strategy name leads the run section.
  EXPECT_EQ(doc.find("run")->members().front().first, "strategy");
  EXPECT_EQ(doc.find("run")->find("strategy")->as_string(), "dft");
  EXPECT_EQ(doc.find("run")->find("nodes")->as_int(), 10);
  EXPECT_EQ(doc.find("run")->find("substrate")->as_string(), "chord");
  EXPECT_EQ(doc.find("run")->find("replication_factor")->as_int(), 0);
  EXPECT_EQ(doc.find("run")->find("overload")->as_bool(), false);
  EXPECT_EQ(doc.find("load")->find("per_component")->members().size(), 9u);
  EXPECT_EQ(doc.find("load")->find("per_node_total")->size(), 10u);
  EXPECT_EQ(doc.find("load")->find("per_node_work")->size(), 10u);
  for (const char* category : {"mbr", "query", "response", "neighbor",
                               "location", "control", "replication"}) {
    EXPECT_NE(doc.find("categories")->find(category), nullptr) << category;
  }
  // v3 drop causes are always present (zero in a benign run).
  EXPECT_EQ(doc.find("drops")->find("shed_overload")->as_int(), 0);
  EXPECT_EQ(doc.find("drops")->find("backpressure")->as_int(), 0);
  EXPECT_NE(doc.find("robustness")->find("heal_latency_ms"), nullptr);
  EXPECT_NE(doc.find("robustness")->find("failover_latency_ms"), nullptr);
  EXPECT_NE(doc.find("robustness")->find("replica_puts"), nullptr);
  // v3 overload-survival section (zeros without config.overload, but the
  // imbalance ratios are measured on every run).
  EXPECT_EQ(doc.find("robustness")->find("hot_arc_splits")->as_int(), 0);
  EXPECT_EQ(doc.find("robustness")->find("shed_mbrs")->as_int(), 0);
  EXPECT_EQ(doc.find("robustness")->find("backpressure_drops")->as_int(), 0);
  const obs::Json* imbalance = doc.find("robustness")->find("imbalance");
  ASSERT_NE(imbalance, nullptr);
  EXPECT_GT(imbalance->find("message_p99_over_median")->as_number(), 0.0);
  EXPECT_NE(imbalance->find("work_p99_over_median"), nullptr);
  // The registry was attached, so the windowed series section is present
  // and every series name is well-formed.
  const obs::Json* timeseries = doc.find("timeseries");
  ASSERT_NE(timeseries, nullptr);
  EXPECT_EQ(timeseries->find("window_ms")->as_number(), 500.0);
  EXPECT_GT(timeseries->find("series")->size(), 0u);

  std::filesystem::remove_all(dir);
}

TEST(MetricsExport, FileOnDiskParsesBackToTheSameDocument) {
  const std::string dir =
      ::testing::TempDir() + "sdsi_metrics_export_roundtrip";
  Experiment exp(tiny_obs_config(dir));
  exp.run();  // writes dir/metrics.json via the --obs-dir path

  const std::string text = slurp(dir + "/metrics.json");
  ASSERT_FALSE(text.empty());
  std::string error;
  const auto from_disk = obs::Json::parse(text, &error);
  ASSERT_TRUE(from_disk.has_value()) << error;

  // Disk -> parse -> dump must agree with the in-memory document: the
  // serializer's number formatting round-trips exactly.
  const obs::Json in_memory = metrics_to_json(exp);
  EXPECT_EQ(from_disk->dump(), in_memory.dump());
  EXPECT_EQ(from_disk->dump(2) + "\n", text);

  std::filesystem::remove_all(dir);
}

TEST(MetricsExport, HistogramJsonMatchesTheHistogram) {
  obs::LogHistogram hist(1.0, 2.0, 8);
  for (const double x : {0.5, 3.0, 3.5, 40.0}) {
    hist.add(x);
  }
  const obs::Json doc = histogram_to_json(hist);
  EXPECT_EQ(doc.find("count")->as_int(), 4);
  EXPECT_DOUBLE_EQ(doc.find("sum")->as_number(), 47.0);
  EXPECT_DOUBLE_EQ(doc.find("min")->as_number(), 0.5);
  EXPECT_DOUBLE_EQ(doc.find("max")->as_number(), 40.0);
  // Only occupied buckets are emitted, each as [low, high, count].
  const obs::Json& buckets = *doc.find("buckets");
  ASSERT_EQ(buckets.size(), 3u);
  double total = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    ASSERT_EQ(buckets[i].size(), 3u);
    EXPECT_LT(buckets[i][0].as_number(), buckets[i][1].as_number());
    total += buckets[i][2].as_number();
  }
  EXPECT_DOUBLE_EQ(total, 4.0);
}

}  // namespace
}  // namespace sdsi::core
