// Chord's iterative lookup style: same destinations as recursive routing,
// roughly double the transmissions and latency, origin-driven.
#include <gtest/gtest.h>

#include "chord/network.hpp"
#include "common/rng.hpp"
#include "core/metrics.hpp"
#include "routing/static_ring.hpp"

namespace sdsi::chord {
namespace {

using routing::Message;

struct Harness {
  sim::Simulator sim;
  ChordNetwork net;
  core::MetricsCollector metrics;
  std::vector<std::pair<NodeIndex, Message>> deliveries;
  std::vector<double> delivery_times_ms;

  Harness(LookupStyle style, std::size_t nodes, unsigned bits = 16)
      : net(sim,
            [&] {
              ChordConfig config;
              config.id_bits = bits;
              config.lookup_style = style;
              return config;
            }()),
        metrics(nodes) {
    net.bootstrap(routing::hash_node_ids(nodes, common::IdSpace(bits), 3));
    net.set_metrics_hook(&metrics);
    net.set_deliver([this](NodeIndex at, const Message& msg) {
      deliveries.emplace_back(at, msg);
      delivery_times_ms.push_back(sim.now().as_millis());
    });
  }
};

TEST(IterativeLookup, DeliversToTheSameNodesAsRecursive) {
  Harness recursive(LookupStyle::kRecursive, 20);
  Harness iterative(LookupStyle::kIterative, 20);
  common::Pcg32 rng(1, 1);
  for (int i = 0; i < 200; ++i) {
    const Key key = recursive.net.id_space().wrap(rng.next64());
    Message a;
    a.kind = static_cast<routing::MsgKind>(1);
    recursive.net.send(0, key, std::move(a));
    Message b;
    b.kind = static_cast<routing::MsgKind>(1);
    iterative.net.send(0, key, std::move(b));
  }
  recursive.sim.run_all();
  iterative.sim.run_all();
  ASSERT_EQ(recursive.deliveries.size(), iterative.deliveries.size());
  for (std::size_t i = 0; i < recursive.deliveries.size(); ++i) {
    EXPECT_EQ(recursive.deliveries[i].first, iterative.deliveries[i].first);
  }
}

TEST(IterativeLookup, CostsRoughlyTwiceTheTransmissions) {
  Harness recursive(LookupStyle::kRecursive, 50);
  Harness iterative(LookupStyle::kIterative, 50);
  common::Pcg32 rng(2, 2);
  double recursive_hops = 0.0;
  double iterative_hops = 0.0;
  constexpr int kSends = 300;
  for (int i = 0; i < kSends; ++i) {
    const Key key = recursive.net.id_space().wrap(rng.next64());
    Message a;
    a.kind = static_cast<routing::MsgKind>(1);
    recursive.net.send(0, key, std::move(a));
    Message b;
    b.kind = static_cast<routing::MsgKind>(1);
    iterative.net.send(0, key, std::move(b));
  }
  recursive.sim.run_all();
  iterative.sim.run_all();
  for (const auto& [at, msg] : recursive.deliveries) {
    recursive_hops += msg.hops;
  }
  for (const auto& [at, msg] : iterative.deliveries) {
    iterative_hops += msg.hops;
  }
  // Iterative: 2 per resolved hop + 1 delivery vs recursive: 1 per hop.
  EXPECT_GT(iterative_hops, 1.5 * recursive_hops);
  EXPECT_LT(iterative_hops, 2.5 * recursive_hops + kSends);
}

TEST(IterativeLookup, LatencyDoublesToo) {
  Harness recursive(LookupStyle::kRecursive, 50);
  Harness iterative(LookupStyle::kIterative, 50);
  common::Pcg32 rng(3, 3);
  double recursive_total = 0.0;
  double iterative_total = 0.0;
  for (int i = 0; i < 100; ++i) {
    const Key key = recursive.net.id_space().wrap(rng.next64());
    Message a;
    a.kind = static_cast<routing::MsgKind>(1);
    recursive.net.send(5, key, std::move(a));
    recursive.sim.run_all();
    recursive_total += recursive.delivery_times_ms.back();
    Message b;
    b.kind = static_cast<routing::MsgKind>(1);
    iterative.net.send(5, key, std::move(b));
    iterative.sim.run_all();
    iterative_total += iterative.delivery_times_ms.back();
  }
  EXPECT_GT(iterative_total, 1.5 * recursive_total);
}

TEST(IterativeLookup, LocalKeyIsFree) {
  Harness h(LookupStyle::kIterative, 10);
  // Find a node and a key it covers.
  const NodeIndex node = 3;
  const Key key = h.net.node_id(node);  // a node covers its own id
  Message msg;
  msg.kind = static_cast<routing::MsgKind>(1);
  h.net.send(node, key, std::move(msg));
  h.sim.run_all();
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.deliveries[0].first, node);
  EXPECT_EQ(h.deliveries[0].second.hops, 0);
  EXPECT_DOUBLE_EQ(h.delivery_times_ms[0], 0.0);
}

TEST(IterativeLookup, TransitChargedAtProbedNodes) {
  Harness h(LookupStyle::kIterative, 30);
  common::Pcg32 rng(4, 4);
  for (int i = 0; i < 100; ++i) {
    Message msg;
    msg.kind = core::MsgKind::kMbrUpdate;
    h.net.send(0, h.net.id_space().wrap(rng.next64()), std::move(msg));
  }
  h.sim.run_all();
  EXPECT_GT(h.metrics.mbr().transit, 0u);
  EXPECT_EQ(h.metrics.mbr().delivered, 100u);
}

TEST(IterativeLookup, WorksWithRangeMulticast) {
  Harness h(LookupStyle::kIterative, 12);
  Message msg;
  msg.kind = static_cast<routing::MsgKind>(1);
  const Key lo = 1000;
  const Key hi = 20000;
  h.net.send_range(0, lo, hi, std::move(msg),
                   routing::MulticastStrategy::kSequential);
  h.sim.run_all();
  // Every node covering a key in [lo, hi] must have been delivered once.
  std::size_t expected = 1;
  NodeIndex current = h.net.find_successor_oracle(lo);
  const NodeIndex last = h.net.find_successor_oracle(hi);
  while (current != last) {
    current = h.net.successor_index(current);
    ++expected;
  }
  EXPECT_EQ(h.deliveries.size(), expected);
}

}  // namespace
}  // namespace sdsi::chord
