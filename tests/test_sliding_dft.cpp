// Incremental sliding-window DFT (Eq. 5) against recomputation from scratch.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "dsp/dft.hpp"
#include "dsp/sliding_dft.hpp"

namespace sdsi::dsp {
namespace {

std::vector<Complex> reference_coefficients(const std::vector<Sample>& window,
                                            std::size_t k) {
  const auto full = naive_dft(window);
  return std::vector<Complex>(full.begin(),
                              full.begin() + static_cast<std::ptrdiff_t>(k));
}

TEST(SlidingDft, EmptyWindowHasZeroCoefficients) {
  SlidingDft dft(8, 3);
  EXPECT_FALSE(dft.full());
  for (const Complex& c : dft.coefficients()) {
    EXPECT_EQ(c, (Complex{0.0, 0.0}));
  }
}

TEST(SlidingDft, PushReturnsEvictedSample) {
  SlidingDft dft(3, 1);
  EXPECT_EQ(dft.push(1.0), 0.0);  // zero-padded prefix
  EXPECT_EQ(dft.push(2.0), 0.0);
  EXPECT_EQ(dft.push(3.0), 0.0);
  EXPECT_EQ(dft.push(4.0), 1.0);  // window full: oldest comes back out
  EXPECT_EQ(dft.push(5.0), 2.0);
}

TEST(SlidingDft, WindowReturnsArrivalOrder) {
  SlidingDft dft(4, 1);
  for (const Sample x : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) {
    dft.push(x);
  }
  EXPECT_EQ(dft.window(), (std::vector<Sample>{3.0, 4.0, 5.0, 6.0}));
}

TEST(SlidingDft, FullAfterWindowSizePushes) {
  SlidingDft dft(5, 2);
  for (int i = 0; i < 4; ++i) {
    dft.push(1.0);
    EXPECT_FALSE(dft.full());
  }
  dft.push(1.0);
  EXPECT_TRUE(dft.full());
  EXPECT_EQ(dft.samples_seen(), 5u);
}

TEST(SlidingDft, PrefillMatchesZeroPaddedWindow) {
  // Mid-fill, coefficients must equal the DFT of [0, ..., 0, x1, ..., xt].
  SlidingDft dft(8, 4);
  std::vector<Sample> padded(8, 0.0);
  common::Pcg32 rng(5, 5);
  for (int t = 0; t < 5; ++t) {
    const Sample x = rng.uniform(-1.0, 1.0);
    // The conceptual window slides: drop padded[0], append x.
    padded.erase(padded.begin());
    padded.push_back(x);
    dft.push(x);
    const auto expected = reference_coefficients(padded, 4);
    const auto got = dft.coefficients();
    for (std::size_t f = 0; f < 4; ++f) {
      ASSERT_NEAR(std::abs(got[f] - expected[f]), 0.0, 1e-10)
          << "t=" << t << " f=" << f;
    }
  }
}

class SlidingDftParams
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(SlidingDftParams, TracksNaiveRecomputeExactly) {
  const auto [window, k] = GetParam();
  SlidingDft dft(window, k);
  common::Pcg32 rng(static_cast<std::uint64_t>(window), k);
  for (std::size_t i = 0; i < window * 4; ++i) {
    dft.push(rng.uniform(-5.0, 5.0));
  }
  const auto expected = reference_coefficients(dft.window(), k);
  const auto got = dft.coefficients();
  for (std::size_t f = 0; f < k; ++f) {
    EXPECT_NEAR(std::abs(got[f] - expected[f]), 0.0, 1e-9)
        << "window=" << window << " k=" << k << " f=" << f;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SlidingDftParams,
    ::testing::Values(std::tuple{2, 1}, std::tuple{3, 3}, std::tuple{8, 3},
                      std::tuple{16, 5}, std::tuple{32, 4}, std::tuple{100, 7},
                      std::tuple{128, 3}));

TEST(SlidingDft, PushSpanBitIdenticalToRepeatedPush) {
  // The batched path must produce the exact same floating-point results as
  // one-at-a-time pushes, across chunking boundaries (spans longer than the
  // internal 256-sample staging buffer) and ragged split points.
  for (const std::size_t window : {8u, 100u, 128u}) {
    SlidingDft one_by_one(window, 4);
    SlidingDft spanned(window, 4);
    common::Pcg32 rng(window, 33);
    std::vector<Sample> batch(1000);
    for (Sample& x : batch) {
      x = rng.uniform(-5.0, 5.0);
    }
    for (const Sample x : batch) {
      one_by_one.push(x);
    }
    // Ragged splits: 1, 7, 255, 256, 257, rest.
    std::span<const Sample> rest(batch);
    for (const std::size_t split : {1u, 7u, 255u, 256u, 257u}) {
      spanned.push_span(rest.first(split));
      rest = rest.subspan(split);
    }
    spanned.push_span(rest);

    ASSERT_EQ(one_by_one.samples_seen(), spanned.samples_seen());
    const auto a = one_by_one.coefficients();
    const auto b = spanned.coefficients();
    for (std::size_t f = 0; f < a.size(); ++f) {
      EXPECT_EQ(a[f].real(), b[f].real()) << "window=" << window << " f=" << f;
      EXPECT_EQ(a[f].imag(), b[f].imag()) << "window=" << window << " f=" << f;
    }
    EXPECT_EQ(one_by_one.window(), spanned.window());
  }
}

TEST(SlidingDft, PushSpanReportsEvictedSamples) {
  SlidingDft dft(4, 2);
  const std::vector<Sample> first{1.0, 2.0, 3.0, 4.0};
  std::vector<Sample> evicted(first.size(), -1.0);
  dft.push_span(first, evicted);
  EXPECT_EQ(evicted, (std::vector<Sample>{0.0, 0.0, 0.0, 0.0}));
  const std::vector<Sample> second{5.0, 6.0};
  dft.push_span(second, evicted);
  EXPECT_EQ(evicted[0], 1.0);
  EXPECT_EQ(evicted[1], 2.0);
}

TEST(SlidingDft, DriftStaysBoundedOverLongRuns) {
  // 100k pushes without re-anchoring: error must stay tiny (the rotation
  // factors have unit magnitude, so error growth is additive, not
  // exponential).
  SlidingDft dft(64, 4);
  common::Pcg32 rng(77, 1);
  for (int i = 0; i < 100000; ++i) {
    dft.push(rng.uniform(-1.0, 1.0));
  }
  const auto expected = reference_coefficients(dft.window(), 4);
  const auto got = dft.coefficients();
  for (std::size_t f = 0; f < 4; ++f) {
    EXPECT_NEAR(std::abs(got[f] - expected[f]), 0.0, 1e-7) << "f=" << f;
  }
}

TEST(SlidingDft, RecomputeExactResetsDrift) {
  SlidingDft dft(32, 3);
  common::Pcg32 rng(78, 1);
  for (int i = 0; i < 1000; ++i) {
    dft.push(rng.uniform(-1.0, 1.0));
  }
  dft.recompute_exact();
  const auto expected = reference_coefficients(dft.window(), 3);
  const auto got = dft.coefficients();
  for (std::size_t f = 0; f < 3; ++f) {
    EXPECT_NEAR(std::abs(got[f] - expected[f]), 0.0, 1e-12);
  }
}

TEST(SlidingDft, ConstantInputGivesPureDc) {
  SlidingDft dft(16, 4);
  for (int i = 0; i < 32; ++i) {
    dft.push(2.5);
  }
  const auto got = dft.coefficients();
  EXPECT_NEAR(got[0].real(), 2.5 * std::sqrt(16.0), 1e-9);
  for (std::size_t f = 1; f < 4; ++f) {
    EXPECT_NEAR(std::abs(got[f]), 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace sdsi::dsp
