// MetricsRegistry: lazy window rollover for counters/gauges/histograms and
// the bounded ring buffer's non-silent eviction.
#include <gtest/gtest.h>

#include "obs/timeseries.hpp"
#include "sim/simulator.hpp"

namespace sdsi::obs {
namespace {

sim::SimTime at_ms(long long ms) {
  return sim::SimTime::zero() + sim::Duration::millis(ms);
}

struct Harness {
  sim::Simulator sim;
  MetricsRegistry registry;

  Harness()
      : registry(&sim, {.window = sim::Duration::millis(100),
                        .ring_capacity = 8}) {}

  void at(long long ms, std::function<void()> fn) {
    sim.schedule_at(at_ms(ms), std::move(fn));
  }
};

TEST(TimeSeries, RingEvictsOldestAndCountsIt) {
  TimeSeries series(4);
  for (std::int64_t w = 0; w < 6; ++w) {
    series.append({w, static_cast<double>(w) * 10.0});
  }
  EXPECT_EQ(series.size(), 4u);
  EXPECT_EQ(series.evicted(), 2u);
  // at(0) is the oldest retained point: windows 2..5 survive.
  EXPECT_EQ(series.at(0).window, 2);
  EXPECT_EQ(series.at(3).window, 5);
  EXPECT_DOUBLE_EQ(series.at(0).value, 20.0);
}

TEST(Registry, CounterRollsWindowsLazily) {
  Harness h;
  Counter& c = h.registry.counter("x");
  h.at(10, [&] { c.add(1.0); });
  h.at(50, [&] { c.add(1.0); });   // still window 0
  h.at(150, [&] { c.add(1.0); });  // first update in window 1 closes window 0
  h.at(310, [&] { c.add(2.0); });  // window 3 — window 2 had no activity
  h.sim.run_all();

  // The open window (3) is not in the series until flushed.
  EXPECT_EQ(c.series().size(), 2u);
  h.registry.flush();
  ASSERT_EQ(c.series().size(), 3u);
  EXPECT_EQ(c.series().at(0).window, 0);
  EXPECT_DOUBLE_EQ(c.series().at(0).value, 2.0);
  EXPECT_EQ(c.series().at(1).window, 1);
  EXPECT_DOUBLE_EQ(c.series().at(1).value, 1.0);
  // Quiet windows produce no point (series are sparse): window 2 is absent.
  EXPECT_EQ(c.series().at(2).window, 3);
  EXPECT_DOUBLE_EQ(c.series().at(2).value, 2.0);
  // total() is the exact cumulative sum regardless of windowing.
  EXPECT_DOUBLE_EQ(c.total(), 5.0);
}

TEST(Registry, GaugeKeepsEachWindowsFinalValue) {
  Harness h;
  Gauge& g = h.registry.gauge("level");
  h.at(10, [&] { g.set(5.0); });
  h.at(90, [&] { g.set(7.0); });   // last write in window 0 wins
  h.at(250, [&] { g.set(9.0); });  // window 2
  h.sim.run_all();
  h.registry.flush();

  ASSERT_EQ(g.series().size(), 2u);
  EXPECT_EQ(g.series().at(0).window, 0);
  EXPECT_DOUBLE_EQ(g.series().at(0).value, 7.0);
  EXPECT_EQ(g.series().at(1).window, 2);
  EXPECT_DOUBLE_EQ(g.series().at(1).value, 9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
}

TEST(Registry, HistogramSplitsCountAndSumPerWindow) {
  Harness h;
  HistogramMetric& m = h.registry.histogram("lat");
  h.at(20, [&] { m.add(4.0); });
  h.at(30, [&] { m.add(6.0); });
  h.at(120, [&] { m.add(10.0); });
  h.sim.run_all();
  h.registry.flush();

  ASSERT_EQ(m.count_series().size(), 2u);
  EXPECT_EQ(m.count_series().at(0).window, 0);
  EXPECT_DOUBLE_EQ(m.count_series().at(0).value, 2.0);
  EXPECT_DOUBLE_EQ(m.sum_series().at(0).value, 10.0);
  EXPECT_DOUBLE_EQ(m.count_series().at(1).value, 1.0);
  EXPECT_DOUBLE_EQ(m.sum_series().at(1).value, 10.0);
  // The cumulative histogram sees every sample, across all windows.
  EXPECT_EQ(m.histogram().count(), 3u);
  EXPECT_DOUBLE_EQ(m.histogram().sum(), 20.0);
}

TEST(Registry, LongRunsEvictButKeepExactTotals) {
  Harness h;
  Counter& c = h.registry.counter("busy");
  // 20 active windows into a ring of 8: 12 evictions, exact total survives.
  for (long long w = 0; w < 20; ++w) {
    h.at(w * 100 + 1, [&] { c.add(1.0); });
  }
  h.sim.run_all();
  h.registry.flush();
  EXPECT_EQ(c.series().size(), 8u);
  EXPECT_EQ(c.series().evicted(), 12u);
  EXPECT_EQ(c.series().at(0).window, 12);  // oldest retained
  EXPECT_DOUBLE_EQ(c.total(), 20.0);
}

TEST(Registry, NamedAccessorsReturnTheSameInstance) {
  Harness h;
  Counter& a = h.registry.counter("same");
  Counter& b = h.registry.counter("same");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(h.registry.counters().size(), 1u);
  // flush() is idempotent: no activity means no extra points.
  h.registry.flush();
  h.registry.flush();
  EXPECT_EQ(a.series().size(), 0u);
}

TEST(Registry, CurrentWindowTracksTheClock) {
  Harness h;
  EXPECT_EQ(h.registry.current_window(), 0);
  bool checked = false;
  h.at(730, [&] {
    EXPECT_EQ(h.registry.current_window(), 7);
    checked = true;
  });
  h.sim.run_all();
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace sdsi::obs
