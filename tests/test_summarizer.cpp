// The incremental per-stream summarizer: O(k)-per-sample features must match
// the batch pipeline (normalize whole window, DFT, slice) exactly.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "streams/summarizer.hpp"

namespace sdsi::streams {
namespace {

dsp::FeatureConfig config(std::size_t w, std::size_t k,
                          dsp::Normalization norm) {
  dsp::FeatureConfig cfg;
  cfg.window_size = w;
  cfg.num_coefficients = k;
  cfg.normalization = norm;
  return cfg;
}

TEST(StreamSummarizer, NotReadyUntilWindowFull) {
  StreamSummarizer s(config(8, 2, dsp::Normalization::kZNormalize));
  for (int i = 0; i < 7; ++i) {
    s.push(static_cast<Sample>(i));
    EXPECT_FALSE(s.ready());
    EXPECT_FALSE(s.features().has_value());
  }
  s.push(7.0);
  EXPECT_TRUE(s.ready());
  EXPECT_TRUE(s.features().has_value());
}

TEST(StreamSummarizer, ConstantWindowHasNoFeatures) {
  StreamSummarizer s(config(8, 2, dsp::Normalization::kZNormalize));
  for (int i = 0; i < 20; ++i) {
    s.push(3.0);
  }
  EXPECT_TRUE(s.ready());
  EXPECT_FALSE(s.features().has_value());  // degenerate direction
}

TEST(StreamSummarizer, ZeroWindowHasNoUnitFeatures) {
  StreamSummarizer s(config(8, 2, dsp::Normalization::kUnitNormalize));
  for (int i = 0; i < 20; ++i) {
    s.push(0.0);
  }
  EXPECT_FALSE(s.features().has_value());
}

TEST(StreamSummarizer, MeanAndDenominator) {
  StreamSummarizer s(config(4, 1, dsp::Normalization::kZNormalize));
  for (const Sample x : {1.0, 2.0, 3.0, 4.0}) {
    s.push(x);
  }
  EXPECT_DOUBLE_EQ(s.window_mean(), 2.5);
  // ||x - mean|| = sqrt(1.5^2 + 0.5^2 + 0.5^2 + 1.5^2) = sqrt(5).
  EXPECT_NEAR(s.normalization_denominator(), std::sqrt(5.0), 1e-12);
}

class SummarizerMatchesBatch
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, dsp::Normalization>> {};

TEST_P(SummarizerMatchesBatch, IncrementalEqualsExtractFeatures) {
  const auto [w, k, norm] = GetParam();
  const dsp::FeatureConfig cfg = config(w, k, norm);
  StreamSummarizer s(cfg);
  common::Pcg32 rng(w * 31 + k, 6);
  Sample value = 0.0;
  for (std::size_t i = 0; i < w * 3 + 5; ++i) {
    value += rng.uniform(-1.0, 1.0);
    s.push(value);
  }
  const auto incremental = s.features();
  ASSERT_TRUE(incremental.has_value());
  const auto batch = dsp::extract_features(s.raw_window(), cfg);
  ASSERT_EQ(incremental->size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_NEAR(std::abs((*incremental)[i] - batch[i]), 0.0, 1e-9)
        << "w=" << w << " k=" << k << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SummarizerMatchesBatch,
    ::testing::Combine(::testing::Values(4, 8, 32, 128),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(dsp::Normalization::kZNormalize,
                                         dsp::Normalization::kUnitNormalize)));

TEST(StreamSummarizer, ReanchoringKeepsFeaturesContinuous) {
  const dsp::FeatureConfig cfg = config(16, 2, dsp::Normalization::kZNormalize);
  StreamSummarizer with_anchor(cfg);
  StreamSummarizer without_anchor(cfg);
  with_anchor.set_reanchor_interval(64);
  without_anchor.set_reanchor_interval(0);
  common::Pcg32 rng(5, 7);
  for (int i = 0; i < 1000; ++i) {
    const Sample x = rng.uniform(-1.0, 1.0);
    with_anchor.push(x);
    without_anchor.push(x);
  }
  const auto a = with_anchor.features();
  const auto b = without_anchor.features();
  ASSERT_TRUE(a.has_value() && b.has_value());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_NEAR(std::abs((*a)[i] - (*b)[i]), 0.0, 1e-9);
  }
}

TEST(StreamSummarizer, PushSpanBitIdenticalToRepeatedPush) {
  // The batched ingestion path must match one-at-a-time pushes exactly,
  // including where drift re-anchoring fires (interval 64 here, crossed
  // several times mid-span).
  const dsp::FeatureConfig cfg = config(16, 2, dsp::Normalization::kZNormalize);
  StreamSummarizer one_by_one(cfg);
  StreamSummarizer spanned(cfg);
  one_by_one.set_reanchor_interval(64);
  spanned.set_reanchor_interval(64);
  common::Pcg32 rng(21, 9);
  std::vector<Sample> batch(700);
  for (Sample& x : batch) {
    x = rng.uniform(-2.0, 2.0);
  }
  for (const Sample x : batch) {
    one_by_one.push(x);
  }
  spanned.push_span(batch);

  EXPECT_EQ(one_by_one.samples_seen(), spanned.samples_seen());
  EXPECT_EQ(one_by_one.window_mean(), spanned.window_mean());
  EXPECT_EQ(one_by_one.normalization_denominator(),
            spanned.normalization_denominator());
  const auto a = one_by_one.features();
  const auto b = spanned.features();
  ASSERT_TRUE(a.has_value() && b.has_value());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].real(), (*b)[i].real()) << "i=" << i;
    EXPECT_EQ((*a)[i].imag(), (*b)[i].imag()) << "i=" << i;
  }
}

TEST(StreamSummarizer, FeaturesLiveOnUnitBall) {
  StreamSummarizer s(config(32, 3, dsp::Normalization::kZNormalize));
  common::Pcg32 rng(11, 3);
  Sample value = 0.0;
  for (int i = 0; i < 200; ++i) {
    value += rng.uniform(-1.0, 1.0);
    s.push(value);
    if (const auto fv = s.features()) {
      double norm_sq = 0.0;
      for (const auto& c : fv->coefficients()) {
        norm_sq += std::norm(c);
      }
      EXPECT_LE(norm_sq, 1.0 + 1e-9);
      EXPECT_LE(std::abs(fv->routing_coordinate()), 1.0);
    }
  }
}

}  // namespace
}  // namespace sdsi::streams
