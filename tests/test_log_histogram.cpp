// LogHistogram: exact bucket boundaries, overflow behavior, and quantile
// estimates (the distribution backbone of the observability layer).
#include <gtest/gtest.h>

#include "obs/log_histogram.hpp"

namespace sdsi::obs {
namespace {

// Power-of-two geometry keeps every boundary exact in floating point, so
// boundary assertions are strict equalities, not tolerances.
LogHistogram pow2_hist() { return LogHistogram(1.0, 2.0, 8); }

TEST(LogHistogram, BucketBoundariesArePinned) {
  const LogHistogram h = pow2_hist();
  // Bucket 0 is [0, min); bucket i >= 1 is [min * g^(i-1), min * g^i).
  EXPECT_DOUBLE_EQ(h.bucket_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_high(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_low(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_high(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_low(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_high(4), 16.0);

  // A boundary value belongs to the bucket it opens (ranges are [low, high)).
  EXPECT_EQ(h.bucket_index(0.0), 0u);
  EXPECT_EQ(h.bucket_index(0.999), 0u);
  EXPECT_EQ(h.bucket_index(1.0), 1u);
  EXPECT_EQ(h.bucket_index(2.0), 2u);
  EXPECT_EQ(h.bucket_index(3.999), 2u);
  EXPECT_EQ(h.bucket_index(4.0), 3u);
}

TEST(LogHistogram, ValuesLandInTheirBucket) {
  LogHistogram h = pow2_hist();
  h.add(0.5);   // bucket 0
  h.add(1.5);   // bucket 1
  h.add(3.0);   // bucket 2
  h.add(3.0);   // bucket 2
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 0u);
}

TEST(LogHistogram, OverflowGoesToTheLastBucket) {
  LogHistogram h = pow2_hist();
  // Top boundary is 2^7 = 128; anything at or above lands in bucket 7.
  h.add(128.0);
  h.add(1e9);
  EXPECT_EQ(h.bucket_index(1e9), h.bucket_count() - 1);
  EXPECT_EQ(h.bucket(h.bucket_count() - 1), 2u);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);  // exact extremes survive overflow
}

TEST(LogHistogram, CountSumMinMaxAreExact) {
  LogHistogram h = pow2_hist();
  for (const double x : {7.0, 0.25, 42.0, 3.5}) {
    h.add(x);
  }
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 52.75);
  EXPECT_DOUBLE_EQ(h.mean(), 52.75 / 4.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 42.0);
}

TEST(LogHistogram, EmptyHistogramReportsZeros) {
  const LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(LogHistogram, SingleSampleQuantilesCollapseToIt) {
  LogHistogram h = pow2_hist();
  h.add(13.0);
  EXPECT_DOUBLE_EQ(h.p50(), 13.0);
  EXPECT_DOUBLE_EQ(h.p99(), 13.0);
}

TEST(LogHistogram, QuantilesTrackAUniformRamp) {
  // 1..1000 with the default telemetry geometry: bucket-interpolated
  // quantiles must sit within one bucket's relative width (growth 1.35 →
  // under 35% relative error, typically far less) of the exact answer.
  LogHistogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.add(static_cast<double>(i));
  }
  EXPECT_NEAR(h.p50(), 500.0, 0.35 * 500.0);
  EXPECT_NEAR(h.p90(), 900.0, 0.35 * 900.0);
  EXPECT_NEAR(h.p99(), 990.0, 0.35 * 990.0);
  // Quantiles are clamped to the exact envelope and are monotone.
  EXPECT_GE(h.quantile(0.0), h.min());
  EXPECT_LE(h.quantile(1.0), h.max());
  EXPECT_LE(h.p50(), h.p90());
  EXPECT_LE(h.p90(), h.p99());
}

TEST(LogHistogram, MergeEqualsInterleavedAdds) {
  LogHistogram a = pow2_hist();
  LogHistogram b = pow2_hist();
  LogHistogram both = pow2_hist();
  for (int i = 0; i < 50; ++i) {
    const double x = 0.5 + static_cast<double>(i);
    ((i % 2 == 0) ? a : b).add(x);
    both.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_DOUBLE_EQ(a.sum(), both.sum());
  EXPECT_DOUBLE_EQ(a.min(), both.min());
  EXPECT_DOUBLE_EQ(a.max(), both.max());
  for (std::size_t i = 0; i < a.bucket_count(); ++i) {
    EXPECT_EQ(a.bucket(i), both.bucket(i)) << "bucket " << i;
  }
}

TEST(LogHistogram, ResetClearsEverything) {
  LogHistogram h = pow2_hist();
  h.add(3.0);
  h.add(900.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    EXPECT_EQ(h.bucket(i), 0u);
  }
}

}  // namespace
}  // namespace sdsi::obs
