// The fault library: Gilbert-Elliott burst loss, key-range partitions,
// latency jitter, and the injector's crash/recover waves — all seeded and
// bit-reproducible.
#include <gtest/gtest.h>

#include <vector>

#include "fault/injector.hpp"
#include "fault/model.hpp"
#include "sim/simulator.hpp"

namespace sdsi::fault {
namespace {

sim::SimTime at_seconds(double s) {
  return sim::SimTime::zero() + sim::Duration::seconds(s);
}

TEST(GilbertElliott, StationaryLossRateMatchesTheory) {
  FaultPlan plan;
  GilbertElliottParams burst;
  burst.p_good_to_bad = 0.05;
  burst.p_bad_to_good = 0.25;
  plan.burst_loss = burst;
  LinkFaultModel model(plan, common::IdSpace(16), common::Pcg32(1, 1));

  const double expected =
      burst.p_good_to_bad / (burst.p_good_to_bad + burst.p_bad_to_good);
  constexpr int kSamples = 60'000;
  int drops = 0;
  for (int i = 0; i < kSamples; ++i) {
    const auto cause = model.sample_drop(static_cast<Key>(i), at_seconds(0));
    if (cause.has_value()) {
      EXPECT_EQ(*cause, DropCause::kBurstLoss);
      ++drops;
    }
  }
  EXPECT_NEAR(static_cast<double>(drops) / kSamples, expected, 0.02);
}

TEST(GilbertElliott, LossesArriveInBursts) {
  // Mean run length of consecutive drops must track 1 / p_bad_to_good —
  // far above the ~1 an i.i.d. model at the same rate would show.
  FaultPlan plan;
  GilbertElliottParams burst;
  burst.p_good_to_bad = 0.02;
  burst.p_bad_to_good = 0.2;  // mean burst of 5 transmissions
  plan.burst_loss = burst;
  LinkFaultModel model(plan, common::IdSpace(16), common::Pcg32(2, 2));

  int bursts = 0;
  int dropped = 0;
  bool in_run = false;
  for (int i = 0; i < 200'000; ++i) {
    const bool drop = model.sample_drop(0, at_seconds(0)).has_value();
    if (drop) {
      ++dropped;
      bursts += in_run ? 0 : 1;
    }
    in_run = drop;
  }
  ASSERT_GT(bursts, 0);
  const double mean_burst = static_cast<double>(dropped) / bursts;
  EXPECT_NEAR(mean_burst, 5.0, 1.0);
}

TEST(LinkFaultModel, UniformLossRateMatches) {
  FaultPlan plan;
  plan.uniform_loss = 0.3;
  LinkFaultModel model(plan, common::IdSpace(16), common::Pcg32(3, 3));
  int drops = 0;
  constexpr int kSamples = 20'000;
  for (int i = 0; i < kSamples; ++i) {
    const auto cause = model.sample_drop(0, at_seconds(0));
    if (cause.has_value()) {
      EXPECT_EQ(*cause, DropCause::kUniformLoss);
      ++drops;
    }
  }
  EXPECT_NEAR(static_cast<double>(drops) / kSamples, 0.3, 0.02);
}

TEST(LinkFaultModel, PartitionBlacksOutKeyRangeDuringWindow) {
  FaultPlan plan;
  KeyRangePartition partition;
  partition.lo = 100;
  partition.hi = 200;
  partition.from = at_seconds(10);
  partition.until = at_seconds(20);
  plan.partitions.push_back(partition);
  LinkFaultModel model(plan, common::IdSpace(16), common::Pcg32(4, 4));

  // In range + in window: always dropped, deterministically.
  EXPECT_EQ(model.sample_drop(150, at_seconds(15)), DropCause::kPartition);
  EXPECT_EQ(model.sample_drop(100, at_seconds(10)), DropCause::kPartition);
  // Outside the window or the range: never dropped (no other process).
  EXPECT_FALSE(model.sample_drop(150, at_seconds(5)).has_value());
  EXPECT_FALSE(model.sample_drop(150, at_seconds(20)).has_value());
  EXPECT_FALSE(model.sample_drop(99, at_seconds(15)).has_value());
  EXPECT_FALSE(model.sample_drop(201, at_seconds(15)).has_value());
}

TEST(LinkFaultModel, PartitionRangeWrapsTheRing) {
  FaultPlan plan;
  KeyRangePartition partition;
  partition.lo = 60'000;  // clockwise [60000, 100] in a 16-bit space
  partition.hi = 100;
  partition.from = at_seconds(0);
  partition.until = at_seconds(100);
  plan.partitions.push_back(partition);
  LinkFaultModel model(plan, common::IdSpace(16), common::Pcg32(5, 5));
  EXPECT_EQ(model.sample_drop(65'000, at_seconds(1)), DropCause::kPartition);
  EXPECT_EQ(model.sample_drop(50, at_seconds(1)), DropCause::kPartition);
  EXPECT_FALSE(model.sample_drop(30'000, at_seconds(1)).has_value());
}

TEST(LinkFaultModel, JitterStaysWithinBoundAndZeroWithout) {
  FaultPlan plan;
  plan.jitter = LatencyJitter{sim::Duration::millis(40)};
  LinkFaultModel model(plan, common::IdSpace(16), common::Pcg32(6, 6));
  for (int i = 0; i < 1000; ++i) {
    const sim::Duration jitter = model.sample_jitter();
    EXPECT_GE(jitter, sim::Duration());
    EXPECT_LE(jitter, sim::Duration::millis(40));
  }

  LinkFaultModel plain(FaultPlan{}, common::IdSpace(16), common::Pcg32(6, 6));
  EXPECT_EQ(plain.sample_jitter(), sim::Duration());
}

TEST(LinkFaultModel, SameSeedSameDropSequence) {
  FaultPlan plan;
  plan.uniform_loss = 0.1;
  GilbertElliottParams burst;
  plan.burst_loss = burst;
  LinkFaultModel a(plan, common::IdSpace(16), common::Pcg32(7, 7));
  LinkFaultModel b(plan, common::IdSpace(16), common::Pcg32(7, 7));
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(a.sample_drop(static_cast<Key>(i), at_seconds(0)),
              b.sample_drop(static_cast<Key>(i), at_seconds(0)));
  }
}

// --- Injector ---------------------------------------------------------------

struct FakeMembership {
  std::vector<bool> alive;
  int maintenance_calls = 0;

  explicit FakeMembership(std::size_t n) : alive(n, true) {}

  MembershipHooks hooks() {
    MembershipHooks hooks;
    hooks.alive_nodes = [this] {
      std::vector<NodeIndex> out;
      for (NodeIndex i = 0; i < alive.size(); ++i) {
        if (alive[i]) {
          out.push_back(i);
        }
      }
      return out;
    };
    hooks.crash = [this](NodeIndex node) { alive[node] = false; };
    hooks.recover = [this](NodeIndex node) { alive[node] = true; };
    hooks.maintenance = [this](int rounds) { maintenance_calls += rounds; };
    return hooks;
  }

  std::size_t alive_count() const {
    std::size_t count = 0;
    for (const bool a : alive) {
      count += a ? 1 : 0;
    }
    return count;
  }
};

TEST(FaultInjector, CrashWaveTakesDownFractionThenRecovers) {
  sim::Simulator sim;
  FakeMembership membership(20);
  FaultPlan plan;
  CrashWave wave;
  wave.at = at_seconds(5);
  wave.fraction = 0.25;
  wave.down_for = sim::Duration::seconds(10);
  wave.maintenance_rounds = 3;
  plan.crash_waves.push_back(wave);

  FaultInjector injector(sim, plan, membership.hooks(), common::Pcg32(8, 8));
  injector.arm();

  sim.run_until(at_seconds(6));
  EXPECT_EQ(membership.alive_count(), 15u);  // floor(0.25 * 20) crashed
  EXPECT_EQ(injector.crashes_executed(), 5u);
  EXPECT_EQ(injector.currently_down().size(), 5u);
  EXPECT_GE(membership.maintenance_calls, 3);

  sim.run_until(at_seconds(16));
  EXPECT_EQ(membership.alive_count(), 20u);
  EXPECT_EQ(injector.recoveries_executed(), 5u);
  EXPECT_TRUE(injector.currently_down().empty());
  EXPECT_EQ(injector.ever_crashed().size(), 5u);
  EXPECT_EQ(injector.faults_clear_at(), at_seconds(15));
}

TEST(FaultInjector, PermanentWaveNeverRecovers) {
  sim::Simulator sim;
  FakeMembership membership(10);
  FaultPlan plan;
  CrashWave wave;
  wave.at = at_seconds(1);
  wave.fraction = 0.2;
  wave.down_for = sim::Duration();  // stay down
  plan.crash_waves.push_back(wave);

  FaultInjector injector(sim, plan, membership.hooks(), common::Pcg32(9, 9));
  injector.arm();
  sim.run_until(at_seconds(60));
  EXPECT_EQ(membership.alive_count(), 8u);
  EXPECT_EQ(injector.recoveries_executed(), 0u);
  EXPECT_EQ(injector.currently_down().size(), 2u);
}

TEST(FaultInjector, SameSeedCrashesSameNodes) {
  auto run = [] {
    sim::Simulator sim;
    FakeMembership membership(30);
    FaultPlan plan;
    CrashWave wave;
    wave.at = at_seconds(2);
    wave.fraction = 0.3;
    wave.down_for = sim::Duration::seconds(5);
    plan.crash_waves.push_back(wave);
    FaultInjector injector(sim, plan, membership.hooks(),
                           common::Pcg32(10, 10));
    injector.arm();
    sim.run_until(at_seconds(3));
    std::vector<NodeIndex> down(injector.currently_down().begin(),
                                injector.currently_down().end());
    return down;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace sdsi::fault
