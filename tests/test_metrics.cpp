// The metrics collector: category classification, load attribution, and the
// enable/reset semantics the warm-up protocol depends on.
#include <gtest/gtest.h>

#include "core/metrics.hpp"

namespace sdsi::core {
namespace {

routing::Message make(MsgKind kind, bool internal = false, int hops = 0) {
  routing::Message msg;
  msg.kind = kind;
  msg.range_internal = internal;
  msg.hops = hops;
  return msg;
}

TEST(Metrics, SendCountsOriginatedVsInternal) {
  MetricsCollector metrics(4);
  metrics.on_send(0, make(MsgKind::kMbrUpdate));
  metrics.on_send(0, make(MsgKind::kMbrUpdate, /*internal=*/true));
  EXPECT_EQ(metrics.mbr().originated, 1u);
  EXPECT_EQ(metrics.mbr().range_internal, 1u);
}

TEST(Metrics, LoadComponentsRouteByKindAndRole) {
  MetricsCollector metrics(4);
  metrics.on_send(0, make(MsgKind::kMbrUpdate));
  metrics.on_send(1, make(MsgKind::kMbrUpdate, true));
  metrics.on_transit(2, make(MsgKind::kMbrUpdate));
  metrics.on_deliver(3, make(MsgKind::kMbrUpdate));
  EXPECT_EQ(metrics.node_load(0, LoadComponent::kMbrSource), 1u);
  EXPECT_EQ(metrics.node_load(1, LoadComponent::kMbrInternal), 1u);
  EXPECT_EQ(metrics.node_load(2, LoadComponent::kMbrTransit), 1u);
  EXPECT_EQ(metrics.node_load(3, LoadComponent::kMbrSource), 1u);
}

TEST(Metrics, QueriesAggregateAllQueryKinds) {
  MetricsCollector metrics(2);
  metrics.on_send(0, make(MsgKind::kSimilarityQuery));
  metrics.on_send(0, make(MsgKind::kInnerProductQuery));
  metrics.on_send(0, make(MsgKind::kLocationGet));
  metrics.on_send(0, make(MsgKind::kLocationPut));
  metrics.on_send(0, make(MsgKind::kLocationReply));
  EXPECT_EQ(metrics.node_load(0, LoadComponent::kQueries), 5u);
  EXPECT_EQ(metrics.query().originated, 2u);
  EXPECT_EQ(metrics.location().originated, 3u);
}

TEST(Metrics, ResponsesSplitByRole) {
  MetricsCollector metrics(3);
  metrics.on_send(0, make(MsgKind::kResponse));
  metrics.on_transit(1, make(MsgKind::kResponse));
  metrics.on_send(2, make(MsgKind::kNeighborExchange));
  EXPECT_EQ(metrics.node_load(0, LoadComponent::kResponses), 1u);
  EXPECT_EQ(metrics.node_load(1, LoadComponent::kResponsesTransit), 1u);
  EXPECT_EQ(metrics.node_load(2, LoadComponent::kResponsesInternal), 1u);
}

TEST(Metrics, HopStatsSplitInternalFromRouted) {
  MetricsCollector metrics(2);
  metrics.on_deliver(0, make(MsgKind::kSimilarityQuery, false, 4));
  metrics.on_deliver(0, make(MsgKind::kSimilarityQuery, false, 6));
  metrics.on_deliver(1, make(MsgKind::kSimilarityQuery, true, 1));
  EXPECT_DOUBLE_EQ(metrics.query().hops_routed.mean(), 5.0);
  EXPECT_DOUBLE_EQ(metrics.query().hops_internal.mean(), 1.0);
  EXPECT_EQ(metrics.query().delivered, 3u);
}

TEST(Metrics, DisabledRecordsNothing) {
  MetricsCollector metrics(2);
  metrics.set_enabled(false);
  metrics.on_send(0, make(MsgKind::kMbrUpdate));
  metrics.on_transit(1, make(MsgKind::kMbrUpdate));
  metrics.on_deliver(1, make(MsgKind::kMbrUpdate));
  EXPECT_EQ(metrics.mbr().originated, 0u);
  EXPECT_EQ(metrics.node_load_total(0), 0u);
  EXPECT_EQ(metrics.node_load_total(1), 0u);
}

TEST(Metrics, ResetClearsEverything) {
  MetricsCollector metrics(2);
  metrics.on_send(0, make(MsgKind::kResponse));
  metrics.on_deliver(1, make(MsgKind::kResponse, false, 3));
  metrics.reset();
  EXPECT_EQ(metrics.response().originated, 0u);
  EXPECT_EQ(metrics.response().delivered, 0u);
  EXPECT_EQ(metrics.response().hops_routed.count(), 0u);
  EXPECT_EQ(metrics.node_load_total(0), 0u);
}

TEST(Metrics, NodeLoadTotalSumsComponents) {
  MetricsCollector metrics(1);
  metrics.on_send(0, make(MsgKind::kMbrUpdate));
  metrics.on_send(0, make(MsgKind::kResponse));
  metrics.on_transit(0, make(MsgKind::kSimilarityQuery));
  EXPECT_EQ(metrics.node_load_total(0), 3u);
}

TEST(Metrics, OutOfRangeNodeIsIgnoredSafely) {
  MetricsCollector metrics(1);
  metrics.on_send(kInvalidNode, make(MsgKind::kMbrUpdate));
  EXPECT_EQ(metrics.mbr().originated, 1u);  // category still counted
  EXPECT_EQ(metrics.node_load_total(0), 0u);
}

TEST(Metrics, ComponentNamesAreStable) {
  EXPECT_STREQ(load_component_name(LoadComponent::kMbrSource), "MBRs");
  EXPECT_STREQ(load_component_name(LoadComponent::kResponsesTransit),
               "Responses in transit");
}

}  // namespace
}  // namespace sdsi::core
