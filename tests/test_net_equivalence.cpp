// In-process leg of the sim-vs-socket equivalence gate (the wire-protocol
// PR's acceptance test): the NetNode pipeline — the same code sdsi_node runs
// over real TCP — driven over SimTransport must produce the exact per-query
// matched stream sets the canonical simulated middleware produces on the
// identical workload, at N >= 8 nodes, fault-free. Every frame between
// NetNodes crosses the v1 codec, so a divergence anywhere in the envelope or
// payload serialization shows up as a digest mismatch here.
//
// The socket leg (real processes, real TCP) is tools/net_equiv, wired as
// `ctest -L net-smoke`.
#include <gtest/gtest.h>

#include "net/equivalence.hpp"

namespace sdsi::net {
namespace {

TEST(NetEquivalence, SimAndNetDigestsMatchAtEightNodes) {
  WorkloadConfig config;
  config.nodes = 8;
  config.seed = 42;

  const MatchDigest sim_digest = run_sim_reference(config);
  const MatchDigest net_digest = run_net_over_sim_transport(config);

  // The gate is vacuous unless the workload actually produces matches.
  ASSERT_EQ(sim_digest.size(), static_cast<std::size_t>(config.nodes));
  std::size_t nonempty = 0;
  for (const auto& [id, streams] : sim_digest) {
    nonempty += streams.empty() ? 0u : 1u;
  }
  ASSERT_GT(nonempty, 0u) << "workload produced no matches at all";

  EXPECT_EQ(net_digest, sim_digest);
}

TEST(NetEquivalence, HoldsAcrossSeedsAndRingSizes) {
  for (const auto& [nodes, seed] : {std::pair<std::uint32_t, std::uint64_t>{3, 7},
                                    {8, 1234},
                                    {11, 99}}) {
    WorkloadConfig config;
    config.nodes = nodes;
    config.seed = seed;
    config.samples_per_stream = 300;
    const MatchDigest sim_digest = run_sim_reference(config);
    const MatchDigest net_digest = run_net_over_sim_transport(config);
    EXPECT_EQ(net_digest, sim_digest) << nodes << " nodes, seed " << seed;
  }
}

}  // namespace
}  // namespace sdsi::net
