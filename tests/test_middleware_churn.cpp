// Middleware-level churn robustness: the specific failure paths the churn
// bench exposed, pinned as regression tests — dead nodes' timers must
// no-op, responses to crashed clients must be dropped by the arc's new
// owner, and client-side retry/refresh timers must stop firing.
#include <gtest/gtest.h>

#include "chord/network.hpp"
#include "core/system.hpp"
#include "routing/static_ring.hpp"

namespace sdsi::core {
namespace {

constexpr std::size_t kWindow = 16;

MiddlewareConfig config_with_refresh() {
  MiddlewareConfig config;
  config.features.window_size = kWindow;
  config.features.num_coefficients = 2;
  config.batching.batch_size = 3;
  config.mbr_lifespan = sim::Duration::seconds(10);
  config.notify_period = sim::Duration::millis(500);
  config.query_refresh_period = sim::Duration::seconds(1);
  return config;
}

struct Harness {
  sim::Simulator sim;
  chord::ChordNetwork net;
  MiddlewareSystem system;

  explicit Harness(std::size_t nodes)
      : net(sim,
            [] {
              chord::ChordConfig chord_config;
              chord_config.successor_list_length = 4;
              return chord_config;
            }()),
        system((net.bootstrap(
                    routing::hash_node_ids(nodes, common::IdSpace(32), 5)),
                net),
               config_with_refresh()) {
    system.start();
  }

  void run_for(double seconds) {
    sim.run_until(sim.now() + sim::Duration::seconds(seconds));
  }

  void feed_exponential(NodeIndex node, StreamId stream, double gamma,
                        int samples) {
    double value = 1.0;
    for (int i = 0; i < samples; ++i) {
      value *= gamma;
      system.post_stream_value(node, stream, value);
    }
  }

  dsp::FeatureVector exponential_features(double gamma) const {
    std::vector<Sample> window(kWindow);
    double value = 1.0;
    for (Sample& x : window) {
      value *= gamma;
      x = value;
    }
    return dsp::extract_features(window, config_with_refresh().features);
  }
};

TEST(MiddlewareChurn, DeadNodesTickHarmlessly) {
  Harness h(10);
  h.system.register_stream(0, 100);
  h.feed_exponential(0, 100, 1.1, 40);
  (void)h.system.subscribe_similarity(1, h.exponential_features(1.1), 0.5,
                                      sim::Duration::seconds(60));
  h.run_for(2.0);
  // Crash half the ring; their middleware ticks keep firing but must no-op.
  for (NodeIndex victim = 5; victim < 10; ++victim) {
    h.net.crash(victim);
  }
  h.net.run_maintenance_rounds(4);
  h.run_for(10.0);  // would SDSI_CHECK-abort without the liveness guard
  EXPECT_EQ(h.net.alive_count(), 5u);
}

TEST(MiddlewareChurn, ResponseToCrashedClientIsDroppedByNewArcOwner) {
  Harness h(10);
  h.system.register_stream(0, 200);
  h.feed_exponential(0, 200, 1.1, 40);
  const QueryId id = h.system.subscribe_similarity(
      3, h.exponential_features(1.1), 0.5, sim::Duration::seconds(120));
  h.run_for(3.0);
  const ClientQueryRecord* record = h.system.client_record(id);
  EXPECT_GT(record->responses_received, 0u);
  const std::uint64_t before = record->responses_received;

  // The client dies; periodic responses now land on whichever node covers
  // its old arc and must be silently discarded there.
  h.net.crash(3);
  h.net.run_maintenance_rounds(4);
  h.feed_exponential(0, 200, 1.1, 10);
  h.run_for(6.0);
  EXPECT_EQ(record->responses_received, before);  // no ghost deliveries
}

TEST(MiddlewareChurn, RefreshTimerStopsWhenClientDies) {
  Harness h(8);
  (void)h.system.subscribe_similarity(2, h.exponential_features(1.1), 0.1,
                                      sim::Duration::seconds(120));
  h.run_for(3.0);
  h.net.crash(2);
  h.net.run_maintenance_rounds(4);
  const std::uint64_t sent_at_crash = h.system.metrics().query().originated;
  h.run_for(5.0);
  // No refresh traffic from a dead client (the periodic task cancels).
  EXPECT_EQ(h.system.metrics().query().originated, sent_at_crash);
}

TEST(MiddlewareChurn, LocationRetryStopsWhenClientDies) {
  Harness h(8);
  // Query a stream that never registers: the retry loop arms...
  (void)h.system.subscribe_inner_product(4, 999, {1.0}, {1.0},
                                         sim::Duration::seconds(60));
  h.run_for(2.0);
  h.net.crash(4);
  h.net.run_maintenance_rounds(4);
  h.run_for(5.0);  // ...and must fizzle once the client is gone
  SUCCEED();       // reaching here without an SDSI_CHECK abort is the test
}

TEST(MiddlewareChurn, SurvivingQueriesKeepWorkingThroughMassChurn) {
  Harness h(12);
  h.system.register_stream(0, 300);
  h.feed_exponential(0, 300, 1.12, 40);
  const QueryId id = h.system.subscribe_similarity(
      1, h.exponential_features(1.12), 0.3, sim::Duration::seconds(120));
  h.run_for(3.0);
  const ClientQueryRecord* record = h.system.client_record(id);
  const std::uint64_t before = record->responses_received;
  EXPECT_GT(before, 0u);

  // Crash a third of the ring (sparing source 0 and client 1), keep going.
  h.net.crash(5);
  h.net.crash(7);
  h.net.crash(9);
  h.net.crash(11);
  h.net.run_maintenance_rounds(5);
  h.feed_exponential(0, 300, 1.12, 30);
  h.run_for(8.0);
  EXPECT_GT(record->responses_received, before);
  EXPECT_TRUE(record->matched_streams.contains(300));
}

}  // namespace
}  // namespace sdsi::core
