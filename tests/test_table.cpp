// Text table rendering used by every bench binary.
#include <gtest/gtest.h>

#include "common/table.hpp"

namespace sdsi::common {
namespace {

TEST(FormatFixed, Precision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(3.0, 0), "3");
  EXPECT_EQ(format_fixed(-0.5, 3), "-0.500");
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"N", "load"});
  table.begin_row().add_int(50).add_num(1.5, 2);
  table.begin_row().add_int(500).add_num(10.25, 2);
  const std::string out = table.render();
  // Header, rule, two rows.
  EXPECT_NE(out.find("N    load"), std::string::npos);
  EXPECT_NE(out.find("50   1.50"), std::string::npos);
  EXPECT_NE(out.find("500  10.25"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, WideCellsStretchColumn) {
  TextTable table({"x"});
  table.begin_row().add_cell("very-long-cell-content");
  const std::string out = table.render();
  EXPECT_NE(out.find("very-long-cell-content"), std::string::npos);
}

TEST(TextTable, HeaderOnly) {
  TextTable table({"a", "b"});
  const std::string out = table.render();
  EXPECT_NE(out.find("a  b"), std::string::npos);
}

TEST(TextTable, RowsEndWithNewline) {
  TextTable table({"a"});
  table.begin_row().add_cell("1");
  const std::string out = table.render();
  EXPECT_EQ(out.back(), '\n');
}

}  // namespace
}  // namespace sdsi::common
