// Unit tests of net::FaultyTransport (the seeded fault-injection decorator)
// over the SimTransport fabric: pass-through fidelity, the per-cause drop
// accounting identity, the fake-clock delay queue, and corruption landing as
// receiver-side malformed-frame drops.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fault/model.hpp"
#include "net/faulty_transport.hpp"
#include "net/sim_transport.hpp"
#include "sim/simulator.hpp"
#include "wire_samples.hpp"

namespace sdsi::net {
namespace {

/// One sender endpoint wrapped in the fault layer, one plain receiver.
struct Harness {
  explicit Harness(fault::FaultPlan plan, std::uint64_t seed = 7)
      : fabric(simulator, sim::Duration::millis(1)),
        sender(fabric, 0),
        receiver(fabric, 1),
        faulty(sender, plan, common::IdSpace(16), seed) {
    receiver.set_deliver(
        [this](routing::Message&& msg) { delivered.push_back(msg.kind); });
    faulty.set_clock([this] { return fake_ms; });
  }

  /// Releases due delayed frames at the fake clock, then runs the sim so
  /// every in-flight fabric hop lands.
  void drain() {
    faulty.poll(0);
    simulator.run_until(simulator.now() + sim::Duration::seconds(1));
  }

  sim::Simulator simulator;
  SimFabric fabric;
  SimTransport sender;
  SimTransport receiver;
  FaultyTransport faulty;
  std::int64_t fake_ms = 0;
  std::vector<routing::MsgKind> delivered;
};

routing::Message content_message() {
  return testing::sample_message(routing::MsgKind::kMbrUpdate);
}

TEST(FaultyTransport, EmptyPlanForwardsEverythingVerbatim) {
  Harness h{fault::FaultPlan{}};
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(h.faulty.send(1, content_message()));
  }
  h.drain();
  EXPECT_EQ(h.delivered.size(), 50u);
  EXPECT_EQ(h.faulty.stats().offered, 50u);
  EXPECT_EQ(h.faulty.stats().forwarded, 50u);
  EXPECT_EQ(h.faulty.stats().dropped(), 0u);
  EXPECT_EQ(h.faulty.pending_delayed(), 0u);
  EXPECT_EQ(h.fabric.decode_rejects(), 0u);
}

TEST(FaultyTransport, UniformLossIsAccountedPerCause) {
  fault::FaultPlan plan;
  plan.uniform_loss = 0.4;
  Harness h{plan};
  const std::uint64_t kOffered = 400;
  for (std::uint64_t i = 0; i < kOffered; ++i) {
    // A dropped frame is still an accepted (accounted) send.
    EXPECT_TRUE(h.faulty.send(1, content_message()));
  }
  h.drain();
  const FaultyTransportStats& s = h.faulty.stats();
  EXPECT_EQ(s.offered, kOffered);
  EXPECT_EQ(s.offered, s.forwarded + s.dropped_uniform);
  EXPECT_EQ(h.delivered.size(), s.forwarded);
  EXPECT_GT(s.dropped_uniform, kOffered / 4) << "seeded rate far off 0.4";
  EXPECT_LT(s.dropped_uniform, kOffered * 3 / 5);
  const auto drops = s.drops_by_cause();
  EXPECT_EQ(drops[static_cast<std::size_t>(fault::DropCause::kUniformLoss)],
            s.dropped_uniform);
}

TEST(FaultyTransport, BurstLossAccountsUnderBurstCause) {
  fault::FaultPlan plan;
  fault::GilbertElliottParams ge;
  ge.p_good_to_bad = 0.05;
  ge.p_bad_to_good = 0.25;
  plan.burst_loss = ge;
  Harness h{plan};
  for (int i = 0; i < 600; ++i) {
    h.faulty.send(1, content_message());
  }
  h.drain();
  const FaultyTransportStats& s = h.faulty.stats();
  EXPECT_GT(s.dropped_burst, 0u);
  EXPECT_EQ(s.offered, s.forwarded + s.dropped_burst);
  EXPECT_EQ(h.delivered.size(), s.forwarded);
}

TEST(FaultyTransport, DelayQueueReleasesOnFakeClock) {
  fault::FaultPlan plan;
  plan.jitter = fault::LatencyJitter{sim::Duration::millis(10)};
  Harness h{plan};
  for (int i = 0; i < 100; ++i) {
    h.faulty.send(1, content_message());
  }
  const FaultyTransportStats& s = h.faulty.stats();
  EXPECT_GT(s.delayed, 0u);
  // The accounting identity holds while frames are still parked.
  EXPECT_EQ(s.offered, s.forwarded + s.dropped() + h.faulty.pending_delayed());

  // Nothing is released before its due time...
  h.faulty.poll(0);
  EXPECT_GT(h.faulty.pending_delayed(), 0u);

  // ...and advancing the fake clock past the max jitter releases it all.
  h.fake_ms += 11;
  h.drain();
  EXPECT_EQ(h.faulty.pending_delayed(), 0u);
  EXPECT_EQ(s.offered, s.forwarded);
  EXPECT_EQ(h.delivered.size(), s.offered);
}

TEST(FaultyTransport, ReorderDrawsExtraDelayButLosesNothing) {
  fault::FaultPlan plan;
  plan.reorder = 1.0;
  Harness h{plan};
  for (int i = 0; i < 20; ++i) {
    h.faulty.send(1, content_message());
  }
  EXPECT_EQ(h.faulty.stats().reordered, 20u);
  EXPECT_EQ(h.faulty.pending_delayed(), 20u);
  h.fake_ms += 6;  // past reorder_extra (5 ms)
  h.drain();
  EXPECT_EQ(h.faulty.pending_delayed(), 0u);
  EXPECT_EQ(h.delivered.size(), 20u);
}

TEST(FaultyTransport, CorruptionIsChargedAtTheReceiver) {
  fault::FaultPlan plan;
  plan.corrupt = 1.0;
  Harness h{plan};
  std::uint64_t malformed = 0;
  h.fabric.set_drop_hook([&malformed](fault::DropCause cause) {
    if (cause == fault::DropCause::kMalformedFrame) {
      ++malformed;
    }
  });
  const std::uint64_t kOffered = 200;
  for (std::uint64_t i = 0; i < kOffered; ++i) {
    h.faulty.send(1, content_message());
  }
  h.drain();
  const FaultyTransportStats& s = h.faulty.stats();
  EXPECT_EQ(s.corrupted, kOffered);
  EXPECT_EQ(s.forwarded, kOffered) << "corruption forwards, never drops";
  // Every frame crossed the wire; the receiver either rejected the damage
  // (a counted malformed_frame drop) or decoded an altered payload — v1
  // payloads are raw little-endian fields with no payload checksum, so
  // many single-byte flips decode; the downstream handlers must (and do)
  // bounds-check what they read.
  EXPECT_EQ(h.fabric.decode_rejects() + h.delivered.size(), kOffered);
  EXPECT_EQ(h.fabric.decode_rejects(), malformed);
  EXPECT_GT(h.fabric.decode_rejects(), 0u)
      << "some flips must land in length/kind fields and break decode";
}

TEST(FaultyTransport, MixedPlanHoldsTheAccountingIdentity) {
  fault::FaultPlan plan;
  plan.uniform_loss = 0.1;
  plan.jitter = fault::LatencyJitter{sim::Duration::millis(5)};
  plan.reorder = 0.2;
  plan.corrupt = 0.05;
  Harness h{plan};
  for (int i = 0; i < 300; ++i) {
    h.faulty.send(1, content_message());
    if (i % 50 == 0) {
      const FaultyTransportStats& s = h.faulty.stats();
      EXPECT_EQ(s.offered,
                s.forwarded + s.dropped() + h.faulty.pending_delayed());
    }
  }
  h.fake_ms += 100;
  h.drain();
  const FaultyTransportStats& s = h.faulty.stats();
  EXPECT_EQ(h.faulty.pending_delayed(), 0u);
  EXPECT_EQ(s.offered, s.forwarded + s.dropped());
  EXPECT_EQ(h.fabric.decode_rejects() + h.delivered.size(), s.forwarded);
}

TEST(FaultyTransport, SameSeedSameFaultSequence) {
  fault::FaultPlan plan;
  plan.uniform_loss = 0.3;
  plan.corrupt = 0.1;
  Harness a{plan, 99};
  Harness b{plan, 99};
  for (int i = 0; i < 200; ++i) {
    a.faulty.send(1, content_message());
    b.faulty.send(1, content_message());
  }
  a.drain();
  b.drain();
  EXPECT_EQ(a.faulty.stats().dropped_uniform, b.faulty.stats().dropped_uniform);
  EXPECT_EQ(a.faulty.stats().corrupted, b.faulty.stats().corrupted);
  EXPECT_EQ(a.delivered.size(), b.delivered.size());
}

}  // namespace
}  // namespace sdsi::net
