// Deterministic RNG infrastructure: reproducibility, distribution sanity,
// and stream independence.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace sdsi::common {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(1234);
  SplitMix64 b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Pcg32, Reproducible) {
  Pcg32 a(42, 7);
  Pcg32 b(42, 7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Pcg32, StreamsAreIndependent) {
  Pcg32 a(42, 1);
  Pcg32 b(42, 2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(Pcg32, BoundedStaysInBound) {
  Pcg32 rng(7, 7);
  for (std::uint32_t bound : {1u, 2u, 3u, 10u, 1000u, 1u << 30}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.bounded(bound), bound);
    }
  }
}

TEST(Pcg32, BoundedIsRoughlyUniform) {
  Pcg32 rng(11, 3);
  constexpr std::uint32_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.bounded(kBound)];
  }
  for (const int count : counts) {
    EXPECT_NEAR(count, kDraws / static_cast<int>(kBound), 800);
  }
}

TEST(Pcg32, Uniform01InHalfOpenInterval) {
  Pcg32 rng(3, 9);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Pcg32, UniformIntCoversInclusiveRange) {
  Pcg32 rng(5, 5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Pcg32, UniformIntWideRange) {
  Pcg32 rng(5, 6);
  const std::int64_t lo = -(1ll << 40);
  const std::int64_t hi = 1ll << 40;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(lo, hi);
    ASSERT_GE(v, lo);
    ASSERT_LE(v, hi);
  }
}

TEST(Pcg32, NormalMoments) {
  Pcg32 rng(17, 1);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.03);
}

TEST(Pcg32, ExponentialMeanMatchesRate) {
  Pcg32 rng(23, 2);
  for (const double rate : {0.5, 2.0, 10.0}) {
    double sum = 0.0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
      const double x = rng.exponential(rate);
      ASSERT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum / kDraws, 1.0 / rate, 0.05 / rate);
  }
}

TEST(RngFactory, SameNameSameStream) {
  RngFactory factory(99);
  Pcg32 a = factory.make("streams", 3);
  Pcg32 b = factory.make("streams", 3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngFactory, DifferentNamesDiffer) {
  RngFactory factory(99);
  Pcg32 a = factory.make("alpha");
  Pcg32 b = factory.make("beta");
  EXPECT_NE(a.next64(), b.next64());
}

TEST(RngFactory, DifferentIndicesDiffer) {
  RngFactory factory(99);
  Pcg32 a = factory.make("alpha", 0);
  Pcg32 b = factory.make("alpha", 1);
  EXPECT_NE(a.next64(), b.next64());
}

TEST(RngFactory, DifferentMasterSeedsDiffer) {
  Pcg32 a = RngFactory(1).make("alpha");
  Pcg32 b = RngFactory(2).make("alpha");
  EXPECT_NE(a.next64(), b.next64());
}

class RngFactoryIndependence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RngFactoryIndependence, ChildStreamsPairwiseDecorrelated) {
  RngFactory factory(GetParam());
  Pcg32 a = factory.make("worker", 1);
  Pcg32 b = factory.make("worker", 2);
  // Crude correlation check over uniform draws.
  double dot = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    dot += (a.uniform01() - 0.5) * (b.uniform01() - 0.5);
  }
  EXPECT_NEAR(dot / kDraws, 0.0, 0.005);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngFactoryIndependence,
                         ::testing::Values(0, 1, 42, 0xDEADBEEF,
                                           0xFFFFFFFFFFFFFFFFull));

}  // namespace
}  // namespace sdsi::common
