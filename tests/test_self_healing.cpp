// The self-healing MBR data path: acked publication with capped exponential
// backoff, soft-state MBR refresh, idempotent (deduplicated) stores, the
// location-get retry counter — and the headline equivalence: a lossy run
// with healing enabled converges to exactly the fault-free match sets.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "chord/network.hpp"
#include "core/system.hpp"
#include "fault/model.hpp"
#include "routing/static_ring.hpp"

namespace sdsi::core {
namespace {

constexpr std::size_t kWindow = 16;

MiddlewareConfig base_config() {
  MiddlewareConfig config;
  config.features.window_size = kWindow;
  config.features.num_coefficients = 2;
  config.batching.batch_size = 3;
  config.mbr_lifespan = sim::Duration::seconds(10);
  config.notify_period = sim::Duration::millis(500);
  return config;
}

struct Harness {
  sim::Simulator sim;
  chord::ChordNetwork net;
  MiddlewareSystem system;

  Harness(std::size_t nodes, MiddlewareConfig config, std::uint64_t seed = 13)
      : net(sim,
            [] {
              chord::ChordConfig chord_config;
              chord_config.successor_list_length = 4;
              return chord_config;
            }()),
        system((net.bootstrap(routing::hash_node_ids(nodes, common::IdSpace(32),
                                                     seed)),
                net),
               config) {
    system.start();
  }

  void run_for(double seconds) {
    sim.run_until(sim.now() + sim::Duration::seconds(seconds));
  }

  dsp::FeatureVector exponential_features(double gamma) const {
    std::vector<Sample> window(kWindow);
    double value = 1.0;
    for (Sample& x : window) {
      value *= gamma;
      x = value;
    }
    return dsp::extract_features(window, base_config().features);
  }

  void start_stream(NodeIndex node, StreamId stream, double gamma) {
    system.register_stream(node, stream);
    auto value = std::make_shared<double>(1.0);
    sim.schedule_periodic(sim.now() + sim::Duration::millis(100),
                          sim::Duration::millis(100),
                          [this, node, stream, gamma, value] {
                            *value *= gamma;
                            if (*value > 1e12) {
                              *value = 1.0;
                            }
                            system.post_stream_value(node, stream, *value);
                          });
  }
};

TEST(AckedPublication, RetriesHealLostBatchesAndRecordLatency) {
  MiddlewareConfig config = base_config();
  config.mbr_ack.enabled = true;
  config.mbr_ack.timeout = sim::Duration::millis(400);
  config.mbr_ack.jitter = sim::Duration::millis(50);
  // The subscription multicast and the match pushes are equally lossy;
  // soft-state query refresh and acked responses keep those paths alive so
  // this test exercises the MBR-side acks end to end.
  config.query_refresh_period = sim::Duration::seconds(1);
  config.response_ack.enabled = true;
  Harness h(10, config);
  h.net.set_message_loss(0.35, common::Pcg32(5, 5));
  h.start_stream(0, 100, 1.10);
  h.run_for(15.0);

  const RobustnessCounters& counters = h.system.metrics().robustness();
  EXPECT_GT(counters.mbr_acks, 0u);
  EXPECT_GT(counters.mbr_retries, 0u) << "35% loss must trigger ack timeouts";
  EXPECT_GT(counters.heal_latency_ms.count(), 0u);
  EXPECT_GT(counters.heal_latency_ms.mean(), 0.0);

  // The retried batches actually arrived: a tight matching query sees the
  // stream despite the loss.
  const QueryId id = h.system.subscribe_similarity(
      4, h.exponential_features(1.10), 0.08, sim::Duration::seconds(30));
  h.run_for(10.0);
  EXPECT_TRUE(h.system.client_record(id)->matched_streams.contains(100));
}

TEST(AckedPublication, CleanNetworkNeedsNoRetries) {
  MiddlewareConfig config = base_config();
  config.mbr_ack.enabled = true;
  Harness h(10, config);
  h.start_stream(0, 100, 1.10);
  h.run_for(10.0);
  const RobustnessCounters& counters = h.system.metrics().robustness();
  EXPECT_GT(counters.mbr_acks, 0u);
  EXPECT_EQ(counters.mbr_retries, 0u);
  EXPECT_EQ(counters.mbr_retry_exhausted, 0u);
  EXPECT_EQ(counters.heal_latency_ms.count(), 0u)
      << "heal latency samples only retried batches";
}

TEST(MbrRefresh, ReroutesLiveBatchesAfterHolderRestart) {
  // The node whose arc stores a stream's MBRs crashes and restarts empty.
  // Without MBR refresh the re-owned arc stays blank until new data
  // arrives; with refresh the source re-routes its live batches and a query
  // posed after the restart still matches the OLD batches.
  for (const bool refresh_enabled : {false, true}) {
    MiddlewareConfig config = base_config();
    config.mbr_lifespan = sim::Duration::seconds(120);  // old batches live on
    if (refresh_enabled) {
      config.mbr_refresh_period = sim::Duration::seconds(1);
    }
    Harness h(10, config);

    // Emit enough values to fill the window and close a few batches, then
    // stop the stream for good.
    h.system.register_stream(0, 300);
    double value = 1.0;
    for (int i = 0; i < 30; ++i) {
      value *= 1.12;
      h.system.post_stream_value(0, 300, value);
      h.run_for(0.1);
    }
    h.run_for(2.0);

    const dsp::FeatureVector probe = h.exponential_features(1.12);
    const Key key = h.system.mapper().key_for(probe);
    const NodeIndex holder = h.net.find_successor_oracle(key);
    if (holder == 0 || holder == 2) {
      continue;  // degenerate layout for this seed; scenario not applicable
    }
    h.net.crash(holder);
    h.net.run_maintenance_rounds(4);
    NodeIndex via = 0;
    h.net.recover(holder, via);
    h.net.run_maintenance_rounds(4);
    h.system.reset_node_soft_state(holder);
    h.run_for(3.0);  // give the refresh (if any) a period to fire

    const QueryId id = h.system.subscribe_similarity(
        2, probe, 0.05, sim::Duration::seconds(30));
    h.run_for(5.0);
    const ClientQueryRecord* record = h.system.client_record(id);
    if (refresh_enabled) {
      EXPECT_TRUE(record->matched_streams.contains(300))
          << "refresh failed to re-route the live batches";
      EXPECT_GT(h.system.metrics().robustness().mbr_refreshes, 0u);
    } else {
      EXPECT_FALSE(record->matched_streams.contains(300))
          << "without refresh the restarted holder cannot know old batches";
    }
  }
}

TEST(IdempotentStores, RefreshRedeliveriesNeverInflateMatches) {
  // Aggressive refresh re-routes every live batch once a second; the store
  // suppresses every redelivery and the client counts each matched stream
  // once, so healing cannot inflate the reported matches.
  MiddlewareConfig config = base_config();
  config.mbr_refresh_period = sim::Duration::seconds(1);
  Harness h(10, config);
  h.start_stream(0, 100, 1.10);
  h.run_for(5.0);
  const QueryId id = h.system.subscribe_similarity(
      4, h.exponential_features(1.10), 0.08, sim::Duration::seconds(60));
  h.run_for(15.0);

  const RobustnessCounters& counters = h.system.metrics().robustness();
  EXPECT_GT(counters.mbr_refreshes, 0u);
  EXPECT_GT(counters.duplicate_stores, 0u)
      << "every refresh of a still-stored batch must be suppressed";
  const ClientQueryRecord* record = h.system.client_record(id);
  EXPECT_EQ(record->match_events, record->matched_streams.size());
  EXPECT_TRUE(record->matched_streams.contains(100));
}

TEST(LocationRetry, UnknownStreamBacksOffAndCounts) {
  // The inner-product query races the stream's directory registration: the
  // first resolution comes back unknown, the client retries under capped
  // exponential backoff, and the retry counter records it.
  MiddlewareConfig config = base_config();
  Harness h(10, config);
  const QueryId id =
      h.system.subscribe_latest_value(2, 500, sim::Duration::seconds(60));
  h.run_for(2.0);  // resolution fails: the stream does not exist yet
  h.system.register_stream(0, 500);
  auto value = std::make_shared<double>(0.0);
  h.sim.schedule_periodic(h.sim.now() + sim::Duration::millis(100),
                          sim::Duration::millis(100), [&h, value] {
                            *value += 1.0;
                            h.system.post_stream_value(0, 500, *value);
                          });
  h.run_for(20.0);

  EXPECT_GT(h.system.metrics().robustness().location_retries, 0u);
  const ClientQueryRecord* record = h.system.client_record(id);
  EXPECT_GT(record->inner_updates, 0u)
      << "backoff retries must eventually resolve the stream";
}

TEST(SelfHealing, LossyHealedRunMatchesFaultFreeExactly) {
  // The acceptance property: run the same seeded workload twice — once
  // fault-free with healing off, once under heavy uniform loss with the
  // full self-healing path — clear the faults, let the soft state converge,
  // and require the per-query match sets AND match_events to be identical.
  auto run = [](bool lossy) {
    MiddlewareConfig config = base_config();
    if (lossy) {
      config.mbr_ack.enabled = true;
      config.mbr_ack.timeout = sim::Duration::millis(400);
      config.response_ack.enabled = true;
      config.mbr_refresh_period = sim::Duration::seconds(1);
      config.query_refresh_period = sim::Duration::seconds(1);
    }
    auto h = std::make_unique<Harness>(12, config);
    if (lossy) {
      fault::FaultPlan plan;
      plan.uniform_loss = 0.15;
      h->net.set_fault_model(std::make_shared<fault::LinkFaultModel>(
          plan, h->net.id_space(), common::Pcg32(21, 21)));
    }

    // Randomized (seeded) workload, identical across both runs.
    common::Pcg32 workload_rng(77, 77);
    std::vector<double> gammas;
    for (int s = 0; s < 5; ++s) {
      gammas.push_back(workload_rng.uniform(1.05, 1.30));
      h->start_stream(static_cast<NodeIndex>(s),
                      100 + static_cast<StreamId>(s), gammas.back());
    }
    h->run_for(3.0);
    std::vector<QueryId> queries;
    for (int q = 0; q < 4; ++q) {
      const double gamma = gammas[workload_rng.bounded(5)];
      const double radius = workload_rng.uniform(0.05, 0.15);
      queries.push_back(h->system.subscribe_similarity(
          static_cast<NodeIndex>(6 + q), h->exponential_features(gamma),
          radius, sim::Duration::seconds(120)));
    }
    h->run_for(8.0);  // faulty window (loss active in the lossy run)
    h->net.set_fault_model(nullptr);
    h->run_for(12.0);  // convergence: refreshes and retries settle

    struct Result {
      std::vector<std::set<StreamId>> matched;
      std::vector<std::uint64_t> events;
    };
    Result result;
    for (const QueryId id : queries) {
      const ClientQueryRecord* record = h->system.client_record(id);
      result.matched.emplace_back(record->matched_streams.begin(),
                                  record->matched_streams.end());
      result.events.push_back(record->match_events);
    }
    return result;
  };

  const auto clean = run(false);
  const auto healed = run(true);
  EXPECT_EQ(clean.matched, healed.matched)
      << "healed run must converge to the fault-free match sets";
  EXPECT_EQ(clean.events, healed.events)
      << "match_events must not be inflated by retries or refreshes";
}

}  // namespace
}  // namespace sdsi::core
