// In-process chaos gate for the NetNode reliability stack: the full N-node
// NetNode pipeline (the one sdsi_node runs over TCP) driven over
// FaultyTransport-wrapped SimTransports — seeded bursty loss, jitter,
// reorder and corruption — with heartbeats, acked publications, refresh,
// replication and anti-entropy switched on. Deterministic end to end (sim
// scheduler + fake wall clock + seeded fault streams), so the recall and
// accounting assertions are exact reruns of the same execution.
//
// The socket-world counterpart (real processes, SIGKILL drill) is
// tools/net_equiv --chaos, gated by the net-chaos-smoke ctest entry.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/model.hpp"
#include "net/equivalence.hpp"
#include "net/faulty_transport.hpp"
#include "net/node.hpp"
#include "net/sim_transport.hpp"
#include "net/workload.hpp"
#include "routing/static_ring.hpp"
#include "sim/simulator.hpp"

namespace sdsi::net {
namespace {

constexpr sim::Duration kLifespan = sim::Duration::seconds(3600);

/// N NetNodes on one sim fabric, each behind its own seeded fault layer
/// sharing one fake wall clock (the failure detector's time base).
struct ChaosRig {
  ChaosRig(const WorkloadConfig& workload, const fault::FaultPlan& plan,
           NetReliabilityConfig reliability)
      : config(workload),
        space(workload.id_bits),
        ring(space,
             routing::hash_node_ids(workload.nodes, space,
                                    workload.ring_salt)),
        fabric(simulator, sim::Duration::millis(1)) {
    NetNodeConfig node_config;
    node_config.features = config.features;
    node_config.mbr_lifespan = kLifespan;
    node_config.reliability = reliability;
    node_config.reliability.enabled = true;
    for (NodeIndex i = 0; i < config.nodes; ++i) {
      sims.push_back(std::make_unique<SimTransport>(fabric, i));
      faults.push_back(std::make_unique<FaultyTransport>(
          *sims.back(), plan, space,
          config.seed ^ (0x9e3779b97f4a7c15ull * (i + 1))));
      faults.back()->set_clock([this] { return wall_ms; });
    }
    for (NodeIndex i = 0; i < config.nodes; ++i) {
      nodes.push_back(
          std::make_unique<NetNode>(ring, i, *faults[i], node_config));
      NetNode* node = nodes.back().get();
      sim::Simulator* sim_ptr = &simulator;
      sims[i]->set_deliver([node, sim_ptr](routing::Message&& msg) {
        node->deliver(std::move(msg), sim_ptr->now());
      });
    }
  }

  /// Advances wall + sim time together in 10 ms steps, driving every
  /// node's heartbeat/reliability clocks and the fault layers' delay
  /// queues — the in-process analogue of sdsi_node's pump loop.
  void pump(std::int64_t ms) {
    for (std::int64_t t = 0; t < ms; t += 10) {
      wall_ms += 10;
      for (NodeIndex i = 0; i < config.nodes; ++i) {
        faults[i]->poll(0);
        nodes[i]->heartbeat_tick(wall_ms, simulator.now());
        nodes[i]->reliability_tick(wall_ms, simulator.now());
      }
      simulator.run_until(simulator.now() + sim::Duration::millis(10));
    }
  }

  void run_workload() {
    for (const WorkloadQuery& query : workload_queries(config)) {
      nodes[query.client]->subscribe_similarity(
          query.id, dsp::extract_features(query.window, config.features),
          query.radius, kLifespan, simulator.now());
    }
    pump(200);
    for (NodeIndex node = 0; node < config.nodes; ++node) {
      for (std::uint32_t slot = 0; slot < config.streams_per_node; ++slot) {
        const StreamId stream = workload_stream_id(config, node, slot);
        for (const Sample value : workload_samples(config, stream)) {
          nodes[node]->publish_value(stream, value, simulator.now());
        }
      }
      pump(50);  // let each node's burst drain before the next publisher
    }
    // Convergence: refresh (800 ms) and anti-entropy (600 ms) get several
    // rounds; periodic NPER ticks push whatever matched since.
    for (int round = 0; round < 8; ++round) {
      pump(500);
      for (auto& node : nodes) {
        node->tick(simulator.now());
      }
    }
    pump(500);
  }

  MatchDigest digest() const {
    MatchDigest digest;
    for (const auto& node : nodes) {
      for (const auto& [id, streams] : node->results()) {
        digest[id] = streams;
      }
    }
    return digest;
  }

  WorkloadConfig config;
  sim::Simulator simulator;
  common::IdSpace space;
  NetRing ring;
  SimFabric fabric;
  std::vector<std::unique_ptr<SimTransport>> sims;
  std::vector<std::unique_ptr<FaultyTransport>> faults;
  std::vector<std::unique_ptr<NetNode>> nodes;
  std::int64_t wall_ms = 0;
};

double recall_against(const MatchDigest& reference, const MatchDigest& got) {
  std::uint64_t expected = 0;
  std::uint64_t recovered = 0;
  for (const auto& [query, streams] : reference) {
    const auto it = got.find(query);
    for (const StreamId stream : streams) {
      ++expected;
      if (it != got.end() && it->second.count(stream) > 0) {
        ++recovered;
      }
    }
  }
  return expected == 0 ? 1.0
                       : static_cast<double>(recovered) /
                             static_cast<double>(expected);
}

TEST(NetChaos, ReliabilityStackConvergesUnderBurstyLossAndCorruption) {
  WorkloadConfig config;
  config.nodes = 8;

  fault::FaultPlan plan;
  fault::GilbertElliottParams ge;
  ge.p_bad_to_good = 0.25;
  ge.p_good_to_bad = 0.1 * ge.p_bad_to_good / 0.9;  // ~10% stationary loss
  plan.burst_loss = ge;
  plan.jitter = fault::LatencyJitter{sim::Duration::millis(5)};
  plan.reorder = 0.02;
  plan.corrupt = 0.003;

  ChaosRig rig(config, plan, NetReliabilityConfig{});
  rig.run_workload();

  const MatchDigest reference = run_sim_reference(config);
  const double recall = recall_against(reference, rig.digest());
  EXPECT_GE(recall, 0.95) << "chaos recall floor (see ISSUE acceptance)";

  // Zero unaccounted drops: everything offered either crossed the fabric,
  // was charged to an injected DropCause, or (transiently) sat delayed —
  // and nothing is still delayed after the final pump.
  std::uint64_t offered = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t retransmits = 0;
  for (NodeIndex i = 0; i < config.nodes; ++i) {
    EXPECT_EQ(rig.faults[i]->pending_delayed(), 0u);
    const FaultyTransportStats& s = rig.faults[i]->stats();
    offered += s.offered;
    forwarded += s.forwarded;
    dropped += s.dropped();
    retransmits += rig.nodes[i]->counters().mbr_retransmits;
  }
  EXPECT_EQ(offered, forwarded + dropped);
  EXPECT_GT(dropped, 0u) << "the plan should actually have injected loss";
  EXPECT_GT(retransmits, 0u) << "recovery should have done real work";
}

TEST(NetChaos, DelayOnlyChaosCausesFalseSuspicionsButNoDeaths) {
  WorkloadConfig config;
  config.nodes = 4;
  config.samples_per_stream = 200;

  fault::FaultPlan plan;
  plan.jitter = fault::LatencyJitter{sim::Duration::millis(80)};

  // Aggressive suspicion (60 ms < heartbeat period + max jitter) so late
  // heartbeats do trip it; the dead deadline stays far beyond any possible
  // delay-induced silence.
  NetReliabilityConfig reliability;
  reliability.detector.suspect_after_ms = 60;
  reliability.detector.dead_after_ms = 600;

  ChaosRig rig(config, plan, reliability);
  rig.run_workload();

  // Nothing was lost, so the reliable ring must reproduce the reference
  // matched sets exactly.
  EXPECT_EQ(rig.digest(), run_sim_reference(config));

  std::uint64_t suspects = 0;
  std::uint64_t false_suspicions = 0;
  std::uint64_t deaths = 0;
  for (NodeIndex i = 0; i < config.nodes; ++i) {
    const FailureDetector::Counters& c =
        rig.nodes[i]->detector().counters();
    suspects += c.suspects;
    false_suspicions += c.false_suspicions;
    deaths += c.deaths;
    for (NodeIndex peer = 0; peer < config.nodes; ++peer) {
      EXPECT_EQ(rig.nodes[i]->detector().health(peer), PeerHealth::kAlive)
          << "node " << i << " still doubts peer " << peer;
    }
  }
  EXPECT_GT(suspects, 0u) << "jitter should have tripped the suspect timer";
  EXPECT_EQ(deaths, 0u) << "delay alone must never excise a peer";
  EXPECT_EQ(false_suspicions, suspects)
      << "every delay-induced suspicion must have healed";
}

}  // namespace
}  // namespace sdsi::net
