// Canonical sample message per wire kind, shared by the codec round-trip
// test and the golden-bytes fixtures. Deliberately deterministic (no rng):
// the golden files pin encode_frame(sample_message(kind)) byte for byte.
#pragma once

#include <limits>
#include <memory>
#include <vector>

#include "core/query.hpp"
#include "net/wire.hpp"

namespace sdsi::net::testing {

inline dsp::FeatureVector sample_features() {
  return dsp::FeatureVector({{0.25, -0.5}, {0.125, 1.0}});
}

inline dsp::Mbr sample_mbr() {
  return dsp::Mbr({-0.5, -0.25, 0.0, 0.0}, {0.5, 0.25, 0.125, 0.0});
}

inline std::shared_ptr<const core::SimilarityQuery> sample_query() {
  core::SimilarityQuery query;
  query.id = 7;
  query.client = 3;
  query.features = sample_features();
  query.radius = 0.35;
  query.lifespan = sim::Duration::seconds(60);
  query.issued_at = sim::SimTime::from_micros(1'000'000);
  return std::make_shared<const core::SimilarityQuery>(std::move(query));
}

inline core::SimilarityMatch sample_match() {
  core::SimilarityMatch match;
  match.query = 7;
  match.stream = 42;
  match.bound_distance = 0.125;
  match.detected_at = sim::SimTime::from_micros(2'500'000);
  return match;
}

template <typename T>
void set_payload(routing::Message& msg, T payload) {
  msg.payload = std::shared_ptr<const T>(
      std::make_shared<const T>(std::move(payload)));
}

/// A fully populated envelope + representative payload for `kind`.
inline routing::Message sample_message(routing::MsgKind kind) {
  using routing::MsgKind;
  routing::Message msg;
  msg.kind = kind;
  msg.target_key = 0xBEEF;
  msg.origin = 2;
  msg.range_internal = true;
  msg.range_dir = routing::RangeDir::kUp;
  msg.has_range = true;
  msg.range_lo = 0x1000;
  msg.range_hi = 0x2000;
  msg.reroute_on_dead = true;
  msg.hops = 3;
  msg.sent_at = sim::SimTime::from_micros(5'000'000);
  msg.trace_id = 0x1122334455667788ull;

  switch (kind) {
    case MsgKind::kInvalid:
      break;
    case MsgKind::kMbrUpdate: {
      core::MbrPayload payload;
      payload.stream = 42;
      payload.source = 2;
      payload.mbr = sample_mbr();
      payload.batch_seq = 9;
      payload.expires = sim::SimTime::from_micros(90'000'000);
      set_payload(msg, std::move(payload));
      break;
    }
    case MsgKind::kSimilarityQuery: {
      core::SimilarityQueryPayload payload;
      payload.query = sample_query();
      payload.middle_key = 0x1800;
      set_payload(msg, std::move(payload));
      break;
    }
    case MsgKind::kInnerProductQuery: {
      core::InnerProductQuery query;
      query.id = 11;
      query.client = 1;
      query.stream = 42;
      query.index = {1.0, 0.0, 1.0};
      query.weights = {0.5, 0.25, 0.25};
      query.lifespan = sim::Duration::seconds(30);
      query.issued_at = sim::SimTime::from_micros(1'500'000);
      core::InnerProductQueryPayload payload;
      payload.query =
          std::make_shared<const core::InnerProductQuery>(std::move(query));
      set_payload(msg, std::move(payload));
      break;
    }
    case MsgKind::kResponse: {
      core::ResponsePayload payload;
      payload.query = 7;
      payload.client = 3;
      payload.inner_product = false;
      payload.matches = {sample_match()};
      payload.inner_product_value = 0.75;
      payload.aggregator = 5;
      payload.push_seq = 4;
      set_payload(msg, std::move(payload));
      break;
    }
    case MsgKind::kNeighborExchange: {
      core::MatchReport report;
      report.match = sample_match();
      report.client = 3;
      report.middle_key = 0x1800;
      report.query_expires = sim::SimTime::from_micros(61'000'000);
      core::NeighborDigestPayload payload;
      payload.reports = {report};
      set_payload(msg, std::move(payload));
      break;
    }
    case MsgKind::kLocationPut: {
      set_payload(msg, core::LocationPutPayload{42, 2});
      break;
    }
    case MsgKind::kLocationGet: {
      set_payload(msg, core::LocationGetPayload{42, 1});
      break;
    }
    case MsgKind::kLocationReply: {
      set_payload(msg, core::LocationReplyPayload{42, kInvalidNode});
      break;
    }
    case MsgKind::kMbrAck: {
      set_payload(msg, core::MbrAckPayload{42, 9});
      break;
    }
    case MsgKind::kResponseAck: {
      set_payload(msg, core::ResponseAckPayload{7, 4});
      break;
    }
    case MsgKind::kReplicaPut: {
      core::ReplicaMbrEntry entry;
      entry.stream = 42;
      entry.source = 2;
      entry.mbr = sample_mbr();
      entry.batch_seq = 9;
      entry.expires = sim::SimTime::from_micros(90'000'000);
      core::ReplicaSubscriptionEntry sub;
      sub.query = sample_query();
      sub.middle_key = 0x1800;
      sub.expires = sim::SimTime::from_micros(61'000'000);
      core::ReplicaPutPayload payload;
      payload.from = 4;
      payload.mbrs = {entry};
      payload.subscriptions = {std::move(sub)};
      payload.handoff = true;
      payload.repair = false;
      set_payload(msg, std::move(payload));
      break;
    }
    case MsgKind::kHandoffRequest: {
      set_payload(msg, core::HandoffRequestPayload{6, 0x0FFF, 0x1FFF});
      break;
    }
    case MsgKind::kAntiEntropyDigest: {
      core::AntiEntropyDigestPayload payload;
      payload.from = 2;
      payload.lo = 0x0FFF;
      payload.hi = 0x1FFF;
      payload.mbr_keys = {{42, 9}, {43, 1}};
      payload.query_ids = {7, 11};
      set_payload(msg, std::move(payload));
      break;
    }
    case MsgKind::kAntiEntropyRequest: {
      core::AntiEntropyRequestPayload payload;
      payload.requester = 5;
      payload.mbr_keys = {{43, 1}};
      payload.query_ids = {11};
      set_payload(msg, std::move(payload));
      break;
    }
    case MsgKind::kAggregatorReplica: {
      core::AggregatorReplicaPayload payload;
      payload.query = 7;
      payload.client = 3;
      payload.middle_key = 0x1800;
      payload.expires = sim::SimTime::from_micros(61'000'000);
      payload.owner = 2;
      payload.matches = {sample_match()};
      set_payload(msg, std::move(payload));
      break;
    }
    case MsgKind::kHeartbeat: {
      set_payload(msg, core::HeartbeatPayload{2, 1, 17});
      break;
    }
  }
  return msg;
}

}  // namespace sdsi::net::testing
