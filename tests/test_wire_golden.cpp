// Golden-bytes pin of wire protocol v1: one committed fixture per message
// kind under tests/golden/wire_v1/, each the exact frame encode_frame
// produces for the canonical sample message. These bytes are the protocol —
// any codec change that alters them is a protocol break and must bump
// kWireVersion instead of editing the fixtures.
//
// Regenerating (new kind appended, NEVER for layout changes):
//   SDSI_REGEN_GOLDEN=1 ./test_wire_golden
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "net/wire.hpp"
#include "wire_samples.hpp"

#ifndef SDSI_GOLDEN_DIR
#error "build must define SDSI_GOLDEN_DIR"
#endif

namespace sdsi::net {
namespace {

std::string fixture_path(routing::MsgKind kind) {
  return std::string(SDSI_GOLDEN_DIR) + "/wire_v1/" +
         routing::msg_kind_name(kind) + ".bin";
}

std::vector<std::uint8_t> read_fixture(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return {};
  }
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

TEST(WireGolden, V1FramesArePinnedForever) {
  const bool regen = std::getenv("SDSI_REGEN_GOLDEN") != nullptr;
  for (std::uint16_t raw = 1; raw <= routing::kNumMsgKinds; ++raw) {
    const auto kind = static_cast<routing::MsgKind>(raw);
    const std::vector<std::uint8_t> wire =
        encode_frame(testing::sample_message(kind));
    const std::string path = fixture_path(kind);

    if (regen) {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      ASSERT_TRUE(out.is_open()) << path;
      out.write(reinterpret_cast<const char*>(wire.data()),
                static_cast<std::streamsize>(wire.size()));
      continue;
    }

    const std::vector<std::uint8_t> golden = read_fixture(path);
    ASSERT_FALSE(golden.empty())
        << "missing fixture " << path
        << " (run with SDSI_REGEN_GOLDEN=1 after adding a NEW kind)";
    ASSERT_EQ(wire, golden)
        << routing::msg_kind_name(kind)
        << ": encoder no longer reproduces the pinned v1 bytes — this is a "
           "wire protocol break; bump kWireVersion instead";

    // The pinned bytes must also decode and re-encode canonically.
    routing::Message decoded;
    ASSERT_EQ(decode_frame(golden, &decoded), DecodeResult::kOk)
        << routing::msg_kind_name(kind);
    EXPECT_EQ(encode_frame(decoded), golden) << routing::msg_kind_name(kind);
  }
}

}  // namespace
}  // namespace sdsi::net
