// Streaming statistics used by the experiment reports.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace sdsi::common {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 0.0);
  EXPECT_EQ(stats.max(), 0.0);
}

TEST(OnlineStats, MatchesDirectComputation) {
  const std::vector<double> data{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  OnlineStats stats;
  double sum = 0.0;
  for (const double x : data) {
    stats.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(data.size());
  double ss = 0.0;
  for (const double x : data) {
    ss += (x - mean) * (x - mean);
  }
  EXPECT_EQ(stats.count(), data.size());
  EXPECT_DOUBLE_EQ(stats.mean(), mean);
  EXPECT_NEAR(stats.variance(), ss / (static_cast<double>(data.size()) - 1),
              1e-12);
  EXPECT_EQ(stats.min(), 1.0);
  EXPECT_EQ(stats.max(), 9.0);
  EXPECT_NEAR(stats.sum(), sum, 1e-12);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats stats;
  stats.add(7.5);
  EXPECT_EQ(stats.mean(), 7.5);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 7.5);
  EXPECT_EQ(stats.max(), 7.5);
}

TEST(OnlineStats, MergeEqualsSequential) {
  Pcg32 rng(1, 1);
  OnlineStats whole;
  OnlineStats left;
  OnlineStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal() * 3.0 + 1.0;
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  a.add(2.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps to bucket 0
  h.add(0.5);    // bucket 0
  h.add(3.0);    // bucket 1
  h.add(9.9);    // bucket 4
  h.add(100.0);  // clamps to bucket 4
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_low(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_high(1), 4.0);
}

TEST(Histogram, FractionAbove) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) {
    h.add(i + 0.5);
  }
  EXPECT_DOUBLE_EQ(h.fraction_above(5.0), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_above(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.fraction_above(10.0), 0.0);
}

TEST(Percentiles, MedianAndExtremes) {
  Percentiles p;
  for (const double x : {5.0, 1.0, 3.0, 2.0, 4.0}) {
    p.add(x);
  }
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.median(), 3.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 5.0);
}

TEST(Percentiles, AddAfterQueryResorts) {
  Percentiles p;
  p.add(10.0);
  p.add(20.0);
  // Nearest-rank with two samples: rank 0.5*(2-1)+0.5 rounds to index 1.
  EXPECT_DOUBLE_EQ(p.median(), 20.0);
  p.add(1.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
}

class HistogramWidths
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(HistogramWidths, TotalAlwaysMatchesAdds) {
  const auto [lo, hi, buckets] = GetParam();
  Histogram h(lo, hi, static_cast<std::size_t>(buckets));
  Pcg32 rng(9, 9);
  for (int i = 0; i < 500; ++i) {
    h.add(rng.uniform(lo - 1.0, hi + 1.0));
  }
  std::uint64_t sum = 0;
  for (std::size_t b = 0; b < h.bucket_count(); ++b) {
    sum += h.bucket(b);
  }
  EXPECT_EQ(sum, 500u);
  EXPECT_EQ(h.total(), 500u);
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, HistogramWidths,
    ::testing::Values(std::tuple{0.0, 1.0, 1}, std::tuple{0.0, 10.0, 7},
                      std::tuple{-5.0, 5.0, 20}, std::tuple{100.0, 200.0, 3}));

}  // namespace
}  // namespace sdsi::common
