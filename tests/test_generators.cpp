// Workload generators: the paper's random-walk model and the synthetic
// stand-ins for the S&P500 and CMU host-load datasets.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "streams/generators.hpp"

namespace sdsi::streams {
namespace {

common::Pcg32 rng(std::uint64_t seed) { return common::Pcg32(seed, 1); }

TEST(RandomWalk, StepsStayInBounds) {
  RandomWalkGenerator walk(rng(1), 10.0, -0.5, 0.5);
  Sample prev = 10.0;
  for (int i = 0; i < 1000; ++i) {
    const Sample next = walk.next();
    EXPECT_LE(std::abs(next - prev), 0.5 + 1e-12);
    prev = next;
  }
}

TEST(RandomWalk, StartsFromGivenValue) {
  RandomWalkGenerator walk(rng(2), 100.0, -1.0, 1.0);
  const Sample first = walk.next();
  EXPECT_NEAR(first, 100.0, 1.0);
}

TEST(RandomWalk, DeterministicForSameRng) {
  RandomWalkGenerator a(rng(3));
  RandomWalkGenerator b(rng(3));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RandomWalk, DiffusesOverTime) {
  // Variance across independent walks grows with t (sanity of the model).
  common::OnlineStats at_10;
  common::OnlineStats at_1000;
  for (std::uint64_t s = 0; s < 200; ++s) {
    RandomWalkGenerator walk(rng(s + 100));
    Sample v = 0.0;
    for (int t = 0; t < 1000; ++t) {
      v = walk.next();
      if (t == 9) {
        at_10.add(v);
      }
    }
    at_1000.add(v);
  }
  EXPECT_GT(at_1000.variance(), 10.0 * at_10.variance());
}

TEST(HostLoad, NonNegative) {
  HostLoadGenerator load(rng(4));
  for (int i = 0; i < 20000; ++i) {
    EXPECT_GE(load.next(), 0.0);
  }
}

TEST(HostLoad, HoversAroundBaseLoad) {
  HostLoadGenerator::Params params;
  params.burst_probability = 0.0;  // isolate the AR + diurnal component
  HostLoadGenerator load(rng(5), params);
  common::OnlineStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(load.next());
  }
  EXPECT_NEAR(stats.mean(), params.base_load, 0.15);
}

TEST(HostLoad, StronglyAutocorrelated) {
  // The Fourier-locality premise (Fig 3b): consecutive values are close.
  HostLoadGenerator load(rng(6));
  common::OnlineStats step_change;
  common::OnlineStats level;
  Sample prev = load.next();
  for (int i = 0; i < 20000; ++i) {
    const Sample next = load.next();
    step_change.add(std::abs(next - prev));
    level.add(next);
    prev = next;
  }
  // Per-step movement is a small fraction of the overall spread.
  EXPECT_LT(step_change.mean(), 0.3 * level.stddev() + 0.05);
}

TEST(HostLoad, BurstsRaiseTheTail) {
  HostLoadGenerator::Params calm;
  calm.burst_probability = 0.0;
  HostLoadGenerator::Params bursty;
  bursty.burst_probability = 0.01;
  HostLoadGenerator a(rng(7), calm);
  HostLoadGenerator b(rng(7), bursty);
  double max_calm = 0.0;
  double max_bursty = 0.0;
  for (int i = 0; i < 20000; ++i) {
    max_calm = std::max(max_calm, a.next());
    max_bursty = std::max(max_bursty, b.next());
  }
  EXPECT_GT(max_bursty, max_calm);
}

TEST(StockMarket, PricesStayPositive) {
  StockMarketModel market(rng(8));
  for (int day = 0; day < 500; ++day) {
    market.step();
  }
  for (std::size_t t = 0; t < market.num_tickers(); ++t) {
    EXPECT_GT(market.close(t), 0.0);
  }
}

TEST(StockMarket, TickerSymbolsAreDistinct) {
  StockMarketModel::Params params;
  params.num_tickers = 20;
  StockMarketModel market(rng(9), params);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = i + 1; j < 20; ++j) {
      EXPECT_NE(market.ticker_symbol(i), market.ticker_symbol(j));
    }
  }
}

TEST(StockMarket, SameSectorCorrelatesMoreThanCrossSector) {
  // The property correlation queries exploit: sector mates co-move.
  StockMarketModel::Params params;
  params.num_tickers = 40;
  params.num_sectors = 4;
  StockMarketModel market(rng(10), params);
  constexpr int kDays = 2000;
  std::vector<std::vector<double>> returns(4);
  std::vector<double> last(4);
  for (std::size_t t = 0; t < 4; ++t) {
    last[t] = market.close(t);
  }
  // Tickers 0 and 4 share sector 0; tickers 1, 2 are sectors 1, 2.
  const std::size_t picks[4] = {0, 4, 1, 2};
  for (int day = 0; day < kDays; ++day) {
    market.step();
    for (int p = 0; p < 4; ++p) {
      const double price = market.close(picks[p]);
      returns[static_cast<std::size_t>(p)].push_back(
          std::log(price / last[static_cast<std::size_t>(p)]));
      last[static_cast<std::size_t>(p)] = price;
    }
  }
  auto corr = [&](std::size_t a, std::size_t b) {
    double ma = 0;
    double mb = 0;
    for (int i = 0; i < kDays; ++i) {
      ma += returns[a][static_cast<std::size_t>(i)];
      mb += returns[b][static_cast<std::size_t>(i)];
    }
    ma /= kDays;
    mb /= kDays;
    double cov = 0;
    double va = 0;
    double vb = 0;
    for (int i = 0; i < kDays; ++i) {
      const double da = returns[a][static_cast<std::size_t>(i)] - ma;
      const double db = returns[b][static_cast<std::size_t>(i)] - mb;
      cov += da * db;
      va += da * da;
      vb += db * db;
    }
    return cov / std::sqrt(va * vb);
  };
  const double same_sector = corr(0, 1);   // tickers 0 and 4
  const double cross_sector = corr(2, 3);  // tickers 1 and 2
  EXPECT_GT(same_sector, cross_sector + 0.05);
  EXPECT_GT(same_sector, 0.5);  // market + sector factors dominate
}

TEST(StockMarket, BarsAreConsistent) {
  StockMarketModel market(rng(11));
  market.step();
  const DailyBar bar = market.bar(0);
  EXPECT_GE(bar.high, std::max(bar.open, bar.close));
  EXPECT_LE(bar.low, std::min(bar.open, bar.close));
  EXPECT_GT(bar.volume, 0.0);
}

TEST(StockTickerStream, AdvancesMarketOncePerRound) {
  auto market = std::make_shared<StockMarketModel>(rng(12));
  StockTickerStream s0(market, 0);
  StockTickerStream s1(market, 1);
  const Sample a0 = s0.next();  // steps the market
  const Sample a1 = s1.next();  // same day
  EXPECT_EQ(a1, market->close(1));
  const Sample b0 = s0.next();  // next day
  EXPECT_NE(a0, b0);            // prices moved (almost surely)
}

TEST(PoissonProcess, MeanGapMatchesRate) {
  PoissonProcess arrivals(rng(13), 2.0);
  common::OnlineStats gaps;
  for (int i = 0; i < 50000; ++i) {
    gaps.add(arrivals.next_gap_seconds());
  }
  EXPECT_NEAR(gaps.mean(), 0.5, 0.01);
  // Exponential: std == mean.
  EXPECT_NEAR(gaps.stddev(), 0.5, 0.02);
}

TEST(GeneratorNames, AreDescriptive) {
  EXPECT_EQ(RandomWalkGenerator(rng(1)).name(), "random-walk");
  EXPECT_EQ(HostLoadGenerator(rng(1)).name(), "host-load");
  auto market = std::make_shared<StockMarketModel>(rng(1));
  EXPECT_EQ(StockTickerStream(market, 0).name(), "stock:TK000");
}

}  // namespace
}  // namespace sdsi::streams
