// Trace-event layer: auto-assigned trace ids, span events emitted by the
// routing layer, and — the correlation property everything rests on — every
// copy of a range multicast carrying the originator's trace id, for both
// propagation strategies.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "obs/trace.hpp"
#include "routing/static_ring.hpp"

namespace sdsi::routing {
namespace {

using obs::TraceEventKind;
using obs::TraceRecord;

struct Harness {
  sim::Simulator sim;
  StaticRing ring;
  obs::VectorTraceSink sink;
  std::vector<Message> delivered;

  Harness(common::IdSpace space, std::vector<Key> ids)
      : ring(sim, space, std::move(ids)) {
    ring.set_trace_sink(&sink);
    ring.set_deliver([this](NodeIndex, const Message& msg) {
      delivered.push_back(msg);
    });
  }

  std::vector<TraceRecord> events_of(TraceEventKind kind) const {
    std::vector<TraceRecord> out;
    for (const TraceRecord& r : sink.records()) {
      if (r.event == kind) {
        out.push_back(r);
      }
    }
    return out;
  }
};

// The Figure 1 ring: m = 5, nodes at 1, 8, 11, 14, 20, 23.
std::vector<Key> figure1_ids() { return {1, 8, 11, 14, 20, 23}; }

TEST(Trace, SendAssignsAFreshIdAndEmitsOriginateAndDeliver) {
  Harness h(common::IdSpace(5), figure1_ids());
  Message msg;
  msg.kind = static_cast<routing::MsgKind>(2);
  h.ring.send(0, 13, std::move(msg));
  h.sim.run_all();

  ASSERT_EQ(h.delivered.size(), 1u);
  EXPECT_NE(h.delivered[0].trace_id, 0u);

  const auto originates = h.events_of(TraceEventKind::kOriginate);
  const auto delivers = h.events_of(TraceEventKind::kDeliver);
  ASSERT_EQ(originates.size(), 1u);
  ASSERT_EQ(delivers.size(), 1u);
  EXPECT_EQ(originates[0].trace_id, h.delivered[0].trace_id);
  EXPECT_EQ(delivers[0].trace_id, h.delivered[0].trace_id);
  EXPECT_EQ(originates[0].node, 0u);
  EXPECT_EQ(originates[0].kind, 2);
  EXPECT_EQ(delivers[0].target_key, 13u);
}

TEST(Trace, DistinctSendsGetDistinctIds) {
  Harness h(common::IdSpace(5), figure1_ids());
  for (Key key : {Key{13}, Key{17}, Key{26}}) {
    Message msg;
    msg.kind = static_cast<routing::MsgKind>(1);
    h.ring.send(0, key, std::move(msg));
  }
  h.sim.run_all();
  std::set<std::uint64_t> ids;
  for (const Message& msg : h.delivered) {
    ids.insert(msg.trace_id);
  }
  EXPECT_EQ(ids.size(), 3u);
}

TEST(Trace, CallerProvidedIdIsPreserved) {
  Harness h(common::IdSpace(5), figure1_ids());
  Message msg;
  msg.kind = static_cast<routing::MsgKind>(1);
  msg.trace_id = 777;  // middleware pre-allocates one id per MBR publication
  h.ring.send(0, 13, std::move(msg));
  h.sim.run_all();
  ASSERT_EQ(h.delivered.size(), 1u);
  EXPECT_EQ(h.delivered[0].trace_id, 777u);
}

class RangeTraceBothStrategies
    : public ::testing::TestWithParam<MulticastStrategy> {};

TEST_P(RangeTraceBothStrategies, EveryRangeCopySharesTheOriginatorsId) {
  // "[10, 19] needs to be delivered at N11, N14 and N20": three deliveries,
  // one trace id across the original and every forwarded copy.
  Harness h(common::IdSpace(5), figure1_ids());
  Message msg;
  msg.kind = static_cast<routing::MsgKind>(3);
  h.ring.send_range(0, 10, 19, std::move(msg), GetParam());
  h.sim.run_all();

  ASSERT_EQ(h.delivered.size(), 3u);
  const std::uint64_t tid = h.delivered[0].trace_id;
  EXPECT_NE(tid, 0u);
  for (const Message& copy : h.delivered) {
    EXPECT_EQ(copy.trace_id, tid);
  }

  // Exactly one originate; the forwarded copies surface as range_copy spans
  // under the same id, so a sink can reconstruct the multicast tree.
  EXPECT_EQ(h.events_of(TraceEventKind::kOriginate).size(), 1u);
  const auto copies = h.events_of(TraceEventKind::kRangeCopy);
  EXPECT_EQ(copies.size(), 2u);
  for (const TraceRecord& copy : copies) {
    EXPECT_EQ(copy.trace_id, tid);
    EXPECT_TRUE(copy.range_internal);
  }
  const auto delivers = h.events_of(TraceEventKind::kDeliver);
  ASSERT_EQ(delivers.size(), 3u);
  for (const TraceRecord& deliver : delivers) {
    EXPECT_EQ(deliver.trace_id, tid);
  }

  // Every record in the stream belongs to this one multicast.
  for (const TraceRecord& record : h.sink.records()) {
    EXPECT_EQ(record.trace_id, tid);
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, RangeTraceBothStrategies,
                         ::testing::Values(MulticastStrategy::kSequential,
                                           MulticastStrategy::kBidirectional));

TEST(Trace, ConcurrentMulticastsStayDistinguishable) {
  // Two overlapping multicasts: each record must still attribute to exactly
  // one of the two ids, with per-id delivery counts intact.
  Harness h(common::IdSpace(5), figure1_ids());
  Message a;
  a.kind = static_cast<routing::MsgKind>(3);
  Message b;
  b.kind = static_cast<routing::MsgKind>(3);
  h.ring.send_range(0, 10, 19, std::move(a), MulticastStrategy::kSequential);
  h.ring.send_range(3, 20, 1, std::move(b), MulticastStrategy::kSequential);
  h.sim.run_all();

  std::set<std::uint64_t> ids;
  for (const TraceRecord& record : h.sink.records()) {
    ids.insert(record.trace_id);
  }
  EXPECT_EQ(ids.size(), 2u);
  for (const std::uint64_t tid : ids) {
    std::size_t delivers = 0;
    for (const TraceRecord& record : h.sink.records()) {
      if (record.trace_id == tid &&
          record.event == TraceEventKind::kDeliver) {
        ++delivers;
      }
    }
    EXPECT_GE(delivers, 2u);  // [10,19] covers 3 nodes, [20,1] covers 2
  }
}

TEST(Trace, EventNamesMatchTheJsonlSchema) {
  EXPECT_STREQ(obs::trace_event_name(TraceEventKind::kOriginate), "originate");
  EXPECT_STREQ(obs::trace_event_name(TraceEventKind::kRangeCopy),
               "range_copy");
  EXPECT_STREQ(obs::trace_event_name(TraceEventKind::kTransit), "transit");
  EXPECT_STREQ(obs::trace_event_name(TraceEventKind::kDeliver), "deliver");
  EXPECT_STREQ(obs::trace_event_name(TraceEventKind::kDrop), "drop");
  EXPECT_STREQ(obs::trace_event_name(TraceEventKind::kRetry), "retry");
  EXPECT_STREQ(obs::trace_event_name(TraceEventKind::kHeal), "heal");
  EXPECT_STREQ(obs::trace_event_name(TraceEventKind::kRefresh), "refresh");
}

TEST(Trace, NoSinkMeansNoOverheadAndNoCrash) {
  sim::Simulator sim;
  StaticRing ring(sim, common::IdSpace(5), figure1_ids());
  Message msg;
  msg.kind = static_cast<routing::MsgKind>(1);
  ring.send_range(0, 10, 19, std::move(msg), MulticastStrategy::kSequential);
  sim.run_all();  // no sink attached: ids still assigned, nothing recorded
  SUCCEED();
}

}  // namespace
}  // namespace sdsi::routing
