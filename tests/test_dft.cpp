// DFT kernels: known transforms, Parseval, FFT/naive agreement, roundtrips.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "common/rng.hpp"
#include "dsp/dft.hpp"

namespace sdsi::dsp {
namespace {

constexpr double kTol = 1e-9;

std::vector<Sample> random_signal(std::size_t n, std::uint64_t seed) {
  common::Pcg32 rng(seed, 1);
  std::vector<Sample> signal(n);
  for (Sample& x : signal) {
    x = rng.uniform(-2.0, 2.0);
  }
  return signal;
}

TEST(NaiveDft, ConstantSignalIsPureDc) {
  const std::vector<Sample> signal(8, 3.0);
  const auto spectrum = naive_dft(signal);
  // Unitary convention: X_0 = sqrt(N) * mean = 3 * sqrt(8).
  EXPECT_NEAR(spectrum[0].real(), 3.0 * std::sqrt(8.0), kTol);
  EXPECT_NEAR(spectrum[0].imag(), 0.0, kTol);
  for (std::size_t f = 1; f < spectrum.size(); ++f) {
    EXPECT_NEAR(std::abs(spectrum[f]), 0.0, kTol) << "f=" << f;
  }
}

TEST(NaiveDft, PureCosineConcentratesAtItsFrequency) {
  constexpr std::size_t kN = 16;
  std::vector<Sample> signal(kN);
  for (std::size_t j = 0; j < kN; ++j) {
    signal[j] = std::cos(2.0 * std::numbers::pi * 3.0 *
                         static_cast<double>(j) / kN);
  }
  const auto spectrum = naive_dft(signal);
  // Energy sits at F = 3 and its mirror F = 13.
  EXPECT_NEAR(std::abs(spectrum[3]), std::sqrt(kN) / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(spectrum[13]), std::sqrt(kN) / 2.0, 1e-9);
  for (std::size_t f = 0; f < kN; ++f) {
    if (f != 3 && f != 13) {
      EXPECT_NEAR(std::abs(spectrum[f]), 0.0, 1e-9) << "f=" << f;
    }
  }
}

TEST(NaiveDft, UnitImpulseSpreadsFlat) {
  std::vector<Sample> signal(8, 0.0);
  signal[0] = 1.0;
  const auto spectrum = naive_dft(signal);
  for (const Complex& c : spectrum) {
    EXPECT_NEAR(std::abs(c), 1.0 / std::sqrt(8.0), kTol);
  }
}

TEST(NaiveDft, ParsevalEnergyPreserved) {
  const auto signal = random_signal(13, 7);  // non power of two on purpose
  const auto spectrum = naive_dft(signal);
  EXPECT_NEAR(energy(std::span<const Sample>(signal)),
              energy(std::span<const Complex>(spectrum)), 1e-9);
}

TEST(NaiveDft, Linearity) {
  const auto a = random_signal(10, 1);
  const auto b = random_signal(10, 2);
  std::vector<Sample> sum(10);
  for (std::size_t i = 0; i < 10; ++i) {
    sum[i] = 2.0 * a[i] + 3.0 * b[i];
  }
  const auto sa = naive_dft(a);
  const auto sb = naive_dft(b);
  const auto ssum = naive_dft(sum);
  for (std::size_t f = 0; f < 10; ++f) {
    EXPECT_NEAR(std::abs(ssum[f] - (2.0 * sa[f] + 3.0 * sb[f])), 0.0, 1e-9);
  }
}

TEST(NaiveDft, RealSignalHasConjugateSymmetry) {
  const auto signal = random_signal(12, 3);
  const auto spectrum = naive_dft(signal);
  for (std::size_t f = 1; f < 12; ++f) {
    EXPECT_NEAR(std::abs(spectrum[f] - std::conj(spectrum[12 - f])), 0.0,
                1e-9)
        << "f=" << f;
  }
}

TEST(NaiveInverse, RoundTripsRandomSignal) {
  const auto signal = random_signal(9, 11);
  const auto spectrum = naive_dft(signal);
  const auto back = naive_inverse_dft(spectrum);
  for (std::size_t j = 0; j < signal.size(); ++j) {
    EXPECT_NEAR(back[j].real(), signal[j], 1e-9);
    EXPECT_NEAR(back[j].imag(), 0.0, 1e-9);
  }
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  const auto signal = random_signal(n, n);
  const auto fast = fft(signal);
  const auto slow = naive_dft(signal);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t f = 0; f < n; ++f) {
    EXPECT_NEAR(std::abs(fast[f] - slow[f]), 0.0, 1e-8) << "f=" << f;
  }
}

TEST_P(FftSizes, InverseRoundTrips) {
  const std::size_t n = GetParam();
  const auto signal = random_signal(n, n + 100);
  const auto back = inverse_fft(fft(signal));
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_NEAR(back[j].real(), signal[j], 1e-8);
    EXPECT_NEAR(back[j].imag(), 0.0, 1e-8);
  }
}

TEST_P(FftSizes, ParsevalHolds) {
  const std::size_t n = GetParam();
  const auto signal = random_signal(n, n + 200);
  const auto spectrum = fft(signal);
  EXPECT_NEAR(energy(std::span<const Sample>(signal)),
              energy(std::span<const Complex>(spectrum)), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128, 256,
                                           1024));

TEST(Energy, SumsSquares) {
  const std::vector<Sample> signal{1.0, -2.0, 3.0};
  EXPECT_DOUBLE_EQ(energy(std::span<const Sample>(signal)), 14.0);
}

}  // namespace
}  // namespace sdsi::dsp
