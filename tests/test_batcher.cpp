// MBR batching: the fixed-count scheme of Sec IV-G and the adaptive
// precision extension of Sec VI-A.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/batcher.hpp"

namespace sdsi::core {
namespace {

dsp::FeatureVector fv(double re, double im = 0.0) {
  return dsp::FeatureVector({dsp::Complex{re, im}});
}

MbrBatcher::Options fixed(std::size_t beta) {
  MbrBatcher::Options options;
  options.mode = MbrBatcher::Mode::kFixedCount;
  options.batch_size = beta;
  return options;
}

MbrBatcher::Options adaptive(double extent, std::size_t max_batch = 64) {
  MbrBatcher::Options options;
  options.mode = MbrBatcher::Mode::kAdaptive;
  options.max_extent = extent;
  options.max_batch = max_batch;
  return options;
}

TEST(MbrBatcher, FixedCountEmitsEveryBeta) {
  MbrBatcher batcher(fixed(3));
  EXPECT_FALSE(batcher.push(fv(0.1)).has_value());
  EXPECT_FALSE(batcher.push(fv(0.2)).has_value());
  const auto box = batcher.push(fv(0.3));
  ASSERT_TRUE(box.has_value());
  EXPECT_DOUBLE_EQ(box->routing_low(), 0.1);
  EXPECT_DOUBLE_EQ(box->routing_high(), 0.3);
  EXPECT_EQ(batcher.pending(), 0u);
  EXPECT_EQ(batcher.batches_emitted(), 1u);
}

TEST(MbrBatcher, BatchOfOneDegenerates) {
  MbrBatcher batcher(fixed(1));
  const auto box = batcher.push(fv(0.5));
  ASSERT_TRUE(box.has_value());
  EXPECT_DOUBLE_EQ(box->routing_low(), 0.5);
  EXPECT_DOUBLE_EQ(box->routing_high(), 0.5);
}

TEST(MbrBatcher, ConsecutiveBatchesAreIndependent) {
  MbrBatcher batcher(fixed(2));
  (void)batcher.push(fv(0.0));
  (void)batcher.push(fv(0.1));
  (void)batcher.push(fv(0.8));
  const auto box = batcher.push(fv(0.9));
  ASSERT_TRUE(box.has_value());
  EXPECT_DOUBLE_EQ(box->routing_low(), 0.8);  // no bleed from first batch
}

TEST(MbrBatcher, FlushEmitsPartialBatch) {
  MbrBatcher batcher(fixed(10));
  (void)batcher.push(fv(0.3));
  (void)batcher.push(fv(0.4));
  const auto box = batcher.flush();
  ASSERT_TRUE(box.has_value());
  EXPECT_DOUBLE_EQ(box->routing_high(), 0.4);
  EXPECT_FALSE(batcher.flush().has_value());  // nothing left
}

TEST(MbrBatcher, CountsVectorsAndBatches) {
  MbrBatcher batcher(fixed(2));
  for (int i = 0; i < 7; ++i) {
    (void)batcher.push(fv(0.01 * i));
  }
  EXPECT_EQ(batcher.vectors_seen(), 7u);
  EXPECT_EQ(batcher.batches_emitted(), 3u);
  EXPECT_EQ(batcher.pending(), 1u);
}

TEST(MbrBatcher, AdaptiveClosesWhenExtentWouldExceed) {
  MbrBatcher batcher(adaptive(0.1));
  EXPECT_FALSE(batcher.push(fv(0.00)).has_value());
  EXPECT_FALSE(batcher.push(fv(0.05)).has_value());
  EXPECT_FALSE(batcher.push(fv(0.10)).has_value());  // extent exactly 0.1
  // 0.25 would stretch the box to 0.25 > 0.1: the previous batch closes and
  // the new point starts a fresh box.
  const auto box = batcher.push(fv(0.25));
  ASSERT_TRUE(box.has_value());
  EXPECT_DOUBLE_EQ(box->routing_low(), 0.00);
  EXPECT_DOUBLE_EQ(box->routing_high(), 0.10);
  EXPECT_EQ(batcher.pending(), 1u);
}

TEST(MbrBatcher, AdaptiveChecksEveryDimension) {
  MbrBatcher batcher(adaptive(0.1));
  (void)batcher.push(fv(0.0, 0.0));
  // First dimension moves little, imaginary part jumps: must still close.
  const auto box = batcher.push(fv(0.01, 0.5));
  ASSERT_TRUE(box.has_value());
  EXPECT_EQ(batcher.pending(), 1u);
}

TEST(MbrBatcher, AdaptiveRespectsMaxBatch) {
  MbrBatcher batcher(adaptive(10.0, 4));  // extent never binds
  int emitted = 0;
  for (int i = 0; i < 12; ++i) {
    if (batcher.push(fv(0.0)).has_value()) {
      ++emitted;
    }
  }
  EXPECT_EQ(emitted, 2);  // closed at pushes 5 and 9
  EXPECT_EQ(batcher.pending(), 4u);
}

TEST(MbrBatcher, AdaptiveBoxesNeverExceedExtent) {
  common::Pcg32 rng(5, 5);
  MbrBatcher batcher(adaptive(0.08));
  double walk = 0.0;
  for (int i = 0; i < 2000; ++i) {
    walk += rng.uniform(-0.02, 0.02);
    if (const auto box = batcher.push(fv(walk))) {
      EXPECT_LE(box->routing_high() - box->routing_low(), 0.08 + 1e-12);
    }
  }
}

class AdaptiveRateTradeoff : public ::testing::TestWithParam<double> {};

TEST_P(AdaptiveRateTradeoff, SmallerExtentMeansMoreBatches) {
  // The Sec VI-A tradeoff: tighter boxes -> higher update rate.
  const double extent = GetParam();
  common::Pcg32 rng(9, 9);
  MbrBatcher tight(adaptive(extent));
  MbrBatcher loose(adaptive(extent * 4.0));
  double walk = 0.0;
  for (int i = 0; i < 5000; ++i) {
    walk += rng.uniform(-0.01, 0.01);
    (void)tight.push(fv(walk));
    (void)loose.push(fv(walk));
  }
  EXPECT_GT(tight.batches_emitted(), loose.batches_emitted());
}

INSTANTIATE_TEST_SUITE_P(Extents, AdaptiveRateTradeoff,
                         ::testing::Values(0.01, 0.02, 0.05));

}  // namespace
}  // namespace sdsi::core
