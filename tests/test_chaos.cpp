// Chaos harness (ctest label: chaos-smoke): the full seeded scenario the
// robustness bench records — ~10% Gilbert-Elliott bursty link loss for the
// whole run plus a crash wave taking 20% of the data centers down for 20
// seconds — asserting the acceptance floors:
//
//   - with the self-healing path (acked MBRs + soft-state refresh), recall
//     vs the fault-free oracle reaches >= 0.95 within two refresh periods
//     of the faults clearing;
//   - with healing disabled the same faults demonstrably degrade recall;
//   - every number is a pure function of the seed (re-running the chaos
//     scenario reproduces recall and counters exactly).
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace sdsi::core {
namespace {

ExperimentConfig chaos_config(bool faults, bool healing) {
  ExperimentConfig config;
  config.num_nodes = 50;
  config.seed = 42;
  config.warmup = sim::Duration::seconds(60);
  config.measure = sim::Duration::seconds(60);
  config.oracle_sample_period = sim::Duration::millis(500);
  if (faults) {
    fault::GilbertElliottParams burst;
    burst.p_good_to_bad = 0.25 * 0.1 / 0.9;  // ~10% stationary loss
    burst.p_bad_to_good = 0.25;
    config.faults.burst_loss = burst;
    fault::CrashWave wave;
    wave.at = sim::SimTime::zero() + config.warmup + sim::Duration::seconds(10);
    wave.fraction = 0.2;
    wave.down_for = sim::Duration::seconds(20);
    config.faults.crash_waves.push_back(wave);
  }
  if (healing) {
    config.mbr_acks = true;
    config.response_acks = true;
    config.mbr_refresh_period = sim::Duration::millis(1500);
    config.query_refresh_period = sim::Duration::millis(2500);
  }
  config.drain = sim::Duration::millis(3000);  // two MBR refresh periods
  return config;
}

RobustnessReport run_chaos(bool faults, bool healing) {
  Experiment experiment(chaos_config(faults, healing));
  experiment.run();
  return experiment.robustness_report();
}

TEST(Chaos, HealedRecallMeetsFloorWhileUnhealedDegrades) {
  const RobustnessReport clean = run_chaos(false, false);
  const RobustnessReport degraded = run_chaos(true, false);
  const RobustnessReport healed = run_chaos(true, true);

  ASSERT_GT(clean.oracle_pairs, 0u);
  ASSERT_GT(healed.oracle_pairs, 0u);

  // The acceptance floor: two refresh periods after the faults cleared, the
  // healed system is back above 0.95 recall...
  EXPECT_GE(healed.recall, 0.95);
  // ...while the same faults without healing sit demonstrably below it.
  EXPECT_LT(degraded.recall, 0.80);
  EXPECT_GT(healed.recall, degraded.recall + 0.10);
  // The fault-free ceiling bounds both.
  EXPECT_GE(clean.recall, healed.recall);

  // The healing machinery did the work (and is observable in the report).
  EXPECT_GT(healed.mbr_retries, 0u);
  EXPECT_GT(healed.mbr_refreshes, 0u);
  EXPECT_GT(healed.heals, 0u);
  EXPECT_GT(healed.mean_heal_latency_ms, 0.0);
  EXPECT_EQ(healed.crashes, 10u);  // 20% of 50 nodes
  EXPECT_EQ(healed.recoveries, 10u);
  EXPECT_GT(healed.drops_by_cause[static_cast<std::size_t>(
                fault::DropCause::kBurstLoss)],
            0u);
  // Healing traffic gets dropped too, so the healed run observes more
  // total drops than the run that sends each batch once.
  EXPECT_EQ(degraded.mbr_retries, 0u);
  EXPECT_EQ(degraded.mbr_refreshes, 0u);

  // Dedup keeps duplicate delivery bounded even under aggressive refresh.
  EXPECT_LT(healed.duplicate_delivery_rate, 0.5);
  EXPECT_EQ(clean.duplicate_delivery_rate, 0.0);
}

TEST(Chaos, SeededScenarioIsExactlyReproducible) {
  const RobustnessReport a = run_chaos(true, true);
  const RobustnessReport b = run_chaos(true, true);
  EXPECT_EQ(a.recall, b.recall);
  EXPECT_EQ(a.oracle_pairs, b.oracle_pairs);
  EXPECT_EQ(a.delivered_pairs, b.delivered_pairs);
  EXPECT_EQ(a.duplicate_delivery_rate, b.duplicate_delivery_rate);
  EXPECT_EQ(a.duplicate_stores, b.duplicate_stores);
  EXPECT_EQ(a.mbr_retries, b.mbr_retries);
  EXPECT_EQ(a.mbr_refreshes, b.mbr_refreshes);
  EXPECT_EQ(a.mbr_acks, b.mbr_acks);
  EXPECT_EQ(a.heals, b.heals);
  EXPECT_EQ(a.mean_heal_latency_ms, b.mean_heal_latency_ms);
  EXPECT_EQ(a.drops_by_cause, b.drops_by_cause);
}

}  // namespace
}  // namespace sdsi::core
