// Flat-hash DenseMap/DenseSet: contract, erase sweeps, and a randomized
// model check against the standard containers.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/dense_map.hpp"

namespace sdsi {
namespace {

TEST(DenseMap, InsertFindErase) {
  DenseMap<std::uint64_t, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(1), map.end());
  map[1] = 10;
  map[2] = 20;
  auto [it, inserted] = map.try_emplace(1, 99);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(it->second, 10);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_TRUE(map.contains(2));
  EXPECT_EQ(map.at(2), 20);
  EXPECT_EQ(map.erase(1), 1u);
  EXPECT_EQ(map.erase(1), 0u);
  EXPECT_FALSE(map.contains(1));
  EXPECT_EQ(map.size(), 1u);
}

TEST(DenseMap, IterationIsInsertionOrder) {
  DenseMap<int, int> map;
  for (int i = 0; i < 100; ++i) {
    map[i * 7919] = i;
  }
  int expected = 0;
  for (const auto& [key, value] : map) {
    EXPECT_EQ(key, expected * 7919);
    EXPECT_EQ(value, expected);
    ++expected;
  }
  EXPECT_EQ(expected, 100);
}

TEST(DenseMap, EraseSweepVisitsEveryRemainingEntry) {
  DenseMap<int, int> map;
  for (int i = 0; i < 200; ++i) {
    map[i] = i;
  }
  // Standard `it = map.erase(it)` sweep dropping odd keys.
  for (auto it = map.begin(); it != map.end();) {
    if (it->first % 2 == 1) {
      it = map.erase(it);
    } else {
      ++it;
    }
  }
  EXPECT_EQ(map.size(), 100u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(map.contains(i), i % 2 == 0) << i;
  }
}

TEST(DenseMap, InsertOrAssignOverwrites) {
  DenseMap<int, std::string> map;
  map.insert_or_assign(5, "a");
  map.insert_or_assign(5, "b");
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.at(5), "b");
}

TEST(DenseMap, StringKeysSurviveSwapErase) {
  // Swap-with-last relocation must re-index by the moved key's value, not
  // its moved-from shell.
  DenseMap<std::string, int> map;
  for (int i = 0; i < 64; ++i) {
    map["key-" + std::to_string(i)] = i;
  }
  for (int i = 0; i < 64; i += 2) {
    EXPECT_EQ(map.erase("key-" + std::to_string(i)), 1u);
  }
  for (int i = 0; i < 64; ++i) {
    if (i % 2 == 1) {
      EXPECT_EQ(map.at("key-" + std::to_string(i)), i);
    } else {
      EXPECT_FALSE(map.contains("key-" + std::to_string(i)));
    }
  }
}

TEST(DenseMap, RandomizedModelCheck) {
  DenseMap<std::uint32_t, std::uint32_t> map;
  std::unordered_map<std::uint32_t, std::uint32_t> model;
  std::mt19937 rng(1234);
  std::uniform_int_distribution<std::uint32_t> key_dist(0, 511);
  for (int step = 0; step < 100000; ++step) {
    const std::uint32_t key = key_dist(rng);
    switch (rng() % 4) {
      case 0:
      case 1:
        map.insert_or_assign(key, static_cast<std::uint32_t>(step));
        model[key] = static_cast<std::uint32_t>(step);
        break;
      case 2:
        EXPECT_EQ(map.erase(key), model.erase(key));
        break;
      case 3: {
        const auto it = map.find(key);
        const auto model_it = model.find(key);
        ASSERT_EQ(it == map.end(), model_it == model.end());
        if (it != map.end()) {
          EXPECT_EQ(it->second, model_it->second);
        }
        break;
      }
    }
    ASSERT_EQ(map.size(), model.size());
  }
  for (const auto& [key, value] : map) {
    const auto model_it = model.find(key);
    ASSERT_NE(model_it, model.end());
    EXPECT_EQ(value, model_it->second);
  }
}

TEST(DenseSet, InsertContainsErase) {
  DenseSet<std::uint64_t> set;
  EXPECT_FALSE(set.contains(7));
  EXPECT_TRUE(set.insert(7).second);
  EXPECT_FALSE(set.insert(7).second);
  EXPECT_TRUE(set.contains(7));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.erase(7), 1u);
  EXPECT_EQ(set.erase(7), 0u);
  EXPECT_TRUE(set.empty());
}

TEST(DenseSet, RandomizedModelCheck) {
  DenseSet<std::uint32_t> set;
  std::unordered_set<std::uint32_t> model;
  std::mt19937 rng(99);
  std::uniform_int_distribution<std::uint32_t> key_dist(0, 255);
  for (int step = 0; step < 50000; ++step) {
    const std::uint32_t key = key_dist(rng);
    switch (rng() % 3) {
      case 0:
        EXPECT_EQ(set.insert(key).second, model.insert(key).second);
        break;
      case 1:
        EXPECT_EQ(set.erase(key), model.erase(key));
        break;
      case 2:
        EXPECT_EQ(set.contains(key), model.count(key) == 1);
        break;
    }
    ASSERT_EQ(set.size(), model.size());
  }
  for (const std::uint32_t key : set) {
    EXPECT_EQ(model.count(key), 1u);
  }
}

}  // namespace
}  // namespace sdsi
