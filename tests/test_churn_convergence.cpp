// Churn convergence under replication (chaos-smoke).
//
// A seeded random schedule of crashes, recoveries, and fresh joins runs
// against the replication layer (successor-list mirroring, ownership
// handoff, anti-entropy) with soft-state query refresh DISABLED — the
// subscriptions survive churn only because replicas and handoffs carry
// them. After the schedule ends and stabilization + anti-entropy settle,
// every query's client-visible match set must equal the reference
// match_brute_force scan over a global store fed with every publication
// and every query — exact set equality, no lost and no spurious matches.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "chord/network.hpp"
#include "core/experiment.hpp"
#include "core/index_store.hpp"
#include "core/system.hpp"
#include "routing/static_ring.hpp"
#include "streams/generators.hpp"

namespace sdsi::core {
namespace {

constexpr std::size_t kNodes = 24;
constexpr NodeIndex kClient = 0;  // poses every query; never crashed

struct ChurnHarness {
  sim::Simulator sim;
  chord::ChordNetwork net;
  MiddlewareSystem system;
  IndexStore reference;  // global store: every publication + every query
  std::vector<std::shared_ptr<const SimilarityQuery>> queries;

  explicit ChurnHarness(std::uint64_t seed)
      : net(sim, chord_config()),
        system((net.bootstrap(
                    routing::hash_node_ids(kNodes, common::IdSpace(32), seed)),
                net),
               middleware_config()) {
    system.set_publish_hook([this](const MbrPayload& payload) {
      reference.add_mbr(IndexStore::StoredMbr{payload.stream, payload.source,
                                              payload.mbr, payload.batch_seq,
                                              sim.now(), payload.expires});
    });
    system.set_query_hook(
        [this](std::shared_ptr<const SimilarityQuery> query) {
          reference.add_subscription(
              query, 0, query->issued_at + query->lifespan);
          queries.push_back(std::move(query));
        });
  }

  static chord::ChordConfig chord_config() {
    chord::ChordConfig config;
    config.successor_list_length = 6;
    return config;
  }

  static MiddlewareConfig middleware_config() {
    MiddlewareConfig config;
    config.features = experiment_feature_config();
    config.features.window_size = 16;  // MBRs flow within seconds
    // Batches from the whole churn window must still be live at the final
    // check, or the test would only ever examine post-churn state.
    config.mbr_lifespan = sim::Duration::seconds(60);
    config.notify_period = sim::Duration::millis(1000);
    // Publication losses at crash instants heal through acks + refresh;
    // query refresh stays OFF so subscription survival is pure replication.
    config.mbr_ack.enabled = true;
    config.mbr_refresh_period = sim::Duration::seconds(5);
    config.replication_factor = 2;
    config.anti_entropy_period = sim::Duration::millis(500);
    return config;
  }
};

TEST(ChurnConvergence, MatchSetsEqualTheBruteForceReferenceAfterChurn) {
  ChurnHarness h(1337);
  common::RngFactory rng_factory(1337);

  // Background stabilization, as a deployment would run it.
  h.sim.schedule_periodic(h.sim.now() + sim::Duration::millis(250),
                          sim::Duration::millis(250),
                          [&h] { h.net.run_maintenance_rounds(1); });

  // One random-walk stream per original node; a dead data center's sensor
  // uplink is gone, so posting gates on liveness.
  std::vector<std::unique_ptr<streams::RandomWalkGenerator>> generators;
  common::Pcg32 period_rng = rng_factory.make("periods");
  for (NodeIndex node = 0; node < kNodes; ++node) {
    const StreamId sid = 1000 + node;
    h.system.register_stream(node, sid);
    generators.push_back(std::make_unique<streams::RandomWalkGenerator>(
        rng_factory.make("walk", node)));
    auto* generator = generators.back().get();
    const auto period =
        sim::Duration::micros(period_rng.uniform_int(150'000, 250'000));
    h.sim.schedule_periodic(h.sim.now() + period, period,
                            [&h, node, sid, generator] {
                              if (h.net.is_alive(node)) {
                                h.system.post_stream_value(node, sid,
                                                           generator->next());
                              }
                            });
  }

  // Six similarity queries from the fixed client, spread over the churn
  // window, all outliving the run.
  auto query_rng = std::make_shared<common::Pcg32>(rng_factory.make("q"));
  for (int q = 0; q < 6; ++q) {
    h.sim.schedule_at(
        sim::SimTime::zero() + sim::Duration::seconds(2 + 3 * q),
        [&h, query_rng] {
          std::vector<Sample> window(16);
          Sample value = query_rng->uniform(-5.0, 5.0);
          for (Sample& x : window) {
            value += query_rng->uniform(-1.0, 1.0);
            x = value;
          }
          (void)h.system.subscribe_similarity_window(
              kClient, window, 0.2, sim::Duration::seconds(60));
        });
  }

  h.system.start();

  // The churn schedule: one random membership event every ~1.5 s between
  // t=5 s and t=30 s — crash an alive node (never the client, never below
  // two-thirds of the ring), recover a dead one (empty soft state + handoff
  // pull, the Experiment recover idiom), or join a fresh data center.
  auto churn_rng = std::make_shared<common::Pcg32>(rng_factory.make("churn"));
  auto dead = std::make_shared<std::vector<NodeIndex>>();
  for (double at = 5.0; at < 30.0; at += 1.5) {
    h.sim.schedule_at(
        sim::SimTime::zero() + sim::Duration::seconds(at),
        [&h, churn_rng, dead] {
          const std::uint32_t kind = churn_rng->bounded(3);
          if (kind == 0 && h.net.alive_count() > 2 * kNodes / 3) {
            NodeIndex victim;
            do {
              victim = static_cast<NodeIndex>(
                  churn_rng->bounded(static_cast<std::uint32_t>(
                      h.net.num_nodes())));
            } while (victim == kClient || !h.net.is_alive(victim));
            h.net.crash(victim);
            dead->push_back(victim);
          } else if (kind == 1 && !dead->empty()) {
            const std::size_t pick = churn_rng->bounded(
                static_cast<std::uint32_t>(dead->size()));
            const NodeIndex back = (*dead)[pick];
            dead->erase(dead->begin() + static_cast<std::ptrdiff_t>(pick));
            NodeIndex via = kClient;
            h.net.recover(back, via);
            h.system.reset_node_soft_state(back);
            h.system.handle_node_join(back);
          } else {
            const Key id = h.net.id_space().wrap(churn_rng->next64());
            for (NodeIndex n = 0; n < h.net.num_nodes(); ++n) {
              if (h.net.node_id(n) == id) {
                return;  // astronomically unlikely; keep ids distinct
              }
            }
            const NodeIndex newcomer = h.net.join(id, kClient);
            h.system.attach_node(newcomer);
            h.system.handle_node_join(newcomer);
          }
        });
  }

  // Churn ends at t=30 s; settle to t=50 s (stabilization, anti-entropy,
  // ack retries, one refresh period, response pushes all complete).
  h.sim.run_until(sim::SimTime::zero() + sim::Duration::seconds(50));

  // Reference: the global brute-force scan at the final instant.
  std::map<QueryId, std::set<StreamId>> expected;
  for (const auto& query : h.queries) {
    expected[query->id];  // every posed query appears, even if matchless
  }
  for (const SimilarityMatch& match :
       h.reference.match_brute_force(h.sim.now())) {
    expected[match.query].insert(match.stream);
  }

  // Delivered: what the clients actually saw.
  std::map<QueryId, std::set<StreamId>> delivered;
  for (const auto& query : h.queries) {
    const ClientQueryRecord* record = h.system.client_record(query->id);
    ASSERT_NE(record, nullptr) << "query " << query->id;
    delivered[query->id] = std::set<StreamId>(
        record->matched_streams.begin(), record->matched_streams.end());
  }

  std::size_t total_pairs = 0;
  for (const auto& [id, streams] : expected) {
    total_pairs += streams.size();
    EXPECT_EQ(delivered[id], streams) << "query " << id;
  }
  // The schedule must have produced real work or the equality is vacuous.
  EXPECT_GT(total_pairs, 0u);
  EXPECT_GT(h.system.metrics().robustness().replica_puts, 0u);
  EXPECT_GT(h.system.metrics().robustness().handoff_entries, 0u);
}

// The substrate-agnostic successor-list contract the replication layer
// mirrors through: both substrates return the next `count` distinct live
// nodes in ring order, never including the node itself.
TEST(ChurnConvergence, SuccessorListsAgreeAcrossSubstrates) {
  sim::Simulator sim;
  const auto ids = routing::hash_node_ids(10, common::IdSpace(32), 7);

  routing::StaticRing ring(sim, common::IdSpace(32), ids);
  chord::ChordNetwork net(sim, ChurnHarness::chord_config());
  net.bootstrap(ids);

  for (NodeIndex node = 0; node < 10; ++node) {
    const auto expect = ring.successors(node, 3);
    ASSERT_EQ(expect.size(), 3u);
    EXPECT_EQ(net.successors(node, 3), expect) << "node " << node;
    EXPECT_EQ(std::count(expect.begin(), expect.end(), node), 0);
    // Ring order: each entry is the successor of the previous one.
    EXPECT_EQ(expect[0], ring.successor_index(node));
    EXPECT_EQ(expect[1], ring.successor_index(expect[0]));
  }
}

}  // namespace
}  // namespace sdsi::core
