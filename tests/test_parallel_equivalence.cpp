// Experiment-level determinism gate of the parallel engine (the PR's
// acceptance test): the same seeded Table-I-style run at --threads 1, 2, and
// 8 must produce the identical per-query matched stream sets, identical
// recall, and a byte-identical metrics.json (the export schema carries no
// wall-clock fields, and `threads` is deliberately not exported).
//
// Runs under both the chaos-smoke and tsan-smoke labels: the asan preset
// executes it via `ctest -L chaos-smoke`, the tsan preset via
// `ctest -L tsan-smoke`.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace sdsi::core {
namespace {

ExperimentConfig equivalence_config(std::size_t threads,
                                    const std::string& obs_dir) {
  ExperimentConfig config;
  config.num_nodes = 10;
  config.seed = 4242;
  config.substrate = SubstrateKind::kStaticRing;  // cheap: TSAN runs this too
  config.features.window_size = 32;
  config.features.num_coefficients = 2;
  config.workload.stream_period_min = sim::Duration::millis(40);
  config.workload.stream_period_max = sim::Duration::millis(60);
  config.workload.query_rate_per_sec = 3.0;
  config.workload.notify_period = sim::Duration::millis(500);
  config.warmup = sim::Duration::seconds(4);
  config.measure = sim::Duration::seconds(4);
  config.oracle_sample_period = sim::Duration::millis(500);
  config.threads = threads;
  config.obs.dir = obs_dir;
  return config;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Everything the run observed, reduced to comparable form.
struct RunDigest {
  std::map<QueryId, std::set<StreamId>> matched;
  std::uint64_t responses = 0;
  std::uint64_t matches = 0;
  std::uint64_t queries = 0;
  double recall = 0.0;
  std::uint64_t oracle_pairs = 0;
  std::string metrics_json;
};

RunDigest run_once(std::size_t threads, const std::string& obs_dir) {
  Experiment experiment(equivalence_config(threads, obs_dir));
  experiment.run();
  if (threads > 1) {
    EXPECT_NE(experiment.system().worker_pool(), nullptr);
  } else {
    EXPECT_EQ(experiment.system().worker_pool(), nullptr);
  }
  RunDigest digest;
  for (const auto& [id, record] : experiment.system().client_records()) {
    digest.matched[id] = std::set<StreamId>(record.matched_streams.begin(),
                                            record.matched_streams.end());
  }
  const QualityReport quality = experiment.quality_report();
  digest.responses = quality.responses_received;
  digest.matches = quality.matches_reported;
  digest.queries = quality.queries_posed;
  const RobustnessReport robustness = experiment.robustness_report();
  digest.recall = robustness.recall;
  digest.oracle_pairs = robustness.oracle_pairs;
  digest.metrics_json = slurp(obs_dir + "/metrics.json");
  return digest;
}

TEST(ParallelEquivalence, ThreadCountIsUnobservable) {
  const std::string base = ::testing::TempDir() + "sdsi_parallel_eq";
  const RunDigest serial = run_once(1, base + "_t1");

  // The workload must actually exercise the matching pipeline, or the test
  // proves nothing.
  ASSERT_GT(serial.queries, 0u);
  ASSERT_GT(serial.matches, 0u);
  ASSERT_GT(serial.oracle_pairs, 0u);
  ASSERT_FALSE(serial.metrics_json.empty());

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const RunDigest parallel =
        run_once(threads, base + "_t" + std::to_string(threads));
    EXPECT_EQ(parallel.queries, serial.queries) << threads << " lanes";
    EXPECT_EQ(parallel.responses, serial.responses) << threads << " lanes";
    EXPECT_EQ(parallel.matches, serial.matches) << threads << " lanes";
    EXPECT_EQ(parallel.matched, serial.matched) << threads << " lanes";
    EXPECT_EQ(parallel.recall, serial.recall) << threads << " lanes";
    EXPECT_EQ(parallel.oracle_pairs, serial.oracle_pairs) << threads
                                                          << " lanes";
    // Byte equality of the whole export document: nothing about the run —
    // series values, windows, run parameters — may depend on the lane count.
    EXPECT_EQ(parallel.metrics_json, serial.metrics_json) << threads
                                                          << " lanes";
  }
}

}  // namespace
}  // namespace sdsi::core
