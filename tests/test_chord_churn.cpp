// Chord adaptivity: protocol joins, graceful leaves, crashes, and the
// stabilization machinery repairing the ring — the paper's claim that the
// substrate "accommodates dynamic changes without blocking normal operation".
#include <gtest/gtest.h>

#include <set>

#include "chord/network.hpp"
#include "common/rng.hpp"
#include "routing/static_ring.hpp"

namespace sdsi::chord {
namespace {

using routing::Message;

NodeIndex by_id(const ChordNetwork& net, Key id) {
  for (NodeIndex i = 0; i < net.num_nodes(); ++i) {
    if (net.node_id(i) == id) {
      return i;
    }
  }
  return kInvalidNode;
}

/// True when every alive node's successor/predecessor/finger state matches
/// the ground truth ring.
bool fully_converged(const ChordNetwork& net) {
  for (NodeIndex i = 0; i < net.num_nodes(); ++i) {
    if (!net.is_alive(i)) {
      continue;
    }
    const NodeState& state = net.state(i);
    const NodeIndex succ = net.find_successor_oracle(
        net.id_space().wrap(state.id + 1));
    if (state.successor != succ) {
      return false;
    }
    for (unsigned f = 0; f < net.id_space().bits(); ++f) {
      const Key start = net.id_space().finger_start(state.id, f);
      if (state.fingers.get(f) != net.find_successor_oracle(start)) {
        return false;
      }
    }
  }
  return true;
}

TEST(ChordJoin, NewNodeIntegratesAfterStabilization) {
  sim::Simulator sim;
  ChordConfig config;
  config.id_bits = 8;
  ChordNetwork net(sim, config);
  net.bootstrap(std::vector<Key>{10, 80, 160, 230});

  const NodeIndex newcomer = net.join(100, by_id(net, 10));
  EXPECT_TRUE(net.is_alive(newcomer));
  // Immediately after join the newcomer knows its successor...
  EXPECT_EQ(net.node_id(net.state(newcomer).successor), 160u);
  // ...and after a few maintenance rounds the whole ring is consistent.
  net.run_maintenance_rounds(4);
  EXPECT_TRUE(fully_converged(net));
  EXPECT_EQ(net.node_id(net.find_successor_oracle(90)), 100u);
}

TEST(ChordJoin, ManySequentialJoinsConverge) {
  sim::Simulator sim;
  ChordConfig config;
  config.id_bits = 16;
  ChordNetwork net(sim, config);
  net.bootstrap(std::vector<Key>{7});
  common::Pcg32 rng(3, 3);
  std::set<Key> used{7};
  for (int i = 0; i < 40; ++i) {
    Key id;
    do {
      id = net.id_space().wrap(rng.next64());
    } while (used.contains(id));
    used.insert(id);
    net.join(id, 0);
    net.run_maintenance_rounds(2);
  }
  net.run_maintenance_rounds(4);
  EXPECT_EQ(net.alive_count(), 41u);
  EXPECT_TRUE(fully_converged(net));
}

TEST(ChordLeave, GracefulDepartureSplicesRing) {
  sim::Simulator sim;
  ChordConfig config;
  config.id_bits = 8;
  ChordNetwork net(sim, config);
  net.bootstrap(std::vector<Key>{10, 80, 160, 230});
  const NodeIndex n80 = by_id(net, 80);
  net.leave(n80);
  EXPECT_FALSE(net.is_alive(n80));
  EXPECT_EQ(net.alive_count(), 3u);
  // Keys node 80 covered now belong to 160.
  EXPECT_EQ(net.node_id(net.find_successor_oracle(50)), 160u);
  const NodeIndex n10 = by_id(net, 10);
  EXPECT_EQ(net.node_id(net.state(n10).successor), 160u);
  net.run_maintenance_rounds(3);
  EXPECT_TRUE(fully_converged(net));
}

TEST(ChordCrash, StabilizationRepairsAroundFailedNode) {
  sim::Simulator sim;
  ChordConfig config;
  config.id_bits = 8;
  config.successor_list_length = 3;
  ChordNetwork net(sim, config);
  net.bootstrap(std::vector<Key>{10, 80, 160, 230});
  const NodeIndex n160 = by_id(net, 160);
  net.crash(n160);
  // Peers still hold stale pointers; routing survives via successor lists.
  const NodeIndex n80 = by_id(net, 80);
  const auto trace = net.trace_lookup(n80, 100);
  EXPECT_EQ(net.node_id(trace.result), 230u);
  net.run_maintenance_rounds(4);
  EXPECT_TRUE(fully_converged(net));
}

TEST(ChordCrash, MultipleSimultaneousCrashes) {
  sim::Simulator sim;
  ChordConfig config;
  config.id_bits = 16;
  config.successor_list_length = 4;
  ChordNetwork net(sim, config);
  net.bootstrap(routing::hash_node_ids(20, common::IdSpace(16), 5));
  // Crash three non-adjacent nodes at once.
  net.crash(2);
  net.crash(9);
  net.crash(15);
  EXPECT_EQ(net.alive_count(), 17u);
  net.run_maintenance_rounds(6);
  EXPECT_TRUE(fully_converged(net));
  // All keys route correctly afterwards.
  common::Pcg32 rng(1, 1);
  for (int i = 0; i < 100; ++i) {
    const Key key = net.id_space().wrap(rng.next64());
    const auto trace = net.trace_lookup(0, key);
    EXPECT_EQ(trace.result, net.find_successor_oracle(key));
  }
}

TEST(ChordCrash, MessagesToCrashedCoverageRerouteAfterRepair) {
  sim::Simulator sim;
  ChordConfig config;
  config.id_bits = 8;
  ChordNetwork net(sim, config);
  net.bootstrap(std::vector<Key>{10, 80, 160, 230});
  std::vector<std::pair<NodeIndex, Message>> deliveries;
  net.set_deliver([&](NodeIndex at, const Message& msg) {
    deliveries.emplace_back(at, msg);
  });
  net.crash(by_id(net, 160));
  net.run_maintenance_rounds(4);
  Message msg;
  msg.kind = static_cast<routing::MsgKind>(1);
  net.send(by_id(net, 10), 100, std::move(msg));  // key 100 was 160's
  sim.run_all();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(net.node_id(deliveries[0].first), 230u);
}

TEST(ChordChurn, RoutingUnderContinuousChurnNeverMisdelivers) {
  // Interleave sends with joins/leaves; every delivered message must land on
  // the node that covered the key at delivery time (or be dropped, never
  // misdelivered to a node that knows nothing about the arc).
  sim::Simulator sim;
  ChordConfig config;
  config.id_bits = 16;
  config.successor_list_length = 4;
  ChordNetwork net(sim, config);
  net.bootstrap(routing::hash_node_ids(24, common::IdSpace(16), 8));
  common::Pcg32 rng(44, 4);

  std::uint64_t delivered = 0;
  net.set_deliver([&](NodeIndex at, const Message& msg) {
    ++delivered;
    // Deliverer must cover the key per its own (stale but repaired) view.
    const NodeState& state = net.state(at);
    if (state.predecessor != kInvalidNode &&
        net.is_alive(state.predecessor)) {
      EXPECT_TRUE(net.id_space().in_half_open(
          msg.target_key, net.node_id(state.predecessor), state.id))
          << "misdelivery at node " << state.id;
    }
  });

  std::set<Key> used;
  for (NodeIndex i = 0; i < net.num_nodes(); ++i) {
    used.insert(net.node_id(i));
  }
  std::uint64_t sent = 0;
  for (int round = 0; round < 30; ++round) {
    // One membership change per round.
    if (round % 3 == 0) {
      Key id;
      do {
        id = net.id_space().wrap(rng.next64());
      } while (used.contains(id));
      used.insert(id);
      NodeIndex via = 0;
      while (!net.is_alive(via)) {
        ++via;
      }
      net.join(id, via);
    } else if (net.alive_count() > 8) {
      NodeIndex victim;
      do {
        victim = static_cast<NodeIndex>(
            rng.bounded(static_cast<std::uint32_t>(net.num_nodes())));
      } while (!net.is_alive(victim));
      if (round % 3 == 1) {
        net.leave(victim);
      } else {
        net.crash(victim);
      }
    }
    net.run_maintenance_rounds(2);
    for (int s = 0; s < 10; ++s) {
      NodeIndex from;
      do {
        from = static_cast<NodeIndex>(
            rng.bounded(static_cast<std::uint32_t>(net.num_nodes())));
      } while (!net.is_alive(from));
      Message msg;
      msg.kind = static_cast<routing::MsgKind>(1);
      net.send(from, net.id_space().wrap(rng.next64()), std::move(msg));
      ++sent;
    }
    sim.run_all();
  }
  // The vast majority must get through; churn may drop a few in flight.
  EXPECT_GE(delivered + net.lost_messages(), sent);
  EXPECT_GT(delivered, sent * 9 / 10);
}

}  // namespace
}  // namespace sdsi::chord
