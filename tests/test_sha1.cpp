// SHA-1 against the FIPS 180-1 test vectors and structural properties.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/sha1.hpp"

namespace sdsi::common {
namespace {

TEST(Sha1, FipsVectorAbc) {
  EXPECT_EQ(to_hex(sha1("abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, FipsVectorTwoBlocks) {
  EXPECT_EQ(
      to_hex(sha1("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, EmptyString) {
  EXPECT_EQ(to_hex(sha1("")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, MillionAs) {
  // FIPS 180-1 long vector: one million repetitions of 'a'.
  Sha1 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    hasher.update(chunk);
  }
  EXPECT_EQ(to_hex(hasher.finish()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, ExactBlockBoundary) {
  // 64-byte message exercises the padding-into-second-block path.
  const std::string block(64, 'x');
  const Sha1Digest expected = sha1(block);
  Sha1 hasher;
  hasher.update(block);
  EXPECT_EQ(hasher.finish(), expected);
}

TEST(Sha1, FiftyFiveAndFiftySixBytes) {
  // 55 bytes: length fits in the same block as the terminator; 56 does not.
  const std::string m55(55, 'y');
  const std::string m56(56, 'y');
  EXPECT_NE(to_hex(sha1(m55)), to_hex(sha1(m56)));
  EXPECT_EQ(sha1(m55), sha1(m55));
}

TEST(Sha1, ResetReusesHasher) {
  Sha1 hasher;
  hasher.update("first");
  (void)hasher.finish();
  hasher.reset();
  hasher.update("abc");
  EXPECT_EQ(to_hex(hasher.finish()),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, Prefix64IsBigEndianPrefix) {
  const Sha1Digest digest = sha1("abc");
  // First 8 bytes a9 99 3e 36 47 06 81 6a.
  EXPECT_EQ(digest_prefix64(digest), 0xa9993e364706816aull);
}

class Sha1Incremental : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha1Incremental, ChunkedUpdatesMatchOneShot) {
  const std::size_t chunk = GetParam();
  std::string message;
  for (int i = 0; i < 300; ++i) {
    message.push_back(static_cast<char>('A' + i % 57));
  }
  Sha1 hasher;
  for (std::size_t off = 0; off < message.size(); off += chunk) {
    hasher.update(std::string_view(message).substr(off, chunk));
  }
  EXPECT_EQ(hasher.finish(), sha1(message)) << "chunk=" << chunk;
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, Sha1Incremental,
                         ::testing::Values(1, 3, 7, 13, 63, 64, 65, 127, 128,
                                           300));

TEST(Sha1, AvalancheOnSingleBitFlip) {
  std::string a = "the quick brown fox jumps over the lazy dog";
  std::string b = a;
  b[0] = static_cast<char>(b[0] ^ 1);
  const Sha1Digest da = sha1(a);
  const Sha1Digest db = sha1(b);
  int differing_bits = 0;
  for (std::size_t i = 0; i < da.size(); ++i) {
    differing_bits += std::popcount(static_cast<unsigned>(da[i] ^ db[i]));
  }
  // 160 bits, expect ~80 to flip; anything in [40, 120] is clearly avalanched.
  EXPECT_GT(differing_bits, 40);
  EXPECT_LT(differing_bits, 120);
}

TEST(Sha1, Prefix64SpreadsUniformly) {
  // Bucket the prefix of sequential keys; no bucket should be empty or
  // grossly overweight (consistent hashing's load-balance premise).
  constexpr int kBuckets = 16;
  constexpr int kKeys = 4096;
  std::vector<int> buckets(kBuckets, 0);
  for (int i = 0; i < kKeys; ++i) {
    const std::uint64_t h = sha1_prefix64("node:" + std::to_string(i));
    ++buckets[static_cast<std::size_t>(h % kBuckets)];
  }
  for (const int count : buckets) {
    EXPECT_GT(count, kKeys / kBuckets / 2);
    EXPECT_LT(count, kKeys / kBuckets * 2);
  }
}

}  // namespace
}  // namespace sdsi::common
