// Failure injection: message loss in the overlay and subscription-holder
// crashes, and the soft-state mechanisms (periodic MBRs, responses, query
// refresh) that heal them.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "chord/network.hpp"
#include "core/system.hpp"
#include "routing/static_ring.hpp"

namespace sdsi::core {
namespace {

constexpr std::size_t kWindow = 16;

MiddlewareConfig base_config() {
  MiddlewareConfig config;
  config.features.window_size = kWindow;
  config.features.num_coefficients = 2;
  config.batching.batch_size = 3;
  config.mbr_lifespan = sim::Duration::seconds(10);
  config.notify_period = sim::Duration::millis(500);
  return config;
}

struct Harness {
  sim::Simulator sim;
  chord::ChordNetwork net;
  MiddlewareSystem system;

  Harness(std::size_t nodes, MiddlewareConfig config)
      : net(sim,
            [] {
              chord::ChordConfig chord_config;
              chord_config.successor_list_length = 4;
              return chord_config;
            }()),
        system((net.bootstrap(
                    routing::hash_node_ids(nodes, common::IdSpace(32), 13)),
                net),
               config) {
    system.start();
  }

  void run_for(double seconds) {
    sim.run_until(sim.now() + sim::Duration::seconds(seconds));
  }

  dsp::FeatureVector exponential_features(double gamma) const {
    std::vector<Sample> window(kWindow);
    double value = 1.0;
    for (Sample& x : window) {
      value *= gamma;
      x = value;
    }
    return dsp::extract_features(window, base_config().features);
  }

  /// Drives a pure oscillation at a frequency beyond the retained
  /// coefficients: its features sit at the origin, far from every
  /// exponential stream's feature point.
  void start_sine_stream(NodeIndex node, StreamId stream) {
    system.register_stream(node, stream);
    auto tick = std::make_shared<int>(0);
    sim.schedule_periodic(
        sim.now() + sim::Duration::millis(100), sim::Duration::millis(100),
        [this, node, stream, tick] {
          const double x =
              5.0 + std::sin(2.0 * std::numbers::pi * 3.0 * (*tick)++ /
                             static_cast<double>(kWindow));
          system.post_stream_value(node, stream, x);
        });
  }

  /// Drives one exponential stream as a periodic process.
  void start_stream(NodeIndex node, StreamId stream, double gamma) {
    system.register_stream(node, stream);
    auto value = std::make_shared<double>(1.0);
    sim.schedule_periodic(sim.now() + sim::Duration::millis(100),
                          sim::Duration::millis(100),
                          [this, node, stream, gamma, value] {
                            *value *= gamma;
                            if (*value > 1e12) {
                              *value = 1.0;  // keep doubles finite; the
                                             // normalized shape is unchanged
                            }
                            system.post_stream_value(node, stream, *value);
                          });
  }
};

TEST(MessageLoss, SamplerRespectsProbability) {
  sim::Simulator sim;
  routing::StaticRing ring(sim, common::IdSpace(16),
                           routing::hash_node_ids(4, common::IdSpace(16), 1));
  ring.set_message_loss(0.25, common::Pcg32(1, 1));
  int delivered = 0;
  ring.set_deliver([&](NodeIndex, const routing::Message&) { ++delivered; });
  constexpr int kSends = 4000;
  for (int i = 0; i < kSends; ++i) {
    routing::Message msg;
    msg.kind = static_cast<routing::MsgKind>(1);
    ring.send(0, static_cast<Key>(i * 13) & ring.id_space().mask(),
              std::move(msg));
  }
  sim.run_all();
  EXPECT_EQ(delivered + static_cast<int>(ring.dropped_messages()), kSends);
  EXPECT_NEAR(static_cast<double>(ring.dropped_messages()) / kSends, 0.25,
              0.03);
}

TEST(MessageLoss, ZeroProbabilityDropsNothing) {
  sim::Simulator sim;
  routing::StaticRing ring(sim, common::IdSpace(16),
                           routing::hash_node_ids(4, common::IdSpace(16), 1));
  ring.set_message_loss(0.0, common::Pcg32(1, 1));
  for (int i = 0; i < 100; ++i) {
    routing::Message msg;
    msg.kind = static_cast<routing::MsgKind>(1);
    ring.send(0, static_cast<Key>(i), std::move(msg));
  }
  sim.run_all();
  EXPECT_EQ(ring.dropped_messages(), 0u);
}

TEST(MessageLoss, SoftStateStillDetectsSimilarity) {
  // 10% of all transmissions vanish. Because summaries are shipped
  // periodically (every batch) and responses push periodically, the
  // continuous query still converges on the right answer.
  MiddlewareConfig config = base_config();
  config.query_refresh_period = sim::Duration::seconds(2);
  Harness h(10, config);
  h.net.set_message_loss(0.10, common::Pcg32(7, 7));
  h.start_stream(0, 100, 1.10);
  h.start_sine_stream(1, 101);
  h.run_for(5.0);
  const QueryId id = h.system.subscribe_similarity(
      4, h.exponential_features(1.10), 0.08, sim::Duration::seconds(60));
  h.run_for(20.0);
  const ClientQueryRecord* record = h.system.client_record(id);
  EXPECT_GT(h.net.dropped_messages(), 0u);
  EXPECT_TRUE(record->matched_streams.contains(100));
  EXPECT_FALSE(record->matched_streams.contains(101));
  EXPECT_GT(record->responses_received, 0u);
}

TEST(QueryRefresh, HealsSubscriptionAfterHolderCrash) {
  // The node covering the query range crashes. Without refresh, the
  // successor that takes over its arc never learns about the query; with
  // soft-state refresh the subscription reappears and matching resumes.
  for (const bool refresh_enabled : {false, true}) {
    MiddlewareConfig config = base_config();
    if (refresh_enabled) {
      config.query_refresh_period = sim::Duration::seconds(1);
    }
    Harness h(10, config);
    h.start_stream(0, 200, 1.12);
    h.run_for(4.0);

    const dsp::FeatureVector probe = h.exponential_features(1.12);
    const QueryId id = h.system.subscribe_similarity(
        1, probe, 0.02, sim::Duration::seconds(120));
    h.run_for(3.0);
    const ClientQueryRecord* record = h.system.client_record(id);
    EXPECT_TRUE(record->matched_streams.contains(200));

    // Crash the subscription holder (the node covering the probe's key).
    const Key key = h.system.mapper().key_for(probe);
    const NodeIndex holder = h.net.find_successor_oracle(key);
    if (holder == 0 || holder == 1) {
      continue;  // degenerate layout for this seed; scenario not applicable
    }
    h.net.crash(holder);
    h.net.run_maintenance_rounds(4);

    // A NEW stream with the same profile starts after the crash. Its MBRs
    // land on the arc's new owner.
    h.start_stream(3, 201, 1.12);
    h.run_for(10.0);

    if (refresh_enabled) {
      EXPECT_TRUE(record->matched_streams.contains(201))
          << "refresh failed to reinstall the subscription";
    } else {
      EXPECT_FALSE(record->matched_streams.contains(201))
          << "without refresh the new arc owner cannot know the query";
    }
  }
}

TEST(QueryRefresh, StopsAfterLifespan) {
  MiddlewareConfig config = base_config();
  config.query_refresh_period = sim::Duration::millis(500);
  Harness h(8, config);
  (void)h.system.subscribe_similarity(0, h.exponential_features(1.1), 0.05,
                                      sim::Duration::seconds(2));
  h.run_for(4.0);
  const std::uint64_t queries_sent = h.system.metrics().query().originated;
  h.run_for(4.0);
  // No further refresh traffic once the query expired.
  EXPECT_EQ(h.system.metrics().query().originated, queries_sent);
}

}  // namespace
}  // namespace sdsi::core
