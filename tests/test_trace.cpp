// Stream trace I/O: roundtrip fidelity, malformed-input errors, replay.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "streams/trace.hpp"

namespace sdsi::streams {
namespace {

TEST(TraceIo, RoundTripsRecords) {
  const std::vector<TraceRecord> records{
      {1, 0.0, 3.25}, {2, 0.0, -1.5}, {1, 0.2, 4.0}, {2, 0.2, 0.0}};
  std::stringstream buffer;
  write_trace(buffer, records);
  EXPECT_EQ(read_trace(buffer), records);
}

TEST(TraceIo, EmptyTrace) {
  std::stringstream buffer;
  write_trace(buffer, {});
  EXPECT_TRUE(read_trace(buffer).empty());
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  std::stringstream in(
      "# header comment\n"
      "\n"
      "7,1.5,42.0\n"
      "   # indented comment\n"
      "7,2.0,43.0\n");
  const auto records = read_trace(in);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].stream, 7u);
  EXPECT_DOUBLE_EQ(records[0].timestamp, 1.5);
  EXPECT_DOUBLE_EQ(records[1].value, 43.0);
}

TEST(TraceIo, ToleratesSpacesAndCrlf) {
  std::stringstream in("5 , 0.5 , 1.25\r\n");
  const auto records = read_trace(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].stream, 5u);
  EXPECT_DOUBLE_EQ(records[0].value, 1.25);
}

TEST(TraceIo, RejectsWrongFieldCount) {
  std::stringstream too_few("1,2.0\n");
  EXPECT_THROW(read_trace(too_few), TraceParseError);
  std::stringstream too_many("1,2.0,3.0,4.0\n");
  EXPECT_THROW(read_trace(too_many), TraceParseError);
}

TEST(TraceIo, RejectsGarbageNumbersWithLineInfo) {
  std::stringstream in("1,0.0,1.0\nx,0.0,1.0\n");
  try {
    read_trace(in);
    FAIL() << "expected TraceParseError";
  } catch (const TraceParseError& error) {
    EXPECT_EQ(error.line(), 2u);
    EXPECT_NE(std::string(error.what()).find("stream id"),
              std::string::npos);
  }
}

TEST(TraceIo, RejectsPartialNumber) {
  std::stringstream in("1,0.0,1.0abc\n");
  EXPECT_THROW(read_trace(in), TraceParseError);
}

TEST(RecordGenerator, CapturesWithTimestamps) {
  common::Pcg32 rng(1, 1);
  RandomWalkGenerator walk(rng);
  const auto records = record_generator(walk, 9, 5, 0.25);
  ASSERT_EQ(records.size(), 5u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].stream, 9u);
    EXPECT_DOUBLE_EQ(records[i].timestamp, 0.25 * static_cast<double>(i));
  }
}

TEST(TraceReplay, ReplaysOneStreamInOrder) {
  const std::vector<TraceRecord> records{
      {1, 0.2, 20.0}, {2, 0.0, 99.0}, {1, 0.0, 10.0}, {1, 0.4, 30.0}};
  TraceReplayGenerator replay(records, 1);
  EXPECT_EQ(replay.remaining(), 3u);
  EXPECT_DOUBLE_EQ(replay.next(), 10.0);  // timestamp order, not file order
  EXPECT_DOUBLE_EQ(replay.next(), 20.0);
  EXPECT_DOUBLE_EQ(replay.next(), 30.0);
  EXPECT_TRUE(replay.exhausted());
  EXPECT_THROW(replay.next(), std::out_of_range);
}

TEST(TraceReplay, UnknownStreamIsEmpty) {
  const std::vector<TraceRecord> records{{1, 0.0, 1.0}};
  TraceReplayGenerator replay(records, 42);
  EXPECT_TRUE(replay.exhausted());
}

TEST(TraceReplay, EndToEndCaptureReplayMatchesGenerator) {
  common::Pcg32 rng(3, 3);
  RandomWalkGenerator original(rng);
  common::Pcg32 rng_copy(3, 3);
  RandomWalkGenerator reference(rng_copy);

  const auto records = record_generator(original, 5, 100, 0.1);
  std::stringstream buffer;
  write_trace(buffer, records);
  const auto loaded = read_trace(buffer);
  TraceReplayGenerator replay(loaded, 5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(replay.next(), reference.next());
  }
}

}  // namespace
}  // namespace sdsi::streams
