// The Section V experiment harness: determinism, report consistency, and the
// qualitative shapes the paper's figures rest on (small scale, fast).
#include <gtest/gtest.h>

#include <numeric>

#include "core/experiment.hpp"

namespace sdsi::core {
namespace {

ExperimentConfig quick(std::size_t nodes, std::uint64_t seed = 42) {
  ExperimentConfig config;
  config.num_nodes = nodes;
  config.seed = seed;
  config.warmup = sim::Duration::seconds(30);
  config.measure = sim::Duration::seconds(20);
  return config;
}

TEST(Experiment, ProducesTrafficAndResponses) {
  Experiment exp(quick(30));
  exp.run();
  const QualityReport quality = exp.quality_report();
  EXPECT_GT(quality.queries_posed, 20u);
  EXPECT_GT(quality.responses_received, 0u);
  const LoadReport load = exp.load_report();
  EXPECT_GT(load.total, 0.0);
  EXPECT_GT(load.per_component[static_cast<std::size_t>(
                LoadComponent::kMbrSource)],
            0.0);
}

TEST(Experiment, LoadReportComponentsSumToTotal) {
  Experiment exp(quick(20));
  exp.run();
  const LoadReport load = exp.load_report();
  const double sum = std::accumulate(load.per_component.begin(),
                                     load.per_component.end(), 0.0);
  EXPECT_NEAR(load.total, sum, 1e-9);
  EXPECT_EQ(load.per_node_total.size(), 20u);
  // Per-node totals aggregate to N * average.
  const double per_node_sum = std::accumulate(
      load.per_node_total.begin(), load.per_node_total.end(), 0.0);
  EXPECT_NEAR(per_node_sum / 20.0, load.total, 1e-9);
}

TEST(Experiment, DeterministicForSameSeed) {
  Experiment a(quick(15, 7));
  Experiment b(quick(15, 7));
  a.run();
  b.run();
  EXPECT_EQ(a.simulator().executed_events(), b.simulator().executed_events());
  EXPECT_EQ(a.load_report().per_node_total, b.load_report().per_node_total);
  EXPECT_EQ(a.quality_report().responses_received,
            b.quality_report().responses_received);
}

TEST(Experiment, DifferentSeedsDiffer) {
  Experiment a(quick(15, 1));
  Experiment b(quick(15, 2));
  a.run();
  b.run();
  EXPECT_NE(a.simulator().executed_events(), b.simulator().executed_events());
}

TEST(Experiment, HopsAreLogScaleOnChord) {
  Experiment exp(quick(40));
  exp.run();
  const HopsReport hops = exp.hops_report();
  // log2(40) ~ 5.3; average routed hops should be around half that.
  EXPECT_GT(hops.mbr, 1.0);
  EXPECT_LT(hops.mbr, 6.0);
  // Range-forwarded copies travel exactly one ring hop.
  EXPECT_NEAR(hops.mbr_internal, 1.0, 1e-9);
}

TEST(Experiment, StaticRingSubstrateHasSingleHopRouting) {
  ExperimentConfig config = quick(20);
  config.substrate = SubstrateKind::kStaticRing;
  Experiment exp(config);
  exp.run();
  const HopsReport hops = exp.hops_report();
  EXPECT_LE(hops.mbr, 1.0);
  const OverheadReport overhead = exp.overhead_report();
  EXPECT_EQ(overhead.mbr_transit, 0.0);  // no overlay relays on one-hop DHT
}

TEST(Experiment, QueryInternalGrowsWithRadius) {
  // Fig 7(b) vs 7(a): doubling the radius roughly doubles the number of
  // nodes a query covers.
  ExperimentConfig narrow = quick(40);
  narrow.workload.query_radius = 0.1;
  ExperimentConfig wide = quick(40);
  wide.workload.query_radius = 0.2;
  Experiment a(narrow);
  Experiment b(wide);
  a.run();
  b.run();
  const double narrow_internal = a.overhead_report().query_internal;
  const double wide_internal = b.overhead_report().query_internal;
  EXPECT_GT(wide_internal, 1.4 * narrow_internal);
}

TEST(Experiment, LoadIsNotHeavyTailed) {
  // Fig 6(b): the distribution of load across nodes must not be heavy
  // tailed (max bounded by a small multiple of the mean).
  Experiment exp(quick(40));
  exp.run();
  const LoadReport load = exp.load_report();
  const double mean = load.total;
  double max = 0.0;
  for (const double rate : load.per_node_total) {
    max = std::max(max, rate);
  }
  EXPECT_LT(max, 8.0 * mean);
}

TEST(Experiment, BidirectionalMulticastReducesQueryLatency) {
  ExperimentConfig seq = quick(40);
  seq.multicast = routing::MulticastStrategy::kSequential;
  ExperimentConfig bidir = quick(40);
  bidir.multicast = routing::MulticastStrategy::kBidirectional;
  Experiment a(seq);
  Experiment b(bidir);
  a.run();
  b.run();
  // Same coverage -> same internal message counts (query radius identical).
  EXPECT_NEAR(a.overhead_report().query_internal,
              b.overhead_report().query_internal, 1.0);
  // Cumulative range-walk delay shrinks with the bidirectional strategy
  // (copies fan out from the middle instead of walking end to end).
  const double seq_lat = a.metrics().query().range_latency_ms.max();
  const double bi_lat = b.metrics().query().range_latency_ms.max();
  EXPECT_LT(bi_lat, seq_lat);
}

TEST(Experiment, QualityFirstResponseWithinLifespanScale) {
  Experiment exp(quick(25));
  exp.run();
  const QualityReport quality = exp.quality_report();
  if (quality.responses_received > 0) {
    EXPECT_GT(quality.mean_first_response_ms, 0.0);
    // Periodic pushes mean the first response arrives within a few NPERs.
    EXPECT_LT(quality.mean_first_response_ms, 60000.0);
  }
}

class ExperimentScale : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ExperimentScale, RunsToCompletionAtEveryPaperScale) {
  ExperimentConfig config = quick(GetParam());
  config.warmup = sim::Duration::seconds(28);
  config.measure = sim::Duration::seconds(10);
  Experiment exp(config);
  exp.run();
  EXPECT_GT(exp.simulator().executed_events(), 1000u);
  const OverheadReport overhead = exp.overhead_report();
  EXPECT_GE(overhead.query_internal, 0.0);
  EXPECT_GE(overhead.mbr_transit, 0.0);
}

INSTANTIATE_TEST_SUITE_P(PaperSizes, ExperimentScale,
                         ::testing::Values(10, 50, 100));

}  // namespace
}  // namespace sdsi::core
