// The system-level completeness property the whole design hangs on
// (Sec IV-E): "a super-set of the actual node set — with false positives,
// but WITHOUT false dismissals".
//
// Under arbitrary random-walk dynamics we cannot predict which streams
// *should* match a query at any instant, but a sufficient condition is
// checkable: if every feature vector a stream ever emitted stayed inside
// the query ball (with slack), then a continuous query with enough runtime
// MUST report that stream. We shadow the feature pipeline outside the
// system (same inputs -> same features, verified by the summarizer tests)
// and assert the implication over many random seeds.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "core/system.hpp"
#include "routing/static_ring.hpp"
#include "streams/generators.hpp"
#include "streams/summarizer.hpp"

namespace sdsi::core {
namespace {

constexpr std::size_t kWindow = 16;
constexpr std::size_t kNodes = 8;
constexpr std::size_t kStreams = 6;

MiddlewareConfig config() {
  MiddlewareConfig cfg;
  cfg.features.window_size = kWindow;
  cfg.features.num_coefficients = 2;
  cfg.batching.batch_size = 3;
  cfg.mbr_lifespan = sim::Duration::seconds(8);
  cfg.notify_period = sim::Duration::millis(500);
  return cfg;
}

class NoFalseDismissal : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NoFalseDismissal, EveryAlwaysInsideStreamIsReported) {
  const std::uint64_t seed = GetParam();
  sim::Simulator sim;
  routing::StaticRing ring(
      sim, common::IdSpace(24),
      routing::hash_node_ids(kNodes, common::IdSpace(24), seed));
  MiddlewareSystem system(ring, config());
  system.start();

  common::RngFactory rng_factory(seed);
  std::vector<streams::RandomWalkGenerator> walks;
  std::vector<streams::StreamSummarizer> shadows;  // our ground-truth mirror
  std::vector<std::vector<dsp::FeatureVector>> emitted(kStreams);
  for (std::size_t s = 0; s < kStreams; ++s) {
    system.register_stream(static_cast<NodeIndex>(s % kNodes), 100 + s);
    walks.emplace_back(rng_factory.make("walk", s));
    shadows.emplace_back(config().features);
  }

  struct PostedQuery {
    QueryId id;
    dsp::FeatureVector center;
    double radius;
    std::size_t posted_at_step;
  };
  std::vector<PostedQuery> queries;
  common::Pcg32 query_rng = rng_factory.make("queries");

  constexpr int kSteps = 200;
  for (int step = 0; step < kSteps; ++step) {
    for (std::size_t s = 0; s < kStreams; ++s) {
      const Sample value = walks[s].next();
      system.post_stream_value(static_cast<NodeIndex>(s % kNodes), 100 + s,
                               value);
      shadows[s].push(value);
      if (const auto fv = shadows[s].features()) {
        emitted[s].push_back(*fv);
      }
    }
    // Pose a few queries early, centered on live stream states so the
    // always-inside condition is sometimes satisfiable.
    if (step == 40 || step == 50) {
      const std::size_t target = query_rng.bounded(kStreams);
      if (const auto center = shadows[target].features()) {
        const double radius = query_rng.uniform(0.3, 0.6);
        const QueryId id = system.subscribe_similarity(
            static_cast<NodeIndex>(query_rng.bounded(kNodes)), *center,
            radius, sim::Duration::seconds(600));
        queries.push_back(
            PostedQuery{id, *center, radius, emitted[target].size()});
      }
    }
    sim.run_until(sim.now() + sim::Duration::millis(100));
  }
  // Generous run-out: every periodic stage (match, relay across the range,
  // aggregate, push) gets many cycles.
  sim.run_until(sim.now() + sim::Duration::seconds(15));

  ASSERT_FALSE(queries.empty());
  // The routed storage unit is one MBR = the bounding box of batch_size
  // consecutive feature vectors (aligned to the stream's emission order).
  // Obligation: if any fully-post-query batch's box sits strictly inside
  // the query ball, that MBR was stored only on nodes whose arcs lie inside
  // the query's key range — nodes that all hold the subscription — so the
  // stream MUST eventually be reported.
  const std::size_t beta = config().batching.batch_size;
  auto box_inside_ball = [](const dsp::Mbr& box,
                            const dsp::FeatureVector& center, double radius) {
    const auto reals = center.as_reals();
    double worst = 0.0;
    for (std::size_t d = 0; d < reals.size(); ++d) {
      const double lo_gap = std::abs(reals[d] - box.low()[d]);
      const double hi_gap = std::abs(reals[d] - box.high()[d]);
      const double gap = std::max(lo_gap, hi_gap);
      worst += gap * gap;
    }
    return std::sqrt(worst) <= radius * 0.999;
  };

  int obligations = 0;
  for (const PostedQuery& query : queries) {
    const ClientQueryRecord* record = system.client_record(query.id);
    ASSERT_NE(record, nullptr);
    for (std::size_t s = 0; s < kStreams; ++s) {
      bool must_match = false;
      for (std::size_t batch = 0;
           (batch + 1) * beta <= emitted[s].size() && !must_match; ++batch) {
        if (batch * beta < query.posted_at_step) {
          continue;  // batch overlaps the pre-query era: no obligation
        }
        const dsp::Mbr box = dsp::bounding_box(
            std::span<const dsp::FeatureVector>(emitted[s])
                .subspan(batch * beta, beta));
        must_match = box_inside_ball(box, query.center, query.radius);
      }
      if (must_match) {
        ++obligations;
        EXPECT_TRUE(record->matched_streams.contains(100 + s))
            << "FALSE DISMISSAL: seed=" << seed << " query=" << query.id
            << " stream=" << 100 + s;
      }
    }
  }
  // A seed where no batch ever landed inside a query ball proves nothing;
  // skip rather than pass vacuously (most seeds do produce obligations).
  if (obligations == 0) {
    GTEST_SKIP() << "no in-ball batch for seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoFalseDismissal,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace sdsi::core
