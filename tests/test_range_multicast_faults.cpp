// Range multicast under faults, in both flavors (Sec IV-C sequential walk,
// Sec VI-B bidirectional fan-out): transmission loss inside the multicast
// and a crash of a covering node mid-stream. The self-healing path (acked
// publication + soft-state refresh) must restore full coverage — queries
// keep matching (no false dismissals) and redeliveries never double-count
// (no duplicate stores reaching the client).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "chord/network.hpp"
#include "core/system.hpp"
#include "routing/static_ring.hpp"

namespace sdsi::core {
namespace {

constexpr std::size_t kWindow = 16;

MiddlewareConfig healing_config(routing::MulticastStrategy strategy) {
  MiddlewareConfig config;
  config.features.window_size = kWindow;
  config.features.num_coefficients = 2;
  config.batching.batch_size = 3;
  config.mbr_lifespan = sim::Duration::seconds(15);
  config.notify_period = sim::Duration::millis(500);
  config.multicast = strategy;
  config.mbr_ack.enabled = true;
  config.mbr_ack.timeout = sim::Duration::millis(400);
  config.response_ack.enabled = true;
  config.mbr_refresh_period = sim::Duration::seconds(1);
  config.query_refresh_period = sim::Duration::seconds(1);
  return config;
}

struct Harness {
  sim::Simulator sim;
  chord::ChordNetwork net;
  MiddlewareSystem system;

  Harness(std::size_t nodes, MiddlewareConfig config)
      : net(sim,
            [] {
              chord::ChordConfig chord_config;
              chord_config.successor_list_length = 4;
              return chord_config;
            }()),
        system((net.bootstrap(routing::hash_node_ids(nodes, common::IdSpace(32),
                                                     13)),
                net),
               config) {
    system.start();
    // Background stabilization, as every churn scenario runs it.
    sim.schedule_periodic(sim.now() + sim::Duration::millis(500),
                          sim::Duration::millis(500),
                          [this] { net.run_maintenance_rounds(1); });
  }

  void run_for(double seconds) {
    sim.run_until(sim.now() + sim::Duration::seconds(seconds));
  }

  dsp::FeatureVector exponential_features(double gamma) const {
    std::vector<Sample> window(kWindow);
    double value = 1.0;
    for (Sample& x : window) {
      value *= gamma;
      x = value;
    }
    dsp::FeatureConfig features;
    features.window_size = kWindow;
    features.num_coefficients = 2;
    return dsp::extract_features(window, features);
  }

  void start_stream(NodeIndex node, StreamId stream, double gamma) {
    system.register_stream(node, stream);
    auto value = std::make_shared<double>(1.0);
    sim.schedule_periodic(sim.now() + sim::Duration::millis(100),
                          sim::Duration::millis(100),
                          [this, node, stream, gamma, value] {
                            if (!net.is_alive(node)) {
                              return;
                            }
                            *value *= gamma;
                            if (*value > 1e12) {
                              *value = 1.0;
                            }
                            system.post_stream_value(node, stream, *value);
                          });
  }

  /// Alternates kWindow-sized blocks of two very different exponential
  /// shapes. The sliding window sweeps the routing coordinate between the
  /// two feature points on every phase change, so batch bounding boxes
  /// regularly straddle arc boundaries — the MBR range multicast actually
  /// spans several nodes (internal copies exist to lose).
  void start_two_phase_stream(NodeIndex node, StreamId stream) {
    system.register_stream(node, stream);
    auto value = std::make_shared<double>(1.0);
    auto step = std::make_shared<int>(0);
    sim.schedule_periodic(
        sim.now() + sim::Duration::millis(100), sim::Duration::millis(100),
        [this, node, stream, value, step] {
          if (!net.is_alive(node)) {
            return;
          }
          const double gamma =
              ((*step)++ / static_cast<int>(2 * kWindow)) % 2 == 0 ? 1.05
                                                                   : 1.60;
          *value *= gamma;
          if (*value > 1e9) {
            *value = 1.0;
          }
          system.post_stream_value(node, stream, *value);
        });
  }
};

class RangeMulticastFaults
    : public ::testing::TestWithParam<routing::MulticastStrategy> {};

TEST_P(RangeMulticastFaults, LossInsideMulticastHealsWithoutDuplicates) {
  Harness h(16, healing_config(GetParam()));
  // 30% of all transmissions vanish — enough to regularly swallow copies
  // inside a range multicast (the walk dies mid-range and downstream
  // coverage is lost until a retry or refresh re-sends the batch).
  h.net.set_message_loss(0.30, common::Pcg32(9, 9));
  h.start_two_phase_stream(0, 100);
  h.run_for(10.0);

  // The probe sits exactly on the stream's slow phase: any batch holding a
  // pure slow-phase window contains the probe point (distance zero), so a
  // miss can only come from lost, unhealed state.
  const QueryId id = h.system.subscribe_similarity(
      7, h.exponential_features(1.05), 0.08, sim::Duration::seconds(60));
  h.run_for(20.0);

  const ClientQueryRecord* record = h.system.client_record(id);
  EXPECT_TRUE(record->matched_streams.contains(100))
      << "healing must prevent a false dismissal under 30% loss";
  EXPECT_EQ(record->match_events, record->matched_streams.size())
      << "retries/refreshes must not double-count a matched stream";
  EXPECT_GT(h.net.dropped_messages(), 0u);
  // The multicast actually spanned nodes (internal copies existed to lose).
  EXPECT_GT(h.system.metrics().mbr().range_internal, 0u);
}

TEST_P(RangeMulticastFaults, CoveringNodeCrashMidStreamHealsAfterRefresh) {
  Harness h(16, healing_config(GetParam()));
  h.start_stream(0, 200, 1.12);
  h.run_for(5.0);

  const dsp::FeatureVector probe = h.exponential_features(1.12);
  const QueryId id = h.system.subscribe_similarity(
      5, probe, 0.08, sim::Duration::seconds(60));
  h.run_for(3.0);
  const ClientQueryRecord* record = h.system.client_record(id);
  ASSERT_TRUE(record->matched_streams.contains(200));
  const std::uint64_t events_before = record->match_events;

  // Crash the node covering the stream's content key while batches keep
  // closing: multicasts in flight lose a covering replica, stored state on
  // the crashed arc is gone.
  const Key key = h.system.mapper().key_for(probe);
  const NodeIndex holder = h.net.find_successor_oracle(key);
  if (holder == 0 || holder == 5) {
    GTEST_SKIP() << "degenerate layout for this seed";
  }
  h.net.crash(holder);
  h.run_for(5.0);  // ring heals around the crash; retries re-route batches
  NodeIndex via = 0;
  while (via == holder || !h.net.is_alive(via)) {
    ++via;
  }
  h.net.recover(holder, via);
  h.system.reset_node_soft_state(holder);
  h.run_for(10.0);  // refresh repopulates the recovered arc

  // The query keeps matching the live stream across crash and recovery
  // (responses keep arriving), and dedup holds end to end.
  EXPECT_TRUE(record->matched_streams.contains(200));
  EXPECT_GE(record->match_events, events_before);
  EXPECT_EQ(record->match_events, record->matched_streams.size());

  // New data posed after recovery must still match: no false dismissal
  // from the restarted (initially empty) arc owner.
  h.start_stream(3, 201, 1.12);
  h.run_for(10.0);
  EXPECT_TRUE(record->matched_streams.contains(201))
      << "subscription refresh must reinstall the query on the healed arc";
}

INSTANTIATE_TEST_SUITE_P(
    BothStrategies, RangeMulticastFaults,
    ::testing::Values(routing::MulticastStrategy::kSequential,
                      routing::MulticastStrategy::kBidirectional),
    [](const ::testing::TestParamInfo<routing::MulticastStrategy>& param) {
      return param.param == routing::MulticastStrategy::kSequential
                 ? "Sequential"
                 : "Bidirectional";
    });

}  // namespace
}  // namespace sdsi::core
