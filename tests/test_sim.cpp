// Discrete-event simulator kernel: ordering, ties, periodics, cancellation.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace sdsi::sim {
namespace {

Duration ms(std::int64_t v) { return Duration::millis(v); }

TEST(Duration, ConversionsAndArithmetic) {
  EXPECT_EQ(Duration::millis(5).count_micros(), 5000);
  EXPECT_EQ(Duration::seconds(1.5).count_micros(), 1500000);
  EXPECT_DOUBLE_EQ(Duration::micros(2500).as_millis(), 2.5);
  EXPECT_EQ((ms(3) + ms(4)).count_micros(), 7000);
  EXPECT_EQ((ms(10) - ms(4)).count_micros(), 6000);
  EXPECT_EQ((ms(3) * 4).count_micros(), 12000);
  EXPECT_LT(ms(1), ms(2));
}

TEST(SimTime, Arithmetic) {
  const SimTime t = SimTime::zero() + ms(100);
  EXPECT_DOUBLE_EQ(t.as_millis(), 100.0);
  EXPECT_EQ((t - SimTime::zero()).count_micros(), 100000);
  EXPECT_EQ((t - ms(40)).count_micros(), 60000);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::zero() + ms(30), [&] { order.push_back(3); });
  sim.schedule_at(SimTime::zero() + ms(10), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::zero() + ms(20), [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, TiesBreakInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  const SimTime when = SimTime::zero() + ms(5);
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(when, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  SimTime seen;
  sim.schedule_after(ms(42), [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_DOUBLE_EQ(seen.as_millis(), 42.0);
  EXPECT_DOUBLE_EQ(sim.now().as_millis(), 42.0);
}

TEST(Simulator, RunUntilStopsAtHorizonInclusive) {
  Simulator sim;
  int ran = 0;
  sim.schedule_after(ms(10), [&] { ++ran; });
  sim.schedule_after(ms(20), [&] { ++ran; });
  sim.schedule_after(ms(21), [&] { ++ran; });
  const std::uint64_t executed = sim.run_until(SimTime::zero() + ms(20));
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(ran, 2);
  // Clock lands exactly on the horizon even if no event sits there.
  EXPECT_DOUBLE_EQ(sim.now().as_millis(), 20.0);
  sim.run_all();
  EXPECT_EQ(ran, 3);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  sim.schedule_after(ms(1), [&] {
    ++depth;
    sim.schedule_after(ms(1), [&] {
      ++depth;
      sim.schedule_after(ms(1), [&] { ++depth; });
    });
  });
  sim.run_all();
  EXPECT_EQ(depth, 3);
}

TEST(Simulator, CancelledEventDoesNotRun) {
  Simulator sim;
  int ran = 0;
  TaskHandle handle = sim.schedule_after(ms(10), [&] { ++ran; });
  handle.cancel();
  sim.run_all();
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(Simulator, PeriodicFiresAtFixedPeriod) {
  Simulator sim;
  std::vector<double> fire_times;
  TaskHandle handle = sim.schedule_periodic(
      SimTime::zero() + ms(10), ms(10),
      [&] { fire_times.push_back(sim.now().as_millis()); });
  sim.run_until(SimTime::zero() + ms(45));
  EXPECT_EQ(fire_times, (std::vector<double>{10, 20, 30, 40}));
  handle.cancel();
  sim.run_until(SimTime::zero() + ms(100));
  EXPECT_EQ(fire_times.size(), 4u);
}

TEST(Simulator, PeriodicCanCancelItself) {
  Simulator sim;
  int fires = 0;
  TaskHandle handle;
  handle = sim.schedule_periodic(SimTime::zero() + ms(1), ms(1), [&] {
    ++fires;
    if (fires == 3) {
      handle.cancel();
    }
  });
  sim.run_until(SimTime::zero() + ms(100));
  EXPECT_EQ(fires, 3);
}

TEST(Simulator, PeriodicHasNoDrift) {
  Simulator sim;
  // Fire every 7ms, 1000 times: last firing must be exactly 7000ms.
  int fires = 0;
  double last = 0;
  TaskHandle handle =
      sim.schedule_periodic(SimTime::zero() + ms(7), ms(7), [&] {
        ++fires;
        last = sim.now().as_millis();
      });
  sim.run_until(SimTime::zero() + ms(7000));
  EXPECT_EQ(fires, 1000);
  EXPECT_DOUBLE_EQ(last, 7000.0);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int ran = 0;
  sim.schedule_after(ms(1), [&] { ++ran; });
  sim.schedule_after(ms(2), [&] { ++ran; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(ran, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, StepSkipsCancelled) {
  Simulator sim;
  int ran = 0;
  TaskHandle a = sim.schedule_after(ms(1), [&] { ran += 1; });
  sim.schedule_after(ms(2), [&] { ran += 10; });
  a.cancel();
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(ran, 10);
}

TEST(Simulator, PendingEventsCount) {
  Simulator sim;
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.schedule_after(ms(1), [] {});
  sim.schedule_after(ms(2), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.run_all();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, HandleActiveReflectsState) {
  Simulator sim;
  TaskHandle handle = sim.schedule_after(ms(1), [] {});
  EXPECT_TRUE(handle.active());
  handle.cancel();
  EXPECT_FALSE(handle.active());
  EXPECT_FALSE(TaskHandle().active());
}

// Regression: cancelled entries used to stay in the queue until their
// deadline and were counted by pending_events(). The calendar backend now
// excludes them immediately and purges the stale refs lazily.
TEST(Simulator, PendingEventsExcludesCancelled) {
  Simulator sim(QueueBackend::kCalendar);
  int ran = 0;
  TaskHandle a = sim.schedule_after(ms(10), [&] { ++ran; });
  TaskHandle b = sim.schedule_after(ms(20), [&] { ++ran; });
  sim.schedule_after(ms(30), [&] { ++ran; });
  EXPECT_EQ(sim.pending_events(), 3u);
  a.cancel();
  b.cancel();
  // Deadlines have not passed, yet the cancelled pair no longer counts.
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_EQ(sim.run_all(), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, CancelledPeriodicStopsCountingImmediately) {
  Simulator sim(QueueBackend::kCalendar);
  int fires = 0;
  TaskHandle handle =
      sim.schedule_periodic(SimTime::zero() + ms(5), ms(5), [&] { ++fires; });
  EXPECT_EQ(sim.pending_events(), 1u);
  handle.cancel();
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.run_until(SimTime::zero() + ms(100));
  EXPECT_EQ(fires, 0);
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(Simulator, MassCancellationIsPurgedNotLeaked) {
  Simulator sim(QueueBackend::kCalendar);
  int ran = 0;
  std::vector<TaskHandle> handles;
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(sim.schedule_after(ms(10 + i), [&] { ++ran; }));
  }
  TaskHandle live = sim.schedule_after(ms(2000), [&] { ran += 100; });
  for (TaskHandle& handle : handles) {
    handle.cancel();
  }
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_EQ(sim.run_all(), 1u);
  EXPECT_EQ(ran, 100);
  EXPECT_FALSE(live.active());
}

TEST(Simulator, StaleHandleCancelDoesNotAffectRecycledSlot) {
  Simulator sim(QueueBackend::kCalendar);
  int ran = 0;
  TaskHandle first = sim.schedule_after(ms(1), [&] { ++ran; });
  sim.run_all();
  EXPECT_FALSE(first.active());
  // The new event reuses the released slot; the stale handle's generation
  // no longer matches, so cancelling it must not touch the new occupant.
  TaskHandle second = sim.schedule_after(ms(1), [&] { ran += 10; });
  first.cancel();
  EXPECT_TRUE(second.active());
  sim.run_all();
  EXPECT_EQ(ran, 11);
}

TEST(Simulator, RescheduleBehindParkedCursorKeepsOrder) {
  // Regression: a cancelled far-future one-shot leaves a stale ref that
  // run_all() drains without advancing now(), parking the drain cursor on a
  // far-out bucket. Scheduling at now() then rewinds the cursor; the rewind
  // must also restore the wheel-window invariant, or an event exactly one
  // wheel span ahead aliases onto the same physical bucket as the "now"
  // event and runs before the events between them.
  Simulator sim(QueueBackend::kCalendar);
  TaskHandle stale = sim.schedule_after(Duration::seconds(100), [] {});
  stale.cancel();
  EXPECT_EQ(sim.run_all(), 0u);
  EXPECT_DOUBLE_EQ(sim.now().as_seconds(), 0.0);

  std::vector<std::int64_t> order;
  const auto record = [&] { order.push_back(sim.now().count_micros()); };
  sim.schedule_at(sim.now(), record);
  sim.schedule_at(sim.now() + Duration::micros(25600), record);
  // One full wheel span (kNumBuckets << kBucketBits microseconds) ahead:
  // the bucket that aliases physically with the "now" bucket.
  sim.schedule_at(sim.now() + Duration::micros(8192 * 256), record);
  sim.run_all();
  EXPECT_EQ(order, (std::vector<std::int64_t>{0, 25600, 8192 * 256}));
}

TEST(Simulator, RewindWithLiveWheelRefsEvacuatesAliasedBuckets) {
  // Same parked-cursor setup, but with a LIVE ref already on the wheel at
  // the far-out window when the rewind happens. The rewind must evacuate it
  // (its logical bucket no longer fits the clamped window) so it cannot
  // alias with near-term events, and it must still run last.
  Simulator sim(QueueBackend::kCalendar);
  TaskHandle stale = sim.schedule_after(Duration::seconds(100), [] {});
  stale.cancel();
  EXPECT_EQ(sim.run_all(), 0u);

  std::vector<int> order;
  // Lands on the wheel around the parked cursor (bucket ~390625).
  sim.schedule_at(SimTime::zero() + Duration::seconds(100),
                  [&] { order.push_back(4); });
  // Rewinds the cursor to bucket 0.
  sim.schedule_at(SimTime::zero(), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::zero() + Duration::micros(25600),
                  [&] { order.push_back(2); });
  sim.schedule_at(SimTime::zero() + Duration::micros(8192 * 256),
                  [&] { order.push_back(3); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(sim.now().as_seconds(), 100.0);
}

TEST(TaskHandle, OutlivingSimulatorIsInert) {
  // cancel()/active() on a handle whose Simulator is gone must be safe
  // no-ops (the handle checks a per-simulator liveness token), not UB.
  TaskHandle handle;
  {
    Simulator sim(QueueBackend::kCalendar);
    handle = sim.schedule_after(ms(5), [] {});
    EXPECT_TRUE(handle.active());
  }
  EXPECT_FALSE(handle.active());
  handle.cancel();  // must not touch the destroyed Simulator
}

TEST(Simulator, LegacyBackendStillExecutesInOrder) {
  Simulator sim(QueueBackend::kLegacyHeap);
  EXPECT_FALSE(sim.using_calendar_queue());
  EXPECT_FALSE(sim.pooled_events());
  std::vector<int> order;
  sim.schedule_at(SimTime::zero() + ms(20), [&] { order.push_back(2); });
  sim.schedule_at(SimTime::zero() + ms(10), [&] { order.push_back(1); });
  TaskHandle cancelled =
      sim.schedule_at(SimTime::zero() + ms(15), [&] { order.push_back(9); });
  cancelled.cancel();
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, FarFutureEventsCrossOverflowWindow) {
  // Events beyond the wheel span park in the overflow store and must still
  // execute in exact (when, seq) order as the window advances to them.
  Simulator sim(QueueBackend::kCalendar);
  std::vector<int> order;
  sim.schedule_at(SimTime::zero() + Duration::seconds(300), [&] {
    order.push_back(3);
  });
  sim.schedule_at(SimTime::zero() + Duration::seconds(300), [&] {
    order.push_back(4);
  });
  sim.schedule_at(SimTime::zero() + Duration::seconds(100), [&] {
    order.push_back(2);
  });
  sim.schedule_at(SimTime::zero() + ms(1), [&] { order.push_back(1); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(sim.now().as_seconds(), 300.0);
}

}  // namespace
}  // namespace sdsi::sim
