// The key-interval pruned matching engine must return exactly the
// brute-force match set — the Sec IV-E no-false-dismissal property has to
// survive the optimization, and interval pruning may not add false misses
// or false hits on top of the MBR lower bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/index_store.hpp"

namespace sdsi::core {
namespace {

sim::SimTime at_ms(std::int64_t ms) {
  return sim::SimTime::zero() + sim::Duration::millis(ms);
}

using MatchSet = std::vector<std::pair<QueryId, StreamId>>;

MatchSet to_set(const std::vector<SimilarityMatch>& matches) {
  MatchSet out;
  out.reserve(matches.size());
  for (const SimilarityMatch& m : matches) {
    out.emplace_back(m.query, m.stream);
  }
  std::sort(out.begin(), out.end());
  return out;
}

IndexStore::StoredMbr random_mbr(common::Pcg32& rng, StreamId stream,
                                 std::size_t dims, sim::SimTime expires) {
  std::vector<double> low(dims);
  std::vector<double> high(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    low[d] = rng.uniform(-1.0, 0.95);
    high[d] = low[d] + rng.uniform(0.0, 0.2);
  }
  IndexStore::StoredMbr entry;
  entry.stream = stream;
  entry.mbr = dsp::Mbr(std::move(low), std::move(high));
  entry.expires = expires;
  return entry;
}

std::shared_ptr<const SimilarityQuery> random_query(common::Pcg32& rng,
                                                    QueryId id,
                                                    std::size_t dims) {
  std::vector<dsp::Complex> coeffs(dims / 2);
  for (dsp::Complex& c : coeffs) {
    c = dsp::Complex{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  }
  SimilarityQuery query;
  query.id = id;
  query.features = dsp::FeatureVector(std::move(coeffs));
  query.radius = rng.uniform(0.01, 0.3);
  return std::make_shared<const SimilarityQuery>(std::move(query));
}

TEST(MatchPruning, EquivalentToBruteForceRandomized) {
  // >1k random MBR/subscription mixes across trials and rounds, with
  // incremental adds, lifespan churn, and repeated matching passes (the
  // per-node dedup state evolves identically in both engines).
  common::Pcg32 rng(2024, 7);
  std::size_t total_mbrs = 0;
  std::size_t total_subs = 0;
  std::size_t total_matches = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t dims = (trial % 2 == 0) ? 2 : 4;
    IndexStore pruned;
    IndexStore brute;
    std::int64_t now_ms = 0;
    StreamId next_stream = 1;
    QueryId next_query = 1;
    for (int round = 0; round < 5; ++round) {
      const int mbr_batch = static_cast<int>(rng.bounded(40)) + 5;
      for (int i = 0; i < mbr_batch; ++i) {
        const auto expires =
            at_ms(now_ms + 1 + static_cast<std::int64_t>(rng.bounded(4000)));
        const IndexStore::StoredMbr entry =
            random_mbr(rng, next_stream++, dims, expires);
        pruned.add_mbr(entry);
        brute.add_mbr(entry);
        ++total_mbrs;
      }
      const int sub_batch = static_cast<int>(rng.bounded(8)) + 2;
      for (int i = 0; i < sub_batch; ++i) {
        const auto query = random_query(rng, next_query++, dims);
        const auto expires =
            at_ms(now_ms + 1 + static_cast<std::int64_t>(rng.bounded(6000)));
        pruned.add_subscription(query, 0, expires);
        brute.add_subscription(query, 0, expires);
        ++total_subs;
      }
      now_ms += static_cast<std::int64_t>(rng.bounded(1500));
      const auto now = at_ms(now_ms);
      const MatchSet from_pruned = to_set(pruned.match(now));
      const MatchSet from_brute = to_set(brute.match_brute_force(now));
      ASSERT_EQ(from_pruned, from_brute)
          << "trial " << trial << " round " << round << " at " << now_ms
          << "ms";
      total_matches += from_pruned.size();
    }
  }
  EXPECT_GE(total_mbrs + total_subs, 1000u);
  EXPECT_GT(total_matches, 0u);  // the workload must actually exercise hits
}

TEST(MatchPruning, BoundaryOverlapStillMatches) {
  // bound == radius is a match (<=, not <); the interval prune must keep
  // the exact-boundary candidate.
  IndexStore store;
  IndexStore::StoredMbr entry;
  entry.stream = 7;
  entry.mbr = dsp::Mbr({0.60, 0.0}, {0.70, 0.0});
  entry.expires = at_ms(10000);
  store.add_mbr(entry);
  SimilarityQuery query;
  query.id = 1;
  query.features = dsp::FeatureVector({dsp::Complex{0.50, 0.0}});
  query.radius = 0.1;
  store.add_subscription(
      std::make_shared<const SimilarityQuery>(std::move(query)), 0,
      at_ms(10000));
  const auto matches = store.match(at_ms(1));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_NEAR(matches[0].bound_distance, 0.1, 1e-12);
}

TEST(MatchPruning, WideBoxAmongNarrowOnesIsFound) {
  // The scan window is widened by the largest indexed extent; one wide box
  // among many narrow ones must still be reachable from a far-away query.
  common::Pcg32 rng(5, 5);
  IndexStore store;
  for (StreamId s = 1; s <= 200; ++s) {
    IndexStore::StoredMbr entry;
    const double lo = rng.uniform(-1.0, -0.2);
    entry.stream = s;
    entry.mbr = dsp::Mbr({lo, 0.0}, {lo + 0.02, 0.0});
    entry.expires = at_ms(10000);
    store.add_mbr(entry);
  }
  IndexStore::StoredMbr wide;
  wide.stream = 999;
  wide.mbr = dsp::Mbr({-0.9, 0.0}, {0.9, 0.0});
  wide.expires = at_ms(10000);
  store.add_mbr(wide);

  SimilarityQuery query;
  query.id = 1;
  query.features = dsp::FeatureVector({dsp::Complex{0.905, 0.0}});
  query.radius = 0.01;
  store.add_subscription(
      std::make_shared<const SimilarityQuery>(std::move(query)), 0,
      at_ms(10000));
  const auto matches = store.match(at_ms(1));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].stream, 999u);
}

TEST(MatchPruning, EquivalenceAcrossCompaction) {
  // Compaction (triggered by heavy expiry churn) must not change results.
  common::Pcg32 rng(11, 3);
  IndexStore pruned;
  IndexStore brute;
  for (int wave = 0; wave < 4; ++wave) {
    const std::int64_t base = wave * 1000;
    for (int i = 0; i < 150; ++i) {
      const IndexStore::StoredMbr entry = random_mbr(
          rng, static_cast<StreamId>(wave * 1000 + i), 2,
          at_ms(base + 500 + static_cast<std::int64_t>(rng.bounded(400))));
      pruned.add_mbr(entry);
      brute.add_mbr(entry);
    }
    const auto query = random_query(rng, static_cast<QueryId>(wave) + 1, 2);
    pruned.add_subscription(query, 0, at_ms(base + 2000));
    brute.add_subscription(query, 0, at_ms(base + 2000));
    const auto now = at_ms(base + 600);
    ASSERT_EQ(to_set(pruned.match(now)), to_set(brute.match_brute_force(now)))
        << "wave " << wave;
    // Everything from this wave dies before the next one arrives.
  }
  pruned.expire(at_ms(10000));
  EXPECT_EQ(pruned.mbr_count(), 0u);
}

}  // namespace
}  // namespace sdsi::core
