// Wire protocol v1 codec tests: canonical round-trips for every message
// kind, plus the rejection paths — a decoder fed hostile bytes must REJECT
// (typed DecodeResult), never abort, because a remote peer's bytes are not
// trusted program state.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "net/wire.hpp"
#include "wire_samples.hpp"

namespace sdsi::net {
namespace {

using routing::MsgKind;
using testing::sample_message;

std::vector<MsgKind> all_kinds() {
  std::vector<MsgKind> kinds;
  for (std::uint16_t raw = 1; raw <= routing::kNumMsgKinds; ++raw) {
    kinds.push_back(static_cast<MsgKind>(raw));
  }
  return kinds;
}

TEST(WireCodec, RoundTripsEveryKindCanonically) {
  for (const MsgKind kind : all_kinds()) {
    const routing::Message original = sample_message(kind);
    const std::vector<std::uint8_t> wire = encode_frame(original);
    ASSERT_GE(wire.size(), kWireHeaderSize) << msg_kind_name(kind);

    routing::Message decoded;
    ASSERT_EQ(decode_frame(wire, &decoded), DecodeResult::kOk)
        << msg_kind_name(kind);

    EXPECT_EQ(decoded.kind, original.kind);
    EXPECT_EQ(decoded.target_key, original.target_key);
    EXPECT_EQ(decoded.origin, original.origin);
    EXPECT_EQ(decoded.range_internal, original.range_internal);
    EXPECT_EQ(decoded.range_dir, original.range_dir);
    EXPECT_EQ(decoded.has_range, original.has_range);
    EXPECT_EQ(decoded.range_lo, original.range_lo);
    EXPECT_EQ(decoded.range_hi, original.range_hi);
    EXPECT_EQ(decoded.reroute_on_dead, original.reroute_on_dead);
    EXPECT_EQ(decoded.hops, original.hops);
    EXPECT_EQ(decoded.sent_at, original.sent_at);
    EXPECT_EQ(decoded.trace_id, original.trace_id);

    // Canonical encoding: re-encoding the decoded message reproduces the
    // identical bytes, which is also the payload-equality check (the typed
    // payloads have no operator==).
    EXPECT_EQ(encode_frame(decoded), wire) << msg_kind_name(kind);
  }
}

TEST(WireCodec, HeaderFieldOffsetsMatchTheSpec) {
  const routing::Message msg = sample_message(MsgKind::kMbrUpdate);
  const std::vector<std::uint8_t> wire = encode_frame(msg);
  // docs/WIRE_FORMAT.md header layout, little-endian.
  EXPECT_EQ(wire[0], 'S');
  EXPECT_EQ(wire[1], 'D');
  EXPECT_EQ(wire[2], 'S');
  EXPECT_EQ(wire[3], 'I');
  EXPECT_EQ(wire[4], kWireVersion);  // version lo byte
  EXPECT_EQ(wire[5], 0);
  EXPECT_EQ(wire[6], 1);  // kind = kMbrUpdate
  EXPECT_EQ(wire[7], 0);
  EXPECT_EQ(wire[8], kFlagRangeInternal | kFlagHasRange | kFlagRerouteOnDead);
  EXPECT_EQ(wire[9], static_cast<std::uint8_t>(routing::RangeDir::kUp));
  EXPECT_EQ(wire[10], 0);  // reserved
  EXPECT_EQ(wire[11], 0);  // reserved
  EXPECT_EQ(wire[12], 2);  // origin
  EXPECT_EQ(wire[16], 0xEF);  // target_key lo byte of 0xBEEF
  EXPECT_EQ(wire[17], 0xBE);
  EXPECT_EQ(wire[40], 3);  // hops
}

TEST(WireCodec, TruncationAtEveryPrefixRejects) {
  for (const MsgKind kind : all_kinds()) {
    const std::vector<std::uint8_t> wire = encode_frame(sample_message(kind));
    for (std::size_t len = 0; len < wire.size(); ++len) {
      routing::Message out;
      const auto result =
          decode_frame(std::span(wire.data(), len), &out);
      EXPECT_EQ(result, DecodeResult::kTruncated)
          << msg_kind_name(kind) << " prefix " << len;
    }
  }
}

TEST(WireCodec, TrailingBytesReject) {
  std::vector<std::uint8_t> wire =
      encode_frame(sample_message(MsgKind::kResponse));
  wire.push_back(0x00);
  routing::Message out;
  EXPECT_EQ(decode_frame(wire, &out), DecodeResult::kTrailingBytes);
}

TEST(WireCodec, BadMagicRejects) {
  std::vector<std::uint8_t> wire =
      encode_frame(sample_message(MsgKind::kMbrAck));
  wire[0] = 'X';
  routing::Message out;
  EXPECT_EQ(decode_frame(wire, &out), DecodeResult::kBadMagic);
}

TEST(WireCodec, BadVersionRejects) {
  std::vector<std::uint8_t> wire =
      encode_frame(sample_message(MsgKind::kMbrAck));
  wire[4] = 2;
  routing::Message out;
  EXPECT_EQ(decode_frame(wire, &out), DecodeResult::kBadVersion);
}

TEST(WireCodec, UnknownKindRejectsNotAborts) {
  for (const std::uint16_t raw :
       {std::uint16_t{0}, std::uint16_t{routing::kNumMsgKinds + 1},
        std::uint16_t{0xFFFF}}) {
    std::vector<std::uint8_t> wire =
        encode_frame(sample_message(MsgKind::kMbrAck));
    wire[6] = static_cast<std::uint8_t>(raw & 0xFF);
    wire[7] = static_cast<std::uint8_t>(raw >> 8);
    routing::Message out;
    EXPECT_EQ(decode_frame(wire, &out), DecodeResult::kUnknownKind) << raw;
  }
}

TEST(WireCodec, ReservedBitsAndBytesReject) {
  {
    std::vector<std::uint8_t> wire =
        encode_frame(sample_message(MsgKind::kMbrAck));
    wire[8] |= 0x08;  // reserved flag bit
    routing::Message out;
    EXPECT_EQ(decode_frame(wire, &out), DecodeResult::kBadHeader);
  }
  {
    std::vector<std::uint8_t> wire =
        encode_frame(sample_message(MsgKind::kMbrAck));
    wire[9] = 4;  // range_dir out of range
    routing::Message out;
    EXPECT_EQ(decode_frame(wire, &out), DecodeResult::kBadHeader);
  }
  {
    std::vector<std::uint8_t> wire =
        encode_frame(sample_message(MsgKind::kMbrAck));
    wire[10] = 1;  // reserved u16
    routing::Message out;
    EXPECT_EQ(decode_frame(wire, &out), DecodeResult::kBadHeader);
  }
}

TEST(WireCodec, CorruptPayloadRejects) {
  // Truncate the payload but fix up payload_len so the frame parses as
  // exactly that many bytes: the kind's schema must then fail cleanly.
  std::vector<std::uint8_t> wire =
      encode_frame(sample_message(MsgKind::kMbrUpdate));
  const std::uint32_t new_len =
      static_cast<std::uint32_t>(wire.size() - kWireHeaderSize - 5);
  wire.resize(kWireHeaderSize + new_len);
  for (std::size_t i = 0; i < 4; ++i) {
    wire[44 + i] = static_cast<std::uint8_t>(new_len >> (8 * i));
  }
  routing::Message out;
  EXPECT_EQ(decode_frame(wire, &out), DecodeResult::kBadPayload);
}

TEST(WireCodec, NonCanonicalBoolRejects) {
  // ResponsePayload's inner_product bool sits first in its payload.
  std::vector<std::uint8_t> wire =
      encode_frame(sample_message(MsgKind::kResponse));
  bool found = false;
  for (std::size_t i = kWireHeaderSize; i < wire.size(); ++i) {
    routing::Message probe;
    std::vector<std::uint8_t> mutated = wire;
    mutated[i] = 0x02;  // neither 0 nor 1
    if (decode_frame(mutated, &probe) == DecodeResult::kBadPayload) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found) << "no byte position rejected a non-canonical bool";
}

TEST(WireCodec, SingleByteFlipsNeverCrash) {
  // Exhaustive single-byte corruption over every kind's sample frame: any
  // outcome is acceptable except a crash/abort; kOk frames must re-encode.
  for (const MsgKind kind : all_kinds()) {
    const std::vector<std::uint8_t> wire = encode_frame(sample_message(kind));
    for (std::size_t i = 0; i < wire.size(); ++i) {
      std::vector<std::uint8_t> mutated = wire;
      mutated[i] ^= 0xA5;
      routing::Message out;
      const DecodeResult result = decode_frame(mutated, &out);
      if (result == DecodeResult::kOk) {
        (void)encode_frame(out);
      }
    }
  }
}

TEST(WireCodec, SpecialDoublesRoundTripExactly) {
  routing::Message msg = sample_message(MsgKind::kResponse);
  core::ResponsePayload payload;
  payload.query = 1;
  payload.client = 0;
  core::SimilarityMatch match;
  match.query = 1;
  match.stream = 2;
  match.bound_distance = std::numeric_limits<double>::quiet_NaN();
  payload.matches = {match};
  payload.inner_product_value = -0.0;
  testing::set_payload(msg, std::move(payload));

  const std::vector<std::uint8_t> wire = encode_frame(msg);
  routing::Message decoded;
  ASSERT_EQ(decode_frame(wire, &decoded), DecodeResult::kOk);
  EXPECT_EQ(encode_frame(decoded), wire);  // bit-exact, NaN included
}

TEST(WireCodec, DecodeResultNamesAreStable) {
  EXPECT_STREQ(decode_result_name(DecodeResult::kOk), "ok");
  EXPECT_STREQ(decode_result_name(DecodeResult::kTruncated), "truncated");
  EXPECT_STREQ(decode_result_name(DecodeResult::kBadPayload), "bad_payload");
}

}  // namespace
}  // namespace sdsi::net
