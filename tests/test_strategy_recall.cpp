// Per-strategy recall floors via the fault-free RecallOracle: the dft
// strategy's interval map guarantees no false dismissals (recall 1.0 inside
// the oracle's visibility), the ecm strategy keeps the same interval
// guarantee over sketch-derived features, and the lsh strategy's capped
// multi-probe trades a bounded amount of recall for fewer routed messages.
// The floors here are the regression contract docs/STRATEGIES.md documents.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/strategy.hpp"

namespace sdsi::core {
namespace {

ExperimentConfig recall_config(StrategyKind kind) {
  ExperimentConfig config;
  config.num_nodes = 16;
  config.id_bits = 16;
  config.seed = 20260809;
  config.features.window_size = 64;
  config.features.num_coefficients = 2;
  config.warmup = sim::Duration::seconds(20);
  config.measure = sim::Duration::seconds(30);
  config.oracle_sample_period = sim::Duration::seconds(1);
  // Let end-of-window publications finish matching and delivery before the
  // report is read; without it even the lossless path reads ~0.94.
  config.drain = sim::Duration::seconds(5);
  config.strategy.kind = kind;
  return config;
}

double measured_recall(StrategyKind kind) {
  Experiment experiment(recall_config(kind));
  experiment.run();
  const RobustnessReport report = experiment.robustness_report();
  EXPECT_GT(report.oracle_pairs, 0u)
      << strategy_name(kind) << ": oracle saw no (query, stream) pairs";
  return report.recall;
}

TEST(StrategyRecall, DftRecallIsNearLossless) {
  // The paper's pipeline: interval-pruned matching with symmetric lower
  // bounds never dismisses a true match. End-to-end recall still dips a
  // hair under 1: a pair the oracle predicts in the last instants of the
  // window is dropped if its query expires before the next notify tick
  // reports it — a property of the periodic push protocol, not the index.
  EXPECT_GE(measured_recall(StrategyKind::kDft), 0.97);
}

TEST(StrategyRecall, EcmKeepsTheIntervalGuarantee) {
  // Same Eq. 6 interval map over sketch features: every published summary
  // is stored on the arc any overlapping query covers, so the fault-free
  // delivery path is as lossless as dft's. (Match *quality* differs — the
  // oracle measures delivery of its own predicted matches.)
  EXPECT_GE(measured_recall(StrategyKind::kEcm), 1.0);
}

TEST(StrategyRecall, LshRecallStaysAboveTheDocumentedFloor) {
  // Multi-probe SRP hashing is lossy by design: a match whose MBR hashes
  // far from the query's probed buckets is never scanned. The 0.55 floor is
  // the regression contract for the default 6-plane / 8-probe geometry on
  // this seed; BENCH_strategies.json tracks the full tradeoff surface.
  EXPECT_GE(measured_recall(StrategyKind::kLsh), 0.55);
}

}  // namespace
}  // namespace sdsi::core
