// Middleware integration tests over the idealized ring: the full Sec IV
// machinery — content routing of MBRs, range-replicated similarity queries,
// middle-node aggregation, response pushes, the location service, and
// inner-product answering — verified end to end against ground truth.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <set>

#include "common/rng.hpp"
#include "core/system.hpp"
#include "routing/static_ring.hpp"

namespace sdsi::core {
namespace {

constexpr std::size_t kWindow = 16;

MiddlewareConfig small_config() {
  MiddlewareConfig config;
  config.features.window_size = kWindow;
  config.features.num_coefficients = 2;
  config.batching.batch_size = 3;
  config.mbr_lifespan = sim::Duration::seconds(30);
  config.notify_period = sim::Duration::millis(500);
  return config;
}

struct Harness {
  sim::Simulator sim;
  routing::StaticRing ring;
  MiddlewareSystem system;

  explicit Harness(std::size_t nodes, MiddlewareConfig config = small_config())
      : ring(sim, common::IdSpace(16),
             routing::hash_node_ids(nodes, common::IdSpace(16), 77)),
        system(ring, config) {
    system.start();
  }

  void run_for(double seconds) {
    sim.run_until(sim.now() + sim::Duration::seconds(seconds));
  }

  /// Feeds an exponential stream x_t = gamma^t: its window shape is
  /// invariant under sliding, so its (z-normalized) feature vector is a
  /// fixed point — ground truth becomes computable.
  void feed_exponential(NodeIndex node, StreamId stream, double gamma,
                        int samples) {
    double value = 1.0;
    for (int i = 0; i < samples; ++i) {
      value *= gamma;
      system.post_stream_value(node, stream, value);
    }
  }

  dsp::FeatureVector exponential_features(double gamma) const {
    std::vector<Sample> window(kWindow);
    double value = 1.0;
    for (Sample& x : window) {
      value *= gamma;
      x = value;
    }
    return dsp::extract_features(window, system.config().features);
  }
};

TEST(MiddlewareMbr, ReplicatedExactlyOnRangeNodes) {
  Harness h(8);
  h.system.register_stream(0, 100);
  h.feed_exponential(0, 100, 1.15, 40);
  h.run_for(5.0);

  // A constant-feature stream produces point MBRs: exactly one node (the
  // successor of its key) must store them — plus the source's local copy.
  const Key key = h.system.mapper().key_for(h.exponential_features(1.15));
  const NodeIndex home = h.ring.find_successor_oracle(key);
  for (NodeIndex i = 0; i < h.system.num_nodes(); ++i) {
    const auto& mbrs = h.system.node(i).store.mbrs();
    if (i == home || i == 0) {
      EXPECT_FALSE(mbrs.empty()) << "node " << i;
      for (const auto& entry : mbrs) {
        EXPECT_EQ(entry.stream, 100u);
        EXPECT_EQ(entry.source, 0u);
      }
    } else {
      EXPECT_TRUE(mbrs.empty()) << "node " << i;
    }
  }
}

TEST(MiddlewareMbr, LocalCopyKeptWhenConfigured) {
  MiddlewareConfig config = small_config();
  config.store_local_summaries = true;
  Harness h(8, config);
  h.system.register_stream(2, 5);
  h.feed_exponential(2, 5, 1.2, 30);
  h.run_for(2.0);
  EXPECT_FALSE(h.system.node(2).store.mbrs().empty());
}

TEST(MiddlewareMbr, BatcherGovernsEmissionRate) {
  Harness h(4);
  h.system.register_stream(0, 1);
  // kWindow fills the window; after that each sample yields one feature
  // vector, and every batch_size=3 of them closes one MBR.
  h.feed_exponential(0, 1, 1.1, static_cast<int>(kWindow) + 9);
  EXPECT_EQ(h.system.mbrs_routed(), 3u);
}

TEST(MiddlewareSimilarity, EndToEndMatchSetEqualsGroundTruth) {
  // Eight exponential streams -> eight fixed feature points. A similarity
  // query must report exactly the streams within its radius: the MBRs are
  // points, so no false positives; no false dismissals is the Sec IV-E
  // invariant.
  Harness h(8);
  const double gammas[8] = {1.02, 1.05, 1.08, 1.12, 1.16, 1.20, 1.25, 1.30};
  for (NodeIndex i = 0; i < 8; ++i) {
    h.system.register_stream(i, 200 + i);
    h.feed_exponential(i, 200 + i, gammas[i], 60);
  }
  h.run_for(2.0);

  const dsp::FeatureVector probe = h.exponential_features(1.10);
  const double radius = 0.15;
  std::set<StreamId> expected;
  for (NodeIndex i = 0; i < 8; ++i) {
    if (h.exponential_features(gammas[i]).distance(probe) <= radius) {
      expected.insert(200 + i);
    }
  }
  ASSERT_FALSE(expected.empty());
  ASSERT_LT(expected.size(), 8u);  // query must discriminate

  const QueryId id = h.system.subscribe_similarity(
      3, probe, radius, sim::Duration::seconds(60));
  h.run_for(5.0);

  const ClientQueryRecord* record = h.system.client_record(id);
  ASSERT_NE(record, nullptr);
  EXPECT_GT(record->responses_received, 0u);
  EXPECT_EQ(record->matched_streams,
            (std::unordered_set<StreamId>(expected.begin(), expected.end())));
}

TEST(MiddlewareSimilarity, ContinuousQuerySeesLateArrivingStream) {
  Harness h(8);
  h.system.register_stream(0, 300);
  h.feed_exponential(0, 300, 1.10, 60);
  const dsp::FeatureVector probe = h.exponential_features(1.10);
  const QueryId id = h.system.subscribe_similarity(
      1, probe, 0.05, sim::Duration::seconds(120));
  h.run_for(3.0);
  const ClientQueryRecord* record = h.system.client_record(id);
  EXPECT_EQ(record->matched_streams.size(), 1u);

  // A new stream with the same profile starts later; the continuous query
  // must pick it up too.
  h.system.register_stream(4, 301);
  h.feed_exponential(4, 301, 1.10, 60);
  h.run_for(3.0);
  EXPECT_EQ(record->matched_streams.size(), 2u);
  EXPECT_TRUE(record->matched_streams.contains(301));
}

TEST(MiddlewareSimilarity, MatchesAreDeduplicatedAcrossNodes) {
  // Radius 2.0 covers the entire feature space: every node holds the
  // subscription and every stream matches everywhere it is stored (source
  // copy + routed copy). Each stream must still be reported exactly once.
  Harness h(4);
  for (NodeIndex i = 0; i < 4; ++i) {
    h.system.register_stream(i, 400 + i);
    h.feed_exponential(i, 400 + i, 1.05 + 0.05 * i, 60);
  }
  h.run_for(2.0);
  const QueryId id = h.system.subscribe_similarity(
      0, h.exponential_features(1.10), 2.0, sim::Duration::seconds(60));
  h.run_for(10.0);
  const ClientQueryRecord* record = h.system.client_record(id);
  EXPECT_EQ(record->matched_streams.size(), 4u);
  EXPECT_EQ(record->match_events, 4u);  // no duplicates slipped through
}

TEST(MiddlewareSimilarity, ExpiredQueryStopsResponding) {
  Harness h(4);
  h.system.register_stream(0, 500);
  h.feed_exponential(0, 500, 1.1, 60);
  const QueryId id = h.system.subscribe_similarity(
      1, h.exponential_features(1.1), 0.1, sim::Duration::seconds(3));
  h.run_for(6.0);
  const ClientQueryRecord* record = h.system.client_record(id);
  const std::uint64_t responses_at_expiry = record->responses_received;
  EXPECT_GT(responses_at_expiry, 0u);
  h.run_for(6.0);
  EXPECT_EQ(record->responses_received, responses_at_expiry);
}

TEST(MiddlewareSimilarity, MbrLifespanEvictionStopsMatching) {
  MiddlewareConfig config = small_config();
  config.mbr_lifespan = sim::Duration::seconds(2);
  Harness h(4, config);
  h.system.register_stream(0, 600);
  h.feed_exponential(0, 600, 1.1, 60);
  // Let the MBRs expire before the query arrives.
  h.run_for(4.0);
  const QueryId id = h.system.subscribe_similarity(
      1, h.exponential_features(1.1), 0.1, sim::Duration::seconds(20));
  h.run_for(4.0);
  const ClientQueryRecord* record = h.system.client_record(id);
  EXPECT_TRUE(record->matched_streams.empty());
}

TEST(MiddlewareInnerProduct, ValueMatchesDirectComputation) {
  // Band-limited stream (DC + first harmonic): the k=2 synopsis reconstructs
  // the window exactly, so the answer must match the raw computation.
  Harness h(6);
  h.system.register_stream(2, 700);
  std::vector<Sample> window;
  for (int t = 0; t < 64; ++t) {
    const double x =
        5.0 + 2.0 * std::cos(2.0 * std::numbers::pi * t / kWindow);
    h.system.post_stream_value(2, 700, x);
    window.push_back(x);
  }
  h.run_for(1.0);

  std::vector<double> index(4, 1.0);
  std::vector<double> weights{0.1, 0.2, 0.3, 0.4};
  const QueryId id = h.system.subscribe_inner_product(
      5, 700, index, weights, sim::Duration::seconds(30));
  h.run_for(3.0);

  double expected = 0.0;
  for (int i = 0; i < 4; ++i) {
    expected += weights[static_cast<std::size_t>(i)] *
                window[window.size() - 4 + static_cast<std::size_t>(i)];
  }
  const ClientQueryRecord* record = h.system.client_record(id);
  ASSERT_NE(record, nullptr);
  EXPECT_GT(record->inner_updates, 0u);
  EXPECT_NEAR(record->last_inner_value, expected, 1e-6);
}

TEST(MiddlewareInnerProduct, LocationServiceResolvesAndCaches) {
  Harness h(6);
  h.system.register_stream(1, 800);
  h.feed_exponential(1, 800, 1.05, 40);
  h.run_for(1.0);

  (void)h.system.subscribe_inner_product(3, 800, {1.0}, {1.0},
                                         sim::Duration::seconds(30));
  h.run_for(2.0);
  const auto& metrics = h.system.metrics();
  const std::uint64_t gets_after_first = metrics.location().originated;

  (void)h.system.subscribe_inner_product(3, 800, {1.0}, {2.0},
                                         sim::Duration::seconds(30));
  h.run_for(2.0);
  // The second subscription reuses the cached mapping: no new location
  // traffic beyond the first resolution (1 put + 1 get + 1 reply).
  EXPECT_EQ(metrics.location().originated, gets_after_first);
  EXPECT_TRUE(
      h.system.node(3).location_cache.contains(static_cast<StreamId>(800)));
}

TEST(MiddlewareInnerProduct, UnknownStreamRetriesThenDrains) {
  Harness h(4);
  const QueryId id = h.system.subscribe_inner_product(
      0, 999, {1.0}, {1.0}, sim::Duration::seconds(2));
  // While the query lives, resolution keeps retrying (a registration might
  // still be in flight through the overlay).
  h.run_for(1.0);
  EXPECT_FALSE(h.system.node(0).pending_inner_queries.empty());
  // Once the lifespan passes, the pending set drains and retries stop.
  h.run_for(4.0);
  const ClientQueryRecord* record = h.system.client_record(id);
  EXPECT_EQ(record->inner_updates, 0u);
  EXPECT_TRUE(h.system.node(0).pending_inner_queries.empty());
}

TEST(MiddlewareInnerProduct, ExpiredSubscriptionStopsPushes) {
  Harness h(4);
  h.system.register_stream(0, 810);
  h.feed_exponential(0, 810, 1.08, 40);
  const QueryId id = h.system.subscribe_inner_product(
      1, 810, {1.0}, {1.0}, sim::Duration::seconds(2));
  h.run_for(5.0);
  const ClientQueryRecord* record = h.system.client_record(id);
  const std::uint64_t updates = record->inner_updates;
  EXPECT_GT(updates, 0u);
  h.run_for(5.0);
  EXPECT_EQ(record->inner_updates, updates);
  // The source-side subscription list must be empty again.
  const auto& local = h.system.node(0).streams.at(810);
  EXPECT_TRUE(local.inner_subscriptions.empty());
}

TEST(MiddlewareQueries, RangeReplicationCoversQueryBall) {
  // Every node whose arc intersects [h(q-r), h(q+r)] must hold the
  // subscription; nodes outside must not.
  Harness h(10);
  const dsp::FeatureVector probe = h.exponential_features(1.10);
  const double radius = 0.3;
  const QueryId id =
      h.system.subscribe_similarity(0, probe, radius,
                                    sim::Duration::seconds(60));
  h.run_for(5.0);
  const auto [lo, hi] = h.system.mapper().query_range(probe, radius);
  for (NodeIndex i = 0; i < h.system.num_nodes(); ++i) {
    const bool has =
        h.system.node(i).store.find_subscription(id) != nullptr;
    const Key pred_id = h.ring.node_id(h.ring.predecessor_index(i));
    const Key self_id = h.ring.node_id(i);
    // Node covers part of [lo, hi] iff lo..hi intersects (pred, self].
    const bool expected = h.ring.id_space().in_half_open(lo, pred_id, self_id) ||
                          h.ring.id_space().in_half_open(hi, pred_id, self_id) ||
                          h.ring.id_space().in_closed(self_id, lo, hi);
    EXPECT_EQ(has, expected) << "node " << i;
  }
}

TEST(MiddlewareMetrics, MbrTrafficIsAttributed) {
  Harness h(8);
  h.system.register_stream(0, 900);
  h.feed_exponential(0, 900, 1.12, 80);
  h.run_for(2.0);
  const auto& metrics = h.system.metrics();
  EXPECT_GT(metrics.mbr().originated, 0u);
  EXPECT_EQ(metrics.mbr().originated, h.system.mbrs_routed());
  EXPECT_EQ(metrics.mbr().delivered,
            metrics.mbr().originated + metrics.mbr().range_internal);
}

}  // namespace
}  // namespace sdsi::core
