// Hot-arc detector hysteresis: the enter/exit streak state machine, the
// dead band that prevents split/merge flapping, the idle-window freeze, and
// the late-joiner growth path.
#include <gtest/gtest.h>

#include <vector>

#include "core/hot_arc.hpp"

namespace sdsi::core {
namespace {

// A 5-node ring whose median work is 10: nodes 1..4 tick along at 8..12
// while node 0 plays the hot arc.
std::vector<std::uint64_t> window(std::uint64_t hot) {
  return {hot, 8, 10, 10, 12};
}

HotArcConfig test_config() {
  HotArcConfig config;
  config.enter_ratio = 4.0;
  config.enter_windows = 2;
  config.exit_ratio = 2.0;
  config.exit_windows = 3;
  config.min_median_work = 8;
  return config;
}

TEST(HotArc, SplitsOnlyAfterTheEnterStreak) {
  HotArcDetector detector(test_config(), 5);

  // First hot window: streak 1 of 2 — no transition yet.
  auto t = detector.observe(window(100));
  EXPECT_TRUE(t.split.empty());
  EXPECT_FALSE(detector.is_hot(0));

  // Second consecutive hot window completes the streak.
  t = detector.observe(window(100));
  ASSERT_EQ(t.split.size(), 1u);
  EXPECT_EQ(t.split[0], 0u);
  EXPECT_TRUE(detector.is_hot(0));
  EXPECT_EQ(detector.hot_count(), 1u);
}

TEST(HotArc, ASingleSpikeDoesNotSplit) {
  HotArcDetector detector(test_config(), 5);

  // Hot, then back to normal: the interrupted streak resets to zero, so a
  // later lone hot window starts over instead of completing the pair.
  EXPECT_TRUE(detector.observe(window(100)).split.empty());
  EXPECT_TRUE(detector.observe(window(10)).split.empty());
  EXPECT_TRUE(detector.observe(window(100)).split.empty());
  EXPECT_FALSE(detector.is_hot(0));
}

TEST(HotArc, MergesOnlyAfterTheExitStreak) {
  HotArcDetector detector(test_config(), 5);
  detector.observe(window(100));
  detector.observe(window(100));
  ASSERT_TRUE(detector.is_hot(0));

  // Two cool windows (streak 1, 2 of 3): still hot.
  EXPECT_TRUE(detector.observe(window(5)).merge.empty());
  EXPECT_TRUE(detector.observe(window(5)).merge.empty());
  EXPECT_TRUE(detector.is_hot(0));

  // Third consecutive cool window merges.
  const auto t = detector.observe(window(5));
  ASSERT_EQ(t.merge.size(), 1u);
  EXPECT_EQ(t.merge[0], 0u);
  EXPECT_FALSE(detector.is_hot(0));
  EXPECT_EQ(detector.hot_count(), 0u);
}

TEST(HotArc, TheDeadBandPreventsFlapping) {
  HotArcDetector detector(test_config(), 5);
  detector.observe(window(100));
  detector.observe(window(100));
  ASSERT_TRUE(detector.is_hot(0));

  // Oscillate inside the dead band (exit 2x < 30/10 = 3x < enter 4x) and
  // around it: neither another split nor a merge may ever fire, no matter
  // how long it goes on.
  for (int i = 0; i < 20; ++i) {
    const auto t = detector.observe(window(i % 2 == 0 ? 30 : 100));
    EXPECT_TRUE(t.split.empty()) << "window " << i;
    EXPECT_TRUE(t.merge.empty()) << "window " << i;
    EXPECT_TRUE(detector.is_hot(0)) << "window " << i;
  }

  // The dead band also interrupts an exit streak: two cool windows, one
  // in-band window, two more cool windows — still hot (the streak restarted).
  detector.observe(window(5));
  detector.observe(window(5));
  detector.observe(window(30));
  detector.observe(window(5));
  detector.observe(window(5));
  EXPECT_TRUE(detector.is_hot(0));
}

TEST(HotArc, IdleWindowsFreezeStreaksInsteadOfResettingThem) {
  HotArcDetector detector(test_config(), 5);

  // One hot window, then an idle ring (median below min_median_work): the
  // pending enter streak must survive the gap and complete on the next
  // real window.
  EXPECT_TRUE(detector.observe(window(100)).split.empty());
  EXPECT_TRUE(detector.observe({3, 0, 1, 0, 2}).split.empty());
  const auto t = detector.observe(window(100));
  ASSERT_EQ(t.split.size(), 1u);
  EXPECT_EQ(t.split[0], 0u);

  // Same on the way out: an idle window must not count toward (or against)
  // the exit streak.
  detector.observe(window(5));
  detector.observe(window(5));
  detector.observe({0, 0, 0, 0, 0});
  EXPECT_TRUE(detector.is_hot(0));
  const auto merged = detector.observe(window(5));
  ASSERT_EQ(merged.merge.size(), 1u);
  EXPECT_FALSE(detector.is_hot(0));
}

TEST(HotArc, RelativeThresholdTracksTheMedian) {
  HotArcDetector detector(test_config(), 5);

  // 41 > 4 x 10: hot relative to a median of 10...
  detector.observe(window(41));
  detector.observe(window(41));
  EXPECT_TRUE(detector.is_hot(0));

  HotArcDetector busy(test_config(), 5);
  // ...but the same absolute load on a uniformly busy ring (median 40) is
  // nothing special.
  for (int i = 0; i < 5; ++i) {
    const auto t = busy.observe({41, 38, 40, 40, 42});
    EXPECT_TRUE(t.split.empty());
  }
  EXPECT_EQ(busy.hot_count(), 0u);
}

TEST(HotArc, MultipleNodesTransitionInAscendingOrder) {
  HotArcDetector detector(test_config(), 6);
  const std::vector<std::uint64_t> two_hot = {100, 8, 90, 10, 10, 12};
  detector.observe(two_hot);
  const auto t = detector.observe(two_hot);
  ASSERT_EQ(t.split.size(), 2u);
  EXPECT_EQ(t.split[0], 0u);
  EXPECT_EQ(t.split[1], 2u);
  EXPECT_EQ(detector.hot_count(), 2u);
}

TEST(HotArc, EnsureNodesAddsCoolLateJoiners) {
  HotArcDetector detector(test_config(), 3);
  detector.observe({100, 10, 10});
  detector.observe({100, 10, 10});
  ASSERT_TRUE(detector.is_hot(0));

  detector.ensure_nodes(5);
  EXPECT_FALSE(detector.is_hot(3));
  EXPECT_FALSE(detector.is_hot(4));
  EXPECT_EQ(detector.hot_count(), 1u);

  // The joiners participate in the next window's median and can go hot
  // through the same streak machinery.
  detector.observe({10, 10, 10, 90, 10});
  const auto t = detector.observe({10, 10, 10, 90, 10});
  ASSERT_EQ(t.split.size(), 1u);
  EXPECT_EQ(t.split[0], 3u);

  // ensure_nodes never shrinks and never forgets state.
  detector.ensure_nodes(2);
  EXPECT_TRUE(detector.is_hot(0));
  EXPECT_TRUE(detector.is_hot(3));
}

}  // namespace
}  // namespace sdsi::core
