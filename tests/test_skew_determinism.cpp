// Determinism gate of the overload-control layer: the same seeded
// adversarial run — Zipf pattern pool, skewed placement, hot-arc splitting,
// forced shedding, and publish backpressure all active — at --threads 1, 2,
// and 8 must produce identical shed counts, identical split/merge/divert
// decisions, identical per-query matched stream sets, and a byte-identical
// metrics.json. Overload decisions live on the serial dispatch path and the
// shed accumulator is rng-free, so thread count must be unobservable even
// while the mitigation machinery is rewriting the data path.
//
// Runs under both the chaos-smoke and tsan-smoke labels (compound label in
// tests/CMakeLists.txt), like the other equivalence gates.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "core/experiment.hpp"

namespace sdsi::core {
namespace {

ExperimentConfig skew_config(std::size_t threads, const std::string& obs_dir) {
  ExperimentConfig config;
  config.num_nodes = 10;
  config.seed = 7777;
  config.substrate = SubstrateKind::kStaticRing;  // cheap: TSAN runs this too
  config.features.window_size = 32;
  config.features.num_coefficients = 2;
  config.workload.stream_period_min = sim::Duration::millis(40);
  config.workload.stream_period_max = sim::Duration::millis(60);
  config.workload.query_rate_per_sec = 3.0;
  config.workload.notify_period = sim::Duration::millis(500);
  config.batching.batch_size = 3;
  config.warmup = sim::Duration::seconds(4);
  config.measure = sim::Duration::seconds(6);
  config.oracle_sample_period = sim::Duration::millis(500);
  config.threads = threads;
  config.obs.dir = obs_dir;

  // The full adversarial stack minus the flash crowd (stock-family only):
  // popular patterns + skewed placement concentrate work onto one arc.
  streams::AdversarialSpec adversarial;
  adversarial.pattern_pool = 4;
  adversarial.zipf_exponent = 1.3;
  adversarial.zipf_clients = true;
  adversarial.placement_skew = 2.0;
  config.adversarial = adversarial;

  // Every overload mechanism on at once, with thresholds low enough that
  // all of them fire inside the short window: detector splits (fast
  // hysteresis), forced shedding (deterministic accumulator), and publish
  // backpressure (tiny budget, bounded deferral queue).
  OverloadOptions overload;
  overload.window = sim::Duration::millis(500);
  overload.detector.enter_ratio = 2.0;
  overload.detector.enter_windows = 2;
  overload.detector.exit_ratio = 1.0;
  overload.detector.exit_windows = 3;
  overload.detector.min_median_work = 2;
  overload.split_ways = 3;
  overload.forced_shed_rate = 0.2;
  overload.publish_budget = 3;
  overload.defer_capacity = 8;
  config.overload = overload;
  return config;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct RunDigest {
  std::map<QueryId, std::set<StreamId>> matched;
  std::uint64_t queries = 0;
  std::uint64_t matches = 0;
  double recall = 0.0;
  std::uint64_t shed = 0;
  std::uint64_t splits = 0;
  std::uint64_t merges = 0;
  std::uint64_t diverted = 0;
  std::uint64_t deferrals = 0;
  std::uint64_t backpressure_drops = 0;
  std::string metrics_json;
};

RunDigest run_once(std::size_t threads, const std::string& obs_dir) {
  Experiment experiment(skew_config(threads, obs_dir));
  experiment.run();
  RunDigest digest;
  for (const auto& [id, record] : experiment.system().client_records()) {
    digest.matched[id] = std::set<StreamId>(record.matched_streams.begin(),
                                            record.matched_streams.end());
  }
  const QualityReport quality = experiment.quality_report();
  digest.queries = quality.queries_posed;
  digest.matches = quality.matches_reported;
  const RobustnessReport robustness = experiment.robustness_report();
  digest.recall = robustness.recall;
  digest.shed = robustness.shed_mbrs;
  digest.splits = robustness.hot_arc_splits;
  digest.merges = robustness.hot_arc_merges;
  digest.diverted = robustness.split_diverted_stores;
  digest.deferrals = robustness.backpressure_deferrals;
  digest.backpressure_drops = robustness.backpressure_drops;
  digest.metrics_json = slurp(obs_dir + "/metrics.json");
  return digest;
}

TEST(SkewDeterminism, OverloadDecisionsAreThreadCountInvariant) {
  const std::string base = ::testing::TempDir() + "sdsi_skew_det";
  const RunDigest serial = run_once(1, base + "_t1");

  // The run must actually exercise every mechanism under test, or the
  // equivalence proves nothing.
  ASSERT_GT(serial.queries, 0u);
  ASSERT_GT(serial.matches, 0u);
  ASSERT_GT(serial.shed, 0u) << "forced shedding never fired";
  ASSERT_GT(serial.splits, 0u) << "hot-arc detector never split";
  ASSERT_GT(serial.diverted, 0u) << "split group diverted nothing";
  ASSERT_GT(serial.deferrals, 0u) << "publish budget never deferred";
  ASSERT_FALSE(serial.metrics_json.empty());

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const RunDigest parallel =
        run_once(threads, base + "_t" + std::to_string(threads));
    EXPECT_EQ(parallel.queries, serial.queries) << threads << " lanes";
    EXPECT_EQ(parallel.matches, serial.matches) << threads << " lanes";
    EXPECT_EQ(parallel.matched, serial.matched) << threads << " lanes";
    EXPECT_EQ(parallel.recall, serial.recall) << threads << " lanes";
    EXPECT_EQ(parallel.shed, serial.shed) << threads << " lanes";
    EXPECT_EQ(parallel.splits, serial.splits) << threads << " lanes";
    EXPECT_EQ(parallel.merges, serial.merges) << threads << " lanes";
    EXPECT_EQ(parallel.diverted, serial.diverted) << threads << " lanes";
    EXPECT_EQ(parallel.deferrals, serial.deferrals) << threads << " lanes";
    EXPECT_EQ(parallel.backpressure_drops, serial.backpressure_drops)
        << threads << " lanes";
    // Byte equality of the export document: per-node work vectors, drop
    // causes, imbalance ratios — none of it may depend on the lane count.
    EXPECT_EQ(parallel.metrics_json, serial.metrics_json) << threads
                                                          << " lanes";
  }
}

}  // namespace
}  // namespace sdsi::core
