// Unit tests of the heartbeat failure detector's three-state machine
// (src/net/failure_detector.hpp): silence deadlines, false-suspicion
// recovery, epoch-based rejoin detection, and the bounds/self guards the
// chaos path relies on (corrupted frames can carry garbage peer indices).
#include <gtest/gtest.h>

#include "net/failure_detector.hpp"

namespace sdsi::net {
namespace {

FailureDetectorConfig test_config() {
  FailureDetectorConfig config;
  config.heartbeat_period_ms = 50;
  config.suspect_after_ms = 250;
  config.dead_after_ms = 600;
  return config;
}

TEST(FailureDetector, AliveToSuspectToDeadOnSilence) {
  FailureDetector detector(test_config(), 2, /*self=*/0);
  detector.observe_alive(1, 0);

  detector.advance(100);
  EXPECT_EQ(detector.health(1), PeerHealth::kAlive);
  EXPECT_TRUE(detector.usable(1));

  detector.advance(250);  // silence == suspect_after
  EXPECT_EQ(detector.health(1), PeerHealth::kSuspect);
  EXPECT_TRUE(detector.usable(1)) << "suspects still get traffic";
  EXPECT_EQ(detector.counters().suspects, 1u);

  detector.advance(599);
  EXPECT_EQ(detector.health(1), PeerHealth::kSuspect);

  detector.advance(600);  // silence == dead_after
  EXPECT_EQ(detector.health(1), PeerHealth::kDead);
  EXPECT_FALSE(detector.usable(1));
  EXPECT_EQ(detector.counters().deaths, 1u);
}

TEST(FailureDetector, FalseSuspicionRecoversWithoutDetour) {
  FailureDetector detector(test_config(), 2, /*self=*/0);
  detector.observe_alive(1, 0);
  detector.advance(300);
  ASSERT_EQ(detector.health(1), PeerHealth::kSuspect);

  // Delay-only chaos: the frame was late, not lost. One observation heals
  // the suspicion and the only trace is the false_suspicions counter.
  detector.observe_alive(1, 310);
  EXPECT_EQ(detector.health(1), PeerHealth::kAlive);
  EXPECT_EQ(detector.counters().false_suspicions, 1u);
  EXPECT_EQ(detector.counters().deaths, 0u);

  detector.advance(400);
  EXPECT_EQ(detector.health(1), PeerHealth::kAlive);
}

TEST(FailureDetector, DeadPeerRecoversAndEpochBumpSignalsRejoin) {
  FailureDetector detector(test_config(), 2, /*self=*/0);
  // First heartbeat baselines the epoch — never a rejoin, even if nonzero.
  EXPECT_FALSE(detector.observe_heartbeat(1, 0, 0));
  EXPECT_EQ(detector.counters().rejoins, 0u);

  detector.advance(1000);
  ASSERT_EQ(detector.health(1), PeerHealth::kDead);

  // The process restarted: same index, bumped epoch. One heartbeat both
  // revives the record and reports the rejoin exactly once.
  EXPECT_TRUE(detector.observe_heartbeat(1, 1, 1000));
  EXPECT_EQ(detector.health(1), PeerHealth::kAlive);
  EXPECT_EQ(detector.counters().recoveries, 1u);
  EXPECT_EQ(detector.counters().rejoins, 1u);
  EXPECT_EQ(detector.epoch(1), 1u);

  EXPECT_FALSE(detector.observe_heartbeat(1, 1, 1050))
      << "same epoch must not re-report the rejoin";
}

TEST(FailureDetector, RejoinDetectedEvenWithoutObservedDeath) {
  FailureDetector detector(test_config(), 2, /*self=*/0);
  EXPECT_FALSE(detector.observe_heartbeat(1, 0, 0));
  // The peer died and came back between two heartbeats we received: the
  // epoch advance alone is the rejoin evidence.
  EXPECT_TRUE(detector.observe_heartbeat(1, 1, 100));
  EXPECT_EQ(detector.counters().rejoins, 1u);
  EXPECT_EQ(detector.counters().deaths, 0u);
}

TEST(FailureDetector, NeverHeardPeerExcisedFromTimeZero) {
  FailureDetector detector(test_config(), 2, /*self=*/0);
  detector.advance(600);
  EXPECT_EQ(detector.health(1), PeerHealth::kDead);
}

TEST(FailureDetector, SelfAndOutOfRangeEvidenceIgnored) {
  FailureDetector detector(test_config(), 2, /*self=*/0);
  detector.observe_alive(0, 0);  // self: no record
  detector.observe_alive(7, 0);  // out of range: corrupted frame's index
  EXPECT_FALSE(detector.observe_heartbeat(7, 3, 0));
  EXPECT_EQ(detector.epoch(7), 0u);
  detector.advance(10'000);
  EXPECT_EQ(detector.health(0), PeerHealth::kAlive) << "self is never dead";
  EXPECT_EQ(detector.health(7), PeerHealth::kAlive)
      << "unknown peers default to alive (callers bounds-check separately)";
}

}  // namespace
}  // namespace sdsi::net
