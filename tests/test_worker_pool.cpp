// WorkerPool unit tests: inline-mode degradation, exact coverage, chunk
// partitioning, job reuse, and barrier visibility. test_worker_pool and
// test_parallel_match carry the tsan-smoke label: `ctest -L tsan-smoke`
// under the tsan preset is the data-race gate of the parallel engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "core/worker_pool.hpp"

namespace sdsi::core {
namespace {

TEST(WorkerPool, ResolveSemantics) {
  // 0 -> hardware concurrency (>= 1 even when unknown); N -> N.
  EXPECT_GE(WorkerPool::resolve(0), 1u);
  EXPECT_EQ(WorkerPool::resolve(1), 1u);
  EXPECT_EQ(WorkerPool::resolve(7), 7u);
}

TEST(WorkerPool, OneLaneNeverSpawnsAndRunsInline) {
  WorkerPool pool(1);
  EXPECT_TRUE(pool.inline_mode());
  EXPECT_EQ(pool.thread_count(), 1u);

  // Every body runs on the calling thread's stack.
  const std::thread::id caller = std::this_thread::get_id();
  std::size_t calls = 0;
  pool.parallel_for(64, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;  // safe: single-threaded by construction
  });
  EXPECT_EQ(calls, 64u);
}

TEST(WorkerPool, EveryIndexRunsExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  constexpr std::size_t kCount = 10'000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkerPool, ChunksPartitionTheRange) {
  WorkerPool pool(3);
  constexpr std::size_t kCount = 1237;  // prime: uneven tail chunk
  constexpr std::size_t kGrain = 100;
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_chunks(kCount, kGrain, [&](std::size_t begin, std::size_t end) {
    ASSERT_LT(begin, end);
    ASSERT_LE(end, kCount);
    ASSERT_LE(end - begin, kGrain);
    const std::lock_guard<std::mutex> lock(mutex);
    chunks.emplace_back(begin, end);
  });
  // Sorted by begin, the chunks must tile [0, kCount) exactly.
  std::sort(chunks.begin(), chunks.end());
  std::size_t cursor = 0;
  for (const auto& [begin, end] : chunks) {
    ASSERT_EQ(begin, cursor);
    cursor = end;
  }
  EXPECT_EQ(cursor, kCount);
}

TEST(WorkerPool, GrainZeroPicksADefaultAndStillCovers) {
  WorkerPool pool(4);
  constexpr std::size_t kCount = 4096;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_chunks(kCount, 0, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkerPool, EmptyJobReturnsWithoutCallingBody) {
  WorkerPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "body ran on count 0"; });
  pool.parallel_chunks(0, 16, [&](std::size_t, std::size_t) {
    FAIL() << "body ran on count 0";
  });
}

TEST(WorkerPool, ConsecutiveJobsReuseTheSamePool) {
  // The generation counter must isolate jobs: no chunk of job k may run
  // under job k+1, and every job's barrier holds individually.
  WorkerPool pool(4);
  for (std::size_t round = 0; round < 200; ++round) {
    const std::size_t count = 1 + (round * 37) % 257;
    std::vector<std::atomic<int>> hits(count);
    pool.parallel_for(count, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "round " << round << " index " << i;
    }
  }
}

TEST(WorkerPool, BarrierPublishesPlainWrites) {
  // Bodies write to distinct plain (non-atomic) slots; the barrier must make
  // every write visible to the caller. Under the tsan preset this is the
  // happens-before proof for the match-shard and burst-ingest paths, which
  // write results into caller-owned vectors exactly like this.
  WorkerPool pool(4);
  constexpr std::size_t kCount = 50'000;
  std::vector<std::size_t> out(kCount, 0);
  pool.parallel_for(kCount, [&](std::size_t i) { out[i] = i + 1; });
  std::size_t sum = std::accumulate(out.begin(), out.end(), std::size_t{0});
  EXPECT_EQ(sum, kCount * (kCount + 1) / 2);
}

TEST(WorkerPool, SkewedChunkCostsStillCover) {
  // Self-claiming must rebalance when early chunks are much cheaper than
  // late ones (the match pass has exactly this skew across subscriptions).
  WorkerPool pool(4);
  constexpr std::size_t kCount = 512;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_chunks(kCount, 8, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      volatile std::size_t spin = 0;
      for (std::size_t k = 0; k < i * 10; ++k) {
        spin = spin + 1;
      }
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

}  // namespace
}  // namespace sdsi::core
