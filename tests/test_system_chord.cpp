// Middleware-over-Chord integration: the same end-to-end guarantees as the
// StaticRing suite, but across real multi-hop overlay routing — plus churn
// scenarios where data centers crash and join mid-stream.
#include <gtest/gtest.h>

#include "chord/network.hpp"
#include "core/system.hpp"
#include "routing/static_ring.hpp"

namespace sdsi::core {
namespace {

constexpr std::size_t kWindow = 16;

MiddlewareConfig small_config() {
  MiddlewareConfig config;
  config.features.window_size = kWindow;
  config.features.num_coefficients = 2;
  config.batching.batch_size = 3;
  config.mbr_lifespan = sim::Duration::seconds(30);
  config.notify_period = sim::Duration::millis(500);
  return config;
}

struct Harness {
  sim::Simulator sim;
  chord::ChordNetwork net;
  MiddlewareSystem system;

  explicit Harness(std::size_t nodes)
      : net(sim,
            [] {
              chord::ChordConfig config;
              config.id_bits = 32;
              config.successor_list_length = 4;
              return config;
            }()),
        system((net.bootstrap(
                    routing::hash_node_ids(nodes, common::IdSpace(32), 99)),
                net),
               small_config()) {
    system.start();
  }

  void run_for(double seconds) {
    sim.run_until(sim.now() + sim::Duration::seconds(seconds));
  }

  void feed_exponential(NodeIndex node, StreamId stream, double gamma,
                        int samples) {
    double value = 1.0;
    for (int i = 0; i < samples; ++i) {
      value *= gamma;
      system.post_stream_value(node, stream, value);
    }
  }

  dsp::FeatureVector exponential_features(double gamma) const {
    std::vector<Sample> window(kWindow);
    double value = 1.0;
    for (Sample& x : window) {
      value *= gamma;
      x = value;
    }
    return dsp::extract_features(window, small_config().features);
  }
};

TEST(ChordMiddleware, SimilarityGroundTruthOverMultiHopRouting) {
  Harness h(12);
  const double gammas[6] = {1.02, 1.06, 1.10, 1.14, 1.22, 1.30};
  for (NodeIndex i = 0; i < 6; ++i) {
    h.system.register_stream(i, 600 + i);
    h.feed_exponential(i, 600 + i, gammas[i], 50);
  }
  h.run_for(3.0);

  const dsp::FeatureVector probe = h.exponential_features(1.12);
  const double radius = 0.12;
  std::unordered_set<StreamId> expected;
  for (NodeIndex i = 0; i < 6; ++i) {
    if (h.exponential_features(gammas[i]).distance(probe) <= radius) {
      expected.insert(600 + i);
    }
  }
  ASSERT_FALSE(expected.empty());

  const QueryId id = h.system.subscribe_similarity(
      9, probe, radius, sim::Duration::seconds(60));
  h.run_for(8.0);
  const ClientQueryRecord* record = h.system.client_record(id);
  EXPECT_EQ(record->matched_streams, expected);
  EXPECT_GT(record->responses_received, 0u);
}

TEST(ChordMiddleware, InnerProductAcrossTheOverlay) {
  Harness h(10);
  h.system.register_stream(3, 700);
  h.feed_exponential(3, 700, 1.05, 40);
  const QueryId id = h.system.subscribe_latest_value(
      8, 700, sim::Duration::seconds(20));
  h.run_for(5.0);
  const ClientQueryRecord* record = h.system.client_record(id);
  EXPECT_GT(record->inner_updates, 0u);
  // Last value: 1.05^40 ~ 7.04; the synopsis reconstruction is approximate.
  EXPECT_NEAR(record->last_inner_value, std::pow(1.05, 40), 1.5);
}

TEST(ChordMiddleware, ResponsesTraverseMultipleHops) {
  Harness h(16);
  h.system.register_stream(0, 800);
  h.feed_exponential(0, 800, 1.1, 50);
  (void)h.system.subscribe_similarity(
      11, h.exponential_features(1.1), 0.1, sim::Duration::seconds(30));
  h.run_for(6.0);
  const auto& metrics = h.system.metrics();
  EXPECT_GT(metrics.response().delivered, 0u);
  // With 16 nodes the overlay forces real multi-hop routes somewhere.
  EXPECT_GT(metrics.mbr().hops_routed.mean(), 1.0);
}

TEST(ChordMiddleware, SurvivesCrashOfUninvolvedNode) {
  Harness h(12);
  h.system.register_stream(0, 900);
  h.feed_exponential(0, 900, 1.1, 40);
  const QueryId id = h.system.subscribe_similarity(
      1, h.exponential_features(1.1), 0.08, sim::Duration::seconds(60));
  h.run_for(3.0);
  const ClientQueryRecord* record = h.system.client_record(id);
  const std::uint64_t responses_before = record->responses_received;
  EXPECT_GT(responses_before, 0u);

  // Crash a node that is neither source, client, nor (usually) the home of
  // the summaries, then repair and continue streaming.
  h.net.crash(7);
  h.net.run_maintenance_rounds(4);
  h.feed_exponential(0, 900, 1.1, 20);
  h.run_for(4.0);
  EXPECT_GT(record->responses_received, responses_before);
}

TEST(ChordMiddleware, JoinedNodeServesNewStreams) {
  Harness h(8);
  h.system.register_stream(0, 910);
  h.feed_exponential(0, 910, 1.1, 40);
  h.run_for(2.0);

  const NodeIndex newcomer = h.net.join(
      h.net.id_space().wrap(0xDEADBEEFCAFEull), /*via=*/0);
  h.net.run_maintenance_rounds(4);
  h.system.attach_node(newcomer);

  h.system.register_stream(newcomer, 911);
  h.feed_exponential(newcomer, 911, 1.1, 40);
  const QueryId id = h.system.subscribe_similarity(
      2, h.exponential_features(1.1), 0.08, sim::Duration::seconds(30));
  h.run_for(5.0);
  const ClientQueryRecord* record = h.system.client_record(id);
  EXPECT_TRUE(record->matched_streams.contains(910));
  EXPECT_TRUE(record->matched_streams.contains(911));
}

TEST(ChordMiddleware, DeterministicAcrossRuns) {
  auto run = [] {
    Harness h(10);
    for (NodeIndex i = 0; i < 5; ++i) {
      h.system.register_stream(i, 920 + i);
      h.feed_exponential(i, 920 + i, 1.03 + 0.04 * i, 40);
    }
    (void)h.system.subscribe_similarity(7, h.exponential_features(1.08), 0.1,
                                        sim::Duration::seconds(30));
    h.run_for(6.0);
    return h.sim.executed_events();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace sdsi::core
