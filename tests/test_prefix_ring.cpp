// The Pastry-style prefix-routing substrate: digit machinery, routing-table
// structure, lookup correctness, and interchangeability with Chord under the
// RoutingSystem interface.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "routing/prefix_ring.hpp"
#include "routing/static_ring.hpp"

namespace sdsi::routing {
namespace {

PrefixRingConfig small_config(unsigned id_bits = 8, unsigned digit_bits = 2) {
  PrefixRingConfig config;
  config.id_bits = id_bits;
  config.digit_bits = digit_bits;
  return config;
}

struct Harness {
  sim::Simulator sim;
  PrefixRing ring;
  std::vector<std::pair<NodeIndex, Message>> deliveries;

  Harness(PrefixRingConfig config, std::vector<Key> ids) : ring(sim, config) {
    ring.bootstrap(ids);
    ring.set_deliver([this](NodeIndex at, const Message& msg) {
      deliveries.emplace_back(at, msg);
    });
  }
};

TEST(PrefixRing, SharedPrefixDigits) {
  Harness h(small_config(), {0x00, 0x55, 0xAA, 0xFF});
  // 8-bit ids, 2-bit digits -> 4 digits per id.
  EXPECT_EQ(h.ring.digits_per_id(), 4u);
  EXPECT_EQ(h.ring.shared_prefix_digits(0x00, 0x00), 4u);
  EXPECT_EQ(h.ring.shared_prefix_digits(0x00, 0xFF), 0u);
  // 0b01010101 vs 0b01010110: digits 01 01 01 01 vs 01 01 01 10.
  EXPECT_EQ(h.ring.shared_prefix_digits(0x55, 0x56), 3u);
  // 0b01010101 vs 0b01100101: first digit 01 == 01, second 01 != 10.
  EXPECT_EQ(h.ring.shared_prefix_digits(0x55, 0x65), 1u);
}

TEST(PrefixRing, OracleAndNeighborsMatchRingOrder) {
  Harness h(small_config(), {10, 80, 160, 230});
  EXPECT_EQ(h.ring.node_id(h.ring.find_successor_oracle(100)), 160u);
  EXPECT_EQ(h.ring.node_id(h.ring.find_successor_oracle(231)), 10u);  // wrap
  const NodeIndex n80 = h.ring.find_successor_oracle(80);
  EXPECT_EQ(h.ring.node_id(h.ring.successor_index(n80)), 160u);
  EXPECT_EQ(h.ring.node_id(h.ring.predecessor_index(n80)), 10u);
}

TEST(PrefixRing, RoutingTableEntriesShareExpectedPrefix) {
  common::Pcg32 rng(3, 3);
  std::set<Key> ids;
  const common::IdSpace space(16);
  while (ids.size() < 40) {
    ids.insert(space.wrap(rng.next64()));
  }
  Harness h(small_config(16, 4), std::vector<Key>(ids.begin(), ids.end()));
  for (NodeIndex n = 0; n < h.ring.num_nodes(); ++n) {
    for (unsigned row = 0; row < h.ring.digits_per_id(); ++row) {
      for (unsigned digit = 0; digit < 16; ++digit) {
        const NodeIndex entry = h.ring.table_entry(n, row, digit);
        if (entry == kInvalidNode) {
          continue;
        }
        // The entry shares exactly `row` digits and has `digit` next.
        EXPECT_EQ(h.ring.shared_prefix_digits(h.ring.node_id(n),
                                              h.ring.node_id(entry)),
                  row);
      }
    }
  }
}

TEST(PrefixRing, LookupAgreesWithOracleEverywhere) {
  common::Pcg32 rng(5, 5);
  std::set<Key> ids;
  const common::IdSpace space(16);
  while (ids.size() < 30) {
    ids.insert(space.wrap(rng.next64()));
  }
  Harness h(small_config(16, 4), std::vector<Key>(ids.begin(), ids.end()));
  for (int i = 0; i < 500; ++i) {
    const Key key = space.wrap(rng.next64());
    const auto from = static_cast<NodeIndex>(
        rng.bounded(static_cast<std::uint32_t>(h.ring.num_nodes())));
    const auto trace = h.ring.trace_lookup(from, key);
    EXPECT_EQ(trace.result, h.ring.find_successor_oracle(key))
        << "key=" << key;
  }
}

TEST(PrefixRing, SingleNodeCoversEverything) {
  Harness h(small_config(), {42});
  const auto trace = h.ring.trace_lookup(0, 7);
  EXPECT_EQ(trace.result, 0u);
  EXPECT_EQ(trace.hops, 0);
}

TEST(PrefixRing, MessageRoutingDeliversWithHopLatency) {
  Harness h(small_config(), {10, 80, 160, 230});
  Message msg;
  msg.kind = static_cast<routing::MsgKind>(1);
  const NodeIndex n10 = h.ring.find_successor_oracle(10);
  h.ring.send(n10, 100, std::move(msg));
  h.sim.run_all();
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.ring.node_id(h.deliveries[0].first), 160u);
  EXPECT_GE(h.deliveries[0].second.hops, 1);
  // Delivery time == hops * 50ms.
  EXPECT_DOUBLE_EQ(h.sim.now().as_millis(),
                   50.0 * h.deliveries[0].second.hops);
}

TEST(PrefixRing, RangeMulticastCoversOracleSet) {
  common::Pcg32 rng(9, 9);
  std::set<Key> ids;
  const common::IdSpace space(16);
  while (ids.size() < 20) {
    ids.insert(space.wrap(rng.next64()));
  }
  Harness h(small_config(16, 4), std::vector<Key>(ids.begin(), ids.end()));
  const Key lo = 1000;
  const Key hi = 20000;
  std::set<NodeIndex> expected;
  {
    NodeIndex current = h.ring.find_successor_oracle(lo);
    const NodeIndex last = h.ring.find_successor_oracle(hi);
    expected.insert(current);
    while (current != last) {
      current = h.ring.successor_index(current);
      expected.insert(current);
    }
  }
  Message msg;
  msg.kind = static_cast<routing::MsgKind>(1);
  h.ring.send_range(0, lo, hi, std::move(msg),
                    MulticastStrategy::kBidirectional);
  h.sim.run_all();
  std::set<NodeIndex> got;
  for (const auto& [at, m] : h.deliveries) {
    got.insert(at);
  }
  EXPECT_EQ(got, expected);
  EXPECT_EQ(h.deliveries.size(), expected.size());
}

class PrefixHopScaling : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrefixHopScaling, HopsAreLogBase16) {
  const std::size_t n = GetParam();
  sim::Simulator sim;
  PrefixRingConfig config;  // 32-bit ids, 4-bit digits
  PrefixRing ring(sim, config);
  ring.bootstrap(hash_node_ids(n, common::IdSpace(32), 4));
  common::Pcg32 rng(n, 6);
  double total = 0.0;
  constexpr int kLookups = 300;
  for (int i = 0; i < kLookups; ++i) {
    const auto from = static_cast<NodeIndex>(
        rng.bounded(static_cast<std::uint32_t>(n)));
    const Key key = ring.id_space().wrap(rng.next64());
    const auto trace = ring.trace_lookup(from, key);
    ASSERT_NE(trace.result, kInvalidNode);
    EXPECT_EQ(trace.result, ring.find_successor_oracle(key));
    total += trace.hops;
  }
  const double mean = total / kLookups;
  // log16(N) + small leaf-set finish overhead.
  EXPECT_LT(mean, std::log2(static_cast<double>(n)) / 4.0 + 2.5);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrefixHopScaling,
                         ::testing::Values(50, 200, 500));

TEST(PrefixRing, FlatterPathsThanChordAtScale) {
  // The substrate-diversity argument: with b = 4, prefix routing resolves
  // four bits per hop vs Chord's expected one.
  constexpr std::size_t kNodes = 500;
  sim::Simulator sim;
  PrefixRing ring(sim, PrefixRingConfig{});
  ring.bootstrap(hash_node_ids(kNodes, common::IdSpace(32), 4));
  common::Pcg32 rng(1, 1);
  double total = 0.0;
  constexpr int kLookups = 500;
  for (int i = 0; i < kLookups; ++i) {
    const auto from = static_cast<NodeIndex>(rng.bounded(kNodes));
    total += ring.trace_lookup(from, ring.id_space().wrap(rng.next64())).hops;
  }
  // Chord averages ~4.5-5.5 hops at N=500; prefix routing should be ~2-3.
  EXPECT_LT(total / kLookups, 4.0);
}

}  // namespace
}  // namespace sdsi::routing
