// Stream lifecycle and the inner-product sugar APIs: unregister semantics,
// directory tombstones, point queries and moving averages.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "routing/static_ring.hpp"

namespace sdsi::core {
namespace {

constexpr std::size_t kWindow = 16;

MiddlewareConfig small_config() {
  MiddlewareConfig config;
  config.features.window_size = kWindow;
  config.features.num_coefficients = 2;
  config.batching.batch_size = 4;
  config.mbr_lifespan = sim::Duration::seconds(30);
  config.notify_period = sim::Duration::millis(500);
  return config;
}

struct Harness {
  sim::Simulator sim;
  routing::StaticRing ring;
  MiddlewareSystem system;

  explicit Harness(std::size_t nodes)
      : ring(sim, common::IdSpace(16),
             routing::hash_node_ids(nodes, common::IdSpace(16), 33)),
        system(ring, small_config()) {
    system.start();
  }

  void run_for(double seconds) {
    sim.run_until(sim.now() + sim::Duration::seconds(seconds));
  }

  void feed_ramp(NodeIndex node, StreamId stream, int samples,
                 double slope = 1.0, double start = 0.0) {
    for (int i = 0; i < samples; ++i) {
      system.post_stream_value(node, stream,
                               start + slope * static_cast<double>(i));
    }
  }
};

TEST(StreamLifecycle, UnregisterFlushesPartialBatch) {
  Harness h(6);
  h.system.register_stream(0, 10);
  // Window fills at kWindow; two more samples leave a partial batch of 2.
  h.feed_ramp(0, 10, static_cast<int>(kWindow) + 2);
  const std::uint64_t before = h.system.mbrs_routed();
  h.system.unregister_stream(0, 10);
  EXPECT_EQ(h.system.mbrs_routed(), before + 1);  // the flush shipped it
  EXPECT_FALSE(h.system.node(0).streams.contains(10));
}

TEST(StreamLifecycle, UnregisterTombstonesDirectory) {
  Harness h(6);
  h.system.register_stream(2, 20);
  h.run_for(1.0);
  // The directory holder knows the stream...
  const Key key = h.system.mapper().key_for_stream(20);
  const NodeIndex holder = h.ring.find_successor_oracle(key);
  EXPECT_TRUE(h.system.node(holder).location_directory.contains(20));
  h.system.unregister_stream(2, 20);
  h.run_for(1.0);
  // ...and forgets it after the tombstone.
  EXPECT_FALSE(h.system.node(holder).location_directory.contains(20));
}

TEST(StreamLifecycle, QueriesAfterUnregisterGetNothing) {
  Harness h(6);
  h.system.register_stream(1, 30);
  h.feed_ramp(1, 30, 40);
  h.run_for(1.0);
  h.system.unregister_stream(1, 30);
  h.run_for(1.0);
  const QueryId id = h.system.subscribe_latest_value(
      3, 30, sim::Duration::seconds(5));
  h.run_for(3.0);
  const ClientQueryRecord* record = h.system.client_record(id);
  EXPECT_EQ(record->inner_updates, 0u);  // unknown stream: dropped cleanly
}

TEST(StreamLifecycle, ReregisterAfterUnregisterWorks) {
  Harness h(6);
  h.system.register_stream(1, 40);
  h.feed_ramp(1, 40, 30);
  h.system.unregister_stream(1, 40);
  h.run_for(1.0);
  // Same id, different node.
  h.system.register_stream(4, 40);
  h.feed_ramp(4, 40, 40);
  h.run_for(1.0);
  const QueryId id = h.system.subscribe_latest_value(
      0, 40, sim::Duration::seconds(10));
  h.run_for(3.0);
  const ClientQueryRecord* record = h.system.client_record(id);
  EXPECT_GT(record->inner_updates, 0u);
  EXPECT_NEAR(record->last_inner_value, 39.0, 8.0);  // ramp 0..39
}

TEST(InnerProductSugar, LatestValueTracksTheStream) {
  Harness h(6);
  h.system.register_stream(2, 50);
  h.feed_ramp(2, 50, 64);  // last value 63
  const QueryId id = h.system.subscribe_latest_value(
      5, 50, sim::Duration::seconds(20));
  h.run_for(2.0);
  const ClientQueryRecord* record = h.system.client_record(id);
  ASSERT_GT(record->inner_updates, 0u);
  // A pure ramp is band-unlimited but nearly linear: the k=2 synopsis
  // reconstructs ramps imperfectly, so allow a tolerance.
  EXPECT_NEAR(record->last_inner_value, 63.0, 10.0);

  // Push further values: the continuous query tracks them.
  h.feed_ramp(2, 50, 16, 1.0, 64.0);  // now last value 79
  h.run_for(2.0);
  EXPECT_NEAR(record->last_inner_value, 79.0, 12.0);
}

TEST(InnerProductSugar, MovingAverageMatchesDirectComputation) {
  Harness h(6);
  h.system.register_stream(1, 60);
  // Constant stream: every average is exact regardless of synopsis error...
  // except a constant window has no features; use a slow ramp instead and
  // check against the true mean with a tolerance.
  h.feed_ramp(1, 60, 64, 0.5);
  const QueryId id = h.system.subscribe_moving_average(
      4, 60, 8, sim::Duration::seconds(20));
  h.run_for(2.0);
  const ClientQueryRecord* record = h.system.client_record(id);
  ASSERT_GT(record->inner_updates, 0u);
  double expected = 0.0;
  for (int i = 56; i < 64; ++i) {
    expected += 0.5 * i / 8.0;
  }
  EXPECT_NEAR(record->last_inner_value, expected, 2.0);
}

TEST(InnerProductSugar, MovingAverageRejectsOversizedWindow) {
  Harness h(4);
  h.system.register_stream(0, 70);
  EXPECT_DEATH(h.system.subscribe_moving_average(1, 70, kWindow + 1,
                                                 sim::Duration::seconds(5)),
               "");
}

}  // namespace
}  // namespace sdsi::core
