// Minimum bounding rectangles over the feature space.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "dsp/mbr.hpp"

namespace sdsi::dsp {
namespace {

FeatureVector fv(double re0, double im0, double re1 = 0.0, double im1 = 0.0) {
  return FeatureVector({Complex{re0, im0}, Complex{re1, im1}});
}

TEST(Mbr, DefaultIsEmpty) {
  Mbr box;
  EXPECT_TRUE(box.empty());
  EXPECT_EQ(box.dimensions(), 0u);
  EXPECT_EQ(box.volume(), 0.0);
}

TEST(Mbr, PointBoxIsDegenerate) {
  const Mbr box(fv(0.3, -0.2));
  EXPECT_FALSE(box.empty());
  EXPECT_EQ(box.dimensions(), 4u);
  EXPECT_DOUBLE_EQ(box.routing_low(), 0.3);
  EXPECT_DOUBLE_EQ(box.routing_high(), 0.3);
  EXPECT_EQ(box.volume(), 0.0);
  EXPECT_TRUE(box.contains(fv(0.3, -0.2)));
}

TEST(Mbr, ExtendGrowsToCover) {
  Mbr box(fv(0.0, 0.0));
  box.extend(fv(0.5, -0.5));
  box.extend(fv(-0.2, 0.1));
  EXPECT_DOUBLE_EQ(box.routing_low(), -0.2);
  EXPECT_DOUBLE_EQ(box.routing_high(), 0.5);
  EXPECT_TRUE(box.contains(fv(0.1, -0.3)));
  EXPECT_FALSE(box.contains(fv(0.6, 0.0)));
}

TEST(Mbr, ExtendMbrUnionsBoxes) {
  Mbr a(fv(0.0, 0.0));
  a.extend(fv(0.2, 0.2));
  Mbr b(fv(0.5, 0.5));
  a.extend(b);
  EXPECT_DOUBLE_EQ(a.routing_high(), 0.5);
  Mbr empty;
  a.extend(empty);  // no-op
  EXPECT_DOUBLE_EQ(a.routing_high(), 0.5);
  empty.extend(a);  // adopts
  EXPECT_EQ(empty, a);
}

TEST(Mbr, CornersConstructorValidates) {
  const Mbr box({0.0, 0.0}, {1.0, 2.0});
  EXPECT_EQ(box.dimensions(), 2u);
  EXPECT_DOUBLE_EQ(box.volume(), 2.0);
  EXPECT_DOUBLE_EQ(box.margin(), 3.0);
}

TEST(Mbr, PaperFigure4Coordinates) {
  // Figure 4's example MBR: low (0.09, 0.12), high (0.21, 0.40) in the first
  // two feature dimensions.
  const Mbr box({0.09, 0.12}, {0.21, 0.40});
  EXPECT_DOUBLE_EQ(box.routing_low(), 0.09);
  EXPECT_DOUBLE_EQ(box.routing_high(), 0.21);
}

TEST(Mbr, MinDistanceZeroInside) {
  Mbr box(fv(-0.5, -0.5));
  box.extend(fv(0.5, 0.5));
  EXPECT_DOUBLE_EQ(box.min_distance(fv(0.0, 0.0)), 0.0);
  EXPECT_DOUBLE_EQ(box.min_distance(fv(0.5, 0.5)), 0.0);  // boundary
}

TEST(Mbr, MinDistanceToFaceAndCorner) {
  Mbr box(fv(0.0, 0.0));
  box.extend(fv(1.0, 1.0));
  // Face: straight out along one axis.
  EXPECT_DOUBLE_EQ(box.min_distance(fv(2.0, 0.5)), 1.0);
  // Corner: diagonal.
  EXPECT_NEAR(box.min_distance(fv(2.0, 2.0)), std::sqrt(2.0), 1e-12);
}

TEST(Mbr, IntersectsBall) {
  Mbr box(fv(0.0, 0.0));
  box.extend(fv(1.0, 0.0));
  EXPECT_TRUE(box.intersects_ball(fv(1.5, 0.0), 0.5));
  EXPECT_FALSE(box.intersects_ball(fv(1.6, 0.0), 0.5));
}

TEST(Mbr, InflateGrowsEveryDimension) {
  Mbr box(fv(0.0, 0.0));
  box.inflate(0.1);
  EXPECT_DOUBLE_EQ(box.routing_low(), -0.1);
  EXPECT_DOUBLE_EQ(box.routing_high(), 0.1);
  EXPECT_TRUE(box.contains(fv(0.05, -0.05, 0.1, 0.1)));
}

TEST(Mbr, CenterIsMidpoint) {
  const Mbr box({0.0, -2.0}, {1.0, 2.0});
  EXPECT_EQ(box.center(), (std::vector<double>{0.5, 0.0}));
}

TEST(BoundingBox, CoversAllInputs) {
  common::Pcg32 rng(2, 2);
  std::vector<FeatureVector> points;
  for (int i = 0; i < 50; ++i) {
    points.push_back(
        fv(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0),
           rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)));
  }
  const Mbr box = bounding_box(points);
  for (const FeatureVector& p : points) {
    EXPECT_TRUE(box.contains(p));
    EXPECT_DOUBLE_EQ(box.min_distance(p), 0.0);
  }
}

TEST(BoundingBox, EmptyInputGivesEmptyBox) {
  EXPECT_TRUE(bounding_box({}).empty());
}

class MbrPruningProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MbrPruningProperty, MinDistanceLowerBoundsMemberDistance) {
  // If min_distance(query) > r, NO member point can be within r: the pruning
  // the similarity engine relies on.
  common::Pcg32 rng(GetParam(), 8);
  std::vector<FeatureVector> members;
  Mbr box;
  for (int i = 0; i < 20; ++i) {
    members.push_back(
        fv(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0),
           rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)));
    box.extend(members.back());
  }
  const FeatureVector query =
      fv(rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0),
         rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0));
  const double bound = box.min_distance(query);
  for (const FeatureVector& member : members) {
    EXPECT_GE(member.distance(query), bound - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MbrPruningProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace sdsi::dsp
