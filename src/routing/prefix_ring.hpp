// A second content-based routing substrate: Pastry-style prefix routing.
//
// The paper stresses that the middleware "relies on the standard distributed
// hashing table interface ... rather than on a particular implementation"
// and "can be used on top of virtually any existing content-based routing
// implementation" (CAN, Chord, Pastry, Tapestry). This substrate proves that
// claim in code: it keeps Chord's successor-based key coverage (which the
// range multicast needs) but routes with Pastry/Tapestry-style
// longest-matching-prefix tables instead of finger tables:
//
//  - identifiers are strings of base-2^b digits (default b = 4, hex digits);
//  - each node keeps a routing table row per prefix length: the row for
//    length l holds, for every digit d, some node sharing l digits with us
//    whose (l+1)-th digit is d;
//  - a message for key K hops to a node sharing at least one more digit of
//    K than the current node; when no such node exists the leaf set
//    (ring neighbors) finishes numerically, landing on successor(K).
//
// Expected hop count is log_{2^b} N — flatter than Chord's (1/2) log2 N —
// which bench_substrates compares empirically.
#pragma once

#include <span>
#include <vector>

#include "routing/api.hpp"

namespace sdsi::routing {

struct PrefixRingConfig {
  unsigned id_bits = 32;
  /// Digit width b: digits are b-bit groups, 2^b routing-table columns.
  unsigned digit_bits = 4;
  sim::Duration hop_latency = sim::Duration::millis(50);
  int max_route_hops = 128;
};

class PrefixRing final : public RoutingSystem {
 public:
  PrefixRing(sim::Simulator& simulator, PrefixRingConfig config);

  /// Installs all nodes and builds their routing tables and leaf sets.
  void bootstrap(std::span<const Key> ids);

  const PrefixRingConfig& config() const noexcept { return config_; }
  unsigned digits_per_id() const noexcept { return digits_per_id_; }

  /// Longest common digit prefix of two identifiers (diagnostics/tests).
  unsigned shared_prefix_digits(Key a, Key b) const noexcept;

  struct LookupTrace {
    NodeIndex result = kInvalidNode;
    int hops = 0;
    std::vector<NodeIndex> path;
  };
  /// Executes the prefix-routing algorithm without messages or time.
  LookupTrace trace_lookup(NodeIndex from, Key key) const;

  /// Routing-table entry for `node` at prefix length `row`, digit column
  /// `digit`; kInvalidNode when empty.
  NodeIndex table_entry(NodeIndex node, unsigned row, unsigned digit) const;

  // --- RoutingSystem interface ---------------------------------------------
  std::size_t num_nodes() const override { return nodes_.size(); }
  bool is_alive(NodeIndex node) const override {
    return node < nodes_.size();
  }
  Key node_id(NodeIndex node) const override;
  NodeIndex successor_index(NodeIndex node) const override;
  NodeIndex predecessor_index(NodeIndex node) const override;
  NodeIndex find_successor_oracle(Key key) const override;

 protected:
  void route_to_key(NodeIndex from, Key key, Message msg) override;
  void route_direct(NodeIndex from, NodeIndex to, Message msg) override;

 private:
  struct NodeRecord {
    Key id = 0;
    std::size_t ring_position = 0;
    /// routing_table[row * columns + digit].
    std::vector<NodeIndex> table;
  };

  unsigned digit_of(Key id, unsigned position) const noexcept;
  /// One prefix-routing step from `current` toward `key`; sets final_here
  /// when `current` covers the key.
  NodeIndex next_hop(NodeIndex current, Key key, bool& final_here) const;
  void route_step(NodeIndex current, Key key, Message msg);

  PrefixRingConfig config_;
  unsigned digits_per_id_;
  unsigned columns_;
  std::vector<NodeRecord> nodes_;
  std::vector<std::pair<Key, NodeIndex>> sorted_;  // ring order
  std::uint64_t lost_messages_ = 0;
};

}  // namespace sdsi::routing
