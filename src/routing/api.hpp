// The content-based routing abstraction (paper Sec II-B and IV-C).
//
// "Virtually all content-based routing schemes provide the same interface:
// send to a key, join/leave, and a deliver upcall." The middleware is written
// against exactly this surface, so it runs unchanged over full Chord
// (chord/ChordNetwork) or the idealized one-hop ring used for unit tests
// (routing/StaticRing) — reproducing the paper's portability claim.
//
// One extension the paper needs but DHTs lack natively (Sec IV-C): multicast
// to a *range* of keys. RoutingSystem implements it on top of successor /
// predecessor forwarding, in both variants the paper discusses:
//  - kSequential: route to the low end, then walk successors (cheap in
//    messages, O(range) sequential delay);
//  - kBidirectional: route to the middle, then fan out both ways
//    (Sec VI-B; same message count, roughly half the delay).
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/ring_math.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "fault/model.hpp"
#include "obs/trace.hpp"
#include "routing/message.hpp"
#include "sim/pool.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace sdsi::routing {

/// How a range-of-keys multicast propagates.
enum class MulticastStrategy : std::uint8_t {
  kSequential,
  kBidirectional,
};

/// Observation points for the instrumentation layer (Figures 6-8).
class MetricsHook {
 public:
  virtual ~MetricsHook() = default;

  /// A node originated a message (application send, or a range-forward copy
  /// it created).
  virtual void on_send(NodeIndex from, const Message& msg) = 0;

  /// A message passed through `via` on its overlay route (neither origin nor
  /// destination).
  virtual void on_transit(NodeIndex via, const Message& msg) = 0;

  /// A message reached the node responsible for it.
  virtual void on_deliver(NodeIndex at, const Message& msg) = 0;

  /// A transmission or routed message was dropped, with its cause. Default
  /// no-op so existing hooks keep compiling.
  virtual void on_drop(fault::DropCause cause, const Message& msg) {
    (void)cause;
    (void)msg;
  }

  /// A direct transmission found its destination dead and was detoured to a
  /// successor-list replica instead of dropping. Default no-op.
  virtual void on_detour(NodeIndex around, const Message& msg) {
    (void)around;
    (void)msg;
  }

  /// The substrate fell back to ground-truth (oracle) state because its
  /// protocol state was transiently broken mid-churn — the routing "cheat"
  /// churn experiments must account for. Default no-op.
  virtual void on_oracle_fallback(NodeIndex node) { (void)node; }
};

/// Application upcall invoked when a message is delivered at a node.
using DeliverFn = std::function<void(NodeIndex at, const Message& msg)>;

/// Base of every routing substrate. Owns the shared mechanics: delivery
/// upcalls, metrics fan-out, and range multicast built from neighbor
/// forwarding. Concrete subclasses provide ring membership and key routing.
class RoutingSystem {
 public:
  RoutingSystem(sim::Simulator& simulator, common::IdSpace space,
                sim::Duration hop_latency);
  virtual ~RoutingSystem() = default;

  RoutingSystem(const RoutingSystem&) = delete;
  RoutingSystem& operator=(const RoutingSystem&) = delete;

  const common::IdSpace& id_space() const noexcept { return space_; }
  sim::Simulator& simulator() noexcept { return sim_; }
  sim::Duration hop_latency() const noexcept { return hop_latency_; }

  /// Number of node slots ever created (dead nodes keep their index).
  virtual std::size_t num_nodes() const = 0;
  virtual bool is_alive(NodeIndex node) const = 0;
  virtual Key node_id(NodeIndex node) const = 0;

  /// Live ring neighbors of `node`.
  virtual NodeIndex successor_index(NodeIndex node) const = 0;
  virtual NodeIndex predecessor_index(NodeIndex node) const = 0;

  /// Up to `count` distinct live nodes following `node` clockwise — the
  /// replica set of the keys `node` covers (successor-list replication).
  /// The base implementation chain-walks successor_index, which is exact
  /// for substrates with global knowledge (StaticRing, PrefixRing); Chord
  /// overrides it with the node's protocol successor list, so the replica
  /// set degrades with protocol state exactly as real churn would degrade
  /// it.
  virtual std::vector<NodeIndex> successors(NodeIndex node,
                                            std::size_t count) const;

  /// Ground-truth successor(key) computed instantaneously (tests and
  /// diagnostics; never used on the simulated message path).
  virtual NodeIndex find_successor_oracle(Key key) const = 0;

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  void set_metrics_hook(MetricsHook* hook) noexcept { metrics_ = hook; }

  /// Structured trace stream (obs/trace.hpp). When set, every observable
  /// step of every message — originate, range-copy, transit, deliver, drop —
  /// is reported under the message's trace id. Pass nullptr to disable.
  void set_trace_sink(obs::TraceSink* sink) noexcept { trace_ = sink; }
  obs::TraceSink* trace_sink() const noexcept { return trace_; }

  /// Next correlation id. send()/send_direct() call this automatically for
  /// messages without one; callers that span several sends (retries,
  /// refreshes) allocate once and stamp each Message themselves.
  std::uint64_t allocate_trace_id() noexcept { return ++last_trace_id_; }

  /// Failure injection: every transmission is independently lost with
  /// `probability`. The middleware's soft state (periodic MBRs, periodic
  /// responses, refreshes) must tolerate this; tests and benches exercise
  /// it. Pass 0 to disable, 1.0 for a total blackout (partition tests).
  void set_message_loss(double probability, common::Pcg32 rng);

  /// Hook applied to every in-flight envelope as it enters a transmission
  /// deferral (schedule_msg) — the seam where a wire protocol can observe or
  /// rewrite what "goes on the wire" without the routing layer depending on
  /// the codec. net::install_wire_shadow() uses it to push every message
  /// through encode/decode (wire v1) and assert the round-trip is lossless,
  /// equivalence-gated on metrics.json digests. Empty (the default) costs
  /// one branch per transmission and changes nothing.
  using TransmitFilter = std::function<void(Message&)>;
  void set_transmit_filter(TransmitFilter filter) {
    transmit_filter_ = std::move(filter);
  }

  /// Structured fault injection (fault/model.hpp): bursty loss, key-range
  /// partitions, latency jitter. Composes with the legacy uniform model
  /// (both are sampled; either can drop). Pass nullptr to remove.
  void set_fault_model(std::shared_ptr<fault::LinkFaultModel> model) {
    fault_model_ = std::move(model);
  }
  const fault::LinkFaultModel* fault_model() const noexcept {
    return fault_model_.get();
  }

  /// Transmissions dropped by the link-level loss models so far (uniform +
  /// burst + partition; routing-level losses are counted per cause below).
  std::uint64_t dropped_messages() const noexcept { return dropped_; }

  /// Drops recorded under one cause label — unified accounting across the
  /// link loss models (kUniformLoss/kBurstLoss/kPartition) and the
  /// routing-level losses substrates report (kDeadNode/kHopLimit).
  std::uint64_t drop_count(fault::DropCause cause) const noexcept {
    return drops_by_cause_[static_cast<std::size_t>(cause)];
  }

  /// Sum over every cause label.
  std::uint64_t total_drops() const noexcept {
    std::uint64_t total = 0;
    for (const std::uint64_t count : drops_by_cause_) {
      total += count;
    }
    return total;
  }

  /// Times the substrate bypassed its protocol state with ground truth
  /// (see MetricsHook::on_oracle_fallback).
  std::uint64_t oracle_fallbacks() const noexcept { return oracle_fallbacks_; }

  /// Direct transmissions saved by detouring around a dead destination via
  /// its successor list (Message::reroute_on_dead).
  std::uint64_t detours() const noexcept { return detours_; }

  /// Routes `msg` to successor(key) through the overlay ("put"/"get").
  void send(NodeIndex from, Key key, Message msg);

  /// Point-to-point send to a node whose address is already known (the
  /// paper's response path: the notifying node replies to the client
  /// directly, but the reply still transits the overlay's hop distance in
  /// our model — see route_direct in subclasses).
  void send_direct(NodeIndex from, NodeIndex to, Message msg);

  /// Multicast to every node covering a key in the clockwise range
  /// [lo, hi] (Sec IV-C).
  void send_range(NodeIndex from, Key lo, Key hi, Message msg,
                  MulticastStrategy strategy);

  /// Application-level loss accounting: the middleware sheds a message it
  /// chose not to process (overload control — kShedOverload, kBackpressure).
  /// Runs through the same counter + metrics hook + trace path as link and
  /// routing drops, so "total drops" covers every loss regardless of layer.
  void account_app_drop(fault::DropCause cause, const Message& msg) {
    record_drop(cause, msg);
  }

 protected:
  /// Deliver `msg` at `at` after any overlay routing; shared post-delivery
  /// logic (upcall + range forwarding) lives in deliver_at().
  virtual void route_to_key(NodeIndex from, Key key, Message msg) = 0;

  /// Direct (address-known) transmission; implementations simulate the
  /// appropriate latency and transit accounting.
  virtual void route_direct(NodeIndex from, NodeIndex to, Message msg) = 0;

  /// Called by subclasses when a message arrives at its responsible node.
  void deliver_at(NodeIndex at, Message msg);

  void notify_send(NodeIndex from, const Message& msg) {
    if (metrics_ != nullptr) {
      metrics_->on_send(from, msg);
    }
    if (trace_ != nullptr) {
      emit_trace(msg.range_internal ? obs::TraceEventKind::kRangeCopy
                                    : obs::TraceEventKind::kOriginate,
                 from, msg, nullptr);
    }
  }

  /// Loss-model sample: true when this transmission should vanish. Consults
  /// the legacy uniform model, then the structured fault model; records the
  /// drop (counter + cause + metrics hook) itself.
  bool message_lost(const Message& msg);

  /// Routing-level loss accounting for substrates (dead next hop, hop-limit
  /// safety valve): counts under the cause label and tells the hook.
  void record_drop(fault::DropCause cause, const Message& msg) {
    ++drops_by_cause_[static_cast<std::size_t>(cause)];
    if (metrics_ != nullptr) {
      metrics_->on_drop(cause, msg);
    }
    if (trace_ != nullptr) {
      // Link location is not tracked at this layer; the drop is attributed
      // to the copy's origin node.
      emit_trace(obs::TraceEventKind::kDrop, msg.origin, msg,
                 fault::drop_cause_name(cause));
    }
  }

  /// Accounting for a substrate's ground-truth fallback (the routing cheat
  /// satellite): counter + hook + a trace event so churn runs report how
  /// often routing bypassed the protocol. Const because the lookup paths
  /// that need it are const; the counter is mutable bookkeeping.
  void record_oracle_fallback(NodeIndex node) const {
    ++oracle_fallbacks_;
    if (metrics_ != nullptr) {
      metrics_->on_oracle_fallback(node);
    }
    if (trace_ != nullptr) {
      obs::TraceRecord record;
      record.event = obs::TraceEventKind::kOracleFallback;
      record.at_us = sim_.now().count_micros();
      record.node = node;
      trace_->record(record);
    }
  }

  /// Accounting for a successful dead-destination detour.
  void record_detour(NodeIndex around, const Message& msg) {
    ++detours_;
    if (metrics_ != nullptr) {
      metrics_->on_detour(around, msg);
    }
  }

  /// Schedules `fn(msg)` after `delay` — the hot path of every substrate:
  /// each overlay hop parks the in-flight envelope inside an event closure.
  /// With the pooled kernel the Message lives in a free-list slot and the
  /// closure captures only a 24-byte handle, keeping the whole capture
  /// inside EventFn's inline buffer, so steady-state hops allocate nothing.
  /// Under the legacy heap backend (SDSI_SIM_HEAP_QUEUE) the envelope is
  /// captured by value — the closure outgrows the inline buffer —
  /// faithfully reproducing the pre-pool allocation profile that
  /// BENCH_scale.json uses as its baseline.
  template <typename Fn>
  void schedule_msg(sim::Duration delay, Message msg, Fn fn) {
    if (transmit_filter_) {
      transmit_filter_(msg);
    }
    if (sim_.pooled_events()) {
      sim_.schedule_after(delay, [fn = std::move(fn),
                                  p = msg_pool_.make(std::move(msg))]() mutable {
        fn(std::move(*p));
      });
    } else {
      sim_.schedule_after(delay, [fn = std::move(fn),
                                  m = std::move(msg)]() mutable {
        fn(std::move(m));
      });
    }
  }

  /// Per-transmission latency: the constant hop latency plus any jitter the
  /// fault model injects. Substrates use this wherever they simulate a hop.
  sim::Duration transmission_latency() {
    if (fault_model_ != nullptr) {
      return hop_latency_ + fault_model_->sample_jitter();
    }
    return hop_latency_;
  }

  void notify_transit(NodeIndex via, const Message& msg) {
    if (metrics_ != nullptr) {
      metrics_->on_transit(via, msg);
    }
    if (trace_ != nullptr) {
      emit_trace(obs::TraceEventKind::kTransit, via, msg, nullptr);
    }
  }

 private:
  void forward_range_copies(NodeIndex at, const Message& msg);
  void emit_trace(obs::TraceEventKind event, NodeIndex node,
                  const Message& msg, const char* drop_cause);

  sim::Simulator& sim_;
  common::IdSpace space_;
  sim::Duration hop_latency_;
  DeliverFn deliver_;
  TransmitFilter transmit_filter_;
  MetricsHook* metrics_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  std::uint64_t last_trace_id_ = 0;
  double loss_probability_ = 0.0;
  std::optional<common::Pcg32> loss_rng_;
  std::shared_ptr<fault::LinkFaultModel> fault_model_;
  std::uint64_t dropped_ = 0;
  mutable std::uint64_t oracle_fallbacks_ = 0;
  std::uint64_t detours_ = 0;
  std::array<std::uint64_t, static_cast<std::size_t>(fault::DropCause::kCount)>
      drops_by_cause_{};
  sim::ObjectPool<Message> msg_pool_;
};

}  // namespace sdsi::routing
