// Idealized one-hop routing substrate.
//
// Implements the RoutingSystem interface with perfect global knowledge:
// every key-routed message reaches successor(key) in exactly one hop. It
// exists to (a) unit-test the middleware in isolation from Chord's routing
// behavior, and (b) serve as the "ideal DHT" lower bound in ablation benches
// (how much of the system cost is overlay transit vs. inherent).
#pragma once

#include <vector>

#include "routing/api.hpp"

namespace sdsi::routing {

class StaticRing final : public RoutingSystem {
 public:
  /// `node_ids` are distinct ring identifiers; the node with index i gets
  /// node_ids[i]. Indices are the simulator-level handles the application
  /// uses.
  StaticRing(sim::Simulator& simulator, common::IdSpace space,
             std::vector<Key> node_ids,
             sim::Duration hop_latency = sim::Duration::millis(50));

  std::size_t num_nodes() const override { return ids_.size(); }
  bool is_alive(NodeIndex node) const override;
  Key node_id(NodeIndex node) const override;
  NodeIndex successor_index(NodeIndex node) const override;
  NodeIndex predecessor_index(NodeIndex node) const override;
  NodeIndex find_successor_oracle(Key key) const override;

  /// Ring-order successor list (the static-ring equivalent of Chord's
  /// protocol successor list), read straight off the sorted ring so the
  /// replication layer stays substrate-agnostic.
  std::vector<NodeIndex> successors(NodeIndex node,
                                    std::size_t count) const override;

 protected:
  void route_to_key(NodeIndex from, Key key, Message msg) override;
  void route_direct(NodeIndex from, NodeIndex to, Message msg) override;

 private:
  std::vector<Key> ids_;                      // by node index
  std::vector<std::pair<Key, NodeIndex>> sorted_;  // ring order
  std::vector<std::size_t> ring_position_;    // node index -> position in sorted_
};

/// Derives `count` distinct node identifiers the way Chord does: SHA-1 of the
/// node's address ("node:<i>:<attempt>") truncated to the ring width,
/// re-hashing on collision.
std::vector<Key> hash_node_ids(std::size_t count, const common::IdSpace& space,
                               std::uint64_t salt = 0);

}  // namespace sdsi::routing
