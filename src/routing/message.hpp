// The message envelope carried by every content-routed communication.
//
// The routing layer is payload-agnostic (the middleware stores its typed
// payloads in `payload`), but the envelope carries everything the paper's
// instrumentation needs: origin, overlay hop count, and whether the copy is
// a range-multicast replica ("internal" messages in Figures 6-8).
#pragma once

#include <any>
#include <cstdint>

#include "common/types.hpp"
#include "sim/time.hpp"

namespace sdsi::routing {

/// Application message tags carried in Message::kind — one per protocol
/// message the middleware exchanges. The numeric values are wire protocol
/// v1 (docs/WIRE_FORMAT.md): they appear verbatim in the frame header's
/// `kind` field and must never be renumbered; new kinds append.
/// core/metrics.hpp re-exports this enum as core::MsgKind so the codecs,
/// the metrics category labels, and the wire header share one vocabulary.
enum class MsgKind : std::uint16_t {
  kInvalid = 0,           // never on the wire; decode rejects it
  kMbrUpdate = 1,         // batched stream summaries (Sec IV-G)
  kSimilarityQuery = 2,   // continuous similarity subscription (Sec IV-E)
  kInnerProductQuery = 3, // inner-product subscription (Sec IV-D)
  kResponse = 4,          // periodic response to a client (Sec IV-F)
  kNeighborExchange = 5,  // detected-similarity digests between neighbors
  kLocationPut = 6,       // stream-id -> source registration (h2 service)
  kLocationGet = 7,       // stream-id resolution request
  kLocationReply = 8,     // stream-id resolution reply
  kMbrAck = 9,            // storage confirmation for an MBR batch
  kResponseAck = 10,      // client confirmation of a match-bearing push
  kReplicaPut = 11,       // mirrored store entries (mirror/handoff/repair)
  kHandoffRequest = 12,   // joining node pulls its key-range slice
  kAntiEntropyDigest = 13,   // compact content digest between replica peers
  kAntiEntropyRequest = 14,  // backfill request for digest gaps
  kAggregatorReplica = 15,   // partial-aggregation mirror to the replica set
  kHeartbeat = 16,           // liveness beacon for the failure detector
};

/// Number of assigned wire kinds (kInvalid excluded); kind values in
/// [1, kNumMsgKinds] are valid on the wire.
inline constexpr std::uint16_t kNumMsgKinds = 16;

/// Whether a raw header value names an assigned message kind. The wire
/// decoder consults this so an unknown kind REJECTS the frame (a peer
/// speaking a newer protocol must not abort the receiver).
constexpr bool msg_kind_known(std::uint16_t raw) noexcept {
  return raw >= 1 && raw <= kNumMsgKinds;
}

/// Stable lowercase identifier of a message kind (wire spec, trace tooling).
/// kInvalid or out-of-range values return "invalid".
constexpr const char* msg_kind_name(MsgKind kind) noexcept {
  switch (kind) {
    case MsgKind::kInvalid: break;
    case MsgKind::kMbrUpdate: return "mbr_update";
    case MsgKind::kSimilarityQuery: return "similarity_query";
    case MsgKind::kInnerProductQuery: return "inner_product_query";
    case MsgKind::kResponse: return "response";
    case MsgKind::kNeighborExchange: return "neighbor_exchange";
    case MsgKind::kLocationPut: return "location_put";
    case MsgKind::kLocationGet: return "location_get";
    case MsgKind::kLocationReply: return "location_reply";
    case MsgKind::kMbrAck: return "mbr_ack";
    case MsgKind::kResponseAck: return "response_ack";
    case MsgKind::kReplicaPut: return "replica_put";
    case MsgKind::kHandoffRequest: return "handoff_request";
    case MsgKind::kAntiEntropyDigest: return "anti_entropy_digest";
    case MsgKind::kAntiEntropyRequest: return "anti_entropy_request";
    case MsgKind::kAggregatorReplica: return "aggregator_replica";
    case MsgKind::kHeartbeat: return "heartbeat";
  }
  return "invalid";
}

/// Direction a range-multicast copy is traveling (Sec IV-C: successor walk;
/// Sec VI-B: bidirectional from the middle node).
enum class RangeDir : std::uint8_t {
  kNone,  // not a range message
  kUp,    // cover toward the high end (successor direction)
  kDown,  // cover toward the low end (predecessor direction)
  kBoth,  // initial copy of a bidirectional multicast: fan out both ways
};

struct Message {
  /// The key the message was routed to (successor(target_key) delivers).
  Key target_key = 0;

  /// Node that originated the message.
  NodeIndex origin = kInvalidNode;

  /// Application-defined message tag (typed; wire header field `kind`).
  MsgKind kind = MsgKind::kInvalid;

  /// True for copies created by range-multicast forwarding — the paper's
  /// "additional messages in the case of a key range that spans multiple
  /// nodes".
  bool range_internal = false;

  RangeDir range_dir = RangeDir::kNone;

  /// Inclusive clockwise key range [range_lo, range_hi] this message must
  /// cover; meaningful only when has_range.
  bool has_range = false;
  Key range_lo = 0;
  Key range_hi = 0;

  /// When the destination of a neighbor/direct transmission turns out to be
  /// dead, detour the message to the dead node's first live successor-list
  /// entry instead of dropping it (the successor is the node that will
  /// inherit the dead node's arc once stabilization promotes it). Set by the
  /// report path and the replication layer; only when the entire successor
  /// list is gone does the message drop (fault::DropCause::kDeadAggregator).
  bool reroute_on_dead = false;

  /// Overlay hops traversed by THIS copy so far (range-forwarded copies
  /// restart at 0; the metrics layer accumulates per-copy hop counts).
  int hops = 0;

  /// Simulation time the originating send() happened (end-to-end latency).
  sim::SimTime sent_at;

  /// Observability correlation id. Assigned by RoutingSystem::send() when
  /// still 0; range-multicast copies inherit it, and the middleware reuses
  /// one id across a publication's retries/refreshes, so every trace event
  /// of one logical operation shares the id (obs/trace.hpp).
  std::uint64_t trace_id = 0;

  /// Typed application payload; cheap to copy (middleware payloads are
  /// small structs or shared_ptrs). On the wire this is replaced by the
  /// per-kind payload codecs of src/net/wire.hpp.
  std::any payload;
};

}  // namespace sdsi::routing
