// The message envelope carried by every content-routed communication.
//
// The routing layer is payload-agnostic (the middleware stores its typed
// payloads in `payload`), but the envelope carries everything the paper's
// instrumentation needs: origin, overlay hop count, and whether the copy is
// a range-multicast replica ("internal" messages in Figures 6-8).
#pragma once

#include <any>
#include <cstdint>

#include "common/types.hpp"
#include "sim/time.hpp"

namespace sdsi::routing {

/// Direction a range-multicast copy is traveling (Sec IV-C: successor walk;
/// Sec VI-B: bidirectional from the middle node).
enum class RangeDir : std::uint8_t {
  kNone,  // not a range message
  kUp,    // cover toward the high end (successor direction)
  kDown,  // cover toward the low end (predecessor direction)
  kBoth,  // initial copy of a bidirectional multicast: fan out both ways
};

struct Message {
  /// The key the message was routed to (successor(target_key) delivers).
  Key target_key = 0;

  /// Node that originated the message.
  NodeIndex origin = kInvalidNode;

  /// Application-defined message tag (core/metrics.hpp names them).
  int kind = 0;

  /// True for copies created by range-multicast forwarding — the paper's
  /// "additional messages in the case of a key range that spans multiple
  /// nodes".
  bool range_internal = false;

  RangeDir range_dir = RangeDir::kNone;

  /// Inclusive clockwise key range [range_lo, range_hi] this message must
  /// cover; meaningful only when has_range.
  bool has_range = false;
  Key range_lo = 0;
  Key range_hi = 0;

  /// When the destination of a neighbor/direct transmission turns out to be
  /// dead, detour the message to the dead node's first live successor-list
  /// entry instead of dropping it (the successor is the node that will
  /// inherit the dead node's arc once stabilization promotes it). Set by the
  /// report path and the replication layer; only when the entire successor
  /// list is gone does the message drop (fault::DropCause::kDeadAggregator).
  bool reroute_on_dead = false;

  /// Overlay hops traversed by THIS copy so far (range-forwarded copies
  /// restart at 0; the metrics layer accumulates per-copy hop counts).
  int hops = 0;

  /// Simulation time the originating send() happened (end-to-end latency).
  sim::SimTime sent_at;

  /// Observability correlation id. Assigned by RoutingSystem::send() when
  /// still 0; range-multicast copies inherit it, and the middleware reuses
  /// one id across a publication's retries/refreshes, so every trace event
  /// of one logical operation shares the id (obs/trace.hpp).
  std::uint64_t trace_id = 0;

  /// Typed application payload; cheap to copy (middleware payloads are
  /// small structs or shared_ptrs).
  std::any payload;
};

}  // namespace sdsi::routing
