#include "routing/static_ring.hpp"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "common/check.hpp"
#include "common/sha1.hpp"

namespace sdsi::routing {

StaticRing::StaticRing(sim::Simulator& simulator, common::IdSpace space,
                       std::vector<Key> node_ids, sim::Duration hop_latency)
    : RoutingSystem(simulator, space, hop_latency), ids_(std::move(node_ids)) {
  SDSI_CHECK(!ids_.empty());
  sorted_.reserve(ids_.size());
  for (NodeIndex i = 0; i < ids_.size(); ++i) {
    SDSI_CHECK(ids_[i] == space.wrap(ids_[i]));
    sorted_.emplace_back(ids_[i], i);
  }
  std::sort(sorted_.begin(), sorted_.end());
  for (std::size_t p = 1; p < sorted_.size(); ++p) {
    SDSI_CHECK(sorted_[p - 1].first != sorted_[p].first);  // distinct ids
  }
  ring_position_.resize(ids_.size());
  for (std::size_t p = 0; p < sorted_.size(); ++p) {
    ring_position_[sorted_[p].second] = p;
  }
}

bool StaticRing::is_alive(NodeIndex node) const {
  return node < ids_.size();
}

Key StaticRing::node_id(NodeIndex node) const {
  SDSI_CHECK(node < ids_.size());
  return ids_[node];
}

NodeIndex StaticRing::successor_index(NodeIndex node) const {
  SDSI_CHECK(node < ids_.size());
  const std::size_t p = ring_position_[node];
  return sorted_[(p + 1) % sorted_.size()].second;
}

NodeIndex StaticRing::predecessor_index(NodeIndex node) const {
  SDSI_CHECK(node < ids_.size());
  const std::size_t p = ring_position_[node];
  return sorted_[(p + sorted_.size() - 1) % sorted_.size()].second;
}

std::vector<NodeIndex> StaticRing::successors(NodeIndex node,
                                              std::size_t count) const {
  SDSI_CHECK(node < ids_.size());
  const std::size_t n = sorted_.size();
  std::vector<NodeIndex> result;
  result.reserve(std::min(count, n - 1));
  const std::size_t p = ring_position_[node];
  for (std::size_t s = 1; s <= count && s < n; ++s) {
    result.push_back(sorted_[(p + s) % n].second);
  }
  return result;
}

NodeIndex StaticRing::find_successor_oracle(Key key) const {
  // First ring id >= key, wrapping to the smallest id.
  const auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), key,
      [](const std::pair<Key, NodeIndex>& entry, Key k) {
        return entry.first < k;
      });
  return it == sorted_.end() ? sorted_.front().second : it->second;
}

void StaticRing::route_to_key(NodeIndex from, Key key, Message msg) {
  const NodeIndex dst = find_successor_oracle(key);
  if (dst == from) {
    // Local responsibility: deliver without network latency.
    schedule_msg(sim::Duration(), std::move(msg),
                 [this, dst](Message m) { deliver_at(dst, std::move(m)); });
    return;
  }
  msg.hops = 1;
  schedule_msg(transmission_latency(), std::move(msg),
               [this, dst](Message m) { deliver_at(dst, std::move(m)); });
}

void StaticRing::route_direct(NodeIndex from, NodeIndex to, Message msg) {
  SDSI_CHECK(to < ids_.size());
  msg.hops = from == to ? 0 : 1;
  const sim::Duration delay =
      from == to ? sim::Duration() : transmission_latency();
  schedule_msg(delay, std::move(msg),
               [this, to](Message m) { deliver_at(to, std::move(m)); });
}

std::vector<Key> hash_node_ids(std::size_t count, const common::IdSpace& space,
                               std::uint64_t salt) {
  std::vector<Key> ids;
  ids.reserve(count);
  std::unordered_set<Key> used;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t attempt = 0;
    Key id;
    do {
      const std::string address = "node:" + std::to_string(salt) + ":" +
                                  std::to_string(i) + ":" +
                                  std::to_string(attempt);
      id = space.wrap(common::sha1_prefix64(address));
      ++attempt;
    } while (used.contains(id));
    used.insert(id);
    ids.push_back(id);
  }
  return ids;
}

}  // namespace sdsi::routing
