#include "routing/prefix_ring.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/check.hpp"

namespace sdsi::routing {

PrefixRing::PrefixRing(sim::Simulator& simulator, PrefixRingConfig config)
    : RoutingSystem(simulator, common::IdSpace(config.id_bits),
                    config.hop_latency),
      config_(config),
      digits_per_id_(config.id_bits / config.digit_bits),
      columns_(1u << config.digit_bits) {
  SDSI_CHECK(config.digit_bits >= 1 && config.digit_bits <= 8);
  SDSI_CHECK(config.id_bits % config.digit_bits == 0);
}

unsigned PrefixRing::digit_of(Key id, unsigned position) const noexcept {
  SDSI_DCHECK(position < digits_per_id_);
  const unsigned shift =
      config_.id_bits - (position + 1) * config_.digit_bits;
  return static_cast<unsigned>((id >> shift) & (columns_ - 1));
}

unsigned PrefixRing::shared_prefix_digits(Key a, Key b) const noexcept {
  for (unsigned p = 0; p < digits_per_id_; ++p) {
    if (digit_of(a, p) != digit_of(b, p)) {
      return p;
    }
  }
  return digits_per_id_;
}

void PrefixRing::bootstrap(std::span<const Key> ids) {
  SDSI_CHECK(nodes_.empty());
  SDSI_CHECK(!ids.empty());
  std::unordered_set<Key> seen;
  nodes_.reserve(ids.size());
  for (const Key id : ids) {
    SDSI_CHECK(id == id_space().wrap(id));
    SDSI_CHECK(seen.insert(id).second);
    NodeRecord record;
    record.id = id;
    nodes_.push_back(std::move(record));
  }
  sorted_.reserve(ids.size());
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    sorted_.emplace_back(nodes_[i].id, i);
  }
  std::sort(sorted_.begin(), sorted_.end());
  for (std::size_t p = 0; p < sorted_.size(); ++p) {
    nodes_[sorted_[p].second].ring_position = p;
  }

  // Routing tables: for every (row, digit), the candidate sharing `row`
  // digits with us, with `digit` next, closest clockwise (deterministic).
  for (NodeIndex n = 0; n < nodes_.size(); ++n) {
    NodeRecord& node = nodes_[n];
    node.table.assign(static_cast<std::size_t>(digits_per_id_) * columns_,
                      kInvalidNode);
    for (NodeIndex m = 0; m < nodes_.size(); ++m) {
      if (m == n) {
        continue;
      }
      const unsigned row = shared_prefix_digits(node.id, nodes_[m].id);
      if (row >= digits_per_id_) {
        continue;  // identical id cannot happen (distinct check above)
      }
      const unsigned digit = digit_of(nodes_[m].id, row);
      const std::size_t slot =
          static_cast<std::size_t>(row) * columns_ + digit;
      const NodeIndex incumbent = node.table[slot];
      if (incumbent == kInvalidNode ||
          id_space().distance(node.id, nodes_[m].id) <
              id_space().distance(node.id, nodes_[incumbent].id)) {
        node.table[slot] = m;
      }
    }
  }
}

Key PrefixRing::node_id(NodeIndex node) const {
  SDSI_CHECK(node < nodes_.size());
  return nodes_[node].id;
}

NodeIndex PrefixRing::successor_index(NodeIndex node) const {
  SDSI_CHECK(node < nodes_.size());
  const std::size_t p = nodes_[node].ring_position;
  return sorted_[(p + 1) % sorted_.size()].second;
}

NodeIndex PrefixRing::predecessor_index(NodeIndex node) const {
  SDSI_CHECK(node < nodes_.size());
  const std::size_t p = nodes_[node].ring_position;
  return sorted_[(p + sorted_.size() - 1) % sorted_.size()].second;
}

NodeIndex PrefixRing::find_successor_oracle(Key key) const {
  SDSI_CHECK(!sorted_.empty());
  const auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), key,
      [](const std::pair<Key, NodeIndex>& entry, Key k) {
        return entry.first < k;
      });
  return it == sorted_.end() ? sorted_.front().second : it->second;
}

NodeIndex PrefixRing::table_entry(NodeIndex node, unsigned row,
                                  unsigned digit) const {
  SDSI_CHECK(node < nodes_.size());
  SDSI_CHECK(row < digits_per_id_ && digit < columns_);
  return nodes_[node].table[static_cast<std::size_t>(row) * columns_ + digit];
}

NodeIndex PrefixRing::next_hop(NodeIndex current, Key key,
                               bool& final_here) const {
  final_here = false;
  const NodeRecord& node = nodes_[current];
  const Key pred_id = nodes_[predecessor_index(current)].id;
  if (sorted_.size() == 1 ||
      id_space().in_half_open(key, pred_id, node.id)) {
    final_here = true;
    return current;
  }
  const NodeIndex succ = successor_index(current);
  if (id_space().in_half_open(key, node.id, nodes_[succ].id)) {
    return succ;  // leaf-set finish: the successor covers the key
  }
  const unsigned row = shared_prefix_digits(node.id, key);
  if (row < digits_per_id_) {
    const unsigned key_digit = digit_of(key, row);
    const NodeIndex entry = table_entry(current, row, key_digit);
    if (entry != kInvalidNode && entry != current) {
      return entry;  // one digit closer in prefix space
    }
    // No node carries the key's exact digit at this position, so
    // successor(key) lives under the next-higher digit that IS populated
    // within this block (an empty row cell is global knowledge: the
    // bootstrap table indexes every node). Jump straight to that sub-block
    // instead of crawling the ring toward it.
    const unsigned own_digit = digit_of(node.id, row);
    for (unsigned digit = key_digit + 1; digit < columns_; ++digit) {
      if (digit == own_digit) {
        break;  // we are in the first populated sub-block after the key
      }
      const NodeIndex candidate = table_entry(current, row, digit);
      if (candidate != kInvalidNode) {
        return candidate;
      }
    }
  }
  // Finish with the leaf set, walking whichever ring direction is shorter.
  // (A prefix jump can land past successor(key) inside the final sub-block;
  // walking predecessors back is O(sub-block) instead of O(ring).)
  if (id_space().distance(node.id, key) <= id_space().distance(key, node.id)) {
    return succ;
  }
  return predecessor_index(current);
}

PrefixRing::LookupTrace PrefixRing::trace_lookup(NodeIndex from,
                                                 Key key) const {
  SDSI_CHECK(from < nodes_.size());
  LookupTrace trace;
  trace.path.push_back(from);
  NodeIndex current = from;
  for (int hop = 0; hop <= config_.max_route_hops; ++hop) {
    bool final_here = false;
    const NodeIndex next = next_hop(current, key, final_here);
    if (final_here) {
      trace.result = current;
      return trace;
    }
    trace.path.push_back(next);
    ++trace.hops;
    current = next;
  }
  trace.result = kInvalidNode;
  return trace;
}

void PrefixRing::route_to_key(NodeIndex from, Key key, Message msg) {
  schedule_msg(sim::Duration(), std::move(msg), [this, from, key](Message m) {
    route_step(from, key, std::move(m));
  });
}

void PrefixRing::route_step(NodeIndex current, Key key, Message msg) {
  if (msg.hops > config_.max_route_hops) {
    ++lost_messages_;
    record_drop(fault::DropCause::kHopLimit, msg);
    return;
  }
  bool final_here = false;
  const NodeIndex next = next_hop(current, key, final_here);
  if (final_here) {
    deliver_at(current, std::move(msg));
    return;
  }
  if (msg.hops > 0) {
    notify_transit(current, msg);
  }
  msg.hops += 1;
  schedule_msg(transmission_latency(), std::move(msg),
               [this, next, key](Message m) {
                 route_step(next, key, std::move(m));
               });
}

void PrefixRing::route_direct(NodeIndex from, NodeIndex to, Message msg) {
  SDSI_CHECK(to < nodes_.size());
  msg.hops = from == to ? 0 : 1;
  const sim::Duration delay = from == to ? sim::Duration() : transmission_latency();
  schedule_msg(delay, std::move(msg),
               [this, to](Message m) { deliver_at(to, std::move(m)); });
}

}  // namespace sdsi::routing
