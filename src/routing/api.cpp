#include "routing/api.hpp"

#include <utility>

#include "common/check.hpp"

namespace sdsi::routing {

RoutingSystem::RoutingSystem(sim::Simulator& simulator, common::IdSpace space,
                             sim::Duration hop_latency)
    : sim_(simulator), space_(space), hop_latency_(hop_latency) {
  SDSI_CHECK(hop_latency >= sim::Duration());
}

std::vector<NodeIndex> RoutingSystem::successors(NodeIndex node,
                                                 std::size_t count) const {
  std::vector<NodeIndex> result;
  result.reserve(count);
  NodeIndex current = node;
  while (result.size() < count) {
    const NodeIndex next = successor_index(current);
    if (next == node || next == current) {
      break;  // wrapped around the ring, or the node stands alone
    }
    result.push_back(next);
    current = next;
  }
  return result;
}

void RoutingSystem::set_message_loss(double probability, common::Pcg32 rng) {
  // probability == 1.0 is a deliberate total blackout (partition tests):
  // uniform01() < 1.0 always holds, so every transmission drops.
  SDSI_CHECK(probability >= 0.0 && probability <= 1.0);
  loss_probability_ = probability;
  loss_rng_ = rng;
}

bool RoutingSystem::message_lost(const Message& msg) {
  if (loss_probability_ > 0.0 && loss_rng_.has_value() &&
      loss_rng_->uniform01() < loss_probability_) {
    ++dropped_;
    record_drop(fault::DropCause::kUniformLoss, msg);
    return true;
  }
  if (fault_model_ != nullptr) {
    const std::optional<fault::DropCause> cause =
        fault_model_->sample_drop(msg.target_key, sim_.now());
    if (cause.has_value()) {
      ++dropped_;
      record_drop(*cause, msg);
      return true;
    }
  }
  return false;
}

void RoutingSystem::send(NodeIndex from, Key key, Message msg) {
  SDSI_CHECK(is_alive(from));
  msg.target_key = space_.wrap(key);
  msg.origin = from;
  msg.hops = 0;
  msg.sent_at = sim_.now();
  if (msg.trace_id == 0) {
    msg.trace_id = allocate_trace_id();
  }
  notify_send(from, msg);
  if (message_lost(msg)) {
    return;
  }
  route_to_key(from, msg.target_key, std::move(msg));
}

void RoutingSystem::send_direct(NodeIndex from, NodeIndex to, Message msg) {
  SDSI_CHECK(is_alive(from));
  msg.target_key = node_id(to);
  msg.origin = from;
  msg.hops = 0;
  msg.sent_at = sim_.now();
  if (msg.trace_id == 0) {
    msg.trace_id = allocate_trace_id();
  }
  notify_send(from, msg);
  if (message_lost(msg)) {
    return;
  }
  route_direct(from, to, std::move(msg));
}

void RoutingSystem::send_range(NodeIndex from, Key lo, Key hi, Message msg,
                               MulticastStrategy strategy) {
  SDSI_CHECK(is_alive(from));
  msg.has_range = true;
  msg.range_lo = space_.wrap(lo);
  msg.range_hi = space_.wrap(hi);
  switch (strategy) {
    case MulticastStrategy::kSequential:
      // Route to the lowest key; covered nodes walk the range upward.
      msg.range_dir = RangeDir::kUp;
      send(from, msg.range_lo, std::move(msg));
      break;
    case MulticastStrategy::kBidirectional:
      // Route to the middle of the range; the landing node fans out in both
      // directions (Sec VI-B), halving the sequential propagation delay.
      msg.range_dir = RangeDir::kBoth;
      send(from, space_.midpoint(msg.range_lo, msg.range_hi),
           std::move(msg));
      break;
  }
}

void RoutingSystem::deliver_at(NodeIndex at, Message msg) {
  if (metrics_ != nullptr) {
    metrics_->on_deliver(at, msg);
  }
  if (trace_ != nullptr) {
    emit_trace(obs::TraceEventKind::kDeliver, at, msg, nullptr);
  }
  if (deliver_) {
    deliver_(at, msg);
  }
  if (msg.has_range) {
    forward_range_copies(at, msg);
  }
}

void RoutingSystem::emit_trace(obs::TraceEventKind event, NodeIndex node,
                               const Message& msg, const char* drop_cause) {
  obs::TraceRecord record;
  record.trace_id = msg.trace_id;
  record.event = event;
  record.at_us = sim_.now().count_micros();
  record.node = node;
  record.kind = static_cast<int>(msg.kind);
  record.hops = msg.hops;
  record.target_key = msg.target_key;
  record.range_internal = msg.range_internal;
  record.drop_cause = drop_cause;
  trace_->record(record);
}

void RoutingSystem::forward_range_copies(NodeIndex at, const Message& msg) {
  const Key self = node_id(at);
  const Key pred = node_id(predecessor_index(at));
  // This node covers the keys in (pred, self]; it is the last hop in a
  // direction exactly when it covers that direction's range endpoint.
  const bool covers_lo = space_.in_half_open(msg.range_lo, pred, self);
  const bool covers_hi = space_.in_half_open(msg.range_hi, pred, self);

  const bool go_up = (msg.range_dir == RangeDir::kUp ||
                      msg.range_dir == RangeDir::kBoth) &&
                     !covers_hi;
  const bool go_down = (msg.range_dir == RangeDir::kDown ||
                        msg.range_dir == RangeDir::kBoth) &&
                       !covers_lo;

  // Forwarded copies keep the original sent_at: a copy's delivery latency
  // then measures how long the range walk took to reach that node, which is
  // exactly the sequential-propagation delay Sec IV-C worries about.
  if (go_up) {
    Message copy = msg;
    copy.range_internal = true;
    copy.range_dir = RangeDir::kUp;
    copy.origin = at;
    copy.hops = 0;
    copy.target_key = node_id(successor_index(at));
    notify_send(at, copy);
    if (!message_lost(copy)) {
      route_direct(at, successor_index(at), std::move(copy));
    }
  }
  if (go_down) {
    Message copy = msg;
    copy.range_internal = true;
    copy.range_dir = RangeDir::kDown;
    copy.origin = at;
    copy.hops = 0;
    copy.target_key = node_id(predecessor_index(at));
    notify_send(at, copy);
    if (!message_lost(copy)) {
      route_direct(at, predecessor_index(at), std::move(copy));
    }
  }
}

}  // namespace sdsi::routing
