#include "chord/network.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

namespace sdsi::chord {

ChordNetwork::ChordNetwork(sim::Simulator& simulator, ChordConfig config)
    : RoutingSystem(simulator, common::IdSpace(config.id_bits),
                    config.hop_latency),
      config_(config) {
  SDSI_CHECK(config_.successor_list_length >= 1);
}

NodeIndex ChordNetwork::create_node(Key id) {
  SDSI_CHECK(id == id_space().wrap(id));
  NodeState node;
  node.id = id;
  node.alive = true;
  node.fingers = FingerTable(config_.id_bits);
  nodes_.push_back(std::move(node));
  ++alive_count_;
  return static_cast<NodeIndex>(nodes_.size() - 1);
}

void ChordNetwork::bootstrap(std::span<const Key> ids) {
  SDSI_CHECK(nodes_.empty());
  std::unordered_set<Key> seen;
  for (const Key id : ids) {
    SDSI_CHECK(seen.insert(id).second);
    create_node(id);
  }
  rebuild_oracle();
  rebuild_routing_state();
}

void ChordNetwork::rebuild_oracle() {
  oracle_.clear();
  oracle_.reserve(alive_count_);
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].alive) {
      oracle_.emplace_back(nodes_[i].id, i);
    }
  }
  std::sort(oracle_.begin(), oracle_.end());
}

NodeIndex ChordNetwork::find_successor_oracle(Key key) const {
  SDSI_CHECK(!oracle_.empty());
  const auto it = std::lower_bound(
      oracle_.begin(), oracle_.end(), key,
      [](const std::pair<Key, NodeIndex>& entry, Key k) {
        return entry.first < k;
      });
  return it == oracle_.end() ? oracle_.front().second : it->second;
}

void ChordNetwork::rebuild_routing_state() {
  rebuild_oracle();
  SDSI_CHECK(!oracle_.empty());
  const std::size_t n = oracle_.size();
  for (std::size_t p = 0; p < n; ++p) {
    const NodeIndex idx = oracle_[p].second;
    NodeState& node = nodes_[idx];
    node.successor = oracle_[(p + 1) % n].second;
    node.predecessor = oracle_[(p + n - 1) % n].second;
    node.successor_list.clear();
    for (std::size_t s = 1; s <= config_.successor_list_length; ++s) {
      node.successor_list.push_back(oracle_[(p + s) % n].second);
    }
    for (unsigned i = 0; i < config_.id_bits; ++i) {
      node.fingers.set(i, find_successor_oracle(
                              id_space().finger_start(node.id, i)));
    }
  }
}

NodeIndex ChordNetwork::join(Key id, NodeIndex via) {
  SDSI_CHECK(is_alive(via));
  const NodeIndex newcomer = create_node(id);
  NodeState& node = nodes_[newcomer];
  // find_successor(id) over current protocol state, asked through `via`.
  const LookupTrace trace = trace_lookup(via, id);
  SDSI_CHECK(trace.result != kInvalidNode);
  node.successor = trace.result;
  node.predecessor = kInvalidNode;
  node.successor_list.assign(1, trace.result);
  for (unsigned i = 0; i < config_.id_bits; ++i) {
    node.fingers.set(i, trace.result);  // refined by fix_finger over time
  }
  rebuild_oracle();
  return newcomer;
}

void ChordNetwork::leave(NodeIndex node) {
  SDSI_CHECK(is_alive(node));
  NodeState& leaving = nodes_[node];
  // Graceful: splice the ring around the departing node.
  const NodeIndex succ = live_successor(node);
  const NodeIndex pred = leaving.predecessor;
  if (succ != kInvalidNode && succ != node && nodes_[succ].alive) {
    nodes_[succ].predecessor = pred;
  }
  if (pred != kInvalidNode && pred != node && nodes_[pred].alive) {
    nodes_[pred].successor = succ;
    if (!nodes_[pred].successor_list.empty()) {
      nodes_[pred].successor_list.front() = succ;
    }
  }
  leaving.alive = false;
  --alive_count_;
  rebuild_oracle();
}

void ChordNetwork::crash(NodeIndex node) {
  SDSI_CHECK(is_alive(node));
  nodes_[node].alive = false;
  --alive_count_;
  rebuild_oracle();  // only the oracle learns instantly; peers must stabilize
}

void ChordNetwork::recover(NodeIndex node, NodeIndex via) {
  SDSI_CHECK(node < nodes_.size() && !nodes_[node].alive);
  SDSI_CHECK(is_alive(via) && via != node);
  NodeState& state = nodes_[node];
  state.alive = true;
  ++alive_count_;
  const LookupTrace trace = trace_lookup(via, state.id);
  SDSI_CHECK(trace.result != kInvalidNode);
  state.successor = trace.result;
  state.predecessor = kInvalidNode;
  state.successor_list.assign(1, trace.result);
  for (unsigned i = 0; i < config_.id_bits; ++i) {
    state.fingers.set(i, trace.result);  // refined by fix_finger over time
  }
  rebuild_oracle();
}

NodeIndex ChordNetwork::live_successor(NodeIndex node) const {
  const NodeState& state = nodes_[node];
  if (state.successor != kInvalidNode && nodes_[state.successor].alive) {
    return state.successor;
  }
  for (const NodeIndex candidate : state.successor_list) {
    if (candidate != kInvalidNode && nodes_[candidate].alive &&
        candidate != node) {
      return candidate;
    }
  }
  return node;  // last node standing points at itself
}

void ChordNetwork::refresh_successor_list(NodeIndex node) {
  NodeState& state = nodes_[node];
  const NodeIndex succ = live_successor(node);
  state.successor = succ;
  // Adopt successor's list shifted by one (the protocol's list refresh).
  std::vector<NodeIndex> fresh;
  fresh.reserve(config_.successor_list_length);
  fresh.push_back(succ);
  for (const NodeIndex entry : nodes_[succ].successor_list) {
    if (fresh.size() >= config_.successor_list_length) {
      break;
    }
    if (entry != kInvalidNode && nodes_[entry].alive && entry != node) {
      fresh.push_back(entry);
    }
  }
  state.successor_list = std::move(fresh);
}

void ChordNetwork::stabilize(NodeIndex node) {
  if (!is_alive(node)) {
    return;
  }
  NodeState& state = nodes_[node];
  NodeIndex succ = live_successor(node);
  // Ask successor for its predecessor; adopt it if it sits between us. A
  // self-successor means this node believes it is alone, in which case any
  // other node its "successor" has heard from is an improvement (the (a, a)
  // open interval is the whole ring in Chord's convention).
  const NodeIndex between = nodes_[succ].predecessor;
  if (between != kInvalidNode && nodes_[between].alive && between != node &&
      (succ == node ||
       id_space().in_open(nodes_[between].id, state.id, nodes_[succ].id))) {
    succ = between;
  }
  state.successor = succ;
  // notify(succ): we believe we are its predecessor. A successor whose
  // predecessor pointer aims at itself also believes it is alone, so it
  // accepts anyone.
  NodeState& successor_state = nodes_[succ];
  const NodeIndex current_pred = successor_state.predecessor;
  if (succ != node &&
      (current_pred == kInvalidNode || !nodes_[current_pred].alive ||
       current_pred == succ ||
       id_space().in_open(state.id, nodes_[current_pred].id,
                          successor_state.id))) {
    successor_state.predecessor = node;
  }
  refresh_successor_list(node);
}

void ChordNetwork::fix_finger(NodeIndex node, unsigned finger) {
  if (!is_alive(node)) {
    return;
  }
  SDSI_CHECK(finger < config_.id_bits);
  const Key start = id_space().finger_start(nodes_[node].id, finger);
  const LookupTrace trace = trace_lookup(node, start);
  if (trace.result != kInvalidNode) {
    nodes_[node].fingers.set(finger, trace.result);
  }
}

void ChordNetwork::run_maintenance_rounds(int rounds) {
  for (int r = 0; r < rounds; ++r) {
    for (NodeIndex i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].alive) {
        stabilize(i);
      }
    }
    for (NodeIndex i = 0; i < nodes_.size(); ++i) {
      if (!nodes_[i].alive) {
        continue;
      }
      for (unsigned f = 0; f < config_.id_bits; ++f) {
        fix_finger(i, f);
      }
    }
  }
}

NodeIndex ChordNetwork::successor_index(NodeIndex node) const {
  SDSI_CHECK(is_alive(node));
  return live_successor(node);
}

NodeIndex ChordNetwork::predecessor_index(NodeIndex node) const {
  SDSI_CHECK(is_alive(node));
  const NodeIndex pred = nodes_[node].predecessor;
  if (pred != kInvalidNode && nodes_[pred].alive) {
    return pred;
  }
  // Fall back to ground truth (a real node would wait for stabilization;
  // the range walk must not stall on a transiently missing pointer). The
  // bypass is accounted for — counter, hook, trace event — so churn
  // experiments report how often routing cheated.
  record_oracle_fallback(node);
  const auto it = std::lower_bound(
      oracle_.begin(), oracle_.end(), nodes_[node].id,
      [](const std::pair<Key, NodeIndex>& entry, Key k) {
        return entry.first < k;
      });
  if (it == oracle_.begin()) {
    return oracle_.back().second;
  }
  return std::prev(it)->second;
}

std::vector<NodeIndex> ChordNetwork::successors(NodeIndex node,
                                                std::size_t count) const {
  SDSI_CHECK(is_alive(node));
  std::vector<NodeIndex> result;
  result.reserve(count);
  const NodeIndex head = live_successor(node);
  if (head != node) {
    result.push_back(head);
  }
  for (const NodeIndex entry : nodes_[node].successor_list) {
    if (result.size() >= count) {
      break;
    }
    if (entry != kInvalidNode && entry != node && nodes_[entry].alive &&
        std::find(result.begin(), result.end(), entry) == result.end()) {
      result.push_back(entry);
    }
  }
  return result;
}

NodeIndex ChordNetwork::closest_preceding_node(NodeIndex node, Key key) const {
  const NodeState& state = nodes_[node];
  for (unsigned i = config_.id_bits; i-- > 0;) {
    const NodeIndex finger = state.fingers.get(i);
    if (finger == kInvalidNode || !nodes_[finger].alive || finger == node) {
      continue;
    }
    if (id_space().in_open(nodes_[finger].id, state.id, key)) {
      return finger;
    }
  }
  const NodeIndex succ = live_successor(node);
  return succ == node ? node : succ;
}

NodeIndex ChordNetwork::next_hop(NodeIndex current, Key key,
                                 bool& final_here) const {
  final_here = false;
  const NodeState& state = nodes_[current];
  // Shortcut: we already cover the key (consistent-hashing assignment).
  const NodeIndex pred = state.predecessor;
  if (pred != kInvalidNode && nodes_[pred].alive &&
      id_space().in_half_open(key, nodes_[pred].id, state.id)) {
    final_here = true;
    return current;
  }
  const NodeIndex succ = live_successor(current);
  if (succ == current) {
    final_here = true;  // only node in the ring
    return current;
  }
  if (id_space().in_half_open(key, state.id, nodes_[succ].id)) {
    return succ;  // the successor is responsible: last hop
  }
  return closest_preceding_node(current, key);
}

ChordNetwork::LookupTrace ChordNetwork::trace_lookup(NodeIndex from,
                                                     Key key) const {
  SDSI_CHECK(is_alive(from));
  LookupTrace trace;
  trace.path.push_back(from);
  NodeIndex current = from;
  for (int hop = 0; hop <= config_.max_route_hops; ++hop) {
    bool final_here = false;
    const NodeIndex next = next_hop(current, key, final_here);
    if (final_here) {
      trace.result = current;
      return trace;
    }
    bool next_final = false;
    // Was this the "key in (current, successor]" terminal step?
    const NodeState& state = nodes_[current];
    const NodeIndex succ = live_successor(current);
    if (next == succ &&
        id_space().in_half_open(key, state.id, nodes_[succ].id)) {
      next_final = true;
    }
    trace.path.push_back(next);
    ++trace.hops;
    current = next;
    if (next_final) {
      trace.result = current;
      return trace;
    }
  }
  trace.result = kInvalidNode;  // routing loop under heavy churn
  return trace;
}

void ChordNetwork::route_to_key(NodeIndex from, Key key, Message msg) {
  // Even a locally-covered key goes through the event queue, so the deliver
  // upcall never reenters the sender's call stack.
  if (config_.lookup_style == LookupStyle::kIterative) {
    schedule_msg(sim::Duration(), std::move(msg),
                 [this, from, key](Message m) {
                   iterate_step(from, from, key, std::move(m));
                 });
    return;
  }
  schedule_msg(sim::Duration(), std::move(msg), [this, from, key](Message m) {
    route_step(from, key, std::move(m));
  });
}

void ChordNetwork::iterate_step(NodeIndex origin, NodeIndex current, Key key,
                                Message msg) {
  if (!is_alive(origin) || !is_alive(current)) {
    ++lost_messages_;
    record_drop(fault::DropCause::kDeadNode, msg);
    return;
  }
  if (msg.hops > config_.max_route_hops) {
    ++lost_messages_;
    record_drop(fault::DropCause::kHopLimit, msg);
    return;
  }
  bool final_here = false;
  const NodeIndex next = next_hop(current, key, final_here);
  if (final_here) {
    // The responsible node is known: one direct transmission delivers.
    const sim::Duration delay =
        current == origin ? sim::Duration() : transmission_latency();
    msg.hops += current == origin ? 0 : 1;
    schedule_msg(delay, std::move(msg), [this, current](Message m) {
      if (is_alive(current)) {
        deliver_at(current, std::move(m));
      } else if (m.reroute_on_dead) {
        detour_around_dead(current, std::move(m));
      } else {
        ++lost_messages_;
        record_drop(fault::DropCause::kDeadNode, m);
      }
    });
    return;
  }
  // One probe round: origin -> current (request), current -> origin
  // (reply naming `next`). Two transmissions, charged as transit at the
  // probed node; then the origin interrogates `next`. The origin's own
  // first lookup step is local and free.
  const sim::Duration round_trip =
      current == origin ? sim::Duration()
                        : transmission_latency() + transmission_latency();
  if (current != origin) {
    notify_transit(current, msg);
    msg.hops += 2;
  }
  schedule_msg(round_trip, std::move(msg),
               [this, origin, next, key](Message m) {
                 iterate_step(origin, next, key, std::move(m));
               });
}

void ChordNetwork::route_step(NodeIndex current, Key key, Message msg) {
  if (!is_alive(current)) {
    ++lost_messages_;
    record_drop(fault::DropCause::kDeadNode, msg);
    return;
  }
  if (msg.hops > config_.max_route_hops) {
    ++lost_messages_;
    record_drop(fault::DropCause::kHopLimit, msg);
    return;
  }
  bool final_here = false;
  const NodeIndex next = next_hop(current, key, final_here);
  if (final_here) {
    deliver_at(current, std::move(msg));
    return;
  }
  // Determine whether the hop we are about to take terminates at `next`.
  const NodeIndex succ = live_successor(current);
  const bool next_final =
      next == succ && id_space().in_half_open(key, nodes_[current].id,
                                              nodes_[succ].id);
  if (current != msg.origin || msg.hops > 0) {
    // `current` relays a message it neither originated nor consumes.
    notify_transit(current, msg);
  }
  msg.hops += 1;
  schedule_msg(transmission_latency(), std::move(msg),
               [this, next, key, next_final](Message m) {
                 if (!is_alive(next)) {
                   // A terminal hop that died in flight can still detour:
                   // the state belongs to whoever inherits the dead arc.
                   if (next_final && m.reroute_on_dead) {
                     detour_around_dead(next, std::move(m));
                     return;
                   }
                   ++lost_messages_;
                   record_drop(fault::DropCause::kDeadNode, m);
                   return;
                 }
                 if (next_final) {
                   deliver_at(next, std::move(m));
                 } else {
                   route_step(next, key, std::move(m));
                 }
               });
}

void ChordNetwork::route_direct(NodeIndex from, NodeIndex to, Message msg) {
  SDSI_CHECK(to < nodes_.size());
  msg.hops = from == to ? 0 : 1;
  const sim::Duration delay =
      from == to ? sim::Duration() : transmission_latency();
  schedule_msg(delay, std::move(msg), [this, to](Message m) {
    if (!is_alive(to)) {
      if (m.reroute_on_dead) {
        detour_around_dead(to, std::move(m));
        return;
      }
      ++lost_messages_;
      record_drop(fault::DropCause::kDeadNode, m);
      return;
    }
    deliver_at(to, std::move(m));
  });
}

void ChordNetwork::detour_around_dead(NodeIndex dead, Message msg) {
  if (msg.hops > config_.max_route_hops) {
    ++lost_messages_;
    record_drop(fault::DropCause::kHopLimit, msg);
    return;
  }
  // The dead node's successor list is the replica set of the arc it covered;
  // its first live entry is the node stabilization will promote, so the
  // message is worth one more transmission there. (Operationally: the sender
  // times out on the dead neighbor and retries the next list entry — we
  // charge it as one extra hop.)
  NodeIndex next = kInvalidNode;
  for (const NodeIndex candidate : nodes_[dead].successor_list) {
    if (candidate != kInvalidNode && candidate != dead &&
        nodes_[candidate].alive) {
      next = candidate;
      break;
    }
  }
  if (next == kInvalidNode) {
    // The whole replica set is gone; nothing can inherit the state.
    ++lost_messages_;
    record_drop(fault::DropCause::kDeadAggregator, msg);
    return;
  }
  record_detour(dead, msg);
  msg.hops += 1;
  schedule_msg(transmission_latency(), std::move(msg),
               [this, next](Message m) {
                 if (!is_alive(next)) {
                   detour_around_dead(next, std::move(m));
                   return;
                 }
                 deliver_at(next, std::move(m));
               });
}

}  // namespace sdsi::chord
