// Per-node Chord protocol state (paper Sec II-B.1).
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace sdsi::chord {

/// The finger table of one node: entry i points at successor(n + 2^i mod 2^m)
/// for i in [0, m). Entry 0 is the immediate successor. Real Chord stores the
/// IP/port of each finger; the simulator-level NodeIndex plays that role.
class FingerTable {
 public:
  FingerTable() = default;
  explicit FingerTable(unsigned bits)
      : entries_(bits, kInvalidNode) {}

  unsigned size() const noexcept {
    return static_cast<unsigned>(entries_.size());
  }

  NodeIndex get(unsigned i) const noexcept {
    SDSI_DCHECK(i < entries_.size());
    return entries_[i];
  }
  void set(unsigned i, NodeIndex node) noexcept {
    SDSI_DCHECK(i < entries_.size());
    entries_[i] = node;
  }

 private:
  std::vector<NodeIndex> entries_;
};

/// Everything one data center knows about the ring.
struct NodeState {
  Key id = 0;
  bool alive = false;

  /// Protocol pointers. `successor` duplicates successor_list.front() but is
  /// kept explicit to mirror the protocol description.
  NodeIndex predecessor = kInvalidNode;
  NodeIndex successor = kInvalidNode;

  /// r next successors, for routing around failed successors.
  std::vector<NodeIndex> successor_list;

  FingerTable fingers;
};

}  // namespace sdsi::chord
