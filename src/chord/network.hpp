// The Chord content-based routing protocol over the discrete-event simulator.
//
// This is our reimplementation of the substrate the paper ran on (the MIT
// Chord simulator): consistent hashing onto an m-bit identifier circle,
// per-node finger tables giving O(log N) lookups, and the join / leave /
// stabilize machinery that makes the ring adapt to membership changes.
// Key-routed messages travel hop by hop with a constant 50 ms per-hop delay,
// exactly as the paper states its simulator does.
//
// Two ways to form a ring:
//  - bootstrap(ids): instantly installs globally consistent state (used by
//    the performance experiments, which run on a stable ring);
//  - join()/leave()/crash() + periodic stabilization (used by the adaptivity
//    tests to show the ring repairing itself, Sec II-B.1 / VII).
#pragma once

#include <span>
#include <vector>

#include "chord/node_state.hpp"
#include "routing/api.hpp"

namespace sdsi::chord {

/// How key-routed messages traverse the overlay (both appear in the Chord
/// paper):
///  - recursive: each node forwards the message to the next hop (one
///    transmission per hop — what the evaluation figures assume);
///  - iterative: the ORIGIN probes each hop and gets the next-hop address
///    back, then sends the payload directly to the responsible node
///    (2 transmissions per resolved hop + 1 delivery; the origin stays in
///    control, at double the traffic and latency).
enum class LookupStyle : std::uint8_t {
  kRecursive,
  kIterative,
};

struct ChordConfig {
  /// Ring width m. Experiments use 32; Figure-1 tests use 5.
  unsigned id_bits = 32;

  /// Constant per-hop latency ("the Chord simulator simulates a constant
  /// 50ms delay per hop").
  sim::Duration hop_latency = sim::Duration::millis(50);

  LookupStyle lookup_style = LookupStyle::kRecursive;

  /// Successor-list length r (fault tolerance of routing).
  std::size_t successor_list_length = 4;

  /// Safety valve: a routed message that exceeds this hop count is dropped
  /// and counted in lost_messages() (can only happen mid-churn).
  int max_route_hops = 512;
};

class ChordNetwork final : public routing::RoutingSystem {
 public:
  using Message = routing::Message;

  ChordNetwork(sim::Simulator& simulator, ChordConfig config);

  const ChordConfig& config() const noexcept { return config_; }

  // --- Ring construction -------------------------------------------------

  /// Creates node slots for every id and installs globally consistent
  /// successor/predecessor/finger state. Ids must be distinct.
  void bootstrap(std::span<const Key> ids);

  /// Recomputes all routing state of alive nodes from the ground truth
  /// (oracle repair; tests use it to model "stabilization has converged").
  void rebuild_routing_state();

  // --- Membership protocol ------------------------------------------------

  /// Protocol join: the new node asks `via` to look up its own id, adopts
  /// the result as successor, and lets stabilization integrate it fully.
  /// Returns the new node's index.
  NodeIndex join(Key id, NodeIndex via);

  /// Graceful departure: hands its keys' coverage to the successor by
  /// patching neighbors before going down.
  void leave(NodeIndex node);

  /// Crash failure: the node silently vanishes; peers discover it through
  /// stabilization and successor lists.
  void crash(NodeIndex node);

  /// Restart of a crashed node under its old identifier: it re-enters the
  /// ring the way join() does (asks `via` to look up its own id, adopts the
  /// result as successor) and lets stabilization re-integrate it. Its
  /// routing state is rebuilt from scratch — and the middleware above must
  /// treat its soft state as lost (see MiddlewareSystem::
  /// reset_node_soft_state).
  void recover(NodeIndex node, NodeIndex via);

  /// One stabilization round at `node`: verify successor, adopt a closer
  /// one, notify it, refresh the successor list.
  void stabilize(NodeIndex node);

  /// Refreshes finger i of `node` by a local-state lookup.
  void fix_finger(NodeIndex node, unsigned finger);

  /// Runs `rounds` full sweeps of stabilize + fix all fingers over all alive
  /// nodes (convergence helper for tests).
  void run_maintenance_rounds(int rounds);

  // --- Introspection ------------------------------------------------------

  struct LookupTrace {
    NodeIndex result = kInvalidNode;
    int hops = 0;
    std::vector<NodeIndex> path;  // nodes visited, origin first
  };

  /// Executes the lookup algorithm over current protocol state without
  /// sending messages or advancing time. This is what Figure 1(b) depicts.
  LookupTrace trace_lookup(NodeIndex from, Key key) const;

  const NodeState& state(NodeIndex node) const {
    SDSI_CHECK(node < nodes_.size());
    return nodes_[node];
  }

  std::size_t alive_count() const noexcept { return alive_count_; }
  std::uint64_t lost_messages() const noexcept { return lost_messages_; }

  // --- RoutingSystem interface ---------------------------------------------

  std::size_t num_nodes() const override { return nodes_.size(); }
  bool is_alive(NodeIndex node) const override {
    return node < nodes_.size() && nodes_[node].alive;
  }
  Key node_id(NodeIndex node) const override {
    SDSI_CHECK(node < nodes_.size());
    return nodes_[node].id;
  }
  NodeIndex successor_index(NodeIndex node) const override;
  NodeIndex predecessor_index(NodeIndex node) const override;
  NodeIndex find_successor_oracle(Key key) const override;

  /// The node's protocol successor list, filtered to live entries — the
  /// replica set the replication layer mirrors onto. Unlike the base
  /// chain-walk this reflects what the node actually knows mid-churn.
  std::vector<NodeIndex> successors(NodeIndex node,
                                    std::size_t count) const override;

 protected:
  void route_to_key(NodeIndex from, Key key, Message msg) override;
  void route_direct(NodeIndex from, NodeIndex to, Message msg) override;

 private:
  NodeIndex create_node(Key id);

  /// First alive entry of `node`'s successor list (patches the successor
  /// pointer if the head died).
  NodeIndex live_successor(NodeIndex node) const;

  /// Largest finger of `node` strictly inside (node, key), skipping dead
  /// entries; falls back to the live successor.
  NodeIndex closest_preceding_node(NodeIndex node, Key key) const;

  /// Lookup step shared by trace_lookup and the message path. Returns the
  /// next node to visit; sets `final_here` when `current` is the
  /// responsible node.
  NodeIndex next_hop(NodeIndex current, Key key, bool& final_here) const;

  /// Continues routing `msg` from `current` (already charged for arriving
  /// there).
  void route_step(NodeIndex current, Key key, Message msg);

  /// Iterative flavor: the origin probes `current` for the next hop; each
  /// probe round costs two transmissions (request + reply).
  void iterate_step(NodeIndex origin, NodeIndex current, Key key, Message msg);

  /// A transmission with reroute_on_dead found `dead` down on arrival:
  /// forward to the first live entry of the dead node's successor list (the
  /// node that inherits its arc) instead of dropping. Drops with
  /// kDeadAggregator only when the whole list is gone.
  void detour_around_dead(NodeIndex dead, Message msg);

  void refresh_successor_list(NodeIndex node);
  void rebuild_oracle();

  ChordConfig config_;
  std::vector<NodeState> nodes_;
  std::vector<std::pair<Key, NodeIndex>> oracle_;  // sorted alive nodes
  std::size_t alive_count_ = 0;
  std::uint64_t lost_messages_ = 0;
};

}  // namespace sdsi::chord
