// Deterministic single-threaded discrete-event simulator.
//
// This is our stand-in for the MIT Chord simulator's replay loop: it executes
// timed events on all nodes in the system. Events scheduled for the same
// instant run in scheduling order (a monotone sequence number breaks ties),
// which makes whole simulations bit-reproducible.
//
// Two interchangeable scheduler backends execute the exact same
// (when, seq) lexicographic order, so a whole simulation is bit-identical
// on either:
//
//  - kCalendar (the default): a calendar queue. Time is divided into
//    2^kBucketBits-microsecond buckets on a kNumBuckets-wide wheel; each
//    bucket is a small binary heap of 24-byte refs ordered by (when, seq),
//    and events beyond the wheel span sit in an overflow store that is
//    re-partitioned as the window advances. Event closures live in a
//    free-list slot pool, periodic tasks reschedule in place (same slot,
//    fresh sequence number), and cancellation is a generation-counter bump
//    that is purged lazily — steady-state scheduling performs no heap
//    allocation and no O(log total-pending) sift over fat entries.
//
//  - kLegacyHeap: the pre-calendar kernel (one global std::priority_queue
//    plus a shared_ptr<bool> liveness flag per event), kept for one release
//    behind the SDSI_SIM_HEAP_QUEUE environment variable as the measured
//    baseline of BENCH_scale.json and the scheduler-equivalence test. It
//    deliberately preserves the pre-change cost profile, including
//    pending_events() counting cancelled entries until their deadline
//    (the calendar backend reports live events only).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "sim/event_fn.hpp"
#include "sim/time.hpp"

namespace sdsi::sim {

class Simulator;

/// Scheduler backend selection. kAuto honors the SDSI_SIM_HEAP_QUEUE
/// environment variable (non-empty, not "0" => legacy heap), otherwise
/// picks the calendar queue.
enum class QueueBackend : std::uint8_t { kAuto, kCalendar, kLegacyHeap };

/// Cancellation handle for periodic tasks (and one-shot events). Destroying
/// the handle does NOT cancel; call cancel(). A handle may outlive the
/// Simulator that issued it: cancel()/active() degrade to no-ops once the
/// Simulator is gone (the handle watches a per-simulator liveness token).
class TaskHandle {
 public:
  TaskHandle() = default;

  void cancel() noexcept;
  bool active() const noexcept;

 private:
  friend class Simulator;
  explicit TaskHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  TaskHandle(const std::shared_ptr<Simulator>& sim, std::uint32_t slot,
             std::uint32_t gen)
      : sim_(sim), slot_(slot), gen_(gen) {}

  std::shared_ptr<bool> alive_;  // legacy backend
  // Calendar backend: pooled slot + generation. The weak_ptr tracks the
  // Simulator's non-owning liveness token, so it expires with the Simulator
  // and a stale handle never dereferences a dangling pointer.
  std::weak_ptr<Simulator> sim_;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class Simulator {
 public:
  Simulator() : Simulator(QueueBackend::kAuto) {}
  explicit Simulator(QueueBackend backend);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `when` (>= now).
  TaskHandle schedule_at(SimTime when, EventFn fn);

  /// Schedules `fn` after `delay` from now.
  TaskHandle schedule_after(Duration delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs `fn` every `period`, first at `first`, until the handle is
  /// cancelled or the simulation ends.
  TaskHandle schedule_periodic(SimTime first, Duration period, EventFn fn);

  /// Executes events until the queue is empty or `horizon` is passed. Events
  /// stamped exactly at `horizon` still run. Returns the number executed.
  std::uint64_t run_until(SimTime horizon);

  /// Convenience: run_until(now() + span).
  std::uint64_t run_for(Duration span) { return run_until(now_ + span); }

  /// Drains the queue completely (use only with workloads that terminate).
  std::uint64_t run_all();

  /// Executes the single next event. Returns false if the queue is empty.
  bool step();

  std::uint64_t executed_events() const noexcept { return executed_; }

  /// Number of scheduled events that will still run. The calendar backend
  /// counts live events only (cancelled entries are excluded and purged
  /// lazily); the legacy backend keeps the pre-change behavior of counting
  /// cancelled entries until their deadline passes.
  std::size_t pending_events() const noexcept {
    return calendar_ ? live_events_ : heap_queue_.size();
  }

  bool using_calendar_queue() const noexcept { return calendar_; }

  /// Whether callers should park bulky event payloads (routing messages) in
  /// free-list pools. Reported off on the legacy backend so the escape
  /// hatch reproduces the pre-change per-event heap traffic.
  bool pooled_events() const noexcept { return calendar_; }

  /// Test hook: invoked as probe(when, seq) immediately before each live
  /// event executes. Used by the scheduler-equivalence test to assert both
  /// backends replay the identical event order.
  void set_execution_probe(std::function<void(SimTime, SeqNo)> probe) {
    probe_ = std::move(probe);
  }

 private:
  friend class TaskHandle;

  // ---- calendar backend ----

  // 2^kBucketBits microseconds per bucket; kNumBuckets buckets on the
  // wheel => a ~2.1-second span before events spill to the overflow store.
  // Tuned empirically at 10k nodes: narrow buckets keep each per-bucket
  // heap to a few dozen refs (shallow sifts), and 8192 headers (~192 KB)
  // stay cache-resident. Longer-dated timers (soft-state refreshes, query
  // expiries) sit in the overflow store, which is scanned only once per
  // half-wheel advance (~1 s of simulated time) — measured noise next to
  // the per-event win.
  static constexpr unsigned kBucketBits = 8;  // 256 us buckets
  static constexpr std::size_t kNumBuckets = std::size_t{1} << 13;
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  // Hot fields first: execute_ref reads gen, then period, then the EventFn
  // ops pointer — keeping them at the front puts the whole dispatch read
  // on the slot's first cache line.
  struct Slot {
    std::uint32_t gen = 0;       // bumps on cancel/release; handles compare
    std::int64_t period_us = 0;  // 0 => one-shot
    EventFn fn;
  };

  struct Ref {
    std::int64_t when_us;
    SeqNo seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  static bool ref_after(const Ref& a, const Ref& b) noexcept {
    if (a.when_us != b.when_us) {
      return a.when_us > b.when_us;
    }
    return a.seq > b.seq;
  }

  // Slots live in fixed 256-entry chunks, so a slot's address never moves:
  // the run loop can invoke the stored EventFn in place while the body
  // schedules new events (appending a chunk does not relocate existing
  // slots), with no move-out/move-back pair per dispatch.
  static constexpr unsigned kSlotChunkBits = 8;
  static constexpr std::uint32_t kSlotChunkMask =
      (std::uint32_t{1} << kSlotChunkBits) - 1;

  Slot& slot_at(std::uint32_t i) noexcept {
    return slot_chunks_[i >> kSlotChunkBits][i & kSlotChunkMask];
  }
  const Slot& slot_at(std::uint32_t i) const noexcept {
    return slot_chunks_[i >> kSlotChunkBits][i & kSlotChunkMask];
  }

  std::uint32_t acquire_slot(EventFn fn, std::int64_t period_us);
  void cancel_slot(std::uint32_t slot, std::uint32_t gen) noexcept;
  bool slot_active(std::uint32_t slot, std::uint32_t gen) const noexcept {
    return slot < slot_count_ && slot_at(slot).gen == gen;
  }

  void insert_ref(const Ref& ref);
  /// Moves overflow events whose bucket is now < new_end onto the wheel and
  /// advances the wheel window. No-op if the window would not grow.
  void pull_overflow(std::int64_t new_end);
  /// Evacuates wheel refs with bucket >= new_end into the overflow store and
  /// clamps the window to new_end. Called on a cursor rewind that would
  /// otherwise leave the window wider than kNumBuckets, where two live
  /// logical buckets would alias one physical bucket and drain out of order.
  void shrink_window(std::int64_t new_end);
  /// Pops the earliest ref with when <= horizon_us. Returns false if none.
  bool pop_ref(std::int64_t horizon_us, Ref& out);
  /// Drops every cancelled ref still parked in the wheel/overflow.
  void purge_stale();
  /// Runs one popped ref: skips it if stale, otherwise executes (and
  /// reschedules periodics). Returns 1 if an event executed, else 0.
  std::uint64_t execute_ref(const Ref& ref);

  std::uint64_t run_calendar(std::int64_t horizon_us);

  std::vector<std::vector<Ref>> buckets_;
  std::vector<Ref> overflow_;
  std::vector<std::unique_ptr<Slot[]>> slot_chunks_;
  std::uint32_t slot_count_ = 0;  // slots handed out across all chunks
  std::vector<std::uint32_t> free_slots_;
  std::int64_t cur_bucket_ = 0;   // next bucket to drain (absolute index)
  std::int64_t wheel_end_ = 0;    // refs with bucket >= wheel_end_ overflow
  std::size_t wheel_refs_ = 0;    // refs currently parked on the wheel
  std::size_t live_events_ = 0;   // scheduled and not cancelled
  std::size_t stale_refs_ = 0;    // cancelled refs awaiting lazy purge
  std::uint32_t executing_slot_ = kNoSlot;

  // ---- legacy heap backend (SDSI_SIM_HEAP_QUEUE) ----

  // The entry layout is the seed kernel's, byte for byte: a 16-byte-SBO
  // std::function (so the periodic reschedule closure heap-allocates on
  // every firing, as pre-change) next to the per-event shared_ptr<bool>.
  struct HeapEntry {
    SimTime when;
    SeqNo seq;
    std::shared_ptr<bool> alive;  // null => unconditional
    std::function<void()> fn;
  };
  struct HeapLater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  void execute_legacy(HeapEntry& entry);
  std::uint64_t run_legacy(SimTime horizon, bool bounded);

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLater>
      heap_queue_;

  // ---- shared state ----

  bool calendar_ = true;
  SimTime now_;
  SeqNo next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::function<void(SimTime, SeqNo)> probe_;

  // Non-owning liveness token handed to calendar-backend TaskHandles (one
  // allocation per Simulator, not per event). Declared last so it is the
  // first member destroyed: every outstanding handle goes inert before the
  // slot pool and wheel tear down.
  std::shared_ptr<Simulator> live_token_{this, [](Simulator*) {}};
};

inline void TaskHandle::cancel() noexcept {
  if (alive_) {
    *alive_ = false;
    return;
  }
  if (const auto sim = sim_.lock()) {
    sim->cancel_slot(slot_, gen_);
  }
}

inline bool TaskHandle::active() const noexcept {
  if (alive_) {
    return *alive_;
  }
  const auto sim = sim_.lock();
  return sim != nullptr && sim->slot_active(slot_, gen_);
}

}  // namespace sdsi::sim
