// Deterministic single-threaded discrete-event simulator.
//
// This is our stand-in for the MIT Chord simulator's replay loop: it executes
// timed events on all nodes in the system. Events scheduled for the same
// instant run in scheduling order (a monotone sequence number breaks ties),
// which makes whole simulations bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "sim/time.hpp"

namespace sdsi::sim {

using EventFn = std::function<void()>;

/// Cancellation handle for periodic tasks (and one-shot events). Destroying
/// the handle does NOT cancel; call cancel().
class TaskHandle {
 public:
  TaskHandle() = default;

  void cancel() noexcept {
    if (alive_) {
      *alive_ = false;
    }
  }
  bool active() const noexcept { return alive_ && *alive_; }

 private:
  friend class Simulator;
  explicit TaskHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `when` (>= now).
  TaskHandle schedule_at(SimTime when, EventFn fn);

  /// Schedules `fn` after `delay` from now.
  TaskHandle schedule_after(Duration delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs `fn` every `period`, first at `first`, until the handle is
  /// cancelled or the simulation ends.
  TaskHandle schedule_periodic(SimTime first, Duration period, EventFn fn);

  /// Executes events until the queue is empty or `horizon` is passed. Events
  /// stamped exactly at `horizon` still run. Returns the number executed.
  std::uint64_t run_until(SimTime horizon);

  /// Convenience: run_until(now() + span).
  std::uint64_t run_for(Duration span) { return run_until(now_ + span); }

  /// Drains the queue completely (use only with workloads that terminate).
  std::uint64_t run_all();

  /// Executes the single next event. Returns false if the queue is empty.
  bool step();

  std::uint64_t executed_events() const noexcept { return executed_; }
  std::size_t pending_events() const noexcept { return queue_.size(); }

 private:
  struct Entry {
    SimTime when;
    SeqNo seq;
    std::shared_ptr<bool> alive;  // null => unconditional
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  void execute(Entry& entry);

  SimTime now_;
  SeqNo next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace sdsi::sim
