// Free-list object pool for hot simulator payloads (routing messages).
//
// Steady-state simulation churns through millions of short-lived envelopes;
// allocating each one individually dominated the per-event constant factor.
// ObjectPool hands out slots from fixed-size chunks threaded on a free list,
// so after warm-up an acquire/release pair touches no allocator at all.
//
// Lifetime: slots can outlive the ObjectPool handle that created them — a
// pooled message sits captured inside an event closure that the Simulator
// may destroy after the owning routing layer is gone (members are destroyed
// in reverse declaration order, and most call sites declare the Simulator
// first). The pool core is therefore shared-ownership: every live PoolPtr
// keeps the chunk storage alive, and returning a slot to a pool whose
// handle has been destroyed is safe.
#ifndef SDSI_SIM_POOL_HPP
#define SDSI_SIM_POOL_HPP

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace sdsi::sim {

template <typename T>
class PoolPtr;

template <typename T>
class ObjectPool {
 public:
  ObjectPool() : core_(std::make_shared<Core>()) {}

  /// Constructs a pooled T. Allocates a fresh chunk only when the free list
  /// is empty; steady-state calls reuse released slots.
  template <typename... Args>
  PoolPtr<T> make(Args&&... args) {
    void* slot = core_->acquire();
    T* obj = ::new (slot) T(std::forward<Args>(args)...);
    return PoolPtr<T>(obj, core_);
  }

  /// Slots currently handed out (live PoolPtrs).
  std::size_t in_use() const noexcept { return core_->in_use; }
  /// Total slots ever carved out of chunks.
  std::size_t capacity() const noexcept {
    return core_->chunks.size() * kChunkSlots;
  }

 private:
  friend class PoolPtr<T>;

  static constexpr std::size_t kChunkSlots = 256;

  struct Core {
    struct Chunk {
      alignas(T) unsigned char bytes[sizeof(T) * kChunkSlots];
    };

    std::vector<std::unique_ptr<Chunk>> chunks;
    std::vector<void*> free_slots;
    std::size_t in_use = 0;

    void* acquire() {
      if (free_slots.empty()) {
        chunks.push_back(std::make_unique<Chunk>());
        unsigned char* base = chunks.back()->bytes;
        // Reserve for EVERY slot ever carved, not just this chunk: release()
        // is noexcept (PoolPtr::reset calls it), so its push_back must never
        // need to grow the vector even if all slots are freed at once.
        free_slots.reserve(chunks.size() * kChunkSlots);
        for (std::size_t i = kChunkSlots; i > 0; --i) {
          free_slots.push_back(base + (i - 1) * sizeof(T));
        }
      }
      void* slot = free_slots.back();
      free_slots.pop_back();
      ++in_use;
      return slot;
    }

    void release(T* obj) noexcept {
      obj->~T();
      free_slots.push_back(obj);
      --in_use;
    }
  };

  std::shared_ptr<Core> core_;
};

/// Move-only owning handle to a pooled object; releasing returns the slot
/// to the pool's free list (keeping the pool core alive as long as needed).
template <typename T>
class PoolPtr {
 public:
  PoolPtr() noexcept = default;

  PoolPtr(PoolPtr&& other) noexcept
      : obj_(other.obj_), core_(std::move(other.core_)) {
    other.obj_ = nullptr;
  }

  PoolPtr& operator=(PoolPtr&& other) noexcept {
    if (this != &other) {
      reset();
      obj_ = other.obj_;
      core_ = std::move(other.core_);
      other.obj_ = nullptr;
    }
    return *this;
  }

  PoolPtr(const PoolPtr&) = delete;
  PoolPtr& operator=(const PoolPtr&) = delete;

  ~PoolPtr() { reset(); }

  T& operator*() const noexcept { return *obj_; }
  T* operator->() const noexcept { return obj_; }
  T* get() const noexcept { return obj_; }
  explicit operator bool() const noexcept { return obj_ != nullptr; }

  void reset() noexcept {
    if (obj_ != nullptr) {
      core_->release(obj_);
      obj_ = nullptr;
      core_.reset();
    }
  }

 private:
  friend class ObjectPool<T>;

  PoolPtr(T* obj, std::shared_ptr<typename ObjectPool<T>::Core> core) noexcept
      : obj_(obj), core_(std::move(core)) {}

  T* obj_ = nullptr;
  std::shared_ptr<typename ObjectPool<T>::Core> core_;
};

}  // namespace sdsi::sim

#endif  // SDSI_SIM_POOL_HPP
