// Small-buffer-optimized move-only callable for simulator events.
//
// Every scheduled event used to pay one heap allocation for its
// `std::function<void()>` capture block. The simulator's common closure
// shapes — a `this` pointer plus a couple of ids, a pooled message handle
// plus a destination — fit in well under 48 bytes, so EventFn stores
// captures up to kInlineSize bytes (and alignment up to alignof(max_align_t))
// inline and only falls back to the heap for oversized captures.
//
// EventFn is move-only (captures may themselves be move-only, e.g. pooled
// message handles), and a moved-from EventFn compares equal to nullptr.
#ifndef SDSI_SIM_EVENT_FN_HPP
#define SDSI_SIM_EVENT_FN_HPP

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace sdsi::sim {

class EventFn {
 public:
  /// Captures at most this many bytes live inline (no heap allocation).
  static constexpr std::size_t kInlineSize = 48;

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(std::is_move_constructible_v<Fn>,
                  "EventFn requires a move-constructible callable");
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &inline_ops<Fn>;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(fn));
      ops_ = &heap_ops<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  friend bool operator==(const EventFn& fn, std::nullptr_t) noexcept {
    return fn.ops_ == nullptr;
  }
  friend bool operator!=(const EventFn& fn, std::nullptr_t) noexcept {
    return fn.ops_ != nullptr;
  }

 private:
  struct Ops {
    void (*invoke)(unsigned char* storage);
    void (*relocate)(unsigned char* dst, unsigned char* src) noexcept;
    void (*destroy)(unsigned char* storage) noexcept;
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](unsigned char* storage) {
        (*std::launder(reinterpret_cast<Fn*>(storage)))();
      },
      [](unsigned char* dst, unsigned char* src) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (static_cast<void*>(dst)) Fn(std::move(*from));
        from->~Fn();
      },
      [](unsigned char* storage) noexcept {
        std::launder(reinterpret_cast<Fn*>(storage))->~Fn();
      },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](unsigned char* storage) {
        (**std::launder(reinterpret_cast<Fn**>(storage)))();
      },
      [](unsigned char* dst, unsigned char* src) noexcept {
        *reinterpret_cast<Fn**>(dst) =
            *std::launder(reinterpret_cast<Fn**>(src));
      },
      [](unsigned char* storage) noexcept {
        delete *std::launder(reinterpret_cast<Fn**>(storage));
      },
  };

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace sdsi::sim

#endif  // SDSI_SIM_EVENT_FN_HPP
