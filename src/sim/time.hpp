// Simulated time. A strong type over integer microseconds: the paper's
// workload is specified in milliseconds (stream periods, 50 ms per-hop
// latency) and seconds (lifespans), so integer microseconds give exact
// arithmetic with ample headroom (~292k years).
#pragma once

#include <compare>
#include <cstdint>

namespace sdsi::sim {

/// A span of simulated time.
class Duration {
 public:
  constexpr Duration() noexcept = default;

  static constexpr Duration micros(std::int64_t us) noexcept {
    return Duration(us);
  }
  static constexpr Duration millis(std::int64_t ms) noexcept {
    return Duration(ms * 1000);
  }
  static constexpr Duration seconds(double s) noexcept {
    return Duration(static_cast<std::int64_t>(s * 1e6));
  }

  constexpr std::int64_t count_micros() const noexcept { return us_; }
  constexpr double as_millis() const noexcept {
    return static_cast<double>(us_) / 1e3;
  }
  constexpr double as_seconds() const noexcept {
    return static_cast<double>(us_) / 1e6;
  }

  friend constexpr auto operator<=>(Duration, Duration) noexcept = default;
  friend constexpr Duration operator+(Duration a, Duration b) noexcept {
    return Duration(a.us_ + b.us_);
  }
  friend constexpr Duration operator-(Duration a, Duration b) noexcept {
    return Duration(a.us_ - b.us_);
  }
  friend constexpr Duration operator*(Duration a, std::int64_t k) noexcept {
    return Duration(a.us_ * k);
  }
  friend constexpr Duration operator*(std::int64_t k, Duration a) noexcept {
    return a * k;
  }

 private:
  explicit constexpr Duration(std::int64_t us) noexcept : us_(us) {}
  std::int64_t us_ = 0;
};

/// An absolute point on the simulation clock (time 0 = simulation start).
class SimTime {
 public:
  constexpr SimTime() noexcept = default;

  static constexpr SimTime zero() noexcept { return SimTime(); }
  static constexpr SimTime from_micros(std::int64_t us) noexcept {
    SimTime t;
    t.us_ = us;
    return t;
  }

  constexpr std::int64_t count_micros() const noexcept { return us_; }
  constexpr double as_millis() const noexcept {
    return static_cast<double>(us_) / 1e3;
  }
  constexpr double as_seconds() const noexcept {
    return static_cast<double>(us_) / 1e6;
  }

  friend constexpr auto operator<=>(SimTime, SimTime) noexcept = default;
  friend constexpr SimTime operator+(SimTime t, Duration d) noexcept {
    return from_micros(t.us_ + d.count_micros());
  }
  friend constexpr SimTime operator-(SimTime t, Duration d) noexcept {
    return from_micros(t.us_ - d.count_micros());
  }
  friend constexpr Duration operator-(SimTime a, SimTime b) noexcept {
    return Duration::micros(a.us_ - b.us_);
  }

 private:
  std::int64_t us_ = 0;
};

}  // namespace sdsi::sim
