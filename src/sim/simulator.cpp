#include "sim/simulator.hpp"

#include <utility>

namespace sdsi::sim {

TaskHandle Simulator::schedule_at(SimTime when, EventFn fn) {
  SDSI_CHECK(when >= now_);
  SDSI_CHECK(fn != nullptr);
  auto alive = std::make_shared<bool>(true);
  queue_.push(Entry{when, next_seq_++, alive, std::move(fn)});
  return TaskHandle(std::move(alive));
}

TaskHandle Simulator::schedule_periodic(SimTime first, Duration period,
                                        EventFn fn) {
  SDSI_CHECK(period > Duration());
  auto alive = std::make_shared<bool>(true);
  // The wrapper reschedules itself while the shared flag stays true.
  auto tick = std::make_shared<std::function<void(SimTime)>>();
  *tick = [this, period, alive, fn = std::move(fn),
           tick_weak = std::weak_ptr<std::function<void(SimTime)>>(tick)](
              SimTime scheduled) {
    if (!*alive) {
      return;
    }
    fn();
    if (!*alive) {  // fn may cancel its own task
      return;
    }
    if (auto self = tick_weak.lock()) {
      const SimTime next = scheduled + period;
      queue_.push(Entry{next, next_seq_++, alive,
                        [self, next] { (*self)(next); }});
    }
  };
  queue_.push(Entry{first, next_seq_++, alive,
                    [tick, first] { (*tick)(first); }});
  return TaskHandle(std::move(alive));
}

void Simulator::execute(Entry& entry) {
  now_ = entry.when;
  if (entry.alive && !*entry.alive) {
    return;  // cancelled; consumed without counting as executed
  }
  ++executed_;
  entry.fn();
}

// Moving out of priority_queue::top() before pop() is safe here: the
// comparator orders only by (when, seq), which the move leaves intact, and
// the entry is popped before any other queue operation can observe it.

std::uint64_t Simulator::run_until(SimTime horizon) {
  std::uint64_t ran = 0;
  while (!queue_.empty() && queue_.top().when <= horizon) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    const std::uint64_t before = executed_;
    execute(entry);
    ran += executed_ - before;
  }
  if (now_ < horizon) {
    now_ = horizon;
  }
  return ran;
}

std::uint64_t Simulator::run_all() {
  std::uint64_t ran = 0;
  while (!queue_.empty()) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    const std::uint64_t before = executed_;
    execute(entry);
    ran += executed_ - before;
  }
  return ran;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    const std::uint64_t before = executed_;
    execute(entry);
    if (executed_ != before) {
      return true;
    }
  }
  return false;
}

}  // namespace sdsi::sim
