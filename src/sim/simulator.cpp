#include "sim/simulator.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <utility>

namespace sdsi::sim {
namespace {

bool heap_queue_requested() {
  const char* env = std::getenv("SDSI_SIM_HEAP_QUEUE");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

constexpr std::int64_t kNoHorizon = std::numeric_limits<std::int64_t>::max();

}  // namespace

Simulator::Simulator(QueueBackend backend) {
  switch (backend) {
    case QueueBackend::kAuto:
      calendar_ = !heap_queue_requested();
      break;
    case QueueBackend::kCalendar:
      calendar_ = true;
      break;
    case QueueBackend::kLegacyHeap:
      calendar_ = false;
      break;
  }
  if (calendar_) {
    buckets_.resize(kNumBuckets);
    wheel_end_ = static_cast<std::int64_t>(kNumBuckets);
  }
}

// ---------------------------------------------------------------------------
// Scheduling (both backends assign sequence numbers identically, so the
// (when, seq) execution order is the same bit-for-bit).

TaskHandle Simulator::schedule_at(SimTime when, EventFn fn) {
  SDSI_CHECK(when >= now_);
  SDSI_CHECK(fn != nullptr);
  if (!calendar_) {
    auto alive = std::make_shared<bool>(true);
    // EventFn is move-only, std::function requires copyable: park the body
    // behind a shared_ptr. The wrapper's 16-byte capture fits the
    // std::function SBO, so the per-event allocation count matches the
    // pre-change kernel (one heap closure per scheduled event).
    heap_queue_.push(HeapEntry{
        when, next_seq_++, alive,
        [body = std::make_shared<EventFn>(std::move(fn))] { (*body)(); }});
    return TaskHandle(std::move(alive));
  }
  const std::uint32_t slot = acquire_slot(std::move(fn), 0);
  const std::uint32_t gen = slot_at(slot).gen;
  insert_ref(Ref{when.count_micros(), next_seq_++, slot, gen});
  ++live_events_;
  return TaskHandle(live_token_, slot, gen);
}

TaskHandle Simulator::schedule_periodic(SimTime first, Duration period,
                                        EventFn fn) {
  SDSI_CHECK(period > Duration());
  if (!calendar_) {
    auto alive = std::make_shared<bool>(true);
    // The wrapper reschedules itself while the shared flag stays true.
    auto body = std::make_shared<EventFn>(std::move(fn));
    auto tick = std::make_shared<std::function<void(SimTime)>>();
    *tick = [this, period, alive, body,
             tick_weak = std::weak_ptr<std::function<void(SimTime)>>(tick)](
                SimTime scheduled) {
      if (!*alive) {
        return;
      }
      (*body)();
      if (!*alive) {  // fn may cancel its own task
        return;
      }
      if (auto self = tick_weak.lock()) {
        const SimTime next = scheduled + period;
        heap_queue_.push(HeapEntry{next, next_seq_++, alive,
                                   [self, next] { (*self)(next); }});
      }
    };
    heap_queue_.push(HeapEntry{first, next_seq_++, alive,
                               [tick, first] { (*tick)(first); }});
    return TaskHandle(std::move(alive));
  }
  const std::uint32_t slot = acquire_slot(std::move(fn), period.count_micros());
  const std::uint32_t gen = slot_at(slot).gen;
  insert_ref(Ref{first.count_micros(), next_seq_++, slot, gen});
  ++live_events_;
  return TaskHandle(live_token_, slot, gen);
}

// ---------------------------------------------------------------------------
// Calendar backend.

std::uint32_t Simulator::acquire_slot(EventFn fn, std::int64_t period_us) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = slot_count_++;
    if ((slot >> kSlotChunkBits) == slot_chunks_.size()) {
      slot_chunks_.push_back(
          std::make_unique<Slot[]>(std::size_t{1} << kSlotChunkBits));
      // cancel_slot (noexcept) and execute_ref return slots via push_back;
      // reserving the free list to full slot capacity whenever a chunk is
      // carved keeps those release paths allocation-free (and bad_alloc
      // cannot escape a noexcept frame into std::terminate).
      free_slots_.reserve(slot_chunks_.size() << kSlotChunkBits);
    }
  }
  Slot& s = slot_at(slot);
  s.fn = std::move(fn);
  s.period_us = period_us;
  // s.gen persists across reuse: it bumps on cancel/release, so refs and
  // handles from a slot's previous life never match.
  return slot;
}

void Simulator::cancel_slot(std::uint32_t slot, std::uint32_t gen) noexcept {
  if (slot >= slot_count_ || slot_at(slot).gen != gen) {
    return;  // already ran, cancelled, or recycled
  }
  Slot& s = slot_at(slot);
  ++s.gen;
  if (slot == executing_slot_) {
    // Self-cancel from inside the event body: the run loop owns the slot
    // right now and will release it when the body returns.
    return;
  }
  // The wheel/overflow still holds a ref to this slot; it is now stale and
  // gets dropped lazily (or by purge_stale below). The slot itself can be
  // recycled immediately — the generation bump keeps old refs inert.
  s.fn = nullptr;
  free_slots_.push_back(slot);
  --live_events_;
  ++stale_refs_;
  if (stale_refs_ > 64 && stale_refs_ > live_events_) {
    purge_stale();
  }
}

void Simulator::insert_ref(const Ref& ref) {
  const std::int64_t b = ref.when_us >> kBucketBits;
  if (wheel_refs_ == 0 && overflow_.empty()) {
    // Nothing pending anywhere: re-anchor the window at the new event. This
    // also heals a cursor parked far out by a drained stale ref (stale pops
    // advance cur_bucket_ without advancing now_), which would otherwise
    // force the rewind path below on the next schedule-at-now.
    cur_bucket_ = b;
    wheel_end_ = b + static_cast<std::int64_t>(kNumBuckets);
  } else if (b >= wheel_end_) {
    overflow_.push_back(ref);
    return;
  } else if (b < cur_bucket_) {
    // An event landed behind the drain cursor (scheduled for "now" while the
    // cursor had advanced through empty buckets). Rewind — and restore the
    // window invariant wheel_end_ - cur_bucket_ <= kNumBuckets, otherwise
    // two live logical buckets (b and b + kNumBuckets) alias one physical
    // bucket and the per-bucket drain runs them out of order.
    cur_bucket_ = b;
    const std::int64_t max_end = b + static_cast<std::int64_t>(kNumBuckets);
    if (wheel_end_ > max_end) {
      shrink_window(max_end);
    }
  }
  auto& bucket = buckets_[static_cast<std::size_t>(b) & (kNumBuckets - 1)];
  bucket.push_back(ref);
  std::push_heap(bucket.begin(), bucket.end(), &ref_after);
  ++wheel_refs_;
}

void Simulator::shrink_window(std::int64_t new_end) {
  // Rare rewind path (never hit by steady-state schedule-at-now traffic):
  // O(wheel) sweep moving every ref whose logical bucket no longer fits the
  // clamped window back to the overflow store; pull_overflow re-admits them
  // as the cursor advances.
  for (auto& bucket : buckets_) {
    const std::size_t size = bucket.size();
    std::size_t keep = 0;
    for (std::size_t i = 0; i < size; ++i) {
      if ((bucket[i].when_us >> kBucketBits) >= new_end) {
        overflow_.push_back(bucket[i]);
      } else {
        bucket[keep++] = bucket[i];
      }
    }
    if (keep != size) {
      wheel_refs_ -= size - keep;
      bucket.resize(keep);
      std::make_heap(bucket.begin(), bucket.end(), &ref_after);
    }
  }
  wheel_end_ = new_end;
}

void Simulator::pull_overflow(std::int64_t new_end) {
  if (new_end <= wheel_end_) {
    return;
  }
  wheel_end_ = new_end;
  std::size_t keep = 0;
  for (Ref& ref : overflow_) {
    if ((ref.when_us >> kBucketBits) < new_end) {
      insert_ref(ref);
    } else {
      overflow_[keep++] = ref;
    }
  }
  overflow_.resize(keep);
}

bool Simulator::pop_ref(std::int64_t horizon_us, Ref& out) {
  for (;;) {
    if (wheel_refs_ == 0) {
      if (overflow_.empty()) {
        return false;
      }
      // Wheel drained: jump the window straight to the earliest far-future
      // event instead of scanning empty buckets toward it.
      std::int64_t min_bucket = std::numeric_limits<std::int64_t>::max();
      for (const Ref& ref : overflow_) {
        min_bucket = std::min(min_bucket, ref.when_us >> kBucketBits);
      }
      if ((min_bucket << kBucketBits) > horizon_us) {
        return false;
      }
      cur_bucket_ = min_bucket;
      wheel_end_ = min_bucket;  // window restarts at the jump target
      pull_overflow(min_bucket + static_cast<std::int64_t>(kNumBuckets));
      continue;
    }
    // Keep at least half the wheel ahead of the cursor so newly pulled
    // overflow events never alias onto a not-yet-drained physical bucket.
    if (wheel_end_ - cur_bucket_ <
        static_cast<std::int64_t>(kNumBuckets / 2)) {
      pull_overflow(cur_bucket_ + static_cast<std::int64_t>(kNumBuckets));
    }
    auto& bucket =
        buckets_[static_cast<std::size_t>(cur_bucket_) & (kNumBuckets - 1)];
    if (!bucket.empty()) {
      if (bucket.front().when_us > horizon_us) {
        // Everything in this bucket — and every later bucket — is past the
        // horizon.
        return false;
      }
      std::pop_heap(bucket.begin(), bucket.end(), &ref_after);
      out = bucket.back();
      bucket.pop_back();
      --wheel_refs_;
      if (!bucket.empty()) {
        // The likely next event is this bucket's new front; issue its slot
        // fetch now so it overlaps with executing the popped event.
        __builtin_prefetch(&slot_at(bucket.front().slot));
      }
      return true;
    }
    // Empty bucket: advance, unless the next bucket already starts past the
    // horizon (then nothing <= horizon can exist on the wheel).
    if (((cur_bucket_ + 1) << kBucketBits) > horizon_us) {
      return false;
    }
    ++cur_bucket_;
  }
}

void Simulator::purge_stale() {
  const auto is_stale = [this](const Ref& ref) {
    return slot_at(ref.slot).gen != ref.gen;
  };
  for (auto& bucket : buckets_) {
    if (bucket.empty()) {
      continue;
    }
    auto keep_end = std::remove_if(bucket.begin(), bucket.end(), is_stale);
    if (keep_end != bucket.end()) {
      wheel_refs_ -= static_cast<std::size_t>(bucket.end() - keep_end);
      bucket.erase(keep_end, bucket.end());
      std::make_heap(bucket.begin(), bucket.end(), &ref_after);
    }
  }
  auto keep_end = std::remove_if(overflow_.begin(), overflow_.end(), is_stale);
  overflow_.erase(keep_end, overflow_.end());
  stale_refs_ = 0;
}

std::uint64_t Simulator::execute_ref(const Ref& ref) {
  Slot& slot = slot_at(ref.slot);  // chunked storage: address is stable
  if (slot.gen != ref.gen) {
    --stale_refs_;  // cancelled after scheduling; drop silently
    return 0;
  }
  now_ = SimTime::from_micros(ref.when_us);
  --live_events_;
  ++executed_;
  if (probe_) {
    probe_(now_, ref.seq);
  }
  const std::int64_t period_us = slot.period_us;
  // The body runs in place: scheduling from inside it appends a chunk at
  // most, which never relocates existing slots. A self-cancel only bumps
  // slot.gen (cancel_slot defers the release to us via executing_slot_),
  // so the closure we are inside is never destroyed mid-call.
  executing_slot_ = ref.slot;
  slot.fn();
  executing_slot_ = kNoSlot;
  if (period_us > 0 && slot.gen == ref.gen) {
    // Periodic and still live: reschedule in place — same slot, generation
    // and closure, fresh sequence number, no drift (next fire is computed
    // from the scheduled time, not now_).
    insert_ref(Ref{ref.when_us + period_us, next_seq_++, ref.slot, ref.gen});
    ++live_events_;
  } else {
    // One-shot completion, or a periodic that cancelled itself mid-body.
    if (slot.gen == ref.gen) {
      ++slot.gen;  // invalidate outstanding handles
    }
    slot.fn = nullptr;
    free_slots_.push_back(ref.slot);
  }
  return 1;
}

std::uint64_t Simulator::run_calendar(std::int64_t horizon_us) {
  std::uint64_t ran = 0;
  for (;;) {
    if (wheel_refs_ == 0) {
      if (overflow_.empty()) {
        return ran;
      }
      // Wheel drained: jump the window straight to the earliest far-future
      // event instead of scanning empty buckets toward it.
      std::int64_t min_bucket = std::numeric_limits<std::int64_t>::max();
      for (const Ref& ref : overflow_) {
        min_bucket = std::min(min_bucket, ref.when_us >> kBucketBits);
      }
      if ((min_bucket << kBucketBits) > horizon_us) {
        return ran;
      }
      cur_bucket_ = min_bucket;
      wheel_end_ = min_bucket;  // window restarts at the jump target
      pull_overflow(min_bucket + static_cast<std::int64_t>(kNumBuckets));
      continue;
    }
    // Keep at least half the wheel ahead of the cursor so newly pulled
    // overflow events never alias onto a not-yet-drained physical bucket.
    // Checking once per bucket (not per event) is enough: insertions made
    // while this bucket drains fall back to the overflow store if they land
    // past wheel_end_, and get pulled at the next bucket boundary.
    if (wheel_end_ - cur_bucket_ <
        static_cast<std::int64_t>(kNumBuckets / 2)) {
      pull_overflow(cur_bucket_ + static_cast<std::int64_t>(kNumBuckets));
    }
    const std::int64_t cur = cur_bucket_;
    auto& bucket =
        buckets_[static_cast<std::size_t>(cur) & (kNumBuckets - 1)];
    // Tight per-bucket drain: the vector<Ref> object itself never moves
    // (buckets_ is fixed-size), and an event body that schedules new work
    // either pushes into this same bucket (push_heap keeps the order), a
    // later bucket/overflow, or rewinds cur_bucket_ — checked after each
    // event. Hoisting the wheel/window checks out of the per-event path is
    // worth a measurable slice of the dispatch budget at 10k+ nodes.
    while (!bucket.empty() && bucket.front().when_us <= horizon_us) {
      std::pop_heap(bucket.begin(), bucket.end(), &ref_after);
      const Ref ref = bucket.back();
      bucket.pop_back();
      --wheel_refs_;
      if (!bucket.empty()) {
        // The likely next event is this bucket's new front; issue its slot
        // fetch now so it overlaps with executing the popped event.
        __builtin_prefetch(&slot_at(bucket.front().slot));
      }
      ran += execute_ref(ref);
      if (cur_bucket_ != cur) {
        break;  // an insert landed behind the cursor and rewound it
      }
    }
    if (cur_bucket_ != cur) {
      continue;
    }
    if (!bucket.empty()) {
      // front > horizon, and every later bucket starts even further out.
      return ran;
    }
    // Bucket drained: advance, unless the next bucket already starts past
    // the horizon (then nothing <= horizon can exist on the wheel).
    if (((cur + 1) << kBucketBits) > horizon_us) {
      return ran;
    }
    ++cur_bucket_;
  }
}

// ---------------------------------------------------------------------------
// Legacy heap backend.

void Simulator::execute_legacy(HeapEntry& entry) {
  now_ = entry.when;
  if (entry.alive && !*entry.alive) {
    return;  // cancelled; consumed without counting as executed
  }
  ++executed_;
  if (probe_) {
    probe_(now_, entry.seq);
  }
  entry.fn();
}

// Moving out of priority_queue::top() before pop() is safe here: the
// comparator orders only by (when, seq), which the move leaves intact, and
// the entry is popped before any other queue operation can observe it.

std::uint64_t Simulator::run_legacy(SimTime horizon, bool bounded) {
  std::uint64_t ran = 0;
  while (!heap_queue_.empty() &&
         (!bounded || heap_queue_.top().when <= horizon)) {
    HeapEntry entry = std::move(const_cast<HeapEntry&>(heap_queue_.top()));
    heap_queue_.pop();
    const std::uint64_t before = executed_;
    execute_legacy(entry);
    ran += executed_ - before;
  }
  return ran;
}

// ---------------------------------------------------------------------------
// Run loops (backend dispatch).

std::uint64_t Simulator::run_until(SimTime horizon) {
  const std::uint64_t ran =
      calendar_ ? run_calendar(horizon.count_micros())
                : run_legacy(horizon, /*bounded=*/true);
  if (now_ < horizon) {
    now_ = horizon;
  }
  return ran;
}

std::uint64_t Simulator::run_all() {
  return calendar_ ? run_calendar(kNoHorizon)
                   : run_legacy(SimTime(), /*bounded=*/false);
}

bool Simulator::step() {
  if (!calendar_) {
    while (!heap_queue_.empty()) {
      HeapEntry entry = std::move(const_cast<HeapEntry&>(heap_queue_.top()));
      heap_queue_.pop();
      const std::uint64_t before = executed_;
      execute_legacy(entry);
      if (executed_ != before) {
        return true;
      }
    }
    return false;
  }
  Ref ref;
  while (pop_ref(kNoHorizon, ref)) {
    if (execute_ref(ref) != 0) {
      return true;
    }
  }
  return false;
}

}  // namespace sdsi::sim
