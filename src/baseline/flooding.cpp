#include "baseline/flooding.hpp"

namespace sdsi::baseline {

namespace {

template <typename T>
std::shared_ptr<const T> payload_of(const routing::Message& msg) {
  const auto* ptr = std::any_cast<std::shared_ptr<const T>>(&msg.payload);
  SDSI_CHECK(ptr != nullptr);
  return *ptr;
}

}  // namespace

FloodingSystem::FloodingSystem(routing::RoutingSystem& routing,
                               core::MiddlewareConfig config)
    : routing_(routing),
      config_(config),
      strategy_(core::IndexingStrategy::make(config.strategy, config.features,
                                             routing.id_space())),
      metrics_(routing.num_nodes()),
      nodes_(routing.num_nodes()) {
  metrics_.set_clock(&routing_.simulator());
  routing_.set_metrics_hook(&metrics_);
  routing_.set_deliver([this](NodeIndex at, const routing::Message& msg) {
    on_deliver(at, msg);
  });
}

void FloodingSystem::start() {
  SDSI_CHECK(!started_);
  started_ = true;
  sim::Simulator& sim = routing_.simulator();
  const std::int64_t period_us = config_.notify_period.count_micros();
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    const auto offset = sim::Duration::micros(
        period_us * static_cast<std::int64_t>(i) /
        static_cast<std::int64_t>(nodes_.size()));
    sim.schedule_periodic(sim.now() + offset + config_.notify_period,
                          config_.notify_period,
                          [this, i] { periodic_tick(i); });
  }
}

void FloodingSystem::register_stream(NodeIndex node, StreamId stream) {
  SDSI_CHECK(node < nodes_.size());
  const auto [it, inserted] = nodes_[node].streams.try_emplace(
      stream, stream, *strategy_, config_.batching);
  SDSI_CHECK(inserted);
}

void FloodingSystem::post_stream_value(NodeIndex node, StreamId stream,
                                       Sample value) {
  SDSI_CHECK(node < nodes_.size());
  const auto it = nodes_[node].streams.find(stream);
  SDSI_CHECK(it != nodes_[node].streams.end());
  core::LocalStream& local = it->second;
  local.summarizer->push(value);
  const std::optional<dsp::FeatureVector> features =
      local.summarizer->features();
  if (!features.has_value()) {
    return;
  }
  std::optional<dsp::Mbr> closed = local.batcher.push(*features);
  if (!closed.has_value()) {
    return;
  }
  // Summaries never leave the source: store locally, zero messages.
  const sim::SimTime now = routing_.simulator().now();
  nodes_[node].store.add_mbr(core::IndexStore::StoredMbr{
      stream, node, std::move(*closed), local.batch_seq++, now,
      now + config_.mbr_lifespan});
}

core::QueryId FloodingSystem::subscribe_similarity(NodeIndex client,
                                                   dsp::FeatureVector features,
                                                   double radius,
                                                   sim::Duration lifespan) {
  const sim::SimTime now = routing_.simulator().now();
  const core::QueryId id = next_query_id_++;
  auto query = std::make_shared<const core::SimilarityQuery>(
      core::SimilarityQuery{id, client, std::move(features), radius, lifespan,
                            now});

  core::ClientQueryRecord record;
  record.id = id;
  record.client = client;
  record.issued_at = now;
  record.expires = now + lifespan;
  client_records_.emplace(id, std::move(record));

  // Flood: cover the whole identifier circle, starting at the client's own
  // successor arc and walking the entire ring.
  const Key self = routing_.node_id(client);
  routing::Message msg;
  msg.kind = core::MsgKind::kSimilarityQuery;
  msg.payload = std::make_shared<const core::SimilarityQueryPayload>(
      core::SimilarityQueryPayload{std::move(query), self});
  routing_.send_range(client, routing_.id_space().wrap(self + 1), self,
                      std::move(msg), routing::MulticastStrategy::kSequential);
  return id;
}

void FloodingSystem::on_deliver(NodeIndex at, const routing::Message& msg) {
  const sim::SimTime now = routing_.simulator().now();
  switch (msg.kind) {
    case core::MsgKind::kSimilarityQuery: {
      const auto payload = payload_of<core::SimilarityQueryPayload>(msg);
      const core::SimilarityQuery& query = *payload->query;
      nodes_[at].store.add_subscription(payload->query, payload->middle_key,
                                        query.issued_at + query.lifespan);
      return;
    }
    case core::MsgKind::kResponse: {
      const auto payload = payload_of<core::ResponsePayload>(msg);
      const auto it = client_records_.find(payload->query);
      if (it == client_records_.end()) {
        return;
      }
      ++it->second.responses_received;
      if (!it->second.first_response_at.has_value()) {
        it->second.first_response_at = now;
      }
      for (const core::SimilarityMatch& match : payload->matches) {
        it->second.matched_streams.insert(match.stream);
      }
      return;
    }
    default:
      SDSI_CHECK(false);
  }
}

void FloodingSystem::periodic_tick(NodeIndex index) {
  NodeState& state = nodes_[index];
  const sim::SimTime now = routing_.simulator().now();
  state.store.expire(now);

  // Every node answers the flooded queries from its own summaries, replying
  // straight to the client (no aggregation tier exists in this baseline).
  for (core::SimilarityMatch& match : state.store.match(now)) {
    const core::IndexStore::Subscription* sub =
        state.store.find_subscription(match.query);
    SDSI_CHECK(sub != nullptr);
    core::AggregatorRecord& record = state.reply_state[match.query];
    record.client = sub->query->client;
    record.expires = sub->expires;
    if (record.seen.insert(match.stream).second) {
      record.pending.push_back(std::move(match));
    }
  }
  for (auto it = state.reply_state.begin(); it != state.reply_state.end();) {
    core::AggregatorRecord& record = it->second;
    if (record.expires <= now) {
      it = state.reply_state.erase(it);
      continue;
    }
    if (!record.pending.empty()) {
      routing::Message msg;
      msg.kind = core::MsgKind::kResponse;
      msg.payload = std::make_shared<const core::ResponsePayload>(
          core::ResponsePayload{it->first, record.client, false,
                                std::move(record.pending), 0.0});
      record.pending.clear();
      ++record.pushes;
      routing_.send(index, routing_.node_id(record.client), std::move(msg));
    }
    ++it;
  }
}

const core::ClientQueryRecord* FloodingSystem::client_record(
    core::QueryId id) const {
  const auto it = client_records_.find(id);
  return it == client_records_.end() ? nullptr : &it->second;
}

}  // namespace sdsi::baseline
