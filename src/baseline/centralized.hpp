// Baseline 1 (paper Sec IV-A): a single dedicated data center collects every
// stream summary and answers every query.
//
// This is the strawman the paper argues against: the center and the links
// around it carry the whole system's traffic, so per-node load at the center
// grows linearly with the number of streams, and the center is a single
// point of failure. The bench bench_baseline_compare quantifies that against
// the distributed index.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/index_store.hpp"
#include "core/mapper.hpp"
#include "core/metrics.hpp"
#include "core/node.hpp"
#include "core/system.hpp"
#include "routing/api.hpp"

namespace sdsi::baseline {

/// Centralized stream index with the same application primitives as
/// core::MiddlewareSystem, so experiment drivers can swap one for the other.
class CentralizedSystem {
 public:
  CentralizedSystem(routing::RoutingSystem& routing,
                    core::MiddlewareConfig config,
                    NodeIndex center = 0);

  core::MetricsCollector& metrics() noexcept { return metrics_; }
  NodeIndex center() const noexcept { return center_; }

  void start();

  void register_stream(NodeIndex node, StreamId stream);
  void post_stream_value(NodeIndex node, StreamId stream, Sample value);
  core::QueryId subscribe_similarity(NodeIndex client,
                                     dsp::FeatureVector features,
                                     double radius, sim::Duration lifespan);

  const core::ClientQueryRecord* client_record(core::QueryId id) const;
  const std::unordered_map<core::QueryId, core::ClientQueryRecord>&
  client_records() const noexcept {
    return client_records_;
  }

  /// Load rate of every node (messages touched per second), for comparing
  /// the center's hotspot against the distributed index's flat profile.
  std::vector<double> per_node_load(double measured_seconds) const;

 private:
  void on_deliver(NodeIndex at, const routing::Message& msg);
  void periodic_tick();

  routing::RoutingSystem& routing_;
  core::MiddlewareConfig config_;
  /// Summarization strategy shared with the distributed middleware, so
  /// baseline-vs-middleware comparisons summarize identically.
  std::unique_ptr<core::IndexingStrategy> strategy_;
  core::MetricsCollector metrics_;
  NodeIndex center_;
  /// Source-side summarizers/batchers, one per stream.
  std::unordered_map<StreamId, std::unique_ptr<core::LocalStream>> streams_;
  std::unordered_map<StreamId, NodeIndex> stream_homes_;
  /// Everything lands in the center's store.
  core::IndexStore store_;
  std::unordered_map<core::QueryId, core::AggregatorRecord> aggregations_;
  std::unordered_map<core::QueryId, core::ClientQueryRecord> client_records_;
  core::QueryId next_query_id_ = 1;
  bool started_ = false;
};

}  // namespace sdsi::baseline
