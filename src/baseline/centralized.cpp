#include "baseline/centralized.hpp"

namespace sdsi::baseline {

namespace {

template <typename T>
std::shared_ptr<const T> payload_of(const routing::Message& msg) {
  const auto* ptr = std::any_cast<std::shared_ptr<const T>>(&msg.payload);
  SDSI_CHECK(ptr != nullptr);
  return *ptr;
}

}  // namespace

CentralizedSystem::CentralizedSystem(routing::RoutingSystem& routing,
                                     core::MiddlewareConfig config,
                                     NodeIndex center)
    : routing_(routing),
      config_(config),
      strategy_(core::IndexingStrategy::make(config.strategy, config.features,
                                             routing.id_space())),
      metrics_(routing.num_nodes()),
      center_(center) {
  SDSI_CHECK(center < routing.num_nodes());
  metrics_.set_clock(&routing_.simulator());
  routing_.set_metrics_hook(&metrics_);
  routing_.set_deliver([this](NodeIndex at, const routing::Message& msg) {
    on_deliver(at, msg);
  });
}

void CentralizedSystem::start() {
  SDSI_CHECK(!started_);
  started_ = true;
  sim::Simulator& sim = routing_.simulator();
  sim.schedule_periodic(sim.now() + config_.notify_period,
                        config_.notify_period, [this] { periodic_tick(); });
}

void CentralizedSystem::register_stream(NodeIndex node, StreamId stream) {
  const auto [it, inserted] = streams_.try_emplace(
      stream, std::make_unique<core::LocalStream>(stream, *strategy_,
                                                  config_.batching));
  SDSI_CHECK(inserted);
  stream_homes_[stream] = node;
}

void CentralizedSystem::post_stream_value(NodeIndex node, StreamId stream,
                                          Sample value) {
  const auto it = streams_.find(stream);
  SDSI_CHECK(it != streams_.end());
  SDSI_CHECK(stream_homes_[stream] == node);
  core::LocalStream& local = *it->second;
  local.summarizer->push(value);
  const std::optional<dsp::FeatureVector> features =
      local.summarizer->features();
  if (!features.has_value()) {
    return;
  }
  std::optional<dsp::Mbr> closed = local.batcher.push(*features);
  if (!closed.has_value()) {
    return;
  }
  // Everything goes to the center, point-routed at its ring id.
  routing::Message msg;
  msg.kind = core::MsgKind::kMbrUpdate;
  const sim::SimTime now = routing_.simulator().now();
  msg.payload = std::make_shared<const core::MbrPayload>(
      core::MbrPayload{stream, node, std::move(*closed), local.batch_seq++,
                       now + config_.mbr_lifespan});
  routing_.send(node, routing_.node_id(center_), std::move(msg));
}

core::QueryId CentralizedSystem::subscribe_similarity(
    NodeIndex client, dsp::FeatureVector features, double radius,
    sim::Duration lifespan) {
  const sim::SimTime now = routing_.simulator().now();
  const core::QueryId id = next_query_id_++;
  auto query = std::make_shared<const core::SimilarityQuery>(
      core::SimilarityQuery{id, client, std::move(features), radius, lifespan,
                            now});

  core::ClientQueryRecord record;
  record.id = id;
  record.client = client;
  record.issued_at = now;
  record.expires = now + lifespan;
  client_records_.emplace(id, std::move(record));

  routing::Message msg;
  msg.kind = core::MsgKind::kSimilarityQuery;
  msg.payload = std::make_shared<const core::SimilarityQueryPayload>(
      core::SimilarityQueryPayload{std::move(query),
                                   routing_.node_id(center_)});
  routing_.send(client, routing_.node_id(center_), std::move(msg));
  return id;
}

void CentralizedSystem::on_deliver(NodeIndex at, const routing::Message& msg) {
  const sim::SimTime now = routing_.simulator().now();
  switch (msg.kind) {
    case core::MsgKind::kMbrUpdate: {
      SDSI_CHECK(at == center_);
      const auto payload = payload_of<core::MbrPayload>(msg);
      store_.add_mbr(core::IndexStore::StoredMbr{
          payload->stream, payload->source, payload->mbr, payload->batch_seq,
          now, payload->expires});
      return;
    }
    case core::MsgKind::kSimilarityQuery: {
      SDSI_CHECK(at == center_);
      const auto payload = payload_of<core::SimilarityQueryPayload>(msg);
      const core::SimilarityQuery& query = *payload->query;
      store_.add_subscription(payload->query, routing_.node_id(center_),
                              query.issued_at + query.lifespan);
      return;
    }
    case core::MsgKind::kResponse: {
      const auto payload = payload_of<core::ResponsePayload>(msg);
      const auto it = client_records_.find(payload->query);
      if (it == client_records_.end()) {
        return;
      }
      ++it->second.responses_received;
      if (!it->second.first_response_at.has_value()) {
        it->second.first_response_at = now;
      }
      for (const core::SimilarityMatch& match : payload->matches) {
        it->second.matched_streams.insert(match.stream);
      }
      return;
    }
    default:
      SDSI_CHECK(false);
  }
}

void CentralizedSystem::periodic_tick() {
  const sim::SimTime now = routing_.simulator().now();
  store_.expire(now);
  for (core::SimilarityMatch& match : store_.match(now)) {
    const core::IndexStore::Subscription* sub =
        store_.find_subscription(match.query);
    SDSI_CHECK(sub != nullptr);
    core::AggregatorRecord& record = aggregations_[match.query];
    record.client = sub->query->client;
    record.expires = sub->expires;
    if (record.seen.insert(match.stream).second) {
      record.pending.push_back(std::move(match));
    }
  }
  for (auto it = aggregations_.begin(); it != aggregations_.end();) {
    core::AggregatorRecord& record = it->second;
    if (record.expires <= now) {
      it = aggregations_.erase(it);
      continue;
    }
    routing::Message msg;
    msg.kind = core::MsgKind::kResponse;
    msg.payload = std::make_shared<const core::ResponsePayload>(
        core::ResponsePayload{it->first, record.client, false,
                              std::move(record.pending), 0.0});
    record.pending.clear();
    ++record.pushes;
    routing_.send(center_, routing_.node_id(record.client), std::move(msg));
    ++it;
  }
}

const core::ClientQueryRecord* CentralizedSystem::client_record(
    core::QueryId id) const {
  const auto it = client_records_.find(id);
  return it == client_records_.end() ? nullptr : &it->second;
}

std::vector<double> CentralizedSystem::per_node_load(
    double measured_seconds) const {
  std::vector<double> load(routing_.num_nodes());
  for (NodeIndex node = 0; node < load.size(); ++node) {
    load[node] = static_cast<double>(metrics_.node_load_total(node)) /
                 measured_seconds;
  }
  return load;
}

}  // namespace sdsi::baseline
