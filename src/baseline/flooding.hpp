// Baseline 2 (paper Sec IV-A): store every summary only at its source and
// flood each similarity query to every data center.
//
// Point/range queries on a known stream are cheap here, but every similarity
// query costs O(N) messages ("answering such queries requires communication
// with every data center in the system"). The flood is realized as a range
// multicast over the full ring, which is exactly how a DHT without an index
// would broadcast.
#pragma once

#include <memory>
#include <unordered_map>

#include "core/index_store.hpp"
#include "core/metrics.hpp"
#include "core/node.hpp"
#include "core/system.hpp"
#include "routing/api.hpp"

namespace sdsi::baseline {

class FloodingSystem {
 public:
  FloodingSystem(routing::RoutingSystem& routing,
                 core::MiddlewareConfig config);

  core::MetricsCollector& metrics() noexcept { return metrics_; }

  void start();

  void register_stream(NodeIndex node, StreamId stream);
  void post_stream_value(NodeIndex node, StreamId stream, Sample value);
  core::QueryId subscribe_similarity(NodeIndex client,
                                     dsp::FeatureVector features,
                                     double radius, sim::Duration lifespan);

  const core::ClientQueryRecord* client_record(core::QueryId id) const;
  const std::unordered_map<core::QueryId, core::ClientQueryRecord>&
  client_records() const noexcept {
    return client_records_;
  }

 private:
  struct NodeState {
    std::map<StreamId, core::LocalStream> streams;
    core::IndexStore store;  // local summaries + flooded subscriptions
    std::unordered_map<core::QueryId, core::AggregatorRecord> reply_state;
  };

  void on_deliver(NodeIndex at, const routing::Message& msg);
  void periodic_tick(NodeIndex node);

  routing::RoutingSystem& routing_;
  core::MiddlewareConfig config_;
  /// Summarization strategy shared with the distributed middleware, so
  /// baseline-vs-middleware comparisons summarize identically.
  std::unique_ptr<core::IndexingStrategy> strategy_;
  core::MetricsCollector metrics_;
  std::vector<NodeState> nodes_;
  std::unordered_map<core::QueryId, core::ClientQueryRecord> client_records_;
  core::QueryId next_query_id_ = 1;
  bool started_ = false;
};

}  // namespace sdsi::baseline
