#include "common/rng.hpp"

#include <cmath>

#include "common/sha1.hpp"

namespace sdsi::common {

std::uint32_t Pcg32::bounded(std::uint32_t bound) noexcept {
  SDSI_DCHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t product = static_cast<std::uint64_t>(next()) * bound;
  auto low = static_cast<std::uint32_t>(product);
  if (low < bound) {
    const std::uint32_t threshold = (0u - bound) % bound;
    while (low < threshold) {
      product = static_cast<std::uint64_t>(next()) * bound;
      low = static_cast<std::uint32_t>(product);
    }
  }
  return static_cast<std::uint32_t>(product >> 32);
}

double Pcg32::normal() noexcept {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u;
  double v;
  double s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

double Pcg32::exponential(double rate) noexcept {
  SDSI_DCHECK(rate > 0.0);
  // 1 - uniform01() is in (0, 1], keeping log() finite.
  return -std::log(1.0 - uniform01()) / rate;
}

Pcg32 RngFactory::make(std::string_view name, std::uint64_t index) const noexcept {
  // Hash the stream name so child identity does not depend on call order.
  const std::uint64_t name_hash = sha1_prefix64(name);
  SplitMix64 mixer(master_seed_ ^ name_hash);
  const std::uint64_t a = mixer.next() + 0x9E3779B97F4A7C15ull * index;
  SplitMix64 mixer2(a);
  const std::uint64_t seed = mixer2.next();
  const std::uint64_t stream = mixer2.next();
  return Pcg32(seed, stream);
}

}  // namespace sdsi::common
