// Plain-text table rendering for the benchmark harnesses. Every figure/table
// bench prints its series through this, so outputs are uniform and diffable.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sdsi::common {

/// Column-aligned ASCII table. Cells are strings; numeric helpers format with
/// fixed precision so series line up across rows.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Starts a new row. Subsequent add_cell/add_num calls fill it.
  TextTable& begin_row();
  TextTable& add_cell(std::string text);
  TextTable& add_num(double value, int precision = 3);
  TextTable& add_int(long long value);

  /// Renders the table with a separator line under the header.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with fixed `precision` decimals.
std::string format_fixed(double value, int precision);

}  // namespace sdsi::common
