#include "common/stats.hpp"

#include <algorithm>

namespace sdsi::common {

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  SDSI_CHECK(hi > lo);
  SDSI_CHECK(buckets > 0);
}

void Histogram::add(double x) noexcept {
  auto idx = static_cast<std::int64_t>((x - lo_) / width_);
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::fraction_above(double x) const noexcept {
  if (total_ == 0) {
    return 0.0;
  }
  std::uint64_t above = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (bucket_low(i) >= x) {
      above += counts_[i];
    }
  }
  return static_cast<double>(above) / static_cast<double>(total_);
}

double Percentiles::quantile(double q) {
  SDSI_CHECK(!samples_.empty());
  SDSI_CHECK(q >= 0.0 && q <= 1.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[rank];
}

}  // namespace sdsi::common
