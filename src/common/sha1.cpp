#include "common/sha1.hpp"

#include <bit>
#include <cstring>

namespace sdsi::common {

namespace {

constexpr std::uint32_t rotl(std::uint32_t value, int shift) noexcept {
  return std::rotl(value, shift);
}

}  // namespace

void Sha1::reset() noexcept {
  state_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  buffer_len_ = 0;
  total_bits_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) noexcept {
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[4 * t]) << 24) |
           (static_cast<std::uint32_t>(block[4 * t + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * t + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * t + 3]);
  }
  for (int t = 16; t < 80; ++t) {
    w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }

  std::uint32_t a = state_[0];
  std::uint32_t b = state_[1];
  std::uint32_t c = state_[2];
  std::uint32_t d = state_[3];
  std::uint32_t e = state_[4];

  for (int t = 0; t < 80; ++t) {
    std::uint32_t f;
    std::uint32_t k;
    if (t < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t temp = rotl(a, 5) + f + e + k + w[t];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(std::span<const std::uint8_t> data) noexcept {
  total_bits_ += static_cast<std::uint64_t>(data.size()) * 8u;
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == buffer_.size()) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (data.size() - offset >= 64) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    const std::size_t rest = data.size() - offset;
    std::memcpy(buffer_.data() + buffer_len_, data.data() + offset, rest);
    buffer_len_ += rest;
  }
}

void Sha1::update(std::string_view text) noexcept {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

Sha1Digest Sha1::finish() noexcept {
  const std::uint64_t bits = total_bits_;
  // Append the 0x80 terminator then zero-pad to 56 mod 64, then the length.
  const std::uint8_t terminator = 0x80;
  update(std::span<const std::uint8_t>(&terminator, 1));
  total_bits_ -= 8;  // the padding bytes are not part of the message length
  const std::uint8_t zero = 0x00;
  while (buffer_len_ != 56) {
    update(std::span<const std::uint8_t>(&zero, 1));
    total_bits_ -= 8;
  }
  std::uint8_t length_bytes[8];
  for (int i = 0; i < 8; ++i) {
    length_bytes[i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
  }
  update(std::span<const std::uint8_t>(length_bytes, 8));

  Sha1Digest digest;
  for (int i = 0; i < 5; ++i) {
    digest[static_cast<std::size_t>(4 * i)] =
        static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 24);
    digest[static_cast<std::size_t>(4 * i + 1)] =
        static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 16);
    digest[static_cast<std::size_t>(4 * i + 2)] =
        static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 8);
    digest[static_cast<std::size_t>(4 * i + 3)] =
        static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)]);
  }
  return digest;
}

Sha1Digest sha1(std::span<const std::uint8_t> data) noexcept {
  Sha1 hasher;
  hasher.update(data);
  return hasher.finish();
}

Sha1Digest sha1(std::string_view text) noexcept {
  Sha1 hasher;
  hasher.update(text);
  return hasher.finish();
}

std::string to_hex(const Sha1Digest& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(digest.size() * 2);
  for (const std::uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0x0F]);
  }
  return out;
}

std::uint64_t digest_prefix64(const Sha1Digest& digest) noexcept {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value = (value << 8) | digest[static_cast<std::size_t>(i)];
  }
  return value;
}

}  // namespace sdsi::common
