// Deterministic random-number infrastructure.
//
// Every stochastic component of a simulation draws from its own named child
// stream of one master seed, so (a) runs are bit-reproducible, and (b) adding
// a new consumer does not perturb the draws seen by existing consumers.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/check.hpp"

namespace sdsi::common {

/// SplitMix64 — used for seed derivation (Steele et al., "Fast splittable
/// pseudorandom number generators").
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    state_ += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// PCG32 (O'Neill) — small, fast, statistically solid; our workhorse stream.
/// Satisfies std::uniform_random_bit_generator.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  Pcg32() noexcept : Pcg32(0x853C49E6748FEA9Bull, 0xDA3E39CB94B95BDBull) {}

  Pcg32(std::uint64_t seed, std::uint64_t stream) noexcept {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    (void)next();
    state_ += seed;
    (void)next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return 0xFFFFFFFFu; }

  result_type operator()() noexcept { return next(); }

  result_type next() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ull + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  std::uint64_t next64() noexcept {
    return (static_cast<std::uint64_t>(next()) << 32) | next();
  }

  /// Unbiased integer in [0, bound) via Lemire rejection.
  std::uint32_t bounded(std::uint32_t bound) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    SDSI_DCHECK(lo <= hi);
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    SDSI_DCHECK(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) {  // full 64-bit range
      return static_cast<std::int64_t>(next64());
    }
    // Two 32-bit bounded draws cover 64-bit spans adequately for simulation.
    if (span <= 0xFFFFFFFFull) {
      return lo + static_cast<std::int64_t>(
                      bounded(static_cast<std::uint32_t>(span)));
    }
    // Rejection sample the wide case.
    const std::uint64_t limit = span * (~0ull / span);
    std::uint64_t draw;
    do {
      draw = next64();
    } while (draw >= limit);
    return lo + static_cast<std::int64_t>(draw % span);
  }

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept;

  /// Exponential with the given rate (events per unit time).
  double exponential(double rate) noexcept;

 private:
  std::uint64_t state_;
  std::uint64_t inc_;

  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

/// Derives independent child generators from one master seed by name. Child
/// streams are stable across runs and across unrelated code changes.
class RngFactory {
 public:
  explicit RngFactory(std::uint64_t master_seed) noexcept
      : master_seed_(master_seed) {}

  /// Deterministic child stream for the (name, index) pair.
  Pcg32 make(std::string_view name, std::uint64_t index = 0) const noexcept;

  std::uint64_t master_seed() const noexcept { return master_seed_; }

 private:
  std::uint64_t master_seed_;
};

}  // namespace sdsi::common
