// Flat-hash containers for per-node hot paths.
//
// DenseMap / DenseSet replace std::unordered_map / std::unordered_set in
// the middleware's per-node and per-stream tables. Entries live contiguously
// in a dense vector (cache-friendly scans, cheap iteration at 50k+ nodes);
// an open-addressed power-of-two index of 4-byte slots maps hashes to entry
// positions (one allocation, no per-node bucket lists, ~20 bytes of empty
// footprint instead of unordered_map's ~56+buckets).
//
// Iteration order is insertion order, modulo swap-with-last on erase — a
// pure function of the operation history, which is what the simulator's
// bit-reproducibility needs (and unlike unordered_map, it cannot vary with
// library implementation or pointer values).
//
// Contract differences from unordered_map callers must respect:
//  - references/iterators are invalidated by insert (vector growth) and by
//    erase (swap-with-last);
//  - erase(it) returns the iterator at the same dense position, so the
//    standard `it = map.erase(it)` sweep visits every remaining entry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <tuple>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace sdsi {

namespace detail {

/// Open-addressed, linear-probed index over a dense entry array. Slot value
/// 0 means empty; otherwise (entry index + 1). Deletion backward-shifts the
/// probe chain, so there are no tombstones and lookups stay O(probe).
class DenseIndex {
 public:
  bool empty() const noexcept { return slots_.empty(); }
  std::size_t capacity() const noexcept { return slots_.size(); }

  bool needs_grow(std::size_t size) const noexcept {
    return (size + 1) * 4 > slots_.size() * 3;  // max load factor 0.75
  }

  /// Probes for `hash`, calling eq(entry_index) on occupied slots. Returns
  /// the slot holding the match, or the first empty slot of the chain.
  template <typename EqFn>
  std::size_t find_slot(std::size_t hash, EqFn&& eq) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t slot = hash & mask;
    while (slots_[slot] != 0 && !eq(slots_[slot] - 1)) {
      slot = (slot + 1) & mask;
    }
    return slot;
  }

  std::uint32_t entry_at(std::size_t slot) const noexcept {
    return slots_[slot];
  }
  void set(std::size_t slot, std::size_t entry_index) noexcept {
    slots_[slot] = static_cast<std::uint32_t>(entry_index + 1);
  }

  /// Empties `slot` and backward-shifts the rest of its probe chain.
  /// home_of(entry_index) must return the entry's hash.
  template <typename HomeFn>
  void erase_slot(std::size_t slot, HomeFn&& home_of) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t hole = slot;
    std::size_t i = (slot + 1) & mask;
    while (slots_[i] != 0) {
      const std::size_t home = home_of(slots_[i] - 1) & mask;
      // The entry at i may fill the hole iff its probe chain passes through
      // it: cyclic distance home->i must be at least hole->i.
      if (((i - home) & mask) >= ((i - hole) & mask)) {
        slots_[hole] = slots_[i];
        slots_[i] = 0;
        hole = i;
      }
      i = (i + 1) & mask;
    }
    slots_[hole] = 0;
  }

  template <typename HomeFn>
  void rebuild(std::size_t min_capacity, std::size_t count, HomeFn&& home_of) {
    std::size_t capacity = 16;
    while (capacity * 3 < min_capacity * 4) {  // rebuild below 0.75 load
      capacity *= 2;
    }
    slots_.assign(capacity, 0);
    const std::size_t mask = capacity - 1;
    for (std::size_t i = 0; i < count; ++i) {
      std::size_t slot = home_of(i) & mask;
      while (slots_[slot] != 0) {
        slot = (slot + 1) & mask;
      }
      slots_[slot] = static_cast<std::uint32_t>(i + 1);
    }
  }

 private:
  std::vector<std::uint32_t> slots_;
};

}  // namespace detail

template <typename Key, typename T, typename Hash = std::hash<Key>,
          typename Eq = std::equal_to<Key>>
class DenseMap {
 public:
  using value_type = std::pair<Key, T>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  iterator begin() noexcept { return entries_.begin(); }
  iterator end() noexcept { return entries_.end(); }
  const_iterator begin() const noexcept { return entries_.begin(); }
  const_iterator end() const noexcept { return entries_.end(); }

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  void clear() noexcept {
    entries_.clear();
    index_ = detail::DenseIndex();
  }

  void reserve(std::size_t n) {
    entries_.reserve(n);
    if (n > 0 && index_.needs_grow(n - 1)) {
      rebuild(n);
    }
  }

  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const Key& key, Args&&... args) {
    grow_if_needed();
    const std::size_t slot = index_.find_slot(
        Hash{}(key), [&](std::size_t i) { return Eq{}(entries_[i].first, key); });
    if (index_.entry_at(slot) != 0) {
      return {entries_.begin() + static_cast<std::ptrdiff_t>(index_.entry_at(slot) - 1), false};
    }
    entries_.emplace_back(std::piecewise_construct, std::forward_as_tuple(key),
                          std::forward_as_tuple(std::forward<Args>(args)...));
    index_.set(slot, entries_.size() - 1);
    return {entries_.end() - 1, true};
  }

  template <typename V>
  std::pair<iterator, bool> insert_or_assign(const Key& key, V&& value) {
    auto [it, inserted] = try_emplace(key, std::forward<V>(value));
    if (!inserted) {
      it->second = std::forward<V>(value);
    }
    return {it, inserted};
  }

  std::pair<iterator, bool> insert(value_type value) {
    return try_emplace(value.first, std::move(value.second));
  }

  T& operator[](const Key& key) { return try_emplace(key).first->second; }

  iterator find(const Key& key) noexcept {
    return entries_.begin() + static_cast<std::ptrdiff_t>(find_index(key));
  }
  const_iterator find(const Key& key) const noexcept {
    return entries_.begin() + static_cast<std::ptrdiff_t>(find_index(key));
  }

  bool contains(const Key& key) const noexcept {
    return find_index(key) != entries_.size();
  }
  std::size_t count(const Key& key) const noexcept {
    return contains(key) ? 1 : 0;
  }

  T& at(const Key& key) {
    const std::size_t i = find_index(key);
    SDSI_CHECK(i != entries_.size());
    return entries_[i].second;
  }
  const T& at(const Key& key) const {
    const std::size_t i = find_index(key);
    SDSI_CHECK(i != entries_.size());
    return entries_[i].second;
  }

  std::size_t erase(const Key& key) {
    if (index_.empty()) {
      return 0;
    }
    const std::size_t slot = index_.find_slot(
        Hash{}(key), [&](std::size_t i) { return Eq{}(entries_[i].first, key); });
    if (index_.entry_at(slot) == 0) {
      return 0;
    }
    erase_slot(slot);
    return 1;
  }

  /// Swap-with-last erase; returns the iterator at the same dense position
  /// (now the previously-last entry), so `it = map.erase(it)` sweeps work.
  iterator erase(const_iterator pos) {
    const std::size_t i = static_cast<std::size_t>(pos - entries_.cbegin());
    const Key& key = entries_[i].first;
    const std::size_t slot = index_.find_slot(
        Hash{}(key), [&](std::size_t e) { return Eq{}(entries_[e].first, key); });
    erase_slot(slot);
    return entries_.begin() + static_cast<std::ptrdiff_t>(i);
  }

 private:
  void grow_if_needed() {
    if (index_.needs_grow(entries_.size())) {
      rebuild(entries_.size() + 1);
    }
  }

  void rebuild(std::size_t min_capacity) {
    index_.rebuild(min_capacity, entries_.size(),
                   [&](std::size_t i) { return Hash{}(entries_[i].first); });
  }

  std::size_t find_index(const Key& key) const noexcept {
    if (index_.empty()) {
      return entries_.size();
    }
    const std::size_t slot = index_.find_slot(
        Hash{}(key), [&](std::size_t i) { return Eq{}(entries_[i].first, key); });
    const std::uint32_t stored = index_.entry_at(slot);
    return stored == 0 ? entries_.size() : stored - 1;
  }

  void erase_slot(std::size_t slot) {
    const std::size_t i = index_.entry_at(slot) - 1;
    index_.erase_slot(slot,
                      [&](std::size_t e) { return Hash{}(entries_[e].first); });
    const std::size_t last = entries_.size() - 1;
    if (i != last) {
      // Locate the last entry's slot before moving it: the probe compares
      // against the stored key, which a move would leave unspecified.
      const Key& moved = entries_[last].first;
      const std::size_t moved_slot = index_.find_slot(
          Hash{}(moved),
          [&](std::size_t e) { return Eq{}(entries_[e].first, moved); });
      entries_[i] = std::move(entries_[last]);
      index_.set(moved_slot, i);
    }
    entries_.pop_back();
  }

  std::vector<value_type> entries_;
  detail::DenseIndex index_;
};

template <typename Key, typename Hash = std::hash<Key>,
          typename Eq = std::equal_to<Key>>
class DenseSet {
 public:
  using iterator = typename std::vector<Key>::const_iterator;
  using const_iterator = iterator;

  const_iterator begin() const noexcept { return entries_.begin(); }
  const_iterator end() const noexcept { return entries_.end(); }

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  void clear() noexcept {
    entries_.clear();
    index_ = detail::DenseIndex();
  }

  std::pair<const_iterator, bool> insert(const Key& key) {
    if (index_.needs_grow(entries_.size())) {
      index_.rebuild(entries_.size() + 1, entries_.size(),
                     [&](std::size_t i) { return Hash{}(entries_[i]); });
    }
    const std::size_t slot = index_.find_slot(
        Hash{}(key), [&](std::size_t i) { return Eq{}(entries_[i], key); });
    if (index_.entry_at(slot) != 0) {
      return {entries_.cbegin() + static_cast<std::ptrdiff_t>(index_.entry_at(slot) - 1), false};
    }
    entries_.push_back(key);
    index_.set(slot, entries_.size() - 1);
    return {entries_.cend() - 1, true};
  }

  bool contains(const Key& key) const noexcept {
    if (index_.empty()) {
      return false;
    }
    const std::size_t slot = index_.find_slot(
        Hash{}(key), [&](std::size_t i) { return Eq{}(entries_[i], key); });
    return index_.entry_at(slot) != 0;
  }
  std::size_t count(const Key& key) const noexcept {
    return contains(key) ? 1 : 0;
  }

  std::size_t erase(const Key& key) {
    if (index_.empty()) {
      return 0;
    }
    const std::size_t slot = index_.find_slot(
        Hash{}(key), [&](std::size_t i) { return Eq{}(entries_[i], key); });
    if (index_.entry_at(slot) == 0) {
      return 0;
    }
    const std::size_t i = index_.entry_at(slot) - 1;
    index_.erase_slot(slot, [&](std::size_t e) { return Hash{}(entries_[e]); });
    const std::size_t last = entries_.size() - 1;
    if (i != last) {
      const Key& moved = entries_[last];
      const std::size_t moved_slot = index_.find_slot(
          Hash{}(moved), [&](std::size_t e) { return Eq{}(entries_[e], moved); });
      entries_[i] = std::move(entries_[last]);
      index_.set(moved_slot, i);
    }
    entries_.pop_back();
    return 1;
  }

 private:
  std::vector<Key> entries_;
  detail::DenseIndex index_;
};

}  // namespace sdsi
