// Fundamental value types shared by every sdsi module.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace sdsi {

/// Identifier on the Chord ring. The paper uses m-bit identifiers produced by
/// SHA-1 truncation (for node addresses / stream ids) or by scaling a feature
/// value (Eq. 6). We store them in 64 bits; the active width `m` is carried by
/// the IdSpace that produced them (common/ring_math.hpp).
using Key = std::uint64_t;

/// Dense index of a data center (node) inside one simulation. This is a
/// simulator-level handle, not the ring identifier: the ring identifier of
/// node `n` is assigned by hashing, exactly as Chord hashes a node's IP.
using NodeIndex = std::uint32_t;

inline constexpr NodeIndex kInvalidNode = std::numeric_limits<NodeIndex>::max();

/// Application-level identifier of a data stream (paper: "sid").
using StreamId = std::uint64_t;

/// Monotone sequence number used to break simulation-event ties
/// deterministically.
using SeqNo = std::uint64_t;

/// A single stream observation (the paper's data points are bounded reals).
using Sample = double;

}  // namespace sdsi
