// SHA-1 (FIPS 180-1), implemented from scratch.
//
// The paper's consistent hashing assigns node and key identifiers with SHA-1
// [ref 1 in the paper]. We implement the full algorithm rather than linking a
// crypto library: the simulator only needs its avalanche/uniformity behavior,
// but matching the paper's primitive keeps identifier distributions honest.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace sdsi::common {

/// 160-bit SHA-1 digest.
using Sha1Digest = std::array<std::uint8_t, 20>;

/// Incremental SHA-1 hasher. Usage: Sha1 h; h.update(...); h.finish();
class Sha1 {
 public:
  Sha1() noexcept { reset(); }

  void reset() noexcept;
  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view text) noexcept;

  /// Finalizes and returns the digest. The hasher must be reset() before
  /// further use.
  Sha1Digest finish() noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 5> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
};

/// One-shot digest of a byte span.
Sha1Digest sha1(std::span<const std::uint8_t> data) noexcept;

/// One-shot digest of a text string.
Sha1Digest sha1(std::string_view text) noexcept;

/// Lower-case hex rendering of a digest (for tests against FIPS vectors).
std::string to_hex(const Sha1Digest& digest);

/// First 64 bits of the digest, big-endian — the "m-bit identifier" prefix the
/// paper truncates from SHA-1 output. Callers mask to their ring width.
std::uint64_t digest_prefix64(const Sha1Digest& digest) noexcept;

/// Convenience: SHA-1 based 64-bit hash of arbitrary text.
inline std::uint64_t sha1_prefix64(std::string_view text) noexcept {
  return digest_prefix64(sha1(text));
}

}  // namespace sdsi::common
