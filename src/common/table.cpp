#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"

namespace sdsi::common {

std::string format_fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  SDSI_CHECK(!header_.empty());
}

TextTable& TextTable::begin_row() {
  rows_.emplace_back();
  rows_.back().reserve(header_.size());
  return *this;
}

TextTable& TextTable::add_cell(std::string text) {
  SDSI_CHECK(!rows_.empty());
  rows_.back().push_back(std::move(text));
  return *this;
}

TextTable& TextTable::add_num(double value, int precision) {
  return add_cell(format_fixed(value, precision));
}

TextTable& TextTable::add_int(long long value) {
  return add_cell(std::to_string(value));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      line += cell;
      line.append(widths[c] - cell.size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') {
      line.pop_back();
    }
    line.push_back('\n');
    return line;
  };

  std::string out = render_row(header_);
  std::size_t rule_len = 0;
  for (const std::size_t w : widths) {
    rule_len += w + 2;
  }
  out.append(rule_len - 2, '-');
  out.push_back('\n');
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

}  // namespace sdsi::common
