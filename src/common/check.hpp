// Invariant checking. SDSI_CHECK is always on (simulation correctness beats
// the last few percent of speed); SDSI_DCHECK compiles away in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <source_location>

namespace sdsi::detail {

[[noreturn]] inline void check_failed(const char* expr,
                                      const std::source_location& loc) {
  std::fprintf(stderr, "SDSI_CHECK failed: %s at %s:%u (%s)\n", expr,
               loc.file_name(), static_cast<unsigned>(loc.line()),
               loc.function_name());
  std::abort();
}

}  // namespace sdsi::detail

#define SDSI_CHECK(expr)                                                 \
  do {                                                                   \
    if (!(expr)) [[unlikely]] {                                          \
      ::sdsi::detail::check_failed(#expr, std::source_location::current()); \
    }                                                                    \
  } while (false)

#ifdef NDEBUG
#define SDSI_DCHECK(expr) \
  do {                    \
  } while (false)
#else
#define SDSI_DCHECK(expr) SDSI_CHECK(expr)
#endif
