// Streaming statistics and histograms used by the metrics layer and the
// experiment reports (Figures 6-8).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace sdsi::common {

/// Welford online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (count_ == 1) {
      min_ = max_ = x;
    } else {
      if (x < min_) min_ = x;
      if (x > max_) max_ = x;
    }
  }

  void merge(const OnlineStats& other) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  double sum() const noexcept { return mean_ * static_cast<double>(count_); }
  double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp into the
/// edge buckets. Mirrors Figure 6(b)'s "distribution of load across nodes".
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;

  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const noexcept { return counts_[i]; }
  double bucket_low(std::size_t i) const noexcept {
    return lo_ + width_ * static_cast<double>(i);
  }
  double bucket_high(std::size_t i) const noexcept {
    return lo_ + width_ * static_cast<double>(i + 1);
  }
  std::uint64_t total() const noexcept { return total_; }

  /// Tail mass above `x` — used to check the "not heavy-tailed" claim.
  double fraction_above(double x) const noexcept;

 private:
  double lo_;
  double width_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> counts_;
};

/// Exact percentile over a stored sample set (sizes here are small: one value
/// per node or per message).
class Percentiles {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }

  bool empty() const noexcept { return samples_.empty(); }
  std::size_t size() const noexcept { return samples_.size(); }

  /// q in [0, 1]; nearest-rank percentile. Sorts lazily.
  double quantile(double q);
  double median() { return quantile(0.5); }

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

}  // namespace sdsi::common
