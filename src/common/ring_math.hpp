// Modular arithmetic on the Chord identifier circle.
//
// The paper orders m-bit identifiers "on an identifier circle modulo 2^m"
// (the Chord ring). All interval logic that Chord and the range multicast
// need lives here, in one well-tested place: half-open/closed membership
// tests that wrap correctly, clockwise distances, and finger offsets.
#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "common/types.hpp"

namespace sdsi::common {

/// An m-bit identifier space (1 <= m <= 64).
class IdSpace {
 public:
  explicit constexpr IdSpace(unsigned bits) noexcept : bits_(bits) {
    SDSI_DCHECK(bits >= 1 && bits <= 64);
  }

  constexpr unsigned bits() const noexcept { return bits_; }

  /// 2^m as a count; for m == 64 the modulus does not fit and size() must not
  /// be used (mask() still works).
  constexpr std::uint64_t size() const noexcept {
    SDSI_DCHECK(bits_ < 64);
    return 1ull << bits_;
  }

  constexpr Key mask() const noexcept {
    return bits_ == 64 ? ~0ull : ((1ull << bits_) - 1);
  }

  constexpr Key wrap(std::uint64_t value) const noexcept {
    return value & mask();
  }

  /// Clockwise (increasing-id) distance from `from` to `to` on the ring.
  constexpr Key distance(Key from, Key to) const noexcept {
    return wrap(to - from);
  }

  /// `from + 2^(i)` modulo 2^m — the i-th finger offset (i in [0, m)).
  constexpr Key finger_start(Key from, unsigned i) const noexcept {
    SDSI_DCHECK(i < bits_);
    return wrap(from + (1ull << i));
  }

  /// key ∈ (a, b) on the circle. Empty when a == b.
  constexpr bool in_open(Key key, Key a, Key b) const noexcept {
    return distance(a, key) > 0 && distance(a, key) < distance(a, b) &&
           distance(a, b) != 0;
  }

  /// key ∈ (a, b] on the circle. When a == b the interval is the full circle
  /// (this is the Chord convention: a lone node succeeds every key).
  constexpr bool in_half_open(Key key, Key a, Key b) const noexcept {
    if (a == b) {
      return true;
    }
    const Key d_key = distance(a, key);
    return d_key > 0 && d_key <= distance(a, b);
  }

  /// key ∈ [a, b] on the circle (inclusive range used by range multicast).
  /// When a == b the range is the single point a.
  constexpr bool in_closed(Key key, Key a, Key b) const noexcept {
    return distance(a, key) <= distance(a, b);
  }

  /// Midpoint of the clockwise range [a, b] (used by the bidirectional range
  /// multicast of Sec VI-B: send to the middle, fan out both ways).
  constexpr Key midpoint(Key a, Key b) const noexcept {
    return wrap(a + distance(a, b) / 2);
  }

 private:
  unsigned bits_;
};

}  // namespace sdsi::common
