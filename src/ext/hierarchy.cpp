#include "ext/hierarchy.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace sdsi::ext {

HierarchicalIndex::HierarchicalIndex(std::size_t num_nodes,
                                     HierarchyConfig config)
    : leaf_boxes_(num_nodes),
      leaf_has_data_(num_nodes, false),
      num_nodes_(num_nodes),
      config_(config) {
  SDSI_CHECK(num_nodes >= 1);
  SDSI_CHECK(config_.cluster_size >= 2);
  SDSI_CHECK(config_.slack >= 0.0);

  // Build bottom-up: cluster `width` adjacent units into one tree node.
  std::size_t below = num_nodes;
  while (below > 1) {
    const std::size_t clusters =
        (below + config_.cluster_size - 1) / config_.cluster_size;
    std::vector<TreeNode> level(clusters);
    for (std::size_t child = 0; child < below; ++child) {
      const std::size_t parent = child / config_.cluster_size;
      level[parent].children.push_back(child);
      if (!levels_.empty()) {
        levels_.back()[child].parent = parent;
      }
    }
    levels_.push_back(std::move(level));
    below = clusters;
  }
  if (levels_.empty()) {
    // Single-node system: one root with the sole leaf as child.
    levels_.push_back(std::vector<TreeNode>(1));
    levels_[0][0].children.push_back(0);
  }
}

NodeIndex HierarchicalIndex::leader_of(NodeIndex leaf, unsigned level) const {
  SDSI_CHECK(leaf < num_nodes_);
  SDSI_CHECK(level < levels_.size());
  std::size_t position = leaf;
  for (unsigned l = 0; l <= level; ++l) {
    position /= config_.cluster_size;
  }
  // The leader of a cluster is its first (lowest ring position) member.
  std::size_t representative = position;
  for (unsigned l = level + 1; l-- > 0;) {
    representative *= config_.cluster_size;
    (void)l;
  }
  return static_cast<NodeIndex>(
      std::min(representative, num_nodes_ - 1));
}

std::uint64_t HierarchicalIndex::update(NodeIndex leaf,
                                        const dsp::FeatureVector& features) {
  SDSI_CHECK(leaf < num_nodes_);
  ++total_updates_;

  leaf_boxes_[leaf].extend(features);
  leaf_has_data_[leaf] = true;

  // Climb: a level absorbs the update silently if its inflated box already
  // contains the child's new box; otherwise it re-advertises and climbs on.
  std::uint64_t messages = 1;  // leaf -> bottom leader
  ++total_update_messages_;
  dsp::Mbr child_box = leaf_boxes_[leaf];
  std::size_t position = leaf;
  for (std::size_t level = 0; level < levels_.size(); ++level) {
    position /= config_.cluster_size;
    TreeNode& node = levels_[level][position];
    bool contained = node.has_data && !node.box.empty();
    if (contained) {
      // Box containment: every corner of child_box inside node.box.
      const auto lo = child_box.low();
      const auto hi = child_box.high();
      const auto nlo = node.box.low();
      const auto nhi = node.box.high();
      for (std::size_t d = 0; d < lo.size() && contained; ++d) {
        contained = nlo[d] <= lo[d] && hi[d] <= nhi[d];
      }
    }
    if (contained) {
      break;  // the advertised box still covers reality: stop climbing
    }
    dsp::Mbr inflated = child_box;
    inflated.inflate(config_.slack);
    if (node.has_data) {
      node.box.extend(inflated);
    } else {
      node.box = std::move(inflated);
      node.has_data = true;
    }
    child_box = node.box;
    if (level + 1 < levels_.size()) {
      ++messages;  // leader -> next-level leader
      ++total_update_messages_;
    }
  }
  return messages;
}

HierarchicalQueryResult HierarchicalIndex::query(
    NodeIndex origin, const dsp::FeatureVector& center, double radius) const {
  SDSI_CHECK(origin < num_nodes_);
  HierarchicalQueryResult result;

  // Climb from the origin to the root. The paper's sketch stops climbing
  // once the reached leader's coverage "is large enough", but cluster boxes
  // overlap in feature space, so a sibling subtree outside the walked path
  // can still hold matches — stopping early can dismiss them. Consulting
  // the root costs only O(log N) up-hops and preserves the no-false-
  // dismissal guarantee; all pruning happens on the way down.
  std::size_t level = 0;
  std::size_t position = origin / config_.cluster_size;
  result.messages = 1;  // origin -> its bottom-level leader
  while (level + 1 < levels_.size()) {
    position /= config_.cluster_size;
    ++level;
    ++result.levels_climbed;
    ++result.messages;  // leader -> higher leader
  }

  // Descend into children whose advertised boxes intersect the ball.
  std::vector<std::pair<std::size_t, std::size_t>> frontier{{level, position}};
  while (!frontier.empty()) {
    const auto [l, p] = frontier.back();
    frontier.pop_back();
    const TreeNode& node = levels_[l][p];
    for (const std::size_t child : node.children) {
      if (l == 0) {
        const NodeIndex leaf = static_cast<NodeIndex>(child);
        if (leaf_has_data_[leaf] && !leaf_boxes_[leaf].empty() &&
            leaf_boxes_[leaf].min_distance(center) <= radius) {
          result.candidate_leaves.push_back(leaf);
          ++result.messages;  // leader -> leaf evaluation request
        }
      } else {
        const TreeNode& child_node = levels_[l - 1][child];
        if (child_node.has_data && !child_node.box.empty() &&
            child_node.box.min_distance(center) <= radius) {
          frontier.emplace_back(l - 1, child);
          ++result.messages;  // leader -> sub-leader
        }
      }
    }
  }
  std::sort(result.candidate_leaves.begin(), result.candidate_leaves.end());
  return result;
}

std::optional<dsp::Mbr> HierarchicalIndex::advertised_box(
    unsigned level, std::size_t position) const {
  SDSI_CHECK(level < levels_.size());
  SDSI_CHECK(position < levels_[level].size());
  const TreeNode& node = levels_[level][position];
  if (!node.has_data) {
    return std::nullopt;
  }
  return node.box;
}

}  // namespace sdsi::ext
