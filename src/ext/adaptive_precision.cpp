#include "ext/adaptive_precision.hpp"

namespace sdsi::ext {

PrecisionAdaptiveBatcher::PrecisionAdaptiveBatcher(
    core::MbrBatcher::Options batcher_options,
    AdaptivePrecisionController::Options controller_options)
    : batcher_((batcher_options.mode = core::MbrBatcher::Mode::kAdaptive,
                batcher_options.max_extent =
                    AdaptivePrecisionController(controller_options).extent(),
                batcher_options)),
      controller_(controller_options) {}

std::optional<dsp::Mbr> PrecisionAdaptiveBatcher::push(
    const dsp::FeatureVector& features) {
  std::optional<dsp::Mbr> closed = batcher_.push(features);
  batcher_.set_max_extent(controller_.observe(closed.has_value()));
  return closed;
}

}  // namespace sdsi::ext
