// Hierarchical feature-space partitioning for variable-selectivity queries
// (paper Sec VI-B, future work).
//
// Data centers are organized into a hierarchy of constant-size clusters of
// ring-adjacent nodes (after the application-layer-multicast construction the
// paper cites). Each cluster leader keeps, per child, a slack-inflated union
// MBR of everything stored below that child:
//  - summary updates climb the leader chain, but a level only propagates
//    upward when the child's new box escapes the inflated box the parent
//    already holds ("nodes at upper levels are updated less frequently at
//    the expense of less precise information");
//  - a similarity query climbs from its origin until the reached leader's
//    subtree spans the query ball, then descends only into children whose
//    boxes intersect the ball.
//
// For wide queries this replaces the O(N * radius) flat range multicast with
// an O(log N + relevant-subtrees) walk; bench_ext_hierarchy quantifies it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "dsp/mbr.hpp"

namespace sdsi::ext {

struct HierarchyConfig {
  std::size_t cluster_size = 4;  // constant cluster arity
  /// Slack added to each side of a child box when the parent stores it; the
  /// update-damping knob of Sec VI-B (0 = always propagate).
  double slack = 0.02;
};

/// Result of one hierarchical query evaluation.
struct HierarchicalQueryResult {
  std::vector<NodeIndex> candidate_leaves;  // data centers that must evaluate
  std::uint64_t messages = 0;               // up-walk + down-walk messages
  unsigned levels_climbed = 0;
};

class HierarchicalIndex {
 public:
  /// Builds the cluster tree over `num_nodes` leaves in ring order.
  HierarchicalIndex(std::size_t num_nodes, HierarchyConfig config);

  std::size_t num_nodes() const noexcept { return num_nodes_; }
  unsigned num_levels() const noexcept {
    return static_cast<unsigned>(levels_.size());
  }

  /// Leader (tree ancestor) of `leaf` at `level` (level 0 = the bottom
  /// cluster leaders).
  NodeIndex leader_of(NodeIndex leaf, unsigned level) const;

  /// Ingests a new summary at `leaf`. Returns the number of messages the
  /// update caused (0 when the leaf's box already absorbed the point, up to
  /// num_levels when it escaped every inflated ancestor box).
  std::uint64_t update(NodeIndex leaf, const dsp::FeatureVector& features);

  /// Evaluates a similarity ball query posed at `origin`.
  HierarchicalQueryResult query(NodeIndex origin,
                                const dsp::FeatureVector& center,
                                double radius) const;

  /// The box a given tree node currently advertises (empty optional when it
  /// has seen no data). Level `level` == num_levels() means leaves.
  std::optional<dsp::Mbr> advertised_box(unsigned level,
                                         std::size_t position) const;

  std::uint64_t total_updates() const noexcept { return total_updates_; }
  std::uint64_t total_update_messages() const noexcept {
    return total_update_messages_;
  }

 private:
  struct TreeNode {
    dsp::Mbr box;            // slack-inflated union advertised to the parent
    bool has_data = false;
    std::size_t parent = 0;  // position within the next level up
    std::vector<std::size_t> children;  // positions within the level below
  };

  /// levels_[0] = bottom clusters ... levels_.back() = root (size 1).
  /// leaves are implicit (leaf i belongs to bottom cluster i / cluster_size).
  std::vector<std::vector<TreeNode>> levels_;
  std::vector<dsp::Mbr> leaf_boxes_;
  std::vector<bool> leaf_has_data_;
  std::size_t num_nodes_;
  HierarchyConfig config_;
  std::uint64_t total_updates_ = 0;
  std::uint64_t total_update_messages_ = 0;
};

}  // namespace sdsi::ext
