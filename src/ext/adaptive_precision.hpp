// Standalone closed-loop batcher built from the Sec VI-A precision
// controller (core/precision.hpp) and the adaptive MbrBatcher — for use
// outside the middleware (analysis tools, the ablation benches). Inside the
// middleware, enable MiddlewareConfig::adaptive_precision instead; each
// LocalStream then runs its own controller.
#pragma once

#include <optional>

#include "core/batcher.hpp"
#include "core/precision.hpp"

namespace sdsi::ext {

using AdaptivePrecisionController = core::AdaptivePrecisionController;

/// MbrBatcher in adaptive mode + the precision controller, as one unit.
class PrecisionAdaptiveBatcher {
 public:
  PrecisionAdaptiveBatcher() : PrecisionAdaptiveBatcher({}, {}) {}
  PrecisionAdaptiveBatcher(core::MbrBatcher::Options batcher_options,
                           AdaptivePrecisionController::Options controller);

  std::optional<dsp::Mbr> push(const dsp::FeatureVector& features);
  std::optional<dsp::Mbr> flush() { return batcher_.flush(); }

  double current_extent() const noexcept { return controller_.extent(); }
  const core::MbrBatcher& batcher() const noexcept { return batcher_; }
  const AdaptivePrecisionController& controller() const noexcept {
    return controller_;
  }

 private:
  core::MbrBatcher batcher_;
  AdaptivePrecisionController controller_;
};

}  // namespace sdsi::ext
