#include "streams/generators.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace sdsi::streams {

RandomWalkGenerator::RandomWalkGenerator(common::Pcg32 rng, Sample start,
                                         Sample step_low, Sample step_high)
    : rng_(rng), value_(start), step_low_(step_low), step_high_(step_high) {
  SDSI_CHECK(step_low <= step_high);
}

Sample RandomWalkGenerator::next() {
  value_ += rng_.uniform(step_low_, step_high_);
  return value_;
}

HostLoadGenerator::HostLoadGenerator(common::Pcg32 rng, Params params)
    : rng_(rng), params_(params) {
  SDSI_CHECK(params_.ar_coefficient >= 0.0 && params_.ar_coefficient < 1.0);
  SDSI_CHECK(params_.diurnal_period > 0.0);
}

Sample HostLoadGenerator::next() {
  ++tick_;
  deviation_ = params_.ar_coefficient * deviation_ +
               params_.noise_std * rng_.normal();
  if (rng_.uniform01() < params_.burst_probability) {
    burst_ += params_.burst_magnitude * (0.5 + rng_.uniform01());
  }
  burst_ *= params_.burst_decay;
  const double diurnal =
      params_.diurnal_amplitude *
      std::sin(2.0 * std::numbers::pi * static_cast<double>(tick_) /
               params_.diurnal_period);
  const double load = params_.base_load + diurnal + deviation_ + burst_;
  return std::max(load, 0.0);
}

StockMarketModel::StockMarketModel(common::Pcg32 rng, Params params)
    : rng_(rng), params_(params) {
  SDSI_CHECK(params_.num_tickers > 0);
  SDSI_CHECK(params_.num_sectors > 0);
  prices_.assign(params_.num_tickers, params_.initial_price);
  previous_prices_ = prices_;
  betas_.reserve(params_.num_tickers);
  gammas_.reserve(params_.num_tickers);
  symbols_.reserve(params_.num_tickers);
  for (std::size_t i = 0; i < params_.num_tickers; ++i) {
    betas_.push_back(0.6 + 0.8 * rng_.uniform01());   // beta in [0.6, 1.4]
    gammas_.push_back(0.5 + 1.0 * rng_.uniform01());  // gamma in [0.5, 1.5]
    // Synthetic ticker symbols: TK000, TK001, ...
    char buf[32];
    std::snprintf(buf, sizeof(buf), "TK%03u",
                  static_cast<unsigned>(i % 1000));
    symbols_.emplace_back(buf);
  }
}

void StockMarketModel::apply_sector_shock(std::size_t sector,
                                          double magnitude, int steps) {
  SDSI_CHECK(sector < params_.num_sectors);
  SDSI_CHECK(steps > 0);
  shock_sector_ = sector;
  shock_magnitude_ = magnitude;
  shock_steps_remaining_ = steps;
}

void StockMarketModel::step() {
  previous_prices_ = prices_;
  const double market = params_.market_vol * rng_.normal();
  std::vector<double> sector_moves(params_.num_sectors);
  for (double& move : sector_moves) {
    move = params_.sector_vol * rng_.normal();
  }
  if (shock_steps_remaining_ > 0) {
    sector_moves[shock_sector_] += shock_magnitude_;
    --shock_steps_remaining_;
  }
  for (std::size_t i = 0; i < prices_.size(); ++i) {
    const double log_return = params_.drift + betas_[i] * market +
                              gammas_[i] * sector_moves[sector_of(i)] +
                              params_.idiosyncratic_vol * rng_.normal();
    prices_[i] *= std::exp(log_return);
  }
}

DailyBar StockMarketModel::bar(std::size_t ticker) const {
  SDSI_CHECK(ticker < prices_.size());
  DailyBar out;
  out.open = previous_prices_[ticker];
  out.close = prices_[ticker];
  // Intraday extremes synthesized as a fixed-width envelope around the move;
  // only the close feeds the index, the rest rounds out the record format
  // of the S&P500 files the paper describes (date/ticker/OHLCV).
  const double hi = std::max(out.open, out.close);
  const double lo = std::min(out.open, out.close);
  out.high = hi * 1.005;
  out.low = lo * 0.995;
  out.volume = 1e6 * (0.5 + std::abs(out.close - out.open) / out.open * 50.0);
  return out;
}

PoissonProcess::PoissonProcess(common::Pcg32 rng, double rate_per_second)
    : rng_(rng), rate_(rate_per_second) {
  SDSI_CHECK(rate_per_second > 0.0);
}

double PoissonProcess::next_gap_seconds() { return rng_.exponential(rate_); }

}  // namespace sdsi::streams
