// Adversarial workload shaping (ROADMAP: survive adversarial skew).
//
// The paper's evaluation draws everything uniformly: one stream per node,
// query clients uniform, query patterns fresh random walks. Content routing
// then spreads keys evenly and Fig 6(b)'s load-uniformity claim follows
// almost by construction. Real deployments are not uniform — popularity is
// Zipf, correlated assets move together, and flash crowds pile correlated
// keys plus correlated queries onto one narrow ring arc at once. This module
// supplies the deterministic skew machinery the robustness experiments feed
// into the Experiment harness:
//
//  - ZipfSampler: inverse-CDF Zipf(s) over ranks, for popularity-skewed
//    pattern pools and client placement.
//  - skewed_node_ids: non-uniform node placement (u^skew), leaving a few
//    nodes owning most of the identifier circle.
//  - FlashCrowd / AdversarialSpec: a declarative scenario — a sector-
//    correlated price shock (StockMarketModel::apply_sector_shock) paired
//    with a query-rate boost over the same interval.
//
// Everything here is seed-deterministic and rng-draw-stable: enabling a
// flash crowd does not perturb the draw sequence of the underlying market,
// so the pre-shock prefix of an adversarial run is byte-identical to the
// benign run with the same seed.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/ring_math.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace sdsi::streams {

/// Inverse-CDF sampler for the Zipf distribution over ranks {0, .., n-1}:
/// P(rank = k) proportional to 1 / (k + 1)^exponent. Table-driven, so one
/// sample costs a binary search and exactly one rng draw (determinism:
/// enabling skew consumes the same number of draws per call site no matter
/// the exponent).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  /// Draws one rank (one uniform01 draw).
  std::size_t sample(common::Pcg32& rng) const;

  std::size_t size() const noexcept { return cdf_.size(); }
  double exponent() const noexcept { return exponent_; }

 private:
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
  double exponent_;
};

/// Non-uniform node placement on the identifier circle: ids are drawn as
/// u^skew scaled to the id space (sorted, deduplicated by nudging), so most
/// nodes crowd into the low arc while a handful own huge high-arc ranges —
/// the worst case for content routing's "load follows keys" argument.
/// skew = 1 reduces to uniform placement; the uniform hash placement of
/// routing::hash_node_ids remains the default everywhere.
std::vector<Key> skewed_node_ids(std::size_t count, common::IdSpace space,
                                 std::uint64_t seed, double skew);

/// One sector-correlated flash crowd: at `at_seconds` (absolute simulation
/// time; warmup starts at 0) the given sector's factor gets an additive
/// `magnitude` shock for `steps` market steps, marching every ticker of the
/// sector in lockstep — their DFT keys converge onto one narrow arc. Over
/// the same window the query arrival rate is multiplied by `query_boost`
/// (the crowd *asks* about what is moving).
struct FlashCrowd {
  std::size_t sector = 0;
  double magnitude = 0.03;  // per-step additive sector log-return
  int steps = 40;
  double at_seconds = 0.0;
  double query_boost = 4.0;
  double boost_duration_seconds = 20.0;
};

/// Full adversarial-workload scenario consumed by core::Experiment.
struct AdversarialSpec {
  /// Query patterns draw from a pool of `pattern_pool` fixed base patterns
  /// with Zipf(zipf_exponent)-distributed popularity, instead of a fresh
  /// random pattern per query: popular patterns concentrate subscriptions
  /// onto the arcs owning their key ranges. 0 keeps per-query patterns.
  std::size_t pattern_pool = 8;
  double zipf_exponent = 1.1;

  /// Query *clients* are drawn Zipf(zipf_exponent) over node rank instead of
  /// uniformly (a few data centers pose most queries). False keeps uniform.
  bool zipf_clients = false;

  /// Node-id placement skew (see skewed_node_ids); 0 keeps uniform hashing.
  double placement_skew = 0.0;

  /// Optional flash-crowd event (stock family only).
  std::optional<FlashCrowd> flash_crowd;
};

}  // namespace sdsi::streams
