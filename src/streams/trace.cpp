#include "streams/trace.hpp"

#include <algorithm>
#include <charconv>
#include <istream>
#include <ostream>

#include "common/check.hpp"

namespace sdsi::streams {

namespace {

// Parses one CSV field with std::from_chars semantics; trims spaces.
std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' ||
                           text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

template <typename T>
T parse_number(std::string_view field, std::size_t line, const char* what) {
  field = trim(field);
  T value{};
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    throw TraceParseError(line, std::string("bad ") + what + " '" +
                                    std::string(field) + "'");
  }
  return value;
}

// Shortest representation that round-trips exactly through from_chars.
std::string format_double(double value) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  SDSI_CHECK(ec == std::errc{});
  return std::string(buf, ptr);
}

}  // namespace

void write_trace(std::ostream& out, std::span<const TraceRecord> records) {
  out << "# sdsi stream trace v1: stream_id,timestamp_seconds,value\n";
  for (const TraceRecord& record : records) {
    out << record.stream << ',' << format_double(record.timestamp) << ','
        << format_double(record.value) << '\n';
  }
}

std::vector<TraceRecord> read_trace(std::istream& in) {
  std::vector<TraceRecord> records;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view text = trim(line);
    if (text.empty() || text.front() == '#') {
      continue;
    }
    const std::size_t first_comma = text.find(',');
    const std::size_t second_comma =
        first_comma == std::string_view::npos
            ? std::string_view::npos
            : text.find(',', first_comma + 1);
    if (first_comma == std::string_view::npos ||
        second_comma == std::string_view::npos ||
        text.find(',', second_comma + 1) != std::string_view::npos) {
      throw TraceParseError(line_number,
                            "expected exactly 3 comma-separated fields");
    }
    TraceRecord record;
    record.stream = parse_number<StreamId>(text.substr(0, first_comma),
                                           line_number, "stream id");
    record.timestamp = parse_number<double>(
        text.substr(first_comma + 1, second_comma - first_comma - 1),
        line_number, "timestamp");
    record.value =
        parse_number<double>(text.substr(second_comma + 1), line_number,
                             "value");
    records.push_back(record);
  }
  return records;
}

std::vector<TraceRecord> record_generator(StreamGenerator& generator,
                                          StreamId stream, std::size_t count,
                                          double period_seconds) {
  SDSI_CHECK(period_seconds > 0.0);
  std::vector<Sample> values(count);
  generator.next_span(values);
  std::vector<TraceRecord> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    records.push_back(TraceRecord{
        stream, static_cast<double>(i) * period_seconds, values[i]});
  }
  return records;
}

TraceReplayGenerator::TraceReplayGenerator(
    std::span<const TraceRecord> records, StreamId stream)
    : stream_(stream) {
  std::vector<std::pair<double, Sample>> mine;
  for (const TraceRecord& record : records) {
    if (record.stream == stream) {
      mine.emplace_back(record.timestamp, record.value);
    }
  }
  std::stable_sort(mine.begin(), mine.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  values_.reserve(mine.size());
  for (const auto& [timestamp, value] : mine) {
    values_.push_back(value);
  }
}

Sample TraceReplayGenerator::next() {
  if (exhausted()) {
    throw std::out_of_range("trace replay for stream " +
                            std::to_string(stream_) + " is exhausted");
  }
  return values_[position_++];
}

void TraceReplayGenerator::next_span(std::span<Sample> out) {
  if (out.size() > remaining()) {
    throw std::out_of_range("trace replay for stream " +
                            std::to_string(stream_) + " is exhausted");
  }
  std::copy_n(values_.begin() + static_cast<std::ptrdiff_t>(position_),
              out.size(), out.begin());
  position_ += out.size();
}

}  // namespace sdsi::streams
