#include "streams/ecm_sketch.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace sdsi::streams {

void ExpHistogram::add(std::uint64_t t) {
  buckets_.push_back(Bucket{t, 1});
  // Cascade merges: whenever more than k+1 buckets share a size, merge the
  // two oldest of that size into one of twice the size (keeping the newer
  // timestamp — the newest arrival the merged bucket covers).
  std::uint64_t size = 1;
  while (true) {
    std::size_t count = 0;
    std::size_t first = buckets_.size();
    std::size_t second = buckets_.size();
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i].size == size) {
        ++count;
        if (first == buckets_.size()) {
          first = i;
        } else if (second == buckets_.size()) {
          second = i;
        }
      }
    }
    if (count <= k_ + 1) {
      break;
    }
    buckets_[second].size = size * 2;
    buckets_.erase(buckets_.begin() + static_cast<std::ptrdiff_t>(first));
    size *= 2;
  }
}

std::uint64_t ExpHistogram::estimate(std::uint64_t t,
                                     std::uint64_t window) const {
  const std::uint64_t cutoff = t >= window ? t - window : 0;
  std::uint64_t total = 0;
  std::uint64_t oldest = 0;
  for (const Bucket& bucket : buckets_) {
    if (bucket.time <= cutoff) {
      continue;  // fully expired
    }
    if (oldest == 0) {
      oldest = bucket.size;
    }
    total += bucket.size;
  }
  // Standard EH estimator: the oldest surviving bucket straddles the window
  // edge, so count half of it.
  return total - oldest / 2;
}

std::uint64_t ExpHistogram::oldest_surviving_size(std::uint64_t t,
                                                  std::uint64_t window) const {
  const std::uint64_t cutoff = t >= window ? t - window : 0;
  for (const Bucket& bucket : buckets_) {
    if (bucket.time > cutoff) {
      return bucket.size;
    }
  }
  return 0;
}

namespace {

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

EcmSketch::EcmSketch(Options options) : options_(options) {
  SDSI_CHECK(options_.window >= 1);
  SDSI_CHECK(options_.width >= 1);
  SDSI_CHECK(options_.depth >= 1);
  common::SplitMix64 salts(options_.seed);
  row_salt_.reserve(options_.depth);
  for (std::size_t r = 0; r < options_.depth; ++r) {
    row_salt_.push_back(salts.next());
  }
  cells_.assign(options_.depth * options_.width, ExpHistogram(options_.eh_k));
}

std::size_t EcmSketch::cell_of(std::size_t row,
                               std::uint64_t level) const noexcept {
  return static_cast<std::size_t>(mix64(row_salt_[row] ^ level) %
                                  options_.width);
}

void EcmSketch::add(std::uint64_t level, std::uint64_t t) {
  for (std::size_t r = 0; r < options_.depth; ++r) {
    cells_[r * options_.width + cell_of(r, level)].add(t);
  }
}

std::uint64_t EcmSketch::estimate(std::uint64_t level, std::uint64_t t) const {
  std::uint64_t best = ~0ull;
  for (std::size_t r = 0; r < options_.depth; ++r) {
    best = std::min(
        best,
        cells_[r * options_.width + cell_of(r, level)].estimate(
            t, options_.window));
  }
  return best == ~0ull ? 0 : best;
}

EcmStreamSummarizer::EcmStreamSummarizer(Options options)
    : options_(options),
      sketch_(EcmSketch::Options{options.window, options.width, options.depth,
                                 options.eh_k, options.seed}) {
  SDSI_CHECK(options_.window >= 2);
  SDSI_CHECK(options_.bins >= 2 && options_.bins % 2 == 0);
  SDSI_CHECK(options_.z_span > 0.0);
  ring_.assign(options_.window, 0.0);
}

std::size_t EcmStreamSummarizer::bin_of(Sample value) const noexcept {
  const double var =
      seen_ > 1 ? run_m2_ / static_cast<double>(seen_ - 1) : 0.0;
  const double sigma = std::sqrt(var);
  const double z = sigma > 0.0 ? (value - run_mean_) / sigma : 0.0;
  const double unit =
      (z + options_.z_span) / (2.0 * options_.z_span);  // -> [0, 1]
  const auto bins = static_cast<double>(options_.bins);
  const double scaled = std::floor(unit * bins);
  if (scaled < 0.0) {
    return 0;
  }
  if (scaled >= bins) {
    return options_.bins - 1;
  }
  return static_cast<std::size_t>(scaled);
}

void EcmStreamSummarizer::push(Sample value) {
  // Welford update first: the very first sample sees sigma 0 and bins to
  // the center, which is fine — binning only needs to be a deterministic
  // function of the prefix, not a perfect scale.
  ++seen_;
  const double delta = value - run_mean_;
  run_mean_ += delta / static_cast<double>(seen_);
  run_m2_ += delta * (value - run_mean_);
  ring_[static_cast<std::size_t>((seen_ - 1) % options_.window)] = value;
  sketch_.add(bin_of(value), seen_);
}

bool EcmStreamSummarizer::features_into(dsp::FeatureVector& out) const {
  if (!ready()) {
    return false;
  }
  const std::size_t bins = options_.bins;
  // Coordinate order: central bin first (the routing coordinate), then the
  // remaining bins ascending. Central mass varies the most across windows,
  // which is what the Eq. 6 arc placement needs to spread load.
  double values[2];  // staging for one complex coordinate
  double norm_sq = 0.0;
  std::vector<double> mass(bins);
  std::size_t coord = 0;
  const std::size_t central = bins / 2;
  for (std::size_t j = 0; j < bins; ++j) {
    const std::size_t bin =
        j == 0 ? central : (j <= central ? j - 1 : j);
    mass[coord] = std::sqrt(
        static_cast<double>(sketch_.estimate(bin, seen_)));
    norm_sq += mass[coord] * mass[coord];
    ++coord;
  }
  if (norm_sq <= 0.0) {
    return false;
  }
  const double inv_norm = 1.0 / std::sqrt(norm_sq);
  const auto coeffs = out.overwrite(bins / 2);
  for (std::size_t c = 0; c < bins / 2; ++c) {
    values[0] = mass[2 * c] * inv_norm;
    values[1] = mass[2 * c + 1] * inv_norm;
    coeffs[c] = dsp::Complex(values[0], values[1]);
  }
  return true;
}

void EcmStreamSummarizer::copy_window(std::vector<Sample>& out) const {
  const auto window = options_.window;
  const auto count = static_cast<std::size_t>(
      std::min<std::uint64_t>(seen_, window));
  out.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = ring_[static_cast<std::size_t>((seen_ - count + i) % window)];
  }
}

}  // namespace sdsi::streams
