#include "dsp/haar.hpp"
#include "streams/summarizer.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace sdsi::streams {

namespace {

constexpr double kTinyNorm = 1e-12;

}  // namespace

StreamSummarizer::StreamSummarizer(dsp::FeatureConfig config)
    : config_(config),
      dft_(config.window_size,
           config.first_coefficient() + config.num_coefficients) {
  config_.validate();
}

void StreamSummarizer::push(Sample value) {
  const Sample evicted = dft_.push(value);
  window_sum_ += value - evicted;
  window_sum_sq_ += value * value - evicted * evicted;
  if (reanchor_interval_ != 0 && dft_.samples_seen() % reanchor_interval_ == 0) {
    reanchor();
  }
}

void StreamSummarizer::push_span(std::span<const Sample> values) {
  std::array<Sample, 256> evicted;
  while (!values.empty()) {
    std::size_t n = std::min(values.size(), evicted.size());
    if (reanchor_interval_ != 0) {
      // Stop each chunk at the next re-anchor boundary so drift control
      // fires at exactly the same samples as the one-at-a-time path.
      const std::uint64_t until =
          reanchor_interval_ - dft_.samples_seen() % reanchor_interval_;
      n = std::min<std::size_t>(
          n, static_cast<std::size_t>(
                 std::min<std::uint64_t>(until, evicted.size())));
    }
    dft_.push_span(values.first(n), std::span<Sample>(evicted).first(n));
    for (std::size_t i = 0; i < n; ++i) {
      window_sum_ += values[i] - evicted[i];
      window_sum_sq_ += values[i] * values[i] - evicted[i] * evicted[i];
    }
    if (reanchor_interval_ != 0 &&
        dft_.samples_seen() % reanchor_interval_ == 0) {
      reanchor();
    }
    values = values.subspan(n);
  }
}

void StreamSummarizer::reanchor() {
  dft_.recompute_exact();
  window_sum_ = 0.0;
  window_sum_sq_ = 0.0;
  for (const Sample x : dft_.window()) {
    window_sum_ += x;
    window_sum_sq_ += x * x;
  }
}

double StreamSummarizer::window_mean() const noexcept {
  return window_sum_ / static_cast<double>(config_.window_size);
}

double StreamSummarizer::normalization_denominator() const noexcept {
  const auto n = static_cast<double>(config_.window_size);
  if (config_.normalization == dsp::Normalization::kZNormalize) {
    // ||x - mean||^2 = sum(x^2) - N * mean^2; clamp against cancellation.
    const double mu = window_sum_ / n;
    return std::sqrt(std::max(window_sum_sq_ - n * mu * mu, 0.0));
  }
  return std::sqrt(std::max(window_sum_sq_, 0.0));
}

std::optional<dsp::FeatureVector> StreamSummarizer::features() const {
  dsp::FeatureVector out;
  if (!features_into(out)) {
    return std::nullopt;
  }
  return out;
}

bool StreamSummarizer::features_into(dsp::FeatureVector& out) const {
  if (!ready()) {
    return false;
  }
  const double denom = normalization_denominator();
  if (denom < kTinyNorm) {
    return false;
  }
  const std::size_t first = config_.first_coefficient();
  const std::span<dsp::Complex> coeffs =
      out.overwrite(config_.num_coefficients);
  if (config_.synopsis == dsp::Synopsis::kHaar) {
    // No O(k) incremental update exists for a sliding Haar transform, so
    // this mode recomputes from the raw window: O(W) per call. The same
    // normalization identity applies — only coefficient 0 carries the mean,
    // so dividing the retained raw coefficients by the denominator yields
    // the normalized synopsis.
    const std::vector<double> raw = dsp::haar_transform(dft_.window());
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
      coeffs[i] = dsp::Complex{raw[first + i] / denom, 0.0};
    }
    return true;
  }
  const auto raw = dft_.coefficients();
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    coeffs[i] = raw[first + i] / denom;
  }
  return true;
}

}  // namespace sdsi::streams
