// Per-stream incremental summarizer: raw samples in, normalized feature
// vectors out, O(k) per sample.
//
// Normalization (Eqs. 1-2) conceptually happens before the DFT, but
// recomputing a normalized window per arrival would cost O(N). Linearity of
// the DFT saves us (the StatStream identity): for F >= 1, the coefficients
// of the mean-centered window equal those of the raw window, so
//
//   znorm:  X̂_F = X_F(raw) / ||x - mean||    (F >= 1)
//   unit:   X̂_F = X_F(raw) / ||x||           (all F)
//
// and both denominators are maintainable from running window sums. So one
// SlidingDft over raw samples plus two running sums produce exactly the
// features of Sec III-C incrementally.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "dsp/features.hpp"
#include "dsp/sliding_dft.hpp"

namespace sdsi::streams {

class StreamSummarizer {
 public:
  explicit StreamSummarizer(dsp::FeatureConfig config);

  const dsp::FeatureConfig& config() const noexcept { return config_; }

  /// Feeds one raw sample.
  void push(Sample value);

  /// Feeds a batch of raw samples through the batched SlidingDft path.
  /// Behaviorally identical to pushing them one by one (including the
  /// placement of drift re-anchor points), minus the per-sample overhead.
  void push_span(std::span<const Sample> values);

  /// True once a full window has been observed.
  bool ready() const noexcept { return dft_.full(); }

  /// Samples still needed before ready() flips (0 once ready). While this
  /// exceeds 1 the next sample produces no features, so bulk ingestion can
  /// push that cold prefix through push_span without consulting features()
  /// in between.
  std::size_t samples_until_ready() const noexcept {
    return dft_.samples_until_full();
  }

  std::uint64_t samples_seen() const noexcept { return dft_.samples_seen(); }

  /// Current normalized feature vector; nullopt until ready() or when the
  /// window is degenerate (constant for znorm / all-zero for unit norm),
  /// in which case it has no well-defined direction on the unit sphere.
  std::optional<dsp::FeatureVector> features() const;

  /// Allocation-free variant for per-tick hot paths: overwrites `out` in
  /// place (reusing its capacity) and returns true, or returns false in
  /// exactly the cases features() returns nullopt. `out` is unchanged on
  /// false.
  bool features_into(dsp::FeatureVector& out) const;

  /// Mean of the current raw window.
  double window_mean() const noexcept;

  /// L2 norm of the (centered, for znorm) raw window — the normalization
  /// denominator.
  double normalization_denominator() const noexcept;

  /// Copy of the raw window (oldest first).
  std::vector<Sample> raw_window() const { return dft_.window(); }

  /// How many samples between exact re-anchorings of the incremental state
  /// (floating-point drift control). 0 disables.
  void set_reanchor_interval(std::uint64_t interval) noexcept {
    reanchor_interval_ = interval;
  }

 private:
  void reanchor();

  dsp::FeatureConfig config_;
  dsp::SlidingDft dft_;
  double window_sum_ = 0.0;
  double window_sum_sq_ = 0.0;
  std::uint64_t reanchor_interval_ = 8192;
};

}  // namespace sdsi::streams
