// Workload stream generators.
//
// The paper evaluates on (a) synthetic random-walk streams, (b) S&P 500
// historical stock data, and (c) CMU Host Load traces. The real datasets'
// download links are long dead, so (b) and (c) are replaced by synthetic
// models that preserve the property each experiment actually exercises:
// cross-stream correlation structure for the stock data, and strong temporal
// autocorrelation ("Fourier locality", Fig 3b) for the host-load traces.
// See DESIGN.md §2 for the substitution rationale.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace sdsi::streams {

/// A source of one unbounded data stream.
class StreamGenerator {
 public:
  virtual ~StreamGenerator() = default;

  /// Produces the next data point.
  virtual Sample next() = 0;

  /// Fills `out` with the next out.size() data points. The default loops
  /// next(); generators with a cheaper bulk path (trace replay) override it.
  /// Pairs with StreamSummarizer::push_span for batched ingestion.
  virtual void next_span(std::span<Sample> out) {
    for (Sample& x : out) {
      x = next();
    }
  }

  /// Human-readable model name (appears in workload descriptions).
  virtual std::string name() const = 0;
};

/// The paper's synthetic model: x_t = x_{t-1} + r with r uniform in
/// [step_low, step_high], starting from a constant x_0.
class RandomWalkGenerator final : public StreamGenerator {
 public:
  RandomWalkGenerator(common::Pcg32 rng, Sample start = 0.0,
                      Sample step_low = -1.0, Sample step_high = 1.0);

  Sample next() override;
  std::string name() const override { return "random-walk"; }

 private:
  common::Pcg32 rng_;
  Sample value_;
  Sample step_low_;
  Sample step_high_;
};

/// CMU-host-load-like trace: mean-reverting AR(1) baseline + diurnal
/// sinusoid + occasional exponential bursts, clipped to be non-negative.
/// Strongly autocorrelated by construction, which is the property Fig 3(b)
/// demonstrates.
class HostLoadGenerator final : public StreamGenerator {
 public:
  struct Params {
    double base_load = 1.0;        // long-run mean load
    double ar_coefficient = 0.97;  // AR(1) pull toward the baseline
    double noise_std = 0.05;       // innovation std-dev
    double diurnal_amplitude = 0.3;
    double diurnal_period = 4096;  // samples per "day"
    double burst_probability = 0.002;
    double burst_magnitude = 2.0;
    double burst_decay = 0.9;      // bursts decay geometrically
  };

  explicit HostLoadGenerator(common::Pcg32 rng)
      : HostLoadGenerator(rng, Params{}) {}
  HostLoadGenerator(common::Pcg32 rng, Params params);

  Sample next() override;
  std::string name() const override { return "host-load"; }

 private:
  common::Pcg32 rng_;
  Params params_;
  double deviation_ = 0.0;  // AR(1) state around the diurnal baseline
  double burst_ = 0.0;
  std::uint64_t tick_ = 0;
};

/// One S&P500-like equity price path from a shared multi-factor market
/// model (see StockMarketModel).
struct DailyBar {
  double open = 0.0;
  double high = 0.0;
  double low = 0.0;
  double close = 0.0;
  double volume = 0.0;
};

/// Correlated geometric-random-walk market: every ticker's log-return is
///   r_i = mu + beta_i * market + gamma_i * sector(s_i) + eps_i
/// so tickers in one sector correlate strongly — the structure correlation
/// queries over stock streams rely on.
class StockMarketModel {
 public:
  struct Params {
    std::size_t num_tickers = 100;
    std::size_t num_sectors = 10;
    double drift = 0.0002;           // per-step log drift
    double market_vol = 0.010;      // market factor volatility
    double sector_vol = 0.006;      // sector factor volatility
    double idiosyncratic_vol = 0.004;
    double initial_price = 100.0;
  };

  explicit StockMarketModel(common::Pcg32 rng)
      : StockMarketModel(rng, Params{}) {}
  StockMarketModel(common::Pcg32 rng, Params params);

  std::size_t num_tickers() const noexcept { return params_.num_tickers; }
  std::size_t sector_of(std::size_t ticker) const noexcept {
    return ticker % params_.num_sectors;
  }
  const std::string& ticker_symbol(std::size_t ticker) const {
    return symbols_[ticker];
  }

  /// Advances the whole market by one trading day; closes()[i] afterwards is
  /// ticker i's new close.
  void step();

  /// Flash-crowd hook (streams/adversarial.hpp): for the next `steps` calls
  /// to step(), add `magnitude` to the given sector's factor move — a
  /// correlated shock that marches every ticker of the sector in lockstep,
  /// piling their DFT keys onto one narrow ring arc. Additive on top of the
  /// sampled sector move, so the rng draw sequence (and therefore every
  /// non-shocked run) is untouched.
  void apply_sector_shock(std::size_t sector, double magnitude, int steps);

  double close(std::size_t ticker) const noexcept { return prices_[ticker]; }

  /// Full OHLCV bar for the last step (high/low/volume synthesized around
  /// the open->close move).
  DailyBar bar(std::size_t ticker) const;

 private:
  common::Pcg32 rng_;
  Params params_;
  std::vector<double> prices_;
  std::vector<double> previous_prices_;
  std::vector<double> betas_;   // per-ticker market loading
  std::vector<double> gammas_;  // per-ticker sector loading
  std::vector<std::string> symbols_;
  std::size_t shock_sector_ = 0;
  double shock_magnitude_ = 0.0;
  int shock_steps_remaining_ = 0;
};

/// Adapter exposing one ticker of a shared StockMarketModel as a
/// StreamGenerator. The model advances one day whenever the *first* ticker
/// is pulled, so all adapters stay synchronized.
class StockTickerStream final : public StreamGenerator {
 public:
  StockTickerStream(std::shared_ptr<StockMarketModel> market,
                    std::size_t ticker)
      : market_(std::move(market)), ticker_(ticker) {}

  Sample next() override {
    if (ticker_ == 0) {
      market_->step();
    }
    return market_->close(ticker_);
  }
  std::string name() const override {
    return "stock:" + market_->ticker_symbol(ticker_);
  }

 private:
  std::shared_ptr<StockMarketModel> market_;
  std::size_t ticker_;
};

/// Poisson arrival process: exponential inter-arrival times with the given
/// rate (events per second). Used for query arrivals (Table I: QRATE).
class PoissonProcess {
 public:
  PoissonProcess(common::Pcg32 rng, double rate_per_second);

  /// Next inter-arrival gap in seconds.
  double next_gap_seconds();

  double rate() const noexcept { return rate_; }

 private:
  common::Pcg32 rng_;
  double rate_;
};

}  // namespace sdsi::streams
