// Stream trace I/O: persist and replay workloads.
//
// The paper's evaluation mixes synthetic streams with file-based datasets
// (S&P500 records, CMU host-load traces). This module gives the library the
// same capability: dump any generator to a CSV trace, load traces back, and
// replay them through the standard StreamGenerator interface — so recorded
// real-world data slots into every example, test, and bench unchanged.
//
// Format: one record per line, `stream_id,timestamp,value`, '#' comments and
// blank lines ignored.
#pragma once

#include <iosfwd>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "streams/generators.hpp"

namespace sdsi::streams {

struct TraceRecord {
  StreamId stream = 0;
  double timestamp = 0.0;  // seconds; monotone non-decreasing per stream
  Sample value = 0.0;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// Thrown on malformed trace input, with the 1-based line number.
class TraceParseError : public std::runtime_error {
 public:
  TraceParseError(std::size_t line, const std::string& what)
      : std::runtime_error("trace line " + std::to_string(line) + ": " + what),
        line_(line) {}
  std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Writes records as CSV (with a header comment).
void write_trace(std::ostream& out, std::span<const TraceRecord> records);

/// Parses a CSV trace; throws TraceParseError on malformed lines.
std::vector<TraceRecord> read_trace(std::istream& in);

/// Captures `count` values of `generator` as a trace for `stream`, spacing
/// timestamps by `period_seconds`.
std::vector<TraceRecord> record_generator(StreamGenerator& generator,
                                          StreamId stream, std::size_t count,
                                          double period_seconds);

/// Replays one stream's values from a trace, in timestamp order, through the
/// StreamGenerator interface. next() past the end throws std::out_of_range
/// (exhausted() tells you first).
class TraceReplayGenerator final : public StreamGenerator {
 public:
  TraceReplayGenerator(std::span<const TraceRecord> records, StreamId stream);

  bool exhausted() const noexcept { return position_ >= values_.size(); }
  std::size_t remaining() const noexcept {
    return values_.size() - position_;
  }

  Sample next() override;

  /// Bulk replay: one bounds check + contiguous copy instead of a virtual
  /// call per sample.
  void next_span(std::span<Sample> out) override;

  std::string name() const override {
    return "trace:" + std::to_string(stream_);
  }

 private:
  std::vector<Sample> values_;
  std::size_t position_ = 0;
  StreamId stream_;
};

}  // namespace sdsi::streams
