#include "streams/adversarial.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace sdsi::streams {

ZipfSampler::ZipfSampler(std::size_t n, double exponent)
    : exponent_(exponent) {
  SDSI_CHECK(n >= 1);
  SDSI_CHECK(exponent >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = total;
  }
  for (double& c : cdf_) {
    c /= total;
  }
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfSampler::sample(common::Pcg32& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? cdf_.size() - 1
                          : static_cast<std::size_t>(it - cdf_.begin());
}

std::vector<Key> skewed_node_ids(std::size_t count, common::IdSpace space,
                                 std::uint64_t seed, double skew) {
  SDSI_CHECK(count >= 1);
  SDSI_CHECK(skew > 0.0);
  common::Pcg32 rng(seed, 0x5eedu);
  // 2^m as a double; exact for m <= 53 and close enough above (ids are
  // wrapped into the space afterwards).
  const double span = std::ldexp(1.0, static_cast<int>(space.bits()));
  std::vector<Key> ids;
  ids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double u = std::pow(rng.uniform01(), skew);
    ids.push_back(space.wrap(static_cast<Key>(u * span)));
  }
  std::sort(ids.begin(), ids.end());
  // Substrates require distinct ids: nudge collisions clockwise (count is
  // always tiny relative to the space, so this terminates immediately).
  for (std::size_t i = 1; i < ids.size(); ++i) {
    if (ids[i] <= ids[i - 1]) {
      ids[i] = space.wrap(ids[i - 1] + 1);
    }
  }
  return ids;
}

}  // namespace sdsi::streams
