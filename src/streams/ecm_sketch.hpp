// ECM-sketch: sliding-window frequency estimation for distributed streams
// (Papapetrou, Garofalakis, Deligiannakis — "Sketch-based Querying of
// Distributed Sliding-Window Data Streams", PAPERS.md).
//
// The structure is a Count-Min array whose counters are exponential
// histograms (Datar et al.) instead of plain integers: each cell answers
// "how many of the last W arrivals hashed here", so the whole sketch
// answers per-item sliding-window counts with
//
//   count-based window error:  EH relative error <= 1/(2k) per cell
//   hash-collision error:      CM overestimate, bounded by e/width * W
//                              per row w.h.p.; the min over depth rows is
//                              what the sketch reports.
//
// EcmStreamSummarizer builds the middleware's per-stream summary on top:
// samples are z-scaled by running stream statistics, quantized into `bins`
// value bins, counted by the sketch, and the feature vector is the unit-L2
// sqrt-frequency (Hellinger) embedding of the estimated window histogram —
// every coordinate in [0, 1], so the Eq. 6 content-to-key map and the MBR
// index apply unchanged. docs/STRATEGIES.md has the design sheet.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "dsp/features.hpp"

namespace sdsi::streams {

/// Exponential histogram over a count-based sliding window: counts how many
/// of the last `window` arrivals were recorded, with relative error bounded
/// by the merge threshold k (at most k+1 buckets per size; the only
/// uncertainty is the half-open oldest bucket).
class ExpHistogram {
 public:
  explicit ExpHistogram(std::size_t k) : k_(k) { SDSI_CHECK(k >= 1); }

  /// Records one arrival at time `t` (a monotone arrival index).
  void add(std::uint64_t t);

  /// Estimated arrivals in the window (t - window, t]. Const: expired
  /// buckets are skipped here and physically pruned on the next add().
  std::uint64_t estimate(std::uint64_t t, std::uint64_t window) const;

  /// Exact upper/lower envelope of the estimate: the true count always lies
  /// in [estimate - oldest/2, estimate + oldest/2] for the surviving oldest
  /// bucket (the EH guarantee the error-bound tests pin).
  std::uint64_t oldest_surviving_size(std::uint64_t t,
                                      std::uint64_t window) const;

  std::size_t bucket_count() const noexcept { return buckets_.size(); }

 private:
  struct Bucket {
    std::uint64_t time = 0;  // newest arrival the bucket covers
    std::uint64_t size = 0;  // power of two
  };

  std::size_t k_;
  std::vector<Bucket> buckets_;  // oldest first
};

/// Count-Min of exponential histograms over item levels in [0, levels).
class EcmSketch {
 public:
  struct Options {
    std::size_t window = 256;  // sliding window W (arrival count)
    std::size_t width = 32;    // CM cells per row
    std::size_t depth = 3;     // CM rows (estimate = min over rows)
    std::size_t eh_k = 8;      // EH merge threshold
    std::uint64_t seed = 0xec5eedULL;
  };

  explicit EcmSketch(Options options);

  const Options& options() const noexcept { return options_; }

  /// Records one arrival of `level` at arrival index `t`.
  void add(std::uint64_t level, std::uint64_t t);

  /// Estimated number of arrivals of `level` in (t - window, t].
  std::uint64_t estimate(std::uint64_t level, std::uint64_t t) const;

 private:
  std::size_t cell_of(std::size_t row, std::uint64_t level) const noexcept;

  Options options_;
  std::vector<std::uint64_t> row_salt_;
  std::vector<ExpHistogram> cells_;  // depth x width, row-major
};

/// The ECM strategy's per-stream summarizer (adapted into core::Summarizer
/// by core/strategy.cpp). Keeps the exact raw ring alongside the sketch:
/// the ring answers local inner-product queries and the window statistics;
/// the *sketch* is what the routed features are computed from.
class EcmStreamSummarizer {
 public:
  struct Options {
    std::size_t window = 256;
    std::size_t bins = 8;   // feature dims; even (packed 2 per complex)
    double z_span = 3.0;    // quantization domain: z in [-z_span, z_span]
    std::size_t width = 32;
    std::size_t depth = 3;
    std::size_t eh_k = 8;
    std::uint64_t seed = 0xec5eedULL;
  };

  explicit EcmStreamSummarizer(Options options);

  void push(Sample value);
  void push_span(std::span<const Sample> values) {
    for (const Sample value : values) {
      push(value);
    }
  }

  bool ready() const noexcept { return seen_ >= options_.window; }
  std::size_t samples_until_ready() const noexcept {
    return seen_ >= options_.window
               ? 0
               : options_.window - static_cast<std::size_t>(seen_);
  }
  std::uint64_t samples_seen() const noexcept { return seen_; }

  /// Unit-L2 sqrt-frequency embedding of the estimated window histogram,
  /// `bins/2` complex coordinates. Coordinate 0 (the routing coordinate) is
  /// the central bin's mass — the one that varies most across windows.
  /// False until ready() or if the estimated histogram is empty.
  bool features_into(dsp::FeatureVector& out) const;

  /// Exact raw window, oldest first (inner-product answering).
  void copy_window(std::vector<Sample>& out) const;

  /// The bin a sample quantizes into right now (running z-scaling).
  std::size_t bin_of(Sample value) const noexcept;

  const EcmSketch& sketch() const noexcept { return sketch_; }

 private:
  Options options_;
  EcmSketch sketch_;
  std::vector<Sample> ring_;
  std::uint64_t seen_ = 0;
  // Welford running statistics over ALL samples seen (not just the window):
  // a slowly-adapting scale, so quantization of past arrivals stays
  // approximately consistent with the current binning.
  double run_mean_ = 0.0;
  double run_m2_ = 0.0;
};

}  // namespace sdsi::streams
