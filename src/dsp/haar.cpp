#include "dsp/haar.hpp"

#include <bit>
#include <cmath>

#include "common/check.hpp"

namespace sdsi::dsp {

namespace {

constexpr double kInvSqrt2 = 0.7071067811865475244;

}  // namespace

std::vector<double> haar_transform(std::span<const Sample> signal) {
  const std::size_t n = signal.size();
  SDSI_CHECK(n > 0 && std::has_single_bit(n));
  std::vector<double> work(signal.begin(), signal.end());
  std::vector<double> out(n);
  // Repeated averaging/differencing; details of level l land at
  // [len, 2*len) as the window halves, producing coarse-to-fine order.
  std::size_t len = n;
  while (len > 1) {
    len /= 2;
    for (std::size_t i = 0; i < len; ++i) {
      const double a = work[2 * i];
      const double b = work[2 * i + 1];
      out[i] = (a + b) * kInvSqrt2;        // approximations
      out[len + i] = (a - b) * kInvSqrt2;  // details of this level
    }
    for (std::size_t i = 0; i < 2 * len; ++i) {
      work[i] = out[i];
    }
  }
  return work;
}

std::vector<Sample> inverse_haar(std::span<const double> coefficients) {
  const std::size_t n = coefficients.size();
  SDSI_CHECK(n > 0 && std::has_single_bit(n));
  std::vector<double> work(coefficients.begin(), coefficients.end());
  std::vector<double> out(n);
  std::size_t len = 1;
  while (len < n) {
    for (std::size_t i = 0; i < len; ++i) {
      const double approx = work[i];
      const double detail = work[len + i];
      out[2 * i] = (approx + detail) * kInvSqrt2;
      out[2 * i + 1] = (approx - detail) * kInvSqrt2;
    }
    for (std::size_t i = 0; i < 2 * len; ++i) {
      work[i] = out[i];
    }
    len *= 2;
  }
  return work;
}

std::vector<Sample> inverse_haar_prefix(std::span<const double> prefix,
                                        std::size_t size) {
  SDSI_CHECK(prefix.size() <= size);
  std::vector<double> padded(size, 0.0);
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    padded[i] = prefix[i];
  }
  return inverse_haar(padded);
}

}  // namespace sdsi::dsp
