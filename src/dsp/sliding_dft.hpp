// Incremental sliding-window DFT (paper Eq. 5, after Goldin & Kanellakis).
//
// Maintains the first `k` unitary DFT coefficients of the most recent
// window of N samples in O(k) per arriving data point:
//
//   X'_F = e^{i 2π F / N} * ( X_F + (x_new - x_old) / sqrt(N) )
//
// This is what makes per-item processing constant-time instead of the
// prohibitive O(N log N) recompute-from-scratch the paper warns about.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "dsp/dft.hpp"

namespace sdsi::dsp {

class SlidingDft {
 public:
  /// Tracks coefficients 0..k-1 of a window of `window_size` samples.
  SlidingDft(std::size_t window_size, std::size_t num_coefficients);

  std::size_t window_size() const noexcept { return window_size_; }
  std::size_t num_coefficients() const noexcept { return coeffs_.size(); }

  /// Number of samples pushed so far (saturates semantics: full() once
  /// >= window_size).
  std::uint64_t samples_seen() const noexcept { return seen_; }
  bool full() const noexcept { return seen_ >= window_size_; }

  /// Feeds one sample and returns the evicted one (0 while the window is
  /// still filling, because the pre-fill window is treated as zero-padded).
  /// Until the window fills, coefficients are built up incrementally over
  /// the zero-padded prefix; once full, each push is the Eq. 5
  /// rotation-and-correct update.
  Sample push(Sample value);

  /// Current coefficients 0..k-1 of the window's unitary DFT. Only
  /// meaningful once full().
  std::span<const Complex> coefficients() const noexcept { return coeffs_; }

  /// Copy of the current window in arrival order (oldest first). O(N).
  std::vector<Sample> window() const;

  /// Recomputes all k coefficients from the stored window with the naive
  /// DFT — used by tests to bound incremental drift, and callable by
  /// long-running deployments to re-anchor floating-point error.
  void recompute_exact();

 private:
  std::size_t window_size_;
  std::uint64_t seen_ = 0;
  std::vector<Complex> coeffs_;      // running X_F for F in [0, k)
  std::vector<Complex> twiddles_;    // e^{i 2π F / N}
  std::vector<Sample> ring_;         // circular buffer of the window
  std::size_t head_ = 0;             // index of the oldest sample
};

}  // namespace sdsi::dsp
