// Incremental sliding-window DFT (paper Eq. 5, after Goldin & Kanellakis).
//
// Maintains the first `k` unitary DFT coefficients of the most recent
// window of N samples in O(k) per arriving data point:
//
//   X'_F = e^{i 2π F / N} * ( X_F + (x_new - x_old) / sqrt(N) )
//
// This is what makes per-item processing constant-time instead of the
// prohibitive O(N log N) recompute-from-scratch the paper warns about.
//
// Hot-path notes: the 1/sqrt(N) scale and the ring wrap are hoisted out of
// push(); push_span() amortizes the per-call overhead across a batch and
// keeps each coefficient in a register for the whole span (bit-identical to
// repeated push()); recompute_exact() runs off a precomputed N-entry twiddle
// table instead of a cos/sin pair per (F, j) term.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "dsp/dft.hpp"

namespace sdsi::dsp {

class SlidingDft {
 public:
  /// Tracks coefficients 0..k-1 of a window of `window_size` samples.
  SlidingDft(std::size_t window_size, std::size_t num_coefficients);

  std::size_t window_size() const noexcept { return window_size_; }
  std::size_t num_coefficients() const noexcept { return coeffs_.size(); }

  /// Number of samples pushed so far (saturates semantics: full() once
  /// >= window_size).
  std::uint64_t samples_seen() const noexcept { return seen_; }
  bool full() const noexcept { return seen_ >= window_size_; }

  /// Samples still needed before full() flips; 0 once the window filled.
  /// Bulk ingestion uses this to size the feature-less cold prefix it can
  /// route through push_span in one call.
  std::size_t samples_until_full() const noexcept {
    return full() ? 0 : window_size_ - static_cast<std::size_t>(seen_);
  }

  /// Feeds one sample and returns the evicted one (0 while the window is
  /// still filling, because the pre-fill window is treated as zero-padded).
  /// Until the window fills, coefficients are built up incrementally over
  /// the zero-padded prefix; once full, each push is the Eq. 5
  /// rotation-and-correct update.
  Sample push(Sample value);

  /// Feeds a batch of samples; bit-identical to pushing them one by one but
  /// substantially faster (each tracked coefficient stays in a register for
  /// the whole span instead of round-tripping through memory per sample).
  void push_span(std::span<const Sample> values);

  /// Batched push that also reports the evicted samples, oldest first.
  /// `evicted` must be at least values.size() long.
  void push_span(std::span<const Sample> values, std::span<Sample> evicted);

  /// Current coefficients 0..k-1 of the window's unitary DFT. Only
  /// meaningful once full().
  std::span<const Complex> coefficients() const noexcept { return coeffs_; }

  /// Copy of the current window in arrival order (oldest first). O(N).
  std::vector<Sample> window() const;

  /// Recomputes all k coefficients from the stored window with the naive
  /// DFT — used by tests to bound incremental drift, and callable by
  /// long-running deployments to re-anchor floating-point error.
  void recompute_exact();

 private:
  void push_chunk(std::span<const Sample> values, Sample* evicted_out);

  std::size_t window_size_;
  double inv_sqrt_n_;                // hoisted 1/sqrt(N) push scale
  std::uint64_t seen_ = 0;
  std::vector<Complex> coeffs_;      // running X_F for F in [0, k)
  std::vector<Complex> twiddles_;    // e^{i 2π F / N}
  std::vector<Complex> exact_table_; // e^{-i 2π j / N}, lazily built
  std::vector<Sample> ring_;         // circular buffer of the window
  std::size_t head_ = 0;             // index of the oldest sample
};

}  // namespace sdsi::dsp
