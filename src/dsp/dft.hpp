// Discrete Fourier Transform kernels (paper Sec III-C, Eqs. 3-4).
//
// We use the unitary convention the paper states: both directions carry a
// 1/sqrt(N) factor, so the transform preserves signal energy (Parseval) and
// Euclidean distances — the property the whole indexing scheme rests on.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace sdsi::dsp {

using Complex = std::complex<double>;

/// Naive O(N^2) unitary DFT (Eq. 3). Works for any N; reference
/// implementation the FFT is tested against.
std::vector<Complex> naive_dft(std::span<const Sample> signal);

/// Naive O(N^2) unitary inverse DFT (Eq. 4) returning a complex signal.
std::vector<Complex> naive_inverse_dft(std::span<const Complex> spectrum);

/// Iterative radix-2 Cooley-Tukey FFT, unitary scaling. N must be a power of
/// two. O(N log N).
std::vector<Complex> fft(std::span<const Sample> signal);

/// Inverse FFT (unitary). N must be a power of two.
std::vector<Complex> inverse_fft(std::span<const Complex> spectrum);

/// In-place complex radix-2 FFT core without normalization; `invert` flips
/// the exponent sign. Exposed for reuse and direct testing.
void fft_in_place(std::vector<Complex>& data, bool invert);

/// Signal energy sum(x_i^2) — with the unitary DFT this equals
/// sum(|X_F|^2) (Parseval), which tests assert.
double energy(std::span<const Sample> signal) noexcept;

/// Spectrum energy sum(|X_F|^2).
double energy(std::span<const Complex> spectrum) noexcept;

}  // namespace sdsi::dsp
