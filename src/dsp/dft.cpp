#include "dsp/dft.hpp"

#include <bit>
#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace sdsi::dsp {

namespace {

constexpr double kTau = 2.0 * std::numbers::pi;

}  // namespace

std::vector<Complex> naive_dft(std::span<const Sample> signal) {
  const std::size_t n = signal.size();
  SDSI_CHECK(n > 0);
  const double scale = 1.0 / std::sqrt(static_cast<double>(n));
  std::vector<Complex> spectrum(n);
  for (std::size_t f = 0; f < n; ++f) {
    Complex acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = -kTau * static_cast<double>(f) *
                           static_cast<double>(j) / static_cast<double>(n);
      acc += signal[j] * Complex(std::cos(angle), std::sin(angle));
    }
    spectrum[f] = acc * scale;
  }
  return spectrum;
}

std::vector<Complex> naive_inverse_dft(std::span<const Complex> spectrum) {
  const std::size_t n = spectrum.size();
  SDSI_CHECK(n > 0);
  const double scale = 1.0 / std::sqrt(static_cast<double>(n));
  std::vector<Complex> signal(n);
  for (std::size_t j = 0; j < n; ++j) {
    Complex acc{0.0, 0.0};
    for (std::size_t f = 0; f < n; ++f) {
      const double angle = kTau * static_cast<double>(f) *
                           static_cast<double>(j) / static_cast<double>(n);
      acc += spectrum[f] * Complex(std::cos(angle), std::sin(angle));
    }
    signal[j] = acc * scale;
  }
  return signal;
}

void fft_in_place(std::vector<Complex>& data, bool invert) {
  const std::size_t n = data.size();
  SDSI_CHECK(n > 0 && std::has_single_bit(n));

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) {
      j ^= bit;
    }
    j ^= bit;
    if (i < j) {
      std::swap(data[i], data[j]);
    }
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (invert ? kTau : -kTau) / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w{1.0, 0.0};
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Complex u = data[i + j];
        const Complex v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<Complex> fft(std::span<const Sample> signal) {
  std::vector<Complex> data(signal.begin(), signal.end());
  fft_in_place(data, /*invert=*/false);
  const double scale = 1.0 / std::sqrt(static_cast<double>(signal.size()));
  for (Complex& c : data) {
    c *= scale;
  }
  return data;
}

std::vector<Complex> inverse_fft(std::span<const Complex> spectrum) {
  std::vector<Complex> data(spectrum.begin(), spectrum.end());
  fft_in_place(data, /*invert=*/true);
  const double scale = 1.0 / std::sqrt(static_cast<double>(spectrum.size()));
  for (Complex& c : data) {
    c *= scale;
  }
  return data;
}

double energy(std::span<const Sample> signal) noexcept {
  double total = 0.0;
  for (const Sample x : signal) {
    total += x * x;
  }
  return total;
}

double energy(std::span<const Complex> spectrum) noexcept {
  double total = 0.0;
  for (const Complex& c : spectrum) {
    total += std::norm(c);
  }
  return total;
}

}  // namespace sdsi::dsp
