#include "dsp/mbr.hpp"

#include <algorithm>
#include <cmath>

namespace sdsi::dsp {

Mbr::Mbr(const FeatureVector& point) : low_(point.as_reals()), high_(low_) {}

Mbr::Mbr(std::vector<double> low, std::vector<double> high)
    : low_(std::move(low)), high_(std::move(high)) {
  SDSI_CHECK(low_.size() == high_.size());
  for (std::size_t i = 0; i < low_.size(); ++i) {
    SDSI_CHECK(low_[i] <= high_[i]);
  }
}

void Mbr::extend(const FeatureVector& point) {
  // Allocation-free except on first use: this runs once per feature vector
  // of every stream (per-sample hot path through the batcher).
  if (empty()) {
    low_ = point.as_reals();
    high_ = low_;
    return;
  }
  SDSI_CHECK(point.size() * 2 == low_.size());
  for (std::size_t i = 0; i < point.size(); ++i) {
    const double coords[2] = {point[i].real(), point[i].imag()};
    for (std::size_t part = 0; part < 2; ++part) {
      const std::size_t d = 2 * i + part;
      low_[d] = std::min(low_[d], coords[part]);
      high_[d] = std::max(high_[d], coords[part]);
    }
  }
}

void Mbr::extend(const Mbr& other) {
  if (other.empty()) {
    return;
  }
  if (empty()) {
    *this = other;
    return;
  }
  SDSI_CHECK(other.low_.size() == low_.size());
  for (std::size_t i = 0; i < low_.size(); ++i) {
    low_[i] = std::min(low_[i], other.low_[i]);
    high_[i] = std::max(high_[i], other.high_[i]);
  }
}

void Mbr::inflate(double margin) {
  SDSI_CHECK(margin >= 0.0);
  for (std::size_t i = 0; i < low_.size(); ++i) {
    low_[i] -= margin;
    high_[i] += margin;
  }
}

bool Mbr::contains(const FeatureVector& point) const noexcept {
  if (point.size() * 2 != low_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < point.size(); ++i) {
    const double re = point[i].real();
    const double im = point[i].imag();
    if (re < low_[2 * i] || re > high_[2 * i] || im < low_[2 * i + 1] ||
        im > high_[2 * i + 1]) {
      return false;
    }
  }
  return true;
}

double Mbr::min_distance(const FeatureVector& point) const noexcept {
  // Allocation-free: this runs once per (subscription, stored MBR) pair on
  // every notification tick of every node.
  SDSI_DCHECK(!empty());
  SDSI_DCHECK(point.size() * 2 == low_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < point.size(); ++i) {
    const double coords[2] = {point[i].real(), point[i].imag()};
    for (std::size_t part = 0; part < 2; ++part) {
      const std::size_t d = 2 * i + part;
      double gap = 0.0;
      if (coords[part] < low_[d]) {
        gap = low_[d] - coords[part];
      } else if (coords[part] > high_[d]) {
        gap = coords[part] - high_[d];
      }
      total += gap * gap;
    }
  }
  return std::sqrt(total);
}

std::vector<double> Mbr::center() const {
  std::vector<double> mid(low_.size());
  for (std::size_t i = 0; i < low_.size(); ++i) {
    mid[i] = 0.5 * (low_[i] + high_[i]);
  }
  return mid;
}

double Mbr::margin() const noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < low_.size(); ++i) {
    total += high_[i] - low_[i];
  }
  return total;
}

double Mbr::volume() const noexcept {
  double product = empty() ? 0.0 : 1.0;
  for (std::size_t i = 0; i < low_.size(); ++i) {
    product *= high_[i] - low_[i];
  }
  return product;
}

Mbr bounding_box(std::span<const FeatureVector> points) {
  Mbr box;
  for (const FeatureVector& p : points) {
    box.extend(p);
  }
  return box;
}

}  // namespace sdsi::dsp
