#include "dsp/normalize.hpp"

#include <cmath>

#include "common/check.hpp"

namespace sdsi::dsp {

namespace {

// Norms below this are treated as zero (constant / silent windows).
constexpr double kTinyNorm = 1e-12;

}  // namespace

double mean(std::span<const Sample> window) noexcept {
  SDSI_DCHECK(!window.empty());
  double total = 0.0;
  for (const Sample x : window) {
    total += x;
  }
  return total / static_cast<double>(window.size());
}

double l2_norm(std::span<const Sample> window) noexcept {
  double total = 0.0;
  for (const Sample x : window) {
    total += x * x;
  }
  return std::sqrt(total);
}

double pearson_correlation(std::span<const Sample> a,
                           std::span<const Sample> b) noexcept {
  SDSI_DCHECK(a.size() == b.size() && !a.empty());
  const double ma = mean(a);
  const double mb = mean(b);
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  const double denom = std::sqrt(va * vb);
  return denom < kTinyNorm ? 0.0 : cov / denom;
}

std::vector<Sample> z_normalize(std::span<const Sample> window) {
  SDSI_CHECK(!window.empty());
  const double mu = mean(window);
  std::vector<Sample> out(window.size());
  double norm_sq = 0.0;
  for (std::size_t i = 0; i < window.size(); ++i) {
    out[i] = window[i] - mu;
    norm_sq += out[i] * out[i];
  }
  const double norm = std::sqrt(norm_sq);
  if (norm < kTinyNorm) {
    return std::vector<Sample>(window.size(), 0.0);
  }
  for (Sample& x : out) {
    x /= norm;
  }
  return out;
}

std::vector<Sample> unit_normalize(std::span<const Sample> window) {
  SDSI_CHECK(!window.empty());
  const double norm = l2_norm(window);
  if (norm < kTinyNorm) {
    return std::vector<Sample>(window.size(), 0.0);
  }
  std::vector<Sample> out(window.size());
  for (std::size_t i = 0; i < window.size(); ++i) {
    out[i] = window[i] / norm;
  }
  return out;
}

std::vector<Sample> normalize(std::span<const Sample> window,
                              Normalization mode) {
  switch (mode) {
    case Normalization::kZNormalize:
      return z_normalize(window);
    case Normalization::kUnitNormalize:
      return unit_normalize(window);
  }
  SDSI_CHECK(false);
}

double euclidean_distance(std::span<const Sample> a,
                          std::span<const Sample> b) noexcept {
  SDSI_DCHECK(a.size() == b.size());
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return std::sqrt(total);
}

}  // namespace sdsi::dsp
