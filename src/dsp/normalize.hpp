// Stream-window normalizations (paper Eqs. 1-2).
//
// Both map a window onto the unit hyper-sphere, which is what bounds the
// feature coordinates to [-1, 1] and makes the content-based key mapping
// (Eq. 6) well defined:
//  - z-normalization (Eq. 1) removes the mean first, so correlation between
//    streams reduces to Euclidean distance between normalized windows
//    (correlation queries, after Zhu & Shasha's StatStream);
//  - unit normalization (Eq. 2) only divides by the L2 norm (subsequence /
//    pattern queries).
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace sdsi::dsp {

enum class Normalization {
  kZNormalize,     // (x_i - mean) / ||x - mean||  (Eq. 1)
  kUnitNormalize,  // x_i / ||x||                  (Eq. 2)
};

/// Arithmetic mean of the window.
double mean(std::span<const Sample> window) noexcept;

/// L2 norm of the window.
double l2_norm(std::span<const Sample> window) noexcept;

/// Pearson correlation of two equal-length windows (tests use it to verify
/// the correlation <-> distance reduction).
double pearson_correlation(std::span<const Sample> a,
                           std::span<const Sample> b) noexcept;

/// Applies Eq. 1. A constant window (zero variance) maps to the all-zero
/// vector, which matches every stream trivially and is flagged by callers.
std::vector<Sample> z_normalize(std::span<const Sample> window);

/// Applies Eq. 2. A zero window maps to the all-zero vector.
std::vector<Sample> unit_normalize(std::span<const Sample> window);

/// Dispatch over Normalization.
std::vector<Sample> normalize(std::span<const Sample> window,
                              Normalization mode);

/// Euclidean distance between two equal-length windows.
double euclidean_distance(std::span<const Sample> a,
                          std::span<const Sample> b) noexcept;

}  // namespace sdsi::dsp
