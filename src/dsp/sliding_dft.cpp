#include "dsp/sliding_dft.hpp"

#include <array>
#include <cmath>
#include <numbers>

namespace sdsi::dsp {

namespace {

/// Batch deltas are staged through a fixed stack buffer so push_span never
/// allocates, whatever the span length.
constexpr std::size_t kSpanChunk = 256;

}  // namespace

SlidingDft::SlidingDft(std::size_t window_size, std::size_t num_coefficients)
    : window_size_(window_size),
      inv_sqrt_n_(1.0 / std::sqrt(static_cast<double>(window_size))),
      coeffs_(num_coefficients, Complex{0.0, 0.0}),
      ring_(window_size, 0.0) {
  SDSI_CHECK(window_size > 0);
  SDSI_CHECK(num_coefficients > 0 && num_coefficients <= window_size);
  twiddles_.reserve(num_coefficients);
  for (std::size_t f = 0; f < num_coefficients; ++f) {
    const double angle = 2.0 * std::numbers::pi * static_cast<double>(f) /
                         static_cast<double>(window_size);
    twiddles_.emplace_back(std::cos(angle), std::sin(angle));
  }
}

Sample SlidingDft::push(Sample value) {
  const Sample evicted = ring_[head_];
  ring_[head_] = value;
  if (++head_ == window_size_) {  // branch-wrap beats the % of the old path
    head_ = 0;
  }
  ++seen_;

  // Treating the pre-fill window as zero-padded makes the same update rule
  // valid from the first sample: evicted is 0 until the buffer wraps.
  const Complex delta{(value - evicted) * inv_sqrt_n_, 0.0};
  for (std::size_t f = 0; f < coeffs_.size(); ++f) {
    coeffs_[f] = twiddles_[f] * (coeffs_[f] + delta);
  }
  return evicted;
}

void SlidingDft::push_chunk(std::span<const Sample> values,
                            Sample* evicted_out) {
  SDSI_DCHECK(values.size() <= kSpanChunk);
  std::array<double, kSpanChunk> deltas;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const Sample evicted = ring_[head_];
    ring_[head_] = values[i];
    if (++head_ == window_size_) {
      head_ = 0;
    }
    deltas[i] = (values[i] - evicted) * inv_sqrt_n_;
    if (evicted_out != nullptr) {
      evicted_out[i] = evicted;
    }
  }
  seen_ += values.size();
  // Per coefficient, the exact operation sequence of repeated push():
  // c = tw * (c + delta_t) in arrival order — hence bit-identical results,
  // but c and tw live in registers for the whole chunk.
  for (std::size_t f = 0; f < coeffs_.size(); ++f) {
    Complex c = coeffs_[f];
    const Complex tw = twiddles_[f];
    for (std::size_t i = 0; i < values.size(); ++i) {
      c = tw * (c + Complex{deltas[i], 0.0});
    }
    coeffs_[f] = c;
  }
}

void SlidingDft::push_span(std::span<const Sample> values) {
  while (!values.empty()) {
    const std::size_t n = std::min(values.size(), kSpanChunk);
    push_chunk(values.first(n), nullptr);
    values = values.subspan(n);
  }
}

void SlidingDft::push_span(std::span<const Sample> values,
                           std::span<Sample> evicted) {
  SDSI_CHECK(evicted.size() >= values.size());
  std::size_t done = 0;
  while (done < values.size()) {
    const std::size_t n = std::min(values.size() - done, kSpanChunk);
    push_chunk(values.subspan(done, n), evicted.data() + done);
    done += n;
  }
}

std::vector<Sample> SlidingDft::window() const {
  std::vector<Sample> out;
  out.reserve(window_size_);
  // Two contiguous copies instead of a %-indexed loop.
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  return out;
}

void SlidingDft::recompute_exact() {
  // Only the tracked coefficients are rebuilt: O(N k), not a full O(N^2)
  // transform — re-anchoring is on the hot path (amortized per push).
  if (exact_table_.empty()) {
    exact_table_.reserve(window_size_);
    for (std::size_t j = 0; j < window_size_; ++j) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(j) /
                           static_cast<double>(window_size_);
      exact_table_.emplace_back(std::cos(angle), std::sin(angle));
    }
  }
  const std::vector<Sample> win = window();
  for (std::size_t f = 0; f < coeffs_.size(); ++f) {
    Complex acc{0.0, 0.0};
    std::size_t idx = 0;  // (f * j) mod N, advanced incrementally
    for (std::size_t j = 0; j < window_size_; ++j) {
      acc += win[j] * exact_table_[idx];
      idx += f;
      if (idx >= window_size_) {
        idx -= window_size_;
      }
    }
    coeffs_[f] = acc * inv_sqrt_n_;
  }
}

}  // namespace sdsi::dsp
