#include "dsp/sliding_dft.hpp"

#include <cmath>
#include <numbers>

namespace sdsi::dsp {

SlidingDft::SlidingDft(std::size_t window_size, std::size_t num_coefficients)
    : window_size_(window_size),
      coeffs_(num_coefficients, Complex{0.0, 0.0}),
      ring_(window_size, 0.0) {
  SDSI_CHECK(window_size > 0);
  SDSI_CHECK(num_coefficients > 0 && num_coefficients <= window_size);
  twiddles_.reserve(num_coefficients);
  for (std::size_t f = 0; f < num_coefficients; ++f) {
    const double angle = 2.0 * std::numbers::pi * static_cast<double>(f) /
                         static_cast<double>(window_size);
    twiddles_.emplace_back(std::cos(angle), std::sin(angle));
  }
}

Sample SlidingDft::push(Sample value) {
  const Sample evicted = ring_[head_];
  ring_[head_] = value;
  head_ = (head_ + 1) % window_size_;
  ++seen_;

  // Treating the pre-fill window as zero-padded makes the same update rule
  // valid from the first sample: evicted is 0 until the buffer wraps.
  const double scale =
      1.0 / std::sqrt(static_cast<double>(window_size_));
  const Complex delta{(value - evicted) * scale, 0.0};
  for (std::size_t f = 0; f < coeffs_.size(); ++f) {
    coeffs_[f] = twiddles_[f] * (coeffs_[f] + delta);
  }
  return evicted;
}

std::vector<Sample> SlidingDft::window() const {
  std::vector<Sample> out(window_size_);
  for (std::size_t i = 0; i < window_size_; ++i) {
    out[i] = ring_[(head_ + i) % window_size_];
  }
  return out;
}

void SlidingDft::recompute_exact() {
  // Only the tracked coefficients are rebuilt: O(N k), not a full O(N^2)
  // transform — re-anchoring is on the hot path (amortized per push).
  const std::vector<Sample> win = window();
  const double scale = 1.0 / std::sqrt(static_cast<double>(window_size_));
  for (std::size_t f = 0; f < coeffs_.size(); ++f) {
    Complex acc{0.0, 0.0};
    for (std::size_t j = 0; j < window_size_; ++j) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(f) *
                           static_cast<double>(j) /
                           static_cast<double>(window_size_);
      acc += win[j] * Complex(std::cos(angle), std::sin(angle));
    }
    coeffs_[f] = acc * scale;
  }
}

}  // namespace sdsi::dsp
