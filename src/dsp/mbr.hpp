// Minimum Bounding Rectangles over the feature space (paper Sec IV-G).
//
// Consecutive feature vectors of one stream are strongly correlated (Fourier
// locality, Fig 3b), so every beta of them is batched into one MBR and the
// MBR is routed/replicated instead of individual vectors. An MBR lives in the
// 2k-dimensional real space of (re, im) coordinates.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "dsp/features.hpp"

namespace sdsi::dsp {

class Mbr {
 public:
  Mbr() = default;

  /// Degenerate box around a single feature vector.
  explicit Mbr(const FeatureVector& point);

  /// Box from explicit corners (low_i <= high_i for all i).
  Mbr(std::vector<double> low, std::vector<double> high);

  bool empty() const noexcept { return low_.empty(); }
  std::size_t dimensions() const noexcept { return low_.size(); }

  std::span<const double> low() const noexcept { return low_; }
  std::span<const double> high() const noexcept { return high_; }

  /// Grows the box to cover `point`.
  void extend(const FeatureVector& point);
  void extend(const Mbr& other);

  /// Pads every side by `margin` >= 0 (adaptive-precision extension,
  /// Sec VI-A trades update rate for box size).
  void inflate(double margin);

  bool contains(const FeatureVector& point) const noexcept;

  /// Minimum feature-space distance from `point` to the box (0 inside).
  /// Because the box bounds true feature vectors and feature distance
  /// lower-bounds window distance, min_distance > r safely prunes.
  double min_distance(const FeatureVector& point) const noexcept;

  /// Whether a similarity ball (center `point`, radius `radius`) can contain
  /// any vector inside the box.
  bool intersects_ball(const FeatureVector& point,
                       double radius) const noexcept {
    return min_distance(point) <= radius;
  }

  /// The routing interval on the first retained coordinate
  /// [low_1re, high_1re]: the MBR is replicated on every node whose arc
  /// intersects the image of this interval under Eq. 6.
  double routing_low() const noexcept {
    SDSI_DCHECK(!empty());
    return low_.front();
  }
  double routing_high() const noexcept {
    SDSI_DCHECK(!empty());
    return high_.front();
  }

  /// Center point (as a flat real vector).
  std::vector<double> center() const;

  /// Sum of side lengths (the margin, an R*-tree-style size measure used by
  /// the adaptive batching ablation).
  double margin() const noexcept;

  /// Product of side lengths.
  double volume() const noexcept;

  friend bool operator==(const Mbr&, const Mbr&) = default;

 private:
  std::vector<double> low_;
  std::vector<double> high_;
};

/// Builds the tight MBR of a batch of feature vectors.
Mbr bounding_box(std::span<const FeatureVector> points);

}  // namespace sdsi::dsp
