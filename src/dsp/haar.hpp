// Orthonormal Haar wavelet transform — the alternative synopsis family.
//
// The paper's feature extraction uses DFT coefficients, but the indexing
// machinery only needs two properties of the transform: orthonormality
// (energy preservation, hence the Eq. 9 lower bound) and energy compaction
// in the first few coefficients. The Haar DWT has both — it is what the
// authors' own SWAT system (cited as [5]) summarizes with — so the library
// supports it as a drop-in synopsis (dsp::Synopsis::kHaar).
//
// Coefficient ordering: index 0 is the overall scaling coefficient
// (mean * sqrt(N)), index 1 the coarsest detail, then ever finer details —
// i.e. coarse-to-fine, so "first k coefficients" keeps the coarse shape,
// mirroring the DFT convention of keeping low frequencies.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace sdsi::dsp {

/// Forward orthonormal Haar DWT. Size must be a power of two.
std::vector<double> haar_transform(std::span<const Sample> signal);

/// Inverse orthonormal Haar DWT. Size must be a power of two.
std::vector<Sample> inverse_haar(std::span<const double> coefficients);

/// Inverse from a truncated coarse prefix: coefficients [0, k) are taken
/// from `prefix`, the rest are zero. `size` is the signal length.
std::vector<Sample> inverse_haar_prefix(std::span<const double> prefix,
                                        std::size_t size);

}  // namespace sdsi::dsp
