#include "dsp/features.hpp"

#include <cmath>
#include <numbers>

#include "dsp/haar.hpp"

namespace sdsi::dsp {

std::vector<double> FeatureVector::as_reals() const {
  std::vector<double> out;
  out.reserve(coeffs_.size() * 2);
  for (const Complex& c : coeffs_) {
    out.push_back(c.real());
    out.push_back(c.imag());
  }
  return out;
}

double FeatureVector::distance(const FeatureVector& other) const noexcept {
  SDSI_DCHECK(coeffs_.size() == other.coeffs_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    total += std::norm(coeffs_[i] - other.coeffs_[i]);
  }
  return std::sqrt(total);
}

FeatureVector extract_features(std::span<const Sample> window,
                               const FeatureConfig& config) {
  config.validate();
  SDSI_CHECK(window.size() == config.window_size);
  const std::vector<Sample> normalized =
      normalize(window, config.normalization);
  if (config.synopsis == Synopsis::kHaar) {
    const std::vector<double> coefficients = haar_transform(normalized);
    const std::size_t first = config.first_coefficient();
    std::vector<Complex> kept(config.num_coefficients);
    for (std::size_t i = 0; i < kept.size(); ++i) {
      kept[i] = Complex{coefficients[first + i], 0.0};
    }
    return FeatureVector(std::move(kept));
  }
  const std::vector<Complex> spectrum = naive_dft(normalized);
  return slice_features(spectrum, config);
}

FeatureVector slice_features(std::span<const Complex> spectrum,
                             const FeatureConfig& config) {
  config.validate();
  const std::size_t first = config.first_coefficient();
  SDSI_CHECK(spectrum.size() >= first + config.num_coefficients);
  std::vector<Complex> coeffs(spectrum.begin() + static_cast<std::ptrdiff_t>(first),
                              spectrum.begin() + static_cast<std::ptrdiff_t>(
                                                     first +
                                                     config.num_coefficients));
  return FeatureVector(std::move(coeffs));
}

double symmetric_lower_bound(const FeatureVector& a, const FeatureVector& b,
                             const FeatureConfig& config) noexcept {
  SDSI_DCHECK(a.size() == b.size());
  if (config.synopsis == Synopsis::kHaar) {
    // Haar coefficients are independent real coordinates: no mirror pairs,
    // the plain distance is already the tightest subset bound.
    return a.distance(b);
  }
  const std::size_t first = config.first_coefficient();
  const std::size_t n = config.window_size;
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::size_t f = first + i;
    // Coefficient F pairs with N-F; both retained-and-mirrored frequencies
    // contribute, except DC (F=0) and Nyquist (F=N/2) which are their own
    // mirror.
    const double factor = (f == 0 || 2 * f == n) ? 1.0 : 2.0;
    total += factor * std::norm(a[i] - b[i]);
  }
  return std::sqrt(total);
}

std::vector<Sample> reconstruct(const FeatureVector& features,
                                const FeatureConfig& config) {
  config.validate();
  SDSI_CHECK(features.size() == config.num_coefficients);
  const std::size_t n = config.window_size;
  const std::size_t first = config.first_coefficient();
  if (config.synopsis == Synopsis::kHaar) {
    std::vector<double> prefix(first + features.size(), 0.0);
    for (std::size_t i = 0; i < features.size(); ++i) {
      prefix[first + i] = features[i].real();
    }
    return inverse_haar_prefix(prefix, n);
  }
  const double scale = 1.0 / std::sqrt(static_cast<double>(n));
  std::vector<Sample> signal(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < features.size(); ++i) {
      const std::size_t f = first + i;
      const double angle = 2.0 * std::numbers::pi * static_cast<double>(f) *
                           static_cast<double>(j) / static_cast<double>(n);
      const Complex rotated =
          features[i] * Complex(std::cos(angle), std::sin(angle));
      // Real signal: X_{N-F} = conj(X_F); the mirrored term contributes the
      // conjugate product, so the pair sums to twice the real part. DC and
      // Nyquist terms have no distinct mirror.
      const double factor = (f == 0 || 2 * f == n) ? 1.0 : 2.0;
      acc += factor * rotated.real();
    }
    signal[j] = acc * scale;
  }
  return signal;
}

double weighted_inner_product(std::span<const Sample> signal,
                              std::span<const double> index,
                              std::span<const double> weights) noexcept {
  SDSI_DCHECK(index.size() == weights.size());
  SDSI_DCHECK(index.size() <= signal.size());
  // Align the query vectors to the most recent samples (end of the window).
  const std::size_t offset = signal.size() - index.size();
  double total = 0.0;
  for (std::size_t i = 0; i < index.size(); ++i) {
    total += index[i] * weights[i] * signal[offset + i];
  }
  return total;
}

}  // namespace sdsi::dsp
