// Feature extraction: a stream window -> a point in the k-dimensional unit
// feature space (paper Sec III-C), plus the lower-bounding distance (Eq. 9)
// and the truncated inverse reconstruction (Eq. 7).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "dsp/dft.hpp"
#include "dsp/normalize.hpp"

namespace sdsi::dsp {

/// Which orthonormal transform produces the synopsis. Both preserve energy,
/// so the Eq. 9 lower bound (no false dismissals) holds for either; they
/// differ in what shapes they compact well (smooth oscillations vs
/// piecewise-flat levels).
enum class Synopsis {
  kFourier,  // the paper's DFT coefficients (Sec III-C)
  kHaar,     // Haar wavelet coefficients (the SWAT [5] family)
};

/// How windows are summarized into feature vectors.
struct FeatureConfig {
  /// Sliding window length N (paper: "the most recent w values").
  std::size_t window_size = 32;

  /// Number of retained coefficients k. "For most real time series the
  /// first few coefficients retain most of the energy."
  std::size_t num_coefficients = 2;

  /// Eq. 1 (correlation queries) vs Eq. 2 (subsequence queries).
  Normalization normalization = Normalization::kZNormalize;

  /// Transform family. Haar requires a power-of-two window and is supported
  /// on the batch path plus an O(W)-per-sample summarizer mode (no O(k)
  /// incremental update exists for sliding Haar).
  Synopsis synopsis = Synopsis::kFourier;

  /// First retained coefficient index. With z-normalization the DC
  /// coefficient X_0 is identically 0 and carries no information, so
  /// retention starts at F=1; with unit normalization it starts at F=0
  /// (the paper keys on "the real component of X_1, or of X_0 if the
  /// streams are z-normalized to have mean 0" — i.e. the first
  /// informative coefficient).
  std::size_t first_coefficient() const noexcept {
    return normalization == Normalization::kZNormalize ? 1 : 0;
  }

  void validate() const {
    SDSI_CHECK(window_size >= 2);
    SDSI_CHECK(num_coefficients >= 1);
    SDSI_CHECK(first_coefficient() + num_coefficients <= window_size);
    if (synopsis == Synopsis::kHaar) {
      SDSI_CHECK((window_size & (window_size - 1)) == 0);
    }
  }
};

/// A point in the feature space: the retained DFT coefficients of one
/// normalized window. Because the window is on the unit hyper-sphere and the
/// DFT is unitary, every coordinate lies in [-1, 1].
class FeatureVector {
 public:
  FeatureVector() = default;
  explicit FeatureVector(std::vector<Complex> coefficients)
      : coeffs_(std::move(coefficients)) {}

  std::size_t size() const noexcept { return coeffs_.size(); }
  bool empty() const noexcept { return coeffs_.empty(); }
  std::span<const Complex> coefficients() const noexcept { return coeffs_; }
  const Complex& operator[](std::size_t i) const noexcept {
    SDSI_DCHECK(i < coeffs_.size());
    return coeffs_[i];
  }

  /// The routing coordinate of Sec IV-B: the real component of the first
  /// retained coefficient, guaranteed to be in [-1, 1].
  double routing_coordinate() const noexcept {
    SDSI_DCHECK(!coeffs_.empty());
    return coeffs_.front().real();
  }

  /// Resizes to `n` coefficients and hands back mutable storage, reusing
  /// capacity. Lets per-tick producers overwrite a scratch vector in place
  /// instead of allocating a fresh coefficient array per sample.
  std::span<Complex> overwrite(std::size_t n) {
    coeffs_.resize(n);
    return coeffs_;
  }

  /// Flattened real coordinates [re0, im0, re1, im1, ...], the space MBRs
  /// live in.
  std::vector<double> as_reals() const;

  /// Plain feature-space Euclidean distance: sqrt(sum |a_i - b_i|^2).
  /// By Parseval this lower-bounds the true distance between the underlying
  /// normalized windows (Eq. 9) — no false dismissals.
  double distance(const FeatureVector& other) const noexcept;

  friend bool operator==(const FeatureVector&, const FeatureVector&) = default;

 private:
  std::vector<Complex> coeffs_;
};

/// Normalizes `window` per `config` and extracts the retained coefficients.
/// O(N k); the streaming path avoids this via SlidingDft + drop/slice.
FeatureVector extract_features(std::span<const Sample> window,
                               const FeatureConfig& config);

/// Slices retained coefficients out of a full (or k-prefix) spectrum that was
/// computed over an ALREADY-normalized window. `spectrum` must cover indices
/// [0, first_coefficient + num_coefficients).
FeatureVector slice_features(std::span<const Complex> spectrum,
                             const FeatureConfig& config);

/// Tighter lower bound on the window distance that exploits the conjugate
/// symmetry of real signals: coefficient F and N-F contribute equally, so
/// retained coefficients with 1 <= F < N/2 count twice (after StatStream).
/// Still never exceeds the true distance.
double symmetric_lower_bound(const FeatureVector& a, const FeatureVector& b,
                             const FeatureConfig& config) noexcept;

/// Eq. 7: reconstructs an approximate window of length config.window_size
/// from the retained coefficients, using conjugate symmetry to fill the
/// unretained upper half of the spectrum. Used by inner-product answering.
std::vector<Sample> reconstruct(const FeatureVector& features,
                                const FeatureConfig& config);

/// Weighted inner product sum_i w_i * index_i * x_i over a reconstructed
/// signal — the paper's inner-product query answer (Sec IV-D). `index`
/// selects positions (0/1 or arbitrary weights), `weights` are the per-item
/// weights; both must be at most window_size long and are aligned to the most
/// recent samples.
double weighted_inner_product(std::span<const Sample> signal,
                              std::span<const double> index,
                              std::span<const double> weights) noexcept;

}  // namespace sdsi::dsp
