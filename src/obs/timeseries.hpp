// Time-series metrics registry (observability layer).
//
// The end-of-run aggregates in core::MetricsCollector answer "how much";
// the paper's evaluation story (load components, overheads, heal behavior)
// also needs "when". This registry keeps named counters, gauges and
// log-bucketed histograms whose updates are folded into fixed simulated-time
// windows; each metric stores its completed windows as sparse points in a
// bounded ring buffer (oldest points are evicted first, and the eviction
// count is reported so truncation is never silent).
//
// Windows are closed lazily: the first update that lands past the open
// window's end flushes it. `flush()` closes every open window at end of run,
// before export. All indices derive from the simulation clock, so a seeded
// run produces byte-identical series.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/log_histogram.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace sdsi::obs {

/// Sparse (window index, value) points in a bounded ring buffer.
class TimeSeries {
 public:
  struct Point {
    std::int64_t window = 0;  // window index (window start = index * width)
    double value = 0.0;
  };

  explicit TimeSeries(std::size_t capacity);

  void append(Point point);

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return ring_.size(); }
  /// Points evicted because the ring was full (rollover is not silent).
  std::uint64_t evicted() const noexcept { return evicted_; }
  /// i = 0 is the oldest retained point.
  const Point& at(std::size_t i) const noexcept;

 private:
  std::vector<Point> ring_;
  std::size_t head_ = 0;  // index of the oldest point
  std::size_t size_ = 0;
  std::uint64_t evicted_ = 0;
};

class MetricsRegistry;

/// Monotone event count. The series holds per-window deltas; `total()` is
/// the exact cumulative sum including the open window.
class Counter {
 public:
  void add(double delta = 1.0);
  double total() const noexcept { return total_; }
  const TimeSeries& series() const noexcept { return series_; }

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* owner, std::size_t capacity)
      : owner_(owner), series_(capacity) {}
  void roll_to(std::int64_t window);
  void flush();

  MetricsRegistry* owner_;
  TimeSeries series_;
  double total_ = 0.0;
  double open_value_ = 0.0;
  std::int64_t open_window_ = 0;
  bool open_ = false;
};

/// Last-write-wins level. The series holds each window's final value.
class Gauge {
 public:
  void set(double value);
  double value() const noexcept { return value_; }
  const TimeSeries& series() const noexcept { return series_; }

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* owner, std::size_t capacity)
      : owner_(owner), series_(capacity) {}
  void roll_to(std::int64_t window);
  void flush();

  MetricsRegistry* owner_;
  TimeSeries series_;
  double value_ = 0.0;
  std::int64_t open_window_ = 0;
  bool open_ = false;
};

/// Sample distribution: a cumulative LogHistogram for quantiles plus
/// per-window sample counts and sums (rate and mean over time).
class HistogramMetric {
 public:
  void add(double x);
  const LogHistogram& histogram() const noexcept { return histogram_; }
  const TimeSeries& count_series() const noexcept { return counts_; }
  const TimeSeries& sum_series() const noexcept { return sums_; }

 private:
  friend class MetricsRegistry;
  HistogramMetric(MetricsRegistry* owner, std::size_t capacity,
                  double min_value, double growth, std::size_t buckets)
      : owner_(owner),
        histogram_(min_value, growth, buckets),
        counts_(capacity),
        sums_(capacity) {}
  void roll_to(std::int64_t window);
  void flush();

  MetricsRegistry* owner_;
  LogHistogram histogram_;
  TimeSeries counts_;
  TimeSeries sums_;
  double open_count_ = 0.0;
  double open_sum_ = 0.0;
  std::int64_t open_window_ = 0;
  bool open_ = false;
};

class MetricsRegistry {
 public:
  struct Options {
    sim::Duration window = sim::Duration::seconds(1);
    std::size_t ring_capacity = 1024;
  };

  MetricsRegistry(const sim::Simulator* clock, Options options);

  /// Named accessors create on first use and return the same instance after
  /// (names are the schema — see docs/OBSERVABILITY.md).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  HistogramMetric& histogram(const std::string& name, double min_value = 1.0,
                             double growth = 1.35, std::size_t buckets = 48);

  /// Closes every open window (call once, before export).
  void flush();

  sim::Duration window() const noexcept { return options_.window; }
  std::size_t ring_capacity() const noexcept {
    return options_.ring_capacity;
  }
  /// Window index the clock currently sits in.
  std::int64_t current_window() const noexcept;

  /// Deterministic (name-sorted) iteration for export.
  const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<HistogramMetric>>& histograms()
      const {
    return histograms_;
  }

 private:
  const sim::Simulator* clock_;
  Options options_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

}  // namespace sdsi::obs
