#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace sdsi::obs {
namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";  // JSON has no Inf/NaN; exports never produce them
    return;
  }
  // Integral values print without an exponent or trailing ".0" so window
  // indices and counts stay human-readable; everything else uses the
  // shortest form that round-trips exactly.
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    const auto as_int = static_cast<std::int64_t>(value);
    char buf[32];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), as_int);
    out.append(buf, ptr);
    return;
  }
  char buf[40];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, ptr);
}

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Json> run() {
    skip_ws();
    auto value = parse_value();
    if (!value) {
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after document");
    }
    return value;
  }

 private:
  std::optional<Json> fail(const char* message) {
    if (error_ != nullptr) {
      *error_ = std::string(message) + " at offset " + std::to_string(pos_);
    }
    return std::nullopt;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(const char* literal) {
    std::size_t n = 0;
    while (literal[n] != '\0') {
      ++n;
    }
    if (text_.compare(pos_, n, literal) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }

  std::optional<Json> parse_value() {
    if (pos_ >= text_.size()) {
      return fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        std::string s;
        if (!parse_string(s)) {
          return std::nullopt;
        }
        return Json(std::move(s));
      }
      case 't':
        if (consume_literal("true")) {
          return Json(true);
        }
        return fail("invalid literal");
      case 'f':
        if (consume_literal("false")) {
          return Json(false);
        }
        return fail("invalid literal");
      case 'n':
        if (consume_literal("null")) {
          return Json();
        }
        return fail("invalid literal");
      default:
        return parse_number();
    }
  }

  std::optional<Json> parse_object() {
    ++pos_;  // '{'
    Json obj = Json::object();
    skip_ws();
    if (consume('}')) {
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) {
        return std::nullopt;
      }
      skip_ws();
      if (!consume(':')) {
        return fail("expected ':' in object");
      }
      skip_ws();
      auto value = parse_value();
      if (!value) {
        return std::nullopt;
      }
      obj[key] = std::move(*value);
      skip_ws();
      if (consume(',')) {
        continue;
      }
      if (consume('}')) {
        return obj;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  std::optional<Json> parse_array() {
    ++pos_;  // '['
    Json arr = Json::array();
    skip_ws();
    if (consume(']')) {
      return arr;
    }
    while (true) {
      skip_ws();
      auto value = parse_value();
      if (!value) {
        return std::nullopt;
      }
      arr.push_back(std::move(*value));
      skip_ws();
      if (consume(',')) {
        continue;
      }
      if (consume(']')) {
        return arr;
      }
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) {
      fail("expected string");
      return false;
    }
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4U;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
              return false;
            }
          }
          // Exports only emit ASCII; decode BMP code points as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0U | (code >> 6U)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          } else {
            out.push_back(static_cast<char>(0xE0U | (code >> 12U)));
            out.push_back(static_cast<char>(0x80U | ((code >> 6U) & 0x3FU)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          }
          break;
        }
        default:
          fail("invalid escape");
          return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return fail("expected value");
    }
    // std::from_chars accepts leading zeros ("01"); RFC 8259 does not.
    const std::size_t digits = start + (text_[start] == '-' ? 1u : 0u);
    if (digits + 1 < pos_ && text_[digits] == '0' &&
        text_[digits + 1] >= '0' && text_[digits + 1] <= '9') {
      pos_ = start;
      return fail("leading zero");
    }
    double value = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last) {
      pos_ = start;
      return fail("malformed number");
    }
    return Json(value);
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) {
    type_ = Type::kObject;  // auto-vivify, like most JSON value types
  }
  for (auto& [k, v] : object_) {
    if (k == key) {
      return v;
    }
  }
  object_.emplace_back(key, Json());
  return object_.back().second;
}

const Json* Json::find(const std::string& key) const noexcept {
  for (const auto& [k, v] : object_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto pad = [&](int level) {
    if (pretty) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent * level), ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      append_number(out, number_);
      break;
    case Type::kString:
      append_escaped(out, string_);
      break;
    case Type::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) {
          out.push_back(',');
        }
        pad(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) {
        pad(depth);
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) {
          out.push_back(',');
        }
        pad(depth + 1);
        append_escaped(out, object_[i].first);
        out.push_back(':');
        if (pretty) {
          out.push_back(' ');
        }
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) {
        pad(depth);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

std::optional<Json> Json::parse(const std::string& text, std::string* error) {
  return Parser(text, error).run();
}

}  // namespace sdsi::obs
