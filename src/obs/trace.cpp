#include "obs/trace.hpp"

#include "common/check.hpp"

namespace sdsi::obs {

const char* trace_event_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kOriginate:
      return "originate";
    case TraceEventKind::kRangeCopy:
      return "range_copy";
    case TraceEventKind::kTransit:
      return "transit";
    case TraceEventKind::kDeliver:
      return "deliver";
    case TraceEventKind::kDrop:
      return "drop";
    case TraceEventKind::kRetry:
      return "retry";
    case TraceEventKind::kHeal:
      return "heal";
    case TraceEventKind::kRefresh:
      return "refresh";
    case TraceEventKind::kReplicate:
      return "replicate";
    case TraceEventKind::kHandoff:
      return "handoff";
    case TraceEventKind::kRepair:
      return "repair";
    case TraceEventKind::kFailover:
      return "failover";
    case TraceEventKind::kOracleFallback:
      return "oracle_fallback";
    case TraceEventKind::kCount:
      break;
  }
  SDSI_CHECK(false && "unknown TraceEventKind");
  return "";
}

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : out_(path, std::ios::out | std::ios::trunc) {
  if (out_) {
    out_ << "{\"schema\":\"sdsi.trace.v1\"}\n";
  }
}

void JsonlTraceSink::record(const TraceRecord& record) {
  if (!out_) {
    return;
  }
  // All strings in the stream are fixed identifiers (event names, drop-cause
  // labels), so no JSON string escaping is needed.
  out_ << "{\"tid\":" << record.trace_id << ",\"ev\":\""
       << trace_event_name(record.event) << "\",\"t_us\":" << record.at_us
       << ",\"node\":" << record.node << ",\"kind\":" << record.kind
       << ",\"hops\":" << record.hops << ",\"key\":" << record.target_key
       << ",\"ri\":" << (record.range_internal ? "true" : "false");
  if (record.event == TraceEventKind::kDrop && record.drop_cause != nullptr) {
    out_ << ",\"cause\":\"" << record.drop_cause << "\"";
  }
  if (record.event == TraceEventKind::kRetry ||
      record.event == TraceEventKind::kHeal ||
      record.event == TraceEventKind::kRefresh ||
      record.event == TraceEventKind::kReplicate ||
      record.event == TraceEventKind::kRepair) {
    out_ << ",\"stream\":" << record.stream
         << ",\"seq\":" << record.batch_seq;
  }
  out_ << "}\n";
  ++events_;
}

}  // namespace sdsi::obs
