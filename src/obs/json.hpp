// Minimal JSON document model (observability layer).
//
// The repo deliberately takes no external dependencies, yet the observability
// exports need to be both written (metrics.json, core/obs_export) and read
// back (tools/make_figures, schema validation, the round-trip test). This is
// a small order-preserving JSON value with a recursive-descent parser and a
// serializer whose number formatting round-trips exactly (shortest form via
// std::to_chars). It is not a general-purpose library: documents are trusted
// (our own exports), sizes are small, and performance is irrelevant.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace sdsi::obs {

class Json {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Json() : type_(Type::kNull) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}          // NOLINT
  Json(double value) : type_(Type::kNumber), number_(value) {}    // NOLINT
  Json(int value)                                                 // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  Json(std::int64_t value)                                        // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  Json(std::uint64_t value)                                       // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}  // NOLINT
  Json(std::string value)                                            // NOLINT
      : type_(Type::kString), string_(std::move(value)) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  bool as_bool() const noexcept { return bool_; }
  double as_number() const noexcept { return number_; }
  std::int64_t as_int() const noexcept {
    return static_cast<std::int64_t>(number_);
  }
  const std::string& as_string() const noexcept { return string_; }

  /// Array access.
  void push_back(Json value) { array_.push_back(std::move(value)); }
  std::size_t size() const noexcept { return array_.size(); }
  const Json& operator[](std::size_t i) const noexcept { return array_[i]; }

  /// Object access: insert-or-get, preserving insertion order.
  Json& operator[](const std::string& key);
  /// Lookup without insertion; nullptr when absent (or not an object).
  const Json* find(const std::string& key) const noexcept;
  const std::vector<std::pair<std::string, Json>>& members() const noexcept {
    return object_;
  }

  /// Serialize. indent < 0 means compact single-line output; indent >= 0
  /// pretty-prints with that many spaces per level.
  std::string dump(int indent = -1) const;

  /// Parse a complete document. Returns nullopt on malformed input and, when
  /// `error` is non-null, stores a short description with the byte offset.
  static std::optional<Json> parse(const std::string& text,
                                   std::string* error = nullptr);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace sdsi::obs
