// Structured trace events (observability layer).
//
// Every routed message carries a trace id (routing::Message::trace_id); the
// routing layer reports each observable step of a message's life — origin,
// range-multicast copies, overlay transits, delivery, loss — and the
// middleware adds the self-healing verbs (retry, heal, refresh) under the
// same id. A sink receiving the stream can therefore reconstruct one MBR
// batch's (or query's) complete hop path, including every retransmission
// that healed it.
//
// JsonlTraceSink writes one JSON object per line (trace.jsonl schema v1,
// documented in docs/OBSERVABILITY.md); VectorTraceSink retains the records
// in memory for tests.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace sdsi::obs {

/// The span-event verbs. Routing emits the first five; the middleware's
/// self-healing machinery emits retry/heal/refresh; the replication layer
/// emits the last five (replicate/handoff/repair/failover, plus the
/// routing-cheat accounting event oracle_fallback).
enum class TraceEventKind : std::uint8_t {
  kOriginate = 0,  // application send entered the overlay
  kRangeCopy = 1,  // a range-multicast forward copy was created
  kTransit = 2,    // passed through an intermediate overlay node
  kDeliver = 3,    // reached a responsible node
  kDrop = 4,       // lost (cause carries the fault::DropCause label)
  kRetry = 5,      // ack timeout: the batch was retransmitted
  kHeal = 6,       // a retried batch was finally confirmed stored
  kRefresh = 7,    // soft-state refresh re-routed the batch
  kReplicate = 8,  // stored state mirrored to a successor replica
  kHandoff = 9,    // ownership slice pulled/pushed on join/leave
  kRepair = 10,    // anti-entropy backfilled a missing entry
  kFailover = 11,  // a replica promoted itself to aggregator
  kOracleFallback = 12,  // routing bypassed the protocol (ground truth)
  kCount = 13,
};

/// Name used in the JSONL `ev` field. Out-of-range values are a program
/// error (asserted), never a silent "?".
const char* trace_event_name(TraceEventKind kind);

struct TraceRecord {
  std::uint64_t trace_id = 0;
  TraceEventKind event = TraceEventKind::kOriginate;
  std::int64_t at_us = 0;            // simulation time of the observation
  NodeIndex node = kInvalidNode;     // node where the event was observed
  int kind = 0;                      // application tag (core::MsgKind)
  int hops = 0;                      // overlay hops of this copy so far
  Key target_key = 0;                // key the copy is routed toward
  bool range_internal = false;       // true for range-multicast copies
  const char* drop_cause = nullptr;  // kDrop only: fault::drop_cause_name
  StreamId stream = 0;               // kRetry/kHeal/kRefresh: batch identity
  std::uint64_t batch_seq = 0;       //   "
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceRecord& record) = 0;
};

/// Appends records as JSONL. The first line is a header object stating the
/// schema version; every later line is one event.
class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(const std::string& path);

  /// False when the file could not be opened (callers should report it).
  bool ok() const { return static_cast<bool>(out_); }

  void record(const TraceRecord& record) override;
  void flush() { out_.flush(); }
  std::uint64_t events_written() const noexcept { return events_; }

 private:
  std::ofstream out_;
  std::uint64_t events_ = 0;
};

/// In-memory sink for tests.
class VectorTraceSink final : public TraceSink {
 public:
  void record(const TraceRecord& record) override {
    records_.push_back(record);
  }
  const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  void clear() { records_.clear(); }

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace sdsi::obs
