#include "obs/timeseries.hpp"

#include "common/check.hpp"

namespace sdsi::obs {

TimeSeries::TimeSeries(std::size_t capacity) : ring_(capacity) {
  SDSI_CHECK(capacity >= 1);
}

void TimeSeries::append(Point point) {
  if (size_ < ring_.size()) {
    ring_[(head_ + size_) % ring_.size()] = point;
    ++size_;
    return;
  }
  ring_[head_] = point;  // overwrite the oldest
  head_ = (head_ + 1) % ring_.size();
  ++evicted_;
}

const TimeSeries::Point& TimeSeries::at(std::size_t i) const noexcept {
  SDSI_DCHECK(i < size_);
  return ring_[(head_ + i) % ring_.size()];
}

void Counter::roll_to(std::int64_t window) {
  if (open_ && window != open_window_) {
    series_.append({open_window_, open_value_});
    open_value_ = 0.0;
  }
  open_window_ = window;
  open_ = true;
}

void Counter::add(double delta) {
  roll_to(owner_->current_window());
  open_value_ += delta;
  total_ += delta;
}

void Counter::flush() {
  if (open_) {
    series_.append({open_window_, open_value_});
    open_value_ = 0.0;
    open_ = false;
  }
}

void Gauge::roll_to(std::int64_t window) {
  if (open_ && window != open_window_) {
    series_.append({open_window_, value_});
  }
  open_window_ = window;
  open_ = true;
}

void Gauge::set(double value) {
  roll_to(owner_->current_window());
  value_ = value;
}

void Gauge::flush() {
  if (open_) {
    series_.append({open_window_, value_});
    open_ = false;
  }
}

void HistogramMetric::roll_to(std::int64_t window) {
  if (open_ && window != open_window_) {
    counts_.append({open_window_, open_count_});
    sums_.append({open_window_, open_sum_});
    open_count_ = 0.0;
    open_sum_ = 0.0;
  }
  open_window_ = window;
  open_ = true;
}

void HistogramMetric::add(double x) {
  roll_to(owner_->current_window());
  histogram_.add(x);
  open_count_ += 1.0;
  open_sum_ += x;
}

void HistogramMetric::flush() {
  if (open_) {
    counts_.append({open_window_, open_count_});
    sums_.append({open_window_, open_sum_});
    open_count_ = 0.0;
    open_sum_ = 0.0;
    open_ = false;
  }
}

MetricsRegistry::MetricsRegistry(const sim::Simulator* clock, Options options)
    : clock_(clock), options_(options) {
  SDSI_CHECK(clock != nullptr);
  SDSI_CHECK(options.window > sim::Duration());
  SDSI_CHECK(options.ring_capacity >= 1);
}

std::int64_t MetricsRegistry::current_window() const noexcept {
  return clock_->now().count_micros() / options_.window.count_micros();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(name, std::unique_ptr<Counter>(new Counter(
                                this, options_.ring_capacity)))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(name, std::unique_ptr<Gauge>(
                                new Gauge(this, options_.ring_capacity)))
             .first;
  }
  return *it->second;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name,
                                            double min_value, double growth,
                                            std::size_t buckets) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::unique_ptr<HistogramMetric>(
                                new HistogramMetric(this,
                                                    options_.ring_capacity,
                                                    min_value, growth,
                                                    buckets)))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::flush() {
  for (auto& [name, counter] : counters_) {
    counter->flush();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->flush();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->flush();
  }
}

}  // namespace sdsi::obs
