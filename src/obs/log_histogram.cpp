#include "obs/log_histogram.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace sdsi::obs {

LogHistogram::LogHistogram(double min_value, double growth,
                           std::size_t buckets)
    : min_value_(min_value),
      growth_(growth),
      inv_log_growth_(1.0 / std::log(growth)),
      counts_(buckets, 0) {
  SDSI_CHECK(min_value > 0.0);
  SDSI_CHECK(growth > 1.0);
  SDSI_CHECK(buckets >= 2);
}

std::size_t LogHistogram::bucket_index(double x) const noexcept {
  if (!(x >= min_value_)) {  // also catches NaN: land it in the underflow
    return 0;
  }
  const double position = std::log(x / min_value_) * inv_log_growth_;
  // floor(position) can round to the boundary bucket's lower neighbor when
  // x sits exactly on a power; nudge forward if so.
  auto i = static_cast<std::size_t>(1.0 + std::max(position, 0.0));
  i = std::min(i, counts_.size() - 1);
  // log() is inexact at the boundaries: settle exactly against the bucket
  // edges so values on a power of `growth` land in the upper bucket.
  if (i + 1 < counts_.size() && x >= bucket_high(i)) {
    ++i;
  } else if (i > 1 && x < bucket_low(i)) {
    --i;
  }
  return i;
}

double LogHistogram::bucket_low(std::size_t i) const noexcept {
  if (i == 0) {
    return 0.0;
  }
  return min_value_ * std::pow(growth_, static_cast<double>(i - 1));
}

double LogHistogram::bucket_high(std::size_t i) const noexcept {
  return min_value_ * std::pow(growth_, static_cast<double>(i));
}

void LogHistogram::add(double x) noexcept {
  ++counts_[bucket_index(x)];
  ++count_;
  sum_ += x;
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
}

void LogHistogram::merge(const LogHistogram& other) noexcept {
  SDSI_DCHECK(counts_.size() == other.counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LogHistogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

double LogHistogram::quantile(double q) const noexcept {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest value with at least ceil(q * count) samples
  // at or below it.
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    if (cumulative + counts_[i] >= rank) {
      // Interpolate linearly within the bucket, then clamp to the exact
      // envelope so the estimate never leaves [min, max].
      const double fraction = static_cast<double>(rank - cumulative) /
                              static_cast<double>(counts_[i]);
      const double low = bucket_low(i);
      const double high =
          i + 1 == counts_.size() ? max_ : bucket_high(i);  // overflow cap
      const double value = low + (high - low) * fraction;
      return std::clamp(value, min_, max_);
    }
    cumulative += counts_[i];
  }
  return max_;
}

}  // namespace sdsi::obs
