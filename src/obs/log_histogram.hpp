// Log-bucketed latency histogram (observability layer).
//
// OnlineStats answers "what was the mean"; figures like heal latency and
// end-to-end delivery latency need the *distribution* — p50/p90/p99/max —
// without storing every sample. Buckets grow geometrically, so relative
// resolution is constant across decades (1 ms and 1 s latencies are resolved
// equally well), which is the standard shape for latency telemetry
// (HdrHistogram-style). Count, sum, min and max are tracked exactly; only
// quantiles are bucket-interpolated estimates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sdsi::obs {

class LogHistogram {
 public:
  /// Bucket 0 is [0, min_value); bucket i >= 1 is
  /// [min_value * growth^(i-1), min_value * growth^i); the last bucket
  /// absorbs everything above the top boundary (overflow). With the defaults
  /// (1 ms floor, 1.35 growth, 48 buckets) the top boundary sits above
  /// 10^6 ms, enough for any simulated latency this repo produces.
  LogHistogram() : LogHistogram(1.0, 1.35, 48) {}
  explicit LogHistogram(double min_value, double growth, std::size_t buckets);

  void add(double x) noexcept;
  void merge(const LogHistogram& other) noexcept;
  void reset() noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return count_ > 0 ? max_ : 0.0; }

  /// Nearest-rank quantile estimate, linearly interpolated inside the
  /// containing bucket and clamped to the exact [min, max] envelope.
  /// q in [0, 1]; returns 0 when empty.
  double quantile(double q) const noexcept;
  double p50() const noexcept { return quantile(0.50); }
  double p90() const noexcept { return quantile(0.90); }
  double p99() const noexcept { return quantile(0.99); }

  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const noexcept { return counts_[i]; }
  /// Inclusive-exclusive value range [low, high) covered by bucket `i`.
  double bucket_low(std::size_t i) const noexcept;
  double bucket_high(std::size_t i) const noexcept;
  /// Bucket a value lands in (exposed so tests can pin the boundaries).
  std::size_t bucket_index(double x) const noexcept;

  double min_value() const noexcept { return min_value_; }
  double growth() const noexcept { return growth_; }

 private:
  double min_value_;
  double growth_;
  double inv_log_growth_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<std::uint64_t> counts_;
};

}  // namespace sdsi::obs
