// SimTransport: the Transport interface over the discrete-event kernel.
//
// A SimFabric owns the shared medium: the simulator clock plus the endpoint
// registry. Each SimTransport is one node's endpoint. send() pushes the
// frame through the v1 wire codec — encode, decode, byte-equality check, so
// the receiver only ever sees what survived serialization — then schedules
// delivery at the peer after the configured hop latency, using the same
// pooled-deferral idiom as RoutingSystem::schedule_msg.
//
// Determinism: with a deterministic simulator and a fixed send order,
// delivery order is fixed too, which is what lets the sim-vs-socket
// equivalence test compare matched sets across transports.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/model.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace sdsi::net {

class SimTransport;

/// The shared in-process medium a set of SimTransports communicates over.
class SimFabric {
 public:
  SimFabric(sim::Simulator& simulator, sim::Duration hop_latency)
      : sim_(simulator), hop_latency_(hop_latency) {}

  sim::Simulator& simulator() noexcept { return sim_; }
  sim::Duration hop_latency() const noexcept { return hop_latency_; }

  /// Total frames/bytes that crossed the fabric (all endpoints).
  std::uint64_t frames_sent() const noexcept { return frames_; }
  std::uint64_t bytes_sent() const noexcept { return bytes_; }

  /// Raw frames (send_raw) the receiving side's codec rejected — the sim
  /// fabric's analogue of SocketTransportStats::decode_rejects.
  std::uint64_t decode_rejects() const noexcept { return decode_rejects_; }

  /// Observer for fabric-level losses (today only kMalformedFrame from a
  /// rejected raw frame); lets an in-process chaos run route transport
  /// drops into the same accounting as the injected ones.
  void set_drop_hook(std::function<void(fault::DropCause)> hook) {
    drop_hook_ = std::move(hook);
  }

 private:
  friend class SimTransport;

  void attach(NodeIndex peer, SimTransport* endpoint) {
    if (peer >= endpoints_.size()) {
      endpoints_.resize(peer + 1, nullptr);
    }
    endpoints_[peer] = endpoint;
  }

  sim::Simulator& sim_;
  sim::Duration hop_latency_;
  std::vector<SimTransport*> endpoints_;
  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t decode_rejects_ = 0;
  std::function<void(fault::DropCause)> drop_hook_;
};

class SimTransport final : public Transport {
 public:
  /// Registers this endpoint as `self` on the fabric. The fabric must
  /// outlive every endpoint attached to it.
  SimTransport(SimFabric& fabric, NodeIndex self);

  NodeIndex self() const noexcept { return self_; }

  bool send(NodeIndex peer, const routing::Message& msg) override;
  /// Raw bytes cross the fabric exactly like a socket hop: the receiving
  /// side decodes them, and a reject is a counted drop (never an abort) —
  /// this is the path fault-injected corruption rides.
  bool send_raw(NodeIndex peer, std::span<const std::uint8_t> frame) override;
  void set_deliver(DeliverFn fn) override { deliver_ = std::move(fn); }
  /// No-op: deliveries ride the sim scheduler (run the simulator instead).
  void poll(int budget_ms) override { (void)budget_ms; }
  std::size_t peer_count() const override { return fabric_.endpoints_.size(); }

 private:
  SimFabric& fabric_;
  NodeIndex self_;
  DeliverFn deliver_;
};

}  // namespace sdsi::net
