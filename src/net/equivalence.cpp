#include "net/equivalence.hpp"

#include <memory>
#include <vector>

#include "common/check.hpp"
#include "core/strategy.hpp"
#include "core/system.hpp"
#include "net/node.hpp"
#include "net/sim_transport.hpp"
#include "routing/static_ring.hpp"
#include "sim/simulator.hpp"

namespace sdsi::net {

namespace {

/// Lifespans far beyond any run length: nothing expires mid-run, which is
/// one leg of the timing-independence argument the gate rests on.
constexpr auto kLifespan = sim::Duration::seconds(3600);

}  // namespace

MatchDigest run_sim_reference(const WorkloadConfig& config) {
  sim::Simulator simulator;
  const common::IdSpace space(config.id_bits);
  routing::StaticRing ring(
      simulator, space,
      routing::hash_node_ids(config.nodes, space, config.ring_salt));

  core::MiddlewareConfig mw;
  mw.features = config.features;
  mw.strategy = config.strategy;
  mw.mbr_lifespan = kLifespan;
  mw.notify_period = sim::Duration::millis(500);
  core::MiddlewareSystem system(ring, mw);
  system.start();

  // Queries first: the middleware hands out sequential ids starting at 1,
  // and the workload's ids must coincide or the digests aren't comparable.
  for (const WorkloadQuery& query : workload_queries(config)) {
    const core::QueryId id = system.subscribe_similarity_window(
        query.client, query.window, query.radius, kLifespan);
    SDSI_CHECK(id == query.id);
  }
  simulator.run_until(simulator.now() + sim::Duration::seconds(2));

  for (NodeIndex node = 0; node < config.nodes; ++node) {
    for (std::uint32_t slot = 0; slot < config.streams_per_node; ++slot) {
      const StreamId stream = workload_stream_id(config, node, slot);
      system.register_stream(node, stream);
      for (const Sample value : workload_samples(config, stream)) {
        system.post_stream_value(node, stream, value);
      }
    }
  }
  // Drain: multicast hops, notify ticks, digest relays, response pushes.
  simulator.run_until(simulator.now() + sim::Duration::seconds(120));

  MatchDigest digest;
  for (const auto& [id, record] : system.client_records()) {
    digest[id] = std::set<StreamId>(record.matched_streams.begin(),
                                    record.matched_streams.end());
  }
  return digest;
}

MatchDigest run_net_over_sim_transport(const WorkloadConfig& config) {
  sim::Simulator simulator;
  const common::IdSpace space(config.id_bits);
  NetRing ring(space,
               routing::hash_node_ids(config.nodes, space, config.ring_salt));
  SimFabric fabric(simulator, sim::Duration::millis(1));

  NetNodeConfig node_config;
  node_config.features = config.features;
  node_config.strategy = config.strategy;
  node_config.mbr_lifespan = kLifespan;

  std::vector<std::unique_ptr<SimTransport>> transports;
  std::vector<std::unique_ptr<NetNode>> nodes;
  transports.reserve(config.nodes);
  nodes.reserve(config.nodes);
  for (NodeIndex i = 0; i < config.nodes; ++i) {
    transports.push_back(std::make_unique<SimTransport>(fabric, i));
  }
  for (NodeIndex i = 0; i < config.nodes; ++i) {
    nodes.push_back(
        std::make_unique<NetNode>(ring, i, *transports[i], node_config));
    NetNode* node = nodes.back().get();
    sim::Simulator* sim_ptr = &simulator;
    transports[i]->set_deliver([node, sim_ptr](routing::Message&& msg) {
      node->deliver(std::move(msg), sim_ptr->now());
    });
  }

  const auto strategy =
      core::IndexingStrategy::make(config.strategy, config.features, space);
  for (const WorkloadQuery& query : workload_queries(config)) {
    nodes[query.client]->subscribe_similarity(
        query.id, strategy->features_from_window(query.window), query.radius,
        kLifespan, simulator.now());
  }
  simulator.run_until(simulator.now() + sim::Duration::seconds(2));

  for (NodeIndex node = 0; node < config.nodes; ++node) {
    for (std::uint32_t slot = 0; slot < config.streams_per_node; ++slot) {
      const StreamId stream = workload_stream_id(config, node, slot);
      for (const Sample value : workload_samples(config, stream)) {
        nodes[node]->publish_value(stream, value, simulator.now());
      }
    }
  }
  simulator.run_until(simulator.now() + sim::Duration::seconds(2));

  // One NPER pass per node now that every MBR and subscription has landed,
  // then drain the responses it pushed.
  for (auto& node : nodes) {
    node->tick(simulator.now());
  }
  simulator.run_until(simulator.now() + sim::Duration::seconds(2));

  MatchDigest digest;
  for (const auto& node : nodes) {
    for (const auto& [id, streams] : node->results()) {
      digest[id] = streams;
    }
  }
  return digest;
}

}  // namespace sdsi::net
