// NetNode: the paper's data-center pipeline bound to a pluggable Transport —
// the process that actually "breaks out of the simulator".
//
// One NetNode is one ring member: it summarizes its local streams
// (StreamSummarizer -> MbrBatcher), routes closed MBRs and similarity
// subscriptions over the content ring (Eq. 6 ranges, sequential range
// multicast replicated exactly from RoutingSystem::forward_range_copies),
// stores and matches what lands on it (IndexStore), and reports matches.
//
// Scope (documented divergence from the sim middleware, see
// docs/ARCHITECTURE.md "Transport layer"): a detecting node responds to the
// query's client DIRECTLY instead of aggregating reports at the range's
// middle node first, and the reliability layers (acks, refresh, replication,
// overload control) are off. The client-visible matched (stream, query) sets
// are invariant to both choices on a fault-free run — the per-node
// IndexStore dedup plus the client-side stream-set dedup make the report
// route invisible — which is exactly the property the sim-vs-socket
// equivalence test pins.
//
// Clocking: the node never reads a clock; callers pass `now` (the sim clock
// under SimTransport, a wall-clock-derived SimTime in sdsi_node). Lifespans
// only need to be long relative to the run for equivalence to hold.
#pragma once

#include <any>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/batcher.hpp"
#include "core/index_store.hpp"
#include "core/mapper.hpp"
#include "core/query.hpp"
#include "core/strategy.hpp"
#include "net/failure_detector.hpp"
#include "net/ring.hpp"
#include "net/transport.hpp"

namespace sdsi::net {

/// The self-healing layers over a real transport. Off by default: the plain
/// pipeline stays byte-identical for the fault-free equivalence gate. When
/// enabled, the node runs the full soft-state reliability stack the sim
/// middleware has had all along — heartbeats + failure detection, acked
/// publications with retransmit, periodic refresh, successor replication,
/// anti-entropy digests, and rejoin handoff — so a lossy socket ring
/// converges back to the fault-free matched set.
struct NetReliabilityConfig {
  bool enabled = false;
  FailureDetectorConfig detector;
  /// Unacked MBR publication / response push retransmit deadline.
  std::int64_t ack_timeout_ms = 250;
  int max_retries = 10;
  /// Full soft-state refresh cadence: every tracked publication and every
  /// locally-posed query is re-multicast (receiver dedup keeps it
  /// idempotent), healing range replicas an ack cannot vouch for.
  std::int64_t refresh_period_ms = 800;
  std::int64_t anti_entropy_period_ms = 600;
  /// Live successors that mirror each entry landed on this node.
  std::uint32_t replication = 2;
};

struct NetNodeConfig {
  dsp::FeatureConfig features;
  /// Summary/index/routing-key strategy (core/strategy.hpp); the default
  /// dft keeps the socket path digest-identical to pre-strategy builds.
  core::StrategyOptions strategy;
  core::MbrBatcher::Options batching;
  sim::Duration mbr_lifespan = sim::Duration::seconds(3600);
  /// Mirror of MiddlewareConfig::store_local_summaries — the sim stores
  /// every closed MBR at its source regardless of key range, so the
  /// equivalence run must too.
  bool store_local_summaries = true;
  NetReliabilityConfig reliability;
  /// Process incarnation, bumped on every restart (rides in heartbeats so
  /// peers detect the rejoin and push repair state).
  std::uint64_t epoch = 0;
};

class NetNode {
 public:
  struct Counters {
    std::uint64_t mbrs_published = 0;
    std::uint64_t queries_posed = 0;
    std::uint64_t mbrs_stored = 0;
    std::uint64_t subscriptions_stored = 0;
    std::uint64_t responses_sent = 0;
    std::uint64_t send_failures = 0;  // transport had no route to the peer
    // Reliability layer (all zero unless config.reliability.enabled):
    std::uint64_t heartbeats_sent = 0;
    std::uint64_t heartbeats_received = 0;
    std::uint64_t detours = 0;  // hops skipped past a dead peer
    std::uint64_t mbr_acks_sent = 0;
    std::uint64_t mbr_acks_received = 0;
    std::uint64_t mbr_retransmits = 0;
    std::uint64_t refresh_rounds = 0;
    std::uint64_t mbr_refreshes = 0;
    std::uint64_t query_refreshes = 0;
    std::uint64_t response_retransmits = 0;
    std::uint64_t response_acks_sent = 0;
    std::uint64_t response_acks_received = 0;
    std::uint64_t replica_puts_sent = 0;
    std::uint64_t replica_entries_stored = 0;
    std::uint64_t anti_entropy_rounds = 0;
    std::uint64_t anti_entropy_requests = 0;
    std::uint64_t repair_entries_sent = 0;
    std::uint64_t handoff_requests_sent = 0;
    std::uint64_t handoff_entries_sent = 0;
  };

  /// The ring and transport must outlive the node. The caller wires
  /// transport.set_deliver to deliver() (the node needs `now` per delivery,
  /// which the Transport interface does not carry).
  NetNode(const NetRing& ring, NodeIndex self, Transport& transport,
          NetNodeConfig config);

  NodeIndex self() const noexcept { return self_; }

  /// Feeds one raw sample of a locally sourced stream; a closed MBR batch
  /// is stored locally and range-multicast over the ring.
  void publish_value(StreamId stream, Sample value, sim::SimTime now);

  /// Poses a continuous similarity query from this node. `id` must be
  /// globally unique (the equivalence driver assigns the same ids the sim
  /// middleware would).
  void subscribe_similarity(core::QueryId id, dsp::FeatureVector features,
                            double radius, sim::Duration lifespan,
                            sim::SimTime now);

  /// Periodic driver (the paper's NPER tick): runs one match pass and
  /// pushes fresh matches to their clients.
  void tick(sim::SimTime now);

  /// Reliability drivers (no-ops unless config.reliability.enabled).
  /// `now_ms` is the node's monotone wall clock (the failure detector's
  /// time base); `now` is the logical clock the store runs on. Call both
  /// ticks frequently (every poll loop iteration) — each applies its own
  /// cadence internally.
  ///
  /// heartbeat_tick: advances the detector and emits the periodic
  /// heartbeat fan-out (every peer, dead ones included — that is how a
  /// restart is noticed).
  void heartbeat_tick(std::int64_t now_ms, sim::SimTime now);
  /// reliability_tick: retransmits unacked publications and response
  /// pushes, runs the periodic soft-state refresh, and exchanges
  /// anti-entropy digests with the ring neighbors (plus any peer whose
  /// rejoin was just observed).
  void reliability_tick(std::int64_t now_ms, sim::SimTime now);
  /// Rejoin repair: asks both live ring neighbors for every stored entry
  /// whose key range intersects this node's owned arc. sdsi_node calls it
  /// once at startup when epoch > 0.
  void request_handoff(sim::SimTime now);

  const FailureDetector& detector() const noexcept { return detector_; }

  /// Transport upcall: one decoded frame addressed to this node.
  void deliver(routing::Message&& msg, sim::SimTime now);

  /// Client-side results: per locally-posed query, the set of matched
  /// stream ids (the equivalence test's comparison object).
  const std::map<core::QueryId, std::set<StreamId>>& results() const noexcept {
    return results_;
  }

  const Counters& counters() const noexcept { return counters_; }
  const core::IndexStore& store() const noexcept { return store_; }

 private:
  struct LocalStream {
    std::unique_ptr<core::Summarizer> summarizer;
    core::MbrBatcher batcher;
    std::uint64_t batch_seq = 0;
  };

  /// One tracked local publication: the full payload (for retransmit and
  /// refresh) plus its ack state.
  struct PendingMbr {
    std::shared_ptr<const core::MbrPayload> payload;
    Key lo = 0;
    Key hi = 0;
    bool acked = false;
    std::int64_t last_sent_ms = 0;
    int retries = 0;
  };

  /// One unacked match push awaiting the client's kResponseAck.
  struct PendingResponse {
    std::shared_ptr<const core::ResponsePayload> payload;
    NodeIndex client = kInvalidNode;
    std::int64_t last_sent_ms = 0;
    int retries = 0;
  };

  /// One locally-posed query, kept for the periodic re-subscription sweep.
  struct OwnQuery {
    std::shared_ptr<const core::SimilarityQuery> query;
    Key lo = 0;
    Key hi = 0;
    Key middle = 0;
  };

  bool reliable() const noexcept { return config_.reliability.enabled; }

  void publish_mbr(StreamId stream, LocalStream& state, dsp::Mbr mbr,
                   sim::SimTime now);
  void handle_mbr(const routing::Message& msg, sim::SimTime now);
  void handle_similarity_query(const routing::Message& msg,
                               sim::SimTime now);
  void handle_response(const routing::Message& msg, sim::SimTime now);
  void handle_heartbeat(const routing::Message& msg);
  void handle_mbr_ack(const routing::Message& msg);
  void handle_response_ack(const routing::Message& msg);
  void handle_replica_put(const routing::Message& msg, sim::SimTime now);
  void handle_handoff_request(const routing::Message& msg, sim::SimTime now);
  void handle_anti_entropy_digest(const routing::Message& msg,
                                  sim::SimTime now);
  void handle_anti_entropy_request(const routing::Message& msg,
                                   sim::SimTime now);

  /// Re-emits the range multicast for one tracked publication (retransmit
  /// and refresh share it; receiver-side dedup keeps it idempotent).
  void send_mbr_multicast(const PendingMbr& pending, sim::SimTime now);
  void send_query_multicast(const OwnQuery& own, sim::SimTime now);
  void send_response_push(const PendingResponse& pending, sim::SimTime now);
  /// Point-to-point frame to a specific ring member (no range machinery).
  void send_direct(NodeIndex peer, routing::MsgKind kind, std::any payload,
                   sim::SimTime now);
  /// Sends an anti-entropy digest of this store's entries that intersect
  /// `peer`'s owned arc.
  void send_digest_to(NodeIndex peer, sim::SimTime now);
  /// Builds a ReplicaPutPayload of the stored entries whose key range
  /// intersects the clockwise arc (lo, hi]; empty optional when none do.
  std::optional<core::ReplicaPutPayload> collect_arc_entries(Key lo, Key hi);
  /// Whether the closed key range [lo, hi] intersects the arc (a, b].
  bool range_intersects_arc(Key lo, Key hi, Key a, Key b) const;
  /// First non-dead successor after `from` (wrapping, never self unless the
  /// whole ring is dead); `steps` caps the walk.
  NodeIndex next_live_successor(NodeIndex from);
  NodeIndex next_live_predecessor(NodeIndex from);
  /// Replica of RoutingSystem::forward_range_copies over the transport:
  /// walk the neighbor in every direction whose range endpoint this node
  /// does not cover.
  void forward_range_copies(const routing::Message& msg);
  /// Routes `msg` to successor(key): local delivery loops back through
  /// deliver() without touching the transport, exactly like the sim's
  /// zero-latency local path.
  void route_to_key(Key key, routing::Message msg, sim::SimTime now);
  std::uint64_t next_trace_id() noexcept;
  /// Fire-and-forget multicasts over a multi-probe strategy's extra arcs.
  void send_probe_multicasts(routing::MsgKind kind, std::any payload,
                             const std::vector<std::pair<Key, Key>>& probes,
                             sim::SimTime now);

  const NetRing& ring_;
  NodeIndex self_;
  Transport& transport_;
  NetNodeConfig config_;
  std::unique_ptr<core::IndexingStrategy> strategy_;
  /// Scratch for multi-range probe sets (single-threaded message loop).
  std::vector<std::pair<Key, Key>> range_scratch_;
  core::IndexStore store_;
  std::unordered_map<StreamId, std::unique_ptr<LocalStream>> streams_;
  std::map<core::QueryId, std::set<StreamId>> results_;
  std::uint64_t trace_counter_ = 0;
  Counters counters_;

  // Reliability state (idle unless config_.reliability.enabled).
  FailureDetector detector_;
  std::int64_t clock_ms_ = 0;  // last wall clock seen by a reliability tick
  std::int64_t last_heartbeat_ms_ = -1;
  std::uint64_t heartbeat_seq_ = 0;
  std::int64_t last_refresh_ms_ = 0;
  std::int64_t last_anti_entropy_ms_ = 0;
  std::map<std::pair<StreamId, std::uint64_t>, PendingMbr> published_;
  std::map<std::pair<core::QueryId, std::uint64_t>, PendingResponse>
      unacked_responses_;
  std::uint64_t push_seq_ = 0;
  std::vector<OwnQuery> own_queries_;
  std::set<NodeIndex> pending_repair_;  // rejoined peers owed a digest
};

}  // namespace sdsi::net
