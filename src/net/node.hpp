// NetNode: the paper's data-center pipeline bound to a pluggable Transport —
// the process that actually "breaks out of the simulator".
//
// One NetNode is one ring member: it summarizes its local streams
// (StreamSummarizer -> MbrBatcher), routes closed MBRs and similarity
// subscriptions over the content ring (Eq. 6 ranges, sequential range
// multicast replicated exactly from RoutingSystem::forward_range_copies),
// stores and matches what lands on it (IndexStore), and reports matches.
//
// Scope (documented divergence from the sim middleware, see
// docs/ARCHITECTURE.md "Transport layer"): a detecting node responds to the
// query's client DIRECTLY instead of aggregating reports at the range's
// middle node first, and the reliability layers (acks, refresh, replication,
// overload control) are off. The client-visible matched (stream, query) sets
// are invariant to both choices on a fault-free run — the per-node
// IndexStore dedup plus the client-side stream-set dedup make the report
// route invisible — which is exactly the property the sim-vs-socket
// equivalence test pins.
//
// Clocking: the node never reads a clock; callers pass `now` (the sim clock
// under SimTransport, a wall-clock-derived SimTime in sdsi_node). Lifespans
// only need to be long relative to the run for equivalence to hold.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/batcher.hpp"
#include "core/index_store.hpp"
#include "core/mapper.hpp"
#include "core/query.hpp"
#include "net/ring.hpp"
#include "net/transport.hpp"
#include "streams/summarizer.hpp"

namespace sdsi::net {

struct NetNodeConfig {
  dsp::FeatureConfig features;
  core::MbrBatcher::Options batching;
  sim::Duration mbr_lifespan = sim::Duration::seconds(3600);
  /// Mirror of MiddlewareConfig::store_local_summaries — the sim stores
  /// every closed MBR at its source regardless of key range, so the
  /// equivalence run must too.
  bool store_local_summaries = true;
};

class NetNode {
 public:
  struct Counters {
    std::uint64_t mbrs_published = 0;
    std::uint64_t queries_posed = 0;
    std::uint64_t mbrs_stored = 0;
    std::uint64_t subscriptions_stored = 0;
    std::uint64_t responses_sent = 0;
    std::uint64_t send_failures = 0;  // transport had no route to the peer
  };

  /// The ring and transport must outlive the node. The caller wires
  /// transport.set_deliver to deliver() (the node needs `now` per delivery,
  /// which the Transport interface does not carry).
  NetNode(const NetRing& ring, NodeIndex self, Transport& transport,
          NetNodeConfig config);

  NodeIndex self() const noexcept { return self_; }

  /// Feeds one raw sample of a locally sourced stream; a closed MBR batch
  /// is stored locally and range-multicast over the ring.
  void publish_value(StreamId stream, Sample value, sim::SimTime now);

  /// Poses a continuous similarity query from this node. `id` must be
  /// globally unique (the equivalence driver assigns the same ids the sim
  /// middleware would).
  void subscribe_similarity(core::QueryId id, dsp::FeatureVector features,
                            double radius, sim::Duration lifespan,
                            sim::SimTime now);

  /// Periodic driver (the paper's NPER tick): runs one match pass and
  /// pushes fresh matches to their clients.
  void tick(sim::SimTime now);

  /// Transport upcall: one decoded frame addressed to this node.
  void deliver(routing::Message&& msg, sim::SimTime now);

  /// Client-side results: per locally-posed query, the set of matched
  /// stream ids (the equivalence test's comparison object).
  const std::map<core::QueryId, std::set<StreamId>>& results() const noexcept {
    return results_;
  }

  const Counters& counters() const noexcept { return counters_; }
  const core::IndexStore& store() const noexcept { return store_; }

 private:
  struct LocalStream {
    streams::StreamSummarizer summarizer;
    core::MbrBatcher batcher;
    std::uint64_t batch_seq = 0;
  };

  void publish_mbr(StreamId stream, LocalStream& state, dsp::Mbr mbr,
                   sim::SimTime now);
  void handle_mbr(const routing::Message& msg, sim::SimTime now);
  void handle_similarity_query(const routing::Message& msg);
  void handle_response(const routing::Message& msg);
  /// Replica of RoutingSystem::forward_range_copies over the transport:
  /// walk the neighbor in every direction whose range endpoint this node
  /// does not cover.
  void forward_range_copies(const routing::Message& msg);
  /// Routes `msg` to successor(key): local delivery loops back through
  /// deliver() without touching the transport, exactly like the sim's
  /// zero-latency local path.
  void route_to_key(Key key, routing::Message msg, sim::SimTime now);
  std::uint64_t next_trace_id() noexcept;

  const NetRing& ring_;
  NodeIndex self_;
  Transport& transport_;
  NetNodeConfig config_;
  core::SummaryMapper mapper_;
  core::IndexStore store_;
  std::unordered_map<StreamId, std::unique_ptr<LocalStream>> streams_;
  std::map<core::QueryId, std::set<StreamId>> results_;
  std::uint64_t trace_counter_ = 0;
  Counters counters_;
};

}  // namespace sdsi::net
