// The two reference executions of the sim-vs-socket equivalence gate.
//
// run_sim_reference: the canonical MiddlewareSystem on the simulated
// StaticRing (the exact code path every experiment in EXPERIMENTS.md runs).
// run_net_over_sim_transport: the NetNode pipeline — the same one sdsi_node
// runs over real TCP — driven over SimTransport, i.e. the wire codec and
// transport seam exercised with none of the OS scheduling noise.
//
// Both consume the identical WorkloadConfig and reduce to the same digest:
// the per-query set of matched stream ids. The socket world (tools/net_equiv
// + tools/sdsi_node) compares its merged process outputs against
// run_sim_reference's digest; test_net_equivalence compares all of it
// in-process. Equivalence holds because the matched sets are
// timing-independent on a fault-free run with lifespans longer than the run
// (see docs/ARCHITECTURE.md, "Transport layer").
#pragma once

#include <map>
#include <set>

#include "net/workload.hpp"

namespace sdsi::net {

using MatchDigest = std::map<std::uint64_t, std::set<StreamId>>;

/// Runs the workload through the simulated middleware (StaticRing +
/// MiddlewareSystem, reliability layers off, lifespans >> run length) and
/// returns the per-query matched stream sets.
MatchDigest run_sim_reference(const WorkloadConfig& config);

/// Runs the workload through NetNodes over SimTransport and returns the
/// same digest shape.
MatchDigest run_net_over_sim_transport(const WorkloadConfig& config);

}  // namespace sdsi::net
