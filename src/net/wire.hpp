// Wire protocol v1: the versioned binary serialization of routing::Message.
//
// docs/WIRE_FORMAT.md is the normative spec; this header is its
// implementation. Every frame is a fixed 64-byte little-endian header
// followed by `payload_len` bytes of kind-specific payload (the typed
// structs of core/query.hpp, replacing the in-memory std::any). The v1
// layout is pinned by golden-bytes fixtures (tests/golden/wire_v1/) and
// must never change; protocol evolution bumps the version field.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "routing/message.hpp"

namespace sdsi::net {

/// Frame magic: the ASCII bytes 'S' 'D' 'S' 'I' at offset 0.
inline constexpr std::uint8_t kWireMagic[4] = {0x53, 0x44, 0x53, 0x49};

/// Protocol version this build speaks. Decoders reject every other value
/// (kBadVersion) — v1 makes no compatibility promise beyond itself.
inline constexpr std::uint16_t kWireVersion = 1;

/// Fixed header length in bytes; payload bytes follow immediately.
inline constexpr std::size_t kWireHeaderSize = 64;

/// Envelope flag bits (header offset 8). Bits 3..7 are reserved and must be
/// zero in v1; a set reserved bit rejects the frame.
inline constexpr std::uint8_t kFlagRangeInternal = 0x01;
inline constexpr std::uint8_t kFlagHasRange = 0x02;
inline constexpr std::uint8_t kFlagRerouteOnDead = 0x04;

/// Why a frame was rejected. Decoders must REJECT malformed input — never
/// abort: a remote peer's bytes are not trusted program state.
enum class DecodeResult {
  kOk = 0,
  kTruncated,      // fewer bytes than the header + payload_len promise
  kBadMagic,       // offset 0 is not "SDSI"
  kBadVersion,     // version field != kWireVersion
  kUnknownKind,    // kind field is 0 or past the last assigned kind
  kBadHeader,      // reserved bits/bytes nonzero, or range_dir out of range
  kBadPayload,     // payload bytes do not parse as the kind's schema
  kTrailingBytes,  // input continues past the end of the declared payload
};

/// Stable identifier for logs and test assertions.
const char* decode_result_name(DecodeResult result) noexcept;

/// The decoded fixed header, exposed separately so stream transports can
/// read 64 bytes, learn payload_len, then read the rest of the frame.
struct FrameHeader {
  std::uint16_t version = 0;
  std::uint16_t kind = 0;  // raw: may be unknown to this build
  std::uint8_t flags = 0;
  std::uint8_t range_dir = 0;
  std::uint32_t origin = 0;
  std::uint64_t target_key = 0;
  std::uint64_t range_lo = 0;
  std::uint64_t range_hi = 0;
  std::uint32_t hops = 0;
  std::uint32_t payload_len = 0;
  std::int64_t sent_at_us = 0;
  std::uint64_t trace_id = 0;
};

/// Parses and validates the fixed header (needs >= kWireHeaderSize bytes).
/// kOk means the header is well-formed and its kind is assigned; the caller
/// still owes `payload_len` payload bytes to decode_frame().
DecodeResult decode_header(std::span<const std::uint8_t> bytes,
                           FrameHeader* out);

/// Serializes one message (header + payload) into a fresh buffer. The
/// message must carry a valid kind and the matching
/// std::shared_ptr<const PayloadT> in `payload` — encoding our own state is
/// infallible, so schema violations here abort (SDSI_CHECK).
std::vector<std::uint8_t> encode_frame(const routing::Message& msg);

/// Parses exactly one frame. On kOk, *out carries the envelope fields and a
/// freshly allocated shared_ptr<const PayloadT> payload; on any error *out
/// is untouched. The input must be exactly header + payload (a longer span
/// is kTrailingBytes — stream transports slice frames before calling).
DecodeResult decode_frame(std::span<const std::uint8_t> bytes,
                          routing::Message* out);

}  // namespace sdsi::net
