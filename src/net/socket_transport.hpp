// SocketTransport: the Transport interface over real async TCP (Linux epoll).
//
// Framing is the v1 wire protocol verbatim: each frame is self-delimiting
// (fixed 64-byte header carrying payload_len), so the stream needs no extra
// length prefix. A receiver that sees a malformed header cannot resync a
// byte stream and drops the connection; a well-framed but unparseable
// payload drops only that frame. Malformed input is counted, never fatal.
//
// Connection model (single-threaded, driven by poll()):
//  - one listening socket accepts inbound connections; inbound frames are
//    delivered regardless of which peer sent them (Message::origin names
//    the sender at the protocol layer);
//  - one lazy outbound connection per peer, established on first send();
//    frames queue in a bounded per-peer outbox while the connection is
//    down or congested, and flush as the socket drains;
//  - a failed outbound connection reconnects with exponential backoff
//    (kBackoffStartMs doubling to kBackoffMaxMs); the outbox survives
//    reconnects, so transient peer restarts lose nothing that fit the
//    queue. Overflow beyond kMaxOutboxBytes drops the newest frame
//    (counted) — the middleware's soft state owns end-to-end repair.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "fault/model.hpp"
#include "net/transport.hpp"

namespace sdsi::net {

/// Rejected-input and traffic counters (observability + test assertions).
struct SocketTransportStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t decode_rejects = 0;   // frames dropped by the codec
  std::uint64_t dropped_overflow = 0; // frames dropped at a full outbox
  std::uint64_t connects = 0;         // successful outbound establishments
  std::uint64_t reconnect_attempts = 0;
};

class SocketTransport final : public Transport {
 public:
  static constexpr int kBackoffStartMs = 10;
  static constexpr int kBackoffMaxMs = 2000;
  static constexpr std::size_t kMaxOutboxBytes = 8u << 20;
  /// Upper bound on payload_len accepted from a peer: a header that promises
  /// more is treated as garbage (protects against allocation bombs).
  static constexpr std::uint32_t kMaxPayloadLen = 64u << 20;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port — see listen_port())
  /// and starts listening. Aborts on bind failure: a node that cannot
  /// listen cannot participate.
  explicit SocketTransport(std::uint16_t port);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// The actually-bound listening port.
  std::uint16_t listen_port() const noexcept { return listen_port_; }

  /// Registers/updates the address of a peer endpoint.
  void set_peer(NodeIndex peer, const std::string& host, std::uint16_t port);

  /// True once an outbound connection to `peer` is established (three-way
  /// handshake completed; used as the startup readiness barrier).
  bool connected(NodeIndex peer) const;

  bool send(NodeIndex peer, const routing::Message& msg) override;
  bool send_raw(NodeIndex peer, std::span<const std::uint8_t> frame) override;
  void set_deliver(DeliverFn fn) override { deliver_ = std::move(fn); }
  void poll(int budget_ms) override;
  std::size_t peer_count() const override { return peers_.size(); }

  /// Seeds the deterministic reconnect-backoff jitter (derive the seed from
  /// the node's identity). Unseeded, backoff is the bare doubling ladder —
  /// after a crash takes a peer down, every survivor's retry clock ticks in
  /// lockstep; the jitter spreads each delay uniformly over [½d, 1½d) so a
  /// restart is not greeted by a synchronized reconnect storm.
  void set_backoff_seed(std::uint64_t seed) {
    backoff_rng_ = common::Pcg32(seed, /*stream=*/0x5bcf);
    backoff_jitter_ = true;
  }

  const SocketTransportStats& stats() const noexcept { return stats_; }

  /// This endpoint's losses in the shared fault vocabulary: what send()
  /// shed at a full outbox and what the receive codec rejected. The slugs
  /// (`outbox_overflow`, `malformed_frame`) join the injected causes in
  /// out.json / metrics.json so transport losses are visible to the
  /// robustness accounting, not just local counters.
  std::array<std::uint64_t,
             static_cast<std::size_t>(fault::DropCause::kCount)>
  drops_by_cause() const noexcept {
    std::array<std::uint64_t,
               static_cast<std::size_t>(fault::DropCause::kCount)>
        drops{};
    drops[static_cast<std::size_t>(fault::DropCause::kOutboxOverflow)] =
        stats_.dropped_overflow;
    drops[static_cast<std::size_t>(fault::DropCause::kMalformedFrame)] =
        stats_.decode_rejects;
    return drops;
  }

  /// Bytes accepted by send() but not yet written to a socket, across all
  /// peers. Zero means every queued frame is at least in the kernel's hands
  /// (the flush barrier sdsi_node uses between workload phases).
  std::size_t pending_out_bytes() const noexcept {
    std::size_t pending = 0;
    for (const auto& [peer_index, peer] : peers_) {
      pending += peer.outbox.size() - peer.out_offset;
    }
    return pending;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Peer {
    std::string host;
    std::uint16_t port = 0;
    int fd = -1;             // outbound connection (-1: down)
    bool connecting = false; // nonblocking connect still in flight
    std::vector<std::uint8_t> outbox;  // unsent frame bytes
    std::size_t out_offset = 0;        // consumed prefix of outbox
    int backoff_ms = kBackoffStartMs;
    Clock::time_point next_attempt{};  // earliest next connect try
  };

  struct Inbound {
    int fd = -1;
    std::vector<std::uint8_t> inbuf;
  };

  bool enqueue_frame(NodeIndex peer, std::span<const std::uint8_t> frame);
  void start_connect(NodeIndex peer_index);
  void on_connect_ready(NodeIndex peer_index);
  void fail_connection(NodeIndex peer_index);
  void flush_outbox(NodeIndex peer_index);
  void accept_ready();
  void read_ready(Inbound& conn);
  void close_inbound(int fd);
  /// Parses complete frames out of `inbuf`; returns false when the stream
  /// is unrecoverable (malformed header) and the connection must close.
  bool drain_frames(std::vector<std::uint8_t>& inbuf);

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;
  DeliverFn deliver_;
  std::unordered_map<NodeIndex, Peer> peers_;
  std::unordered_map<int, NodeIndex> outbound_by_fd_;
  std::unordered_map<int, std::unique_ptr<Inbound>> inbound_by_fd_;
  SocketTransportStats stats_;
  common::Pcg32 backoff_rng_;
  bool backoff_jitter_ = false;
};

}  // namespace sdsi::net
