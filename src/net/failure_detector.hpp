// FailureDetector: heartbeat-driven liveness tracking for the socket ring.
//
// Pure logic, no I/O and no clock of its own: NetNode feeds it evidence
// (any delivered frame proves the origin alive; heartbeats additionally
// carry the sender's epoch) and periodically advances it. Each peer walks
// the classic three-state machine on silence:
//
//   alive --(silence >= suspect_after)--> suspect
//   suspect --(silence >= dead_after)--> dead
//   suspect --(any frame)--> alive            (a counted false suspicion)
//   dead --(any frame)--> alive               (recovery, or rejoin when the
//                                              heartbeat epoch advanced)
//
// Policy split that keeps delay-only chaos harmless: routing detours only
// around *dead* peers (usable() == not dead). A suspect still receives
// traffic — jitter-induced false suspicion then costs nothing but a counter
// tick, while a genuinely dead peer is excised once the longer dead_after
// deadline passes. Epochs (incremented by a process on every restart) let a
// peer distinguish "was slow" from "died and came back with an empty
// store" — the trigger for handoff/anti-entropy repair toward the rejoiner.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace sdsi::net {

enum class PeerHealth : std::uint8_t { kAlive = 0, kSuspect = 1, kDead = 2 };

inline const char* peer_health_name(PeerHealth health) {
  switch (health) {
    case PeerHealth::kAlive: return "alive";
    case PeerHealth::kSuspect: return "suspect";
    case PeerHealth::kDead: return "dead";
  }
  return "?";
}

struct FailureDetectorConfig {
  std::int64_t heartbeat_period_ms = 50;  // sender cadence (NetNode uses it)
  std::int64_t suspect_after_ms = 250;    // silence before suspicion
  std::int64_t dead_after_ms = 600;       // silence before excision
};

class FailureDetector {
 public:
  struct Counters {
    std::uint64_t suspects = 0;          // alive -> suspect transitions
    std::uint64_t false_suspicions = 0;  // suspect -> alive recoveries
    std::uint64_t deaths = 0;            // -> dead transitions
    std::uint64_t recoveries = 0;        // dead -> alive (any evidence)
    std::uint64_t rejoins = 0;           // heartbeat epoch advanced
  };

  FailureDetector(FailureDetectorConfig config, std::size_t peers,
                  NodeIndex self)
      : config_(config), self_(self), records_(peers) {}

  /// Any delivered frame from `peer` is liveness evidence.
  void observe_alive(NodeIndex peer, std::int64_t now_ms) {
    if (peer == self_ || peer >= records_.size()) {
      return;
    }
    PeerRecord& record = records_[peer];
    record.last_heard = now_ms;
    revive(record);
  }

  /// Heartbeat evidence: liveness plus the sender's epoch. Returns true
  /// when the epoch advanced past the last recorded one — the peer's
  /// process died and rejoined (possibly between our two observations, so
  /// this fires even if we never saw it as dead).
  bool observe_heartbeat(NodeIndex peer, std::uint64_t epoch,
                         std::int64_t now_ms) {
    if (peer == self_ || peer >= records_.size()) {
      return false;
    }
    PeerRecord& record = records_[peer];
    record.last_heard = now_ms;
    revive(record);
    if (epoch > record.epoch) {
      const bool rejoined = record.epoch_known;
      record.epoch = epoch;
      record.epoch_known = true;
      if (rejoined) {
        ++counters_.rejoins;
      }
      return rejoined;
    }
    record.epoch_known = true;
    return false;
  }

  /// Applies the silence deadlines at `now_ms`. Peers never heard from are
  /// measured from time zero, so a member absent from the start is excised
  /// on the same schedule as one that died mid-run.
  void advance(std::int64_t now_ms) {
    for (NodeIndex peer = 0; peer < records_.size(); ++peer) {
      if (peer == self_) {
        continue;
      }
      PeerRecord& record = records_[peer];
      const std::int64_t silence = now_ms - record.last_heard;
      if (record.health != PeerHealth::kDead &&
          silence >= config_.dead_after_ms) {
        record.health = PeerHealth::kDead;
        ++counters_.deaths;
      } else if (record.health == PeerHealth::kAlive &&
                 silence >= config_.suspect_after_ms) {
        record.health = PeerHealth::kSuspect;
        ++counters_.suspects;
      }
    }
  }

  PeerHealth health(NodeIndex peer) const {
    if (peer >= records_.size() || peer == self_) {
      return PeerHealth::kAlive;
    }
    return records_[peer].health;
  }

  /// Routing policy: suspects still get traffic; only the dead are detoured.
  bool usable(NodeIndex peer) const {
    return health(peer) != PeerHealth::kDead;
  }

  std::uint64_t epoch(NodeIndex peer) const {
    return peer < records_.size() ? records_[peer].epoch : 0;
  }

  const Counters& counters() const noexcept { return counters_; }
  const FailureDetectorConfig& config() const noexcept { return config_; }

 private:
  struct PeerRecord {
    std::int64_t last_heard = 0;
    std::uint64_t epoch = 0;
    bool epoch_known = false;  // first heartbeat baselines, never "rejoins"
    PeerHealth health = PeerHealth::kAlive;
  };

  void revive(PeerRecord& record) {
    if (record.health == PeerHealth::kSuspect) {
      ++counters_.false_suspicions;
    } else if (record.health == PeerHealth::kDead) {
      ++counters_.recoveries;
    }
    record.health = PeerHealth::kAlive;
  }

  FailureDetectorConfig config_;
  NodeIndex self_;
  std::vector<PeerRecord> records_;
  Counters counters_;
};

}  // namespace sdsi::net
