#include "net/wire.hpp"

#include <bit>
#include <cstring>
#include <memory>
#include <utility>

#include "common/check.hpp"
#include "core/query.hpp"
#include "dsp/features.hpp"
#include "dsp/mbr.hpp"

namespace sdsi::net {

namespace {

using core::AggregatorReplicaPayload;
using core::AntiEntropyDigestPayload;
using core::AntiEntropyRequestPayload;
using core::HandoffRequestPayload;
using core::HeartbeatPayload;
using core::InnerProductQuery;
using core::InnerProductQueryPayload;
using core::LocationGetPayload;
using core::LocationPutPayload;
using core::LocationReplyPayload;
using core::MatchReport;
using core::MbrAckPayload;
using core::MbrBatchId;
using core::MbrPayload;
using core::NeighborDigestPayload;
using core::ReplicaMbrEntry;
using core::ReplicaPutPayload;
using core::ReplicaSubscriptionEntry;
using core::ResponseAckPayload;
using core::ResponsePayload;
using core::SimilarityMatch;
using core::SimilarityQuery;
using core::SimilarityQueryPayload;
using routing::Message;
using routing::MsgKind;
using routing::RangeDir;

// --- Little-endian primitives -----------------------------------------------

class Writer {
 public:
  std::vector<std::uint8_t>& buf() noexcept { return buf_; }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
      buf_.push_back(static_cast<std::uint8_t>(v >> shift));
    }
  }
  void u64(std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      buf_.push_back(static_cast<std::uint8_t>(v >> shift));
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// IEEE-754 bit pattern, little-endian — exact round-trip for every
  /// double including NaN payloads and signed zero.
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  bool ok() const noexcept { return ok_; }
  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return bytes_[pos_ - 1];
  }
  std::uint16_t u16() {
    if (!take(2)) return 0;
    return static_cast<std::uint16_t>(
        bytes_[pos_ - 2] | (static_cast<std::uint16_t>(bytes_[pos_ - 1]) << 8));
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[pos_ - 4 + i]) << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_ - 8 + i]) << (8 * i);
    }
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }

  /// Canonical bool: exactly 0 or 1; anything else poisons the reader.
  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) ok_ = false;
    return v == 1;
  }

  /// Element count of a length-prefixed vector. Rejects counts that cannot
  /// possibly fit in the remaining bytes (every element is >= 1 byte), so a
  /// corrupt length cannot drive a multi-gigabyte allocation.
  std::size_t count() {
    const std::uint32_t n = u32();
    if (n > remaining()) {
      ok_ = false;
      return 0;
    }
    return n;
  }

  void fail() noexcept { ok_ = false; }

 private:
  bool take(std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- Shared composite codecs ------------------------------------------------

void put_time(Writer& w, sim::SimTime t) { w.i64(t.count_micros()); }
sim::SimTime get_time(Reader& r) { return sim::SimTime::from_micros(r.i64()); }

void put_duration(Writer& w, sim::Duration d) { w.i64(d.count_micros()); }
sim::Duration get_duration(Reader& r) {
  return sim::Duration::micros(r.i64());
}

void put_features(Writer& w, const dsp::FeatureVector& features) {
  w.u32(static_cast<std::uint32_t>(features.size()));
  for (const dsp::Complex& c : features.coefficients()) {
    w.f64(c.real());
    w.f64(c.imag());
  }
}
dsp::FeatureVector get_features(Reader& r) {
  const std::size_t n = r.count();
  std::vector<dsp::Complex> coeffs;
  coeffs.reserve(n);
  for (std::size_t i = 0; i < n && r.ok(); ++i) {
    const double re = r.f64();
    const double im = r.f64();
    coeffs.emplace_back(re, im);
  }
  return dsp::FeatureVector(std::move(coeffs));
}

void put_mbr(Writer& w, const dsp::Mbr& mbr) {
  w.u32(static_cast<std::uint32_t>(mbr.dimensions()));
  for (const double v : mbr.low()) w.f64(v);
  for (const double v : mbr.high()) w.f64(v);
}
dsp::Mbr get_mbr(Reader& r) {
  const std::size_t dims = r.count();
  std::vector<double> low(dims), high(dims);
  for (std::size_t i = 0; i < dims && r.ok(); ++i) low[i] = r.f64();
  for (std::size_t i = 0; i < dims && r.ok(); ++i) high[i] = r.f64();
  if (!r.ok() || dims == 0) {
    return dsp::Mbr();
  }
  // Mbr's invariant (low_i <= high_i) is enforced by its constructor with an
  // abort; a hostile frame must not reach it.
  for (std::size_t i = 0; i < dims; ++i) {
    if (!(low[i] <= high[i])) {
      r.fail();
      return dsp::Mbr();
    }
  }
  return dsp::Mbr(std::move(low), std::move(high));
}

void put_doubles(Writer& w, const std::vector<double>& values) {
  w.u32(static_cast<std::uint32_t>(values.size()));
  for (const double v : values) w.f64(v);
}
std::vector<double> get_doubles(Reader& r) {
  const std::size_t n = r.count();
  std::vector<double> values;
  values.reserve(n);
  for (std::size_t i = 0; i < n && r.ok(); ++i) values.push_back(r.f64());
  return values;
}

void put_query(Writer& w, const SimilarityQuery& q) {
  w.u64(q.id);
  w.u32(q.client);
  put_features(w, q.features);
  w.f64(q.radius);
  put_duration(w, q.lifespan);
  put_time(w, q.issued_at);
}
SimilarityQuery get_query(Reader& r) {
  SimilarityQuery q;
  q.id = r.u64();
  q.client = r.u32();
  q.features = get_features(r);
  q.radius = r.f64();
  q.lifespan = get_duration(r);
  q.issued_at = get_time(r);
  return q;
}

void put_match(Writer& w, const SimilarityMatch& m) {
  w.u64(m.query);
  w.u64(m.stream);
  w.f64(m.bound_distance);
  put_time(w, m.detected_at);
}
SimilarityMatch get_match(Reader& r) {
  SimilarityMatch m;
  m.query = r.u64();
  m.stream = r.u64();
  m.bound_distance = r.f64();
  m.detected_at = get_time(r);
  return m;
}

void put_matches(Writer& w, const std::vector<SimilarityMatch>& matches) {
  w.u32(static_cast<std::uint32_t>(matches.size()));
  for (const SimilarityMatch& m : matches) put_match(w, m);
}
std::vector<SimilarityMatch> get_matches(Reader& r) {
  const std::size_t n = r.count();
  std::vector<SimilarityMatch> matches;
  matches.reserve(n);
  for (std::size_t i = 0; i < n && r.ok(); ++i) {
    matches.push_back(get_match(r));
  }
  return matches;
}

void put_batch_ids(Writer& w, const std::vector<MbrBatchId>& ids) {
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (const MbrBatchId& id : ids) {
    w.u64(id.stream);
    w.u64(id.batch_seq);
  }
}
std::vector<MbrBatchId> get_batch_ids(Reader& r) {
  const std::size_t n = r.count();
  std::vector<MbrBatchId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n && r.ok(); ++i) {
    MbrBatchId id;
    id.stream = r.u64();
    id.batch_seq = r.u64();
    ids.push_back(id);
  }
  return ids;
}

void put_query_ids(Writer& w, const std::vector<core::QueryId>& ids) {
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (const core::QueryId id : ids) w.u64(id);
}
std::vector<core::QueryId> get_query_ids(Reader& r) {
  const std::size_t n = r.count();
  std::vector<core::QueryId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n && r.ok(); ++i) ids.push_back(r.u64());
  return ids;
}

// --- Per-kind payload codecs ------------------------------------------------

template <typename T>
const T& payload_of(const Message& msg) {
  const auto* ptr = std::any_cast<std::shared_ptr<const T>>(&msg.payload);
  SDSI_CHECK(ptr != nullptr && *ptr != nullptr);
  return **ptr;
}

void encode_payload(Writer& w, const Message& msg) {
  switch (msg.kind) {
    case MsgKind::kInvalid:
      break;  // encode of an invalid kind is a bug; abort below
    case MsgKind::kMbrUpdate: {
      const auto& p = payload_of<MbrPayload>(msg);
      w.u64(p.stream);
      w.u32(p.source);
      put_mbr(w, p.mbr);
      w.u64(p.batch_seq);
      put_time(w, p.expires);
      return;
    }
    case MsgKind::kSimilarityQuery: {
      const auto& p = payload_of<SimilarityQueryPayload>(msg);
      SDSI_CHECK(p.query != nullptr);
      put_query(w, *p.query);
      w.u64(p.middle_key);
      return;
    }
    case MsgKind::kInnerProductQuery: {
      const auto& p = payload_of<InnerProductQueryPayload>(msg);
      SDSI_CHECK(p.query != nullptr);
      const InnerProductQuery& q = *p.query;
      w.u64(q.id);
      w.u32(q.client);
      w.u64(q.stream);
      put_doubles(w, q.index);
      put_doubles(w, q.weights);
      put_duration(w, q.lifespan);
      put_time(w, q.issued_at);
      return;
    }
    case MsgKind::kResponse: {
      const auto& p = payload_of<ResponsePayload>(msg);
      w.u64(p.query);
      w.u32(p.client);
      w.u8(p.inner_product ? 1 : 0);
      put_matches(w, p.matches);
      w.f64(p.inner_product_value);
      w.u32(p.aggregator);
      w.u64(p.push_seq);
      return;
    }
    case MsgKind::kNeighborExchange: {
      const auto& p = payload_of<NeighborDigestPayload>(msg);
      w.u32(static_cast<std::uint32_t>(p.reports.size()));
      for (const MatchReport& report : p.reports) {
        put_match(w, report.match);
        w.u32(report.client);
        w.u64(report.middle_key);
        put_time(w, report.query_expires);
      }
      return;
    }
    case MsgKind::kLocationPut: {
      const auto& p = payload_of<LocationPutPayload>(msg);
      w.u64(p.stream);
      w.u32(p.source);
      return;
    }
    case MsgKind::kLocationGet: {
      const auto& p = payload_of<LocationGetPayload>(msg);
      w.u64(p.stream);
      w.u32(p.requester);
      return;
    }
    case MsgKind::kLocationReply: {
      const auto& p = payload_of<LocationReplyPayload>(msg);
      w.u64(p.stream);
      w.u32(p.source);
      return;
    }
    case MsgKind::kMbrAck: {
      const auto& p = payload_of<MbrAckPayload>(msg);
      w.u64(p.stream);
      w.u64(p.batch_seq);
      return;
    }
    case MsgKind::kResponseAck: {
      const auto& p = payload_of<ResponseAckPayload>(msg);
      w.u64(p.query);
      w.u64(p.push_seq);
      return;
    }
    case MsgKind::kReplicaPut: {
      const auto& p = payload_of<ReplicaPutPayload>(msg);
      w.u32(p.from);
      w.u32(static_cast<std::uint32_t>(p.mbrs.size()));
      for (const ReplicaMbrEntry& entry : p.mbrs) {
        w.u64(entry.stream);
        w.u32(entry.source);
        put_mbr(w, entry.mbr);
        w.u64(entry.batch_seq);
        put_time(w, entry.expires);
      }
      w.u32(static_cast<std::uint32_t>(p.subscriptions.size()));
      for (const ReplicaSubscriptionEntry& entry : p.subscriptions) {
        SDSI_CHECK(entry.query != nullptr);
        put_query(w, *entry.query);
        w.u64(entry.middle_key);
        put_time(w, entry.expires);
      }
      w.u8(p.handoff ? 1 : 0);
      w.u8(p.repair ? 1 : 0);
      return;
    }
    case MsgKind::kHandoffRequest: {
      const auto& p = payload_of<HandoffRequestPayload>(msg);
      w.u32(p.requester);
      w.u64(p.lo);
      w.u64(p.hi);
      return;
    }
    case MsgKind::kAntiEntropyDigest: {
      const auto& p = payload_of<AntiEntropyDigestPayload>(msg);
      w.u32(p.from);
      w.u64(p.lo);
      w.u64(p.hi);
      put_batch_ids(w, p.mbr_keys);
      put_query_ids(w, p.query_ids);
      return;
    }
    case MsgKind::kAntiEntropyRequest: {
      const auto& p = payload_of<AntiEntropyRequestPayload>(msg);
      w.u32(p.requester);
      put_batch_ids(w, p.mbr_keys);
      put_query_ids(w, p.query_ids);
      return;
    }
    case MsgKind::kAggregatorReplica: {
      const auto& p = payload_of<AggregatorReplicaPayload>(msg);
      w.u64(p.query);
      w.u32(p.client);
      w.u64(p.middle_key);
      put_time(w, p.expires);
      w.u32(p.owner);
      put_matches(w, p.matches);
      return;
    }
    case MsgKind::kHeartbeat: {
      const auto& p = payload_of<HeartbeatPayload>(msg);
      w.u32(p.from);
      w.u64(p.epoch);
      w.u64(p.seq);
      return;
    }
  }
  SDSI_CHECK(false && "encode_frame: message kind carries no codec");
}

template <typename T>
void emplace_payload(Message* out, T value) {
  out->payload = std::shared_ptr<const T>(std::make_shared<T>(std::move(value)));
}

/// Payload parser; returns false when the bytes violate the kind's schema.
bool decode_payload(Reader& r, MsgKind kind, Message* out) {
  switch (kind) {
    case MsgKind::kInvalid:
      return false;  // unreachable: decode_header rejects unknown kinds
    case MsgKind::kMbrUpdate: {
      MbrPayload p;
      p.stream = r.u64();
      p.source = r.u32();
      p.mbr = get_mbr(r);
      p.batch_seq = r.u64();
      p.expires = get_time(r);
      if (!r.ok()) return false;
      emplace_payload(out, std::move(p));
      return true;
    }
    case MsgKind::kSimilarityQuery: {
      SimilarityQueryPayload p;
      p.query = std::make_shared<const SimilarityQuery>(get_query(r));
      p.middle_key = r.u64();
      if (!r.ok()) return false;
      emplace_payload(out, std::move(p));
      return true;
    }
    case MsgKind::kInnerProductQuery: {
      InnerProductQuery q;
      q.id = r.u64();
      q.client = r.u32();
      q.stream = r.u64();
      q.index = get_doubles(r);
      q.weights = get_doubles(r);
      q.lifespan = get_duration(r);
      q.issued_at = get_time(r);
      if (!r.ok()) return false;
      InnerProductQueryPayload p;
      p.query = std::make_shared<const InnerProductQuery>(std::move(q));
      emplace_payload(out, std::move(p));
      return true;
    }
    case MsgKind::kResponse: {
      ResponsePayload p;
      p.query = r.u64();
      p.client = r.u32();
      p.inner_product = r.boolean();
      p.matches = get_matches(r);
      p.inner_product_value = r.f64();
      p.aggregator = r.u32();
      p.push_seq = r.u64();
      if (!r.ok()) return false;
      emplace_payload(out, std::move(p));
      return true;
    }
    case MsgKind::kNeighborExchange: {
      NeighborDigestPayload p;
      const std::size_t n = r.count();
      p.reports.reserve(n);
      for (std::size_t i = 0; i < n && r.ok(); ++i) {
        MatchReport report;
        report.match = get_match(r);
        report.client = r.u32();
        report.middle_key = r.u64();
        report.query_expires = get_time(r);
        p.reports.push_back(std::move(report));
      }
      if (!r.ok()) return false;
      emplace_payload(out, std::move(p));
      return true;
    }
    case MsgKind::kLocationPut: {
      LocationPutPayload p;
      p.stream = r.u64();
      p.source = r.u32();
      if (!r.ok()) return false;
      emplace_payload(out, std::move(p));
      return true;
    }
    case MsgKind::kLocationGet: {
      LocationGetPayload p;
      p.stream = r.u64();
      p.requester = r.u32();
      if (!r.ok()) return false;
      emplace_payload(out, std::move(p));
      return true;
    }
    case MsgKind::kLocationReply: {
      LocationReplyPayload p;
      p.stream = r.u64();
      p.source = r.u32();
      if (!r.ok()) return false;
      emplace_payload(out, std::move(p));
      return true;
    }
    case MsgKind::kMbrAck: {
      MbrAckPayload p;
      p.stream = r.u64();
      p.batch_seq = r.u64();
      if (!r.ok()) return false;
      emplace_payload(out, std::move(p));
      return true;
    }
    case MsgKind::kResponseAck: {
      ResponseAckPayload p;
      p.query = r.u64();
      p.push_seq = r.u64();
      if (!r.ok()) return false;
      emplace_payload(out, std::move(p));
      return true;
    }
    case MsgKind::kReplicaPut: {
      ReplicaPutPayload p;
      p.from = r.u32();
      const std::size_t nmbrs = r.count();
      p.mbrs.reserve(nmbrs);
      for (std::size_t i = 0; i < nmbrs && r.ok(); ++i) {
        ReplicaMbrEntry entry;
        entry.stream = r.u64();
        entry.source = r.u32();
        entry.mbr = get_mbr(r);
        entry.batch_seq = r.u64();
        entry.expires = get_time(r);
        p.mbrs.push_back(std::move(entry));
      }
      const std::size_t nsubs = r.count();
      p.subscriptions.reserve(nsubs);
      for (std::size_t i = 0; i < nsubs && r.ok(); ++i) {
        ReplicaSubscriptionEntry entry;
        entry.query = std::make_shared<const SimilarityQuery>(get_query(r));
        entry.middle_key = r.u64();
        entry.expires = get_time(r);
        p.subscriptions.push_back(std::move(entry));
      }
      p.handoff = r.boolean();
      p.repair = r.boolean();
      if (!r.ok()) return false;
      emplace_payload(out, std::move(p));
      return true;
    }
    case MsgKind::kHandoffRequest: {
      HandoffRequestPayload p;
      p.requester = r.u32();
      p.lo = r.u64();
      p.hi = r.u64();
      if (!r.ok()) return false;
      emplace_payload(out, std::move(p));
      return true;
    }
    case MsgKind::kAntiEntropyDigest: {
      AntiEntropyDigestPayload p;
      p.from = r.u32();
      p.lo = r.u64();
      p.hi = r.u64();
      p.mbr_keys = get_batch_ids(r);
      p.query_ids = get_query_ids(r);
      if (!r.ok()) return false;
      emplace_payload(out, std::move(p));
      return true;
    }
    case MsgKind::kAntiEntropyRequest: {
      AntiEntropyRequestPayload p;
      p.requester = r.u32();
      p.mbr_keys = get_batch_ids(r);
      p.query_ids = get_query_ids(r);
      if (!r.ok()) return false;
      emplace_payload(out, std::move(p));
      return true;
    }
    case MsgKind::kAggregatorReplica: {
      AggregatorReplicaPayload p;
      p.query = r.u64();
      p.client = r.u32();
      p.middle_key = r.u64();
      p.expires = get_time(r);
      p.owner = r.u32();
      p.matches = get_matches(r);
      if (!r.ok()) return false;
      emplace_payload(out, std::move(p));
      return true;
    }
    case MsgKind::kHeartbeat: {
      HeartbeatPayload p;
      p.from = r.u32();
      p.epoch = r.u64();
      p.seq = r.u64();
      if (!r.ok()) return false;
      emplace_payload(out, std::move(p));
      return true;
    }
  }
  return false;
}

}  // namespace

const char* decode_result_name(DecodeResult result) noexcept {
  switch (result) {
    case DecodeResult::kOk: return "ok";
    case DecodeResult::kTruncated: return "truncated";
    case DecodeResult::kBadMagic: return "bad_magic";
    case DecodeResult::kBadVersion: return "bad_version";
    case DecodeResult::kUnknownKind: return "unknown_kind";
    case DecodeResult::kBadHeader: return "bad_header";
    case DecodeResult::kBadPayload: return "bad_payload";
    case DecodeResult::kTrailingBytes: return "trailing_bytes";
  }
  return "unknown";
}

DecodeResult decode_header(std::span<const std::uint8_t> bytes,
                           FrameHeader* out) {
  if (bytes.size() < kWireHeaderSize) {
    return DecodeResult::kTruncated;
  }
  if (std::memcmp(bytes.data(), kWireMagic, sizeof(kWireMagic)) != 0) {
    return DecodeResult::kBadMagic;
  }
  Reader r(bytes.subspan(4, kWireHeaderSize - 4));
  FrameHeader h;
  h.version = r.u16();
  h.kind = r.u16();
  h.flags = r.u8();
  h.range_dir = r.u8();
  const std::uint16_t reserved = r.u16();
  h.origin = r.u32();
  h.target_key = r.u64();
  h.range_lo = r.u64();
  h.range_hi = r.u64();
  h.hops = r.u32();
  h.payload_len = r.u32();
  h.sent_at_us = r.i64();
  h.trace_id = r.u64();
  SDSI_CHECK(r.ok() && r.remaining() == 0);  // fixed-size read cannot fail
  if (h.version != kWireVersion) {
    return DecodeResult::kBadVersion;
  }
  if (!routing::msg_kind_known(h.kind)) {
    return DecodeResult::kUnknownKind;
  }
  if (reserved != 0 ||
      (h.flags & ~(kFlagRangeInternal | kFlagHasRange | kFlagRerouteOnDead)) !=
          0 ||
      h.range_dir > static_cast<std::uint8_t>(RangeDir::kBoth) ||
      // hops lives in a signed int in Message; a value that cannot round-trip
      // (> 2^31 - 1) is garbage, not a plausible overlay hop count.
      h.hops > 0x7FFFFFFFu) {
    return DecodeResult::kBadHeader;
  }
  if (out != nullptr) {
    *out = h;
  }
  return DecodeResult::kOk;
}

std::vector<std::uint8_t> encode_frame(const Message& msg) {
  Writer w;
  w.buf().reserve(kWireHeaderSize + 64);
  for (const std::uint8_t b : kWireMagic) w.u8(b);
  w.u16(kWireVersion);
  w.u16(static_cast<std::uint16_t>(msg.kind));
  std::uint8_t flags = 0;
  if (msg.range_internal) flags |= kFlagRangeInternal;
  if (msg.has_range) flags |= kFlagHasRange;
  if (msg.reroute_on_dead) flags |= kFlagRerouteOnDead;
  w.u8(flags);
  w.u8(static_cast<std::uint8_t>(msg.range_dir));
  w.u16(0);  // reserved
  w.u32(msg.origin);
  w.u64(msg.target_key);
  w.u64(msg.range_lo);
  w.u64(msg.range_hi);
  SDSI_CHECK(msg.hops >= 0);
  w.u32(static_cast<std::uint32_t>(msg.hops));
  w.u32(0);  // payload_len backpatched below
  w.i64(msg.sent_at.count_micros());
  w.u64(msg.trace_id);
  SDSI_CHECK(w.buf().size() == kWireHeaderSize);

  encode_payload(w, msg);
  const std::size_t payload_len = w.buf().size() - kWireHeaderSize;
  SDSI_CHECK(payload_len <= UINT32_MAX);
  const auto len32 = static_cast<std::uint32_t>(payload_len);
  for (std::size_t i = 0; i < 4; ++i) {
    w.buf()[44 + i] = static_cast<std::uint8_t>(len32 >> (8 * i));
  }
  return std::move(w.buf());
}

DecodeResult decode_frame(std::span<const std::uint8_t> bytes, Message* out) {
  FrameHeader h;
  const DecodeResult header_result = decode_header(bytes, &h);
  if (header_result != DecodeResult::kOk) {
    return header_result;
  }
  const std::size_t frame_len = kWireHeaderSize + h.payload_len;
  if (bytes.size() < frame_len) {
    return DecodeResult::kTruncated;
  }
  if (bytes.size() > frame_len) {
    return DecodeResult::kTrailingBytes;
  }

  Message msg;
  msg.target_key = h.target_key;
  msg.origin = h.origin;
  msg.kind = static_cast<MsgKind>(h.kind);
  msg.range_internal = (h.flags & kFlagRangeInternal) != 0;
  msg.has_range = (h.flags & kFlagHasRange) != 0;
  msg.reroute_on_dead = (h.flags & kFlagRerouteOnDead) != 0;
  msg.range_dir = static_cast<RangeDir>(h.range_dir);
  msg.range_lo = h.range_lo;
  msg.range_hi = h.range_hi;
  msg.hops = static_cast<int>(h.hops);
  msg.sent_at = sim::SimTime::from_micros(h.sent_at_us);
  msg.trace_id = h.trace_id;

  Reader r(bytes.subspan(kWireHeaderSize, h.payload_len));
  if (!decode_payload(r, msg.kind, &msg) || !r.ok() || r.remaining() != 0) {
    return DecodeResult::kBadPayload;
  }
  *out = std::move(msg);
  return DecodeResult::kOk;
}

}  // namespace sdsi::net
