// Wire-shadow mode: run the simulator's transmission path through the v1
// wire codec.
//
// install_wire_shadow() sets a RoutingSystem transmit filter that, for every
// envelope entering a transmission deferral, (1) encodes it to wire bytes,
// (2) decodes those bytes back into a fresh Message, (3) re-encodes the
// decoded copy and aborts unless the two byte strings are identical, and
// (4) replaces the in-flight envelope with the decoded copy — so everything
// the receiving node observes actually crossed the serialization boundary.
//
// This is the SimTransport equivalence gate of docs/WIRE_FORMAT.md: a
// seeded experiment must produce byte-identical metrics.json and identical
// matched (stream, query) sets with the shadow on and off
// (tests/test_wire_shadow.cpp; `sdsi_sim --wire-shadow`).
#pragma once

#include <cstdint>
#include <memory>

#include "routing/api.hpp"

namespace sdsi::net {

/// Codec traffic counters of one shadow installation (alive as long as the
/// filter is installed; read them after the run).
struct WireShadowStats {
  std::uint64_t frames = 0;  // envelopes pushed through encode/decode
  std::uint64_t bytes = 0;   // total encoded frame bytes
};

/// Installs the shadow filter on `routing` (replacing any previous transmit
/// filter) and returns the stats block it feeds.
std::shared_ptr<const WireShadowStats> install_wire_shadow(
    routing::RoutingSystem& routing);

}  // namespace sdsi::net
