// FaultyTransport: seeded fault injection as a Transport decorator.
//
// Wraps any net::Transport and applies the link-fault processes of a
// fault::FaultPlan to every outbound frame — the socket ring's counterpart
// of the sim's RoutingSystem-level LinkFaultModel hook:
//
//  - uniform and Gilbert-Elliott bursty loss (sampled per frame, sender
//    side, exactly the LinkFaultModel processes);
//  - latency jitter and probabilistic reorder: the frame is encoded once
//    and parked in a delay queue, released through inner.send_raw() when
//    its due time passes (poll() drives the release);
//  - byte corruption: one payload byte of the encoded frame is XORed with
//    a seeded nonzero mask. The header survives, so framing resyncs and
//    the receiver charges a malformed_frame drop (or, rarely, decodes an
//    altered payload — exactly what bit rot does to a framed stream).
//
// Every decision draws from Pcg32 streams derived from one seed, so a chaos
// run over real sockets is as reproducible as scheduling allows, and a
// fully idle plan (has_link_faults() == false) forwards verbatim — the
// decorator is then observationally identical to the bare transport.
//
// Accounting contract (the chaos gate's zero-unaccounted-drops check):
//   offered == forwarded + dropped() + pending_delayed()
// holds at every instant; dropped() splits by DropCause so injected losses
// join the transport's own (outbox_overflow, malformed_frame) under the
// shared slug vocabulary.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/ring_math.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "fault/model.hpp"
#include "net/transport.hpp"

namespace sdsi::net {

struct FaultyTransportStats {
  std::uint64_t offered = 0;    // frames handed to send()
  std::uint64_t forwarded = 0;  // frames handed on to the inner transport
  std::uint64_t dropped_uniform = 0;
  std::uint64_t dropped_burst = 0;
  std::uint64_t dropped_partition = 0;
  std::uint64_t corrupted = 0;  // forwarded, but with one byte flipped
  std::uint64_t delayed = 0;    // parked in the delay queue at send time
  std::uint64_t reordered = 0;  // drew the extra reorder delay
  std::uint64_t forward_failures = 0;  // inner transport refused the frame

  std::uint64_t dropped() const noexcept {
    return dropped_uniform + dropped_burst + dropped_partition;
  }

  /// Injected losses in the shared DropCause vocabulary (out.json joins
  /// these with the inner transport's own endpoint drops).
  std::array<std::uint64_t, static_cast<std::size_t>(fault::DropCause::kCount)>
  drops_by_cause() const noexcept {
    std::array<std::uint64_t,
               static_cast<std::size_t>(fault::DropCause::kCount)>
        drops{};
    drops[static_cast<std::size_t>(fault::DropCause::kUniformLoss)] =
        dropped_uniform;
    drops[static_cast<std::size_t>(fault::DropCause::kBurstLoss)] =
        dropped_burst;
    drops[static_cast<std::size_t>(fault::DropCause::kPartition)] =
        dropped_partition;
    return drops;
  }
};

class FaultyTransport final : public Transport {
 public:
  /// Monotone milliseconds; injectable so tests drive the delay queue with
  /// a fake clock. The default counts from construction (steady_clock).
  using ClockFn = std::function<std::int64_t()>;

  /// The inner transport must outlive this decorator. `space` is the ring's
  /// id space (partition windows test target keys against it); `seed`
  /// derives every fault stream — same seed, same plan, same send sequence
  /// => same faults.
  FaultyTransport(Transport& inner, fault::FaultPlan plan,
                  common::IdSpace space, std::uint64_t seed);

  void set_clock(ClockFn clock) { clock_ms_ = std::move(clock); }

  bool send(NodeIndex peer, const routing::Message& msg) override;
  /// Raw frames pass through verbatim: the only raw sender above a
  /// FaultyTransport is another fault layer, and double-faulting one frame
  /// would break the accounting identity.
  bool send_raw(NodeIndex peer, std::span<const std::uint8_t> frame) override;
  void set_deliver(DeliverFn fn) override { inner_.set_deliver(std::move(fn)); }
  /// Releases every delayed frame whose due time passed, then polls the
  /// inner transport.
  void poll(int budget_ms) override;
  std::size_t peer_count() const override { return inner_.peer_count(); }

  /// Frames parked in the delay queue (settle barriers must wait for zero).
  std::size_t pending_delayed() const noexcept { return delayed_.size(); }

  const FaultyTransportStats& stats() const noexcept { return stats_; }
  const fault::FaultPlan& plan() const noexcept { return model_.plan(); }

 private:
  struct DelayedFrame {
    std::int64_t due_ms = 0;
    std::uint64_t seq = 0;  // FIFO among equal due times
    NodeIndex peer = kInvalidNode;
    std::vector<std::uint8_t> bytes;
    friend bool operator>(const DelayedFrame& a, const DelayedFrame& b) {
      return a.due_ms != b.due_ms ? a.due_ms > b.due_ms : a.seq > b.seq;
    }
  };

  void release_due(std::int64_t now_ms);

  Transport& inner_;
  fault::LinkFaultModel model_;
  common::Pcg32 aux_;  // corrupt/reorder decisions + corrupt byte choice
  ClockFn clock_ms_;
  std::priority_queue<DelayedFrame, std::vector<DelayedFrame>,
                      std::greater<DelayedFrame>>
      delayed_;
  std::uint64_t next_seq_ = 0;
  FaultyTransportStats stats_;
};

}  // namespace sdsi::net
