#include "net/faulty_transport.hpp"

#include <chrono>
#include <utility>

#include "net/wire.hpp"

namespace sdsi::net {

FaultyTransport::FaultyTransport(Transport& inner, fault::FaultPlan plan,
                                 common::IdSpace space, std::uint64_t seed)
    : inner_(inner),
      model_(std::move(plan), space, common::Pcg32(seed, /*stream=*/0x11)),
      aux_(seed, /*stream=*/0x22) {
  clock_ms_ = [start = std::chrono::steady_clock::now()] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
}

bool FaultyTransport::send(NodeIndex peer, const routing::Message& msg) {
  ++stats_.offered;
  const std::int64_t now_ms = clock_ms_();
  if (const std::optional<fault::DropCause> cause = model_.sample_drop(
          msg.target_key, sim::SimTime::from_micros(now_ms * 1000))) {
    switch (*cause) {
      case fault::DropCause::kUniformLoss:
        ++stats_.dropped_uniform;
        break;
      case fault::DropCause::kBurstLoss:
        ++stats_.dropped_burst;
        break;
      default:
        ++stats_.dropped_partition;
        break;
    }
    return true;  // the sender's frame left; the wire ate it (accounted)
  }

  const fault::FaultPlan& plan = model_.plan();
  std::int64_t delay_ms = model_.sample_jitter().count_micros() / 1000;
  if (plan.reorder > 0.0 && aux_.uniform01() < plan.reorder) {
    ++stats_.reordered;
    delay_ms += plan.reorder_extra.count_micros() / 1000;
  }
  const bool corrupt = plan.corrupt > 0.0 && aux_.uniform01() < plan.corrupt;

  if (!corrupt && delay_ms <= 0) {
    // Clean immediate frame: hand over the in-memory form so a fault-free
    // plan stays byte-for-byte the bare transport's behavior.
    ++stats_.forwarded;
    if (inner_.send(peer, msg)) {
      return true;
    }
    ++stats_.forward_failures;
    return false;
  }

  std::vector<std::uint8_t> frame = encode_frame(msg);
  if (corrupt && frame.size() > kWireHeaderSize) {
    ++stats_.corrupted;
    const std::size_t index =
        kWireHeaderSize +
        aux_.bounded(static_cast<std::uint32_t>(frame.size() -
                                                kWireHeaderSize));
    frame[index] ^= static_cast<std::uint8_t>(1 + aux_.bounded(255));
  }
  if (delay_ms <= 0) {
    ++stats_.forwarded;
    if (inner_.send_raw(peer, frame)) {
      return true;
    }
    ++stats_.forward_failures;
    return false;
  }
  ++stats_.delayed;
  delayed_.push(
      DelayedFrame{now_ms + delay_ms, next_seq_++, peer, std::move(frame)});
  return true;
}

bool FaultyTransport::send_raw(NodeIndex peer,
                               std::span<const std::uint8_t> frame) {
  ++stats_.offered;
  ++stats_.forwarded;
  if (inner_.send_raw(peer, frame)) {
    return true;
  }
  ++stats_.forward_failures;
  return false;
}

void FaultyTransport::release_due(std::int64_t now_ms) {
  while (!delayed_.empty() && delayed_.top().due_ms <= now_ms) {
    // priority_queue::top is const; the element is discarded right after,
    // so moving its buffer out is safe.
    DelayedFrame frame = std::move(const_cast<DelayedFrame&>(delayed_.top()));
    delayed_.pop();
    ++stats_.forwarded;
    if (!inner_.send_raw(frame.peer, frame.bytes)) {
      ++stats_.forward_failures;
    }
  }
}

void FaultyTransport::poll(int budget_ms) {
  release_due(clock_ms_());
  inner_.poll(budget_ms);
}

}  // namespace sdsi::net
