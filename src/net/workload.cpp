#include "net/workload.hpp"

#include <cmath>
#include <numbers>

#include "common/rng.hpp"

namespace sdsi::net {

StreamId workload_stream_id(const WorkloadConfig& config, NodeIndex node,
                            std::uint32_t slot) {
  return static_cast<StreamId>(node) * config.streams_per_node + slot + 1;
}

std::vector<Sample> workload_samples(const WorkloadConfig& config,
                                     StreamId stream) {
  common::RngFactory factory(config.seed);
  common::Pcg32 rng = factory.make("net-workload-stream", stream);
  const double amplitude = rng.uniform(0.5, 2.0);
  const double period = rng.uniform(8.0, 48.0);
  const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double drift = rng.uniform(-0.01, 0.01);
  std::vector<Sample> samples;
  samples.reserve(config.samples_per_stream);
  for (std::uint32_t t = 0; t < config.samples_per_stream; ++t) {
    const double x =
        amplitude * std::sin(2.0 * std::numbers::pi * t / period + phase) +
        drift * t + 0.1 * rng.normal();
    samples.push_back(x);
  }
  return samples;
}

std::vector<WorkloadQuery> workload_queries(const WorkloadConfig& config) {
  const std::size_t window = config.features.window_size;
  std::vector<WorkloadQuery> queries;
  queries.reserve(config.nodes);
  std::uint64_t next_id = 1;  // the sim middleware's first query id
  for (NodeIndex node = 0; node < config.nodes; ++node) {
    // Query the windows of a stream sourced elsewhere on the ring, so
    // answering genuinely crosses the transport.
    const NodeIndex target_node = (node + 1) % config.nodes;
    const StreamId target = workload_stream_id(config, target_node, 0);
    const std::vector<Sample> samples = workload_samples(config, target);
    SDSI_CHECK(samples.size() >= window);
    // A mid-run window of the target stream: its own summaries fall inside
    // the ball, so every query has at least one guaranteed match.
    const std::size_t offset = (samples.size() - window) / 2;
    WorkloadQuery query;
    query.id = next_id++;
    query.client = node;
    query.window.assign(samples.begin() + static_cast<std::ptrdiff_t>(offset),
                        samples.begin() +
                            static_cast<std::ptrdiff_t>(offset + window));
    query.radius = config.query_radius;
    queries.push_back(std::move(query));
  }
  return queries;
}

}  // namespace sdsi::net
