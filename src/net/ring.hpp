// The static address book of a real (multi-process) ring.
//
// Socket nodes cannot run a membership protocol yet (ROADMAP: dynamic joins
// stay sim-only for now), so every process derives the identical ring from
// (node count, id-space bits, salt) via routing::hash_node_ids — the same
// derivation the simulator's StaticRing uses, which is what makes the
// sim-vs-socket equivalence test meaningful: both worlds place every key on
// the same node.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/ring_math.hpp"
#include "common/types.hpp"

namespace sdsi::net {

class NetRing {
 public:
  /// `node_ids[i]` is the ring identifier of node index i (distinct values;
  /// typically routing::hash_node_ids(count, space, salt)).
  NetRing(common::IdSpace space, std::vector<Key> node_ids)
      : space_(space), ids_(std::move(node_ids)) {
    SDSI_CHECK(!ids_.empty());
    sorted_.reserve(ids_.size());
    for (NodeIndex i = 0; i < ids_.size(); ++i) {
      sorted_.emplace_back(ids_[i], i);
    }
    std::sort(sorted_.begin(), sorted_.end());
    position_.resize(ids_.size());
    for (std::size_t pos = 0; pos < sorted_.size(); ++pos) {
      position_[sorted_[pos].second] = pos;
    }
  }

  const common::IdSpace& space() const noexcept { return space_; }
  std::size_t size() const noexcept { return ids_.size(); }
  Key id(NodeIndex node) const {
    SDSI_CHECK(node < ids_.size());
    return ids_[node];
  }

  /// The node responsible for `key`: first ring id >= key, wrapping to the
  /// smallest (identical to StaticRing::find_successor_oracle).
  NodeIndex successor_of_key(Key key) const {
    const auto it = std::lower_bound(
        sorted_.begin(), sorted_.end(), key,
        [](const std::pair<Key, NodeIndex>& entry, Key k) {
          return entry.first < k;
        });
    return it == sorted_.end() ? sorted_.front().second : it->second;
  }

  NodeIndex successor_index(NodeIndex node) const {
    SDSI_CHECK(node < ids_.size());
    const std::size_t pos = position_[node];
    return sorted_[(pos + 1) % sorted_.size()].second;
  }

  NodeIndex predecessor_index(NodeIndex node) const {
    SDSI_CHECK(node < ids_.size());
    const std::size_t pos = position_[node];
    return sorted_[(pos + sorted_.size() - 1) % sorted_.size()].second;
  }

 private:
  common::IdSpace space_;
  std::vector<Key> ids_;                           // by node index
  std::vector<std::pair<Key, NodeIndex>> sorted_;  // ring order
  std::vector<std::size_t> position_;              // index -> ring position
};

}  // namespace sdsi::net
