// The shared deterministic workload of the sim-vs-socket equivalence gate.
//
// Both worlds — the MiddlewareSystem running on the simulated ring and the
// NetNode processes running over a real Transport — consume THIS workload:
// the same raw samples into the same stream ids, the same raw query windows
// posed from the same nodes in the same order. Every derived quantity
// (features, MBRs, key ranges, match sets) is then a pure function of code
// that both sides share, which is what makes "identical matched
// (stream, query) sets" a meaningful end-to-end check of the wire protocol
// and transports rather than a tautology.
//
// Determinism contract: everything is derived from (seed, node count) via
// named Pcg32 child streams. No global state, no clocks.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "core/strategy.hpp"
#include "dsp/features.hpp"

namespace sdsi::net {

struct WorkloadConfig {
  std::uint32_t nodes = 8;
  std::uint64_t seed = 42;
  /// Ring geometry — every process (and the sim reference) derives the
  /// identical ring from these via routing::hash_node_ids.
  unsigned id_bits = 16;
  std::uint64_t ring_salt = 77;
  /// Raw samples fed into each node's local stream. With the default
  /// window 32 and batch size 5, 400 samples close ~70 MBR batches.
  std::uint32_t samples_per_stream = 400;
  /// Streams (and one query) per node.
  std::uint32_t streams_per_node = 1;
  double query_radius = 0.35;
  dsp::FeatureConfig features;
  /// Indexing strategy both worlds run (core/strategy.hpp). The gate is
  /// strategy-generic: sim and socket share the strategy code, so equal
  /// digests check the wire/transport layers for every strategy.
  core::StrategyOptions strategy;
};

/// One continuous similarity query of the workload. `id` is the globally
/// unique query id both worlds must use (the sim middleware hands out
/// sequential ids starting at 1 in subscription order, so the workload
/// enumerates queries in exactly that node-major order).
struct WorkloadQuery {
  std::uint64_t id = 0;
  NodeIndex client = kInvalidNode;
  /// Raw window; each side extracts features itself with config.features so
  /// any drift in the DSP path is caught by the equivalence gate too.
  std::vector<Sample> window;
  double radius = 0.0;
};

/// The stream id sourced by node `node`, slot `slot` (ids start at 1; 0 is
/// reserved as "no stream").
StreamId workload_stream_id(const WorkloadConfig& config, NodeIndex node,
                            std::uint32_t slot);

/// The full sample sequence of one stream: a per-stream random sinusoid
/// plus white noise, from the child rng ("stream", sid) of config.seed.
std::vector<Sample> workload_samples(const WorkloadConfig& config,
                                     StreamId stream);

/// All queries, in the node-major order both worlds must subscribe in.
/// Query i targets the window of a workload stream chosen round-robin, so
/// matches are guaranteed non-empty (each query ball contains at least the
/// summaries of its target stream's neighborhood).
std::vector<WorkloadQuery> workload_queries(const WorkloadConfig& config);

}  // namespace sdsi::net
